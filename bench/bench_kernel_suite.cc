// Data-parallel kernel suite runner (real kernels, real threads — no
// simulation).
//
// Measures every DataPar workload (histogram, spmv, scan, transpose,
// stencil2d) across a (schedule × thread-count) grid: per cell, a warmup
// run followed by AID_BENCH_RUNS timed repeats of Workload::run_kernel,
// with the kernel checksum verified against the 1-thread static reference
// on every single run — a perf sample from a wrong answer is worthless, so
// a mismatch is a hard bench failure (exit 1), never a silent record.
//
// Emits BENCH_kernel_suite.json (snapshot record first — see
// harness/sysinfo.h) with one kernel_ns series per cell, config
// "kernel=<name>/threads=<n>/sched=<label>". tools/aid_sweep.py runs this
// binary repeatedly at the process level and aggregates the per-run JSONs
// into a median-of-medians CSV; the bench prints the same table humans
// read in CI logs.
//
// Tunables:
//   AID_BENCH_SCALE           — problem scale (default 0.25; 1.0 = full)
//   AID_BENCH_RUNS            — timed repeats per cell (default 7)
//   AID_BENCH_SUITE_THREADS   — comma list of team sizes (default "1,2,4")
//   AID_BENCH_SUITE_KERNELS   — comma list of workload names (default: the
//                               DataPar suite)
//   --smoke                   — CI smoke mode: scale 0.02, 2 runs, threads
//                               1,2 (env settings win over the flag)
//   --list                    — print the default kernel set and exit
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/time_source.h"
#include "platform/platform.h"
#include "rt/team.h"
#include "sched/schedule_spec.h"
#include "workloads/workload.h"

namespace {

using namespace aid;

std::vector<int> parse_threads(const std::string& text) {
  std::vector<int> out;
  for (const auto& piece : env::split_list(text)) {
    const auto v = env::parse_int(piece);
    if (v.has_value() && *v >= 1) out.push_back(static_cast<int>(*v));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const auto* w : workloads::workloads_of_suite("DataPar"))
        std::printf("%s\n", w->name().c_str());
      return 0;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--list]\n", argv[0]);
      return 2;
    }
  }

  // Smoke mode supplies small defaults; explicit env always wins so
  // aid_sweep can drive either mode with precise knobs.
  const double scale =
      env::get_double("AID_BENCH_SCALE", smoke ? 0.02 : 0.25);
  const int runs =
      static_cast<int>(env::get_int("AID_BENCH_RUNS", smoke ? 2 : 7));
  const std::vector<int> thread_counts = parse_threads(
      env::get_string("AID_BENCH_SUITE_THREADS", smoke ? "1,2" : "1,2,4"));
  std::vector<std::string> kernel_names = env::split_list(
      env::get_string("AID_BENCH_SUITE_KERNELS", ""));
  if (kernel_names.empty())
    for (const auto* w : workloads::workloads_of_suite("DataPar"))
      kernel_names.push_back(w->name());

  const auto apps = bench::apps_by_name(kernel_names);
  const struct {
    const char* label;
    sched::ScheduleSpec spec;
  } specs[] = {
      {"static", sched::ScheduleSpec::static_even()},
      {"dynamic16", sched::ScheduleSpec::dynamic(16)},
      {"aid-static", sched::ScheduleSpec::aid_static(1)},
      {"aid-dynamic", sched::ScheduleSpec::aid_dynamic(1, 5)},
  };

  bench::BenchJsonWriter json("kernel_suite");
  const SteadyTimeSource clock;
  std::printf(
      "data-parallel kernel suite (scale %.3g, %d runs per cell%s)\n\n",
      scale, runs, smoke ? ", smoke" : "");

  // One serial reference per kernel: the 1-thread static checksum every
  // measured run must reproduce (same contract as kernel_invariance_test).
  rt::Team serial(platform::generic_amp(1, 1, 2.0), 1,
                  platform::Mapping::kBigFirst, /*emulate_amp=*/false);
  std::vector<double> references;
  references.reserve(apps.size());
  for (const auto* app : apps) {
    const double ref =
        app->run_kernel(serial, sched::ScheduleSpec::static_even(), scale);
    if (!std::isfinite(ref)) {
      std::fprintf(stderr, "kernel_suite: %s serial checksum not finite\n",
                   app->name().c_str());
      return 1;
    }
    references.push_back(ref);
  }

  for (const int nthreads : thread_counts) {
    const auto platform = platform::generic_amp(
        nthreads - nthreads / 2 > 0 ? nthreads - nthreads / 2 : 1,
        nthreads / 2 > 0 ? nthreads / 2 : 1, 2.0);
    rt::Team team(platform, nthreads, platform::Mapping::kBigFirst,
                  /*emulate_amp=*/false);
    for (usize a = 0; a < apps.size(); ++a) {
      const auto* app = apps[a];
      const double tol = 1e-6 * std::max(1.0, std::fabs(references[a]));
      for (const auto& [label, spec] : specs) {
        std::vector<double> samples;
        samples.reserve(static_cast<usize>(runs));
        for (int r = -1; r < runs; ++r) {  // r == -1: warmup
          const Nanos t0 = clock.now();
          const double checksum = app->run_kernel(team, spec, scale);
          const Nanos t1 = clock.now();
          if (std::fabs(checksum - references[a]) > tol) {
            std::fprintf(stderr,
                         "kernel_suite: %s under threads=%d sched=%s: "
                         "checksum %.17g != reference %.17g\n",
                         app->name().c_str(), nthreads, label, checksum,
                         references[a]);
            return 1;
          }
          if (r >= 0) samples.push_back(static_cast<double>(t1 - t0));
        }
        char config[96];
        std::snprintf(config, sizeof config, "kernel=%s/threads=%d/sched=%s",
                      app->name().c_str(), nthreads, label);
        const bench::SampleSummary s = bench::summarize(samples);
        std::printf("  %-52s median %11.0f ns   p95 %11.0f ns\n", config,
                    s.median, s.p95);
        json.add(config, "kernel_ns", s);
      }
    }
  }
  return 0;
}
