// Reproduces the Sec. 5B sensitivity study for AID-hybrid's percentage
// parameter (the fraction of iterations distributed as in AID-static; the
// rest is scheduled dynamically).
//
// Paper findings: the best percentage is application-specific — apps that
// favor dynamic (FT, lavamd, leukocyte, particlefilter) prefer ~60%;
// apps that boom with AID-static (blackscholes) prefer >= 90%; 80% is a
// good overall trade-off (and is what Figs. 6/7 use).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace aid;
  const auto platform = platform::odroid_xu4();
  bench::print_header("AID-hybrid percentage sensitivity (Sec. 5B)",
                      platform);
  const auto params = bench::params_for(platform);

  const double percents[] = {50, 60, 70, 80, 90, 95, 100};
  std::vector<harness::SchedConfig> configs;
  configs.push_back({"static(BS)", sched::ScheduleSpec::static_even(),
                     platform::Mapping::kBigFirst});
  for (double p : percents)
    configs.push_back({"hybrid/" + std::to_string(static_cast<int>(p)),
                       sched::ScheduleSpec::aid_hybrid(1, p),
                       platform::Mapping::kBigFirst});

  const auto apps = bench::apps_by_name({"FT", "lavamd", "leukocyte",
                                         "particlefilter", "blackscholes",
                                         "streamcluster", "EP", "IS"});
  const auto data = harness::run_figure(apps, platform, configs, params);
  harness::print_figure(std::cout, data,
                        "normalized performance by hybrid percentage");

  // Best percentage per app.
  TextTable best({"benchmark", "best %", "perf at best", "perf at 80%"});
  for (usize a = 0; a < data.app_names.size(); ++a) {
    usize best_c = 1;
    for (usize c = 1; c < configs.size(); ++c)
      if (data.normalized[a][c] > data.normalized[a][best_c]) best_c = c;
    const usize at80 = 4;  // configs[4] == hybrid/80
    best.row()
        .cell(data.app_names[a])
        .cell(configs[best_c].label.substr(7))
        .cell(data.normalized[a][best_c], 3)
        .cell(data.normalized[a][at80], 3);
  }
  best.print(std::cout);
  std::cout << "\npaper-claim check: dynamic-friendly apps peak at lower "
               "percentages, AID-static-friendly apps at >=90%; 80% is a "
               "good overall trade-off.\n";
  return 0;
}
