// Reproduces Fig. 9: the impact of SF-estimation accuracy.
//
//  (a,b) AID-static vs AID-static(offline-SF) vs AID-hybrid on both
//        platforms, for the applications where AID-static/AID-hybrid are
//        competitive. The offline variant skips the sampling phase and
//        trusts per-loop SF values collected from single-threaded runs.
//  (c)   blackscholes on Platform A: offline-collected SF vs the SF that
//        AID-static estimates online, across ~100 executions of the pricing
//        loop. Offline values are far too high because single-threaded runs
//        see no LLC/bandwidth contention (paper Sec. 5C: per-thread misses
//        grow 3.6x with 8 threads), so feeding them to AID-static
//        over-allocates to big cores and *hurts* on Platform A, while the
//        online estimate adapts.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "workloads/profile.h"

namespace {

using namespace aid;

void figure_9ab(const platform::Platform& platform, const char* title) {
  bench::print_header(title, platform);
  const auto apps = bench::apps_by_name(
      {"CG", "IS", "LU", "blackscholes", "bodytrack", "streamcluster", "bfs",
       "hotspot3D", "sradv1", "sradv2"});
  auto params = bench::params_for(platform);

  TextTable table({"benchmark", "AID-static", "AID-static(offline-SF)",
                   "AID-hybrid"});
  for (const auto* app : apps) {
    // Offline SF values measured with the paper's Sec. 2 protocol.
    const auto offline_sf = harness::measure_offline_sf(*app, platform, params);

    const harness::SchedConfig baseline{
        "static(SB)", sched::ScheduleSpec::static_even(),
        platform::Mapping::kSmallFirst};
    const harness::SchedConfig aid_static{
        "AID-static", sched::ScheduleSpec::aid_static(1),
        platform::Mapping::kBigFirst};
    const harness::SchedConfig aid_hybrid{
        "AID-hybrid", sched::ScheduleSpec::aid_hybrid(1, 80.0),
        platform::Mapping::kBigFirst};

    const double t_base =
        harness::measure(*app, platform, baseline, params).time_ns;
    const double t_static =
        harness::measure(*app, platform, aid_static, params).time_ns;
    const double t_hybrid =
        harness::measure(*app, platform, aid_hybrid, params).time_ns;

    auto offline_params = params;
    offline_params.offline_sf_per_loop = offline_sf;
    const double t_offline =
        harness::measure(*app, platform, aid_static, offline_params).time_ns;

    table.row()
        .cell(app->name())
        .cell(t_base / t_static, 3)
        .cell(t_base / t_offline, 3)
        .cell(t_base / t_hybrid, 3);
  }
  table.print(std::cout);
  std::cout << "(normalized performance vs static(SB); higher is better)\n\n";
}

void figure_9c() {
  const auto platform = platform::odroid_xu4();
  std::cout << "Figure 9c — blackscholes on Platform A: offline-collected "
               "vs online-estimated SF per loop execution\n\n";
  const auto* bs = workloads::find_workload("blackscholes");
  auto params = bench::params_for(platform);

  // The paper plots ~100 consecutive executions of the pricing loop. Each
  // execution prices a different option batch; vary the profile seed to
  // model that while keeping everything else fixed.
  TextTable table({"loop#", "offline SF", "estimated SF"});
  double offline_sum = 0.0;
  double online_sum = 0.0;
  constexpr int kExecutions = 100;
  for (int e = 0; e < kExecutions; ++e) {
    workloads::AppSpec spec = bs->spec();
    for (auto& phase : spec.phases) {
      if (auto* lp = std::get_if<workloads::LoopSpec>(&phase)) {
        lp->seed = 0xB5 + static_cast<u64>(e);
        lp->invocations = 1;
      }
    }
    const workloads::Workload variant(spec, nullptr);
    const auto offline = harness::measure_offline_sf(variant, platform, params);
    const auto online = harness::measure_online_sf(variant, platform, params);
    offline_sum += offline[0];
    online_sum += online[0];
    if (e % 10 == 0)
      table.row().cell(static_cast<i64>(e)).cell(offline[0], 2).cell(online[0],
                                                                     2);
  }
  table.print(std::cout);
  std::cout << "means over " << kExecutions
            << " executions: offline=" << format_double(offline_sum / kExecutions, 2)
            << " estimated=" << format_double(online_sum / kExecutions, 2)
            << "\npaper-claim check: offline ~4.5-6.5, estimated ~1.3-2.5 "
               "(Fig. 9c shape)\n";
}

}  // namespace

int main() {
  figure_9ab(platform::odroid_xu4(),
             "Figure 9a — SF-prediction accuracy, Platform A");
  figure_9ab(platform::xeon_emulated_amp(),
             "Figure 9b — SF-prediction accuracy, Platform B");
  figure_9c();
  return 0;
}
