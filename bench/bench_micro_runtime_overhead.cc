// Microbenchmark for the Sec. 4.1 claim: routing every loop through the
// runtime (the paper's compiler change from compiled-in static to
// runtime-dispatched scheduling) adds no noticeable overhead when the
// selected schedule is static.
//
// Compares, on the real thread team:
//   compiled-in  — the loop body partitioned by hand (what GCC emits for a
//                  schedule-less loop with the vanilla compiler);
//   runtime-static — the same loop through Team::run_loop with static;
//   runtime-dynamic — through the shared pool, chunk 1 (the upper bound).
#include <benchmark/benchmark.h>

#include <atomic>
#include <numeric>

#include "common/spin_work.h"
#include "platform/platform.h"
#include "rt/team.h"
#include "sched/static_sched.h"

namespace {

using namespace aid;

constexpr i64 kIters = 4096;
constexpr u64 kWorkUnits = 40;

void BM_CompiledInStatic(benchmark::State& state) {
  rt::Team team(platform::generic_amp(1, 1, 2.0), 2,
                platform::Mapping::kBigFirst, /*emulate_amp=*/false);
  for (auto _ : state) {
    // Hand-partitioned: each worker computes its own even block, no
    // scheduler interaction at all (one next()-free dispatch).
    team.run_loop(2, sched::ScheduleSpec::static_even(),
                  [&](i64 b, i64, const rt::WorkerInfo&) {
                    const auto block = sched::StaticScheduler::even_block(
                        kIters, 2, static_cast<int>(b));
                    for (i64 i = block.begin; i < block.end; ++i)
                      spin_work(kWorkUnits);
                  });
  }
  state.SetItemsProcessed(state.iterations() * kIters);
}
BENCHMARK(BM_CompiledInStatic)->Unit(benchmark::kMicrosecond);

void BM_RuntimeSchedule(benchmark::State& state,
                        const sched::ScheduleSpec spec) {
  rt::Team team(platform::generic_amp(1, 1, 2.0), 2,
                platform::Mapping::kBigFirst, /*emulate_amp=*/false);
  for (auto _ : state) {
    team.run_loop(kIters, spec, [&](i64 b, i64 e, const rt::WorkerInfo&) {
      for (i64 i = b; i < e; ++i) spin_work(kWorkUnits);
    });
  }
  state.SetItemsProcessed(state.iterations() * kIters);
}
BENCHMARK_CAPTURE(BM_RuntimeSchedule, static_even,
                  sched::ScheduleSpec::static_even())
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_RuntimeSchedule, dynamic1, sched::ScheduleSpec::dynamic(1))
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_RuntimeSchedule, aid_static,
                  sched::ScheduleSpec::aid_static(1))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
