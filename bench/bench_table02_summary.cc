// Reproduces Table 2: relative performance gains of the AID variants over
// the conventional method each replaces, on both platforms —
//   AID-static  vs static(BS)
//   AID-hybrid  vs static(BS)
//   AID-dynamic vs dynamic(BS)
// reported as arithmetic mean and geometric mean across the 21 benchmarks.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace aid;
  struct Row {
    std::string scheme;
    double paper_mean_a, paper_gmean_a, paper_mean_b, paper_gmean_b;
  };
  const Row paper_rows[3] = {
      {"AID-static vs static(BS)", 14.98, 13.54, 15.93, 14.64},
      {"AID-hybrid vs static(BS)", 27.55, 22.67, 20.08, 16.06},
      {"AID-dynamic vs dynamic(BS)", 3.12, 2.81, 22.34, 16.00},
  };

  TextTable table({"Loop-scheduling schemes", "A mean%", "A gmean%",
                   "B mean%", "B gmean%", "paper A mean%", "paper A gmean%",
                   "paper B mean%", "paper B gmean%"});

  std::vector<harness::GainSummary> gains_a;
  std::vector<harness::GainSummary> gains_b;
  for (const auto& platform :
       {platform::odroid_xu4(), platform::xeon_emulated_amp()}) {
    const auto params = bench::params_for(platform);
    const auto data = harness::run_figure(bench::all_apps(), platform,
                                          harness::standard_configs(), params);
    const usize st_bs = harness::config_index(data, "static(BS)");
    const usize dyn_bs = harness::config_index(data, "dynamic(BS)");
    auto& out = platform.name().find("Odroid") != std::string::npos ? gains_a
                                                                    : gains_b;
    out.push_back(harness::summarize_gain(
        data, harness::config_index(data, "AID-static"), st_bs, "aid-static"));
    out.push_back(harness::summarize_gain(
        data, harness::config_index(data, "AID-hybrid"), st_bs, "aid-hybrid"));
    out.push_back(
        harness::summarize_gain(data, harness::config_index(data, "AID-dynamic"),
                                dyn_bs, "aid-dynamic"));
  }

  std::cout << "Table 2 — relative performance gains of the AID variants\n\n";
  for (usize r = 0; r < 3; ++r) {
    table.row()
        .cell(paper_rows[r].scheme)
        .cell(gains_a[r].mean_percent, 2)
        .cell(gains_a[r].gmean_percent, 2)
        .cell(gains_b[r].mean_percent, 2)
        .cell(gains_b[r].gmean_percent, 2)
        .cell(paper_rows[r].paper_mean_a, 2)
        .cell(paper_rows[r].paper_gmean_a, 2)
        .cell(paper_rows[r].paper_mean_b, 2)
        .cell(paper_rows[r].paper_gmean_b, 2);
  }
  table.print(std::cout);
  std::cout << "\n(measured = this reproduction; paper = ICPP'20 Table 2)\n";
  return 0;
}
