// Reproduces Fig. 4: EP on Platform A with 8 threads under (a) AID-static
// and (b) AID-hybrid (80%). EP's iteration cost drifts slightly, so the SF
// sampled at loop start misrepresents the tail: AID-static leaves the
// small-core threads (5-8) finishing early, while AID-hybrid's dynamic tail
// re-balances the end of the loop — the paper reports a 10.5% improvement.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sim/app_simulator.h"
#include "trace/trace.h"

int main() {
  using namespace aid;
  const auto platform = platform::odroid_xu4();
  const auto* ep = workloads::find_workload("EP");
  const auto params = bench::params_for(platform);
  const platform::TeamLayout layout(platform, 8, platform::Mapping::kBigFirst);

  const auto run = [&](const sched::ScheduleSpec& spec, const char* label) {
    bench::print_header(std::string("Figure 4 — EP, 8 threads, ") + label,
                        platform);
    sim::AppSimulator simulator(platform, layout, spec, params.overhead);
    trace::Trace tr(8);
    const auto result = simulator.run(ep->model(platform, params.scale), &tr);
    std::cout << trace::render_ascii(tr) << '\n';
    const auto rep = trace::analyze(tr);
    std::cout << "completion: " << format_double(result.total_ns / 1e6, 2)
              << " ms   imbalance: " << format_double(rep.imbalance, 3)
              << "   sched fraction: " << format_double(rep.sched_fraction, 4)
              << "\n\n";
    return result.total_ns;
  };

  const Nanos t_static = run(sched::ScheduleSpec::aid_static(1),
                             "AID-static (Fig. 4a)");
  const Nanos t_hybrid = run(sched::ScheduleSpec::aid_hybrid(1, 80.0),
                             "AID-hybrid 80% (Fig. 4b)");

  std::cout << "paper-claim check: AID-hybrid improvement over AID-static = "
            << format_double((static_cast<double>(t_static) /
                                  static_cast<double>(t_hybrid) -
                              1.0) *
                                 100.0,
                             1)
            << "%  (paper: 10.5%)\n";
  return 0;
}
