// Real-thread multi-application bench on the shared worker pool
// (src/pool/): the Sec. 4.3 / Sec. 5C scenario executed with actual
// threads rather than the simulator (contrast bench_multiapp_partitioning,
// which models the same scenario analytically).
//
// Two co-running "applications" (threads of this process) execute a fixed
// batch of data-parallel loops each, either on
//   private-teams — one full-size rt::Team per app (the oversubscribing
//                   baseline: 2x the machine's threads), or
//   shared-pool   — one PoolManager, each app leasing a partition under a
//                   given arbitration policy; halfway through the batch
//                   the apps' weights are swapped conceptually by flipping
//                   the policy, exercising dynamic repartitioning under
//                   load.
//
// Reported per config: completion wall time of the co-run (median/p95
// over AID_BENCH_RUNS) and the spawned worker-thread footprint (the two
// app threads themselves exist identically in both setups). The
// acceptance claim: the shared pool finishes the same work with <= half
// the worker threads of the private-team baseline — structurally, the
// pool spawns at most ncores-1 workers ever (the globally fastest core is
// always some partition's tid 0, i.e. a master, and masters need no
// worker), versus 2*(ncores-1) for two private teams — and repartitions
// without losing iterations.
//
// Emits BENCH_pool_multiapp.json (see bench_util.h).
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/spin_work.h"
#include "common/time_source.h"
#include "platform/platform.h"
#include "pool/pool_manager.h"
#include "rt/team.h"

namespace {

using namespace aid;

// Per-iteration kernel: a short calibrated spin, heavy enough that the
// loop is compute-bound rather than fork/join-bound, small enough that a
// full co-run stays in milliseconds.
constexpr Nanos kIterSpinNs = 2000;
constexpr i64 kLoopCount = 512;

/// One app's batch: `loops` back-to-back parallel loops; verifies no
/// iteration is lost or duplicated (the repartitioning safety claim).
template <typename RunLoop>
void app_batch(int loops, RunLoop&& run) {
  std::atomic<i64> executed{0};
  const rt::RangeBody body = [&](i64 b, i64 e, const rt::WorkerInfo&) {
    for (i64 i = b; i < e; ++i) spin_for_nanos(kIterSpinNs);
    executed.fetch_add(e - b, std::memory_order_relaxed);
  };
  for (int l = 0; l < loops; ++l) run(body);
  AID_CHECK_MSG(executed.load() == loops * kLoopCount,
                "bench lost or duplicated iterations");
}

struct CoRunResult {
  double wall_ns = 0.0;
  int worker_threads = 0;
};

CoRunResult co_run_private_teams(const platform::Platform& platform,
                                 int loops) {
  const SteadyTimeSource clock;
  // Each app builds its own full-machine team: 2 * (ncores - 1) spawned
  // workers + 2 app threads on one machine — the oversubscribing baseline.
  rt::Team team_a(platform, 0, platform::Mapping::kBigFirst,
                  /*emulate_amp=*/false);
  rt::Team team_b(platform, 0, platform::Mapping::kBigFirst,
                  /*emulate_amp=*/false);
  const auto spec = sched::ScheduleSpec::dynamic(8);
  const Nanos t0 = clock.now();
  std::thread tb([&] {
    app_batch(loops, [&](const rt::RangeBody& body) {
      team_b.run_loop(kLoopCount, spec, body);
    });
  });
  app_batch(loops, [&](const rt::RangeBody& body) {
    team_a.run_loop(kLoopCount, spec, body);
  });
  tb.join();
  const Nanos t1 = clock.now();
  return {static_cast<double>(t1 - t0), 2 * (platform.num_cores() - 1)};
}

CoRunResult co_run_shared_pool(const platform::Platform& platform, int loops,
                               pool::Policy policy, double weight_b) {
  const SteadyTimeSource clock;
  pool::PoolManager::Config config;
  config.policy = policy;
  config.emulate_amp = false;
  pool::PoolManager mgr(platform, config);
  pool::AppHandle a = mgr.register_app("app-a", 1.0);
  pool::AppHandle b = mgr.register_app("app-b", weight_b);
  const auto spec = sched::ScheduleSpec::dynamic(8);

  const Nanos t0 = clock.now();
  std::thread tb([&] {
    app_batch(loops, [&](const rt::RangeBody& body) {
      b.run_loop(kLoopCount, spec, body);
    });
  });
  int done = 0;
  app_batch(loops, [&](const rt::RangeBody& body) {
    a.run_loop(kLoopCount, spec, body);
    // Halfway through, flip the arbitration policy: grant/revoke lands at
    // the apps' next loop boundaries, under load, with no thread churn.
    if (++done == loops / 2 && policy != pool::Policy::kEqualShare)
      mgr.set_policy(pool::Policy::kEqualShare);
  });
  tb.join();
  const Nanos t1 = clock.now();
  const int workers = mgr.spawned_workers();
  return {static_cast<double>(t1 - t0), workers};
}

void report(bench::BenchJsonWriter& json, const std::string& config,
            std::vector<double> wall_samples, int workers) {
  const bench::SampleSummary s = bench::summarize(std::move(wall_samples));
  std::printf(
      "  %-42s median %8.2f ms   p95 %8.2f ms   p99 %8.2f ms   workers %2d\n",
      config.c_str(), s.median / 1e6, s.p95 / 1e6, s.p99 / 1e6, workers);
  json.add(config, "co_run_wall_ns", s);
  const double w = static_cast<double>(workers);
  json.add(config, "worker_threads", {w, w, w, 1});
}

}  // namespace

int main() {
  const auto platform = platform::generic_amp(4, 4, 3.0);
  bench::print_header("Shared-pool multi-application co-run (real threads)",
                      platform);
  const int runs = static_cast<int>(env::get_int("AID_BENCH_RUNS", 5));
  const int loops =
      static_cast<int>(env::get_int("AID_BENCH_POOL_LOOPS", 24));
  bench::BenchJsonWriter json("pool_multiapp");

  struct SharedConfig {
    const char* label;
    pool::Policy policy;
    double weight_b;
  };
  const SharedConfig shared_configs[] = {
      {"shared-pool/equal-share", pool::Policy::kEqualShare, 1.0},
      {"shared-pool/big-priority+flip", pool::Policy::kBigCorePriority, 4.0},
      {"shared-pool/proportional+flip", pool::Policy::kProportional, 3.0},
  };

  std::printf("two apps x %d loops x %lld iterations (%d runs/config)\n\n",
              loops, static_cast<long long>(kLoopCount), runs);

  std::vector<double> private_wall;
  int private_workers = 0;
  for (int r = 0; r < runs; ++r) {
    const CoRunResult res = co_run_private_teams(platform, loops);
    private_wall.push_back(res.wall_ns);
    private_workers = res.worker_threads;
  }
  report(json, "private-teams", private_wall, private_workers);

  for (const auto& cfg : shared_configs) {
    std::vector<double> wall;
    int workers = 0;
    for (int r = 0; r < runs; ++r) {
      const CoRunResult res =
          co_run_shared_pool(platform, loops, cfg.policy, cfg.weight_b);
      wall.push_back(res.wall_ns);
      workers = std::max(workers, res.worker_threads);
    }
    report(json, cfg.label, wall, workers);
    AID_CHECK_MSG(workers <= private_workers / 2,
                  "shared pool exceeded half the private-team worker count");
  }

  std::printf(
      "\nexpectation: every shared-pool config completes the same work with "
      "<= half the worker threads of private-teams (no oversubscription), "
      "and the mid-run policy flip repartitions without losing "
      "iterations.\n");
  return 0;
}
