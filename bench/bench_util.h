// Shared setup for the figure/table bench binaries.
//
// Every binary regenerates one table or figure from the paper and prints
// the same rows/series. Scale and repetitions can be tuned via:
//   AID_BENCH_SCALE — trip-count scale (default 1.0; smaller = faster)
//   AID_BENCH_RUNS  — repetitions per measurement (default 5, paper value)
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/experiment.h"
#include "harness/figure_printer.h"
#include "harness/sysinfo.h"
#include "workloads/workload.h"

namespace aid::bench {

inline harness::ExperimentParams params_for(
    const platform::Platform& platform) {
  harness::ExperimentParams params;
  params.overhead = harness::overhead_for(platform);
  params.scale = env::get_double("AID_BENCH_SCALE", 1.0);
  params.runs = static_cast<int>(env::get_int("AID_BENCH_RUNS", 5));
  return params;
}

/// The paper's 21 benchmarks only: the figure/table reproduction drivers
/// must keep matching the paper even as the registry grows (the DataPar
/// suite is measured by bench_kernel_suite, not by the figure benches).
inline std::vector<const workloads::Workload*> all_apps() {
  std::vector<const workloads::Workload*> apps;
  for (const auto& w : workloads::all_workloads())
    if (w.suite() == "NPB" || w.suite() == "PARSEC" || w.suite() == "Rodinia")
      apps.push_back(&w);
  return apps;
}

inline std::vector<const workloads::Workload*> apps_by_name(
    const std::vector<std::string>& names) {
  std::vector<const workloads::Workload*> apps;
  for (const auto& n : names) {
    std::string error;
    const auto* w = workloads::find_workload_or_error(n, &error);
    if (w == nullptr) {
      // A bench naming a missing workload is a programming error, but die
      // with the registry listing instead of a bare assert.
      std::cerr << "bench: " << error << '\n';
      std::abort();
    }
    apps.push_back(w);
  }
  return apps;
}

inline void print_header(const std::string& what,
                         const platform::Platform& platform) {
  std::cout << "=====================================================\n"
            << what << '\n'
            << platform.describe()
            << "=====================================================\n\n";
}

// --- machine-readable results (perf-trajectory tracking) -------------------
//
// Benches append {config, metric, median, p95, runs} records to a
// BenchJsonWriter which serializes them as BENCH_<name>.json (an array of
// objects, one per measured configuration, preceded by one snapshot record
// carrying the host/environment provenance — see harness/sysinfo.h).
// bench_diff.py keys baselines by the snapshot's host_id so numbers from a
// different runner class demote gating to report-only. The output directory
// defaults to the working directory and can be redirected with
// AID_BENCH_JSON_DIR; setting AID_BENCH_JSON_DIR=- disables writing.

/// Robust order statistics of one measurement series, in the series' unit.
struct SampleSummary {
  double median = 0.0;  ///< p50
  double p95 = 0.0;
  double p99 = 0.0;
  int runs = 0;
};

/// Linear-interpolated percentile of an ASCENDING-sorted series;
/// `q` in [0,1] (0.5 = median). The single shared implementation behind
/// every bench's p50/p95/p99 — tail metrics must mean the same thing in
/// every JSON record.
[[nodiscard]] inline double percentile_of_sorted(
    const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const usize lo = static_cast<usize>(pos);
  const usize hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Summarize by sorting a copy; `samples` may arrive in any order.
inline SampleSummary summarize(std::vector<double> samples) {
  if (samples.empty()) return {};
  std::sort(samples.begin(), samples.end());
  return {percentile_of_sorted(samples, 0.5),
          percentile_of_sorted(samples, 0.95),
          percentile_of_sorted(samples, 0.99),
          static_cast<int>(samples.size())};
}

/// Jain fairness index of per-tenant allocations: (Σx)² / (n·Σx²).
/// 1.0 = perfectly even; 1/n = one tenant got everything. The standard
/// single-number answer to "did the co-tenants share?".
[[nodiscard]] inline double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 1.0;  // all-zero allocations are (vacuously) even
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

class BenchJsonWriter {
 public:
  /// `bench_name` names the output file: BENCH_<bench_name>.json.
  explicit BenchJsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  ~BenchJsonWriter() { flush(); }

  /// Record one (config, metric) measurement series, e.g.
  /// add("threads=8/count=0", "roundtrip_ns", summarize(samples)).
  void add(const std::string& config, const std::string& metric,
           const SampleSummary& s) {
    records_.push_back({config, metric, s});
  }

  /// Write BENCH_<name>.json. Called automatically on destruction; safe to
  /// call early (subsequent flushes rewrite the full record set).
  void flush() {
    const std::string dir = env::get_string("AID_BENCH_JSON_DIR", ".");
    if (dir == "-" || records_.empty()) return;
    std::ofstream out(dir + "/BENCH_" + bench_name_ + ".json");
    if (!out) return;
    out << "[\n";
    // Provenance first: one record whose "snapshot" field holds the
    // host/environment capture. Readers that predate snapshots skip it
    // (no "metric" key); bench_diff keys baselines by its host_id.
    out << "  {\"bench\": \"" << json_str(bench_name_) << "\", \"snapshot\": "
        << harness::sysinfo_json(harness::collect_sysinfo()) << "},\n";
    for (usize i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "  {\"bench\": \"" << json_str(bench_name_)
          << "\", \"config\": \"" << json_str(r.config)
          << "\", \"metric\": \"" << json_str(r.metric)
          << "\", \"median\": " << json_num(r.summary.median)
          << ", \"p95\": " << json_num(r.summary.p95)
          << ", \"p99\": " << json_num(r.summary.p99)
          << ", \"runs\": " << r.summary.runs << '}'
          << (i + 1 < records_.size() ? "," : "") << '\n';
    }
    out << "]\n";
  }

 private:
  struct Record {
    std::string config;
    std::string metric;
    SampleSummary summary;
  };

  // JSON has no NaN/Inf literals; degenerate samples serialize as 0.
  static double json_num(double v) { return std::isfinite(v) ? v : 0.0; }

  // Escape the characters that would break a JSON string literal.
  static std::string json_str(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Record> records_;
};

}  // namespace aid::bench
