// Shared setup for the figure/table bench binaries.
//
// Every binary regenerates one table or figure from the paper and prints
// the same rows/series. Scale and repetitions can be tuned via:
//   AID_BENCH_SCALE — trip-count scale (default 1.0; smaller = faster)
//   AID_BENCH_RUNS  — repetitions per measurement (default 5, paper value)
#pragma once

#include <iostream>

#include "common/env.h"
#include "harness/experiment.h"
#include "harness/figure_printer.h"
#include "workloads/workload.h"

namespace aid::bench {

inline harness::ExperimentParams params_for(
    const platform::Platform& platform) {
  harness::ExperimentParams params;
  params.overhead = harness::overhead_for(platform);
  params.scale = env::get_double("AID_BENCH_SCALE", 1.0);
  params.runs = static_cast<int>(env::get_int("AID_BENCH_RUNS", 5));
  return params;
}

inline std::vector<const workloads::Workload*> all_apps() {
  std::vector<const workloads::Workload*> apps;
  for (const auto& w : workloads::all_workloads()) apps.push_back(&w);
  return apps;
}

inline std::vector<const workloads::Workload*> apps_by_name(
    const std::vector<std::string>& names) {
  std::vector<const workloads::Workload*> apps;
  for (const auto& n : names) {
    const auto* w = workloads::find_workload(n);
    AID_CHECK_MSG(w != nullptr, "unknown workload in bench");
    apps.push_back(w);
  }
  return apps;
}

inline void print_header(const std::string& what,
                         const platform::Platform& platform) {
  std::cout << "=====================================================\n"
            << what << '\n'
            << platform.describe()
            << "=====================================================\n\n";
}

}  // namespace aid::bench
