// Socket-ingress loopback overhead: the same jobs submitted (a) directly
// through ServeNode::submit and (b) through the full wire path — encode,
// Unix socket, IngressServer event loop, completion hook, decode — on the
// SAME node in the SAME process. The p50/p95/p99 gap is the ingress tax;
// BENCH_ingress_loopback.json records both series plus the derived
// overhead so bench_diff tracks the trajectory.
//
//   AID_BENCH_RUNS  — round-trips per configuration (default 5; CI uses
//                     more for stable tails)
//   AID_BENCH_SCALE — trip-count scale
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ingress/ingress_client.h"
#include "ingress/ingress_server.h"
#include "platform/platform.h"
#include "serve/serve_node.h"
#include "workloads/serve_kernel.h"

namespace {

using namespace aid;
using clock_type = std::chrono::steady_clock;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock_type::now().time_since_epoch())
          .count());
}

struct Series {
  std::vector<double> direct_ns;
  std::vector<double> socket_ns;
};

}  // namespace

int main() {
  const platform::Platform platform = platform::symmetric(
      std::max(2u, std::thread::hardware_concurrency()));
  bench::print_header("Ingress loopback overhead (socket vs direct submit)",
                      platform);

  serve::ServeNode::Config node_cfg;
  serve::ServeNode node(platform, node_cfg);

  ingress::IngressServer::Config icfg;
  icfg.socket_path =
      "/tmp/aid_bench_loopback_" + std::to_string(::getpid()) + ".sock";
  icfg.credit_window = 8;
  ingress::IngressServer server(node, icfg);

  std::string error;
  auto client =
      ingress::IngressClient::connect(icfg.socket_path, "bench", &error);
  if (!client) {
    std::fprintf(stderr, "connect: %s\n", error.c_str());
    return 1;
  }

  const auto params = bench::params_for(platform);
  const int warmup = 3;
  const int runs = std::max(5, params.runs * 8);  // tails need samples

  bench::BenchJsonWriter json("ingress_loopback");
  std::printf("%-28s %10s %10s %10s %10s\n", "config", "path", "p50_us",
              "p95_us", "p99_us");

  for (const i64 base_count : {i64{1} << 10, i64{1} << 16}) {
    const i64 count = std::max<i64>(
        1, static_cast<i64>(static_cast<double>(base_count) * params.scale));
    const std::string config =
        "workload=EP/count=" + std::to_string(count);
    Series series;

    // Interleave the two paths so machine noise hits both alike.
    for (int r = -warmup; r < runs; ++r) {
      {
        // The direct leg does the same work a SUBMIT frame triggers —
        // kernel construction included — so the delta isolates the wire:
        // encode, socket, event loop, completion hook, checksum, decode.
        const double t0 = now_ns();
        std::string kerr;
        auto kernel = workloads::make_serve_kernel("EP", count, &kerr);
        if (!kernel) {
          std::fprintf(stderr, "kernel: %s\n", kerr.c_str());
          return 1;
        }
        serve::JobSpec spec;
        spec.count = kernel->count;
        spec.body = kernel->body;
        // Same schedule on both legs — the delta must be the wire, not a
        // static-vs-dynamic chunking difference.
        spec.sched = sched::ScheduleSpec::static_even();
        serve::JobTicket t = node.submit(std::move(spec));
        const serve::JobResult& jr = t.wait();
        const double t1 = now_ns();
        if (jr.status != serve::JobStatus::kDone) {
          std::fprintf(stderr, "direct submit: %s\n", to_string(jr.status));
          return 1;
        }
        if (r >= 0) series.direct_ns.push_back(t1 - t0);
      }
      {
        ingress::IngressClient::Request req;
        req.workload = "EP";
        req.count = count;
        req.sched = sched::ScheduleKind::kStatic;
        const double t0 = now_ns();
        const u64 id = client->submit(req);
        if (id == 0) {
          std::fprintf(stderr, "submit: %s\n", client->last_error().c_str());
          return 1;
        }
        const ingress::IngressClient::Result res = client->wait(id);
        const double t1 = now_ns();
        if (!res.transport_ok || res.status != serve::JobStatus::kDone) {
          std::fprintf(stderr, "socket submit failed: %s\n",
                       res.message.c_str());
          return 1;
        }
        if (r >= 0) series.socket_ns.push_back(t1 - t0);
      }
    }

    const bench::SampleSummary direct = bench::summarize(series.direct_ns);
    const bench::SampleSummary socket = bench::summarize(series.socket_ns);
    json.add(config, "direct_roundtrip_ns", direct);
    json.add(config, "socket_roundtrip_ns", socket);
    // The headline number: added wire latency at each percentile.
    bench::SampleSummary overhead;
    overhead.median = socket.median - direct.median;
    overhead.p95 = socket.p95 - direct.p95;
    overhead.p99 = socket.p99 - direct.p99;
    overhead.runs = socket.runs;
    json.add(config, "ingress_overhead_ns", overhead);

    std::printf("%-28s %10s %10.1f %10.1f %10.1f\n", config.c_str(),
                "direct", direct.median / 1e3, direct.p95 / 1e3,
                direct.p99 / 1e3);
    std::printf("%-28s %10s %10.1f %10.1f %10.1f\n", config.c_str(),
                "socket", socket.median / 1e3, socket.p95 / 1e3,
                socket.p99 / 1e3);
    std::printf("%-28s %10s %10.1f %10.1f %10.1f\n\n", config.c_str(),
                "overhead", overhead.median / 1e3, overhead.p95 / 1e3,
                overhead.p99 / 1e3);
  }

  std::printf("wrote BENCH_ingress_loopback.json\n");
  return 0;
}
