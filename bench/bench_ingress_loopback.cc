// Ingress loopback overhead: the same jobs submitted (a) directly
// through ServeNode::submit, (b) through the full socket wire path —
// encode, Unix socket, IngressServer event loop, completion hook,
// decode — and (c) through the shared-memory ring data plane
// (src/ingress/shm_ring.h), all on the SAME node in the SAME process.
// The three legs are interleaved run by run so machine noise hits them
// alike, and the overhead families are percentiles of the PER-RUN PAIRED
// DIFFERENCES (wire_ns[i] - direct_ns[i]) — differencing each leg's
// percentiles would subtract unrelated runs and can even invert the tail
// order. BENCH_ingress_loopback.json records all series so bench_diff
// tracks the trajectory.
//
//   AID_BENCH_RUNS  — round-trips per configuration (default 5; CI uses
//                     more for stable tails)
//   AID_BENCH_SCALE — trip-count scale
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ingress/ingress_client.h"
#include "ingress/ingress_server.h"
#include "platform/platform.h"
#include "serve/serve_node.h"
#include "workloads/serve_kernel.h"

namespace {

using namespace aid;
using clock_type = std::chrono::steady_clock;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock_type::now().time_since_epoch())
          .count());
}

/// One timed round-trip through an IngressClient; returns false (with a
/// message on stderr) when the trip did not end COMPLETED(done).
bool wire_trip(ingress::IngressClient& client, i64 count, double* out_ns) {
  ingress::IngressClient::Request req;
  req.workload = "EP";
  req.count = count;
  req.sched = sched::ScheduleKind::kStatic;
  const double t0 = now_ns();
  const u64 id = client.submit(req);
  if (id == 0) {
    std::fprintf(stderr, "submit: %s\n", client.last_error().c_str());
    return false;
  }
  const ingress::IngressClient::Result res = client.wait(id);
  const double t1 = now_ns();
  if (!res.transport_ok || res.status != serve::JobStatus::kDone) {
    std::fprintf(stderr, "wire submit failed: %s\n", res.message.c_str());
    return false;
  }
  *out_ns = t1 - t0;
  return true;
}

/// Element-wise paired differences wire[i] - direct[i].
std::vector<double> paired_diff(const std::vector<double>& wire,
                                const std::vector<double>& direct) {
  std::vector<double> d(wire.size());
  for (usize i = 0; i < wire.size(); ++i) d[i] = wire[i] - direct[i];
  return d;
}

void print_row(const std::string& config, const char* path,
               const bench::SampleSummary& s) {
  std::printf("%-28s %10s %10.1f %10.1f %10.1f\n", config.c_str(), path,
              s.median / 1e3, s.p95 / 1e3, s.p99 / 1e3);
}

}  // namespace

int main() {
  const platform::Platform platform = platform::symmetric(
      std::max(2u, std::thread::hardware_concurrency()));
  bench::print_header(
      "Ingress loopback overhead (socket vs shm ring vs direct submit)",
      platform);

  serve::ServeNode::Config node_cfg;
  serve::ServeNode node(platform, node_cfg);

  ingress::IngressServer::Config icfg;
  icfg.socket_path =
      "/tmp/aid_bench_loopback_" + std::to_string(::getpid()) + ".sock";
  icfg.credit_window = 8;
  ingress::IngressServer server(node, icfg);

  std::string error;
  auto socket_client = ingress::IngressClient::connect(
      icfg.socket_path, "bench-socket", &error);
  if (!socket_client) {
    std::fprintf(stderr, "connect(socket): %s\n", error.c_str());
    return 1;
  }
  auto shm_client = ingress::IngressClient::connect(
      icfg.socket_path, "bench-shm", &error,
      ingress::IngressClient::Transport::kShm);
  if (!shm_client) {
    std::fprintf(stderr, "connect(shm): %s\n", error.c_str());
    return 1;
  }

  const auto params = bench::params_for(platform);
  const int warmup = 3;
  const int runs = std::max(5, params.runs * 8);  // tails need samples

  bench::BenchJsonWriter json("ingress_loopback");
  std::printf("%-28s %10s %10s %10s %10s\n", "config", "path", "p50_us",
              "p95_us", "p99_us");

  for (const i64 base_count : {i64{1} << 10, i64{1} << 16}) {
    const i64 count = std::max<i64>(
        1, static_cast<i64>(static_cast<double>(base_count) * params.scale));
    const std::string config =
        "workload=EP/count=" + std::to_string(count);
    std::vector<double> direct_ns;
    std::vector<double> socket_ns;
    std::vector<double> shm_ns;

    // Interleave the three paths so machine noise hits all alike.
    for (int r = -warmup; r < runs; ++r) {
      {
        // The direct leg does the same work a SUBMIT frame triggers —
        // kernel construction included — so the delta isolates the wire:
        // encode, transport hop, event loop, completion hook, checksum,
        // decode.
        const double t0 = now_ns();
        std::string kerr;
        auto kernel = workloads::make_serve_kernel("EP", count, &kerr);
        if (!kernel) {
          std::fprintf(stderr, "kernel: %s\n", kerr.c_str());
          return 1;
        }
        serve::JobSpec spec;
        spec.count = kernel->count;
        spec.body = kernel->body;
        // Same schedule on all legs — the delta must be the wire, not a
        // static-vs-dynamic chunking difference.
        spec.sched = sched::ScheduleSpec::static_even();
        serve::JobTicket t = node.submit(std::move(spec));
        const serve::JobResult& jr = t.wait();
        const double t1 = now_ns();
        if (jr.status != serve::JobStatus::kDone) {
          std::fprintf(stderr, "direct submit: %s\n", to_string(jr.status));
          return 1;
        }
        if (r >= 0) direct_ns.push_back(t1 - t0);
      }
      {
        double ns = 0.0;
        if (!wire_trip(*socket_client, count, &ns)) return 1;
        if (r >= 0) socket_ns.push_back(ns);
      }
      {
        double ns = 0.0;
        if (!wire_trip(*shm_client, count, &ns)) return 1;
        if (r >= 0) shm_ns.push_back(ns);
      }
    }

    const bench::SampleSummary direct = bench::summarize(direct_ns);
    const bench::SampleSummary socket = bench::summarize(socket_ns);
    const bench::SampleSummary shm = bench::summarize(shm_ns);
    json.add(config, "direct_roundtrip_ns", direct);
    json.add(config, "socket_roundtrip_ns", socket);
    json.add(config, "shm_roundtrip_ns", shm);
    // The headline numbers: percentiles of the per-run paired difference
    // against the interleaved direct leg. (NOT the difference of each
    // leg's percentiles — the runs backing socket.p99 and direct.p99 are
    // unrelated, and subtracting them produced impossible tails like
    // p99 < p95 and negative medians in earlier snapshots.)
    const bench::SampleSummary socket_over =
        bench::summarize(paired_diff(socket_ns, direct_ns));
    const bench::SampleSummary shm_over =
        bench::summarize(paired_diff(shm_ns, direct_ns));
    json.add(config, "ingress_overhead_ns", socket_over);
    json.add(config, "shm_overhead_ns", shm_over);

    print_row(config, "direct", direct);
    print_row(config, "socket", socket);
    print_row(config, "shm", shm);
    print_row(config, "sock-over", socket_over);
    print_row(config, "shm-over", shm_over);
    std::printf("\n");
  }

  std::printf("wrote BENCH_ingress_loopback.json\n");
  return 0;
}
