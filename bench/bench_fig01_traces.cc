// Reproduces Fig. 1: execution traces of the EP benchmark with the static
// schedule and 4 threads on (a) 2 big + 2 small cores and (b) 4 small
// cores. The paper's observation: with static on the AMP, big-core threads
// idle at the barrier and the 2B-2S configuration completes no faster than
// four small cores.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sim/app_simulator.h"
#include "trace/trace.h"

int main() {
  using namespace aid;
  const auto xu4 = platform::odroid_xu4();
  const auto amp = xu4.subset({2, 2}, "2B-2S (Odroid-XU4 subset)");
  const auto small4 = xu4.subset({4, 0}, "4S (Odroid-XU4 subset)");
  const auto* ep = workloads::find_workload("EP");
  const auto params = bench::params_for(xu4);

  const auto run = [&](const platform::Platform& p, const char* label) {
    bench::print_header(std::string("Figure 1 — EP, static, 4 threads, ") +
                            label,
                        p);
    const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
    sim::AppSimulator simulator(p, layout,
                                sched::ScheduleSpec::static_even(),
                                params.overhead);
    trace::Trace tr(4);
    const auto result = simulator.run(ep->model(p, params.scale), &tr);
    std::cout << trace::render_ascii(tr) << '\n';
    const auto rep = trace::analyze(tr);
    std::cout << "completion: " << format_double(result.total_ns / 1e6, 2)
              << " ms   imbalance (max/avg busy): "
              << format_double(rep.imbalance, 3)
              << "   utilization: " << format_double(rep.utilization, 3)
              << "   sync fraction: " << format_double(rep.sync_fraction, 3)
              << "\n\n";
    return result.total_ns;
  };

  const Nanos t_amp = run(amp, "2B-2S (Fig. 1a)");
  const Nanos t_small = run(small4, "4S (Fig. 1b)");

  std::cout << "paper-claim check: 2B-2S vs 4S completion ratio = "
            << format_double(static_cast<double>(t_amp) /
                                 static_cast<double>(t_small),
                             3)
            << "  (paper: ~0.99 — 'nearly the same performance')\n";
  return 0;
}
