// Reproduces Fig. 8: sensitivity to the chunk parameter on Platform A for
// the benchmarks that benefit from dynamic iteration distribution —
// dynamic(BS) with chunk in {1,2,4,5,10,15,20,25,30} versus AID-dynamic
// with minor chunk 1 and Major chunk M in {1,2,4,5,10,15,20,25,30,35}.
//
// Expected shape: large chunks wreck dynamic (end-of-loop imbalance: "some
// threads may suddenly remove all remaining iterations"), while
// AID-dynamic's endgame optimization makes it far less chunk-sensitive.
// Paper: best-chunk AID-dynamic beats best-chunk dynamic by up to 21.9%
// and 5.5% on average.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace aid;
  const auto platform = platform::odroid_xu4();
  const auto params = bench::params_for(platform);
  bench::print_header("Figure 8 — chunk sensitivity, Platform A", platform);

  // The paper's Fig. 8 benchmark set.
  const auto apps = bench::apps_by_name(
      {"BT", "EP", "FT", "MG", "bodytrack", "heartwall", "hotspot3D",
       "lavamd", "leukocyte", "particlefilter", "sradv1"});

  const i64 dynamic_chunks[] = {1, 2, 4, 5, 10, 15, 20, 25, 30};
  const i64 major_chunks[] = {1, 2, 4, 5, 10, 15, 20, 25, 30, 35};

  std::vector<harness::SchedConfig> configs;
  configs.push_back({"static(BS)", sched::ScheduleSpec::static_even(),
                     platform::Mapping::kBigFirst});
  for (i64 c : dynamic_chunks)
    configs.push_back({"dynamic/" + std::to_string(c),
                       sched::ScheduleSpec::dynamic(c),
                       platform::Mapping::kBigFirst});
  for (i64 M : major_chunks)
    configs.push_back({"AID-dyn/1," + std::to_string(M),
                       sched::ScheduleSpec::aid_dynamic(1, std::max<i64>(M, 1)),
                       platform::Mapping::kBigFirst});

  // Note: AID-dynamic requires M >= m; M=1 with m=1 is legal.
  const auto data = harness::run_figure(apps, platform, configs, params,
                                        /*baseline=*/0);
  harness::print_figure(std::cout, data,
                        "Figure 8 (normalized to static(BS))");

  // Paper-claim checks: (1) best-explored-chunk comparison per app;
  // (2) chunk sensitivity = worst/best ratio per method — the paper's core
  // Fig. 8 message is that AID-dynamic "effectively removes this source of
  // load imbalance" and is therefore much less sensitive to the choice.
  double sum_gain = 0.0;
  double max_gain = 0.0;
  double worst_dyn_sensitivity = 0.0;
  double worst_aid_sensitivity = 0.0;
  std::string worst_dyn_app;
  for (usize a = 0; a < data.app_names.size(); ++a) {
    double best_dyn = 0.0;
    double worst_dyn = 1e30;
    double best_aid = 0.0;
    double worst_aid = 1e30;
    for (usize c = 0; c < configs.size(); ++c) {
      const double v = data.normalized[a][c];
      if (configs[c].label.rfind("dynamic/", 0) == 0) {
        best_dyn = std::max(best_dyn, v);
        worst_dyn = std::min(worst_dyn, v);
      }
      if (configs[c].label.rfind("AID-dyn/", 0) == 0) {
        best_aid = std::max(best_aid, v);
        worst_aid = std::min(worst_aid, v);
      }
    }
    const double gain = best_aid / best_dyn - 1.0;
    sum_gain += gain;
    max_gain = std::max(max_gain, gain);
    if (best_dyn / worst_dyn > worst_dyn_sensitivity) {
      worst_dyn_sensitivity = best_dyn / worst_dyn;
      worst_dyn_app = data.app_names[a];
    }
    worst_aid_sensitivity =
        std::max(worst_aid_sensitivity, best_aid / worst_aid);
  }
  const double n_apps = static_cast<double>(data.app_names.size());
  std::cout << "paper-claim check:\n"
            << "  best-chunk AID-dynamic vs best-chunk dynamic: "
            << format_double(sum_gain / n_apps * 100.0, 1) << "% avg, up to "
            << format_double(max_gain * 100.0, 1)
            << "%  (paper: 5.5% avg, up to 21.9%)\n"
            << "  worst chunk sensitivity (best/worst): dynamic "
            << format_double(worst_dyn_sensitivity, 2) << "x on "
            << worst_dyn_app << ", AID-dynamic "
            << format_double(worst_aid_sensitivity, 2)
            << "x  (paper: dynamic degrades sharply at large chunks, "
               "AID-dynamic stays flat)\n";
  return 0;
}
