// Reproduces Fig. 2: big-to-small relative performance (speedup factor) of
// the first 30 loops of BT and CG on Platforms A and B, measured with the
// paper's offline protocol (Sec. 2): run the application with one thread on
// a big core and one thread on a small core, report the per-loop
// completion-time ratio.
//
// Expected shape: wildly loop-dependent SF on Platform A (1x..~8x sawtooth),
// compressed into ~1.5x..2.25x on Platform B.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace aid;
  for (const char* app_name : {"BT", "CG"}) {
    const auto* app = workloads::find_workload(app_name);
    for (const auto& platform :
         {platform::odroid_xu4(), platform::xeon_emulated_amp()}) {
      auto params = bench::params_for(platform);
      const auto sf = harness::measure_offline_sf(*app, platform, params);

      std::cout << "Figure 2 — per-loop speedup factor: " << app_name
                << " on " << platform.name() << '\n';
      TextTable table({"loop", "SF", "bar"});
      double max_sf = 0.0;
      double min_sf = 1e9;
      for (usize l = 0; l < sf.size() && l < 30; ++l) {
        table.row()
            .cell(static_cast<i64>(l))
            .cell(sf[l], 2)
            .cell(ascii_bar(sf[l], 9.0, 45));
        max_sf = std::max(max_sf, sf[l]);
        min_sf = std::min(min_sf, sf[l]);
      }
      table.print(std::cout);
      std::cout << "range: " << format_double(min_sf, 2) << " .. "
                << format_double(max_sf, 2) << "\n\n";
    }
  }
  std::cout
      << "paper-claim check: Platform A spans ~1x..7.7x (BT) / up to ~8x "
         "(CG);\nPlatform B is compressed into ~1.7x..2.2x for both.\n";
  return 0;
}
