// Reproduces the Sec. 5 guided-schedule finding: "guided increases
// completion time by 44% and 65% on average relative to static and dynamic,
// and never outperforms both of these two approaches for any program."
//
// Mechanism (see sched/guided_sched.h): guided's first removals hand each
// thread ~NI/T iterations regardless of core speed; a small core stuck with
// such a block strands the loop while the shrinking tail cannot rebalance.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

int main() {
  using namespace aid;
  for (const auto& platform :
       {platform::odroid_xu4(), platform::xeon_emulated_amp()}) {
    bench::print_header("guided vs static/dynamic", platform);
    const auto params = bench::params_for(platform);

    const std::vector<harness::SchedConfig> configs = {
        {"static(BS)", sched::ScheduleSpec::static_even(),
         platform::Mapping::kBigFirst},
        {"dynamic(BS)", sched::ScheduleSpec::dynamic(1),
         platform::Mapping::kBigFirst},
        {"guided(BS)", sched::ScheduleSpec::guided(1),
         platform::Mapping::kBigFirst},
    };
    const auto data =
        harness::run_figure(bench::all_apps(), platform, configs, params);

    TextTable table({"benchmark", "T(guided)/T(static)", "T(guided)/T(dynamic)",
                     "beats both?"});
    std::vector<double> vs_static;
    std::vector<double> vs_dynamic;
    int wins = 0;
    for (usize a = 0; a < data.app_names.size(); ++a) {
      const double g_vs_s = data.time_ns[a][2] / data.time_ns[a][0];
      const double g_vs_d = data.time_ns[a][2] / data.time_ns[a][1];
      vs_static.push_back(g_vs_s);
      vs_dynamic.push_back(g_vs_d);
      const bool beats_both = g_vs_s < 1.0 && g_vs_d < 1.0;
      wins += beats_both ? 1 : 0;
      table.row()
          .cell(data.app_names[a])
          .cell(g_vs_s, 3)
          .cell(g_vs_d, 3)
          .cell(std::string(beats_both ? "YES" : "no"));
    }
    table.print(std::cout);
    std::cout << "average completion-time increase: vs static "
              << format_double((stats::mean(vs_static) - 1.0) * 100.0, 1)
              << "%, vs dynamic "
              << format_double((stats::mean(vs_dynamic) - 1.0) * 100.0, 1)
              << "%; programs where guided beats both: " << wins
              << "\n(paper: +44% vs static, +65% vs dynamic, never beats "
                 "both)\n\n";
  }
  std::cout
      << "KNOWN DEVIATION: this reproduction does NOT recover the paper's "
         "guided collapse.\nWith decaying chunks a small core can never "
         "accumulate more than an even share of a loop,\nso first-principles "
         "stranding cannot produce a 44% loss against static; see "
         "EXPERIMENTS.md\nfor the full discussion and hypotheses.\n";
  return 0;
}
