// Fork/join fast-path microbenchmark (runtime critical path, no simulation).
//
// The paper's core claim is that AID adds negligible runtime overhead over
// libgomp `dynamic`; that only holds if the *runtime's own* fork/join cost
// is negligible, which is exactly what this bench pins down. For each
// (nthreads, loop-size, schedule) configuration it measures, per
// Team::run_loop call:
//
//   roundtrip_ns      — full dispatch -> barrier -> return latency;
//   dispatch_first_ns — master's run_loop entry to the first body
//                       invocation anywhere in the team;
//   join_last_ns      — last body invocation's end to run_loop's return.
//
// Medians and p95s are printed as a table and emitted as
// BENCH_micro_forkjoin.json (see bench_util.h) so the before/after effect
// of runtime changes stays machine-trackable across PRs.
//
// The `chain=K` config family measures the loop-pipeline subsystem
// (src/pipeline/): for K small dependent-free loops it reports
//
//   sync_total_ns  — K back-to-back Team::run_loop calls (a full implicit
//                    barrier between every construct);
//   chain_total_ns — one Team::run_chain over the same K loops (nowait
//                    flow over the generation-dock ring; one join at the
//                    chain-end flush).
//
// The `shard=` config family measures the work-share pool itself under a
// steal-heavy arming (the big cluster's shard holds 1/8 of the space, so
// its threads drain home fast and then steal / bulk-migrate):
//
//   take_ns          — one take/steal round-trip (per-op, all threads);
//   local_share_pct  — removals served by the taker's home shard, in %
//                      (single pool: 0 — every removal hits the one line
//                      all clusters write);
//   rebalances_per_run — contiguous blocks bulk-migrated per drain.
//
// shard=single is the classic one-line WorkShare, shard=sharded the
// per-core-type ShardedWorkShare, shard=fallback1 the ShardedWorkShare
// forced to one shard (the AID_SHARDS=1 regression guard: it must stay
// within noise of single). NOTE on 1-CPU hosts: all threads share one
// L1, so the cross-cluster coherence cost the sharding removes is
// invisible in take_ns there — the locality story shows in
// local_share_pct; take_ns separation needs a real multicore.
//
// Tunables: AID_BENCH_FORKJOIN_RUNS (samples/config, default 300),
// AID_BENCH_FORKJOIN_MAXTHREADS (default 16, capped sweep 1,2,4,8,16).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "common/time_source.h"
#include "pipeline/loop_chain.h"
#include "platform/platform.h"
#include "rt/gomp_compat.h"
#include "rt/runtime.h"
#include "rt/team.h"
#include "sched/sharded_work_share.h"
#include "sched/work_share.h"

namespace {

using namespace aid;

struct LatencySamples {
  std::vector<double> roundtrip;
  std::vector<double> dispatch_first;
  std::vector<double> join_last;
};

LatencySamples measure(rt::Team& team, i64 count,
                       const sched::ScheduleSpec& spec, int runs) {
  const SteadyTimeSource clock;
  LatencySamples out;
  std::atomic<Nanos> first_ts{0};
  std::atomic<Nanos> last_ts{0};

  const rt::RangeBody body = [&](i64, i64, const rt::WorkerInfo&) {
    Nanos expected = 0;
    const Nanos now = clock.now();
    first_ts.compare_exchange_strong(expected, now,
                                     std::memory_order_relaxed);
    // Max-update: concurrent finishers must not let an earlier timestamp
    // overwrite a later one, or join_last_ns absorbs inter-worker skew.
    const Nanos end = clock.now();
    Nanos prev = last_ts.load(std::memory_order_relaxed);
    while (prev < end && !last_ts.compare_exchange_weak(
                             prev, end, std::memory_order_relaxed)) {
    }
  };

  const int warmup = runs / 10 + 5;
  for (int r = -warmup; r < runs; ++r) {
    first_ts.store(0, std::memory_order_relaxed);
    last_ts.store(0, std::memory_order_relaxed);
    const Nanos t0 = clock.now();
    team.run_loop(count, spec, body);
    const Nanos t1 = clock.now();
    if (r < 0) continue;
    out.roundtrip.push_back(static_cast<double>(t1 - t0));
    const Nanos first = first_ts.load(std::memory_order_relaxed);
    const Nanos last = last_ts.load(std::memory_order_relaxed);
    if (count > 0 && first != 0) {
      out.dispatch_first.push_back(static_cast<double>(first - t0));
      out.join_last.push_back(static_cast<double>(t1 - last));
    }
  }
  return out;
}

void report(bench::BenchJsonWriter& json, const std::string& config,
            const char* metric, const std::vector<double>& samples) {
  if (samples.empty()) return;
  const bench::SampleSummary s = bench::summarize(samples);
  std::printf("  %-45s %-18s median %9.0f ns   p95 %9.0f ns\n",
              config.c_str(), metric, s.median, s.p95);
  json.add(config, metric, s);
}

struct ChainSamples {
  std::vector<double> sync_total;
  std::vector<double> chain_total;
};

/// Total wall time of K loops executed synchronously (K run_loop calls,
/// K implicit barriers) versus pipelined (one run_chain, one flush).
ChainSamples measure_chain(rt::Team& team, int chain_len, i64 count,
                           const sched::ScheduleSpec& spec, int runs) {
  const SteadyTimeSource clock;
  ChainSamples out;
  const rt::RangeBody body = [](i64, i64, const rt::WorkerInfo&) {};

  pipeline::LoopChain chain;
  for (int k = 0; k < chain_len; ++k) chain.add(count, spec, body);

  const int warmup = runs / 10 + 5;
  for (int r = -warmup; r < runs; ++r) {
    const Nanos t0 = clock.now();
    for (int k = 0; k < chain_len; ++k) team.run_loop(count, spec, body);
    const Nanos t1 = clock.now();
    team.run_chain(chain);
    const Nanos t2 = clock.now();
    if (r < 0) continue;
    out.sync_total.push_back(static_cast<double>(t1 - t0));
    out.chain_total.push_back(static_cast<double>(t2 - t1));
  }
  return out;
}

// --- cancel= family --------------------------------------------------------
//
// The failure-domain layer's two bench guards (src/rt/README.md "Failure
// model"):
//
//   cancel_latency_chunks — chunks taken after a cancel fired from inside
//       the first chunk's body. Cooperative cancellation is observed at
//       the chunk-take boundary, so the overshoot is bounded by roughly
//       one in-flight chunk per team member — this metric pins that bound
//       (deliberately not a *_ns family: it gates on chunk counts).
//   roundtrip_ns (cancel=unarmed / cancel=armed) — the same small static
//       construct without and with a never-firing deadline: the armed
//       variant pays the watchdog's arm/disarm (one mutex hop each) on
//       top of the construct; the unarmed take path must stay within
//       noise of the committed roundtrip baseline (the token probe is one
//       relaxed load).

void report_cancel_family(bench::BenchJsonWriter& json, rt::Team& team,
                          int nthreads, int runs) {
  {
    const sched::ScheduleSpec dyn = sched::ScheduleSpec::dynamic(16);
    std::vector<double> latency;
    const int warmup = runs / 10 + 5;
    for (int r = -warmup; r < runs; ++r) {
      CancelToken token;
      std::atomic<i64> chunks{0};
      const rt::RangeBody body = [&](i64, i64, const rt::WorkerInfo&) {
        if (chunks.fetch_add(1, std::memory_order_relaxed) == 0)
          token.cancel();
      };
      team.run_loop(i64{1} << 14, dyn.with_cancel(&token), body);
      if (r < 0) continue;
      latency.push_back(
          static_cast<double>(chunks.load(std::memory_order_relaxed) - 1));
    }
    char config[96];
    std::snprintf(config, sizeof config,
                  "threads=%d/cancel=latency/sched=dynamic16", nthreads);
    report(json, config, "cancel_latency_chunks", latency);
  }
  for (const bool armed : {false, true}) {
    sched::ScheduleSpec spec = sched::ScheduleSpec::static_even();
    if (armed) spec.deadline_ns = i64{3600} * 1'000'000'000;  // never fires
    char config[96];
    std::snprintf(config, sizeof config,
                  "threads=%d/cancel=%s/count=256/sched=static", nthreads,
                  armed ? "armed" : "unarmed");
    const LatencySamples s = measure(team, 256, spec, runs);
    report(json, config, "roundtrip_ns", s.roundtrip);
  }
}

// --- gomp_chain= family ----------------------------------------------------
//
// The same K-loop sync-vs-pipelined comparison as `chain=K`, but through
// the GOMP compat surface (rt/gomp_compat.h): K consecutive work shares
// inside one aid_gomp_parallel region, ended with aid_gomp_loop_end
// (sync_total_ns — a construct barrier after every loop) or
// aid_gomp_loop_end_nowait (chain_total_ns — nowait flow over the
// work-share generation ring; the region end is the flush). This is the
// unmodified-OpenMP-code path: the acceptance target is chain_total_ns
// within ~1.3x of the native `chain=K` family at the same thread count.
// Runs on the *global* runtime (the gomp surface has no per-Team form),
// whose shape main() pins via the environment before first use.

struct GompChainCtx {
  int chain_len = 0;
  long count = 0;
  bool nowait = false;
};

void gomp_chain_bench_body(void* data) {
  auto* ctx = static_cast<GompChainCtx*>(data);
  for (int k = 0; k < ctx->chain_len; ++k) {
    long start = 0;
    long end = 0;
    if (aid::rt::gomp::aid_gomp_loop_runtime_start(0, ctx->count, 1, &start,
                                                   &end)) {
      do {
      } while (aid::rt::gomp::aid_gomp_loop_runtime_next(&start, &end));
    }
    if (ctx->nowait)
      aid::rt::gomp::aid_gomp_loop_end_nowait();
    else
      aid::rt::gomp::aid_gomp_loop_end();
  }
}

ChainSamples measure_gomp_chain(int chain_len, i64 count, int runs) {
  const SteadyTimeSource clock;
  ChainSamples out;
  GompChainCtx sync{chain_len, static_cast<long>(count), /*nowait=*/false};
  GompChainCtx chained{chain_len, static_cast<long>(count), /*nowait=*/true};

  const int warmup = runs / 10 + 5;
  for (int r = -warmup; r < runs; ++r) {
    const Nanos t0 = clock.now();
    aid::rt::gomp::aid_gomp_parallel(gomp_chain_bench_body, &sync);
    const Nanos t1 = clock.now();
    aid::rt::gomp::aid_gomp_parallel(gomp_chain_bench_body, &chained);
    const Nanos t2 = clock.now();
    if (r < 0) continue;
    out.sync_total.push_back(static_cast<double>(t1 - t0));
    out.chain_total.push_back(static_cast<double>(t2 - t1));
  }
  return out;
}

void report_gomp_chain_family(bench::BenchJsonWriter& json, int runs) {
  constexpr int kChainLen = 8;
  const int nthreads = rt::Runtime::instance().nthreads();
  for (const i64 count : {i64{256}, i64{1} << 12}) {
    char config[96];
    std::snprintf(config, sizeof config,
                  "threads=%d/gomp_chain=%d/count=%lld/sched=runtime",
                  nthreads, kChainLen, static_cast<long long>(count));
    const ChainSamples s = measure_gomp_chain(kChainLen, count, runs);
    report(json, config, "sync_total_ns", s.sync_total);
    report(json, config, "chain_total_ns", s.chain_total);
  }
}

// --- shard= family ---------------------------------------------------------

struct ShardSamples {
  std::vector<double> take_ns;         // per-op, all threads and runs
  std::vector<double> local_pct;       // per-run home-shard removal share
  std::vector<double> rebalances;      // per-run bulk migrations
};

/// Drain `count` iterations with `nthreads` real threads hammering
/// `take(tid)` in chunks, timing every take/steal round-trip. `rearm`
/// resets the pool before each run; `counters` reports that run's
/// {local, remote, rebalances} afterwards.
template <typename TakeFn, typename RearmFn, typename CounterFn>
ShardSamples measure_pool(int nthreads, int runs, TakeFn&& take,
                          RearmFn&& rearm, CounterFn&& counters) {
  const SteadyTimeSource clock;
  ShardSamples out;
  std::vector<std::vector<double>> per_thread(
      static_cast<usize>(nthreads));

  const int warmup = runs / 10 + 2;
  for (int r = -warmup; r < runs; ++r) {
    rearm();
    for (auto& v : per_thread) v.clear();
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    auto worker = [&](int tid) {
      auto& samples = per_thread[static_cast<usize>(tid)];
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (;;) {
        const Nanos t0 = clock.now();
        const sched::IterRange got = take(tid);
        const Nanos t1 = clock.now();
        if (got.empty()) break;
        samples.push_back(static_cast<double>(t1 - t0));
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<usize>(nthreads - 1));
    for (int t = 1; t < nthreads; ++t) threads.emplace_back(worker, t);
    while (ready.load(std::memory_order_acquire) < nthreads - 1)
      std::this_thread::yield();
    go.store(true, std::memory_order_release);
    worker(0);
    for (auto& t : threads) t.join();
    if (r < 0) continue;
    i64 local = 0, remote = 0, rebalances = 0;
    counters(local, remote, rebalances);
    for (const auto& v : per_thread)
      out.take_ns.insert(out.take_ns.end(), v.begin(), v.end());
    out.local_pct.push_back(local + remote > 0
                                ? 100.0 * static_cast<double>(local) /
                                      static_cast<double>(local + remote)
                                : 0.0);
    out.rebalances.push_back(static_cast<double>(rebalances));
  }
  return out;
}

void report_shard_family(bench::BenchJsonWriter& json, int nthreads,
                         i64 count, i64 chunk, int runs) {
  const auto platform = platform::generic_amp(
      nthreads - nthreads / 2 > 0 ? nthreads - nthreads / 2 : 1,
      nthreads / 2 > 0 ? nthreads / 2 : 1, 2.0);
  const platform::TeamLayout layout(platform, nthreads,
                                    platform::Mapping::kBigFirst);
  const sched::ShardTopology topo = sched::ShardTopology::from_layout(
      layout, /*requested_shards=*/0);
  // Steal-heavy arming: invert the capacity split so the faster cluster's
  // threads drain home early and must steal or bulk-migrate.
  std::vector<double> skew(static_cast<usize>(topo.nshards()), 7.0);
  if (topo.nshards() > 1) skew.back() = 1.0;

  const auto label = [&](const char* kind) {
    char config[96];
    std::snprintf(config, sizeof config,
                  "threads=%d/iters=%lld/shard=%s", nthreads,
                  static_cast<long long>(count), kind);
    return std::string(config);
  };
  const auto emit = [&](const std::string& config, const ShardSamples& s) {
    report(json, config, "take_ns", s.take_ns);
    report(json, config, "local_share_pct", s.local_pct);
    report(json, config, "rebalances_per_run", s.rebalances);
  };

  {
    // The committed single-pool baseline: one WorkShare line shared by
    // every thread of every cluster.
    sched::WorkShare pool(nthreads);
    emit(label("single"),
         measure_pool(
             nthreads, runs,
             [&](int tid) { return pool.take(chunk, tid); },
             [&] { pool.reset(count); },
             [&](i64& local, i64& remote, i64&) {
               local = 0;
               remote = pool.removals();
             }));
  }
  {
    sched::ShardedWorkShare pool(topo, nthreads);
    emit(label("sharded"),
         measure_pool(
             nthreads, runs,
             [&](int tid) { return pool.take(chunk, tid, topo.home_of(tid)); },
             [&] { pool.reset(count, skew); },
             [&](i64& local, i64& remote, i64& rebalances) {
               local = pool.local_removals();
               remote = pool.remote_removals();
               rebalances = pool.rebalances();
             }));
  }
  {
    // AID_SHARDS=1 fallback: must stay within noise of shard=single.
    sched::ShardedWorkShare pool(sched::ShardTopology::single(nthreads),
                                 nthreads);
    emit(label("fallback1"),
         measure_pool(
             nthreads, runs,
             [&](int tid) { return pool.take(chunk, tid, 0); },
             [&] { pool.reset(count); },
             [&](i64& local, i64& remote, i64& rebalances) {
               local = pool.local_removals();
               remote = pool.remote_removals();
               rebalances = pool.rebalances();
             }));
  }
}

}  // namespace

int main() {
  const int runs =
      static_cast<int>(env::get_int("AID_BENCH_FORKJOIN_RUNS", 300));
  const int max_threads =
      static_cast<int>(env::get_int("AID_BENCH_FORKJOIN_MAXTHREADS", 16));

  // The gomp_chain= family drives the global runtime; pin its shape (4
  // threads, no AMP throttling, a deterministic runtime schedule) before
  // anything materializes it. Pre-set environment wins.
  ::setenv("AID_NUM_THREADS", "4", 0);
  ::setenv("AID_EMULATE_AMP", "0", 0);
  ::setenv("AID_SCHEDULE", "dynamic,16", 0);

  bench::BenchJsonWriter json("micro_forkjoin");
  std::printf("fork/join fast-path latency (%d runs per config)\n\n", runs);

  const struct {
    const char* label;
    sched::ScheduleSpec spec;
  } specs[] = {
      {"static", sched::ScheduleSpec::static_even()},
      {"dynamic16", sched::ScheduleSpec::dynamic(16)},
  };

  for (int nthreads : {1, 2, 4, 8, 16}) {
    if (nthreads > max_threads) break;
    // No throttling: pure runtime cost, no emulated AMP. The platform always
    // has at least one core of each type (generic_amp's contract); the team
    // binds the first `nthreads` of them.
    const auto platform = platform::generic_amp(
        nthreads - nthreads / 2 > 0 ? nthreads - nthreads / 2 : 1,
        nthreads / 2 > 0 ? nthreads / 2 : 1, 2.0);
    rt::Team team(platform, nthreads, platform::Mapping::kBigFirst,
                  /*emulate_amp=*/false);
    for (const i64 count : {i64{0}, i64{1} << 10, i64{1} << 14}) {
      for (const auto& [label, spec] : specs) {
        if (count == 0 && spec.kind != sched::ScheduleKind::kStatic)
          continue;  // empty loop: scheduler choice is irrelevant
        char config[96];
        std::snprintf(config, sizeof config,
                      "threads=%d/count=%lld/sched=%s", nthreads,
                      static_cast<long long>(count), label);
        const LatencySamples s = measure(team, count, spec, runs);
        report(json, config, "roundtrip_ns", s.roundtrip);
        report(json, config, "dispatch_first_ns", s.dispatch_first);
        report(json, config, "join_last_ns", s.join_last);
      }
    }

    // Chained vs synchronous K-loop round trips (the loop-pipeline payoff:
    // K-1 inter-construct barriers traded for nowait flow over the ring).
    constexpr int kChainLen = 8;
    for (const i64 count : {i64{256}, i64{1} << 12}) {
      for (const auto& [label, spec] : specs) {
        char config[96];
        std::snprintf(config, sizeof config,
                      "threads=%d/chain=%d/count=%lld/sched=%s", nthreads,
                      kChainLen, static_cast<long long>(count), label);
        const ChainSamples s =
            measure_chain(team, kChainLen, count, spec, runs);
        report(json, config, "sync_total_ns", s.sync_total);
        report(json, config, "chain_total_ns", s.chain_total);
      }
    }

    // Steal-heavy pool-level take/steal round-trips (single vs sharded vs
    // the AID_SHARDS=1 fallback) plus the local-vs-remote removal ratio.
    report_shard_family(json, nthreads, /*count=*/i64{1} << 12, /*chunk=*/4,
                        runs);

    // Failure-domain guards: cooperative cancel overshoot (in chunks) and
    // the watchdog arm/disarm tax on the construct round-trip.
    report_cancel_family(json, team, nthreads, runs);
  }

  // GOMP work shares through the generation ring, sync vs nowait (after
  // the sweep so the global runtime's team coexists with no bench team).
  report_gomp_chain_family(json, runs);
  return 0;
}
