// Fork/join fast-path microbenchmark (runtime critical path, no simulation).
//
// The paper's core claim is that AID adds negligible runtime overhead over
// libgomp `dynamic`; that only holds if the *runtime's own* fork/join cost
// is negligible, which is exactly what this bench pins down. For each
// (nthreads, loop-size, schedule) configuration it measures, per
// Team::run_loop call:
//
//   roundtrip_ns      — full dispatch -> barrier -> return latency;
//   dispatch_first_ns — master's run_loop entry to the first body
//                       invocation anywhere in the team;
//   join_last_ns      — last body invocation's end to run_loop's return.
//
// Medians and p95s are printed as a table and emitted as
// BENCH_micro_forkjoin.json (see bench_util.h) so the before/after effect
// of runtime changes stays machine-trackable across PRs.
//
// The `chain=K` config family measures the loop-pipeline subsystem
// (src/pipeline/): for K small dependent-free loops it reports
//
//   sync_total_ns  — K back-to-back Team::run_loop calls (a full implicit
//                    barrier between every construct);
//   chain_total_ns — one Team::run_chain over the same K loops (nowait
//                    flow over the generation-dock ring; one join at the
//                    chain-end flush).
//
// Tunables: AID_BENCH_FORKJOIN_RUNS (samples/config, default 300),
// AID_BENCH_FORKJOIN_MAXTHREADS (default 16, capped sweep 1,2,4,8,16).
#include <atomic>
#include <cstdio>

#include "bench_util.h"
#include "common/time_source.h"
#include "pipeline/loop_chain.h"
#include "platform/platform.h"
#include "rt/team.h"

namespace {

using namespace aid;

struct LatencySamples {
  std::vector<double> roundtrip;
  std::vector<double> dispatch_first;
  std::vector<double> join_last;
};

LatencySamples measure(rt::Team& team, i64 count,
                       const sched::ScheduleSpec& spec, int runs) {
  const SteadyTimeSource clock;
  LatencySamples out;
  std::atomic<Nanos> first_ts{0};
  std::atomic<Nanos> last_ts{0};

  const rt::RangeBody body = [&](i64, i64, const rt::WorkerInfo&) {
    Nanos expected = 0;
    const Nanos now = clock.now();
    first_ts.compare_exchange_strong(expected, now,
                                     std::memory_order_relaxed);
    // Max-update: concurrent finishers must not let an earlier timestamp
    // overwrite a later one, or join_last_ns absorbs inter-worker skew.
    const Nanos end = clock.now();
    Nanos prev = last_ts.load(std::memory_order_relaxed);
    while (prev < end && !last_ts.compare_exchange_weak(
                             prev, end, std::memory_order_relaxed)) {
    }
  };

  const int warmup = runs / 10 + 5;
  for (int r = -warmup; r < runs; ++r) {
    first_ts.store(0, std::memory_order_relaxed);
    last_ts.store(0, std::memory_order_relaxed);
    const Nanos t0 = clock.now();
    team.run_loop(count, spec, body);
    const Nanos t1 = clock.now();
    if (r < 0) continue;
    out.roundtrip.push_back(static_cast<double>(t1 - t0));
    const Nanos first = first_ts.load(std::memory_order_relaxed);
    const Nanos last = last_ts.load(std::memory_order_relaxed);
    if (count > 0 && first != 0) {
      out.dispatch_first.push_back(static_cast<double>(first - t0));
      out.join_last.push_back(static_cast<double>(t1 - last));
    }
  }
  return out;
}

void report(bench::BenchJsonWriter& json, const std::string& config,
            const char* metric, const std::vector<double>& samples) {
  if (samples.empty()) return;
  const bench::SampleSummary s = bench::summarize(samples);
  std::printf("  %-45s %-18s median %9.0f ns   p95 %9.0f ns\n",
              config.c_str(), metric, s.median, s.p95);
  json.add(config, metric, s);
}

struct ChainSamples {
  std::vector<double> sync_total;
  std::vector<double> chain_total;
};

/// Total wall time of K loops executed synchronously (K run_loop calls,
/// K implicit barriers) versus pipelined (one run_chain, one flush).
ChainSamples measure_chain(rt::Team& team, int chain_len, i64 count,
                           const sched::ScheduleSpec& spec, int runs) {
  const SteadyTimeSource clock;
  ChainSamples out;
  const rt::RangeBody body = [](i64, i64, const rt::WorkerInfo&) {};

  pipeline::LoopChain chain;
  for (int k = 0; k < chain_len; ++k) chain.add(count, spec, body);

  const int warmup = runs / 10 + 5;
  for (int r = -warmup; r < runs; ++r) {
    const Nanos t0 = clock.now();
    for (int k = 0; k < chain_len; ++k) team.run_loop(count, spec, body);
    const Nanos t1 = clock.now();
    team.run_chain(chain);
    const Nanos t2 = clock.now();
    if (r < 0) continue;
    out.sync_total.push_back(static_cast<double>(t1 - t0));
    out.chain_total.push_back(static_cast<double>(t2 - t1));
  }
  return out;
}

}  // namespace

int main() {
  const int runs =
      static_cast<int>(env::get_int("AID_BENCH_FORKJOIN_RUNS", 300));
  const int max_threads =
      static_cast<int>(env::get_int("AID_BENCH_FORKJOIN_MAXTHREADS", 16));

  bench::BenchJsonWriter json("micro_forkjoin");
  std::printf("fork/join fast-path latency (%d runs per config)\n\n", runs);

  const struct {
    const char* label;
    sched::ScheduleSpec spec;
  } specs[] = {
      {"static", sched::ScheduleSpec::static_even()},
      {"dynamic16", sched::ScheduleSpec::dynamic(16)},
  };

  for (int nthreads : {1, 2, 4, 8, 16}) {
    if (nthreads > max_threads) break;
    // No throttling: pure runtime cost, no emulated AMP. The platform always
    // has at least one core of each type (generic_amp's contract); the team
    // binds the first `nthreads` of them.
    const auto platform = platform::generic_amp(
        nthreads - nthreads / 2 > 0 ? nthreads - nthreads / 2 : 1,
        nthreads / 2 > 0 ? nthreads / 2 : 1, 2.0);
    rt::Team team(platform, nthreads, platform::Mapping::kBigFirst,
                  /*emulate_amp=*/false);
    for (const i64 count : {i64{0}, i64{1} << 10, i64{1} << 14}) {
      for (const auto& [label, spec] : specs) {
        if (count == 0 && spec.kind != sched::ScheduleKind::kStatic)
          continue;  // empty loop: scheduler choice is irrelevant
        char config[96];
        std::snprintf(config, sizeof config,
                      "threads=%d/count=%lld/sched=%s", nthreads,
                      static_cast<long long>(count), label);
        const LatencySamples s = measure(team, count, spec, runs);
        report(json, config, "roundtrip_ns", s.roundtrip);
        report(json, config, "dispatch_first_ns", s.dispatch_first);
        report(json, config, "join_last_ns", s.join_last);
      }
    }

    // Chained vs synchronous K-loop round trips (the loop-pipeline payoff:
    // K-1 inter-construct barriers traded for nowait flow over the ring).
    constexpr int kChainLen = 8;
    for (const i64 count : {i64{256}, i64{1} << 12}) {
      for (const auto& [label, spec] : specs) {
        char config[96];
        std::snprintf(config, sizeof config,
                      "threads=%d/chain=%d/count=%lld/sched=%s", nthreads,
                      kChainLen, static_cast<long long>(count), label);
        const ChainSamples s =
            measure_chain(team, kChainLen, count, spec, runs);
        report(json, config, "sync_total_ns", s.sync_total);
        report(json, config, "chain_total_ns", s.chain_total);
      }
    }
  }
  return 0;
}
