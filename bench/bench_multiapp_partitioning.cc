// Extension bench (paper Sec. 4.3 scenario): two applications sharing the
// AMP under OS-driven core partitioning.
//
// The OS splits the Odroid between two co-running applications; each app's
// runtime learns its allotment through the Sec. 4.3 shared region and
// schedules with AID on its partition. We compare, per partition shape,
// how AID-static holds up against static/dynamic — the performance-
// portability claim: the same unmodified binary adapts to whatever slice
// of the machine the OS grants it.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sim/app_simulator.h"

int main() {
  using namespace aid;
  const auto full = platform::odroid_xu4();
  bench::print_header(
      "Multi-application partitioning (Sec. 4.3 extension)", full);
  const auto params = bench::params_for(full);
  bench::BenchJsonWriter json("multiapp_partitioning");

  // OS partition shapes for an app co-running with one neighbour.
  struct Partition {
    const char* label;
    std::vector<int> counts;  // {small, big} cores granted
  };
  const Partition partitions[] = {
      {"whole machine (4S+4B)", {4, 4}},
      {"half, balanced (2S+2B)", {2, 2}},
      {"big-heavy (1S+3B)", {1, 3}},
      {"small-heavy (3S+1B)", {3, 1}},
  };

  for (const char* app_name : {"EP", "streamcluster", "sradv1"}) {
    const auto* app = workloads::find_workload(app_name);
    TextTable table({"partition", "threads", "static", "dynamic,1",
                     "AID-static", "AID gain vs static"});
    for (const auto& part : partitions) {
      const auto sub = full.subset(part.counts, part.label);
      const int nthreads = sub.num_cores();
      const platform::TeamLayout layout(sub, nthreads,
                                        platform::Mapping::kBigFirst);
      const auto run = [&](const sched::ScheduleSpec& spec) {
        sim::AppSimulator simulator(sub, layout, spec, params.overhead);
        return static_cast<double>(
            simulator.run(app->model(sub, params.scale)).total_ns);
      };
      const double t_static = run(sched::ScheduleSpec::static_even());
      const double t_dynamic = run(sched::ScheduleSpec::dynamic(1));
      const double t_aid = run(sched::ScheduleSpec::aid_static(1));
      // Machine-readable record per (app, partition): completion times and
      // the AID-vs-static gain, for perf-trajectory diffs across PRs. The
      // simulator is deterministic, so each cell is a single sample.
      const std::string config =
          std::string(app_name) + "/" + part.label;
      json.add(config, "static_ms", bench::summarize({t_static / 1e6}));
      json.add(config, "dynamic1_ms", bench::summarize({t_dynamic / 1e6}));
      json.add(config, "aid_static_ms", bench::summarize({t_aid / 1e6}));
      json.add(config, "aid_gain_vs_static_pct",
               bench::summarize({(t_static / t_aid - 1.0) * 100.0}));
      table.row()
          .cell(std::string(part.label))
          .cell(static_cast<i64>(nthreads))
          .cell(t_static / 1e6, 2)
          .cell(t_dynamic / 1e6, 2)
          .cell(t_aid / 1e6, 2)
          .cell((t_static / t_aid - 1.0) * 100.0, 1);
    }
    std::cout << app_name << " (completion time in ms per partition):\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expectation: AID's gain over static appears on every "
               "asymmetric partition and vanishes on symmetric slices — "
               "performance portability without code changes.\n";
  return 0;
}
