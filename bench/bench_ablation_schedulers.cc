// Ablation study backing DESIGN.md's design-choice claims — compares AID
// against the related-work baselines the paper cites (Sec. 3) and against
// crippled variants of itself, on Platform A:
//
//   trapezoid (Tzen & Ni '93 [46])      — decreasing chunks, asymmetry-blind
//   weighted-factoring (Hummel '96 [21]) — fixed nominal weights, no
//                                          per-loop sampling
//   AID-static(nominal)                  — AID's distribution driven by the
//                                          platform's nominal ratio instead
//                                          of the sampled per-loop SF
//   AID-dynamic(no endgame)              — Fig. 5 caption optimization off
//
// Expected outcomes:
//   * AID-static(nominal) trails AID-static wherever per-loop SF departs
//     from the platform's nominal ratio (the Fig. 2 spread is the whole
//     point of online estimation);
//   * disabling the endgame re-introduces dynamic's large-chunk tail
//     imbalance at large M;
//   * the decaying-chunk baselines (trapezoid, weighted factoring) are
//     competitive in the simulator: self-scheduling with decaying chunks is
//     genuinely robust, at the cost of O(T log N) removals and oversized
//     early chunks — effects the overhead model prices modestly. The paper
//     does not evaluate them; this is an extension.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace aid;
  const auto platform = platform::odroid_xu4();
  bench::print_header("Ablation — AID vs related work and crippled variants",
                      platform);
  const auto params = bench::params_for(platform);

  const double nominal = platform.nominal_asymmetry();
  const std::vector<harness::SchedConfig> configs = {
      {"static(BS)", sched::ScheduleSpec::static_even(),
       platform::Mapping::kBigFirst},
      {"dynamic(BS)", sched::ScheduleSpec::dynamic(1),
       platform::Mapping::kBigFirst},
      {"trapezoid", sched::ScheduleSpec::trapezoid(),
       platform::Mapping::kBigFirst},
      {"w-factoring", sched::ScheduleSpec::weighted_factoring(),
       platform::Mapping::kBigFirst},
      {"AID-static", sched::ScheduleSpec::aid_static(1),
       platform::Mapping::kBigFirst},
      {"AID-static(nominal)",
       sched::ScheduleSpec::aid_static_offline(nominal, 1),
       platform::Mapping::kBigFirst},
      {"AID-dynamic", sched::ScheduleSpec::aid_dynamic(1, 5),
       platform::Mapping::kBigFirst},
      {"AID-dyn(no-endgame,M=30)",
       sched::ScheduleSpec::aid_dynamic_no_endgame(1, 30),
       platform::Mapping::kBigFirst},
      {"AID-dyn(M=30)", sched::ScheduleSpec::aid_dynamic(1, 30),
       platform::Mapping::kBigFirst},
  };

  const auto data = harness::run_figure(bench::all_apps(), platform, configs,
                                        params, /*baseline=*/0);
  harness::print_figure(std::cout, data, "Ablation (normalized to static(BS))");

  const auto gm = [&](const char* label) {
    return harness::column_geomean(data, harness::config_index(data, label));
  };
  std::cout << "design-choice checks:\n"
            << "  online sampling vs nominal ratio: AID-static "
            << format_double(gm("AID-static"), 3) << " vs AID-static(nominal) "
            << format_double(gm("AID-static(nominal)"), 3)
            << "  (sampling should win: per-loop SF varies, Fig. 2)\n"
            << "  vs weighted factoring: " << format_double(gm("w-factoring"), 3)
            << "  (fixed weights + O(T log N) removals)\n"
            << "  vs trapezoid: " << format_double(gm("trapezoid"), 3)
            << "  (asymmetry-blind decreasing chunks)\n"
            << "  endgame value at M=30: with "
            << format_double(gm("AID-dyn(M=30)"), 3) << " vs without "
            << format_double(gm("AID-dyn(no-endgame,M=30)"), 3)
            << "  (Fig. 5 caption: the switch removes tail imbalance)\n";
  return 0;
}
