// Serving-tier saturation sweep: tail latency and fairness of the QoS
// classes on the shared pool (src/serve/) under open-loop offered load.
//
// Synthetic open-loop clients submit fixed-demand jobs at a configured
// arrival rate — open-loop means a client does NOT wait for one job
// before submitting the next, so offered load is independent of how the
// tier copes (the standard way to expose queueing collapse). The sweep
// crosses:
//
//   QoS mixes    — balanced (4/4/4 clients per class) and latency-heavy
//                  (8/2/2); clients of a class submit only that class.
//   load factors — offered CPU demand as a fraction of machine capacity:
//                  0.5 (headroom), 1.0 (at capacity), 2.0 (saturated —
//                  the admission queues and backpressure must carry it).
//
// Per (mix, load, class) it reports completed/rejected counts, p50/p95/
// p99 whole-life job latency (queue wait + service, the number a client
// actually experiences), and the Jain fairness index across the class's
// clients' completion counts. Emits BENCH_pool_saturation.json.
//
// The acceptance claim, asserted at the saturated load point of every
// mix: the latency class's p99 stays BELOW the batch class's p99 — the
// weighted-fair + preemptive queue discipline and the big-core-priority
// lease mapping must privilege the latency tenant precisely when the
// machine is oversubscribed, or the serving tier has no reason to exist.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/spin_work.h"
#include "common/time_source.h"
#include "platform/platform.h"
#include "serve/serve_node.h"

namespace {

using namespace aid;

constexpr i64 kJobIters = 64;
constexpr Nanos kIterSpinNs = 5000;  // ~320 us of CPU demand per job

struct Mix {
  const char* name;
  std::array<int, serve::kNumQosClasses> clients;  // latency/normal/batch
};

struct ClientLog {
  serve::QosClass cls;
  std::vector<serve::JobTicket> tickets;
};

/// One open-loop window: every client submits on its own cadence for
/// `window_ns`, then the node drains and the tickets are harvested.
std::vector<ClientLog> run_window(serve::ServeNode& node, const Mix& mix,
                                  double load_factor, Nanos window_ns,
                                  int num_cores) {
  int total_clients = 0;
  for (const int n : mix.clients) total_clients += n;

  // Offered load: each job demands kJobIters * kIterSpinNs of CPU; the
  // machine serves num_cores of CPU per second of wall time. Spreading
  // factor*capacity evenly over the clients gives the per-client period.
  const double job_demand_ns =
      static_cast<double>(kJobIters) * static_cast<double>(kIterSpinNs);
  const double jobs_per_sec =
      load_factor * static_cast<double>(num_cores) * 1e9 / job_demand_ns;
  const Nanos period_ns = static_cast<Nanos>(
      static_cast<double>(total_clients) * 1e9 / jobs_per_sec);

  std::vector<ClientLog> logs(static_cast<usize>(total_clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<usize>(total_clients));
  usize slot = 0;
  for (int c = 0; c < serve::kNumQosClasses; ++c) {
    for (int k = 0; k < mix.clients[static_cast<usize>(c)]; ++k, ++slot) {
      ClientLog& log = logs[slot];
      log.cls = serve::qos_of(c);
      threads.emplace_back([&node, &log, period_ns, window_ns] {
        const SteadyTimeSource clock;
        const Nanos t0 = clock.now();
        Nanos next = t0;
        while (clock.now() - t0 < window_ns) {
          serve::JobSpec spec;
          spec.qos = log.cls;
          spec.count = kJobIters;
          spec.sched = sched::ScheduleSpec::dynamic(8);
          spec.body = [](i64 b, i64 e, const rt::WorkerInfo&) {
            for (i64 i = b; i < e; ++i) spin_for_nanos(kIterSpinNs);
          };
          // Open loop: reject on backpressure, never wait for results.
          log.tickets.push_back(node.submit(std::move(spec)));
          next += period_ns;
          const Nanos now = clock.now();
          if (next > now)
            std::this_thread::sleep_for(std::chrono::nanoseconds(next - now));
          else
            next = now;  // fell behind: resume the cadence from here
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  node.drain();  // queued survivors complete; their waits count
  return logs;
}

struct ClassOutcome {
  std::vector<double> latency_ns;     // completed jobs, whole-life
  std::vector<double> per_client_ok;  // completions per client (fairness)
  u64 rejected = 0;
};

}  // namespace

int main() {
  const auto platform = platform::generic_amp(2, 2, 2.0);
  bench::print_header("Serving-tier saturation sweep (open-loop QoS mixes)",
                      platform);
  const double scale = env::get_double("AID_BENCH_SCALE", 1.0);
  const Nanos window_ns = static_cast<Nanos>(300e6 * scale);
  bench::BenchJsonWriter json("pool_saturation");

  const Mix mixes[] = {
      {"balanced", {4, 4, 4}},
      {"latency-heavy", {8, 2, 2}},
  };
  const double loads[] = {0.5, 1.0, 2.0};

  std::printf(
      "job demand %lld x %lld ns, window %.0f ms/point, open-loop clients\n\n",
      static_cast<long long>(kJobIters), static_cast<long long>(kIterSpinNs),
      static_cast<double>(window_ns) / 1e6);

  for (const Mix& mix : mixes) {
    for (const double load : loads) {
      // A fresh node per point: stats and queues start empty.
      serve::ServeNode node(platform, serve::ServeNode::Config{});
      const auto logs =
          run_window(node, mix, load, window_ns, platform.num_cores());

      std::array<ClassOutcome, serve::kNumQosClasses> out;
      for (const ClientLog& log : logs) {
        const usize c = static_cast<usize>(serve::index_of(log.cls));
        double ok = 0.0;
        for (const auto& ticket : log.tickets) {
          // Harvest without blocking: drain() already resolved them all.
          const serve::JobResult& r =
              const_cast<serve::JobTicket&>(ticket).wait();
          if (r.status == serve::JobStatus::kDone) {
            out[c].latency_ns.push_back(
                static_cast<double>(r.queue_wait_ns + r.service_ns));
            ok += 1.0;
          } else {
            ++out[c].rejected;
          }
        }
        out[c].per_client_ok.push_back(ok);
      }

      std::printf("mix=%-13s load=%.1f\n", mix.name, load);
      std::array<bench::SampleSummary, serve::kNumQosClasses> summaries;
      for (int c = 0; c < serve::kNumQosClasses; ++c) {
        const usize ci = static_cast<usize>(c);
        const auto cls = serve::qos_of(c);
        summaries[ci] = bench::summarize(out[ci].latency_ns);
        const double jain = bench::jain_index(out[ci].per_client_ok);
        char config[96];
        std::snprintf(config, sizeof config, "mix=%s/load=%.1f/class=%s",
                      mix.name, load, serve::to_string(cls));
        json.add(config, "job_latency_ns", summaries[ci]);
        json.add(config, "jain_fairness", {jain, jain, jain, 1});
        const double rej = static_cast<double>(out[ci].rejected);
        json.add(config, "rejected_jobs", {rej, rej, rej, 1});
        std::printf(
            "  %-8s ok %5d  rej %5llu  p50 %8.2f ms  p95 %8.2f ms  "
            "p99 %8.2f ms  jain %.3f\n",
            serve::to_string(cls), summaries[ci].runs,
            static_cast<unsigned long long>(out[ci].rejected),
            summaries[ci].median / 1e6, summaries[ci].p95 / 1e6,
            summaries[ci].p99 / 1e6, jain);
      }

      // The tier's reason to exist, checked where it is hardest: with the
      // machine oversubscribed 2x, the latency class's tail must still
      // undercut the batch class's tail.
      const auto& lat = summaries[static_cast<usize>(
          serve::index_of(serve::QosClass::kLatency))];
      const auto& bat = summaries[static_cast<usize>(
          serve::index_of(serve::QosClass::kBatch))];
      if (load >= 2.0 && lat.runs >= 10 && bat.runs >= 10)
        AID_CHECK_MSG(lat.p99 < bat.p99,
                      "latency-class p99 did not undercut batch at saturation");
      std::printf("\n");
    }
  }

  std::printf(
      "expectation: at load 2.0 the latency class's p99 stays below the "
      "batch class's p99 in every mix (QoS discipline holds at "
      "saturation), while batch absorbs the overload as queueing and "
      "rejections.\n");
  return 0;
}
