// Microbenchmarks for the Sec. 4.2 implementation claims, using
// google-benchmark on the REAL data structures (no simulation):
//  * a pool removal is a single fetch-add (WorkShare::take);
//  * the sampling bookkeeping (SfEstimator::record) is two atomic adds and
//    a counter increment — "the sampling phase has very low overhead";
//  * scheduler next() costs: static < AID-static < dynamic in removals.
#include <benchmark/benchmark.h>

#include "platform/platform.h"
#include "platform/team_layout.h"
#include "sched/loop_scheduler.h"
#include "sched/sf_estimator.h"
#include "sched/work_share.h"

namespace {

using namespace aid;

void BM_WorkShareTake(benchmark::State& state) {
  sched::WorkShare pool;  // google-benchmark locals are per-thread
  pool.reset(1LL << 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.take(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkShareTake)->ThreadRange(1, 4)->UseRealTime();

void BM_WorkShareTakeAdaptive(benchmark::State& state) {
  sched::WorkShare pool;
  pool.reset(1LL << 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pool.take_adaptive([](i64 remaining) { return remaining / 64 + 1; }));
  }
}
BENCHMARK(BM_WorkShareTakeAdaptive)->ThreadRange(1, 4)->UseRealTime();

// Endgame-stealing guard: probing a *drained* pool must be a read-only
// check (no fetch_add hammering, next_ stays bounded) and must not count
// as a removal.
void BM_WorkShareTakeDrained(benchmark::State& state) {
  sched::WorkShare pool;
  pool.reset(1);
  (void)pool.take(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.take(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkShareTakeDrained)->ThreadRange(1, 4)->UseRealTime();

void BM_SfEstimatorRecord(benchmark::State& state) {
  sched::SfEstimator estimator(2);
  estimator.reset(1 << 30);
  int type = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.record(type, 1000, 1));
    type ^= 1;
  }
}
BENCHMARK(BM_SfEstimatorRecord);

void BM_SchedulerNext(benchmark::State& state, const sched::ScheduleSpec spec) {
  const auto platform = platform::generic_amp(2, 2, 3.0);
  const platform::TeamLayout layout(platform, 4, platform::Mapping::kBigFirst);
  SteadyTimeSource clock;
  sched::ThreadContext tc{.tid = 0, .core_type = 1, .speed = 3.0, .time = &clock};
  auto sched = sched::make_scheduler(spec, 1LL << 40, layout);
  sched::IterRange r;
  for (auto _ : state) {
    if (!sched->next(tc, r)) {
      state.PauseTiming();
      sched->reset(1LL << 40);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_SchedulerNext, dynamic1, sched::ScheduleSpec::dynamic(1));
BENCHMARK_CAPTURE(BM_SchedulerNext, dynamic16,
                  sched::ScheduleSpec::dynamic(16));
BENCHMARK_CAPTURE(BM_SchedulerNext, guided, sched::ScheduleSpec::guided(1));
BENCHMARK_CAPTURE(BM_SchedulerNext, aid_dynamic,
                  sched::ScheduleSpec::aid_dynamic(1, 5));

}  // namespace

BENCHMARK_MAIN();
