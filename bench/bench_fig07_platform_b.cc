// Reproduces Fig. 7: normalized performance of the 21 benchmarks under the
// seven loop-scheduling configurations on Platform B (emulated-AMP Xeon
// E5-2620 v4), baseline static(SB), 8 threads, default chunks.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace aid;
  const auto platform = platform::xeon_emulated_amp();
  bench::print_header(
      "Figure 7 — normalized performance per loop-scheduling method, "
      "Platform B",
      platform);

  const auto params = bench::params_for(platform);
  const auto data = harness::run_figure(bench::all_apps(), platform,
                                        harness::standard_configs(), params);
  harness::print_figure(std::cout, data, "Figure 7 (Platform B, 8 threads)");

  // Headline paper claims this figure backs (Sec. 5A):
  const usize st_sb = harness::config_index(data, "static(SB)");
  const usize dyn_bs = harness::config_index(data, "dynamic(BS)");
  const usize aid_dy = harness::config_index(data, "AID-dynamic");

  double worst_dynamic_slowdown = 0.0;
  std::string worst_app;
  double sum_aid_dyn_gain = 0.0;
  for (usize a = 0; a < data.app_names.size(); ++a) {
    const double slowdown = data.time_ns[a][dyn_bs] / data.time_ns[a][st_sb];
    if (slowdown > worst_dynamic_slowdown) {
      worst_dynamic_slowdown = slowdown;
      worst_app = data.app_names[a];
    }
    sum_aid_dyn_gain +=
        data.time_ns[a][dyn_bs] / data.time_ns[a][aid_dy] - 1.0;
  }
  std::cout << "paper-claim check (Platform B):\n"
            << "  worst dynamic slowdown vs static(SB): "
            << format_double(worst_dynamic_slowdown, 2) << "x on " << worst_app
            << "  (paper: up to 2.86x on CG)\n"
            << "  mean AID-dynamic gain vs dynamic(BS): "
            << format_double(sum_aid_dyn_gain /
                                 static_cast<double>(data.app_names.size()) *
                                 100.0,
                             1)
            << "%  (paper: ~22% average)\n";
  return 0;
}
