// Reproduces Fig. 6: normalized performance of the 21 benchmarks under the
// seven loop-scheduling configurations on Platform A (Odroid-XU4), baseline
// static(SB), 8 threads, default chunks (dynamic 1, AID m=1/M=5, hybrid 80%).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace aid;
  const auto platform = platform::odroid_xu4();
  bench::print_header(
      "Figure 6 — normalized performance per loop-scheduling method, "
      "Platform A",
      platform);

  const auto params = bench::params_for(platform);
  const auto data =
      harness::run_figure(bench::all_apps(), platform,
                          harness::standard_configs(), params);
  harness::print_figure(std::cout, data, "Figure 6 (Platform A, 8 threads)");

  // Headline paper claims this figure backs (Sec. 5A):
  const usize st_bs = harness::config_index(data, "static(BS)");
  const usize dyn_bs = harness::config_index(data, "dynamic(BS)");
  const usize aid_st = harness::config_index(data, "AID-static");
  const usize aid_hy = harness::config_index(data, "AID-hybrid");
  const usize aid_dy = harness::config_index(data, "AID-dynamic");

  double best_aid_static = 0.0;
  double best_aid_hybrid = 0.0;
  double best_aid_dynamic = 0.0;
  std::string hy_app;
  for (usize a = 0; a < data.app_names.size(); ++a) {
    best_aid_static =
        std::max(best_aid_static,
                 data.time_ns[a][st_bs] / data.time_ns[a][aid_st] - 1.0);
    const double hy = data.time_ns[a][st_bs] / data.time_ns[a][aid_hy] - 1.0;
    if (hy > best_aid_hybrid) {
      best_aid_hybrid = hy;
      hy_app = data.app_names[a];
    }
    best_aid_dynamic =
        std::max(best_aid_dynamic,
                 data.time_ns[a][dyn_bs] / data.time_ns[a][aid_dy] - 1.0);
  }
  std::cout << "paper-claim check (Platform A):\n"
            << "  max AID-static gain vs static(BS):  "
            << format_double(best_aid_static * 100.0, 1)
            << "%  (paper: up to 30.7%)\n"
            << "  max AID-hybrid gain vs static(BS):  "
            << aid::format_double(best_aid_hybrid * 100.0, 1) << "% on " << hy_app
            << "  (paper: up to 56% on streamcluster)\n"
            << "  max AID-dynamic gain vs dynamic(BS): "
            << aid::format_double(best_aid_dynamic * 100.0, 1)
            << "%  (paper: up to 16.8% on hotspot3D)\n";
  return 0;
}
