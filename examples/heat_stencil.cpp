// Domain example: a 2D heat-diffusion solver (the hotspot-style workload
// from the paper's evaluation) time-stepped on an asymmetric multicore.
//
// Runs the same stencil under static, dynamic and the three AID schedules
// and reports wall time, the per-loop SF estimate, and the physics result
// (mean temperature must be identical under every schedule — the
// schedule-invariance contract).
//
//   ./build/examples/heat_stencil [side] [steps]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "rt/team.h"
#include "sched/schedule_spec.h"
#include "workloads/kernels.h"

namespace {

using namespace aid;

double mean_temperature(const workloads::kernels::Grid2D& g) {
  return std::accumulate(g.cells.begin(), g.cells.end(), 0.0) /
         static_cast<double>(g.cells.size());
}

}  // namespace

int main(int argc, char** argv) {
  using workloads::kernels::Grid2D;
  const i64 side = argc > 1 ? std::atoll(argv[1]) : 512;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;

  // A 2-small + 2-big virtual AMP, emulated with duty-cycle throttling on
  // this machine; replace with AID_BIND_THREADS=1 AID_EMULATE_AMP=0 on a
  // real big.LITTLE board.
  rt::Team team(platform::generic_amp(2, 2, 3.0), 4,
                platform::Mapping::kBigFirst, /*emulate_amp=*/true);

  std::printf("heat_stencil: %lldx%lld grid, %d steps, team of %d (2 big + 2 "
              "small emulated)\n\n",
              static_cast<long long>(side), static_cast<long long>(side),
              steps, team.nthreads());
  std::printf("%-16s %10s %14s %12s\n", "schedule", "time [ms]",
              "pool removals", "mean temp");

  const std::pair<const char*, sched::ScheduleSpec> schedules[] = {
      {"static", sched::ScheduleSpec::static_even()},
      {"dynamic,1", sched::ScheduleSpec::dynamic(1)},
      {"guided", sched::ScheduleSpec::guided(1)},
      {"aid-static", sched::ScheduleSpec::aid_static(1)},
      {"aid-hybrid,80", sched::ScheduleSpec::aid_hybrid(1, 80.0)},
      {"aid-dynamic,1,5", sched::ScheduleSpec::aid_dynamic(1, 5)},
  };

  for (const auto& [label, spec] : schedules) {
    Grid2D a = Grid2D::generate(side, side, 0x47EA7);
    Grid2D b = a;
    const auto t0 = std::chrono::steady_clock::now();
    i64 removals = 0;
    for (int s = 0; s < steps; ++s) {
      const Grid2D& in = (s % 2 == 0) ? a : b;
      Grid2D& out = (s % 2 == 0) ? b : a;
      team.parallel_for(0, side, 1, spec,
                        [&](i64 row, const rt::WorkerInfo&) {
                          workloads::kernels::stencil2d_row(in, out, row,
                                                            0.15);
                        });
      removals += team.last_loop_stats().pool_removals;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const Grid2D& result = (steps % 2 == 0) ? a : b;
    std::printf("%-16s %10.2f %14lld %12.6f\n", label,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                static_cast<long long>(removals), mean_temperature(result));
  }

  std::printf("\nNote: identical 'mean temp' across schedules demonstrates "
              "the schedule-invariance contract; wall times on this machine "
              "reflect the emulated asymmetry plus host noise.\n");
  return 0;
}
