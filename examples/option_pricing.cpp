// Domain example: Black-Scholes option pricing (the PARSEC blackscholes
// workload from the paper) — the poster child for why runtime SF estimation
// matters (paper Fig. 9c).
//
// Prices a batch of European options through the thread team under
// AID-static with (a) online sampling and (b) a deliberately wrong
// "offline" SF, demonstrating how a stale SF over-allocates to big cores.
//
//   ./build/examples/option_pricing [num_options]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "rt/team.h"
#include "sched/schedule_spec.h"
#include "workloads/kernels.h"

int main(int argc, char** argv) {
  using namespace aid;
  namespace k = workloads::kernels;

  const i64 n = argc > 1 ? std::atoll(argv[1]) : 200000;
  const auto batch = k::OptionBatch::generate(n, 0x0B5);
  std::vector<double> price(static_cast<usize>(n));

  rt::Team team(platform::generic_amp(2, 2, 3.0), 4,
                platform::Mapping::kBigFirst, /*emulate_amp=*/true);

  const auto run = [&](const char* label, const sched::ScheduleSpec& spec) {
    const auto t0 = std::chrono::steady_clock::now();
    team.parallel_for(0, n, 1, spec, [&](i64 i, const rt::WorkerInfo&) {
      const usize u = static_cast<usize>(i);
      price[u] = k::black_scholes(batch.spot[u], batch.strike[u],
                                  batch.rate[u], batch.vol[u], batch.expiry[u],
                                  batch.call[u] != 0);
    });
    const auto t1 = std::chrono::steady_clock::now();
    double sum = 0.0;
    for (double p : price) sum += p;
    std::printf("%-28s %8.2f ms   portfolio value %.2f   estimated SF %.2f\n",
                label,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                sum, team.last_loop_stats().estimated_sf);
  };

  std::printf("pricing %lld options on an emulated 2B+2S AMP\n\n",
              static_cast<long long>(n));
  run("static", sched::ScheduleSpec::static_even());
  run("aid-static (online SF)", sched::ScheduleSpec::aid_static(4));
  // A wildly wrong offline SF (as if measured on an idle machine): big
  // cores get 10x shares they cannot honor; small cores idle.
  run("aid-static (offline SF=10)",
      sched::ScheduleSpec::aid_static_offline(10.0, 4));
  run("aid-hybrid 80%", sched::ScheduleSpec::aid_hybrid(4, 80.0));
  run("aid-dynamic (1,8)", sched::ScheduleSpec::aid_dynamic(1, 8));

  std::printf("\nTakeaway (paper Sec. 5C): SF must be measured under real "
              "load, at runtime — offline values mispredict and unbalance "
              "the loop.\n");
  return 0;
}
