// Quickstart: the 5-minute tour of libaid.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Environment knobs (the paper's activation story — no code changes):
//   AID_SCHEDULE=aid-static        ./build/examples/quickstart
//   AID_SCHEDULE=aid-dynamic,1,5   ./build/examples/quickstart
//   AID_PLATFORM=xeon-amp          ./build/examples/quickstart
//   AID_AMP_AFFINITY=1             (bind low thread ids to big cores)
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/spin_work.h"
#include "rt/runtime.h"
#include "sched/schedule_spec.h"

int main() {
  using namespace aid;

  // The global runtime materializes on first use, configured from the
  // environment exactly like an OpenMP program meeting libgomp.
  rt::Runtime& runtime = rt::Runtime::instance();
  std::printf("platform: %s", runtime.platform().describe().c_str());
  std::printf("config:   %s\n\n", runtime.config().describe().c_str());

  // --- 1. A parallel loop with the environment-selected schedule. -------
  constexpr i64 kN = 1 << 16;
  std::vector<double> squares(kN);
  rt::parallel_for(0, kN, 1, [&](i64 i, const rt::WorkerInfo&) {
    squares[static_cast<usize>(i)] =
        static_cast<double>(i) * static_cast<double>(i);
  });
  std::printf("sum of squares below %lld: %.0f\n", static_cast<long long>(kN),
              std::accumulate(squares.begin(), squares.end(), 0.0));

  // --- 2. The same loop with an explicit AID schedule. ------------------
  // AID-static samples each core type online, estimates the loop's
  // big-to-small speedup factor (SF) and hands every thread a block
  // proportional to its measured speed (paper Sec. 4.2, Fig. 3).
  std::vector<int> who(kN);
  runtime.parallel_for(0, kN, 1, sched::ScheduleSpec::aid_static(1),
                       [&](i64 i, const rt::WorkerInfo& w) {
                         who[static_cast<usize>(i)] = w.tid;
                       });
  // Sized by the machine: under AID_POOL the partition (and so the tids
  // recorded in `who`) may differ from nthreads() sampled after the loop.
  std::vector<i64> per_thread(
      static_cast<usize>(runtime.platform().num_cores()), 0);
  for (int tid : who) ++per_thread[static_cast<usize>(tid)];

  const auto stats = runtime.last_loop_stats();
  std::printf("\nAID-static distribution (estimated SF %.2f):\n",
              stats.estimated_sf);
  const platform::TeamLayout layout = runtime.layout();
  for (int tid = 0; tid < layout.nthreads(); ++tid) {
    std::printf("  tid %d on core %d (%s): %lld iterations\n", tid,
                layout.core_of(tid),
                layout.core_type_of(tid) ==
                        runtime.platform().num_core_types() - 1
                    ? "big"
                    : "small",
                static_cast<long long>(per_thread[static_cast<usize>(tid)]));
  }

  // --- 3. AID-dynamic: the low-overhead dynamic replacement. ------------
  // Iterations need to dwarf the bookkeeping for the comparison to mean
  // anything (a rule that applies to real dynamic scheduling too).
  constexpr i64 kWorkIters = 1 << 13;
  const auto heavy_body = [&](i64 i, const rt::WorkerInfo&) {
    squares[static_cast<usize>(i)] += static_cast<double>(spin_work(500));
  };
  runtime.parallel_for(0, kWorkIters, 1, sched::ScheduleSpec::dynamic(1),
                       heavy_body);
  const i64 dynamic_removals = runtime.last_loop_stats().pool_removals;
  runtime.parallel_for(0, kWorkIters, 1,
                       sched::ScheduleSpec::aid_dynamic(1, 8), heavy_body);
  const i64 aid_removals = runtime.last_loop_stats().pool_removals;
  std::printf("\nsame loop, %lld iterations: dynamic,1 made %lld pool "
              "removals; AID-dynamic(1,8) made %lld\n",
              static_cast<long long>(kWorkIters),
              static_cast<long long>(dynamic_removals),
              static_cast<long long>(aid_removals));
  std::printf("(when the host oversubscribes the team, descheduled threads "
              "delay AID phase closure and the\n waiting threads fall back "
              "to chunk steals, shrinking the gap; on a dedicated AMP with "
              "one\n thread per core the reduction approaches the Major-"
              "chunk factor — see bench_fig08.)\n");
  return 0;
}
