// Research tool: explore any bundled workload on any platform model.
//
// Reports, per parallel loop: the offline speedup factor (the paper's
// Sec. 2 protocol — single thread on big vs small), the online estimate
// (AID-static's sampling under the full team), and the end-to-end
// performance of each scheduling method. This is how Figs. 2, 6/7 and 9c
// were explored during development.
//
// Usage:
//   ./build/examples/loop_sf_explorer                  # list workloads
//   ./build/examples/loop_sf_explorer CG               # CG on Platform A
//   ./build/examples/loop_sf_explorer CG platform-b    # ... on Platform B
//   ./build/examples/loop_sf_explorer CG generic:2,6,4.0
#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/figure_printer.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace aid;

  if (argc < 2) {
    std::printf("usage: %s <workload> [platform]\n\nbundled workloads:\n",
                argv[0]);
    for (const auto& w : workloads::all_workloads())
      std::printf("  %-16s (%s) — %s\n", w.name().c_str(), w.suite().c_str(),
                  w.spec().description.c_str());
    std::printf("\nplatforms: odroid-xu4 (default) | xeon-amp | symmetric:N "
                "| generic:NS,NB,SPEED\n");
    return 0;
  }

  const auto* workload = workloads::find_workload(argv[1]);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (run without arguments for "
                         "the list)\n",
                 argv[1]);
    return 1;
  }
  auto platform = platform::odroid_xu4();
  if (argc > 2) {
    auto parsed = platform::parse_platform(argv[2]);
    if (!parsed) {
      std::fprintf(stderr, "unparsable platform '%s'\n", argv[2]);
      return 1;
    }
    platform = std::move(*parsed);
  }

  std::cout << platform.describe() << '\n';
  harness::ExperimentParams params;
  params.overhead = harness::overhead_for(platform);

  // Per-loop speedup factors: offline protocol vs online sampling.
  const auto offline = harness::measure_offline_sf(*workload, platform, params);
  const auto online = harness::measure_online_sf(*workload, platform, params);
  TextTable sf_table({"loop", "offline SF", "online SF", "bar (offline)"});
  for (usize l = 0; l < offline.size(); ++l) {
    sf_table.row()
        .cell(static_cast<i64>(l))
        .cell(offline[l], 2)
        .cell(l < online.size() ? online[l] : 0.0, 2)
        .cell(ascii_bar(offline[l], 9.0, 40));
  }
  std::cout << "per-loop speedup factors for " << workload->name() << ":\n";
  sf_table.print(std::cout);

  // End-to-end schedule comparison (one row of Fig. 6/7).
  const std::vector<const workloads::Workload*> apps{workload};
  const auto data = harness::run_figure(apps, platform,
                                        harness::standard_configs(), params);
  std::cout << '\n';
  harness::print_figure(std::cout, data,
                        "normalized performance (" + workload->name() + ")");
  return 0;
}
