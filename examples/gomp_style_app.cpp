// The "unmodified application" story, end to end.
//
// This file is written the way GCC lowers an OpenMP parallel-for when the
// paper's compiler change is active (Sec. 4.1): the loop body is an
// outlined function driven by GOMP_loop_runtime_start/next, and the actual
// schedule comes from the environment — no schedule appears in the code.
//
//   AID_SCHEDULE=static        ./build/examples/gomp_style_app
//   AID_SCHEDULE=dynamic,4     ./build/examples/gomp_style_app
//   AID_SCHEDULE=aid-static    ./build/examples/gomp_style_app
//   AID_SCHEDULE=aid-dynamic   ./build/examples/gomp_style_app
//
// (Equivalent OpenMP source:
//    #pragma omp parallel for
//    for (long i = 0; i < N; ++i) histogram[key[i]]++;  // per-thread bins
// )
#include <chrono>
#include <cstdio>
#include <vector>

#include "rt/gomp_compat.h"
#include "rt/runtime.h"
#include "workloads/kernels.h"

namespace {

using namespace aid;
using rt::gomp::aid_gomp_loop_end;
using rt::gomp::aid_gomp_loop_runtime_next;
using rt::gomp::aid_gomp_loop_runtime_start;
using rt::gomp::aid_gomp_parallel;
using rt::gomp::aid_gomp_thread_num;

constexpr long kKeys = 500'000;
constexpr i32 kMaxKey = 4096;

struct AppData {
  workloads::kernels::KeyBatch batch;
  std::vector<std::vector<i64>> bins;  // one histogram per thread
};

// What GCC emits for the parallel region: an outlined function containing
// the work-shared loop protocol.
void outlined_region(void* arg) {
  auto* data = static_cast<AppData*>(arg);
  auto& mine = data->bins[static_cast<usize>(aid_gomp_thread_num())];
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, kKeys, 1, &start, &end)) {
    do {
      workloads::kernels::is_histogram_slice(data->batch, mine, start, end);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

}  // namespace

int main() {
  rt::Runtime& runtime = rt::Runtime::instance();
  std::printf("schedule from environment: %s\n",
              runtime.default_schedule().display().c_str());

  AppData data;
  data.batch = workloads::kernels::KeyBatch::generate(kKeys, kMaxKey, 0x6011);
  // Size per-thread bins by the machine, not the current partition: under
  // AID_POOL the lease may grow between this query and the parallel
  // region (tids are always < num_cores; unused bins merge as zeros).
  data.bins.assign(static_cast<usize>(runtime.platform().num_cores()),
                   std::vector<i64>(kMaxKey, 0));

  const auto t0 = std::chrono::steady_clock::now();
  aid_gomp_parallel(outlined_region, &data);
  const auto t1 = std::chrono::steady_clock::now();

  i64 total = 0;
  i64 checksum = 0;
  std::vector<i64> merged(kMaxKey, 0);
  for (const auto& bins : data.bins)
    for (usize k = 0; k < bins.size(); ++k) merged[k] += bins[k];
  for (usize k = 0; k < merged.size(); ++k) {
    total += merged[k];
    checksum += merged[k] * static_cast<i64>(k);
  }

  std::printf("histogram of %lld keys in %.2f ms (checksum %lld)\n",
              static_cast<long long>(total),
              std::chrono::duration<double, std::milli>(t1 - t0).count(),
              static_cast<long long>(checksum));
  std::printf("the checksum is schedule-invariant: rerun with any "
              "AID_SCHEDULE value and compare.\n");
  return total == kKeys ? 0 : 1;
}
