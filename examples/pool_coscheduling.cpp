// Two applications sharing one AMP through the process-wide pool manager.
//
// The paper's Sec. 4.3 portability story, live: each "app" below is an
// unmodified data-parallel kernel; the PoolManager plays the OS, granting
// each app a slice of the machine and reshaping the slices while both
// keep running. Neither app creates threads — both lease partitions from
// the single shared worker pool, so the machine is never oversubscribed.
//
// The same routing is available without touching the pool API: run any
// libaid program with AID_POOL=1 and its global runtime leases its
// partition from PoolManager::instance() instead of building a private
// team (see rt/runtime_config.h).
//
//   ./pool_coscheduling
#include <cstdio>
#include <mutex>
#include <thread>

#include "pool/pool_manager.h"
#include "sched/schedule_spec.h"

using namespace aid;

namespace {

// A toy reduction kernel, partitioned by the runtime.
void run_app(pool::AppHandle& app, const char* name, int loops) {
  for (int l = 0; l < loops; ++l) {
    double sum = 0.0;
    std::mutex m;
    app.parallel_for(0, 1 << 16, 1, sched::ScheduleSpec::aid_static(1),
                     [&](i64 i, const rt::WorkerInfo&) {
                       const double v = static_cast<double>(i);
                       double local = v / (v + 1.0);
                       std::scoped_lock lock(m);
                       sum += local;
                     });
    const pool::AppAllotment a = app.allotment();
    std::printf("%s loop %d: %dB+%dS threads, sum=%.1f\n", name, l,
                a.threads_on_big, a.threads_on_small, sum);
  }
}

}  // namespace

int main() {
  pool::PoolManager& mgr = pool::PoolManager::instance();
  std::printf("pool platform: %s (%d cores)\n\n",
              mgr.platform().name().c_str(), mgr.platform().num_cores());

  pool::AppHandle fg = mgr.register_app("foreground", /*weight=*/3.0);
  pool::AppHandle bg = mgr.register_app("background", /*weight=*/1.0);

  std::thread bg_thread([&] { run_app(bg, "background", 4); });
  run_app(fg, "foreground", 2);

  // Mid-run, the arbiter decides latency matters: pack the big cores onto
  // the heavy app. Both apps adopt at their next loop boundary — no
  // threads are created or destroyed.
  mgr.set_policy(pool::Policy::kBigCorePriority);
  std::printf("\n-- policy switched to big-core-priority --\n\n");
  run_app(fg, "foreground", 2);

  bg_thread.join();
  return 0;
}
