// Admission control for the serving tier: the gate between client
// submissions and the shared pool.
//
// Enforces, per QoS class:
//   - a queue-depth limit — over-limit submissions get *backpressure*:
//     reject-with-reason or bounded block, the caller's choice
//     (SubmitOptions). A rejected job never spawns a thread, never takes
//     a lease, and never enters the queue.
//   - an in-flight concurrency limit — a class at its cap is masked out
//     of the dequeue discipline; its queued jobs wait.
//
// Deadlines are enforced with the PR 6 failure-domain machinery and
// nothing else: admission arms the job's CancelToken on the rt::Watchdog
// (gate-less entry — there is no construct gate yet) for the job's WHOLE
// life, so expiry behaves identically whether the job is still queued or
// already running. A job whose token is cancelled by the time the
// dispatcher pops it is resolved right there — in queue, pre-lease; its
// body never runs and no pool state is touched on its behalf
// (`JobResult::never_dispatched`). next() also compares the clock
// directly at dequeue, so an expired job never reaches dispatch even if
// the watchdog thread is lagging.
//
// All counters in ClassStats are exact (mutated under the admission
// mutex); tests assert the closed-form invariants
//   admitted == expired_in_queue + cancelled_in_queue + dispatched   (drained)
//   dispatched == completed + failed + expired_running + cancelled_running
#pragma once

#include <array>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/time_source.h"
#include "rt/watchdog.h"
#include "serve/job.h"
#include "serve/job_queue.h"
#include "serve/qos.h"

namespace aid::serve {

/// Per-class serving statistics (exact; see the invariants above).
struct ClassStats {
  u64 submitted = 0;   ///< submit() calls naming this class
  u64 admitted = 0;    ///< entered the queue
  u64 rejected = 0;    ///< backpressure (queue full / timeout / shutdown)
  u64 expired_in_queue = 0;    ///< deadline fired before dispatch
  u64 cancelled_in_queue = 0;  ///< user cancel before dispatch
  u64 dispatched = 0;  ///< handed to a dispatcher (a lease was taken)
  u64 completed = 0;
  u64 failed = 0;              ///< body threw
  u64 expired_running = 0;     ///< deadline fired mid-run (cooperative)
  u64 cancelled_running = 0;   ///< user cancel mid-run (cooperative)
  u64 lease_registered = 0;    ///< fresh pool leases taken for this class
  u64 lease_reused = 0;        ///< jobs served on a recycled class lease
  Nanos queue_wait_total = 0;  ///< submit → dispatch (or in-queue drop)
  Nanos queue_wait_max = 0;
  Nanos service_total = 0;     ///< dispatch → finish
};

struct ClassLimits {
  int max_queue = 64;    ///< queued (not running) jobs; >= 1
  int max_inflight = 1;  ///< concurrently dispatched jobs; >= 1
};

class AdmissionController {
 public:
  AdmissionController(const std::array<ClassLimits, kNumQosClasses>& limits,
                      const std::array<int, kNumQosClasses>& fair_weights,
                      int preempt_burst);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admit `job` into its class queue, or return the backpressure reason
  /// (the job was NOT admitted; the caller resolves its ticket as
  /// kRejected). Stamps submit_ns / deadline_abs_ns and arms the in-queue
  /// deadline watchdog on admission.
  [[nodiscard]] std::optional<std::string> submit(
      const std::shared_ptr<JobState>& job, const SubmitOptions& opts);

  /// Dispatcher entry: block until a runnable job is available, pop it by
  /// the queue discipline, charge its class's in-flight slot, and return
  /// it. Jobs found cancelled/expired at dequeue are resolved internally
  /// (never returned, never charged). Returns nullptr once shutdown has
  /// begun and the queue is drained.
  [[nodiscard]] std::shared_ptr<JobState> next();

  /// Run accounting for a job returned by next(): release the in-flight
  /// slot, disarm the deadline, record the outcome, and resolve the
  /// ticket — under the admission mutex, so once wait_idle() returns,
  /// every admitted job's ticket has been resolved (drain() implies
  /// every client waiter was released).
  void finish_run(JobState& job, JobStatus status, Nanos service_ns,
                  std::exception_ptr error);

  /// Lease-cache accounting hook (ServeNode owns the cache).
  void note_lease(QosClass cls, bool reused);

  /// Stop admitting; wake blocked submitters (they reject) and let
  /// dispatchers drain the queue and exit.
  void begin_shutdown();

  /// Block until nothing is queued and nothing is in flight.
  void wait_idle();

  [[nodiscard]] ClassStats stats(QosClass cls) const;
  [[nodiscard]] usize queue_depth(QosClass cls) const;

 private:
  /// Pop the next runnable job under `lock`; resolves in-queue-terminal
  /// jobs as it goes. nullptr when nothing runnable right now.
  [[nodiscard]] std::shared_ptr<JobState> pop_runnable();

  void drop_in_queue(const std::shared_ptr<JobState>& job, Nanos now);

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;  ///< dispatchers waiting for work
  std::condition_variable space_cv_;     ///< bounded-block submitters
  std::condition_variable idle_cv_;
  JobQueue queue_;
  std::array<ClassLimits, kNumQosClasses> limits_;
  std::array<int, kNumQosClasses> inflight_{};
  std::array<ClassStats, kNumQosClasses> stats_{};
  bool stopping_ = false;
  SteadyTimeSource clock_;
  /// In-queue (and whole-life) deadline enforcement. Gate-less watchdog
  /// entries: expiry cancels the job token; there is no construct gate to
  /// dump or kick while the job is queued.
  rt::Watchdog watchdog_;
};

}  // namespace aid::serve
