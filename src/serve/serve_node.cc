#include "serve/serve_node.h"

#include <algorithm>

#include "common/check.h"
#include "common/env.h"
#include "common/time_source.h"

namespace aid::serve {

namespace {

ServeNode::Config sanitize(ServeNode::Config c,
                           const platform::Platform& platform) {
  // One dispatcher minimum; never more concurrent masters than cores (the
  // pool's apps <= cores invariant must hold even with every dispatcher
  // mid-job and the lease cache warm).
  c.dispatchers = std::clamp(c.dispatchers, 1, platform.num_cores());
  c.preempt_burst = std::max(c.preempt_burst, 0);
  return c;
}

pool::PoolManager::Config pool_config(const ServeNode::Config& c) {
  pool::PoolManager::Config pc;
  pc.policy = c.policy;
  pc.emulate_amp = c.emulate_amp;
  pc.bind_threads = c.bind_threads;
  return pc;
}

std::array<ClassLimits, kNumQosClasses> limits_of(
    const ServeNode::Config& c) {
  std::array<ClassLimits, kNumQosClasses> out;
  for (int i = 0; i < kNumQosClasses; ++i)
    out[static_cast<usize>(i)] = {c.cls[static_cast<usize>(i)].max_queue,
                                  c.cls[static_cast<usize>(i)].max_inflight};
  return out;
}

std::array<int, kNumQosClasses> weights_of(const ServeNode::Config& c) {
  std::array<int, kNumQosClasses> out;
  for (int i = 0; i < kNumQosClasses; ++i)
    out[static_cast<usize>(i)] = c.cls[static_cast<usize>(i)].fair_weight;
  return out;
}

}  // namespace

ServeNode::Config ServeNode::Config::from_env() {
  Config c;
  c.dispatchers = static_cast<int>(
      env::get_int_at_least("AID_SERVE_DISPATCHERS", c.dispatchers, 1));
  c.preempt_burst = static_cast<int>(
      env::get_int_at_least("AID_SERVE_PREEMPT_BURST", c.preempt_burst, 0));
  // Per-class depth/in-flight knobs apply uniformly when set; the
  // per-class defaults stand otherwise (fallback 0 = "unset" sentinel —
  // the floor of 1 routes every malformed or non-positive value there).
  const i64 depth = env::get_int_at_least("AID_SERVE_QUEUE_DEPTH", 0, 1);
  const i64 inflight = env::get_int_at_least("AID_SERVE_INFLIGHT", 0, 1);
  for (auto& cls : c.cls) {
    if (depth > 0) cls.max_queue = static_cast<int>(depth);
    if (inflight > 0) cls.max_inflight = static_cast<int>(inflight);
  }
  if (const auto v = env::get("AID_SERVE_POLICY")) {
    if (!pool::parse_policy(*v, c.policy))
      env::warn_once_ignored(
          "AID_SERVE_POLICY", *v,
          "one of equal-share | big-core-priority | proportional");
  }
  return c;
}

ServeNode::ServeNode(platform::Platform platform, Config config)
    : platform_(std::move(platform)),
      config_(sanitize(std::move(config), platform_)),
      mgr_(platform_, pool_config(config_)),
      admission_(limits_of(config_), weights_of(config_),
                 config_.preempt_burst) {
  // Active leases (<= dispatchers) plus a little cache headroom, capped by
  // the pool's apps <= cores invariant. Eviction below keeps the bound.
  max_leases_ = std::min(platform_.num_cores(), config_.dispatchers + 2);
  dispatchers_.reserve(static_cast<usize>(config_.dispatchers));
  for (int i = 0; i < config_.dispatchers; ++i)
    dispatchers_.emplace_back([this] { dispatcher_main(); });
}

ServeNode::~ServeNode() {
  // Stop admitting; every already-admitted job still drains (runs or is
  // dropped by its own deadline/cancel), so no ticket is left pending.
  admission_.begin_shutdown();
  for (std::thread& t : dispatchers_) t.join();
  {
    const std::scoped_lock lock(lease_mu_);
    for (auto& cache : lease_cache_) cache.clear();  // releases the leases
    registered_leases_ = 0;
  }
}

JobTicket ServeNode::submit(JobSpec spec, const SubmitOptions& opts) {
  AID_CHECK_MSG(spec.deadline_ns >= 0, "negative job deadline");
  if (!spec.chain.has_value()) {
    AID_CHECK_MSG(spec.body != nullptr, "loop job without a body");
    AID_CHECK_MSG(spec.count >= 0, "negative job trip count");
  }
  auto state = std::make_shared<JobState>(std::move(spec));
  state->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  // A caller-supplied ScheduleSpec token stays a live cancellation channel
  // (parent of the job token), including while the job is still queued.
  if (state->spec.sched.cancel != nullptr)
    state->token.bind(state->spec.sched.cancel);

  if (auto reject = admission_.submit(state, opts)) {
    // Backpressure path: no thread spawned, no lease taken, not queued.
    JobResult r;
    r.status = JobStatus::kRejected;
    r.reject_reason = std::move(*reject);
    r.never_dispatched = true;
    state->resolve(std::move(r));
  }
  return JobTicket(std::move(state));
}

void ServeNode::dispatcher_main() {
  while (std::shared_ptr<JobState> job = admission_.next()) run_job(*job);
}

pool::AppHandle ServeNode::acquire_lease(QosClass cls) {
  const usize c = static_cast<usize>(index_of(cls));
  const std::scoped_lock lock(lease_mu_);
  if (!lease_cache_[c].empty()) {
    pool::AppHandle lease = std::move(lease_cache_[c].back());
    lease_cache_[c].pop_back();
    admission_.note_lease(cls, /*reused=*/true);
    return lease;
  }
  if (registered_leases_ >= max_leases_) {
    // Evict an idle cached lease of another class. One always exists:
    // active leases <= dispatchers - 1 here (this dispatcher holds none),
    // and max_leases_ >= dispatchers.
    for (auto& cache : lease_cache_) {
      if (cache.empty()) continue;
      cache.back().release();
      cache.pop_back();
      --registered_leases_;
      break;
    }
    AID_CHECK_MSG(registered_leases_ < max_leases_,
                  "serve lease accounting out of sync");
  }
  ++registered_leases_;
  admission_.note_lease(cls, /*reused=*/false);
  return mgr_.register_app(std::string("serve/") + to_string(cls),
                           config_.cls[c].pool_weight);
}

void ServeNode::recycle_lease(QosClass cls, pool::AppHandle lease) {
  const usize c = static_cast<usize>(index_of(cls));
  const std::scoped_lock lock(lease_mu_);
  // Park the lease while the class is backlogged (the next job of this
  // class skips the register/repartition round trip); hand the cores back
  // to the arbiter the moment the class goes idle.
  if (admission_.queue_depth(cls) > 0 &&
      lease_cache_[c].size() <
          static_cast<usize>(config_.cls[c].max_inflight)) {
    lease_cache_[c].push_back(std::move(lease));
    return;
  }
  lease.release();
  --registered_leases_;
}

void ServeNode::run_job(JobState& job) {
  const SteadyTimeSource clock;
  const Nanos t0 = clock.now();
  const QosClass cls = job.spec.qos;
  pool::AppHandle lease = acquire_lease(cls);

  JobStatus status = JobStatus::kDone;
  std::exception_ptr error;
  try {
    if (job.spec.chain.has_value()) {
      // The job token reaches every chain entry that names no token of
      // its own; per-entry deadlines stay with the entries (the job-wide
      // deadline is already armed on the watchdog).
      job.spec.chain->bind_cancel(&job.token);
      lease.run_chain(*job.spec.chain);
    } else {
      lease.run_loop(job.spec.count, job.spec.sched.with_cancel(&job.token),
                     job.spec.body);
    }
    if (job.token.cancelled())
      status = job.token.reason() == CancelReason::kDeadline
                   ? JobStatus::kExpired
                   : JobStatus::kCancelled;
  } catch (...) {
    error = std::current_exception();
    status = JobStatus::kFailed;
  }
  recycle_lease(cls, std::move(lease));

  const Nanos service = clock.now() - t0;
  admission_.finish_run(job, status, service, std::move(error));
}

}  // namespace aid::serve
