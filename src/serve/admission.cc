#include "serve/admission.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace aid::serve {

AdmissionController::AdmissionController(
    const std::array<ClassLimits, kNumQosClasses>& limits,
    const std::array<int, kNumQosClasses>& fair_weights, int preempt_burst)
    : queue_(fair_weights, preempt_burst), limits_(limits) {
  for (const ClassLimits& l : limits_) {
    AID_CHECK_MSG(l.max_queue >= 1, "class queue depth must be >= 1");
    AID_CHECK_MSG(l.max_inflight >= 1, "class in-flight cap must be >= 1");
  }
}

std::optional<std::string> AdmissionController::submit(
    const std::shared_ptr<JobState>& job, const SubmitOptions& opts) {
  const QosClass cls = job->spec.qos;
  const usize c = static_cast<usize>(index_of(cls));
  std::unique_lock lock(mu_);
  ++stats_[c].submitted;
  if (stopping_) {
    ++stats_[c].rejected;
    return "node shutting down";
  }

  const auto has_space = [&] {
    return queue_.depth(cls) < static_cast<usize>(limits_[c].max_queue);
  };
  if (!has_space()) {
    if (opts.on_full == SubmitOptions::OnFull::kReject) {
      ++stats_[c].rejected;
      return "queue full";
    }
    // Bounded block: wait for a dispatcher to pop (depth is charged at
    // dequeue, not completion), give up at the timeout. Spurious wakeups
    // re-check both predicates.
    const bool got_space = space_cv_.wait_for(
        lock, std::chrono::nanoseconds(opts.block_timeout_ns),
        [&] { return stopping_ || has_space(); });
    if (stopping_) {
      ++stats_[c].rejected;
      return "node shutting down";
    }
    if (!got_space) {
      ++stats_[c].rejected;
      return "timed out waiting for queue space";
    }
  }

  ++stats_[c].admitted;
  job->submit_ns = clock_.now();
  if (job->spec.deadline_ns > 0) {
    job->deadline_abs_ns = job->submit_ns + job->spec.deadline_ns;
    // Whole-life deadline through the job's one CancelToken: a gate-less
    // watchdog entry (rt/watchdog.h) fires CancelReason::kDeadline whether
    // the job is still queued or already mid-run. Disarmed in finish_run
    // or when the job is dropped in-queue.
    job->watchdog_id =
        watchdog_.arm(&job->token, /*gate=*/nullptr, job->id,
                      job->spec.deadline_ns, "serve job");
  }
  queue_.push(job);
  lock.unlock();
  dispatch_cv_.notify_one();
  return std::nullopt;
}

void AdmissionController::drop_in_queue(const std::shared_ptr<JobState>& job,
                                        Nanos now) {
  // In-queue terminal: the job never reaches dispatch — no lease, no
  // thread, no body execution. Resolve the ticket right here.
  const usize c = static_cast<usize>(index_of(job->spec.qos));
  const CancelReason reason = job->token.reason();
  const bool expired = reason == CancelReason::kDeadline;
  if (expired)
    ++stats_[c].expired_in_queue;
  else
    ++stats_[c].cancelled_in_queue;
  const Nanos wait = now - job->submit_ns;
  stats_[c].queue_wait_total += wait;
  stats_[c].queue_wait_max = std::max(stats_[c].queue_wait_max, wait);
  if (job->watchdog_id != 0) {
    watchdog_.disarm(job->watchdog_id);
    job->watchdog_id = 0;
  }
  JobResult r;
  r.status = expired ? JobStatus::kExpired : JobStatus::kCancelled;
  r.never_dispatched = true;
  r.queue_wait_ns = wait;
  job->resolve(std::move(r));
}

std::shared_ptr<JobState> AdmissionController::pop_runnable() {
  std::array<bool, kNumQosClasses> eligible{};
  for (usize c = 0; c < static_cast<usize>(kNumQosClasses); ++c)
    eligible[c] = inflight_[c] < limits_[c].max_inflight;

  while (std::shared_ptr<JobState> job = queue_.pop(eligible)) {
    space_cv_.notify_one();  // depth decreased — a blocked submitter fits
    const Nanos now = clock_.now();
    // Expiry belt-and-braces: trust the token, but also the clock — a job
    // whose deadline has passed must never reach dispatch even if the
    // watchdog thread has not fired yet.
    if (job->deadline_abs_ns != 0 && now >= job->deadline_abs_ns)
      job->token.cancel(CancelReason::kDeadline);
    if (job->token.cancelled()) {
      drop_in_queue(job, now);
      continue;
    }
    const usize c = static_cast<usize>(index_of(job->spec.qos));
    ++inflight_[c];
    ++stats_[c].dispatched;
    job->dispatch_ns = now;
    const Nanos wait = now - job->submit_ns;
    stats_[c].queue_wait_total += wait;
    stats_[c].queue_wait_max = std::max(stats_[c].queue_wait_max, wait);
    return job;
  }
  return nullptr;
}

std::shared_ptr<JobState> AdmissionController::next() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (std::shared_ptr<JobState> job = pop_runnable()) return job;
    if (queue_.empty()) {
      idle_cv_.notify_all();
      if (stopping_) return nullptr;
    }
    // Woken by a submit (new work), a finish_run (a class slot freed), or
    // shutdown. A non-empty queue with every class capped waits here too.
    dispatch_cv_.wait(lock);
  }
}

void AdmissionController::finish_run(JobState& job, JobStatus status,
                                     Nanos service_ns,
                                     std::exception_ptr error) {
  if (job.watchdog_id != 0) {
    watchdog_.disarm(job.watchdog_id);
    job.watchdog_id = 0;
  }
  JobResult r;
  r.status = status;
  r.error = std::move(error);
  r.queue_wait_ns = job.dispatch_ns - job.submit_ns;
  r.service_ns = service_ns;
  {
    const std::scoped_lock lock(mu_);
    const usize c = static_cast<usize>(index_of(job.spec.qos));
    --inflight_[c];
    stats_[c].service_total += service_ns;
    switch (status) {
      case JobStatus::kDone: ++stats_[c].completed; break;
      case JobStatus::kFailed: ++stats_[c].failed; break;
      case JobStatus::kExpired: ++stats_[c].expired_running; break;
      case JobStatus::kCancelled: ++stats_[c].cancelled_running; break;
      case JobStatus::kPending:
      case JobStatus::kRejected:
        AID_CHECK_MSG(false, "finish_run with a non-run outcome");
    }
    // Resolve while still inside the critical section: wait_idle() holds
    // this mutex for its predicate, so it can never observe "idle" while
    // some finished job's client is still unresolved.
    job.resolve(std::move(r));
  }
  // The freed class slot may unmask queued work.
  dispatch_cv_.notify_all();
  idle_cv_.notify_all();
}

void AdmissionController::note_lease(QosClass cls, bool reused) {
  const std::scoped_lock lock(mu_);
  const usize c = static_cast<usize>(index_of(cls));
  if (reused)
    ++stats_[c].lease_reused;
  else
    ++stats_[c].lease_registered;
}

void AdmissionController::begin_shutdown() {
  {
    const std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  space_cv_.notify_all();
  idle_cv_.notify_all();
}

void AdmissionController::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] {
    if (!queue_.empty()) return false;
    for (const int n : inflight_)
      if (n > 0) return false;
    return true;
  });
}

ClassStats AdmissionController::stats(QosClass cls) const {
  const std::scoped_lock lock(mu_);
  return stats_[static_cast<usize>(index_of(cls))];
}

usize AdmissionController::queue_depth(QosClass cls) const {
  const std::scoped_lock lock(mu_);
  return queue_.depth(cls);
}

}  // namespace aid::serve
