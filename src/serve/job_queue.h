// Per-class job queue with weighted-fair dequeue and bounded priority
// preemption — the serving tier's queue discipline, factored out as a
// plain (externally locked) data structure so the discipline itself is
// deterministic and unit-testable without threads.
//
// Each QoS class owns a FIFO. pop() picks the next class two ways:
//
//   Preemption — if the highest-priority candidate class outranks some
//   other candidate, it is picked directly ("queued work of a lower class
//   is preempted"; running work never is). A burst cap bounds how many
//   CONSECUTIVE preemptive picks may happen before one weighted-fair pick
//   is forced, so a saturating latency tenant cannot starve batch work
//   outright.
//
//   Weighted-fair — stride-style credits: every candidate class earns
//   credit proportional to its fair_weight, the richest candidate wins
//   and pays the round's total back. Long-run dequeue shares converge to
//   the weight ratio among backlogged classes.
//
// Within a class, order is strict FIFO. The queue never inspects
// deadlines or tokens — expiry policy belongs to the AdmissionController.
#pragma once

#include <array>
#include <deque>
#include <memory>

#include "serve/job.h"
#include "serve/qos.h"

namespace aid::serve {

class JobQueue {
 public:
  /// `fair_weights` are per-class dequeue weights (> 0); `preempt_burst`
  /// is the consecutive-preemption cap (>= 0; 0 disables preemption and
  /// the discipline is pure weighted-fair).
  JobQueue(const std::array<int, kNumQosClasses>& fair_weights,
           int preempt_burst);

  void push(std::shared_ptr<JobState> job);

  /// Dequeue the next job among classes whose `eligible[cls]` is true
  /// (the admission layer masks classes at their in-flight cap). Returns
  /// nullptr when every eligible class is empty.
  [[nodiscard]] std::shared_ptr<JobState> pop(
      const std::array<bool, kNumQosClasses>& eligible);

  [[nodiscard]] usize depth(QosClass cls) const {
    return fifo_[static_cast<usize>(index_of(cls))].size();
  }
  [[nodiscard]] usize total_depth() const;
  [[nodiscard]] bool empty() const { return total_depth() == 0; }

  /// Drain every queued job in class-priority-then-FIFO order (shutdown).
  [[nodiscard]] std::shared_ptr<JobState> pop_any();

 private:
  std::array<std::deque<std::shared_ptr<JobState>>, kNumQosClasses> fifo_;
  std::array<int, kNumQosClasses> weight_;
  std::array<i64, kNumQosClasses> credit_{};
  int burst_;
  int consecutive_preempts_ = 0;
};

}  // namespace aid::serve
