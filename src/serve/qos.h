// QoS classes of the multi-tenant serving tier.
//
// Every job submitted to a ServeNode names one of three service classes.
// The class decides two independent things:
//
//   1. *Queue discipline* — the weighted-fair dequeue share (fair_weight)
//      and the preemption tier (lower enum value = higher priority; a
//      higher class's queued jobs jump ahead of lower classes' queued —
//      never running — work, bounded by the preemption burst).
//   2. *Core arbitration* — the pool-lease weight (pool_weight) the class's
//      leases carry into pool::arbitrate(). Under the serving tier's
//      default big-core-priority policy the highest-weight class's
//      partitions pack onto the big cores; equal-share ignores the weights
//      (fair split) and proportional splits every core type by them. This
//      is the QoS→policy mapping: latency ⇒ big-core-priority treatment,
//      normal ⇒ the equal-share middle, batch ⇒ a small proportional
//      share. See src/serve/README.md.
#pragma once

#include <string_view>

#include "common/types.h"

namespace aid::serve {

enum class QosClass : u8 {
  kLatency = 0,  ///< interactive / tail-latency-sensitive
  kNormal = 1,   ///< default service class
  kBatch = 2,    ///< throughput work; yields to the classes above
};

inline constexpr int kNumQosClasses = 3;

[[nodiscard]] constexpr const char* to_string(QosClass c) {
  switch (c) {
    case QosClass::kLatency: return "latency";
    case QosClass::kNormal: return "normal";
    case QosClass::kBatch: return "batch";
  }
  return "?";
}

[[nodiscard]] constexpr int index_of(QosClass c) {
  return static_cast<int>(c);
}

[[nodiscard]] constexpr QosClass qos_of(int index) {
  return static_cast<QosClass>(index);
}

/// Parse a class name ("latency", "normal", "batch"). Returns true and
/// writes `out` on success.
[[nodiscard]] inline bool parse_qos(std::string_view text, QosClass& out) {
  if (text == "latency") { out = QosClass::kLatency; return true; }
  if (text == "normal") { out = QosClass::kNormal; return true; }
  if (text == "batch") { out = QosClass::kBatch; return true; }
  return false;
}

}  // namespace aid::serve
