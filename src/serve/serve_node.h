// ServeNode — the multi-tenant serving facade over the shared worker pool.
//
// N≫2 concurrent clients submit loop/chain jobs; the node owns the
// PoolManager, an AdmissionController (QoS queueing, backpressure,
// deadline expiry) and a small dispatcher thread pool. Each dispatcher
// pops the next job by the queue discipline and runs it as the *master*
// of a pool lease belonging to the job's QoS class:
//
//   client → submit → [JobQueue ⟶ AdmissionController] → dispatcher
//          → class lease (AppHandle::run_loop / run_chain) → ticket
//
// Leases are RECYCLED across jobs of the same class: a dispatcher that
// finishes a job parks the lease in a per-class cache while the class is
// backlogged (back-to-back jobs skip the register/repartition round
// trip) and releases it once the class queue is empty, so an idle class
// returns its cores to the arbiter instead of squatting on them. The
// cache plus active leases never exceed the machine's core count (the
// PoolManager's apps ≤ cores invariant); when the cap binds, an idle
// cached lease of another class is evicted first.
//
// QoS → arbitration mapping (see serve/qos.h and README.md): class pool
// weights descend latency > normal > batch, and the node's default
// arbitration policy is big-core-priority — so latency partitions pack
// onto the big cores, batch is squeezed to a small share, and switching
// the node to equal-share / proportional reinterprets the same weights
// as the fair / weight-proportional OS personalities from the paper's
// Sec. 4.3 scenario.
//
// This is the runtime's promotion from one app's library to a node-level
// service; any future ingress (shared-memory, socket) terminates in
// submit(). Design note: src/serve/README.md.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "platform/platform.h"
#include "pool/pool_manager.h"
#include "serve/admission.h"
#include "serve/job.h"
#include "serve/qos.h"

namespace aid::serve {

class ServeNode {
 public:
  struct ClassConfig {
    int max_queue = 64;     ///< queued-job depth limit (backpressure above)
    int max_inflight = 2;   ///< concurrent leases running this class
    int fair_weight = 1;    ///< weighted-fair dequeue share
    double pool_weight = 1.0;  ///< pool::arbitrate() weight of class leases
  };

  struct Config {
    pool::Policy policy = pool::Policy::kBigCorePriority;
    int dispatchers = kNumQosClasses;
    int preempt_burst = 4;  ///< consecutive priority preemptions of queued work
    bool emulate_amp = false;
    bool bind_threads = false;
    std::array<ClassConfig, kNumQosClasses> cls = default_classes();

    [[nodiscard]] static std::array<ClassConfig, kNumQosClasses>
    default_classes() {
      return {{
          {64, 2, 8, 4.0},  // latency
          {64, 2, 4, 2.0},  // normal
          {64, 1, 1, 1.0},  // batch
      }};
    }

    /// AID_SERVE_DISPATCHERS, AID_SERVE_QUEUE_DEPTH, AID_SERVE_INFLIGHT,
    /// AID_SERVE_PREEMPT_BURST, AID_SERVE_POLICY (see src/serve/README.md
    /// for the grammar; malformed values warn once and fall back).
    [[nodiscard]] static Config from_env();
  };

  ServeNode(platform::Platform platform, Config config);
  explicit ServeNode(platform::Platform platform)
      : ServeNode(std::move(platform), Config::from_env()) {}

  /// Drains every admitted job, then stops the dispatchers and releases
  /// all leases. Jobs submitted during destruction are rejected.
  ~ServeNode();

  ServeNode(const ServeNode&) = delete;
  ServeNode& operator=(const ServeNode&) = delete;

  /// Submit a job. Always returns a valid ticket: admission failures
  /// (backpressure, shutdown) resolve it immediately as kRejected with a
  /// reason — no thread is spawned and no lease is taken on that path.
  [[nodiscard]] JobTicket submit(JobSpec spec, const SubmitOptions& opts = {});

  /// Switch the pool's arbitration policy (repartitions at the co-running
  /// jobs' loop boundaries, like any PoolManager policy flip).
  void set_policy(pool::Policy policy) { mgr_.set_policy(policy); }

  /// Block until nothing is queued and nothing is running.
  void drain() { admission_.wait_idle(); }

  [[nodiscard]] ClassStats class_stats(QosClass cls) const {
    return admission_.stats(cls);
  }
  [[nodiscard]] usize queue_depth(QosClass cls) const {
    return admission_.queue_depth(cls);
  }

  /// The node's pool, for observability (spawned_workers, registered_apps)
  /// — tests assert the no-spawn-on-reject guarantee through it.
  [[nodiscard]] pool::PoolManager& pool() { return mgr_; }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void dispatcher_main();
  void run_job(JobState& job);
  [[nodiscard]] pool::AppHandle acquire_lease(QosClass cls);
  void recycle_lease(QosClass cls, pool::AppHandle lease);

  platform::Platform platform_;
  Config config_;
  pool::PoolManager mgr_;
  AdmissionController admission_;
  std::atomic<u64> next_job_id_{1};

  // Per-class idle-lease cache (recycling). Guarded by lease_mu_;
  // destroyed before mgr_ (declared after it) so every lease is back in
  // the manager before ~PoolManager checks for stragglers.
  std::mutex lease_mu_;
  std::array<std::vector<pool::AppHandle>, kNumQosClasses> lease_cache_;
  int registered_leases_ = 0;
  int max_leases_ = 0;

  std::vector<std::thread> dispatchers_;
};

}  // namespace aid::serve
