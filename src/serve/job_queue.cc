#include "serve/job_queue.h"

#include "common/check.h"

namespace aid::serve {

JobQueue::JobQueue(const std::array<int, kNumQosClasses>& fair_weights,
                   int preempt_burst)
    : weight_(fair_weights), burst_(preempt_burst) {
  for (const int w : weight_) AID_CHECK_MSG(w > 0, "fair weight must be > 0");
  AID_CHECK_MSG(preempt_burst >= 0, "preempt burst must be >= 0");
}

void JobQueue::push(std::shared_ptr<JobState> job) {
  const int cls = index_of(job->spec.qos);
  fifo_[static_cast<usize>(cls)].push_back(std::move(job));
}

usize JobQueue::total_depth() const {
  usize n = 0;
  for (const auto& f : fifo_) n += f.size();
  return n;
}

std::shared_ptr<JobState> JobQueue::pop(
    const std::array<bool, kNumQosClasses>& eligible) {
  // Candidate classes: non-empty and not masked by the in-flight cap.
  int first = -1;   // highest-priority candidate (lowest index)
  int count = 0;
  for (int c = 0; c < kNumQosClasses; ++c) {
    if (!eligible[static_cast<usize>(c)] ||
        fifo_[static_cast<usize>(c)].empty())
      continue;
    if (first < 0) first = c;
    ++count;
  }
  if (first < 0) return nullptr;

  int pick = first;
  if (count == 1) {
    // A lone candidate is not a preemption — don't burn the burst budget
    // (nobody queued behind it is being jumped).
    consecutive_preempts_ = 0;
  } else if (consecutive_preempts_ < burst_) {
    // Preemptive pick: the top class jumps every lower class's queued
    // work. Counted so a backlogged high class cannot monopolize pop().
    ++consecutive_preempts_;
  } else {
    // Forced weighted-fair round: candidates earn credit by weight, the
    // richest wins and pays back the round total (stride scheduling).
    consecutive_preempts_ = 0;
    i64 round = 0;
    for (int c = 0; c < kNumQosClasses; ++c) {
      if (!eligible[static_cast<usize>(c)] ||
          fifo_[static_cast<usize>(c)].empty())
        continue;
      credit_[static_cast<usize>(c)] += weight_[static_cast<usize>(c)];
      round += weight_[static_cast<usize>(c)];
    }
    pick = -1;
    for (int c = 0; c < kNumQosClasses; ++c) {
      if (!eligible[static_cast<usize>(c)] ||
          fifo_[static_cast<usize>(c)].empty())
        continue;
      if (pick < 0 || credit_[static_cast<usize>(c)] >
                          credit_[static_cast<usize>(pick)])
        pick = c;  // ties break to the higher-priority (lower) class
    }
    credit_[static_cast<usize>(pick)] -= round;
  }

  auto& f = fifo_[static_cast<usize>(pick)];
  std::shared_ptr<JobState> job = std::move(f.front());
  f.pop_front();
  return job;
}

std::shared_ptr<JobState> JobQueue::pop_any() {
  for (auto& f : fifo_) {
    if (f.empty()) continue;
    std::shared_ptr<JobState> job = std::move(f.front());
    f.pop_front();
    return job;
  }
  return nullptr;
}

}  // namespace aid::serve
