// The serving tier's unit of work: one loop (or loop chain) a client asks
// the shared pool to run, plus the ticket the client waits on.
//
// A Job travels: submit → (admission) → queued → dispatched on a class
// lease → finished; or it short-circuits at admission (rejected by
// backpressure) or in the queue (deadline expired / user-cancelled before
// dispatch — the PR 6 CancelToken is the single cancellation channel for
// both the queued and the running phase, so "cancel" means the same thing
// whether the job has started or not). Every path resolves the ticket
// exactly once; tickets never block the serving tier itself.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/cancel.h"
#include "common/types.h"
#include "pipeline/loop_chain.h"
#include "rt/team.h"
#include "sched/schedule_spec.h"
#include "serve/qos.h"

namespace aid::serve {

/// What a client submits. Either a canonical-range loop (`count` + `body`)
/// or, when `chain` is set, a pipeline::LoopChain (copied into the job;
/// the chain's bodies must stay valid until the ticket resolves).
struct JobSpec {
  QosClass qos = QosClass::kNormal;
  i64 count = 0;
  sched::ScheduleSpec sched;
  rt::RangeBody body;
  std::optional<pipeline::LoopChain> chain;
  /// Relative deadline from submission (0 = none). Covers the job's WHOLE
  /// life — queue wait plus service — through one CancelToken: expiry in
  /// the queue drops the job before it ever takes a lease; expiry mid-run
  /// cancels cooperatively at the next chunk-take boundary.
  i64 deadline_ns = 0;
};

/// Terminal state of a job.
enum class JobStatus : u8 {
  kPending = 0,   ///< not yet resolved (tickets only; never in a result)
  kDone,          ///< every iteration executed
  kRejected,      ///< admission backpressure — never queued, never run
  kExpired,       ///< deadline fired before completion (in queue or mid-run)
  kCancelled,     ///< user cancel before completion (in queue or mid-run)
  kFailed,        ///< the body threw; `error` holds the exception
};

[[nodiscard]] constexpr const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kDone: return "done";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kExpired: return "expired";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

struct JobResult {
  JobStatus status = JobStatus::kPending;
  /// Why admission refused (kRejected only): "queue full", "timed out
  /// waiting for queue space", "node shutting down".
  std::string reject_reason;
  /// The body's exception (kFailed only). Never rethrown by the tier.
  std::exception_ptr error;
  /// True when the job was resolved without ever being dispatched (its
  /// body never ran and no lease was touched on its behalf).
  bool never_dispatched = false;
  Nanos queue_wait_ns = 0;  ///< submit → dispatch (or terminal drop)
  Nanos service_ns = 0;     ///< dispatch → finish (0 when never dispatched)
};

/// How submit() behaves when the class queue is at its depth limit.
struct SubmitOptions {
  enum class OnFull : u8 {
    kReject,  ///< fail fast with JobStatus::kRejected (open-loop clients)
    kBlock,   ///< wait up to `block_timeout_ns` for space, then reject
  };
  OnFull on_full = OnFull::kReject;
  i64 block_timeout_ns = 100'000'000;  // 100 ms
};

/// Shared state behind a JobTicket. The serving tier resolves it exactly
/// once; the client may wait, poll, or cancel from any thread.
class JobState {
 public:
  explicit JobState(JobSpec spec) : spec(std::move(spec)) {}

  JobSpec spec;
  CancelToken token;         ///< the job's one cancellation channel
  u64 id = 0;                ///< ServeNode-assigned, for diagnostics
  Nanos submit_ns = 0;       ///< steady-clock stamp at admission
  Nanos dispatch_ns = 0;     ///< steady-clock stamp at dequeue (0 = never)
  Nanos deadline_abs_ns = 0; ///< submit_ns + spec.deadline_ns (0 = none)
  u64 watchdog_id = 0;       ///< in-queue deadline arm (0 = none)

  void resolve(JobResult r) {
    std::function<void()> hook;
    {
      const std::scoped_lock lock(mu_);
      result_ = std::move(r);
      done_ = true;
      hook = std::move(hook_);
      hook_ = nullptr;
    }
    cv_.notify_all();
    if (hook) hook();
  }

  [[nodiscard]] bool done() const {
    const std::scoped_lock lock(mu_);
    return done_;
  }

  [[nodiscard]] const JobResult& wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    return result_;
  }

  /// Non-blocking probe: the result once resolved, nullptr while pending.
  /// The pointer stays valid for the state's lifetime (resolve happens
  /// exactly once; the result is never rewritten).
  [[nodiscard]] const JobResult* try_result() const {
    const std::scoped_lock lock(mu_);
    return done_ ? &result_ : nullptr;
  }

  /// Register a one-shot completion hook, so an event loop can multiplex
  /// many tickets without parking a thread per job. Runs exactly once:
  /// inline if the job already resolved, otherwise on the RESOLVING
  /// thread — which may hold the admission mutex (see admission.cc
  /// finish_run) — so the hook must only hand off (enqueue + wake) and
  /// must never block or call back into the serving tier. At most one
  /// hook per job; a second registration replaces an unfired first.
  void on_resolve(std::function<void()> hook) {
    {
      const std::scoped_lock lock(mu_);
      if (!done_) {
        hook_ = std::move(hook);
        return;
      }
    }
    hook();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  JobResult result_;
  std::function<void()> hook_;
};

/// The client's handle on a submitted job. Cheap to copy; outliving the
/// ServeNode is safe (the node resolves every admitted job before its
/// destructor returns).
class JobTicket {
 public:
  JobTicket() = default;
  explicit JobTicket(std::shared_ptr<JobState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_->done(); }

  /// Block until the job resolves; the reference stays valid while the
  /// ticket (or any copy) lives.
  [[nodiscard]] const JobResult& wait() { return state_->wait(); }

  /// Non-blocking harvest: the result once resolved, nullptr while
  /// pending. Event-loop clients (the socket ingress) poll or hook
  /// instead of parking a thread in wait().
  [[nodiscard]] const JobResult* poll() const { return state_->try_result(); }

  /// One-shot completion hook (see JobState::on_resolve for the contract:
  /// may fire under the admission mutex — enqueue-and-wake only).
  void on_resolve(std::function<void()> hook) {
    state_->on_resolve(std::move(hook));
  }

  /// Cooperative cancel: a queued job is dropped at dequeue without taking
  /// a lease; a running job stops at the next chunk-take boundary. The
  /// reason defaults to kUser; infrastructure cleanup (e.g. the ingress
  /// cancelling a dead connection's jobs) passes kDependency so stats and
  /// dumps distinguish "the client asked" from "the client vanished".
  void cancel(CancelReason reason = CancelReason::kUser) {
    state_->token.cancel(reason);
  }

 private:
  std::shared_ptr<JobState> state_;
};

}  // namespace aid::serve
