// libgomp-shaped entry points.
//
// The paper integrates AID by modifying libgomp, whose compiled-code
// contract is a small C ABI: GOMP_parallel() forks a team that runs
// `fn(data)` in every thread, and work-shared loops are driven by
// GOMP_loop_runtime_start()/GOMP_loop_runtime_next()/GOMP_loop_end().
// The paper's one-line GCC change (Sec. 4.1) makes schedule-less loops
// emit exactly the *runtime* variants of these calls.
//
// This header reproduces that contract on top of libaid (prefixed aid_gomp_
// to avoid colliding with a real libgomp in the process). Code written
// against it is structured exactly like GCC's OpenMP expansion:
//
//   static void body(void* data) {
//     long start, end;
//     if (aid_gomp_loop_runtime_start(0, N, 1, &start, &end)) {
//       do {
//         for (long i = start; i < end; ++i) work(i, data);
//       } while (aid_gomp_loop_runtime_next(&start, &end));
//     }
//     aid_gomp_loop_end();
//   }
//   ...
//   aid_gomp_parallel(body, &ctx, 0);
//
// The schedule applied by the *_runtime_* calls comes from AID_SCHEDULE —
// i.e. the paper's "applications just need to be recompiled" story.
//
// Threading model: aid_gomp_parallel() runs `fn` on every team member of
// the global runtime (rt/runtime.h). Loop state is kept per team; nested
// parallelism is not supported (matching libaid's Team).
//
// Nowait chaining: consecutive work shares inside a region execute over a
// generation ring of in-flight constructs (the loop-pipeline design,
// src/pipeline/), so after aid_gomp_loop_end_nowait() a thread flows
// straight into the next work share — up to Team::kChainRing constructs
// past the team's slowest straggler — exactly like a native LoopChain.
// aid_gomp_loop_end() barriers on its construct's completion gate, and
// the region end is the chain-end flush. Per-construct schedulers come
// re-armed from the runtime's per-shape SchedulerCache. Design note:
// src/rt/README.md "GOMP nowait chains".
#pragma once

namespace aid::rt::gomp {

/// Fork the global team and run fn(data) on every member (including the
/// caller as thread 0). Blocks until all members return.
/// `num_threads` is accepted for ABI compatibility; 0 means "team size".
/// Values other than 0/team-size are rejected with a check failure, since
/// libaid teams are fixed at startup (as are libgomp's without nesting).
void aid_gomp_parallel(void (*fn)(void*), void* data,
                       unsigned num_threads = 0);

/// Begin a work-shared loop over [start, end) with the given increment,
/// scheduled per AID_SCHEDULE (the paper's runtime schedule). Returns true
/// and writes the first range when the calling thread received work.
/// Must be called from inside aid_gomp_parallel().
bool aid_gomp_loop_runtime_start(long start, long end, long incr,
                                 long* istart, long* iend);

/// Fetch the calling thread's next range. Returns false when done.
bool aid_gomp_loop_runtime_next(long* istart, long* iend);

/// Leave the work-sharing construct: waits at the implicit barrier.
void aid_gomp_loop_end();

/// Non-waiting variant (OpenMP `nowait`).
void aid_gomp_loop_end_nowait();

/// Team queries, mirroring omp_get_thread_num/omp_get_num_threads.
int aid_gomp_thread_num();
int aid_gomp_num_threads();

/// Explicit barrier (GOMP_barrier).
void aid_gomp_barrier();

}  // namespace aid::rt::gomp
