#include "rt/team.h"

#include "common/affinity.h"
#include "common/check.h"
#include "common/env.h"
#include "common/spin_wait.h"
#include "pipeline/loop_chain.h"

namespace aid::rt {

// The cache retains this many idle instances per shape precisely so a
// chain can hold a full ring of same-shape constructs in flight; a ring
// deepened past the retention cap would silently reintroduce steady-state
// construction misses (and break the cache-determinism tests).
static_assert(Team::kChainRing <= sched::SchedulerCache::kInstancesPerShape,
              "chain-ring depth exceeds SchedulerCache per-shape retention");

Team::Team(const platform::Platform& platform, int nthreads,
           platform::Mapping mapping, bool emulate_amp, bool bind_threads,
           bool sf_cpu_time)
    : platform_(platform),
      layout_(platform_, nthreads > 0 ? nthreads : platform_.num_cores(),
              mapping),
      shard_topo_(sched::ShardTopology::from_layout(layout_)),
      sf_clock_(sf_cpu_time ? static_cast<const TimeSource*>(&cpu_clock_)
                            : static_cast<const TimeSource*>(&clock_)),
      docks_(static_cast<usize>(layout_.nthreads() - 1)),
      spin_budget_(static_cast<i32>(env::get_int(
          "AID_FORKJOIN_SPIN", default_spin_budget(layout_.nthreads())))),
      yield_budget_(static_cast<i32>(env::get_int(
          "AID_FORKJOIN_YIELD", default_yield_budget(layout_.nthreads())))) {
  const double max_speed =
      platform_.speed_of_type(platform_.num_core_types() - 1);
  throttles_.reserve(static_cast<usize>(layout_.nthreads()));
  for (int tid = 0; tid < layout_.nthreads(); ++tid)
    throttles_.emplace_back(max_speed / layout_.speed_of(tid), emulate_amp);

  if (bind_threads) try_bind_to_core(layout_.core_of(0));

  workers_.reserve(static_cast<usize>(layout_.nthreads() - 1));
  for (int tid = 1; tid < layout_.nthreads(); ++tid) {
    workers_.emplace_back([this, tid, bind_threads] {
      if (bind_threads) try_bind_to_core(layout_.core_of(tid));
      worker_main(tid);
    });
  }
}

Team::~Team() {
  // Shutdown is the cold path: bump every dock and broadcast on the shared
  // epoch unconditionally. Workers check shutting_down_ before touching the
  // ring.
  shutting_down_.store(true, std::memory_order_seq_cst);
  ++job_generation_;
  for (auto& dock : docks_)
    dock->gen.store(job_generation_, std::memory_order_seq_cst);
  epoch_->store(job_generation_, std::memory_order_seq_cst);
  epoch_->notify_all();
  // jthread joins on destruction.
}

u64 Team::wait_for_dispatch(Dock& dock, u64 seen) {
  u64 g = dock.gen.load(std::memory_order_acquire);
  if (g != seen) return g;

  // Spin (polling only this worker's own cache line), then yield (donate
  // the CPU to the master on oversubscribed hosts rather than paying a
  // futex sleep the master must then wake).
  if (spin_then_yield(
          [&] {
            g = dock.gen.load(std::memory_order_acquire);
            return g != seen;
          },
          spin_budget_, yield_budget_))
    return g;

  // Block on the shared epoch (one master notify_all wakes the team).
  // The sleepers_ increment must precede the final generation re-check so
  // it pairs with the master's publish-then-check-sleepers sequence
  // (Dekker: either we see the new generation here, or the master sees our
  // registration and pays the wake syscall).
  for (;;) {
    const u64 e = epoch_->load(std::memory_order_seq_cst);
    sleepers_->fetch_add(1, std::memory_order_seq_cst);
    g = dock.gen.load(std::memory_order_seq_cst);
    if (g != seen) {
      sleepers_->fetch_sub(1, std::memory_order_relaxed);
      return g;
    }
    epoch_->wait(e, std::memory_order_seq_cst);
    sleepers_->fetch_sub(1, std::memory_order_relaxed);
  }
}

void Team::worker_main(int tid) {
  Dock& dock = *docks_[static_cast<usize>(tid - 1)];
  u64 seen = 0;
  for (;;) {
    const u64 g = wait_for_dispatch(dock, seen);
    if (shutting_down_.load(std::memory_order_acquire)) return;
    // The dock may have advanced several generations while this worker was
    // draining earlier ones (a chain in flight): process every published
    // construct in order. The acquire read of `g` makes all slots staged up
    // to generation g visible.
    for (u64 gen = seen + 1; gen <= g; ++gen) {
      ChainSlot& slot = slot_of(gen);
      if (slot.dep_gen != 0) wait_generation(slot.dep_gen);
      participate(tid, *slot.sched, *slot.body);
      slot.gate.check_in(gen);
    }
    seen = g;
  }
}

void Team::participate(int tid, sched::LoopScheduler& sched,
                       const RangeBody& body) {
  sched::ThreadContext tc{
      .tid = tid,
      .core_type = layout_.core_type_of(tid),
      .speed = layout_.speed_of(tid),
      .shard = sched.home_shard_of(tid),
      .time = sf_clock_,
  };
  const Throttle& throttle = *throttles_[static_cast<usize>(tid)];
  const WorkerInfo info{tid, tc.core_type, tc.speed};

  sched::IterRange r;
  while (sched.next(tc, r)) {
    const Nanos t0 = clock_.now();
    body(r.begin, r.end, info);
    throttle.pay(clock_.now() - t0);
  }
}

u64 Team::publish(sched::LoopScheduler* sched, const RangeBody* body,
                  u64 dep_gen) {
  const u64 gen = job_generation_ + 1;
  ChainSlot& slot = slot_of(gen);
  // Ring reuse guard (callers enforce): the previous occupant, generation
  // gen - kChainRing, has completed, so nobody reads the old fields.
  AID_DCHECK(gen <= kChainRing || slot.gate.complete(gen - kChainRing));
  slot.sched = sched;
  slot.body = body;
  slot.dep_gen = dep_gen;
  slot.gate.arm(layout_.nthreads());
  ++job_generation_;
  // Publish per-dock generations first, then the shared epoch, then check
  // for sleepers: pairs with wait_for_dispatch's register-then-re-check
  // (Dekker), so the single notify_all syscall is paid only when some
  // worker actually reached the futex.
  for (auto& dock : docks_)
    dock->gen.store(job_generation_, std::memory_order_seq_cst);
  epoch_->store(job_generation_, std::memory_order_seq_cst);
  if (sleepers_->load(std::memory_order_seq_cst) != 0) epoch_->notify_all();
  return gen;
}

void Team::run_loop(i64 count, const sched::ScheduleSpec& spec,
                    const RangeBody& body) {
  AID_CHECK(count >= 0);
  AID_CHECK_MSG(!in_loop_.exchange(true),
                "nested/concurrent run_loop is not supported");

  if (count == 0) {
    // Empty loop: no iterations, so no scheduler, no dispatch, no
    // barrier — the construct costs only this guard.
    last_stats_ = sched::SchedulerStats{};
    in_loop_.store(false, std::memory_order_release);
    return;
  }

  // The construct path is cache-first: an idle same-shape instance is
  // re-armed via reset() instead of reallocating scheduler + shard pool
  // per loop (sched/scheduler_cache.h; data-parallel apps run the same
  // loop shapes thousands of times).
  sched::LoopScheduler* sched =
      sched_cache_.acquire(spec, count, layout_, shard_topo_);

  if (docks_.empty()) {
    // Serial fast path: a one-thread team (or an empty loop) has nothing to
    // dispatch — run the master's participation with zero synchronization.
    participate(/*tid=*/0, *sched, body);
  } else {
    // A run_loop is a chain of one: publish, participate as team member 0
    // (as in libgomp), check into the countdown, and flush immediately.
    // The ring reuse guard holds because every previous construct was
    // flushed before its run_loop/run_chain returned.
    const u64 gen = publish(sched, &body, /*dep_gen=*/0);
    participate(/*tid=*/0, *sched, body);
    slot_of(gen).gate.check_in(gen);
    wait_generation(gen);
  }

  last_stats_ = sched->stats();
  sched_cache_.release(sched);
  in_loop_.store(false, std::memory_order_release);
}

void Team::run_chain(const pipeline::LoopChain& chain) {
  const auto& loops = chain.loops();
  if (loops.empty()) return;
  AID_CHECK_MSG(!in_loop_.exchange(true),
                "nested/concurrent run_chain is not supported");

  if (docks_.empty()) {
    // One-thread team: the chain degenerates to running each loop in
    // order; every dependency is trivially satisfied.
    for (const auto& loop : loops) {
      sched::LoopScheduler* sched =
          sched_cache_.acquire(loop.spec, loop.count, layout_, shard_topo_);
      participate(/*tid=*/0, *sched, loop.body);
      last_stats_ = sched->stats();
      sched_cache_.release(sched);
    }
    in_loop_.store(false, std::memory_order_release);
    return;
  }

  // Chain entry k runs as generation base + 1 + k. The master is both the
  // publisher and team member 0: it stages loops into the ring as long as
  // slots are free (so workers flow ahead without it), and otherwise works
  // through its own shares in chain order. It blocks only when the ring is
  // full with constructs it has already participated in — and at the
  // chain-end flush.
  const u64 base = job_generation_;
  const usize total = loops.size();
  // Cache leases for the chain's schedulers: a ring slot's scheduler must
  // stay alive until the slot's flush, so every lease is released only
  // after the chain-end flush (and the final stats read).
  std::vector<sched::LoopScheduler*> scheds(total, nullptr);
  usize pub = 0;  // loops published so far
  usize run = 0;  // loops the master has participated in
  while (run < total) {
    while (pub < total) {
      const u64 gen = base + 1 + pub;
      // Ring reuse guard: the slot's previous occupant must be complete.
      if (gen > kChainRing && !slot_of(gen).gate.complete(gen - kChainRing))
        break;
      // The guard just proved chain entry pub - kChainRing fully
      // completed: release its lease now (stats are read from the final
      // entry only), so a long same-shape chain re-arms at most
      // kChainRing instances instead of defeating the cache.
      if (pub >= kChainRing) {
        sched_cache_.release(scheds[pub - kChainRing]);
        scheds[pub - kChainRing] = nullptr;
      }
      const auto& loop = loops[pub];
      scheds[pub] =
          sched_cache_.acquire(loop.spec, loop.count, layout_, shard_topo_);
      const u64 dep =
          loop.depends_on >= 0
              ? base + 1 + static_cast<u64>(loop.depends_on)
              : 0;
      publish(scheds[pub], &loop.body, dep);
      ++pub;
    }
    if (run < pub) {
      const u64 gen = base + 1 + run;
      ChainSlot& slot = slot_of(gen);
      if (slot.dep_gen != 0) wait_generation(slot.dep_gen);
      participate(/*tid=*/0, *slot.sched, loops[run].body);
      slot.gate.check_in(gen);
      ++run;
    } else {
      // Ring full, master has participated everywhere it can: wait for the
      // occupant blocking the next publish (workers are draining it).
      wait_generation(base + 1 + pub - kChainRing);
    }
  }

  // The chain-end flush: the only full barrier in the chain.
  for (usize k = 0; k < total; ++k) wait_generation(base + 1 + k);

  last_stats_ = scheds[total - 1]->stats();
  for (sched::LoopScheduler* s : scheds)
    if (s != nullptr) sched_cache_.release(s);
  in_loop_.store(false, std::memory_order_release);
}

}  // namespace aid::rt
