#include "rt/team.h"

#include <chrono>

#include "common/check.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace aid::rt {
namespace {

// Best-effort pinning: on the development host the platform's core ids may
// exceed the real CPU count; failures are silently ignored (the throttle
// provides the asymmetry in that case).
void try_bind_to_core(int core_id) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core_id), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)core_id;
#endif
}

}  // namespace

Team::Team(const platform::Platform& platform, int nthreads,
           platform::Mapping mapping, bool emulate_amp, bool bind_threads,
           bool sf_cpu_time)
    : platform_(platform),
      layout_(platform_, nthreads > 0 ? nthreads : platform_.num_cores(),
              mapping),
      sf_clock_(sf_cpu_time ? static_cast<const TimeSource*>(&cpu_clock_)
                            : static_cast<const TimeSource*>(&clock_)) {
  const double max_speed =
      platform_.speed_of_type(platform_.num_core_types() - 1);
  throttles_.reserve(static_cast<usize>(layout_.nthreads()));
  for (int tid = 0; tid < layout_.nthreads(); ++tid)
    throttles_.emplace_back(max_speed / layout_.speed_of(tid), emulate_amp);

  if (bind_threads) try_bind_to_core(layout_.core_of(0));

  workers_.reserve(static_cast<usize>(layout_.nthreads() - 1));
  for (int tid = 1; tid < layout_.nthreads(); ++tid) {
    workers_.emplace_back([this, tid, bind_threads] {
      if (bind_threads) try_bind_to_core(layout_.core_of(tid));
      worker_main(tid);
    });
  }
}

Team::~Team() {
  {
    const std::scoped_lock lock(mutex_);
    shutting_down_ = true;
  }
  job_cv_.notify_all();
  // jthread joins on destruction.
}

void Team::worker_main(int tid) {
  u64 seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      job_cv_.wait(lock, [&] {
        return shutting_down_ || job_generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = job_generation_;
    }
    participate(tid);
    {
      const std::scoped_lock lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void Team::participate(int tid) {
  sched::ThreadContext tc{
      .tid = tid,
      .core_type = layout_.core_type_of(tid),
      .speed = layout_.speed_of(tid),
      .time = sf_clock_,
  };
  const Throttle& throttle = throttles_[static_cast<usize>(tid)];
  const WorkerInfo info{tid, tc.core_type, tc.speed};

  sched::IterRange r;
  while (job_sched_->next(tc, r)) {
    const Nanos t0 = clock_.now();
    (*job_body_)(r.begin, r.end, info);
    throttle.pay(clock_.now() - t0);
  }
}

void Team::run_loop(i64 count, const sched::ScheduleSpec& spec,
                    const RangeBody& body) {
  AID_CHECK(count >= 0);
  AID_CHECK_MSG(!in_loop_.exchange(true),
                "nested/concurrent run_loop is not supported");

  auto sched = sched::make_scheduler(spec, count, layout_);
  {
    const std::scoped_lock lock(mutex_);
    job_sched_ = sched.get();
    job_body_ = &body;
    active_workers_ = layout_.nthreads() - 1;
    ++job_generation_;
  }
  job_cv_.notify_all();

  participate(/*tid=*/0);  // the master is team member 0, as in libgomp

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_sched_ = nullptr;
    job_body_ = nullptr;
  }
  last_stats_ = sched->stats();
  in_loop_.store(false);
}

}  // namespace aid::rt
