#include "rt/team.h"

#include <exception>

#include "common/affinity.h"
#include "common/check.h"
#include "common/env.h"
#include "common/spin_wait.h"
#include "fault/fault.h"
#include "pipeline/loop_chain.h"

namespace aid::rt {

// The cache retains this many idle instances per shape precisely so a
// chain can hold a full ring of same-shape constructs in flight; a ring
// deepened past the retention cap would silently reintroduce steady-state
// construction misses (and break the cache-determinism tests).
static_assert(Team::kChainRing <= sched::SchedulerCache::kInstancesPerShape,
              "chain-ring depth exceeds SchedulerCache per-shape retention");

Team::Team(const platform::Platform& platform, int nthreads,
           platform::Mapping mapping, bool emulate_amp, bool bind_threads,
           bool sf_cpu_time)
    : platform_(platform),
      layout_(platform_, nthreads > 0 ? nthreads : platform_.num_cores(),
              mapping),
      shard_topo_(sched::ShardTopology::from_layout(layout_)),
      sf_clock_(sf_cpu_time ? static_cast<const TimeSource*>(&cpu_clock_)
                            : static_cast<const TimeSource*>(&clock_)),
      docks_(static_cast<usize>(layout_.nthreads() - 1)),
      spin_budget_(static_cast<i32>(env::get_int_at_least(
          "AID_FORKJOIN_SPIN", default_spin_budget(layout_.nthreads()), 0))),
      yield_budget_(static_cast<i32>(env::get_int_at_least(
          "AID_FORKJOIN_YIELD", default_yield_budget(layout_.nthreads()),
          0))) {
  const double max_speed =
      platform_.speed_of_type(platform_.num_core_types() - 1);
  throttles_.reserve(static_cast<usize>(layout_.nthreads()));
  for (int tid = 0; tid < layout_.nthreads(); ++tid)
    throttles_.emplace_back(max_speed / layout_.speed_of(tid), emulate_amp);

  // Arm the fault-injection plan (if AID_FAULT is set) before any worker
  // can execute a body shim; once-per-process, no-op thereafter.
  fault::init_from_env();

  if (bind_threads) try_bind_to_core(layout_.core_of(0));

  workers_.reserve(static_cast<usize>(layout_.nthreads() - 1));
  for (int tid = 1; tid < layout_.nthreads(); ++tid) {
    workers_.emplace_back([this, tid, bind_threads] {
      if (bind_threads) try_bind_to_core(layout_.core_of(tid));
      worker_main(tid);
    });
  }
}

Team::~Team() {
  // Shutdown is the cold path: bump every dock and broadcast on the shared
  // epoch unconditionally. Workers check shutting_down_ before touching the
  // ring.
  shutting_down_.store(true, std::memory_order_seq_cst);
  ++job_generation_;
  for (auto& dock : docks_)
    dock->gen.store(job_generation_, std::memory_order_seq_cst);
  epoch_->store(job_generation_, std::memory_order_seq_cst);
  epoch_->notify_all();
  // jthread joins on destruction.
}

u64 Team::wait_for_dispatch(Dock& dock, u64 seen) {
  u64 g = dock.gen.load(std::memory_order_acquire);
  if (g != seen) return g;

  // Spin (polling only this worker's own cache line), then yield (donate
  // the CPU to the master on oversubscribed hosts rather than paying a
  // futex sleep the master must then wake).
  if (spin_then_yield(
          [&] {
            g = dock.gen.load(std::memory_order_acquire);
            return g != seen;
          },
          spin_budget_, yield_budget_))
    return g;

  // Block on the shared epoch (one master notify_all wakes the team).
  // The sleepers_ increment must precede the final generation re-check so
  // it pairs with the master's publish-then-check-sleepers sequence
  // (Dekker: either we see the new generation here, or the master sees our
  // registration and pays the wake syscall).
  for (;;) {
    const u64 e = epoch_->load(std::memory_order_seq_cst);
    sleepers_->fetch_add(1, std::memory_order_seq_cst);
    g = dock.gen.load(std::memory_order_seq_cst);
    if (g != seen) {
      sleepers_->fetch_sub(1, std::memory_order_relaxed);
      return g;
    }
    epoch_->wait(e, std::memory_order_seq_cst);
    sleepers_->fetch_sub(1, std::memory_order_relaxed);
  }
}

void Team::worker_main(int tid) {
  Dock& dock = *docks_[static_cast<usize>(tid - 1)];
  u64 seen = 0;
  for (;;) {
    const u64 g = wait_for_dispatch(dock, seen);
    if (shutting_down_.load(std::memory_order_acquire)) return;
    // The dock may have advanced several generations while this worker was
    // draining earlier ones (a chain in flight): process every published
    // construct in order. The acquire read of `g` makes all slots staged up
    // to generation g visible.
    for (u64 gen = seen + 1; gen <= g; ++gen) {
      ChainSlot& slot = slot_of(gen);
      if (slot.dep_gen != 0) {
        wait_generation(slot.dep_gen);
        // A cancelled predecessor cancels its dependents: fold the
        // dependency gate's cancelled watermark into this construct's
        // token (first sighting wins; every sibling does the same).
        if (slot_of(slot.dep_gen).gate.was_cancelled(slot.dep_gen))
          slot.token.cancel(CancelReason::kDependency);
      }
      participate(tid, *slot.sched, *slot.body, &slot.token);
      slot.gate.check_in(gen, slot.token.cancelled());
    }
    seen = g;
  }
}

void Team::participate(int tid, sched::LoopScheduler& sched,
                       const RangeBody& body, CancelToken* token) {
  sched::ThreadContext tc{
      .tid = tid,
      .core_type = layout_.core_type_of(tid),
      .speed = layout_.speed_of(tid),
      .shard = sched.home_shard_of(tid),
      .time = sf_clock_,
      .cancel = token,
  };
  const Throttle& throttle = *throttles_[static_cast<usize>(tid)];
  const WorkerInfo info{tid, tc.core_type, tc.speed};
  // One latch per participation: the per-chunk fault probe is a plain
  // register test unless a plan is installed (fault/fault.h).
  const bool fault_on = fault::enabled();

  sched::IterRange r;
  while (sched.next(tc, r)) {
    const Nanos t0 = clock_.now();
    // The capture shim: a throwing body must never unwind past the dock
    // loop (workers have no handler up-stack — unwinding would terminate).
    // The FIRST exception per construct is stashed in the token (atomic
    // claim) and doubles as the cancellation signal; the next sched.next()
    // observes it, poisons the pool, and exits the take loop, so the gate
    // still closes and the master rethrows after the barrier.
    try {
      if (fault_on) [[unlikely]]
        fault::before_chunk(tid, r.begin, r.end);
      body(r.begin, r.end, info);
    } catch (...) {
      if (token != nullptr) token->capture(std::current_exception());
    }
    throttle.pay(clock_.now() - t0);
  }
}

u64 Team::publish(sched::LoopScheduler* sched, const RangeBody* body,
                  u64 dep_gen, CancelToken* external) {
  const u64 gen = job_generation_ + 1;
  ChainSlot& slot = slot_of(gen);
  // Ring reuse guard (callers enforce): the previous occupant, generation
  // gen - kChainRing, has completed, so nobody reads the old fields.
  AID_DCHECK(gen <= kChainRing || slot.gate.complete(gen - kChainRing));
  slot.sched = sched;
  slot.body = body;
  slot.dep_gen = dep_gen;
  // Re-own the slot token for the new occupant (the caller harvested any
  // error before reuse) and chain it to the caller's external token.
  slot.token.reset();
  slot.token.bind(external);
  slot.gate.arm(layout_.nthreads(), gen);
  ++job_generation_;
  // Publish per-dock generations first, then the shared epoch, then check
  // for sleepers: pairs with wait_for_dispatch's register-then-re-check
  // (Dekker), so the single notify_all syscall is paid only when some
  // worker actually reached the futex.
  for (auto& dock : docks_)
    dock->gen.store(job_generation_, std::memory_order_seq_cst);
  epoch_->store(job_generation_, std::memory_order_seq_cst);
  if (sleepers_->load(std::memory_order_seq_cst) != 0) epoch_->notify_all();
  return gen;
}

u64 Team::maybe_arm_watchdog(const sched::ScheduleSpec& spec,
                             ChainSlot* slot, u64 gen,
                             sched::LoopScheduler* sched,
                             CancelToken* serial_token) {
  if (spec.deadline_ns <= 0) return 0;
  if (slot == nullptr) {
    // Serial construct: no gate to diagnose — expiry just cancels, and the
    // master IS the only participant, so a wedge is its own caller's bug.
    return watchdog_.arm(serial_token, nullptr, 0, spec.deadline_ns,
                         "team construct (serial)");
  }
  // The dump section reads only atomics / racy-by-design diagnostics:
  // dock generations and the scheduler's pool remainder — NOT stats(),
  // which touches plain fields a live scheduler still writes.
  Watchdog::DumpFn dump = [this, sched, gen](std::FILE* f) {
    std::fprintf(f, "  scheduler: %.*s remaining=%lld\n",
                 static_cast<int>(sched->name().size()),
                 sched->name().data(),
                 static_cast<long long>(sched->remaining()));
    for (usize i = 0; i < docks_.size(); ++i)
      std::fprintf(
          f, "  worker %d: dock generation %llu (wedged construct %llu)\n",
          static_cast<int>(i) + 1,
          static_cast<unsigned long long>(
              docks_[i]->gen.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(gen));
  };
  return watchdog_.arm(&slot->token, &slot->gate, gen, spec.deadline_ns,
                       "team construct", std::move(dump));
}

void Team::run_loop(i64 count, const sched::ScheduleSpec& spec,
                    const RangeBody& body) {
  AID_CHECK(count >= 0);
  AID_CHECK_MSG(!in_loop_.exchange(true),
                "nested/concurrent run_loop is not supported");

  if (count == 0) {
    // Empty loop: no iterations, so no scheduler, no dispatch, no
    // barrier — the construct costs only this guard.
    last_stats_ = sched::SchedulerStats{};
    in_loop_.store(false, std::memory_order_release);
    return;
  }

  // The construct path is cache-first: an idle same-shape instance is
  // re-armed via reset() instead of reallocating scheduler + shard pool
  // per loop (sched/scheduler_cache.h; data-parallel apps run the same
  // loop shapes thousands of times).
  sched::LoopScheduler* sched =
      sched_cache_.acquire(spec, count, layout_, shard_topo_);

  std::exception_ptr error;
  if (docks_.empty()) {
    // Serial fast path: a one-thread team has nothing to dispatch — run
    // the master's participation with zero synchronization. The token
    // lives on the stack (nobody else reads it).
    CancelToken token;
    token.bind(spec.cancel);
    const u64 wd = maybe_arm_watchdog(spec, nullptr, 0, sched, &token);
    participate(/*tid=*/0, *sched, body, &token);
    if (wd != 0) watchdog_.disarm(wd);
    error = token.error();
  } else {
    // A run_loop is a chain of one: publish, participate as team member 0
    // (as in libgomp), check into the countdown, and flush immediately.
    // The ring reuse guard holds because every previous construct was
    // flushed before its run_loop/run_chain returned.
    const u64 gen = publish(sched, &body, /*dep_gen=*/0, spec.cancel);
    ChainSlot& slot = slot_of(gen);
    const u64 wd = maybe_arm_watchdog(spec, &slot, gen, sched, nullptr);
    participate(/*tid=*/0, *sched, body, &slot.token);
    slot.gate.check_in(gen, slot.token.cancelled());
    wait_generation(gen);
    if (wd != 0) watchdog_.disarm(wd);
    // The gate's acquire wait ordered every worker's capture before this
    // read: safe to harvest the first (and only stashed) exception now.
    error = slot.token.error();
  }

  // Cleanup FIRST, rethrow LAST: the lease goes back to the cache and the
  // reentrancy guard clears whether or not the construct failed, so the
  // team stays usable after a thrown body (the acceptance criterion).
  last_stats_ = sched->stats();
  sched_cache_.release(sched);
  in_loop_.store(false, std::memory_order_release);
  if (error) std::rethrow_exception(error);
}

void Team::run_chain(const pipeline::LoopChain& chain) {
  const auto& loops = chain.loops();
  if (loops.empty()) return;
  AID_CHECK_MSG(!in_loop_.exchange(true),
                "nested/concurrent run_chain is not supported");

  if (docks_.empty()) {
    // One-thread team: the chain degenerates to running each loop in
    // order; every dependency is trivially satisfied — except that a
    // cancelled predecessor must still cancel its dependents, and an
    // entry's exception must cancel downstream entries yet only rethrow
    // after the whole chain wound down (same contract as the ring path).
    std::exception_ptr chain_error;
    std::vector<char> entry_cancelled(loops.size(), 0);
    for (usize k = 0; k < loops.size(); ++k) {
      const auto& loop = loops[k];
      sched::LoopScheduler* sched =
          sched_cache_.acquire(loop.spec, loop.count, layout_, shard_topo_);
      CancelToken token;
      token.bind(loop.spec.cancel);
      if (loop.depends_on >= 0 &&
          entry_cancelled[static_cast<usize>(loop.depends_on)] != 0)
        token.cancel(CancelReason::kDependency);
      const u64 wd = maybe_arm_watchdog(loop.spec, nullptr, 0, sched, &token);
      participate(/*tid=*/0, *sched, loop.body, &token);
      if (wd != 0) watchdog_.disarm(wd);
      entry_cancelled[k] = token.cancelled() ? 1 : 0;
      if (!chain_error) chain_error = token.error();
      last_stats_ = sched->stats();
      sched_cache_.release(sched);
    }
    in_loop_.store(false, std::memory_order_release);
    if (chain_error) std::rethrow_exception(chain_error);
    return;
  }

  // Chain entry k runs as generation base + 1 + k. The master is both the
  // publisher and team member 0: it stages loops into the ring as long as
  // slots are free (so workers flow ahead without it), and otherwise works
  // through its own shares in chain order. It blocks only when the ring is
  // full with constructs it has already participated in — and at the
  // chain-end flush.
  const u64 base = job_generation_;
  const usize total = loops.size();
  // Cache leases for the chain's schedulers: a ring slot's scheduler must
  // stay alive until the slot's flush, so every lease is released only
  // after the chain-end flush (and the final stats read).
  std::vector<sched::LoopScheduler*> scheds(total, nullptr);
  std::vector<u64> wd_ids(total, 0);
  // First error anywhere in the chain, rethrown after the chain wound
  // down. MUST be harvested from a slot's token before publish() reuses
  // (and resets) that slot — i.e. at the ring-reuse point, and after the
  // final flush for the last ring-depth entries.
  std::exception_ptr chain_error;
  const auto harvest = [&chain_error](CancelToken& token) {
    if (!chain_error) chain_error = token.error();
  };
  usize pub = 0;  // loops published so far
  usize run = 0;  // loops the master has participated in
  while (run < total) {
    while (pub < total) {
      const u64 gen = base + 1 + pub;
      // Ring reuse guard: the slot's previous occupant must be complete.
      if (gen > kChainRing && !slot_of(gen).gate.complete(gen - kChainRing))
        break;
      // The guard just proved chain entry pub - kChainRing fully
      // completed: release its lease now (stats are read from the final
      // entry only), so a long same-shape chain re-arms at most
      // kChainRing instances instead of defeating the cache.
      if (pub >= kChainRing) {
        const usize prev = pub - kChainRing;
        if (wd_ids[prev] != 0) watchdog_.disarm(wd_ids[prev]);
        harvest(slot_of(gen).token);  // same slot, previous occupant
        sched_cache_.release(scheds[prev]);
        scheds[prev] = nullptr;
      }
      const auto& loop = loops[pub];
      scheds[pub] =
          sched_cache_.acquire(loop.spec, loop.count, layout_, shard_topo_);
      const u64 dep =
          loop.depends_on >= 0
              ? base + 1 + static_cast<u64>(loop.depends_on)
              : 0;
      publish(scheds[pub], &loop.body, dep, loop.spec.cancel);
      wd_ids[pub] = maybe_arm_watchdog(loop.spec, &slot_of(gen), gen,
                                       scheds[pub], nullptr);
      ++pub;
    }
    if (run < pub) {
      const u64 gen = base + 1 + run;
      ChainSlot& slot = slot_of(gen);
      if (slot.dep_gen != 0) {
        wait_generation(slot.dep_gen);
        // Mirror worker_main: a cancelled predecessor cancels dependents.
        if (slot_of(slot.dep_gen).gate.was_cancelled(slot.dep_gen))
          slot.token.cancel(CancelReason::kDependency);
      }
      participate(/*tid=*/0, *slot.sched, loops[run].body, &slot.token);
      slot.gate.check_in(gen, slot.token.cancelled());
      ++run;
    } else {
      // Ring full, master has participated everywhere it can: wait for the
      // occupant blocking the next publish (workers are draining it).
      wait_generation(base + 1 + pub - kChainRing);
    }
  }

  // The chain-end flush: the only full barrier in the chain.
  for (usize k = 0; k < total; ++k) wait_generation(base + 1 + k);
  // Disarm + harvest the entries whose slots were never reused (the final
  // ring-depth window); everything earlier was harvested at reuse.
  for (usize k = total >= kChainRing ? total - kChainRing : 0; k < total;
       ++k) {
    if (wd_ids[k] != 0) watchdog_.disarm(wd_ids[k]);
    harvest(slot_of(base + 1 + k).token);
  }

  last_stats_ = scheds[total - 1]->stats();
  for (sched::LoopScheduler* s : scheds)
    if (s != nullptr) sched_cache_.release(s);
  in_loop_.store(false, std::memory_order_release);
  if (chain_error) std::rethrow_exception(chain_error);
}

}  // namespace aid::rt
