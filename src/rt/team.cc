#include "rt/team.h"

#include "common/affinity.h"
#include "common/check.h"
#include "common/env.h"
#include "common/spin_wait.h"

namespace aid::rt {

Team::Team(const platform::Platform& platform, int nthreads,
           platform::Mapping mapping, bool emulate_amp, bool bind_threads,
           bool sf_cpu_time)
    : platform_(platform),
      layout_(platform_, nthreads > 0 ? nthreads : platform_.num_cores(),
              mapping),
      sf_clock_(sf_cpu_time ? static_cast<const TimeSource*>(&cpu_clock_)
                            : static_cast<const TimeSource*>(&clock_)),
      docks_(static_cast<usize>(layout_.nthreads() - 1)),
      spin_budget_(static_cast<i32>(env::get_int(
          "AID_FORKJOIN_SPIN", default_spin_budget(layout_.nthreads())))),
      yield_budget_(static_cast<i32>(env::get_int(
          "AID_FORKJOIN_YIELD", default_yield_budget(layout_.nthreads())))) {
  const double max_speed =
      platform_.speed_of_type(platform_.num_core_types() - 1);
  throttles_.reserve(static_cast<usize>(layout_.nthreads()));
  for (int tid = 0; tid < layout_.nthreads(); ++tid)
    throttles_.emplace_back(max_speed / layout_.speed_of(tid), emulate_amp);

  if (bind_threads) try_bind_to_core(layout_.core_of(0));

  workers_.reserve(static_cast<usize>(layout_.nthreads() - 1));
  for (int tid = 1; tid < layout_.nthreads(); ++tid) {
    workers_.emplace_back([this, tid, bind_threads] {
      if (bind_threads) try_bind_to_core(layout_.core_of(tid));
      worker_main(tid);
    });
  }
}

Team::~Team() {
  // Shutdown is the cold path: bump every dock and broadcast on the shared
  // epoch unconditionally. Workers check shutting_down_ before touching the
  // job fields.
  shutting_down_.store(true, std::memory_order_seq_cst);
  ++job_generation_;
  for (auto& dock : docks_)
    dock->gen.store(job_generation_, std::memory_order_seq_cst);
  epoch_->store(job_generation_, std::memory_order_seq_cst);
  epoch_->notify_all();
  // jthread joins on destruction.
}

u64 Team::wait_for_dispatch(Dock& dock, u64 seen) {
  u64 g = dock.gen.load(std::memory_order_acquire);
  if (g != seen) return g;

  // Spin (polling only this worker's own cache line), then yield (donate
  // the CPU to the master on oversubscribed hosts rather than paying a
  // futex sleep the master must then wake).
  if (spin_then_yield(
          [&] {
            g = dock.gen.load(std::memory_order_acquire);
            return g != seen;
          },
          spin_budget_, yield_budget_))
    return g;

  // Block on the shared epoch (one master notify_all wakes the team).
  // The sleepers_ increment must precede the final generation re-check so
  // it pairs with the master's publish-then-check-sleepers sequence
  // (Dekker: either we see the new generation here, or the master sees our
  // registration and pays the wake syscall).
  for (;;) {
    const u64 e = epoch_->load(std::memory_order_seq_cst);
    sleepers_->fetch_add(1, std::memory_order_seq_cst);
    g = dock.gen.load(std::memory_order_seq_cst);
    if (g != seen) {
      sleepers_->fetch_sub(1, std::memory_order_relaxed);
      return g;
    }
    epoch_->wait(e, std::memory_order_seq_cst);
    sleepers_->fetch_sub(1, std::memory_order_relaxed);
  }
}

void Team::join_workers() {
  int n = unfinished_->load(std::memory_order_acquire);
  if (n == 0) return;

  if (spin_then_yield(
          [&] {
            return unfinished_->load(std::memory_order_acquire) == 0;
          },
          spin_budget_, yield_budget_))
    return;

  // Mirror of wait_for_dispatch: publish parked, then re-check, so the last
  // worker's decrement-then-check-parked cannot slip between our check and
  // our sleep without producing a wake.
  master_parked_->store(true, std::memory_order_seq_cst);
  for (;;) {
    n = unfinished_->load(std::memory_order_seq_cst);
    if (n == 0) break;
    unfinished_->wait(n, std::memory_order_seq_cst);
  }
  master_parked_->store(false, std::memory_order_relaxed);
}

void Team::worker_main(int tid) {
  Dock& dock = *docks_[static_cast<usize>(tid - 1)];
  u64 seen = 0;
  for (;;) {
    seen = wait_for_dispatch(dock, seen);
    if (shutting_down_.load(std::memory_order_acquire)) return;
    participate(tid);
    // Completion barrier check-in. The release ordering (via seq_cst)
    // publishes this worker's scheduler mutations to the master's stats()
    // read; the parked check pairs with join_workers' Dekker sequence.
    if (unfinished_->fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        master_parked_->load(std::memory_order_seq_cst))
      unfinished_->notify_one();
  }
}

void Team::participate(int tid) {
  sched::ThreadContext tc{
      .tid = tid,
      .core_type = layout_.core_type_of(tid),
      .speed = layout_.speed_of(tid),
      .time = sf_clock_,
  };
  const Throttle& throttle = *throttles_[static_cast<usize>(tid)];
  const WorkerInfo info{tid, tc.core_type, tc.speed};

  sched::IterRange r;
  while (job_sched_->next(tc, r)) {
    const Nanos t0 = clock_.now();
    (*job_body_)(r.begin, r.end, info);
    throttle.pay(clock_.now() - t0);
  }
}

void Team::run_loop(i64 count, const sched::ScheduleSpec& spec,
                    const RangeBody& body) {
  AID_CHECK(count >= 0);
  AID_CHECK_MSG(!in_loop_.exchange(true),
                "nested/concurrent run_loop is not supported");

  auto sched = sched::make_scheduler(spec, count, layout_);
  job_sched_ = sched.get();
  job_body_ = &body;

  if (docks_.empty() || count == 0) {
    // Serial fast path: a one-thread team (or an empty loop) has nothing to
    // dispatch — run the master's participation with zero synchronization.
    participate(/*tid=*/0);
  } else {
    unfinished_->store(static_cast<int>(docks_.size()),
                       std::memory_order_relaxed);
    ++job_generation_;
    // Publish per-dock generations first, then the shared epoch, then check
    // for sleepers: pairs with wait_for_dispatch's register-then-re-check
    // (Dekker), so the single notify_all syscall is paid only when some
    // worker actually reached the futex.
    for (auto& dock : docks_)
      dock->gen.store(job_generation_, std::memory_order_seq_cst);
    epoch_->store(job_generation_, std::memory_order_seq_cst);
    if (sleepers_->load(std::memory_order_seq_cst) != 0)
      epoch_->notify_all();

    participate(/*tid=*/0);  // the master is team member 0, as in libgomp
    join_workers();
  }

  job_sched_ = nullptr;
  job_body_ = nullptr;
  last_stats_ = sched->stats();
  in_loop_.store(false, std::memory_order_release);
}

}  // namespace aid::rt
