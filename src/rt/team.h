// Thread team: the real-thread work-sharing runtime.
//
// A Team owns nthreads−1 persistent worker threads (the master participates
// as tid 0, as in libgomp). run_loop() is the work-sharing construct: every
// team member repeatedly pulls ranges from the loop's scheduler — the
// GOMP_loop_*_start/next protocol — executes the body on them, and joins an
// implicit barrier.
//
// Thread-to-core semantics come from a TeamLayout (SB/BS mapping). On hosts
// that are not real AMPs, per-worker Throttles emulate the asymmetry
// (rt/throttle.h); on a real AMP, enable AID_BIND_THREADS and disable
// AID_EMULATE_AMP to use hardware asymmetry via affinity.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time_source.h"
#include "platform/team_layout.h"
#include "rt/runtime_config.h"
#include "rt/throttle.h"
#include "sched/loop_scheduler.h"

namespace aid::rt {

/// Per-worker facts exposed to loop bodies.
struct WorkerInfo {
  int tid = 0;
  int core_type = 0;
  double speed = 1.0;
};

/// A loop body invoked once per scheduler-assigned range of canonical
/// iterations [begin, end). Bodies must be thread-safe across disjoint
/// ranges (the usual OpenMP contract).
using RangeBody = std::function<void(i64 begin, i64 end, const WorkerInfo&)>;

class Team {
 public:
  /// The platform is copied; the layout binds nthreads (0 = all cores) to
  /// cores per `mapping`. `sf_cpu_time` makes the schedulers' sampling use
  /// per-thread CPU time (the paper's footnote-3 oversubscription fix)
  /// instead of the wall clock.
  Team(const platform::Platform& platform, int nthreads,
       platform::Mapping mapping, bool emulate_amp = true,
       bool bind_threads = false, bool sf_cpu_time = false);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Execute `count` canonical iterations under `spec`. Blocks until the
  /// implicit barrier completes. Not reentrant (no nested regions).
  void run_loop(i64 count, const sched::ScheduleSpec& spec,
                const RangeBody& body);

  /// Per-iteration convenience over a user iteration space.
  template <typename F>
  void parallel_for(i64 start, i64 end, i64 step,
                    const sched::ScheduleSpec& spec, F&& f) {
    const sched::IterationSpace space(start, end, step);
    run_loop(space.count(), spec,
             [&space, &f](i64 b, i64 e, const WorkerInfo& w) {
               for (i64 c = b; c < e; ++c) f(space.value_of(c), w);
             });
  }

  [[nodiscard]] const platform::TeamLayout& layout() const { return layout_; }
  [[nodiscard]] int nthreads() const { return layout_.nthreads(); }

  /// Stats of the most recent loop (SF estimate, pool removals, ...).
  [[nodiscard]] sched::SchedulerStats last_loop_stats() const {
    return last_stats_;
  }

 private:
  void worker_main(int tid);
  void participate(int tid);

  platform::Platform platform_;
  platform::TeamLayout layout_;
  SteadyTimeSource clock_;
  ThreadCpuTimeSource cpu_clock_;
  const TimeSource* sf_clock_;  // what the schedulers' sampling observes
  std::vector<Throttle> throttles_;

  // Job dispatch: master publishes {scheduler, body} under the mutex and
  // bumps the generation; workers wake, participate, and count down.
  std::mutex mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  u64 job_generation_ = 0;
  bool shutting_down_ = false;
  sched::LoopScheduler* job_sched_ = nullptr;
  const RangeBody* job_body_ = nullptr;
  int active_workers_ = 0;
  std::atomic<bool> in_loop_{false};  // reentrancy guard

  sched::SchedulerStats last_stats_;
  std::vector<std::jthread> workers_;
};

}  // namespace aid::rt
