// Thread team: the real-thread work-sharing runtime.
//
// A Team owns nthreads−1 persistent worker threads (the master participates
// as tid 0, as in libgomp). run_loop() is the work-sharing construct: every
// team member repeatedly pulls ranges from the loop's scheduler — the
// GOMP_loop_*_start/next protocol — executes the body on them, and joins an
// implicit barrier. run_chain() is the pipelined multi-construct form: a
// whole pipeline::LoopChain is published as consecutive dispatch
// generations and team members flow from loop k to loop k+1 with nowait
// semantics (no inter-construct barrier; see below).
//
// The fork/join critical path is lock-free in steady state (see
// src/rt/README.md for the design): dispatch is a per-worker cache-line-
// padded generation counter (a distributed sense-reversing barrier — each
// worker's "sense" is the last generation it observed), completion is an
// atomic countdown, and both sides wait by bounded spinning with CPU-relax
// hints before blocking in std::atomic::wait (futex). No mutex or
// condition variable exists anywhere in the runtime.
//
// Generation ring: every published construct (a run_loop, or one entry of a
// run_chain) occupies the chain-slot ring entry `generation % kChainRing`.
// A worker that observes its dock at generation g processes every slot in
// (last-seen, g] in order, so the master can keep publishing loop k+1
// while stragglers drain loop k; per-slot completion is an atomic countdown
// whose last decrementer publishes the slot's generation into a monotone
// `completed` word (the wait channel for dependent loops and for the
// master's flush). A slot is reused for generation g only once its previous
// occupant g - kChainRing has fully completed.
//
// Thread-to-core semantics come from a TeamLayout (SB/BS mapping). On hosts
// that are not real AMPs, per-worker Throttles emulate the asymmetry
// (rt/throttle.h); on a real AMP, enable AID_BIND_THREADS and disable
// AID_EMULATE_AMP to use hardware asymmetry via affinity.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/completion_gate.h"
#include "common/padded.h"
#include "common/time_source.h"
#include "platform/team_layout.h"
#include "rt/runtime_config.h"
#include "rt/throttle.h"
#include "rt/watchdog.h"
#include "sched/loop_scheduler.h"
#include "sched/scheduler_cache.h"
#include "sched/shard_topology.h"

namespace aid::pipeline {
class LoopChain;
}  // namespace aid::pipeline

namespace aid::rt {

/// Per-worker facts exposed to loop bodies.
struct WorkerInfo {
  int tid = 0;
  int core_type = 0;
  double speed = 1.0;
};

/// A loop body invoked once per scheduler-assigned range of canonical
/// iterations [begin, end). Bodies must be thread-safe across disjoint
/// ranges (the usual OpenMP contract).
using RangeBody = std::function<void(i64 begin, i64 end, const WorkerInfo&)>;

class Team {
 public:
  /// In-flight constructs the generation ring can hold: a run_chain keeps
  /// up to this many loops outstanding before the publisher must wait for
  /// the oldest to drain. Power of two (slot index is gen % kChainRing).
  static constexpr u64 kChainRing = 8;

  /// The platform is copied; the layout binds nthreads (0 = all cores) to
  /// cores per `mapping`. `sf_cpu_time` makes the schedulers' sampling use
  /// per-thread CPU time (the paper's footnote-3 oversubscription fix)
  /// instead of the wall clock.
  Team(const platform::Platform& platform, int nthreads,
       platform::Mapping mapping, bool emulate_amp = true,
       bool bind_threads = false, bool sf_cpu_time = false);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Execute `count` canonical iterations under `spec`. Blocks until the
  /// implicit barrier completes. Not reentrant (no nested regions).
  ///
  /// Failure domain (src/rt/README.md "Failure model"):
  ///  * spec.cancel — cooperative cancellation observed at every
  ///    chunk-take boundary (latency: one chunk); remaining iterations
  ///    are dropped, the barrier still closes, the construct returns
  ///    normally.
  ///  * spec.deadline_ns — the team watchdog cancels the construct when
  ///    the deadline passes (CancelReason::kDeadline).
  ///  * a throwing body — the first exception is captured, cancels the
  ///    construct, and rethrows HERE (on the master) after the barrier
  ///    closed and the scheduler lease was released; workers never unwind.
  void run_loop(i64 count, const sched::ScheduleSpec& spec,
                const RangeBody& body);

  /// Execute a chain of loops with nowait semantics: loop k+1 is dispatched
  /// the moment it is published, each team member advances to it as soon as
  /// its own share of loop k drains, and only `depends_on` edges (full
  /// predecessor completion) gate entry. Blocks until every loop of the
  /// chain has completed (the chain-end flush). Not reentrant, and not
  /// concurrent with run_loop.
  void run_chain(const pipeline::LoopChain& chain);

  /// Per-iteration convenience over a user iteration space.
  template <typename F>
  void parallel_for(i64 start, i64 end, i64 step,
                    const sched::ScheduleSpec& spec, F&& f) {
    const sched::IterationSpace space(start, end, step);
    run_loop(space.count(), spec,
             [&space, &f](i64 b, i64 e, const WorkerInfo& w) {
               for (i64 c = b; c < e; ++c) f(space.value_of(c), w);
             });
  }

  [[nodiscard]] const platform::TeamLayout& layout() const { return layout_; }
  [[nodiscard]] int nthreads() const { return layout_.nthreads(); }

  /// Stats of the most recent loop (SF estimate, pool removals, ...). For a
  /// chain: the final entry's stats.
  [[nodiscard]] sched::SchedulerStats last_loop_stats() const {
    return last_stats_;
  }

  /// Per-shape scheduler cache every construct of this team draws from
  /// (run_loop, run_chain entries, and the GOMP work-share ring via
  /// Runtime::scheduler_cache). Never invalidated: the team's layout is
  /// fixed for its lifetime. Exposed for the GOMP surface and for
  /// hit/miss observability in tests.
  [[nodiscard]] sched::SchedulerCache& scheduler_cache() {
    return sched_cache_;
  }

  /// The shard topology every construct of this team arms (fixed for the
  /// team's lifetime). Exposed so the GOMP surface reuses it instead of
  /// re-deriving one (env read + allocation) per parallel region.
  [[nodiscard]] const sched::ShardTopology& shard_topology() const {
    return shard_topo_;
  }

 private:
  /// One worker's dispatch mailbox, alone in its cache line (via Padded):
  /// the generation of the last job published to this worker. The worker's
  /// wait condition is gen != last-seen (the sense-reversal), and its spin
  /// phase polls only this private line. Blocking happens on the *shared*
  /// epoch_ word instead, so one futex broadcast wakes the whole team.
  struct Dock {
    std::atomic<u64> gen{0};
  };

  /// One in-flight construct (ring entry `generation % kChainRing`).
  /// `sched`/`body`/`dep_gen` are plain fields: the master writes them
  /// before the release-store that publishes the generation to the docks,
  /// and no worker touches a slot whose generation it has not observed.
  /// The gate's monotone watermark makes a dependency wait on an
  /// already-reused slot return immediately instead of deadlocking on the
  /// new occupant's countdown (common/completion_gate.h). Scheduler
  /// lifetime is the cache lease: the master releases an entry's
  /// scheduler back to sched_cache_ only after the construct's flush.
  struct ChainSlot {
    sched::LoopScheduler* sched = nullptr;
    const RangeBody* body = nullptr;
    u64 dep_gen = 0;  ///< generation that must complete first (0 = none)
    CompletionGate gate;
    /// The occupant's cancellation token. reset + re-bound by publish()
    /// (safe: the ring reuse guard proved the previous occupant flushed),
    /// read by every participant at each chunk take, harvested by the
    /// master before the slot is reused or the construct returns.
    CancelToken token;
  };

  void worker_main(int tid);
  void participate(int tid, sched::LoopScheduler& sched,
                   const RangeBody& body, CancelToken* token);

  /// Spin-then-block until generation `gen` has fully completed.
  void wait_generation(u64 gen) {
    slot_of(gen).gate.wait(gen, spin_budget_, yield_budget_);
  }

  [[nodiscard]] ChainSlot& slot_of(u64 gen) {
    return ring_[gen % kChainRing];
  }

  /// Master side: stage `sched`/`body` into the next generation's ring slot
  /// and publish it to every dock (the slot's previous occupant must have
  /// completed — callers enforce the ring reuse guard). Returns the new
  /// generation.
  u64 publish(sched::LoopScheduler* sched, const RangeBody* body,
              u64 dep_gen, CancelToken* external);

  /// Arm the deadline watchdog for an in-flight construct when its spec
  /// asks for one (returns 0 otherwise — constructs without deadlines
  /// never touch the watchdog mutex).
  u64 maybe_arm_watchdog(const sched::ScheduleSpec& spec, ChainSlot* slot,
                         u64 gen, sched::LoopScheduler* sched,
                         CancelToken* serial_token);

  /// Worker side: spin-then-block until `dock.gen` leaves `seen`; returns
  /// the new generation.
  u64 wait_for_dispatch(Dock& dock, u64 seen);

  platform::Platform platform_;
  platform::TeamLayout layout_;
  /// Shard layout for every construct this team arms: one pool shard per
  /// populated core type (AID_SHARDS overrides; =1 is the single-pool
  /// fallback). Fixed for the team's lifetime because the layout is.
  sched::ShardTopology shard_topo_;
  /// Per-shape scheduler instances, re-armed per construct instead of
  /// reallocated (sched/scheduler_cache.h). Valid for the team's lifetime
  /// — the layout (and so the shard topology) never changes.
  sched::SchedulerCache sched_cache_;
  SteadyTimeSource clock_;
  ThreadCpuTimeSource cpu_clock_;
  const TimeSource* sf_clock_;  // what the schedulers' sampling observes
  std::vector<Padded<Throttle>> throttles_;

  // Job dispatch: the master stages the construct into its ring slot (plain
  // stores), then publishes the new generation into every dock and finally
  // into epoch_ with release-or-stronger stores; a worker's acquire read of
  // its dock's generation makes every staged slot up to that generation
  // visible. Workers that exhaust their spin budget sleep in epoch_.wait()
  // (futex) after bumping sleepers_ — the master pays one notify_all
  // syscall only when sleepers_ != 0. Completion: every team member
  // (master included) decrements the slot's countdown; the last one
  // publishes the generation into the slot's `completed` word, which
  // dependency waits and the master's flush read with acquire ordering —
  // making all scheduler mutations visible before stats() is read. Steady
  // state takes no lock.
  u64 job_generation_ = 0;  // master-only
  std::array<ChainSlot, kChainRing> ring_;
  std::atomic<bool> shutting_down_{false};
  Padded<std::atomic<u64>> epoch_;        // workers' shared sleep channel
  Padded<std::atomic<int>> sleepers_;     // workers blocked in epoch_.wait
  std::vector<Padded<Dock>> docks_;  // worker tid t uses docks_[t - 1]
  std::atomic<bool> in_loop_{false};  // reentrancy guard (loop OR chain)
  i32 spin_budget_ = 0;   // cpu_relax budget before yielding/blocking
  i32 yield_budget_ = 0;  // sched_yield budget before blocking (see
                          // common/spin_wait.h: oversubscribed hosts only)

  sched::SchedulerStats last_stats_;
  std::vector<std::jthread> workers_;
  /// Deadline watchdog (lazy thread; armed only for deadline'd specs).
  /// Declared last so it is destroyed FIRST: its monitor thread may read
  /// ring gates/tokens, which must still be alive while it joins.
  Watchdog watchdog_;
};

}  // namespace aid::rt
