// Process-wide runtime — libaid's public entry point for applications.
//
// Mirrors how an OpenMP program meets libgomp: nothing is constructed
// explicitly; the first parallel loop materializes a team configured from
// the environment (AID_SCHEDULE, AID_NUM_THREADS, AID_AMP_AFFINITY,
// AID_PLATFORM, ...). Loops that do not pass an explicit ScheduleSpec use
// the environment's schedule — the observable behavior of the paper's GCC
// change (default schedule static → runtime, Sec. 4.1).
//
// With AID_POOL=1 the runtime owns no private worker team: it leases a
// core partition from the process-wide PoolManager (src/pool/), so
// several applications in one process share a single worker pool and the
// same unmodified code adapts to whatever partition the arbiter grants —
// the paper's Sec. 4.3 portability story. Loop execution is identical
// either way; use Runtime::run_loop / rt::run_loop / rt::parallel_for,
// which route to the team or the lease transparently.
//
// Quickstart:
//   #include "rt/runtime.h"
//   aid::rt::parallel_for(0, n, 1, [&](aid::i64 i, const aid::rt::WorkerInfo&) {
//     out[i] = f(in[i]);
//   });
#pragma once

#include <memory>

#include "common/cancel.h"
#include "platform/platform.h"
#include "rt/runtime_config.h"
#include "rt/team.h"

namespace aid::pipeline {
class LoopChain;
}  // namespace aid::pipeline

namespace aid::pool {
class AppHandle;
}  // namespace aid::pool

namespace aid::rt {

class Runtime {
 public:
  /// The lazily-initialized global runtime (thread-safe construction).
  static Runtime& instance();

  /// Construct an isolated runtime (tests, multi-platform experiments).
  /// With config.use_pool, the runtime leases its partition from the
  /// process-wide PoolManager::instance() instead of building a team.
  Runtime(platform::Platform platform, RuntimeConfig config);
  ~Runtime();

  /// Execute `count` canonical iterations on the team or the leased pool
  /// partition. This is the construct every public loop entry routes to.
  ///
  /// Failure domain (src/rt/README.md "Failure model"): spec.cancel and
  /// spec.deadline_ns make the construct cancellable / deadline-bounded;
  /// a throwing body rethrows here, on the caller, after the construct
  /// wound down — the runtime stays fully usable afterwards.
  void run_loop(i64 count, const sched::ScheduleSpec& spec,
                const RangeBody& body);

  /// run_loop with an explicit cancellation token and/or deadline — sugar
  /// for spec.with_cancel(&cancel).with_deadline_ns(deadline_ns). The
  /// token may be fired from any thread while the loop runs.
  void run_loop(i64 count, const sched::ScheduleSpec& spec,
                const RangeBody& body, CancelToken& cancel,
                i64 deadline_ns = 0);

  /// Execute a pipeline::LoopChain with nowait semantics on the team or
  /// the leased pool partition (pipelined over the generation docks; in
  /// pool mode, repartitions commit between ring entries). Blocks until
  /// the whole chain completes. See src/pipeline/README.md.
  void run_chain(const pipeline::LoopChain& chain);

  /// run_chain with a chain-wide cancellation token and/or per-entry
  /// deadline: every entry that names no spec token/deadline of its own
  /// inherits these (the chain is copied once at launch to bind them —
  /// pipeline::LoopChain::bind_cancel on a caller-owned chain avoids the
  /// copy). Cancelling kills every in-flight and not-yet-published entry;
  /// dependents of a cancelled entry cancel through the ring as usual.
  void run_chain(const pipeline::LoopChain& chain, CancelToken& cancel,
                 i64 deadline_ns = 0);

  template <typename F>
  void parallel_for(i64 start, i64 end, i64 step,
                    const sched::ScheduleSpec& spec, F&& f) {
    const sched::IterationSpace space(start, end, step);
    run_loop(space.count(), spec,
             [&space, &f](i64 b, i64 e, const WorkerInfo& w) {
               for (i64 c = b; c < e; ++c) f(space.value_of(c), w);
             });
  }

  /// Current thread-to-core layout: the team's (stable), or a snapshot of
  /// the leased partition (may change at loop boundaries as the pool
  /// repartitions).
  [[nodiscard]] platform::TeamLayout layout() const;
  [[nodiscard]] int nthreads() const;

  /// Pin the layout across several loops (a parallel region): in pool
  /// mode this defers repartitioning until exit_region(); in team mode it
  /// is a no-op. The returned reference is valid until exit_region().
  const platform::TeamLayout& enter_region();
  void exit_region();

  /// Stats of the most recent loop (SF estimate, pool removals, ...).
  [[nodiscard]] sched::SchedulerStats last_loop_stats() const;

  /// The per-shape scheduler cache constructs on this runtime draw from:
  /// the team's, or the leased pool partition's (invalidated by the
  /// manager whenever the partition moves). The GOMP work-share ring
  /// acquires its per-construct schedulers here, so a region's repeated
  /// loop shapes are re-armed instead of reallocated. Valid while a
  /// region pins the layout (enter_region/exit_region).
  [[nodiscard]] sched::SchedulerCache& scheduler_cache();

  /// Shard topology of the current layout (the team's fixed one, or the
  /// leased partition's — rebuilt by the manager on adoption). Same
  /// validity contract as scheduler_cache(): hold the reference only
  /// while a region pins the layout.
  [[nodiscard]] const sched::ShardTopology& shard_topology() const;

  [[nodiscard]] bool uses_pool() const { return lease_ != nullptr; }

  /// The private team (non-pool mode only; CHECK-fails under AID_POOL=1 —
  /// use run_loop()/layout()/nthreads(), which work in both modes).
  [[nodiscard]] Team& team();

  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] const platform::Platform& platform() const {
    return platform_;
  }

  /// The schedule a loop without an explicit spec receives (AID_SCHEDULE).
  [[nodiscard]] const sched::ScheduleSpec& default_schedule() const {
    return config_.schedule;
  }

 private:
  platform::Platform platform_;
  RuntimeConfig config_;
  std::unique_ptr<Team> team_;             // private-team mode
  std::unique_ptr<pool::AppHandle> lease_; // shared-pool mode
};

/// Platform for the current process: AID_PLATFORM when set and valid,
/// otherwise the paper's Platform A shape (4 small + 4 big).
[[nodiscard]] platform::Platform platform_from_env();

/// Run a canonical-range loop on the global runtime with the environment's
/// schedule (the unmodified-application path).
void run_loop(i64 count, const RangeBody& body);
/// Same with an explicit schedule (the schedule-clause path).
void run_loop(i64 count, const sched::ScheduleSpec& spec,
              const RangeBody& body);

/// Per-iteration parallel_for over a user iteration space.
template <typename F>
void parallel_for(i64 start, i64 end, i64 step, F&& f) {
  Runtime& r = Runtime::instance();
  r.parallel_for(start, end, step, r.default_schedule(), std::forward<F>(f));
}

template <typename F>
void parallel_for(i64 start, i64 end, i64 step,
                  const sched::ScheduleSpec& spec, F&& f) {
  Runtime::instance().parallel_for(start, end, step, spec,
                                   std::forward<F>(f));
}

}  // namespace aid::rt
