// Process-wide runtime — libaid's public entry point for applications.
//
// Mirrors how an OpenMP program meets libgomp: nothing is constructed
// explicitly; the first parallel loop materializes a team configured from
// the environment (AID_SCHEDULE, AID_NUM_THREADS, AID_AMP_AFFINITY,
// AID_PLATFORM, ...). Loops that do not pass an explicit ScheduleSpec use
// the environment's schedule — the observable behavior of the paper's GCC
// change (default schedule static → runtime, Sec. 4.1).
//
// Quickstart:
//   #include "rt/runtime.h"
//   aid::rt::parallel_for(0, n, 1, [&](aid::i64 i, const aid::rt::WorkerInfo&) {
//     out[i] = f(in[i]);
//   });
#pragma once

#include "platform/platform.h"
#include "rt/runtime_config.h"
#include "rt/team.h"

namespace aid::rt {

class Runtime {
 public:
  /// The lazily-initialized global runtime (thread-safe construction).
  static Runtime& instance();

  /// Construct an isolated runtime (tests, multi-platform experiments).
  Runtime(platform::Platform platform, RuntimeConfig config);

  [[nodiscard]] Team& team() { return team_; }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] const platform::Platform& platform() const {
    return platform_;
  }

  /// The schedule a loop without an explicit spec receives (AID_SCHEDULE).
  [[nodiscard]] const sched::ScheduleSpec& default_schedule() const {
    return config_.schedule;
  }

 private:
  platform::Platform platform_;
  RuntimeConfig config_;
  Team team_;
};

/// Platform for the current process: AID_PLATFORM when set and valid,
/// otherwise the paper's Platform A shape (4 small + 4 big).
[[nodiscard]] platform::Platform platform_from_env();

/// Run a canonical-range loop on the global runtime with the environment's
/// schedule (the unmodified-application path).
void run_loop(i64 count, const RangeBody& body);
/// Same with an explicit schedule (the schedule-clause path).
void run_loop(i64 count, const sched::ScheduleSpec& spec,
              const RangeBody& body);

/// Per-iteration parallel_for over a user iteration space.
template <typename F>
void parallel_for(i64 start, i64 end, i64 step, F&& f) {
  Runtime& r = Runtime::instance();
  r.team().parallel_for(start, end, step, r.default_schedule(),
                        std::forward<F>(f));
}

template <typename F>
void parallel_for(i64 start, i64 end, i64 step,
                  const sched::ScheduleSpec& spec, F&& f) {
  Runtime::instance().team().parallel_for(start, end, step, spec,
                                          std::forward<F>(f));
}

}  // namespace aid::rt
