#include "rt/watchdog.h"

#include <algorithm>

#include "common/env.h"

namespace aid::rt {

namespace {
constexpr i64 kDefaultGraceMs = 250;
}  // namespace

Watchdog::Watchdog()
    : grace_(env::get_int_at_least("AID_WATCHDOG_GRACE_MS", kDefaultGraceMs,
                                   0)) {}

Watchdog::~Watchdog() {
  {
    const std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

u64 Watchdog::arm(CancelToken* token, CompletionGate* gate, u64 tag,
                  i64 deadline_ns, std::string label, DumpFn dump) {
  AID_DCHECK(deadline_ns > 0);
  const auto deadline =
      Clock::now() + std::chrono::nanoseconds(deadline_ns);
  u64 id;
  {
    const std::scoped_lock lock(mu_);
    id = next_id_++;
    entries_.push_back(Entry{id, token, gate, tag, deadline,
                             /*fired=*/false, std::move(label),
                             std::move(dump)});
    if (!started_) {
      started_ = true;
      thread_ = std::thread([this] { thread_main(); });
    }
  }
  cv_.notify_all();
  return id;
}

void Watchdog::disarm(u64 id) {
  const std::scoped_lock lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
  // No notify: the monitor waking to find nothing due is harmless, and the
  // disarm path is the construct fast path.
}

void Watchdog::thread_main() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    if (entries_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !entries_.empty(); });
      continue;
    }
    Clock::time_point next = Clock::time_point::max();
    for (const Entry& e : entries_) {
      const auto due = e.fired ? e.deadline + grace_ : e.deadline;
      if (due < next) next = due;
    }
    cv_.wait_until(lock, next);
    if (stop_) break;

    const auto now = Clock::now();
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (!it->fired && now >= it->deadline) {
        // Step 1: fire the cancellation. Workers notice at their next
        // chunk-take boundary; on the happy path the master's disarm()
        // removes this entry before the grace check below.
        it->fired = true;
        expired_.fetch_add(1, std::memory_order_relaxed);
        if (it->token != nullptr) it->token->cancel(CancelReason::kDeadline);
      }
      if (it->fired && now >= it->deadline + grace_) {
        // Step 2: cancel ignored past grace — diagnose, then kick.
        if (it->gate != nullptr && !it->gate->complete(it->tag)) {
          dump_entry(*it);
          dumps_.fetch_add(1, std::memory_order_relaxed);
        }
        // Kick unconditionally: if the construct actually completed but
        // the master never woke (lost wake), the re-check releases it.
        if (it->gate != nullptr) it->gate->kick();
        it = entries_.erase(it);
        continue;
      }
      ++it;
    }
  }
}

void Watchdog::dump_entry(const Entry& entry) {
  const auto write = [&entry](std::FILE* f) {
    std::fprintf(f,
                 "libaid: WATCHDOG deadline expired and cancellation was "
                 "not honored within grace\n"
                 "  construct: %s (tag %llu)\n"
                 "  reason:    %s\n"
                 "  gate:      unfinished=%d watermark=%llu\n",
                 entry.label.c_str(),
                 static_cast<unsigned long long>(entry.tag),
                 entry.token != nullptr ? to_string(entry.token->reason())
                                        : "(no token)",
                 entry.gate->unfinished(),
                 static_cast<unsigned long long>(entry.gate->watermark()));
    if (entry.dump) entry.dump(f);
    std::fflush(f);
  };
  write(stderr);
  // Second copy to a file for CI artifact upload (appended: several
  // constructs may wedge in one run).
  static const std::optional<std::string> path =
      env::get("AID_WATCHDOG_DUMP");
  if (path.has_value()) {
    if (std::FILE* f = std::fopen(path->c_str(), "ae")) {
      write(f);
      std::fclose(f);
    }
  }
}

}  // namespace aid::rt
