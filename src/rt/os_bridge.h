// OS–runtime coordination for multi-application scenarios (paper Sec. 4.3).
//
// When several parallel applications share an AMP, thread-to-core placement
// belongs to the OS, and the paper sketches three minimal mechanisms for
// the runtime to stay asymmetry-aware without explicit CPU bindings:
//
//  1. a shared memory region through which the OS tells the runtime how
//     many of the application's threads sit on big cores at any moment
//     ("removing the need of system calls");
//  2. an OS placement convention that favors low thread-ids when populating
//     big cores — AID's mapping assumption;
//  3. notifications when a thread migrates between core types, giving the
//     runtime an opportunity to redistribute iterations.
//
// The paper leaves evaluating this to future work; this module implements
// the protocol so it can be exercised and tested: a writer/reader seqlock
// over the allotment (the OS publishes, the runtime polls lock-free), a
// migration-notification channel, and the layout builder that converts an
// allotment into the per-thread core assignment AID consumes.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <vector>

#include "platform/team_layout.h"

namespace aid::rt {

/// What the OS publishes: how many of the team's threads currently occupy
/// big cores. (With the Sec. 4.3 convention, that fully determines the
/// per-tid core types: tids 0..threads_on_big-1 are on big cores.)
struct Allotment {
  int threads_on_big = 0;
  u64 epoch = 0;  ///< OS placement generation, for change detection
};

/// Single-writer (OS) / multi-reader (runtime workers) shared region with
/// sequence-lock semantics: readers never block and always obtain a
/// consistent snapshot. Mirrors how a real kernel/user shared page would
/// behave.
class SharedAllotment {
 public:
  explicit SharedAllotment(Allotment initial = {});

  /// OS side. Not thread-safe against concurrent publishes (single writer).
  void publish(Allotment a);

  /// Runtime side: lock-free consistent snapshot (retries on torn reads).
  [[nodiscard]] Allotment read() const;

 private:
  mutable std::atomic<u64> sequence_{0};
  std::atomic<int> threads_on_big_{0};
  std::atomic<u64> epoch_{0};
};

/// Migration events (mechanism 3). Callbacks run on the notifying thread;
/// subscribers must be cheap and thread-safe.
struct MigrationEvent {
  int tid = 0;
  int from_core_type = 0;
  int to_core_type = 0;
};

class MigrationNotifier {
 public:
  using Callback = std::function<void(const MigrationEvent&)>;

  /// Returns a subscription id usable with unsubscribe().
  u64 subscribe(Callback cb);
  void unsubscribe(u64 id);

  /// OS side: deliver an event to all subscribers.
  void notify(const MigrationEvent& event);

  [[nodiscard]] i64 delivered_count() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<u64, Callback>> subscribers_;
  u64 next_id_ = 1;
  std::atomic<i64> delivered_{0};
};

/// Convert an allotment into the layout AID assumes (Sec. 4.3 convention:
/// tids 0..NB-1 on big cores, the rest on small cores). `threads_on_big`
/// is clamped to the platform's big-core count and the team size.
[[nodiscard]] platform::TeamLayout layout_for_allotment(
    const platform::Platform& platform, int nthreads, int threads_on_big);

/// Runtime-side poller: tracks the shared allotment and reports when the
/// placement changed since the last loop boundary, handing back a fresh
/// layout to schedule the next loop with.
class AllotmentTracker {
 public:
  AllotmentTracker(const platform::Platform& platform, int nthreads,
                   const SharedAllotment& shared);

  /// Poll at a loop boundary: returns true when the OS moved threads since
  /// the previous call (the runtime should rebuild its layout).
  bool refresh();

  [[nodiscard]] const platform::TeamLayout& layout() const { return layout_; }
  [[nodiscard]] Allotment current() const { return last_; }

 private:
  const platform::Platform& platform_;
  const SharedAllotment& shared_;
  int nthreads_;
  Allotment last_;
  platform::TeamLayout layout_;
};

}  // namespace aid::rt
