#include "rt/gomp_compat.h"

#include <atomic>
#include <barrier>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "rt/runtime.h"
#include "sched/iteration_space.h"
#include "sched/loop_scheduler.h"

namespace aid::rt::gomp {
namespace {

/// One work-sharing construct instance, shared by the team. Instances are
/// keyed by their sequence number (how many constructs each thread has
/// entered), reproducing libgomp's work-share chaining. `exited` is atomic
/// so the nowait exit path never touches the team mutex: a thread leaving
/// loop k must be able to run ahead into loop k+1 (and beyond) while a
/// straggler is still inside loop k.
struct WorkShareInstance {
  std::unique_ptr<sched::IterationSpace> space;
  std::unique_ptr<sched::LoopScheduler> sched;
  long user_start = 0;
  long user_incr = 1;
  std::atomic<int> exited{0};
};

struct GompTeamState {
  explicit GompTeamState(int nthreads)
      : barrier(nthreads), team_size(nthreads) {}

  std::mutex mutex;
  // Node-based map: instance addresses stay stable while run-ahead
  // threads insert new work shares and the sweep in loop_runtime_start
  // erases fully-exited ones (a thread's tls.current survives both).
  std::map<u64, WorkShareInstance> shares;
  std::barrier<> barrier;
  int team_size;
  // The layout pinned for this parallel region (Runtime::enter_region):
  // under AID_POOL the lease may repartition between regions, but within a
  // region every work share must see one consistent thread-to-core view.
  const platform::TeamLayout* layout = nullptr;
};

struct GompTls {
  GompTeamState* state = nullptr;
  int tid = 0;
  u64 sequence = 0;  ///< work-share constructs entered so far
  WorkShareInstance* current = nullptr;
  int shard = 0;  ///< home shard in current's pool (cached at loop start:
                  ///< loop_runtime_next runs once per chunk)
};

thread_local GompTls tls;

SteadyTimeSource g_clock;

sched::ThreadContext context_for(int tid) {
  const auto& layout = *tls.state->layout;
  return {.tid = tid,
          .core_type = layout.core_type_of(tid),
          .speed = layout.speed_of(tid),
          .time = &g_clock};
}

}  // namespace

void aid_gomp_parallel(void (*fn)(void*), void* data, unsigned num_threads) {
  AID_CHECK_MSG(fn != nullptr, "aid_gomp_parallel: null function");
  AID_CHECK_MSG(tls.state == nullptr,
                "nested aid_gomp_parallel is not supported");
  Runtime& rt = Runtime::instance();
  // Pin the layout for the region: under AID_POOL this holds the leased
  // partition stable across every work share inside fn.
  const platform::TeamLayout& layout = rt.enter_region();
  AID_CHECK_MSG(num_threads == 0 ||
                    num_threads == static_cast<unsigned>(layout.nthreads()),
                "libaid teams are fixed at startup; pass 0 threads");

  GompTeamState state(layout.nthreads());
  state.layout = &layout;
  // Every team member executes fn exactly once: one canonical iteration per
  // thread via round-robin static chunks of size 1.
  rt.run_loop(layout.nthreads(), sched::ScheduleSpec::static_chunked(1),
              [&](i64 b, i64 e, const WorkerInfo& w) {
                AID_CHECK(e == b + 1 && b == w.tid);
                tls = GompTls{&state, w.tid, 0, nullptr};
                fn(data);
                tls = GompTls{};
              });
  rt.exit_region();
}

bool aid_gomp_loop_runtime_start(long start, long end, long incr,
                                 long* istart, long* iend) {
  AID_CHECK_MSG(tls.state != nullptr,
                "work-sharing outside aid_gomp_parallel");
  AID_CHECK(istart != nullptr && iend != nullptr);
  GompTeamState& state = *tls.state;
  {
    const std::scoped_lock lock(state.mutex);
    // Deferred cleanup for the lock-free nowait exit: an instance whose
    // every team member has exited can never be touched again (the exited
    // increment is each thread's final access), so sweep such instances
    // here instead of in the exit path.
    std::erase_if(state.shares, [&](const auto& kv) {
      return kv.second.exited.load(std::memory_order_acquire) ==
             state.team_size;
    });
    WorkShareInstance& ws = state.shares[tls.sequence];
    if (ws.sched == nullptr) {
      // First thread to arrive initializes the work share; the schedule is
      // the environment's (the paper's `runtime` schedule semantics).
      ws.space = std::make_unique<sched::IterationSpace>(start, end, incr);
      ws.sched = sched::make_scheduler(
          Runtime::instance().default_schedule(), ws.space->count(),
          *state.layout,
          sched::ShardTopology::from_layout(*state.layout));
      ws.user_start = start;
      ws.user_incr = incr;
    }
    tls.current = &ws;
    tls.shard = ws.sched->home_shard_of(tls.tid);
  }
  return aid_gomp_loop_runtime_next(istart, iend);
}

bool aid_gomp_loop_runtime_next(long* istart, long* iend) {
  AID_CHECK_MSG(tls.current != nullptr,
                "loop_runtime_next without loop_runtime_start");
  sched::ThreadContext tc = context_for(tls.tid);
  tc.shard = tls.shard;
  sched::IterRange r;
  if (!tls.current->sched->next(tc, r)) return false;
  // Map canonical [begin, end) back to user coordinates. The returned
  // bounds follow the GOMP contract: iterate with
  // `for (i = *istart; i != *iend; i += incr)` — exclusive end for either
  // sign of the increment.
  const long s = tls.current->user_start;
  const long inc = tls.current->user_incr;
  *istart = s + static_cast<long>(r.begin) * inc;
  *iend = s + static_cast<long>(r.end) * inc;
  return true;
}

namespace {

/// Lock-free work-share exit (the `nowait` fast path): mark this thread
/// out with one atomic increment and advance to the next construct. No
/// team mutex, no map mutation — a thread leaving loop k can immediately
/// enter loop k+1's start while a straggler still pulls chunks from loop
/// k's scheduler. Fully-exited instances are swept by the next
/// loop_runtime_start (the release-increment / acquire-sweep pairing makes
/// the instance's final state visible to the sweeping thread).
void finish_workshare() {
  AID_CHECK_MSG(tls.state != nullptr, "loop_end outside aid_gomp_parallel");
  AID_CHECK_MSG(tls.current != nullptr, "loop_end without a work share");
  tls.current->exited.fetch_add(1, std::memory_order_release);
  tls.current = nullptr;
  ++tls.sequence;
}

}  // namespace

void aid_gomp_loop_end() {
  finish_workshare();
  tls.state->barrier.arrive_and_wait();
}

void aid_gomp_loop_end_nowait() { finish_workshare(); }

int aid_gomp_thread_num() {
  return tls.state != nullptr ? tls.tid : 0;
}

int aid_gomp_num_threads() {
  return tls.state != nullptr ? tls.state->team_size : 1;
}

void aid_gomp_barrier() {
  AID_CHECK_MSG(tls.state != nullptr, "barrier outside aid_gomp_parallel");
  tls.state->barrier.arrive_and_wait();
}

}  // namespace aid::rt::gomp
