#include "rt/gomp_compat.h"

#include <array>
#include <atomic>
#include <barrier>

#include "common/check.h"
#include "common/completion_gate.h"
#include "common/env.h"
#include "common/padded.h"
#include "common/spin_wait.h"
#include "rt/runtime.h"
#include "sched/iteration_space.h"
#include "sched/loop_scheduler.h"
#include "sched/scheduler_cache.h"
#include "sched/shard_topology.h"

namespace aid::rt::gomp {
namespace {

/// Work shares the region's generation ring holds in flight: how far a
/// run-ahead thread may flow past the team's slowest straggler, exactly
/// like a LoopChain over Team's ring. Same depth, same reuse discipline.
constexpr u64 kRing = Team::kChainRing;

/// Spin/yield budgets for the region's gate waits, mirroring Team's. The
/// environment *overrides* are latched once (mid-process env mutation is
/// not a supported configuration channel, and re-reading per region fork
/// would put two getenv+parse calls on the fast path the gomp_chain=
/// bench family times); the nthreads-dependent defaults are recomputed
/// per region, because under AID_POOL the leased partition — and so the
/// region's team size — changes across adoptions.
struct WaitBudgets {
  i32 spin;
  i32 yield;
};

WaitBudgets region_budgets(int nthreads) {
  static const i64 spin_override = env::get_int("AID_FORKJOIN_SPIN", -1);
  static const i64 yield_override = env::get_int("AID_FORKJOIN_YIELD", -1);
  return {spin_override >= 0 ? static_cast<i32>(spin_override)
                             : default_spin_budget(nthreads),
          yield_override >= 0 ? static_cast<i32>(yield_override)
                              : default_yield_budget(nthreads)};
}

/// One ring slot of the region's work-share chain. A work share is
/// identified by its *sequence* (1-based count of constructs the team has
/// entered — libgomp's work-share chaining id) and occupies slot
/// `sequence % kRing`. The slot is staged by exactly one thread (the
/// claim winner) and read by every team member:
///
///  * `claim` — staging ticket: arriving threads CAS it from the previous
///    occupant's sequence to their own; the single winner re-arms the
///    slot. Losers (and late stragglers whose CAS finds a newer value)
///    fall through to the publication wait.
///  * `published` — watermark-only CompletionGate (publish/wait): the
///    winner's publish(sequence) orders the staged plain fields below
///    against every other member's watermark read.
///  * `done` — the construct's completion countdown: every team member
///    checks in exactly once (its nowait exit); non-nowait `end` waits
///    here (the construct barrier), and the winner of sequence s waits on
///    `done.complete(s - kRing)` before restaging (the ring reuse guard).
///
/// ABA safety mirrors the pipeline ring: watermarks are monotone, and a
/// straggler still inside sequence s cannot observe slot fields of
/// s + kRing because that restaging is gated on the straggler's own
/// check_in to s.
struct WorkShareSlot {
  // Staged fields (plain: ordered by publish/wait on `published`).
  sched::LoopScheduler* sched = nullptr;
  long user_start = 0;
  long user_incr = 1;

  Padded<std::atomic<u64>> claim;
  CompletionGate published;
  CompletionGate done;
};

struct GompTeamState {
  GompTeamState(int nthreads, const platform::TeamLayout& team_layout,
                sched::SchedulerCache& sched_cache,
                const sched::ShardTopology& team_topo)
      : barrier(nthreads),
        team_size(nthreads),
        layout(&team_layout),
        topo(&team_topo),
        cache(&sched_cache),
        spin_budget(region_budgets(nthreads).spin),
        yield_budget(region_budgets(nthreads).yield) {}

  /// The region's work-share generation ring (see WorkShareSlot).
  std::array<WorkShareSlot, kRing> ring;
  std::barrier<> barrier;  ///< explicit aid_gomp_barrier only
  int team_size;
  // The layout pinned for this parallel region (Runtime::enter_region):
  // under AID_POOL the lease may repartition between regions, but within a
  // region every work share must see one consistent thread-to-core view.
  const platform::TeamLayout* layout = nullptr;
  /// Shard topology of the pinned layout — the runtime owner's cached one
  /// (Team's, or the lease's rebuilt-on-adoption copy), valid while the
  /// region pins the layout; not re-derived per region or work share.
  const sched::ShardTopology* topo = nullptr;
  /// The runtime's per-shape scheduler cache (team- or lease-owned): work
  /// shares re-arm cached instances instead of allocating per construct.
  sched::SchedulerCache* cache = nullptr;
  i32 spin_budget = 0;
  i32 yield_budget = 0;

  [[nodiscard]] WorkShareSlot& slot_of(u64 seq) { return ring[seq % kRing]; }
};

struct GompTls {
  GompTeamState* state = nullptr;
  int tid = 0;
  /// Work-share constructs entered so far; while `current` is set this IS
  /// the current construct's sequence (its completion tag).
  u64 sequence = 0;
  WorkShareSlot* current = nullptr;
  int shard = 0;  ///< home shard in current's pool (cached at loop start:
                  ///< loop_runtime_next runs once per chunk)
};

thread_local GompTls tls;

SteadyTimeSource g_clock;

sched::ThreadContext context_for(int tid) {
  const auto& layout = *tls.state->layout;
  return {.tid = tid,
          .core_type = layout.core_type_of(tid),
          .speed = layout.speed_of(tid),
          .time = &g_clock};
}

}  // namespace

void aid_gomp_parallel(void (*fn)(void*), void* data, unsigned num_threads) {
  AID_CHECK_MSG(fn != nullptr, "aid_gomp_parallel: null function");
  AID_CHECK_MSG(tls.state == nullptr,
                "nested aid_gomp_parallel is not supported");
  Runtime& rt = Runtime::instance();
  // Pin the layout for the region: under AID_POOL this holds the leased
  // partition stable across every work share inside fn (which also pins
  // the scheduler cache's validity — invalidation only happens when the
  // partition moves, and it cannot move inside a region).
  const platform::TeamLayout& layout = rt.enter_region();
  AID_CHECK_MSG(num_threads == 0 ||
                    num_threads == static_cast<unsigned>(layout.nthreads()),
                "libaid teams are fixed at startup; pass 0 threads");

  GompTeamState state(layout.nthreads(), layout, rt.scheduler_cache(),
                      rt.shard_topology());
  // Every team member executes fn exactly once: one canonical iteration per
  // thread via round-robin static chunks of size 1.
  rt.run_loop(layout.nthreads(), sched::ScheduleSpec::static_chunked(1),
              [&](i64 b, i64 e, const WorkerInfo& w) {
                AID_CHECK(e == b + 1 && b == w.tid);
                tls = GompTls{&state, w.tid, 0, nullptr, 0};
                fn(data);
                tls = GompTls{};
              });
  // The run_loop's implicit barrier is the chain-end flush: every member
  // returned from fn, so it checked into every work share it entered and
  // every `done` gate is closed. Each ring slot still leases its *last*
  // occupant's scheduler (earlier occupants were released at slot-reuse
  // time); all of them are quiescent now — hand them back.
  for (WorkShareSlot& slot : state.ring) state.cache->release(slot.sched);
  rt.exit_region();
}

bool aid_gomp_loop_runtime_start(long start, long end, long incr,
                                 long* istart, long* iend) {
  AID_CHECK_MSG(tls.state != nullptr,
                "work-sharing outside aid_gomp_parallel");
  AID_CHECK(istart != nullptr && iend != nullptr);
  GompTeamState& state = *tls.state;

  // This thread's next work share in the region's chain (1-based; libgomp
  // keys work shares by how many constructs each thread has entered).
  const u64 seq = ++tls.sequence;
  WorkShareSlot& slot = state.slot_of(seq);
  const u64 prev = seq > kRing ? seq - kRing : 0;

  // Claim the staging ticket: exactly one arriving thread CASes the
  // slot's previous occupant to `seq` and becomes the publisher. A
  // straggler arriving after a run-ahead peer already claimed seq + kRing
  // fails the CAS and lands in the publication wait below, where the
  // monotone watermark admits it immediately — and the fields it then
  // reads are still sequence seq's, because restaging for seq + kRing is
  // gated on this straggler's own check_in to seq.
  u64 expected = prev;
  if (slot.claim->compare_exchange_strong(expected, seq,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    // Ring reuse guard: the previous occupant must have fully completed
    // (every team member checked in) before its fields are replaced. This
    // is the pipeline ring's nowait bound — a run-ahead thread may flow
    // at most kRing work shares past the slowest straggler. The guard is
    // also the release point for the previous occupant's scheduler lease:
    // it is quiescent exactly here, so handing it back keeps at most
    // kRing leases outstanding and lets long nowait chains run entirely
    // on re-armed instances.
    if (prev != 0) {
      slot.done.wait(prev, state.spin_budget, state.yield_budget);
      state.cache->release(slot.sched);
    }
    sched::IterationSpace space(start, end, incr);
    // Per-shape cache: repeated work-share shapes (the common case — the
    // schedule is the environment's for every `runtime` construct) re-arm
    // a cached scheduler instead of allocating one. Only a region's first
    // ring-depth of shapes ever misses.
    slot.sched = state.cache->acquire(Runtime::instance().default_schedule(),
                                      space.count(), *state.layout,
                                      *state.topo);
    slot.user_start = start;
    slot.user_incr = incr;
    slot.done.arm(state.team_size, seq);
    slot.published.publish(seq);
  }
  // Everyone (winner included) enters through the publication watermark:
  // its acquire read orders the staged fields above.
  slot.published.wait(seq, state.spin_budget, state.yield_budget);

  tls.current = &slot;
  tls.shard = slot.sched->home_shard_of(tls.tid);
  return aid_gomp_loop_runtime_next(istart, iend);
}

bool aid_gomp_loop_runtime_next(long* istart, long* iend) {
  AID_CHECK_MSG(tls.current != nullptr,
                "loop_runtime_next without loop_runtime_start");
  sched::ThreadContext tc = context_for(tls.tid);
  tc.shard = tls.shard;
  sched::IterRange r;
  if (!tls.current->sched->next(tc, r)) return false;
  // Map canonical [begin, end) back to user coordinates. The returned
  // bounds follow the GOMP contract: iterate with
  // `for (i = *istart; i != *iend; i += incr)` — exclusive end for either
  // sign of the increment.
  const long s = tls.current->user_start;
  const long inc = tls.current->user_incr;
  *istart = s + static_cast<long>(r.begin) * inc;
  *iend = s + static_cast<long>(r.end) * inc;
  return true;
}

namespace {

/// Work-share exit — the `nowait` fast path and the first half of the
/// barrier-flavored end. One check_in on the construct's completion gate:
/// no mutex, no map, no barrier. A thread leaving work share k can
/// immediately claim/enter k+1 while a straggler still pulls chunks from
/// k's scheduler; the gate's last check_in publishes k's completion
/// watermark, which is what gates slot reuse (k + kRing's restaging) and
/// non-nowait ends.
void finish_workshare() {
  AID_CHECK_MSG(tls.state != nullptr, "loop_end outside aid_gomp_parallel");
  AID_CHECK_MSG(tls.current != nullptr, "loop_end without a work share");
  tls.current->done.check_in(tls.sequence);
  tls.current = nullptr;
}

}  // namespace

void aid_gomp_loop_end() {
  AID_CHECK_MSG(tls.state != nullptr, "loop_end outside aid_gomp_parallel");
  AID_CHECK_MSG(tls.current != nullptr, "loop_end without a work share");
  // Non-nowait end: the construct's implicit barrier is the completion
  // gate itself — wait until every team member checked in.
  WorkShareSlot& slot = *tls.current;
  const u64 seq = tls.sequence;
  finish_workshare();
  slot.done.wait(seq, tls.state->spin_budget, tls.state->yield_budget);
}

void aid_gomp_loop_end_nowait() { finish_workshare(); }

int aid_gomp_thread_num() {
  return tls.state != nullptr ? tls.tid : 0;
}

int aid_gomp_num_threads() {
  return tls.state != nullptr ? tls.state->team_size : 1;
}

void aid_gomp_barrier() {
  AID_CHECK_MSG(tls.state != nullptr, "barrier outside aid_gomp_parallel");
  tls.state->barrier.arrive_and_wait();
}

}  // namespace aid::rt::gomp
