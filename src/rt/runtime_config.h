// Environment-driven runtime configuration.
//
// The paper's activation story (Sec. 4.1): applications are *not* modified —
// a one-line GCC change routes every schedule-less loop through the runtime,
// and the user picks the method via the environment. libaid mirrors this:
//
//   AID_SCHEDULE      — OMP_SCHEDULE analog, e.g. "static", "dynamic,4",
//                       "aid-static", "aid-hybrid,1,80", "aid-dynamic,1,5".
//                       Loops executed without an explicit ScheduleSpec use
//                       this value. Default: "static" (the libgomp default).
//   AID_NUM_THREADS   — team size. Default: all cores of the platform.
//   AID_AMP_AFFINITY  — GOMP_AMP_AFFINITY analog: when set (truthy), the
//                       runtime binds threads so that the lowest thread ids
//                       sit on the big cores (the BS mapping AID assumes,
//                       Sec. 4.3). When unset, SB is used.
//   AID_MAPPING       — explicit override: "SB" or "BS".
//   AID_EMULATE_AMP   — duty-cycle emulation of small cores on a symmetric
//                       host (see rt/throttle.h). Default: on, because the
//                       build machine is symmetric; set to 0 on real AMPs.
//   AID_BIND_THREADS  — pin worker threads to core ids (best-effort).
//   AID_SF_CPU_TIME   — sample SF with per-thread CPU time instead of wall
//                       time (the paper's footnote-3 oversubscription fix).
//   AID_POOL          — when truthy, the global runtime does not build a
//                       private worker team; it leases a partition from the
//                       process-wide PoolManager (src/pool/), so several
//                       runtimes/apps in one process share a single worker
//                       pool with per-app core partitions (Sec. 4.3 / 5C).
//                       Partition sizing then belongs to the arbiter:
//                       AID_NUM_THREADS and AID_MAPPING do not apply, and
//                       the runtime reports the pool's platform.
//   AID_POOL_POLICY   — pool arbitration policy: "equal" (default),
//                       "big-priority", or "proportional".
//   AID_SHARDS        — work-share pool sharding (sched/shard_topology.h):
//                       unset/0 = one shard per populated core type (the
//                       cluster-local default), 1 = classic single-pool
//                       fallback, N>1 = cap the shard count. Read by the
//                       runtime layers when they arm a construct's pool.
#pragma once

#include <string>

#include "platform/team_layout.h"
#include "sched/schedule_spec.h"

namespace aid::rt {

struct RuntimeConfig {
  sched::ScheduleSpec schedule = sched::ScheduleSpec::static_even();
  int num_threads = 0;  ///< 0 = one per platform core
  platform::Mapping mapping = platform::Mapping::kSmallFirst;
  bool emulate_amp = true;
  bool bind_threads = false;
  bool sf_cpu_time = false;
  bool use_pool = false;  ///< route loops through the shared pool manager
  /// Arbitration policy name, parsed by the pool layer (pool/policy.h);
  /// kept as an opaque string here so rt/ headers stay independent of
  /// pool/ (the pool depends on rt, not the other way around).
  std::string pool_policy = "equal-share";
  /// AID_SHARDS as read at startup (0 = auto). Informational: the pool
  /// manager and the GOMP surface re-read the environment per construct
  /// (tests can toggle those per scope), while a Team snapshots its
  /// topology at construction — rebuild the Team to change it.
  int shards = 0;

  /// Read the AID_* variables; unparsable values fall back to defaults
  /// (libgomp-style forgiveness), reported through `warnings`.
  static RuntimeConfig from_env();

  [[nodiscard]] std::string describe() const;
};

}  // namespace aid::rt
