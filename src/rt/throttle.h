// Duty-cycle emulation of small cores on a symmetric host.
//
// The paper's Platform B *is itself* an emulated AMP: slow cores are real
// Xeon cores run at a reduced frequency and 87.5% duty cycle. We apply the
// same idea in software: after a worker bound to a (virtual) small core
// executes a block of iterations for t real nanoseconds, it busy-spins for
// an extra (slowdown − 1)·t, so the block appears to take slowdown·t.
//
// Crucially the spin happens *inside* the window bracketed by the worker's
// next() calls, so the AID sampling phase observes the emulated asymmetry
// exactly as it would observe real hardware asymmetry.
#pragma once

#include "common/spin_work.h"
#include "common/types.h"

namespace aid::rt {

class Throttle {
 public:
  /// `slowdown` >= 1: the factor by which this worker's core is slower than
  /// the fastest core type (fastest speed / this core's speed).
  explicit Throttle(double slowdown = 1.0, bool enabled = true)
      : slowdown_(slowdown), enabled_(enabled && slowdown > 1.0) {}

  /// Charge the duty-cycle penalty for a block that took `elapsed_ns` of
  /// real execution.
  void pay(Nanos elapsed_ns) const {
    if (!enabled_ || elapsed_ns <= 0) return;
    spin_for_nanos(
        static_cast<Nanos>(static_cast<double>(elapsed_ns) * (slowdown_ - 1.0)));
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] double slowdown() const { return slowdown_; }

 private:
  double slowdown_;
  bool enabled_;
};

}  // namespace aid::rt
