#include "rt/os_bridge.h"

#include <algorithm>

#include "common/check.h"

namespace aid::rt {

SharedAllotment::SharedAllotment(Allotment initial) { publish(initial); }

void SharedAllotment::publish(Allotment a) {
  // Seqlock write: odd sequence marks "in flight"; readers retry. All
  // stores are seq_cst rather than the classic fence-based pairing:
  // under the single total order the snapshot argument is immediate (a
  // reader whose two sequence reads both return the same even value sits
  // entirely between this publish's closing store and the next publish's
  // opening store), it needs no std::atomic_thread_fence — which
  // ThreadSanitizer cannot model (GCC's -Wtsan diagnostic flags it, and
  // the library's -Werror turns that into a build failure on the CI tsan
  // leg) — and the path is cold on both sides (one publish per
  // repartition, one read per loop-boundary poll).
  const u64 seq = sequence_.load(std::memory_order_relaxed);
  sequence_.store(seq + 1, std::memory_order_seq_cst);
  threads_on_big_.store(a.threads_on_big, std::memory_order_seq_cst);
  epoch_.store(a.epoch, std::memory_order_seq_cst);
  sequence_.store(seq + 2, std::memory_order_seq_cst);
}

Allotment SharedAllotment::read() const {
  for (;;) {
    const u64 before = sequence_.load(std::memory_order_seq_cst);
    if (before % 2 != 0) continue;  // writer in flight
    Allotment a;
    a.threads_on_big = threads_on_big_.load(std::memory_order_seq_cst);
    a.epoch = epoch_.load(std::memory_order_seq_cst);
    if (sequence_.load(std::memory_order_seq_cst) == before) return a;
  }
}

u64 MigrationNotifier::subscribe(Callback cb) {
  AID_CHECK(cb != nullptr);
  const std::scoped_lock lock(mutex_);
  const u64 id = next_id_++;
  subscribers_.emplace_back(id, std::move(cb));
  return id;
}

void MigrationNotifier::unsubscribe(u64 id) {
  const std::scoped_lock lock(mutex_);
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [id](const auto& s) { return s.first == id; }),
      subscribers_.end());
}

void MigrationNotifier::notify(const MigrationEvent& event) {
  // Copy the subscriber list so callbacks run without the lock (CP.22:
  // never call unknown code while holding a lock).
  std::vector<std::pair<u64, Callback>> snapshot;
  {
    const std::scoped_lock lock(mutex_);
    snapshot = subscribers_;
  }
  for (const auto& [id, cb] : snapshot) cb(event);
  delivered_.fetch_add(static_cast<i64>(snapshot.size()),
                       std::memory_order_relaxed);
}

platform::TeamLayout layout_for_allotment(const platform::Platform& platform,
                                          int nthreads, int threads_on_big) {
  const int big_type = platform.num_core_types() - 1;
  const int max_big = platform.cores_of_type(big_type);
  int nb = std::clamp(threads_on_big, 0, std::min(max_big, nthreads));
  // Ensure the leftover threads fit on the non-big cores.
  const int small_capacity = platform.num_cores() - max_big;
  if (nthreads - nb > small_capacity) nb = nthreads - small_capacity;
  return platform::TeamLayout(platform, nthreads, nb);
}

AllotmentTracker::AllotmentTracker(const platform::Platform& platform,
                                   int nthreads,
                                   const SharedAllotment& shared)
    : platform_(platform),
      shared_(shared),
      nthreads_(nthreads),
      last_(shared.read()),
      layout_(layout_for_allotment(platform, nthreads, last_.threads_on_big)) {}

bool AllotmentTracker::refresh() {
  const Allotment now = shared_.read();
  if (now.epoch == last_.epoch &&
      now.threads_on_big == last_.threads_on_big)
    return false;
  last_ = now;
  layout_ = layout_for_allotment(platform_, nthreads_, now.threads_on_big);
  return true;
}

}  // namespace aid::rt
