// Deadline watchdog for in-flight constructs.
//
// A cancellable construct with a deadline (ScheduleSpec::deadline_ns) needs
// someone to *fire* the cancellation when the team itself is the thing
// that's stuck — cooperative checks can't run if every worker is wedged in
// a body or asleep on a lost wake. The watchdog is that someone: one lazy
// monitor thread per owning runtime (Team or PoolManager owns one), woken
// only when the earliest armed deadline falls due.
//
// Per armed construct it enforces a two-step escalation:
//
//   1. Deadline expiry — cancel the construct's token with
//      CancelReason::kDeadline. Workers notice at the next chunk-take
//      boundary; on the happy path the gate closes within one chunk and the
//      master's disarm() removes the entry before step 2.
//   2. Grace expiry (deadline + grace, AID_WATCHDOG_GRACE_MS) — the cancel
//      was ignored: the gate is still open, so some participant is wedged
//      past any cooperative boundary. Emit a structured diagnostic dump
//      (gate counts + a runtime-supplied section: per-worker dock
//      generations, scheduler remainders) to stderr — and to the file
//      named by AID_WATCHDOG_DUMP, for CI artifact upload — then kick()
//      the gate. The kick recovers the lost-wake failure class (sleepers
//      re-check a watermark that was stored but never notified); a body
//      that never returns is documented as unsurvivable — the dump exists
//      so it is at least diagnosable instead of a silent hang.
//
// Arm/disarm take a mutex, so the watchdog costs nothing on constructs
// without a deadline — the runtimes only touch it when deadline_ns > 0.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/completion_gate.h"
#include "common/types.h"

namespace aid::rt {

class Watchdog {
 public:
  /// Runtime-supplied dump section, invoked (under the watchdog mutex,
  /// after the cancel fired) with the stream to write to. Must only read
  /// atomics / racy-by-design diagnostics — the construct is live.
  using DumpFn = std::function<void(std::FILE*)>;

  Watchdog();
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Arm a deadline `deadline_ns` nanoseconds from now for the construct
  /// tagged `tag` whose completion is tracked by `gate` and whose workers
  /// observe `token`. Returns the entry id for disarm(). Starts the
  /// monitor thread on first use. `label` names the construct in the dump.
  ///
  /// `gate` may be nullptr — a *gate-less* entry for work that has a
  /// deadline before any construct (and thus any gate) exists, e.g. a job
  /// still waiting in the serving tier's queue. Expiry then stops at step
  /// 1 (cancel the token); the step-2 dump/kick escalation is skipped,
  /// since there is no gate to inspect and nobody is wedged in a dock.
  u64 arm(CancelToken* token, CompletionGate* gate, u64 tag, i64 deadline_ns,
          std::string label, DumpFn dump = {});

  /// Remove an armed entry (master calls it right after its gate wait
  /// returns). Idempotent; a fired-and-retired entry is simply gone.
  void disarm(u64 id);

  // Test observability.
  [[nodiscard]] i64 expired() const {
    return expired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] i64 dumps() const {
    return dumps_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    u64 id = 0;
    CancelToken* token = nullptr;
    CompletionGate* gate = nullptr;
    u64 tag = 0;
    Clock::time_point deadline;
    bool fired = false;  ///< step 1 done, waiting out the grace period
    std::string label;
    DumpFn dump;
  };

  void thread_main();
  void dump_entry(const Entry& entry);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::thread thread_;
  bool started_ = false;
  bool stop_ = false;
  u64 next_id_ = 1;
  std::chrono::milliseconds grace_;
  std::atomic<i64> expired_{0};
  std::atomic<i64> dumps_{0};
};

}  // namespace aid::rt
