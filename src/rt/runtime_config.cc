#include "rt/runtime_config.h"

#include <cstdio>
#include <sstream>

#include "common/env.h"

namespace aid::rt {

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;

  if (const auto text = env::get("AID_SCHEDULE")) {
    if (const auto spec = sched::parse_schedule(*text)) {
      cfg.schedule = *spec;
    } else {
      // One config read per Runtime construction, so a plain warn here is
      // already effectively once; no need for the env warn-once set.
      std::fprintf(stderr,
                   "libaid: ignoring malformed AID_SCHEDULE=\"%s\"\n",
                   text->c_str());
    }
  }

  // 0 = "use every core"; anything below that is a user error, warned once.
  cfg.num_threads =
      static_cast<int>(env::get_int_at_least("AID_NUM_THREADS", 0, 0));

  // GOMP_AMP_AFFINITY analog: enforce the BS mapping convention AID relies
  // on (threads 0..NB-1 on big cores).
  if (env::get_bool("AID_AMP_AFFINITY", false))
    cfg.mapping = platform::Mapping::kBigFirst;
  if (const auto text = env::get("AID_MAPPING")) {
    platform::Mapping m{};
    if (platform::parse_mapping(*text, m)) cfg.mapping = m;
  }

  cfg.emulate_amp = env::get_bool("AID_EMULATE_AMP", true);
  cfg.bind_threads = env::get_bool("AID_BIND_THREADS", false);
  cfg.sf_cpu_time = env::get_bool("AID_SF_CPU_TIME", false);

  cfg.use_pool = env::get_bool("AID_POOL", false);
  if (const auto text = env::get("AID_POOL_POLICY")) cfg.pool_policy = *text;
  cfg.shards = static_cast<int>(env::get_int_at_least("AID_SHARDS", 0, 0));
  return cfg;
}

std::string RuntimeConfig::describe() const {
  std::ostringstream os;
  os << "schedule=" << schedule.display()
     << " num_threads=" << (num_threads > 0 ? std::to_string(num_threads)
                                            : std::string("(all cores)"))
     << " mapping=" << platform::to_string(mapping)
     << " emulate_amp=" << (emulate_amp ? "on" : "off")
     << " bind_threads=" << (bind_threads ? "on" : "off")
     << " sf_cpu_time=" << (sf_cpu_time ? "on" : "off")
     << " pool=" << (use_pool ? "on" : "off");
  if (use_pool) os << " pool_policy=" << pool_policy;
  os << " shards="
     << (shards == 0 ? std::string("auto") : std::to_string(shards));
  return os.str();
}

}  // namespace aid::rt
