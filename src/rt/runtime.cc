#include "rt/runtime.h"

#include "common/check.h"
#include "common/env.h"
#include "pipeline/loop_chain.h"
#include "pool/pool_manager.h"

namespace aid::rt {

platform::Platform platform_from_env() {
  if (const auto text = env::get("AID_PLATFORM")) {
    if (auto p = platform::parse_platform(*text)) return std::move(*p);
  }
  return platform::odroid_xu4();
}

Runtime::Runtime(platform::Platform platform, RuntimeConfig config)
    : platform_(std::move(platform)), config_(config) {
  if (config_.use_pool) {
    // The lease always comes from the process-wide manager (one pool per
    // process is the point), so the manager's platform — not the
    // constructor argument — is what layouts refer to; adopt it so
    // platform() and layout() stay consistent. Partition sizing is the
    // arbiter's job: num_threads/mapping from the config do not apply.
    // The name AID_POOL_APP labels co-scheduled runtimes.
    pool::PoolManager& mgr = pool::PoolManager::instance();
    AID_CHECK_MSG(
        platform_.num_cores() == mgr.platform().num_cores() &&
            platform_.num_core_types() == mgr.platform().num_core_types(),
        "AID_POOL leases come from the process-wide PoolManager (one pool "
        "per process); isolated pool runtimes on a different platform are "
        "unsupported — construct with platform_from_env() or use "
        "pool::PoolManager directly");
    lease_ = std::make_unique<pool::AppHandle>(mgr.register_app(
        env::get_string("AID_POOL_APP", "runtime"),
        env::get_double("AID_POOL_WEIGHT", 1.0)));
    platform_ = mgr.platform();
  } else {
    team_ = std::make_unique<Team>(platform_, config_.num_threads,
                                   config_.mapping, config_.emulate_amp,
                                   config_.bind_threads, config_.sf_cpu_time);
  }
}

Runtime::~Runtime() = default;

Runtime& Runtime::instance() {
  static Runtime runtime(platform_from_env(), RuntimeConfig::from_env());
  return runtime;
}

void Runtime::run_loop(i64 count, const sched::ScheduleSpec& spec,
                       const RangeBody& body) {
  if (lease_ != nullptr)
    lease_->run_loop(count, spec, body);
  else
    team_->run_loop(count, spec, body);
}

void Runtime::run_loop(i64 count, const sched::ScheduleSpec& spec,
                       const RangeBody& body, CancelToken& cancel,
                       i64 deadline_ns) {
  sched::ScheduleSpec bound = spec;
  bound.cancel = &cancel;
  if (deadline_ns > 0) bound.deadline_ns = deadline_ns;
  run_loop(count, bound, body);
}

void Runtime::run_chain(const pipeline::LoopChain& chain) {
  if (lease_ != nullptr)
    lease_->run_chain(chain);
  else
    team_->run_chain(chain);
}

void Runtime::run_chain(const pipeline::LoopChain& chain, CancelToken& cancel,
                        i64 deadline_ns) {
  pipeline::LoopChain bound = chain;
  bound.bind_cancel(&cancel, deadline_ns);
  run_chain(bound);
}

platform::TeamLayout Runtime::layout() const {
  if (lease_ != nullptr) return lease_->layout();
  return team_->layout();
}

int Runtime::nthreads() const {
  if (lease_ != nullptr) return lease_->nthreads();
  return team_->nthreads();
}

sched::SchedulerStats Runtime::last_loop_stats() const {
  if (lease_ != nullptr) return lease_->last_loop_stats();
  return team_->last_loop_stats();
}

sched::SchedulerCache& Runtime::scheduler_cache() {
  if (lease_ != nullptr) return lease_->scheduler_cache();
  return team_->scheduler_cache();
}

const sched::ShardTopology& Runtime::shard_topology() const {
  if (lease_ != nullptr) return lease_->shard_topology();
  return team_->shard_topology();
}

const platform::TeamLayout& Runtime::enter_region() {
  if (lease_ != nullptr) return lease_->begin_region();
  return team_->layout();
}

void Runtime::exit_region() {
  if (lease_ != nullptr) lease_->end_region();
}

Team& Runtime::team() {
  AID_CHECK_MSG(team_ != nullptr,
                "AID_POOL=1 routes loops through the shared pool manager; "
                "use Runtime::run_loop/layout/nthreads");
  return *team_;
}

void run_loop(i64 count, const RangeBody& body) {
  Runtime& r = Runtime::instance();
  r.run_loop(count, r.default_schedule(), body);
}

void run_loop(i64 count, const sched::ScheduleSpec& spec,
              const RangeBody& body) {
  Runtime::instance().run_loop(count, spec, body);
}

}  // namespace aid::rt
