#include "rt/runtime.h"

#include "common/env.h"

namespace aid::rt {

platform::Platform platform_from_env() {
  if (const auto text = env::get("AID_PLATFORM")) {
    if (auto p = platform::parse_platform(*text)) return std::move(*p);
  }
  return platform::odroid_xu4();
}

Runtime::Runtime(platform::Platform platform, RuntimeConfig config)
    : platform_(std::move(platform)),
      config_(config),
      team_(platform_, config_.num_threads, config_.mapping,
            config_.emulate_amp, config_.bind_threads, config_.sf_cpu_time) {}

Runtime& Runtime::instance() {
  static Runtime runtime(platform_from_env(), RuntimeConfig::from_env());
  return runtime;
}

void run_loop(i64 count, const RangeBody& body) {
  Runtime& r = Runtime::instance();
  r.team().run_loop(count, r.default_schedule(), body);
}

void run_loop(i64 count, const sched::ScheduleSpec& spec,
              const RangeBody& body) {
  Runtime::instance().team().run_loop(count, spec, body);
}

}  // namespace aid::rt
