// Execution-trace recording — libaid's analog of the Paraver traces the
// paper uses for Figs. 1 and 4.
//
// A trace is a set of per-thread, non-overlapping state intervals using the
// paper's three-state legend:
//   Running                  — executing loop iterations (or serial code)
//   Synchronization          — waiting at the implicit loop barrier
//   Scheduling and Fork/Join — inside the runtime (next() calls, fork/join)
//
// Recording is lock-free: each thread appends to its own buffer.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace aid::trace {

enum class State : u8 {
  kRunning = 0,
  kSync = 1,
  kScheduling = 2,
};

[[nodiscard]] const char* to_string(State s);

struct Interval {
  Nanos begin = 0;
  Nanos end = 0;
  State state = State::kRunning;

  [[nodiscard]] Nanos duration() const { return end - begin; }
};

class Trace {
 public:
  explicit Trace(int nthreads);

  /// Append an interval to a thread's timeline. Intervals must be appended
  /// in non-decreasing begin order per thread (enforced in debug builds).
  /// Zero-duration intervals are dropped.
  void record(int tid, State state, Nanos begin, Nanos end);

  [[nodiscard]] int nthreads() const {
    return static_cast<int>(timelines_.size());
  }
  [[nodiscard]] const std::vector<Interval>& timeline(int tid) const;

  /// Latest interval end across all threads (the trace horizon).
  [[nodiscard]] Nanos span_end() const;
  /// Earliest interval begin (usually 0).
  [[nodiscard]] Nanos span_begin() const;

  /// Total time a thread spent in a state.
  [[nodiscard]] Nanos time_in(int tid, State state) const;

  void clear();

 private:
  std::vector<std::vector<Interval>> timelines_;
};

/// Load-balance metrics computed from a trace over [span_begin, span_end].
struct ImbalanceReport {
  Nanos span = 0;               ///< trace duration
  Nanos max_busy = 0;           ///< busiest thread's Running time
  double avg_busy = 0.0;        ///< mean Running time across threads
  double imbalance = 1.0;       ///< max_busy / avg_busy (1.0 = balanced)
  double utilization = 0.0;     ///< sum(Running) / (nthreads * span)
  double sync_fraction = 0.0;   ///< sum(Sync) / (nthreads * span)
  double sched_fraction = 0.0;  ///< sum(Scheduling) / (nthreads * span)
};

[[nodiscard]] ImbalanceReport analyze(const Trace& trace);

/// Fig. 1-style ASCII rendering: one row per thread, `width` buckets, each
/// bucket shows the state occupying most of it ('#' running, '.' sync,
/// 's' scheduling, ' ' nothing).
[[nodiscard]] std::string render_ascii(const Trace& trace, int width = 96);

/// Paraver-compatible state records (".prv" body): one line per interval,
///   1:<cpu>:<appl>:<task>:<thread>:<begin>:<end>:<state>
/// with the standard Paraver state ids (1 running, 7 sync/wait, 15 sched).
[[nodiscard]] std::string export_prv(const Trace& trace);

}  // namespace aid::trace
