#include "trace/trace.h"

#include <algorithm>
#include <array>
#include <sstream>

namespace aid::trace {

const char* to_string(State s) {
  switch (s) {
    case State::kRunning: return "Running";
    case State::kSync: return "Synchronization";
    case State::kScheduling: return "Scheduling and Fork/Join";
  }
  return "?";
}

Trace::Trace(int nthreads) {
  AID_CHECK(nthreads >= 1);
  timelines_.resize(static_cast<usize>(nthreads));
}

void Trace::record(int tid, State state, Nanos begin, Nanos end) {
  AID_CHECK(tid >= 0 && tid < nthreads());
  if (end <= begin) return;
  auto& tl = timelines_[static_cast<usize>(tid)];
  AID_DCHECK(tl.empty() || begin >= tl.back().begin);
  // Merge with the previous interval when contiguous and same state: keeps
  // traces compact for loops with thousands of next() calls.
  if (!tl.empty() && tl.back().end == begin && tl.back().state == state) {
    tl.back().end = end;
    return;
  }
  tl.push_back({begin, end, state});
}

const std::vector<Interval>& Trace::timeline(int tid) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  return timelines_[static_cast<usize>(tid)];
}

Nanos Trace::span_end() const {
  Nanos end = 0;
  for (const auto& tl : timelines_)
    if (!tl.empty()) end = std::max(end, tl.back().end);
  return end;
}

Nanos Trace::span_begin() const {
  Nanos begin = span_end();
  for (const auto& tl : timelines_)
    if (!tl.empty()) begin = std::min(begin, tl.front().begin);
  return begin;
}

Nanos Trace::time_in(int tid, State state) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  Nanos total = 0;
  for (const auto& iv : timelines_[static_cast<usize>(tid)])
    if (iv.state == state) total += iv.duration();
  return total;
}

void Trace::clear() {
  for (auto& tl : timelines_) tl.clear();
}

ImbalanceReport analyze(const Trace& trace) {
  ImbalanceReport rep;
  rep.span = trace.span_end() - trace.span_begin();
  const int n = trace.nthreads();
  Nanos busy_sum = 0;
  Nanos sync_sum = 0;
  Nanos sched_sum = 0;
  for (int t = 0; t < n; ++t) {
    const Nanos busy = trace.time_in(t, State::kRunning);
    busy_sum += busy;
    sync_sum += trace.time_in(t, State::kSync);
    sched_sum += trace.time_in(t, State::kScheduling);
    rep.max_busy = std::max(rep.max_busy, busy);
  }
  rep.avg_busy = static_cast<double>(busy_sum) / n;
  rep.imbalance = rep.avg_busy > 0.0
                      ? static_cast<double>(rep.max_busy) / rep.avg_busy
                      : 1.0;
  const double capacity = static_cast<double>(rep.span) * n;
  if (capacity > 0.0) {
    rep.utilization = static_cast<double>(busy_sum) / capacity;
    rep.sync_fraction = static_cast<double>(sync_sum) / capacity;
    rep.sched_fraction = static_cast<double>(sched_sum) / capacity;
  }
  return rep;
}

std::string render_ascii(const Trace& trace, int width) {
  AID_CHECK(width >= 8);
  const Nanos t0 = trace.span_begin();
  const Nanos t1 = trace.span_end();
  const double span = static_cast<double>(t1 - t0);
  std::ostringstream os;
  if (span <= 0.0) return "(empty trace)\n";

  for (int tid = 0; tid < trace.nthreads(); ++tid) {
    // Accumulate per-bucket time per state, then pick the dominant state.
    std::vector<std::array<double, 3>> buckets(
        static_cast<usize>(width), {0.0, 0.0, 0.0});
    for (const auto& iv : trace.timeline(tid)) {
      const double b0 = static_cast<double>(iv.begin - t0) / span * width;
      const double b1 = static_cast<double>(iv.end - t0) / span * width;
      for (int b = static_cast<int>(b0); b <= static_cast<int>(b1) && b < width;
           ++b) {
        const double lo = std::max(b0, static_cast<double>(b));
        const double hi = std::min(b1, static_cast<double>(b + 1));
        if (hi > lo)
          buckets[static_cast<usize>(b)][static_cast<usize>(iv.state)] +=
              hi - lo;
      }
    }
    os << "Thread " << tid + 1 << " |";
    for (const auto& bk : buckets) {
      const double total = bk[0] + bk[1] + bk[2];
      if (total <= 0.0) {
        os << ' ';
      } else if (bk[0] >= bk[1] && bk[0] >= bk[2]) {
        os << '#';
      } else if (bk[1] >= bk[2]) {
        os << '.';
      } else {
        os << 's';
      }
    }
    os << "|\n";
  }
  os << "  legend: '#' Running   '.' Synchronization   's' Scheduling+Fork/Join\n";
  return os.str();
}

std::string export_prv(const Trace& trace) {
  // Paraver state ids: 1 = Running, 7 = Group (sync wait), 15 = Scheduling.
  const auto prv_state = [](State s) {
    switch (s) {
      case State::kRunning: return 1;
      case State::kSync: return 7;
      case State::kScheduling: return 15;
    }
    return 0;
  };
  std::ostringstream os;
  os << "#Paraver (libaid trace):" << trace.span_end() << "_ns:1("
     << trace.nthreads() << "):1:1(" << trace.nthreads() << ":1)\n";
  for (int tid = 0; tid < trace.nthreads(); ++tid)
    for (const auto& iv : trace.timeline(tid))
      os << "1:" << tid + 1 << ":1:1:" << tid + 1 << ':' << iv.begin << ':'
         << iv.end << ':' << prv_state(iv.state) << '\n';
  return os.str();
}

}  // namespace aid::trace
