// Experiment driver implementing the paper's evaluation protocol (Sec. 5):
//
//  * the seven evaluated configurations — static(SB), static(BS),
//    dynamic(SB), dynamic(BS), AID-static, AID-hybrid, AID-dynamic — where
//    all AID variants always use the BS mapping they assume (Sec. 4.3);
//  * five runs per program, first discarded (input warm-up), geometric mean
//    of the rest. The simulator is deterministic, so run-to-run variation is
//    synthesized with seeded multiplicative noise applied to the total time
//    (measurement noise; it does not affect scheduling decisions);
//  * normalized performance reported against static(SB), higher is better —
//    exactly the y-axis of Figs. 6 and 7.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "platform/team_layout.h"
#include "sched/schedule_spec.h"
#include "sim/app_simulator.h"
#include "sim/overhead_model.h"
#include "workloads/workload.h"

namespace aid::harness {

/// One evaluated configuration: a schedule plus a thread-to-core mapping.
struct SchedConfig {
  std::string label;  ///< e.g. "static(SB)" or "AID-hybrid"
  sched::ScheduleSpec spec;
  platform::Mapping mapping = platform::Mapping::kBigFirst;
};

/// The paper's seven standard configurations (Figs. 6/7 legend order).
[[nodiscard]] std::vector<SchedConfig> standard_configs();

struct ExperimentParams {
  int nthreads = 0;  ///< 0 = all platform cores (the paper runs with 8)
  sim::OverheadModel overhead;
  int runs = 5;
  double noise_sigma = 0.006;  ///< ~0.6% run-to-run measurement noise
  u64 noise_seed = 0xA1D;
  double scale = 1.0;  ///< workload trip-count scale (tests use < 1)

  /// Per-loop-phase offline SF values for the AID-static(offline-SF)
  /// variant (Fig. 9); empty = online sampling.
  std::vector<double> offline_sf_per_loop;
};

/// Overhead model matched to a platform preset.
[[nodiscard]] sim::OverheadModel overhead_for(
    const platform::Platform& platform);

struct AppMeasurement {
  std::string app;
  std::string config;
  double time_ns = 0.0;  ///< paper-protocol time (gmean of measured runs)
  sim::AppResult detail;  ///< one representative (noise-free) execution
};

/// Run one (workload, config) pair on a platform.
[[nodiscard]] AppMeasurement measure(const workloads::Workload& workload,
                                     const platform::Platform& platform,
                                     const SchedConfig& config,
                                     const ExperimentParams& params);

/// Normalized-performance matrix for a set of workloads and configs:
/// row per app, column per config, values = T(baseline)/T(config) with
/// `baseline_index` selecting the baseline column (0 = static(SB)).
struct FigureData {
  std::vector<std::string> config_labels;
  std::vector<std::string> app_names;
  std::vector<std::string> app_suites;
  std::vector<std::vector<double>> normalized;  ///< [app][config]
  std::vector<std::vector<double>> time_ns;     ///< [app][config]
};

[[nodiscard]] FigureData run_figure(
    const std::vector<const workloads::Workload*>& apps,
    const platform::Platform& platform, const std::vector<SchedConfig>& configs,
    const ExperimentParams& params, usize baseline_index = 0);

/// Table 2: mean and gmean relative gains of `test` over `reference`
/// computed from a FigureData (gain = T_ref / T_test - 1).
struct GainSummary {
  std::string label;
  double mean_percent = 0.0;
  double gmean_percent = 0.0;
};

[[nodiscard]] GainSummary summarize_gain(const FigureData& data,
                                         usize test_index, usize ref_index,
                                         std::string label);

/// Offline SF measurement (paper Sec. 2 protocol): run the app with a
/// single thread bound to a big core, then to a small core, and report the
/// per-loop-phase completion-time ratio. Returns one SF per loop phase, in
/// phase order.
[[nodiscard]] std::vector<double> measure_offline_sf(
    const workloads::Workload& workload, const platform::Platform& platform,
    const ExperimentParams& params);

/// Per-loop SF as AID's sampling estimates it online (full-team execution):
/// the estimated_sf of each loop phase under AID-static. Used by Fig. 9c.
[[nodiscard]] std::vector<double> measure_online_sf(
    const workloads::Workload& workload, const platform::Platform& platform,
    const ExperimentParams& params);

}  // namespace aid::harness
