#include "harness/figure_printer.h"

#include <ostream>
#include <set>

#include "common/check.h"
#include "common/stats.h"
#include "common/table.h"

namespace aid::harness {

double column_geomean(const FigureData& data, usize config) {
  std::vector<double> col;
  for (const auto& row : data.normalized) col.push_back(row[config]);
  return stats::gmean(col);
}

usize config_index(const FigureData& data, const std::string& label) {
  for (usize c = 0; c < data.config_labels.size(); ++c)
    if (data.config_labels[c] == label) return c;
  AID_CHECK_MSG(false, "unknown config label");
  return 0;
}

void print_figure(std::ostream& os, const FigureData& data,
                  const std::string& title) {
  os << title << '\n';
  os << "(normalized performance vs " << data.config_labels[0]
     << "; higher is better)\n\n";

  // Preserve first-appearance suite order, one sub-table per suite as in
  // the paper's subfigures.
  std::vector<std::string> suites;
  for (const auto& s : data.app_suites)
    if (std::find(suites.begin(), suites.end(), s) == suites.end())
      suites.push_back(s);

  for (const auto& suite : suites) {
    std::vector<std::string> header{"benchmark (" + suite + ")"};
    for (const auto& label : data.config_labels) header.push_back(label);
    TextTable table(std::move(header));
    for (usize a = 0; a < data.app_names.size(); ++a) {
      if (data.app_suites[a] != suite) continue;
      table.row().cell(data.app_names[a]);
      for (double v : data.normalized[a]) table.cell(v, 3);
    }
    table.print(os);
    os << '\n';
  }

  TextTable summary([&] {
    std::vector<std::string> header{"geomean (all apps)"};
    for (const auto& label : data.config_labels) header.push_back(label);
    return header;
  }());
  summary.row().cell(std::string("normalized perf"));
  for (usize c = 0; c < data.config_labels.size(); ++c)
    summary.cell(column_geomean(data, c), 3);
  summary.print(os);
  os << '\n';
}

void print_geomean_row(std::ostream& os, const FigureData& data) {
  for (usize c = 0; c < data.config_labels.size(); ++c)
    os << data.config_labels[c] << "=" << format_double(column_geomean(data, c), 3)
       << (c + 1 < data.config_labels.size() ? "  " : "\n");
}

}  // namespace aid::harness
