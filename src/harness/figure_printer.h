// Shared rendering for the figure/table benches.
#pragma once

#include <iosfwd>
#include <string>

#include "harness/experiment.h"

namespace aid::harness {

/// Print a Fig. 6/7-style normalized-performance table, one sub-table per
/// suite (as the paper splits its subfigures), plus per-config geomeans.
void print_figure(std::ostream& os, const FigureData& data,
                  const std::string& title);

/// Print the per-config geomean row only (used in sweeps).
void print_geomean_row(std::ostream& os, const FigureData& data);

/// Geomean of one config column across all apps.
[[nodiscard]] double column_geomean(const FigureData& data, usize config);

/// Index of a config label; aborts if absent.
[[nodiscard]] usize config_index(const FigureData& data,
                                 const std::string& label);

}  // namespace aid::harness
