#include "harness/sysinfo.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/env.h"

namespace aid::harness {

namespace {

/// First line of a file, trimmed; empty when unreadable.
std::string first_line(const char* path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return {};
  return std::string(env::trim(line));
}

std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (in && std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const auto key = env::trim(std::string_view(line).substr(0, colon));
    if (key == "model name" || key == "Model" || key == "cpu model")
      return std::string(env::trim(std::string_view(line).substr(colon + 1)));
  }
  return "unknown";
}

/// FNV-1a over the identity fields, rendered as 16 hex chars. Stability of
/// the rendering matters more than the hash family: committed baselines
/// carry these ids across compiler and libc versions.
std::string fnv1a_hex(const std::string& text) {
  u64 h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

SysInfo collect_sysinfo() {
  SysInfo info;
  info.nproc = static_cast<int>(std::thread::hardware_concurrency());
  info.cpu_model = cpu_model_name();
  if (info.cpu_model.empty()) info.cpu_model = "unknown";
  info.governor = first_line(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (info.governor.empty()) info.governor = "unknown";
#ifdef __VERSION__
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
  // CI exports GITHUB_SHA; AID_GIT_SHA wins so local sweeps can stamp the
  // exact commit they measured even from a dirty tree.
  info.git_sha = env::get_string(
      "AID_GIT_SHA", env::get_string("GITHUB_SHA", "unknown"));
  info.host_id = host_id_of(info);
  for (const char* knob :
       {"AID_POOL", "AID_SHARDS", "AID_SCHEDULE", "AID_NUM_THREADS",
        "AID_BENCH_SCALE", "AID_BENCH_RUNS"}) {
    info.env_knobs.emplace_back(knob, env::get(knob).value_or(""));
  }
  return info;
}

std::string host_id_of(const SysInfo& info) {
  return fnv1a_hex(info.cpu_model + "|" + std::to_string(info.nproc) + "|" +
                   info.governor);
}

std::string sysinfo_json(const SysInfo& info) {
  std::ostringstream out;
  out << "{\"nproc\": " << info.nproc                        //
      << ", \"cpu_model\": \"" << json_escape(info.cpu_model) << '"'
      << ", \"governor\": \"" << json_escape(info.governor) << '"'
      << ", \"compiler\": \"" << json_escape(info.compiler) << '"'
      << ", \"git_sha\": \"" << json_escape(info.git_sha) << '"'
      << ", \"host_id\": \"" << json_escape(info.host_id) << '"'
      << ", \"env\": {";
  for (usize i = 0; i < info.env_knobs.size(); ++i) {
    const auto& [name, value] = info.env_knobs[i];
    out << (i != 0 ? ", " : "") << '"' << json_escape(name) << "\": \""
        << json_escape(value) << '"';
  }
  out << "}}";
  return out.str();
}

}  // namespace aid::harness
