// System/environment snapshot embedded in every bench artifact.
//
// A perf number without its provenance is noise: the suite runner, the
// micro benches, and the committed baselines all embed the same snapshot so
// bench_diff can refuse to gate a laptop result against a CI baseline. The
// `host_id` field is the key — a short stable hash of the hardware-visible
// fields (cpu model, core count, governor), so "same runner class" is one
// string comparison instead of a fuzzy match over free-form text.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace aid::harness {

struct SysInfo {
  int nproc = 0;            ///< online CPU count
  std::string cpu_model;    ///< /proc/cpuinfo "model name" (first entry)
  std::string governor;     ///< scaling governor of cpu0, or "unknown"
  std::string compiler;     ///< __VERSION__ of the compiler that built this
  std::string git_sha;      ///< AID_GIT_SHA / GITHUB_SHA env, or "unknown"
  std::string host_id;      ///< hash of (cpu_model, nproc, governor)

  /// The AID_* knobs that change what a measurement means, as (name, value)
  /// pairs; unset knobs are recorded as "" so the artifact distinguishes
  /// "unset" from "set to empty".
  std::vector<std::pair<std::string, std::string>> env_knobs;
};

/// Probe the current process/host. Never fails: unreadable fields degrade
/// to "unknown" (the snapshot must work in containers without sysfs).
[[nodiscard]] SysInfo collect_sysinfo();

/// The host-class key by itself, for callers that only need to compare.
[[nodiscard]] std::string host_id_of(const SysInfo& info);

/// One JSON object (no trailing newline) with every field above, e.g.
/// {"nproc": 8, "cpu_model": "...", ..., "env": {"AID_POOL": "", ...}}.
/// This exact shape is what bench_diff.py parses out of "snapshot" records.
[[nodiscard]] std::string sysinfo_json(const SysInfo& info);

}  // namespace aid::harness
