#include "harness/experiment.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace aid::harness {
namespace {

u64 hash_text(std::string_view text) {
  u64 h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<SchedConfig> standard_configs() {
  using sched::ScheduleSpec;
  using platform::Mapping;
  return {
      {"static(SB)", ScheduleSpec::static_even(), Mapping::kSmallFirst},
      {"static(BS)", ScheduleSpec::static_even(), Mapping::kBigFirst},
      {"dynamic(SB)", ScheduleSpec::dynamic(1), Mapping::kSmallFirst},
      {"dynamic(BS)", ScheduleSpec::dynamic(1), Mapping::kBigFirst},
      // All AID variants assume the BS mapping (paper Sec. 4.3); sampling
      // chunk m = 1, AID-hybrid at 80%, AID-dynamic with M = 5 (Sec. 5A).
      {"AID-static", ScheduleSpec::aid_static(1), Mapping::kBigFirst},
      {"AID-hybrid", ScheduleSpec::aid_hybrid(1, 80.0), Mapping::kBigFirst},
      {"AID-dynamic", ScheduleSpec::aid_dynamic(1, 5), Mapping::kBigFirst},
  };
}

sim::OverheadModel overhead_for(const platform::Platform& platform) {
  // Preset selection by name; unknown platforms get the generic default.
  if (platform.name().find("Odroid") != std::string::npos)
    return sim::OverheadModel::platform_a();
  if (platform.name().find("Xeon") != std::string::npos)
    return sim::OverheadModel::platform_b();
  return {};
}

AppMeasurement measure(const workloads::Workload& workload,
                       const platform::Platform& platform,
                       const SchedConfig& config,
                       const ExperimentParams& params) {
  const int nthreads =
      params.nthreads > 0 ? params.nthreads : platform.num_cores();
  const platform::TeamLayout layout(platform, nthreads, config.mapping);
  sim::AppSimulator simulator(platform, layout, config.spec, params.overhead);
  if (!params.offline_sf_per_loop.empty())
    simulator.set_offline_sf_per_loop(params.offline_sf_per_loop);

  const sim::AppModel model = workload.model(platform, params.scale);
  sim::AppResult detail = simulator.run(model);
  AID_CHECK_MSG(detail.total_ns > 0, "zero-time app execution");

  // Paper protocol: 5 runs, discard the first, gmean the rest. The engine
  // is deterministic, so runs differ only by measurement noise.
  Rng rng(params.noise_seed ^ hash_text(workload.name()) ^
          hash_text(config.label));
  std::vector<double> run_times;
  run_times.reserve(static_cast<usize>(params.runs));
  for (int r = 0; r < params.runs; ++r) {
    const double noise =
        params.noise_sigma > 0.0
            ? std::exp(rng.normal(0.0, params.noise_sigma))
            : 1.0;
    // The warm-up run pays a first-touch penalty (the paper discards it
    // because input data must be brought into memory / off the SD card).
    const double warmup = r == 0 ? 1.15 : 1.0;
    run_times.push_back(static_cast<double>(detail.total_ns) * noise * warmup);
  }

  AppMeasurement m;
  m.app = workload.name();
  m.config = config.label;
  m.time_ns = stats::paper_protocol_time(run_times);
  m.detail = std::move(detail);
  return m;
}

FigureData run_figure(const std::vector<const workloads::Workload*>& apps,
                      const platform::Platform& platform,
                      const std::vector<SchedConfig>& configs,
                      const ExperimentParams& params, usize baseline_index) {
  AID_CHECK(baseline_index < configs.size());
  FigureData data;
  for (const auto& c : configs) data.config_labels.push_back(c.label);

  for (const workloads::Workload* app : apps) {
    AID_CHECK(app != nullptr);
    std::vector<double> times;
    times.reserve(configs.size());
    for (const auto& config : configs)
      times.push_back(measure(*app, platform, config, params).time_ns);

    const double base = times[baseline_index];
    std::vector<double> normalized;
    normalized.reserve(times.size());
    for (double t : times) normalized.push_back(base / t);

    data.app_names.push_back(app->name());
    data.app_suites.push_back(app->suite());
    data.time_ns.push_back(std::move(times));
    data.normalized.push_back(std::move(normalized));
  }
  return data;
}

GainSummary summarize_gain(const FigureData& data, usize test_index,
                           usize ref_index, std::string label) {
  AID_CHECK(test_index < data.config_labels.size());
  AID_CHECK(ref_index < data.config_labels.size());
  std::vector<double> gains;       // percentage gains, for the mean
  std::vector<double> speedups;    // T_ref / T_test, for the gmean
  for (const auto& times : data.time_ns) {
    const double speedup = times[ref_index] / times[test_index];
    speedups.push_back(speedup);
    gains.push_back((speedup - 1.0) * 100.0);
  }
  GainSummary s;
  s.label = std::move(label);
  s.mean_percent = stats::mean(gains);
  s.gmean_percent = (stats::gmean(speedups) - 1.0) * 100.0;
  return s;
}

std::vector<double> measure_offline_sf(const workloads::Workload& workload,
                                       const platform::Platform& platform,
                                       const ExperimentParams& params) {
  // Paper Sec. 2: "we ran the applications with a single thread on a big
  // and on a small core and measured the completion time of individual
  // loops. The figures report the ratio of these completion times."
  const auto run_solo = [&](platform::Mapping mapping) {
    const platform::TeamLayout layout(platform, 1, mapping);
    sim::AppSimulator simulator(platform, layout,
                                sched::ScheduleSpec::static_even(),
                                params.overhead);
    return simulator.run(workload.model(platform, params.scale));
  };
  const sim::AppResult on_big = run_solo(platform::Mapping::kBigFirst);
  const sim::AppResult on_small = run_solo(platform::Mapping::kSmallFirst);
  AID_CHECK(on_big.phases.size() == on_small.phases.size());

  std::vector<double> sf;
  for (usize p = 0; p < on_big.phases.size(); ++p) {
    if (!on_big.phases[p].is_loop) continue;
    const double tb = static_cast<double>(on_big.phases[p].total_ns);
    const double ts = static_cast<double>(on_small.phases[p].total_ns);
    sf.push_back(tb > 0.0 ? ts / tb : 1.0);
  }
  return sf;
}

std::vector<double> measure_online_sf(const workloads::Workload& workload,
                                      const platform::Platform& platform,
                                      const ExperimentParams& params) {
  const int nthreads =
      params.nthreads > 0 ? params.nthreads : platform.num_cores();
  const platform::TeamLayout layout(platform, nthreads,
                                    platform::Mapping::kBigFirst);
  sim::AppSimulator simulator(platform, layout,
                              sched::ScheduleSpec::aid_static(1),
                              params.overhead);
  const sim::AppResult res = simulator.run(workload.model(platform, params.scale));
  std::vector<double> sf;
  for (const auto& phase : res.phases)
    if (phase.is_loop) sf.push_back(phase.estimated_sf);
  return sf;
}

}  // namespace aid::harness
