// PipelineExecutor — the application-facing entry point of the
// loop-pipeline subsystem.
//
// Wraps a Runtime (team- or pool-backed, transparently) with an
// enqueue/flush surface: enqueue() stages loops into a pending chain and
// returns immediately; flush() hands the whole chain to the runtime's
// pipelined chain executor and blocks until every loop has completed —
// the only point where the calling thread joins. Inside the runtime the
// chain's loops are dispatched over the per-worker generation docks with
// nowait semantics: a team member that drains its share of loop k flows
// straight into loop k+1 while stragglers finish loop k, and only
// depends_on edges gate entry (see src/pipeline/README.md).
//
// Quickstart:
//   aid::pipeline::PipelineExecutor pipe;           // global runtime
//   int a = pipe.enqueue(n, spec, fill_body);
//   pipe.enqueue(n, spec, scale_body);              // overlaps `fill`
//   pipe.enqueue_after(a, n, spec, reduce_body);    // waits for `fill`
//   pipe.flush();                                   // join once, at the end
#pragma once

#include "pipeline/loop_chain.h"
#include "rt/runtime.h"

namespace aid::pipeline {

class PipelineExecutor {
 public:
  /// Executes on the global runtime (environment-configured; routes to the
  /// shared pool under AID_POOL=1).
  PipelineExecutor() : rt_(rt::Runtime::instance()) {}
  /// Executes on an explicit runtime (tests, multi-runtime experiments).
  explicit PipelineExecutor(rt::Runtime& rt) : rt_(rt) {}

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Destruction flushes any still-pending loops (so a scoped executor
  /// behaves like the end of a parallel region).
  ~PipelineExecutor() { flush(); }

  /// Stage a loop behind everything already enqueued; returns its chain
  /// index for use as a later loop's dependency. Does not block.
  int enqueue(i64 count, const sched::ScheduleSpec& spec, rt::RangeBody body,
              int depends_on = -1) {
    return pending_.add(count, spec, std::move(body), depends_on);
  }

  /// Stage a loop that must wait for enqueued loop `dep` to fully complete
  /// before any of its iterations run.
  int enqueue_after(int dep, i64 count, const sched::ScheduleSpec& spec,
                    rt::RangeBody body) {
    return pending_.add_after(dep, count, spec, std::move(body));
  }

  /// Execute the pending chain (pipelined, nowait between loops) and block
  /// until every loop has completed; the pending chain is then empty and
  /// previously returned indices are invalidated.
  void flush() {
    if (pending_.empty()) return;
    rt_.run_chain(pending_);
    pending_.clear();
  }

  /// Execute an externally built chain immediately (blocks at its end).
  void run(const LoopChain& chain) {
    flush();  // preserve enqueue order across the two surfaces
    rt_.run_chain(chain);
  }

  [[nodiscard]] usize pending_loops() const { return pending_.size(); }

 private:
  rt::Runtime& rt_;
  LoopChain pending_;
};

}  // namespace aid::pipeline
