#include "pipeline/loop_chain.h"

#include "common/check.h"

namespace aid::pipeline {

int LoopChain::add(i64 count, const sched::ScheduleSpec& spec,
                   rt::RangeBody body, int depends_on) {
  AID_CHECK_MSG(count >= 0, "chained loop with negative trip count");
  AID_CHECK_MSG(body != nullptr, "chained loop with null body");
  AID_CHECK_MSG(
      depends_on >= -1 && depends_on < static_cast<int>(loops_.size()),
      "depends_on must name an earlier chain entry (or -1)");
  ChainedLoop loop;
  loop.count = count;
  loop.spec = spec;
  loop.body = std::move(body);
  loop.depends_on = depends_on;
  loops_.push_back(std::move(loop));
  return static_cast<int>(loops_.size()) - 1;
}

void LoopChain::bind_cancel(CancelToken* cancel, i64 deadline_ns) {
  for (ChainedLoop& loop : loops_) {
    if (loop.spec.cancel == nullptr) loop.spec.cancel = cancel;
    if (loop.spec.deadline_ns <= 0 && deadline_ns > 0)
      loop.spec.deadline_ns = deadline_ns;
  }
}

}  // namespace aid::pipeline
