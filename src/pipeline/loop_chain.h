// Loop chains: a sequence of data-parallel loops executed with OpenMP
// `nowait` semantics (the loop-pipeline subsystem's description type).
//
// A LoopChain is a program, not an executor: each entry names a loop's trip
// count, schedule, body, and (optionally) one earlier entry that must fully
// complete before this one may start anywhere (`depends_on` — the analog of
// a `#pragma omp for` that reads what a previous, non-adjacent loop wrote
// with mismatched distribution). Entries WITHOUT a dependency edge run with
// true nowait overlap: a team member that drains its share of loop k flows
// straight into loop k+1 while stragglers are still finishing loop k.
//
// Execution is provided by the runtime layers (rt::Team::run_chain,
// pool::AppHandle::run_chain, rt::Runtime::run_chain) over the per-worker
// generation docks: the chain's loops are published as consecutive dispatch
// generations into a small ring of in-flight constructs, and each worker
// advances through the ring locally. The master blocks only at the chain's
// end (the implicit flush). See src/pipeline/README.md for the design note.
#pragma once

#include <vector>

#include "common/types.h"
#include "rt/team.h"
#include "sched/schedule_spec.h"

namespace aid::pipeline {

/// One loop of a chain. `depends_on` is the index of an earlier chain entry
/// that must be fully complete (every iteration, every team member) before
/// any iteration of this loop runs; -1 means no cross-loop dependency and
/// the loop may overlap its predecessors freely (nowait).
struct ChainedLoop {
  i64 count = 0;
  sched::ScheduleSpec spec;
  rt::RangeBody body;
  int depends_on = -1;
};

/// Builder/value type for a chain of dependent data-parallel loops. Bodies
/// are stored by value (std::function); the chain must outlive any
/// run_chain call executing it.
class LoopChain {
 public:
  LoopChain() = default;

  /// Append a loop; returns its chain index (usable as a later entry's
  /// `depends_on`). `depends_on` must be -1 or a previously returned index.
  int add(i64 count, const sched::ScheduleSpec& spec, rt::RangeBody body,
          int depends_on = -1);

  /// Append a loop that must wait for chain entry `dep` to fully complete.
  int add_after(int dep, i64 count, const sched::ScheduleSpec& spec,
                rt::RangeBody body) {
    return add(count, spec, std::move(body), dep);
  }

  /// Per-iteration convenience over a user iteration space (mirrors
  /// Team::parallel_for); the canonical-range body is synthesized here.
  template <typename F>
  int add_for(i64 start, i64 end, i64 step, const sched::ScheduleSpec& spec,
              F&& f, int depends_on = -1) {
    const sched::IterationSpace space(start, end, step);
    return add(space.count(), spec,
               [space, f = std::forward<F>(f)](i64 b, i64 e,
                                               const rt::WorkerInfo& w) {
                 for (i64 c = b; c < e; ++c) f(space.value_of(c), w);
               },
               depends_on);
  }

  /// Bind a cancellation token and/or per-entry deadline to every entry
  /// that does not already name its own (the hook behind
  /// Runtime::run_chain's cancel/deadline overload): one token reaches
  /// the whole chain without per-entry spec plumbing. The deadline is
  /// relative to each entry's own publication, not the chain's start.
  void bind_cancel(CancelToken* cancel, i64 deadline_ns = 0);

  [[nodiscard]] const std::vector<ChainedLoop>& loops() const {
    return loops_;
  }
  [[nodiscard]] usize size() const { return loops_.size(); }
  [[nodiscard]] bool empty() const { return loops_.empty(); }
  void clear() { loops_.clear(); }

 private:
  std::vector<ChainedLoop> loops_;
};

}  // namespace aid::pipeline
