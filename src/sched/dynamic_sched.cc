#include "sched/dynamic_sched.h"

#include "common/check.h"

namespace aid::sched {

DynamicScheduler::DynamicScheduler(i64 count, i64 chunk, int nthreads,
                                   ShardTopology topo)
    : pool_(std::move(topo), nthreads), chunk_(chunk > 0 ? chunk : 1) {
  AID_CHECK(count >= 0);
  pool_.reset(count);
}

bool DynamicScheduler::next(ThreadContext& tc, IterRange& out) {
  if (tc.cancelled()) [[unlikely]] {
    pool_.poison();
    out = {pool_.end(), pool_.end()};
    return false;
  }
  out = pool_.take(chunk_, tc.tid, tc.shard);
  return !out.empty();
}

void DynamicScheduler::reset(i64 count) {
  AID_CHECK(count >= 0);
  pool_.reset(count);
}

SchedulerStats DynamicScheduler::stats() const {
  return {.pool_removals = pool_.removals(),
          .local_removals = pool_.local_removals(),
          .steal_removals = pool_.remote_removals(),
          .shard_rebalances = pool_.rebalances()};
}

}  // namespace aid::sched
