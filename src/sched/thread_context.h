// Per-worker view handed to schedulers.
//
// The same scheduler code runs under the threaded runtime (real clock, real
// threads) and the discrete-event simulator (virtual per-worker clock); the
// ThreadContext carries everything a scheduler may consult about the calling
// worker: its team id, the core type it is bound to, and a time source.
#pragma once

#include "common/cancel.h"
#include "common/time_source.h"
#include "common/types.h"

namespace aid::sched {

struct ThreadContext {
  int tid = 0;          ///< team-local thread id, 0..nthreads-1
  int core_type = 0;    ///< 0 = slowest core type on the platform
  double speed = 1.0;   ///< nominal relative speed of the bound core
  /// Home shard in the construct's sharded pool (sched/shard_topology.h):
  /// the runtime sets it from LoopScheduler::home_shard_of(tid) so a
  /// scheduler's take path stays cluster-local without re-deriving the
  /// mapping per call. 0 for single-pool constructs and the simulator.
  int shard = 0;
  const TimeSource* time = nullptr;  ///< per-worker in the simulator
  /// The construct's cancellation token (the runtimes point it at the
  /// ring slot's embedded token; null in the simulator and in tests that
  /// drive schedulers directly). Schedulers probe it at every chunk-take
  /// boundary and poison their pool on the first sighting.
  const CancelToken* cancel = nullptr;

  [[nodiscard]] Nanos now() const { return time->now(); }
  [[nodiscard]] bool cancelled() const {
    return cancel != nullptr && cancel->cancelled();
  }
};

}  // namespace aid::sched
