// Schedule selection and parameters.
//
// Mirrors the OMP_SCHEDULE syntax and extends it with the AID methods. The
// paper deliberately does NOT add new schedule-clause values to the OpenMP
// spec; AID is activated through the environment (Sec. 4.2), which is what
// rt/runtime_config implements on top of this parser.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace aid {
class CancelToken;
}  // namespace aid

namespace aid::sched {

enum class ScheduleKind {
  kStatic,      ///< even block distribution (or round-robin with a chunk)
  kDynamic,     ///< shared-pool stealing, fixed chunk (default 1)
  kGuided,      ///< shared-pool stealing, decreasing chunk
  kAidStatic,   ///< paper Sec. 4.2, Fig. 3
  kAidHybrid,   ///< paper Sec. 4.2 (AID-static on P% + dynamic tail)
  kAidDynamic,  ///< paper Sec. 4.2, Fig. 5
  // Related-work baselines (paper Sec. 3 citations), for ablation studies:
  kTrapezoid,          ///< trapezoid self-scheduling, Tzen & Ni '93 [46]
  kWeightedFactoring,  ///< weighted factoring, Hummel et al. '96 [21]
};

[[nodiscard]] const char* to_string(ScheduleKind kind);

struct ScheduleSpec {
  ScheduleKind kind = ScheduleKind::kStatic;

  /// static: 0 = one even block per thread; >0 = round-robin chunks.
  /// dynamic/guided: pool-removal size (0 = default 1).
  /// AID methods: the sampling / minor chunk m (0 = default 1).
  i64 chunk = 0;

  /// AID-dynamic Major chunk M (>= m). Paper default in Sec. 5A: 5.
  i64 major_chunk = 5;

  /// AID-hybrid: percentage of NI distributed asymmetrically. Paper: 80.
  double hybrid_percent = 80.0;

  /// AID-static(offline-SF) variant used in Fig. 9: skip the sampling phase
  /// and trust this externally supplied big-to-small speedup factor.
  std::optional<double> offline_sf;

  /// AID-dynamic ablation switch: disable the Fig. 5 endgame optimization
  /// (fall back to dynamic(m) when remaining <= M*(NB+NS)). Exists to
  /// quantify the optimization's contribution (bench_ablation_schedulers).
  bool aid_endgame = true;

  /// Cooperative cancellation token for this construct (nullable; the
  /// caller keeps it alive past the loop). Observed at every chunk-take
  /// boundary, so cancel latency is one chunk. NOT part of the shape key
  /// (operator==): a cancellable loop re-arms the same cached scheduler
  /// instance as its uncancellable twin.
  CancelToken* cancel = nullptr;

  /// Relative deadline in nanoseconds (0 = none): the runtime arms the
  /// deadline watchdog (rt/watchdog.h) when the construct is published;
  /// expiry cancels it with CancelReason::kDeadline. NOT part of the
  /// shape key either.
  i64 deadline_ns = 0;

  [[nodiscard]] i64 effective_chunk() const { return chunk > 0 ? chunk : 1; }

  /// Canonical display form, e.g. "dynamic,4" or "aid-dynamic,1,5".
  [[nodiscard]] std::string display() const;

  /// Shape equality — the SchedulerCache key. Deliberately EXCLUDES the
  /// failure-domain fields (cancel, deadline_ns): they parameterize one
  /// execution, not the scheduler instance shape.
  friend bool operator==(const ScheduleSpec& a, const ScheduleSpec& b) {
    return a.kind == b.kind && a.chunk == b.chunk &&
           a.major_chunk == b.major_chunk &&
           a.hybrid_percent == b.hybrid_percent &&
           a.offline_sf == b.offline_sf && a.aid_endgame == b.aid_endgame;
  }

  [[nodiscard]] ScheduleSpec with_cancel(CancelToken* token) const {
    ScheduleSpec s = *this;
    s.cancel = token;
    return s;
  }
  [[nodiscard]] ScheduleSpec with_deadline_ns(i64 ns) const {
    ScheduleSpec s = *this;
    s.deadline_ns = ns;
    return s;
  }

  // Named constructors for the seven configurations evaluated in the paper.
  static ScheduleSpec make(ScheduleKind kind, i64 chunk) {
    ScheduleSpec s;
    s.kind = kind;
    s.chunk = chunk;
    return s;
  }
  static ScheduleSpec static_even() { return make(ScheduleKind::kStatic, 0); }
  static ScheduleSpec static_chunked(i64 c) {
    return make(ScheduleKind::kStatic, c);
  }
  static ScheduleSpec dynamic(i64 c = 1) {
    return make(ScheduleKind::kDynamic, c);
  }
  static ScheduleSpec guided(i64 c = 1) {
    return make(ScheduleKind::kGuided, c);
  }
  static ScheduleSpec aid_static(i64 m = 1) {
    return make(ScheduleKind::kAidStatic, m);
  }
  static ScheduleSpec aid_hybrid(i64 m = 1, double percent = 80.0) {
    ScheduleSpec s = make(ScheduleKind::kAidHybrid, m);
    s.hybrid_percent = percent;
    return s;
  }
  static ScheduleSpec aid_dynamic(i64 m = 1, i64 M = 5) {
    ScheduleSpec s = make(ScheduleKind::kAidDynamic, m);
    s.major_chunk = M;
    return s;
  }
  static ScheduleSpec aid_static_offline(double sf, i64 m = 1) {
    ScheduleSpec s = make(ScheduleKind::kAidStatic, m);
    s.offline_sf = sf;
    return s;
  }
  static ScheduleSpec aid_dynamic_no_endgame(i64 m = 1, i64 M = 5) {
    ScheduleSpec s = aid_dynamic(m, M);
    s.aid_endgame = false;
    return s;
  }
  /// Trapezoid self-scheduling; 0/0 picks the classic NI/(2T)..1 sizes.
  static ScheduleSpec trapezoid(i64 first = 0, i64 last = 0) {
    ScheduleSpec s = make(ScheduleKind::kTrapezoid, first);
    s.major_chunk = last;
    return s;
  }
  static ScheduleSpec weighted_factoring() {
    return make(ScheduleKind::kWeightedFactoring, 0);
  }
};

/// Parse an OMP_SCHEDULE-style string:
///   "static" | "static,C" | "dynamic[,C]" | "guided[,C]"
///   "aid-static[,m]" | "aid-hybrid[,m[,P]]" | "aid-dynamic[,m[,M]]"
///   "trapezoid[,first[,last]]" | "weighted-factoring"
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<ScheduleSpec> parse_schedule(std::string_view text);

}  // namespace aid::sched
