#include "common/check.h"
#include "sched/aid_block_sched.h"
#include "sched/aid_dynamic_sched.h"
#include "sched/dynamic_sched.h"
#include "sched/factoring_sched.h"
#include "sched/guided_sched.h"
#include "sched/loop_scheduler.h"
#include "sched/static_sched.h"
#include "sched/trapezoid_sched.h"

namespace aid::sched {

std::unique_ptr<LoopScheduler> make_scheduler(
    const ScheduleSpec& spec, i64 count,
    const platform::TeamLayout& layout) {
  // Single-pool arm: the simulator (and any caller that does not opt into
  // sharding) keeps modeling the paper's one libgomp work share. The
  // empty topology IS the single-shard configuration — passing it avoids
  // allocating a ShardTopology::single per loop construction.
  return make_scheduler(spec, count, layout, ShardTopology{});
}

std::unique_ptr<LoopScheduler> make_scheduler(
    const ScheduleSpec& spec, i64 count, const platform::TeamLayout& layout,
    const ShardTopology& topo) {
  // This is the cold construction path: the runtime layers front it with
  // a per-shape SchedulerCache (sched/scheduler_cache.h) that re-arms an
  // idle instance via reset() per construct, so this switch runs once per
  // (shape, layout generation) — not once per loop.
  switch (spec.kind) {
    case ScheduleKind::kStatic:
      return std::make_unique<StaticScheduler>(count, layout, spec.chunk);
    case ScheduleKind::kDynamic:
      return std::make_unique<DynamicScheduler>(count, spec.effective_chunk(),
                                                layout.nthreads(), topo);
    case ScheduleKind::kGuided:
      return std::make_unique<GuidedScheduler>(count, layout,
                                               spec.effective_chunk(), topo);
    case ScheduleKind::kAidStatic:
      return std::make_unique<AidBlockScheduler>(
          count, layout, spec.effective_chunk(), /*aid_fraction=*/1.0,
          spec.offline_sf,
          spec.offline_sf ? "aid-static(offline-SF)" : "aid-static", topo);
    case ScheduleKind::kAidHybrid:
      AID_CHECK_MSG(spec.hybrid_percent > 0.0 && spec.hybrid_percent <= 100.0,
                    "AID-hybrid percentage must be in (0, 100]");
      return std::make_unique<AidBlockScheduler>(
          count, layout, spec.effective_chunk(), spec.hybrid_percent / 100.0,
          spec.offline_sf, "aid-hybrid", topo);
    case ScheduleKind::kAidDynamic:
      return std::make_unique<AidDynamicScheduler>(
          count, layout, spec.effective_chunk(), spec.major_chunk,
          spec.aid_endgame, topo);
    case ScheduleKind::kTrapezoid:
      return std::make_unique<TrapezoidScheduler>(count, layout, spec.chunk,
                                                  spec.major_chunk, topo);
    case ScheduleKind::kWeightedFactoring:
      return std::make_unique<WeightedFactoringScheduler>(count, layout,
                                                          std::vector<double>{},
                                                          topo);
  }
  AID_CHECK(false);
  return nullptr;
}

}  // namespace aid::sched
