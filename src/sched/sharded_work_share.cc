#include "sched/sharded_work_share.h"

#include <cmath>

namespace aid::sched {

ShardedWorkShare::ShardedWorkShare(ShardTopology topo, int nthreads)
    : topo_(std::move(topo)),
      nthreads_(nthreads > 0 ? nthreads : 1),
      single_(nthreads) {
  // An empty topology IS the single-shard configuration: nothing beyond
  // the embedded WorkShare is allocated, so a single-pool construct costs
  // exactly what it did before sharding existed (constructs are built per
  // loop — thousands of times in data-parallel apps).
  nshards_ = topo_.nshards();
  config_single_ = nshards_ < 2;
  single_mode_ = true;
  if (!config_single_) {
    // Sized construction + swap: Padded<atomic> is neither copyable nor
    // movable, so resize() (which requires MoveInsertable) is unusable.
    std::vector<Padded<std::atomic<u64>>> segs(
        static_cast<usize>(nshards_ * kSegsPerShard));
    segs_.swap(segs);
    std::vector<Padded<std::atomic<int>>> hints(static_cast<usize>(nshards_));
    hints_.swap(hints);
    std::vector<Counters> counters(static_cast<usize>(nthreads_));
    counters_.swap(counters);
    // No reset(0) needed: value-initialized segment words are pack(0, 0)
    // (drained) and a default WorkShare is drained too, so the unarmed
    // pool already answers every take with "empty". Callers arm with
    // reset(count) exactly once per construct.
  }
}

void ShardedWorkShare::reset(i64 count) { reset(count, topo_.capacity); }

void ShardedWorkShare::reset(i64 count, const std::vector<double>& weights) {
  AID_CHECK(count >= 0);
  count_ = count;
  // The packed-word no-carry invariant: worst-case cursor overshoot is one
  // capped want per thread past the bound, so the low half stays below
  // 2^32 only while count + nthreads * kFetchAddWantMax < 2^32. Loops (or
  // teams) too large for that fall back to the classic single pool.
  const bool fits_packed =
      count < kPackedCountLimit &&
      count + static_cast<i64>(nthreads_) * kFetchAddWantMax <
          (i64{1} << 32);
  single_mode_ = config_single_ || !fits_packed;
  if (single_mode_) {
    single_.reset(count);
    return;
  }
  for (auto& c : counters_) {
    c.local.store(0, std::memory_order_relaxed);
    c.remote.store(0, std::memory_order_relaxed);
    c.rebalances.store(0, std::memory_order_relaxed);
    c.rebalanced_iters.store(0, std::memory_order_relaxed);
  }
  migrating_.store(0, std::memory_order_relaxed);
  poisoned_.store(false, std::memory_order_relaxed);
  AID_CHECK(static_cast<int>(weights.size()) == nshards_);
  double wsum = 0.0;
  for (const double w : weights) wsum += w > 0.0 ? w : 0.0;
  // Contiguous proportional split: shard s gets [B_s, B_{s+1}) with the
  // boundaries at the rounded cumulative weight fractions; zero/degenerate
  // weights fall back to an even split.
  i64 prev = 0;
  double acc = 0.0;
  for (int s = 0; s < nshards_; ++s) {
    acc += weights[static_cast<usize>(s)] > 0.0
               ? weights[static_cast<usize>(s)]
               : 0.0;
    i64 bound;
    if (s + 1 == nshards_) {
      bound = count;
    } else if (wsum > 0.0) {
      bound = std::llround(static_cast<double>(count) * acc / wsum);
    } else {
      bound = count * (s + 1) / nshards_;
    }
    if (bound < prev) bound = prev;
    if (bound > count) bound = count;
    seg(s, 0).store(pack(prev, bound), std::memory_order_release);
    for (int i = 1; i < kSegsPerShard; ++i)
      seg(s, i).store(pack(0, 0), std::memory_order_release);
    hint_of(s).store(0, std::memory_order_relaxed);
    prev = bound;
  }
}

IterRange ShardedWorkShare::take_stealing(i64 want, int tid, int home) {
  if (poisoned_.load(std::memory_order_relaxed)) return {count_, count_};
  for (int k = 1; k < nshards_; ++k) {
    const int s = (home + k) % nshards_;
    const i64 avail = remaining_of_shard(s);
    if (avail <= 0) continue;
    // Fat victim: move half of its remainder home in ONE cross-cluster
    // CAS, then resume cluster-local removals — the bulk-rebalance case
    // that keeps cross-cluster traffic per-block instead of per-chunk.
    const i64 bulk_min =
        want * 4 > kBulkStealMin ? want * 4 : kBulkStealMin;
    if (avail >= bulk_min &&
        migrate(s, home, /*want_block=*/avail / 2, /*min_block=*/want,
                tid)) {
      const IterRange r = take_from_shard(home, want);
      if (!r.empty()) {
        note_removal(tid, /*local=*/true);
        return r;
      }
      continue;  // peers raced the migrated block away: keep scanning
    }
    // Thin victim (or a concurrent migration holds the token): endgame
    // chunk steal, one remote RMW.
    const IterRange r = take_from_shard(s, want);
    if (!r.empty()) {
      note_removal(tid, /*local=*/false);
      return r;
    }
  }
  return {count_, count_};
}

bool ShardedWorkShare::install(int to, i64 begin, i64 end) {
  for (int i = 0; i < kSegsPerShard; ++i) {
    std::atomic<u64>& word = seg(to, i);
    u64 w = word.load(std::memory_order_acquire);
    for (;;) {
      if (unpack_next(w) < unpack_end(w)) break;  // live slot: try the next
      if (word.compare_exchange_weak(w, pack(begin, end),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
        return true;
      // Failed CAS: a straggler's fetch_add bumped the drained cursor
      // (bounded — probes stop overshoot); retry with the reloaded word.
    }
  }
  return false;
}

bool ShardedWorkShare::migrate(int from, int to, i64 want_block,
                               i64 min_block, int tid) {
  if (min_block < 1) min_block = 1;
  // Single-writer migration: contenders fall back to chunk steals rather
  // than wait, so no take ever blocks here. Holding the token is what
  // makes the merge-back below sound — nobody else can move any end.
  if (migrating_.exchange(1, std::memory_order_acquire) != 0) return false;

  bool moved = false;
  int victim = -1;
  i64 best = 0;
  for (int i = 0; i < kSegsPerShard; ++i) {
    const u64 w = seg(from, i).load(std::memory_order_acquire);
    const i64 a = unpack_end(w) - unpack_next(w);
    if (a > best) {
      best = a;
      victim = i;
    }
  }
  if (victim >= 0) {
    std::atomic<u64>& word = seg(from, victim);
    u64 w = word.load(std::memory_order_acquire);
    for (;;) {
      const i64 n = unpack_next(w);
      const i64 e = unpack_end(w);
      const i64 avail = e - n;
      if (avail < 2 * min_block) break;  // donor keeps at least min_block
      const i64 cap = avail - min_block;
      const i64 b = want_block < cap ? want_block : cap;
      if (b < min_block) break;
      if (word.compare_exchange_weak(w, pack(n, e - b),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        // The cut linearized at a state where next == n <= e - b, and
        // claims are prefixes [0, next): no outstanding claim reaches
        // into [e - b, e) — we own the block exclusively.
        if (install(to, e - b, e)) {
          Counters& c = counters_[static_cast<usize>(tid)];
          c.rebalances.fetch_add(1, std::memory_order_relaxed);
          c.rebalanced_iters.fetch_add(b, std::memory_order_relaxed);
          moved = true;
        } else {
          // Every slot of `to` is live: merge the block back into the
          // donor. Its end is still e - b (we hold migrating_), so the
          // block stays adjacent; a cursor that overshot past e - b
          // represents discarded (empty) claims, so winding it back to
          // e - b re-exposes only iterations nobody was handed.
          u64 cur = word.load(std::memory_order_relaxed);
          for (;;) {
            AID_DCHECK(unpack_end(cur) == e - b);
            const i64 nc = unpack_next(cur);
            const i64 new_next = nc < e - b ? nc : e - b;
            if (word.compare_exchange_weak(cur, pack(new_next, e),
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
              break;
          }
        }
        break;
      }
    }
  }
  migrating_.store(0, std::memory_order_release);
  return moved;
}

bool ShardedWorkShare::rebalance(const std::vector<double>& weights,
                                 i64 min_block, int tid) {
  if (single_mode_) return false;
  AID_CHECK(static_cast<int>(weights.size()) == nshards_);
  AID_CHECK(tid >= 0 && static_cast<usize>(tid) < counters_.size());
  double wsum = 0.0;
  for (const double w : weights) wsum += w > 0.0 ? w : 0.0;
  if (wsum <= 0.0) return false;

  std::vector<i64> rem(static_cast<usize>(nshards_));
  i64 total = 0;
  for (int s = 0; s < nshards_; ++s) {
    rem[static_cast<usize>(s)] = remaining_of_shard(s);
    total += rem[static_cast<usize>(s)];
  }
  if (total <= 0) return false;

  // One block per call, from the shard most over its weight-proportional
  // target to the shard most under it (the imbalance estimator's verdict
  // of who finishes late and who finishes early).
  int donor = -1, recip = -1;
  i64 excess = 0, deficit = 0;
  for (int s = 0; s < nshards_; ++s) {
    const double w = weights[static_cast<usize>(s)];
    const i64 target = std::llround(static_cast<double>(total) *
                                    (w > 0.0 ? w : 0.0) / wsum);
    const i64 diff = rem[static_cast<usize>(s)] - target;
    if (diff > excess) {
      excess = diff;
      donor = s;
    }
    if (-diff > deficit) {
      deficit = -diff;
      recip = s;
    }
  }
  if (donor < 0 || recip < 0 || donor == recip) return false;
  const i64 block = excess < deficit ? excess : deficit;
  if (min_block < 1) min_block = 1;
  if (block < min_block) return false;
  return migrate(donor, recip, block, min_block, tid);
}

}  // namespace aid::sched
