#include "sched/factoring_sched.h"

#include <cmath>

#include "common/check.h"

namespace aid::sched {

WeightedFactoringScheduler::WeightedFactoringScheduler(
    i64 count, const platform::TeamLayout& layout,
    std::vector<double> weights, ShardTopology topo)
    : pool_(std::move(topo), layout.nthreads()), weights_(std::move(weights)) {
  AID_CHECK(count >= 0);
  if (weights_.empty()) {
    weights_.reserve(static_cast<usize>(layout.nthreads()));
    for (int tid = 0; tid < layout.nthreads(); ++tid)
      weights_.push_back(layout.speed_of(tid));
  }
  AID_CHECK_MSG(weights_.size() == static_cast<usize>(layout.nthreads()),
                "one weight per team thread");
  for (double w : weights_) {
    AID_CHECK_MSG(w > 0.0, "weights must be positive");
    weight_sum_ += w;
  }
  pool_.reset(count);
}

bool WeightedFactoringScheduler::next(ThreadContext& tc, IterRange& out) {
  if (tc.cancelled()) [[unlikely]] {
    pool_.poison();
    out = {pool_.end(), pool_.end()};
    return false;
  }
  AID_DCHECK(tc.tid >= 0 &&
             tc.tid < static_cast<int>(weights_.size()));
  const double w = weights_[static_cast<usize>(tc.tid)];
  out = pool_.take_adaptive(
      [this, w](i64 remaining) {
        const i64 want = static_cast<i64>(std::llround(
            static_cast<double>(remaining) * w / (2.0 * weight_sum_)));
        return want > 0 ? want : 1;
      },
      tc.tid, tc.shard);
  return !out.empty();
}

void WeightedFactoringScheduler::reset(i64 count) {
  AID_CHECK(count >= 0);
  pool_.reset(count);
}

SchedulerStats WeightedFactoringScheduler::stats() const {
  return {.pool_removals = pool_.removals(),
          .local_removals = pool_.local_removals(),
          .steal_removals = pool_.remote_removals(),
          .shard_rebalances = pool_.rebalances()};
}

}  // namespace aid::sched
