#include "sched/shard_topology.h"

#include <algorithm>

#include "common/check.h"
#include "common/env.h"

namespace aid::sched {

ShardTopology ShardTopology::single(int nthreads) {
  ShardTopology topo;
  topo.home_of_tid.assign(static_cast<usize>(nthreads > 0 ? nthreads : 1), 0);
  topo.capacity.assign(1, static_cast<double>(nthreads > 0 ? nthreads : 1));
  return topo;
}

ShardTopology ShardTopology::from_layout(const platform::TeamLayout& layout) {
  return from_layout(
      layout, static_cast<int>(env::get_int_at_least("AID_SHARDS", 0, 0)));
}

ShardTopology ShardTopology::from_layout(const platform::TeamLayout& layout,
                                         int requested_shards) {
  // Shards are the *populated* core types: a type no team thread sits on
  // must not own iterations (nobody would drain them without stealing).
  std::vector<int> populated;
  for (int t = 0; t < layout.num_core_types(); ++t)
    if (layout.threads_of_type(t) > 0) populated.push_back(t);
  AID_CHECK(!populated.empty());

  int eff = requested_shards <= 0 ? static_cast<int>(populated.size())
                                  : requested_shards;
  eff = std::min(eff, static_cast<int>(populated.size()));
  eff = std::max(eff, 1);
  // One shard == the classic single pool: return the empty topology so
  // nothing is allocated here or copied per construct (uniform layouts
  // and AID_SHARDS=1 arm thousands of loops through this path).
  if (eff == 1) return {};

  // type -> shard (excess populated types merge into the last shard when
  // AID_SHARDS caps the count below the type count).
  std::vector<int> shard_of_type(
      static_cast<usize>(layout.num_core_types()), 0);
  for (usize i = 0; i < populated.size(); ++i)
    shard_of_type[static_cast<usize>(populated[i])] =
        std::min(static_cast<int>(i), eff - 1);

  ShardTopology topo;
  topo.capacity.assign(static_cast<usize>(eff), 0.0);
  topo.home_of_tid.resize(static_cast<usize>(layout.nthreads()));
  for (int tid = 0; tid < layout.nthreads(); ++tid) {
    const int s = shard_of_type[static_cast<usize>(layout.core_type_of(tid))];
    topo.home_of_tid[static_cast<usize>(tid)] = s;
    topo.capacity[static_cast<usize>(s)] += layout.speed_of(tid);
  }
  return topo;
}

}  // namespace aid::sched
