#include "sched/guided_sched.h"

#include "common/check.h"

namespace aid::sched {

GuidedScheduler::GuidedScheduler(i64 count,
                                 const platform::TeamLayout& layout, i64 chunk,
                                 ShardTopology topo)
    : pool_(std::move(topo), layout.nthreads()),
      chunk_(chunk > 0 ? chunk : 1),
      nthreads_(layout.nthreads()) {
  AID_CHECK(count >= 0);
  pool_.reset(count);
}

bool GuidedScheduler::next(ThreadContext& tc, IterRange& out) {
  if (tc.cancelled()) [[unlikely]] {
    pool_.poison();
    out = {pool_.end(), pool_.end()};
    return false;
  }
  out = pool_.take_adaptive(
      [this](i64 remaining) {
        const i64 q = remaining / nthreads_;
        return q > chunk_ ? q : chunk_;
      },
      tc.tid, tc.shard);
  return !out.empty();
}

void GuidedScheduler::reset(i64 count) {
  AID_CHECK(count >= 0);
  pool_.reset(count);
}

SchedulerStats GuidedScheduler::stats() const {
  return {.pool_removals = pool_.removals(),
          .local_removals = pool_.local_removals(),
          .steal_removals = pool_.remote_removals(),
          .shard_rebalances = pool_.rebalances()};
}

}  // namespace aid::sched
