// OpenMP `guided` scheduling (libgomp semantics): the removal size is
// max(chunk, remaining / nthreads), recomputed against the live pool with a
// CAS loop.
//
// The paper evaluated guided and found it inferior to both static and
// dynamic on AMPs (+44% / +65% average completion time, Sec. 5): the first
// removals hand each thread ~NI/T iterations regardless of core speed, so a
// small-core thread can strand a huge early block while the shrinking tail
// is too small to rebalance. bench_guided_comparison reproduces this.
// Under a sharded topology the shrinking removal is computed against the
// *segment* being CASed (the home shard's live segment in the common
// case) while the divisor stays the team-wide thread count, so chunks
// shrink faster than classic guided — per cluster, and again per
// migrated block. Cross-cluster traffic only appears when a cluster's
// shard drains and the thread steals.
#pragma once

#include "sched/loop_scheduler.h"
#include "sched/sharded_work_share.h"

namespace aid::sched {

class GuidedScheduler final : public LoopScheduler {
 public:
  GuidedScheduler(i64 count, const platform::TeamLayout& layout, i64 chunk,
                  ShardTopology topo = {});

  bool next(ThreadContext& tc, IterRange& out) override;
  void reset(i64 count) override;
  [[nodiscard]] std::string_view name() const override { return "guided"; }
  [[nodiscard]] SchedulerStats stats() const override;
  [[nodiscard]] i64 pool_removals_of(int tid) const override {
    return pool_.removals_of(tid);
  }
  [[nodiscard]] int home_shard_of(int tid) const override {
    return pool_.home_of(tid);
  }
  [[nodiscard]] i64 remaining() const override { return pool_.remaining(); }

 private:
  ShardedWorkShare pool_;
  i64 chunk_;
  int nthreads_;
};

}  // namespace aid::sched
