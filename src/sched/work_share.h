// The shared iteration pool — libaid's analog of libgomp's work_share.
//
// As in libgomp (paper Sec. 4.2): `next` tracks the first unassigned
// iteration and `end` the loop bound; removal is a single lock-free
// fetch-and-add, with the caller clamping the result against `end`.
#pragma once

#include <atomic>

#include "common/types.h"
#include "sched/iteration_space.h"

namespace aid::sched {

class alignas(kCacheLineBytes) WorkShare {
 public:
  WorkShare() = default;

  /// Arm the pool for a loop of `count` canonical iterations.
  void reset(i64 count) {
    end_ = count;
    removals_.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_release);
  }

  /// Atomically remove up to `want` iterations. Returns the removed range
  /// (possibly clamped, possibly empty when the pool is exhausted).
  /// This is the hot path: exactly one fetch_add, no CAS loop.
  IterRange take(i64 want) {
    AID_DCHECK(want >= 1);
    const i64 begin = next_.fetch_add(want, std::memory_order_acq_rel);
    removals_.fetch_add(1, std::memory_order_relaxed);
    if (begin >= end_) return {end_, end_};
    const i64 stop = begin + want < end_ ? begin + want : end_;
    return {begin, stop};
  }

  /// Remove with a size that must be recomputed from the remaining count
  /// (guided scheduling). `want_of(remaining)` returns the desired chunk.
  template <typename WantFn>
  IterRange take_adaptive(WantFn&& want_of) {
    i64 cur = next_.load(std::memory_order_acquire);
    while (cur < end_) {
      const i64 want = want_of(end_ - cur);
      AID_DCHECK(want >= 1);
      const i64 stop = cur + want < end_ ? cur + want : end_;
      if (next_.compare_exchange_weak(cur, stop, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        removals_.fetch_add(1, std::memory_order_relaxed);
        return {cur, stop};
      }
    }
    return {end_, end_};
  }

  /// Iterations not yet handed out (may be stale under concurrency; exact in
  /// the simulator). Never negative.
  [[nodiscard]] i64 remaining() const {
    const i64 n = next_.load(std::memory_order_acquire);
    return n < end_ ? end_ - n : 0;
  }

  [[nodiscard]] i64 end() const { return end_; }

  /// Number of successful pool-removal operations (the paper's runtime
  /// overhead is proportional to this count).
  [[nodiscard]] i64 removals() const {
    return removals_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<i64> next_{0};
  i64 end_ = 0;
  std::atomic<i64> removals_{0};
};

}  // namespace aid::sched
