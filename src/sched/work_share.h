// The shared iteration pool — libaid's analog of libgomp's work_share.
//
// As in libgomp (paper Sec. 4.2): `next` tracks the first unassigned
// iteration and `end` the loop bound; removal is a single lock-free
// fetch-and-add, with the caller clamping the result against `end`.
//
// Contention hardening beyond libgomp:
//  * check-before-fetch_add — a drained pool is detected with a read-only
//    acquire load, so endgame stealing (every AID wait window hammers the
//    pool until it drains) stops issuing contended RMWs and `next_` stays
//    bounded instead of growing by `want` per failed probe;
//  * per-thread removal counters — the success count the paper's overhead
//    metric is proportional to lives in one cache-line-padded slot per
//    thread (aggregated in removals()), so the hot path performs exactly
//    one *contended* atomic op: the fetch_add on `next_`.
#pragma once

#include <atomic>
#include <vector>

#include "common/padded.h"
#include "common/types.h"
#include "sched/iteration_space.h"

namespace aid::sched {

class alignas(kCacheLineBytes) WorkShare {
 public:
  /// `nthreads` sizes the per-thread removal-counter slots; take()'s tid
  /// must stay below it. A default-constructed pool has one slot (serial
  /// use in tests/benches).
  explicit WorkShare(int nthreads = 1)
      : removals_(static_cast<usize>(nthreads > 0 ? nthreads : 1)) {}

  /// Arm the pool for a loop of `count` canonical iterations.
  void reset(i64 count) {
    end_ = count;
    for (auto& slot : removals_) slot->store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_release);
  }

  /// Atomically remove up to `want` iterations. Returns the removed range
  /// (possibly clamped, possibly empty when the pool is exhausted).
  /// This is the hot path: one read-only drain check, then exactly one
  /// contended fetch_add; the removal count lands in the caller's own slot.
  IterRange take(i64 want, int tid = 0) {
    AID_DCHECK(want >= 1);
    // Always-on bound check: a mis-sized pool must fail loudly, not corrupt
    // the heap through the counter slot (predicted branch, ~free).
    AID_CHECK(tid >= 0 && static_cast<usize>(tid) < removals_.size());
    if (next_.load(std::memory_order_acquire) >= end_) return {end_, end_};
    const i64 begin = next_.fetch_add(want, std::memory_order_acq_rel);
    if (begin >= end_) return {end_, end_};  // lost the drain race: no take
    removals_[static_cast<usize>(tid)]->fetch_add(
        1, std::memory_order_relaxed);
    const i64 stop = begin + want < end_ ? begin + want : end_;
    return {begin, stop};
  }

  /// Remove with a size that must be recomputed from the remaining count
  /// (guided scheduling). `want_of(remaining)` returns the desired chunk.
  template <typename WantFn>
  IterRange take_adaptive(WantFn&& want_of, int tid = 0) {
    AID_CHECK(tid >= 0 && static_cast<usize>(tid) < removals_.size());
    // Same read-only drain probe as take(): under endgame stealing every
    // wait window re-probes the pool until it drains, and a drained pool
    // must answer with one acquire load — never by entering the CAS retry
    // loop below (whose failure path re-loads per attempt).
    if (next_.load(std::memory_order_acquire) >= end_) return {end_, end_};
    i64 cur = next_.load(std::memory_order_acquire);
    while (cur < end_) {
      const i64 want = want_of(end_ - cur);
      AID_DCHECK(want >= 1);
      const i64 stop = cur + want < end_ ? cur + want : end_;
      if (next_.compare_exchange_weak(cur, stop, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        removals_[static_cast<usize>(tid)]->fetch_add(
            1, std::memory_order_relaxed);
        return {cur, stop};
      }
    }
    return {end_, end_};
  }

  /// Cancellation poison: one release store publishes a drained pool, so
  /// every subsequent take answers through the read-only drain probe. An
  /// in-flight fetch_add that already passed the probe may still win one
  /// chunk — that is the documented cancel latency (one chunk), not a bug.
  /// reset() re-arms the pool for the next construct as usual.
  void poison() { next_.store(end_, std::memory_order_release); }

  /// Iterations not yet handed out (may be stale under concurrency; exact in
  /// the simulator). Never negative.
  [[nodiscard]] i64 remaining() const {
    const i64 n = next_.load(std::memory_order_acquire);
    return n < end_ ? end_ - n : 0;
  }

  [[nodiscard]] i64 end() const { return end_; }

  /// Number of *successful* pool removals (the paper's runtime overhead is
  /// proportional to this count); probes that found the pool drained are
  /// not removals. Aggregates the per-thread slots — a stats-path cost,
  /// not a hot-path one.
  [[nodiscard]] i64 removals() const {
    i64 sum = 0;
    for (const auto& slot : removals_)
      sum += slot->load(std::memory_order_relaxed);
    return sum;
  }

  /// One thread's successful-removal count (single padded load; the
  /// simulator polls this per scheduler call instead of the full sum).
  [[nodiscard]] i64 removals_of(int tid) const {
    AID_CHECK(tid >= 0 && static_cast<usize>(tid) < removals_.size());
    return removals_[static_cast<usize>(tid)]->load(
        std::memory_order_relaxed);
  }

 private:
  std::atomic<i64> next_{0};
  i64 end_ = 0;
  std::vector<Padded<std::atomic<i64>>> removals_;  // one slot per thread
};

}  // namespace aid::sched
