// AID-dynamic (paper Sec. 4.2, Fig. 5) — the asymmetry-aware replacement for
// OpenMP `dynamic`.
//
// Two user chunks: minor m and Major M >= m. Execution alternates between
// phases where all threads steal m iterations (the initial sampling phase,
// plus wait windows) and *AID phases* where iterations are removed unevenly
// in a single pool operation per thread: M per small-core thread, R·M per
// big-core thread. R is the relative big-over-small progress, continuously
// re-measured: R starts at the sampled SF and, after every AID phase, is
// updated with that phase's observed per-type progress rates (the paper's
// R ← R′·SM smoothing — measuring rates over the previous phase computes
// exactly R′·SM, see sf_estimator.h).
//
// Endgame optimization (Fig. 5 caption): as soon as the remaining iteration
// count is no greater than M·(NB+NS), the scheduler switches everyone to
// plain dynamic(m), which removes the end-of-loop imbalance that makes
// conventional dynamic so chunk-sensitive (paper Sec. 5B / Fig. 8).
//
// The design is non-blocking throughout: "waiting" threads steal m-chunks
// (their count δᵢ is deducted from the next allotment), and a drained pool
// simply ends the loop for whichever thread observes it — so the scheduler
// cannot deadlock even when a phase never completes.
#pragma once

#include <atomic>
#include <vector>

#include "common/padded.h"
#include "sched/loop_scheduler.h"
#include "sched/sf_estimator.h"
#include "sched/sharded_work_share.h"

namespace aid::sched {

class AidDynamicScheduler final : public LoopScheduler {
 public:
  /// `endgame_enabled` gates the Fig. 5 caption optimization; disabling it
  /// exists only for the ablation study.
  AidDynamicScheduler(i64 count, const platform::TeamLayout& layout,
                      i64 minor_chunk, i64 major_chunk,
                      bool endgame_enabled = true, ShardTopology topo = {});

  bool next(ThreadContext& tc, IterRange& out) override;
  void reset(i64 count) override;
  [[nodiscard]] std::string_view name() const override {
    return "aid-dynamic";
  }
  [[nodiscard]] SchedulerStats stats() const override;
  [[nodiscard]] i64 pool_removals_of(int tid) const override {
    return pool_.removals_of(tid);
  }
  [[nodiscard]] int home_shard_of(int tid) const override {
    return pool_.home_of(tid);
  }
  [[nodiscard]] i64 remaining() const override { return pool_.remaining(); }

  /// Current per-type progress ratios R_t (R of the slowest type == 1);
  /// exposed for tests. Only stable between phases.
  [[nodiscard]] std::vector<double> progress_ratios() const;

  [[nodiscard]] bool in_endgame() const {
    return endgame_.load(std::memory_order_acquire);
  }

 private:
  enum class State : u8 {
    kSampling,   // first call: take the m-sized sampling chunk
    kHaveBlock,  // executing a timed block (sampling chunk or AID block)
    kWait,       // between phases: steal m, watch the epoch
  };

  /// Mutated only by its owning thread; stored as Padded<PerThread> so
  /// neighbors never false-share a cache line.
  struct PerThread {
    State state = State::kSampling;
    Nanos block_start = 0;
    i64 block_iters = 0;
    i64 delta = 0;       ///< steals since last allotment (δᵢ)
    i64 epoch_seen = 0;  ///< last phase epoch this thread joined
  };

  /// Last thread of a phase: recompute R from the estimator, bulk-rebalance
  /// the shards toward the new per-cluster rates, re-arm the estimator and
  /// publish the next epoch. `tid` is the closing thread (it owns the
  /// migration and its rebalance counter).
  void close_phase(int tid);

  /// Try to enter the current phase: take the uneven allotment (or record a
  /// no-op completion when δᵢ already covers the target). Returns true when
  /// `out` was filled.
  bool enter_phase(ThreadContext& tc, PerThread& pt, IterRange& out);

  bool steal_minor(PerThread& pt, const ThreadContext& tc, IterRange& out,
                   bool count_delta);

  [[nodiscard]] bool should_endgame() const {
    return endgame_enabled_ && pool_.remaining() <= major_chunk_ * nthreads_;
  }

  ShardedWorkShare pool_;
  SfEstimator estimator_;
  std::atomic<i64> epoch_{0};  // 0 = initial sampling; >=1: AID phases
  std::atomic<bool> endgame_{false};

  // Published by close_phase() before the epoch release-increment.
  std::vector<double> ratio_;  // R_t per core type
  double reported_sf_ = 0.0;
  std::atomic<i64> phases_completed_{0};

  i64 count_;
  const i64 minor_chunk_;
  const i64 major_chunk_;
  const bool endgame_enabled_;
  const int nthreads_;
  std::vector<int> threads_per_type_;
  std::vector<double> nominal_speed_;
  std::vector<int> type_of_tid_;  ///< feeds per-shard rates into rebalance
  std::vector<Padded<PerThread>> per_thread_;
};

}  // namespace aid::sched
