#include "sched/sf_estimator.h"

#include "common/check.h"

namespace aid::sched {

SfEstimator::SfEstimator(int num_core_types)
    : types_(static_cast<usize>(num_core_types)) {
  AID_CHECK(num_core_types >= 1 && num_core_types <= kMaxCoreTypes);
}

void SfEstimator::reset(int expected_threads) {
  AID_CHECK(expected_threads >= 1);
  for (auto& t : types_) {
    t.time_sum.store(0, std::memory_order_relaxed);
    t.iter_sum.store(0, std::memory_order_relaxed);
  }
  expected_.store(expected_threads, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_release);
}

bool SfEstimator::record(int core_type, Nanos elapsed, i64 iterations) {
  AID_DCHECK(core_type >= 0 && core_type < num_core_types());
  if (iterations > 0) {
    auto& acc = types_[static_cast<usize>(core_type)];
    // Clamp to >=1ns so a timer with coarse granularity cannot produce a
    // zero-time sample (infinite rate).
    acc.time_sum.fetch_add(elapsed > 0 ? elapsed : 1,
                           std::memory_order_relaxed);
    acc.iter_sum.fetch_add(iterations, std::memory_order_relaxed);
  }
  const int done = completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const int expected = expected_.load(std::memory_order_relaxed);
  AID_DCHECK(done <= expected);
  return done == expected;
}

bool SfEstimator::complete() const {
  return completed_.load(std::memory_order_acquire) >=
         expected_.load(std::memory_order_relaxed);
}

double SfEstimator::rate(int core_type) const {
  AID_DCHECK(core_type >= 0 && core_type < num_core_types());
  const auto& acc = types_[static_cast<usize>(core_type)];
  const i64 time = acc.time_sum.load(std::memory_order_relaxed);
  const i64 iters = acc.iter_sum.load(std::memory_order_relaxed);
  if (time <= 0 || iters <= 0) return 0.0;
  return static_cast<double>(iters) / static_cast<double>(time);
}

std::vector<double> SfEstimator::speedup_factors(
    const std::vector<double>& fallback_speed) const {
  AID_CHECK(fallback_speed.size() == types_.size());
  std::vector<double> rates(types_.size());
  for (usize t = 0; t < types_.size(); ++t)
    rates[t] = rate(static_cast<int>(t));

  // Reference = slowest populated type: the first (types are ordered
  // slowest-first by construction of the platform) with a valid rate.
  double ref = 0.0;
  for (double r : rates) {
    if (r > 0.0) {
      ref = r;
      break;
    }
  }

  std::vector<double> sf(types_.size());
  for (usize t = 0; t < types_.size(); ++t) {
    if (rates[t] > 0.0 && ref > 0.0) {
      sf[t] = rates[t] / ref;
    } else {
      // No sample for this type (no threads bound there, or it never got an
      // iteration): trust the platform's nominal speed ratio.
      sf[t] = fallback_speed[t];
    }
    if (sf[t] < kMinSf) sf[t] = kMinSf;
  }
  return sf;
}

double aid_k(double num_iterations, const std::vector<int>& threads_per_type,
             const std::vector<double>& sf_per_type) {
  AID_CHECK(threads_per_type.size() == sf_per_type.size());
  double denom = 0.0;
  for (usize t = 0; t < threads_per_type.size(); ++t)
    denom += static_cast<double>(threads_per_type[t]) * sf_per_type[t];
  return denom > 0.0 ? num_iterations / denom : 0.0;
}

}  // namespace aid::sched
