#include "sched/scheduler_cache.h"

#include <algorithm>

#include "common/check.h"

namespace aid::sched {

LoopScheduler* SchedulerCache::acquire(const ScheduleSpec& spec, i64 count,
                                       const platform::TeamLayout& layout,
                                       const ShardTopology& topo) {
  std::unique_lock lock(mutex_);
  for (Entry& e : entries_) {
    if (e.busy || e.epoch != epoch_ || !(e.spec == spec)) continue;
    e.busy = true;
    ++hits_;
    // reset() runs outside the lock: the instance is exclusively ours
    // now, and re-arming a sharded pool touches every segment word.
    // (Entry pointers stay valid across concurrent push_backs — the
    // instances live behind unique_ptrs.)
    LoopScheduler* sched = e.sched.get();
    lock.unlock();
    sched->reset(count);
    return sched;
  }
  ++misses_;
  const u64 epoch = epoch_;
  lock.unlock();
  // Miss: construct outside the lock (the expensive path this cache
  // exists to amortize), then register the busy entry.
  auto fresh = make_scheduler(spec, count, layout, topo);
  LoopScheduler* raw = fresh.get();
  lock.lock();
  entries_.push_back(Entry{spec, std::move(fresh), /*busy=*/true, epoch});
  return raw;
}

void SchedulerCache::release(LoopScheduler* sched) {
  if (sched == nullptr) return;
  const std::scoped_lock lock(mutex_);
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const Entry& e) { return e.sched.get() == sched; });
  AID_CHECK_MSG(it != entries_.end() && it->busy,
                "release of a scheduler this cache did not hand out");
  // Doomed by an invalidate() while in flight: the instance bakes in a
  // dead layout — destroy instead of repooling.
  if (it->epoch != epoch_) {
    entries_.erase(it);
    return;
  }
  it->busy = false;
  // Retention cap per shape: a chain holds at most kChainRing same-shape
  // constructs in flight, so idle instances beyond that can never all be
  // needed again at once.
  usize idle = 0;
  for (const Entry& e : entries_)
    if (!e.busy && e.spec == it->spec) ++idle;
  if (idle > kInstancesPerShape) entries_.erase(it);
}

void SchedulerCache::invalidate() {
  const std::scoped_lock lock(mutex_);
  ++epoch_;
  std::erase_if(entries_, [](const Entry& e) { return !e.busy; });
}

u64 SchedulerCache::hits() const {
  const std::scoped_lock lock(mutex_);
  return hits_;
}

u64 SchedulerCache::misses() const {
  const std::scoped_lock lock(mutex_);
  return misses_;
}

}  // namespace aid::sched
