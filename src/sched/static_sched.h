// OpenMP `static` scheduling.
//
// Without a chunk: iterations are split into one near-even contiguous block
// per thread (the libgomp default the paper's Fig. 1 shows to be load-
// imbalanced on AMPs). With a chunk: blocks of `chunk` iterations are
// assigned round-robin by thread id.
//
// No shared pool is touched — assignment is a pure function of (tid,
// nthreads, NI), which is why static has "virtually no overhead from the
// runtime system" (paper Sec. 2) and why it cannot adapt to asymmetry.
#pragma once

#include <vector>

#include "sched/loop_scheduler.h"

namespace aid::sched {

class StaticScheduler final : public LoopScheduler {
 public:
  StaticScheduler(i64 count, const platform::TeamLayout& layout, i64 chunk);

  bool next(ThreadContext& tc, IterRange& out) override;
  void reset(i64 count) override;
  [[nodiscard]] std::string_view name() const override { return "static"; }
  [[nodiscard]] SchedulerStats stats() const override { return {}; }

  /// The even-split block for a thread (exposed for tests/documentation):
  /// threads [0, NI % T) get ceil(NI/T) iterations, the rest floor(NI/T).
  [[nodiscard]] static IterRange even_block(i64 count, int nthreads, int tid);

 private:
  struct alignas(kCacheLineBytes) PerThread {
    i64 next_block = 0;  ///< round-robin index (chunked) or 0/1 flag (even)
  };

  i64 count_;
  i64 chunk_;  // 0 = even split
  int nthreads_;
  std::vector<PerThread> per_thread_;
};

}  // namespace aid::sched
