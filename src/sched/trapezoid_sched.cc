#include "sched/trapezoid_sched.h"

#include <cmath>

#include "common/check.h"

namespace aid::sched {

TrapezoidScheduler::TrapezoidScheduler(i64 count,
                                       const platform::TeamLayout& layout,
                                       i64 first_chunk, i64 last_chunk,
                                       ShardTopology topo)
    : pool_(std::move(topo), layout.nthreads()),
      nthreads_(layout.nthreads()),
      requested_first_(first_chunk),
      requested_last_(last_chunk) {
  AID_CHECK(count >= 0);
  AID_CHECK(first_chunk >= 0 && last_chunk >= 0);
  AID_CHECK_MSG(first_chunk == 0 || last_chunk <= first_chunk,
                "trapezoid needs last <= first");
  configure(count);
  pool_.reset(count);
}

void TrapezoidScheduler::configure(i64 count) {
  last_ = requested_last_ > 0 ? requested_last_ : 1;
  first_ = requested_first_ > 0
               ? requested_first_
               : (count + 2 * nthreads_ - 1) / (2 * nthreads_);
  if (first_ < last_) first_ = last_;
  // Number of chunks C = ceil(2N / (f + l)); linear decrement delta.
  const double fl = static_cast<double>(first_ + last_);
  const i64 c = fl > 0 ? static_cast<i64>(
                             std::ceil(2.0 * static_cast<double>(count) / fl))
                       : 1;
  delta_ = c > 1 ? static_cast<double>(first_ - last_) /
                       static_cast<double>(c - 1)
                 : 0.0;
  chunk_index_.store(0, std::memory_order_relaxed);
}

i64 TrapezoidScheduler::chunk_size(i64 k) const {
  const double size =
      static_cast<double>(first_) - static_cast<double>(k) * delta_;
  const i64 rounded = static_cast<i64>(std::llround(size));
  return rounded > last_ ? rounded : last_;
}

bool TrapezoidScheduler::next(ThreadContext& tc, IterRange& out) {
  if (tc.cancelled()) [[unlikely]] {
    pool_.poison();
    out = {pool_.end(), pool_.end()};
    return false;
  }
  // Probe the drain first so an exhausted pool stops advancing the chunk
  // index (and the index fetch_add) once the loop is over.
  if (pool_.remaining() == 0) {
    out = {pool_.end(), pool_.end()};
    return false;
  }
  const i64 k = chunk_index_.fetch_add(1, std::memory_order_relaxed);
  out = pool_.take(chunk_size(k), tc.tid, tc.shard);
  return !out.empty();
}

void TrapezoidScheduler::reset(i64 count) {
  AID_CHECK(count >= 0);
  configure(count);
  pool_.reset(count);
}

SchedulerStats TrapezoidScheduler::stats() const {
  return {.pool_removals = pool_.removals(),
          .local_removals = pool_.local_removals(),
          .steal_removals = pool_.remote_removals(),
          .shard_rebalances = pool_.rebalances()};
}

}  // namespace aid::sched
