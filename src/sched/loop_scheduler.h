// Scheduler interface.
//
// One LoopScheduler instance embodies one work-sharing construct (libgomp's
// work_share). Workers repeatedly call next() — the analog of
// GOMP_loop_<sched>_next() — until it returns false, then hit the implicit
// barrier owned by the caller (runtime or simulator).
//
// Instances are reusable: reset() re-arms the scheduler for a new execution
// of the same loop shape without reallocating per-thread state, because
// data-parallel applications execute the same loops thousands of times.
#pragma once

#include <memory>
#include <string_view>

#include "platform/team_layout.h"
#include "sched/iteration_space.h"
#include "sched/schedule_spec.h"
#include "sched/shard_topology.h"
#include "sched/thread_context.h"

namespace aid::sched {

/// Observability snapshot used by tests, the simulator's overhead accounting
/// and the Fig. 9 experiments.
struct SchedulerStats {
  i64 pool_removals = 0;   ///< fetch-add / CAS removals from the shared pool
  double estimated_sf = 0.0;  ///< AID: SF from the sampling phase (0 if n/a)
  i64 aid_phases = 0;      ///< AID-dynamic: completed AID phases
  // Sharded-pool breakdown (sharded_work_share.h). For a single-shard
  // pool every removal is local and the other two stay 0.
  i64 local_removals = 0;  ///< removals served by the taker's home shard
  i64 steal_removals = 0;  ///< removals served by a foreign shard
  i64 shard_rebalances = 0;  ///< contiguous blocks bulk-migrated
};

class LoopScheduler {
 public:
  virtual ~LoopScheduler() = default;

  LoopScheduler(const LoopScheduler&) = delete;
  LoopScheduler& operator=(const LoopScheduler&) = delete;

  /// Remove the calling worker's next range. Returns false when the worker
  /// is done with this loop (pool exhausted / allotment complete).
  /// Thread-safe: called concurrently by all team workers.
  virtual bool next(ThreadContext& tc, IterRange& out) = 0;

  /// Re-arm for a fresh execution with `count` canonical iterations. Must
  /// only be called while no worker is inside next() (i.e. between loop
  /// executions, after the team barrier).
  virtual void reset(i64 count) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual SchedulerStats stats() const = 0;

  /// Successful pool removals attributed to one thread. The simulator
  /// polls this after every next() call to detect pool touches — it must
  /// stay O(1), not walk all per-thread counter slots like
  /// stats().pool_removals does. Pool-backed schedulers override it;
  /// the default covers schedulers that never touch a pool.
  [[nodiscard]] virtual i64 pool_removals_of(int tid) const {
    (void)tid;
    return 0;
  }

  /// Iterations not yet handed out of this construct's pool — a racy
  /// diagnostic read (the watchdog's wedge dump quotes it; nothing
  /// schedules off it). Pool-backed schedulers override; pool-less ones
  /// (static) report 0 because their remaining work is per-thread state.
  [[nodiscard]] virtual i64 remaining() const { return 0; }

  /// Home shard of one thread in this construct's pool. The runtime copies
  /// it into ThreadContext::shard before the next() loop so every take
  /// lands cluster-local; shard membership therefore follows whatever
  /// layout the scheduler was built from (coherent across repartitions —
  /// a new partition means a new scheduler, hence a new topology).
  /// Pool-backed schedulers override; the default covers pool-less ones.
  [[nodiscard]] virtual int home_shard_of(int tid) const {
    (void)tid;
    return 0;
  }

 protected:
  LoopScheduler() = default;
};

/// Create a scheduler for `count` iterations on the given team. The layout
/// must outlive the scheduler. Any ScheduleKind is accepted; AID methods on a
/// uniform team degenerate gracefully (documented per scheduler).
/// This overload arms a classic single pool (the simulator's model of the
/// paper's libgomp work share).
[[nodiscard]] std::unique_ptr<LoopScheduler> make_scheduler(
    const ScheduleSpec& spec, i64 count, const platform::TeamLayout& layout);

/// Shard-aware overload: the runtime (Team / WorkerPool / GOMP surface)
/// passes a ShardTopology derived from the executing layout, giving every
/// pool-backed scheduler a per-core-type sharded pool with cluster-local
/// takes (sharded_work_share.h).
[[nodiscard]] std::unique_ptr<LoopScheduler> make_scheduler(
    const ScheduleSpec& spec, i64 count, const platform::TeamLayout& layout,
    const ShardTopology& topo);

}  // namespace aid::sched
