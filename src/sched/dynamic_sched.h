// OpenMP `dynamic` scheduling — the libgomp lock-free implementation the
// paper builds AID on top of (Sec. 4.2): every worker repeatedly removes
// `chunk` iterations from the shared pool with one fetch-and-add until the
// pool is exhausted.
//
// Adapts to asymmetry implicitly (big-core threads come back for work more
// often) at the price of one pool removal per chunk — the overhead the paper
// shows can negate the benefit (IS: 1.93x slowdown; CG on Platform B: 2.86x).
// Under a sharded topology (sharded_work_share.h) that per-chunk removal is
// a cluster-local RMW on the thread's home shard; with the default
// single-shard topology it is the classic shared fetch-add.
#pragma once

#include "sched/loop_scheduler.h"
#include "sched/sharded_work_share.h"

namespace aid::sched {

class DynamicScheduler final : public LoopScheduler {
 public:
  /// `nthreads` sizes the pool's per-thread removal counters (callers pass
  /// layout.nthreads()). `topo` shards the pool; empty = single pool.
  DynamicScheduler(i64 count, i64 chunk, int nthreads,
                   ShardTopology topo = {});

  bool next(ThreadContext& tc, IterRange& out) override;
  void reset(i64 count) override;
  [[nodiscard]] std::string_view name() const override { return "dynamic"; }
  [[nodiscard]] SchedulerStats stats() const override;
  [[nodiscard]] i64 pool_removals_of(int tid) const override {
    return pool_.removals_of(tid);
  }
  [[nodiscard]] int home_shard_of(int tid) const override {
    return pool_.home_of(tid);
  }
  [[nodiscard]] i64 remaining() const override { return pool_.remaining(); }

 private:
  ShardedWorkShare pool_;
  i64 chunk_;
};

}  // namespace aid::sched
