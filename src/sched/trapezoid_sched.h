// Trapezoid Self-Scheduling (Tzen & Ni, IEEE TPDS 1993) — a related-work
// baseline the paper cites ([46]): chunk sizes decrease *linearly* from
// first = NI/(2T) down to last = 1, rather than geometrically as in guided.
//
// Like guided, TSS is asymmetry-unaware: chunk k has the same size no
// matter which core takes it, so a small core drawing an early (large)
// chunk can still strand the loop. Included as a comparison point for the
// ablation bench (bench_ablation_schedulers).
#pragma once

#include <atomic>

#include "sched/loop_scheduler.h"
#include "sched/sharded_work_share.h"

namespace aid::sched {

class TrapezoidScheduler final : public LoopScheduler {
 public:
  /// first/last chunk sizes; 0 picks the classic defaults
  /// first = ceil(NI / (2T)), last = 1. Under a sharded topology the chunk
  /// *size* sequence stays global (one shared chunk index — TSS's linear
  /// decrement is inherently a global schedule) while the iterations
  /// themselves come from the taker's home shard.
  TrapezoidScheduler(i64 count, const platform::TeamLayout& layout,
                     i64 first_chunk = 0, i64 last_chunk = 0,
                     ShardTopology topo = {});

  bool next(ThreadContext& tc, IterRange& out) override;
  void reset(i64 count) override;
  [[nodiscard]] std::string_view name() const override { return "trapezoid"; }
  [[nodiscard]] SchedulerStats stats() const override;
  [[nodiscard]] i64 pool_removals_of(int tid) const override {
    return pool_.removals_of(tid);
  }
  [[nodiscard]] int home_shard_of(int tid) const override {
    return pool_.home_of(tid);
  }
  [[nodiscard]] i64 remaining() const override { return pool_.remaining(); }

  /// Size of the k-th dispensed chunk (exposed for tests):
  /// max(last, first - k * delta) with delta = (first-last)/(C-1),
  /// C = ceil(2*NI / (first+last)).
  [[nodiscard]] i64 chunk_size(i64 k) const;

 private:
  void configure(i64 count);

  ShardedWorkShare pool_;
  std::atomic<i64> chunk_index_{0};
  i64 first_ = 1;
  i64 last_ = 1;
  double delta_ = 0.0;
  const int nthreads_;
  const i64 requested_first_;
  const i64 requested_last_;
};

}  // namespace aid::sched
