#include "sched/schedule_spec.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/env.h"

namespace aid::sched {
namespace {

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

const char* to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kStatic: return "static";
    case ScheduleKind::kDynamic: return "dynamic";
    case ScheduleKind::kGuided: return "guided";
    case ScheduleKind::kAidStatic: return "aid-static";
    case ScheduleKind::kAidHybrid: return "aid-hybrid";
    case ScheduleKind::kAidDynamic: return "aid-dynamic";
    case ScheduleKind::kTrapezoid: return "trapezoid";
    case ScheduleKind::kWeightedFactoring: return "weighted-factoring";
  }
  return "?";
}

std::string ScheduleSpec::display() const {
  std::ostringstream os;
  os << to_string(kind);
  switch (kind) {
    case ScheduleKind::kStatic:
      if (chunk > 0) os << ',' << chunk;
      break;
    case ScheduleKind::kDynamic:
    case ScheduleKind::kGuided:
      os << ',' << effective_chunk();
      break;
    case ScheduleKind::kAidStatic:
      os << ',' << effective_chunk();
      if (offline_sf) os << " (offline-SF " << *offline_sf << ')';
      break;
    case ScheduleKind::kAidHybrid:
      os << ',' << effective_chunk() << ',' << hybrid_percent;
      break;
    case ScheduleKind::kAidDynamic:
      os << ',' << effective_chunk() << ',' << major_chunk;
      if (!aid_endgame) os << " (no endgame)";
      break;
    case ScheduleKind::kTrapezoid:
      if (chunk > 0) os << ',' << chunk << ',' << major_chunk;
      break;
    case ScheduleKind::kWeightedFactoring:
      break;
  }
  return os.str();
}

std::optional<ScheduleSpec> parse_schedule(std::string_view text) {
  const auto parts = env::split_list(text, ',');
  if (parts.empty()) return std::nullopt;
  const std::string head = lower(parts[0]);

  // Optional numeric arguments after the name.
  std::vector<i64> args;
  for (usize i = 1; i < parts.size(); ++i) {
    const auto v = env::parse_int(parts[i]);
    if (!v || *v < 0) return std::nullopt;
    args.push_back(*v);
  }
  const auto arg = [&](usize i, i64 fallback) {
    return i < args.size() ? args[i] : fallback;
  };

  ScheduleSpec spec;
  if (head == "static") {
    if (args.size() > 1) return std::nullopt;
    spec = ScheduleSpec::static_chunked(arg(0, 0));
  } else if (head == "dynamic") {
    if (args.size() > 1) return std::nullopt;
    spec = ScheduleSpec::dynamic(arg(0, 1) > 0 ? arg(0, 1) : 1);
  } else if (head == "guided") {
    if (args.size() > 1) return std::nullopt;
    spec = ScheduleSpec::guided(arg(0, 1) > 0 ? arg(0, 1) : 1);
  } else if (head == "aid-static" || head == "aid_static") {
    if (args.size() > 1) return std::nullopt;
    spec = ScheduleSpec::aid_static(arg(0, 1) > 0 ? arg(0, 1) : 1);
  } else if (head == "aid-hybrid" || head == "aid_hybrid") {
    if (args.size() > 2) return std::nullopt;
    const i64 pct = arg(1, 80);
    if (pct > 100) return std::nullopt;
    spec = ScheduleSpec::aid_hybrid(arg(0, 1) > 0 ? arg(0, 1) : 1,
                                    static_cast<double>(pct));
  } else if (head == "aid-dynamic" || head == "aid_dynamic") {
    if (args.size() > 2) return std::nullopt;
    const i64 m = arg(0, 1) > 0 ? arg(0, 1) : 1;
    const i64 M = arg(1, 5) > 0 ? arg(1, 5) : 5;
    if (M < m) return std::nullopt;  // paper requires M >= m
    spec = ScheduleSpec::aid_dynamic(m, M);
  } else if (head == "trapezoid") {
    if (args.size() > 2) return std::nullopt;
    const i64 first = arg(0, 0);
    const i64 last = arg(1, 0);
    if (first > 0 && last > first) return std::nullopt;
    spec = ScheduleSpec::trapezoid(first, last);
  } else if (head == "weighted-factoring" || head == "wfactoring") {
    if (!args.empty()) return std::nullopt;
    spec = ScheduleSpec::weighted_factoring();
  } else {
    return std::nullopt;
  }
  return spec;
}

}  // namespace aid::sched
