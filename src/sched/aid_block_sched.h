// AID-static and AID-hybrid (paper Sec. 4.2, Fig. 3).
//
// Both distribute a block of iterations unevenly, proportional to the
// per-loop speedup factor estimated online by a sampling phase:
//
//   SAMPLING ──(not last to finish)──> SAMPLING_WAIT ──(all done)──> AID
//       └─────(last to finish: computes SF and k)────────────────────┘
//
//  * SAMPLING: every thread removes `chunk` iterations and times their
//    execution (two timestamps, paper Sec. 4.2).
//  * SAMPLING_WAIT: threads keep stealing `chunk` iterations dynamically so
//    no core idles while the slowest sampler finishes.
//  * AID: one final pool removal per thread of size SF_t·k − δᵢ, where δᵢ is
//    whatever the thread already executed (sampling + wait steals).
//
// k = F·NI / Σ_t N_t·SF_t, with F = 1 for AID-static and F = P/100 for
// AID-hybrid. The iterations beyond the AID block (none for AID-static up to
// rounding; (100−P)% for AID-hybrid) are drained with conventional dynamic
// `chunk`-stealing, which is exactly the paper's hybrid tail.
//
// The Fig. 9 offline-SF variant (AID-static(offline-SF)) skips the sampling
// phase entirely and trusts a caller-provided SF.
//
// Lock-free: the pool is a fetch-add WorkShare; sampling bookkeeping is the
// SfEstimator's atomic counters (paper: "the implementation of AID-static is
// lock free").
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/padded.h"
#include "sched/loop_scheduler.h"
#include "sched/sf_estimator.h"
#include "sched/sharded_work_share.h"

namespace aid::sched {

class AidBlockScheduler final : public LoopScheduler {
 public:
  /// `aid_fraction` — portion of NI distributed asymmetrically: 1.0 for
  /// AID-static, P/100 for AID-hybrid. `offline_sf` — skip sampling and use
  /// this SF for the fastest core type (Fig. 9 variant).
  AidBlockScheduler(i64 count, const platform::TeamLayout& layout, i64 chunk,
                    double aid_fraction, std::optional<double> offline_sf,
                    std::string name, ShardTopology topo = {});

  bool next(ThreadContext& tc, IterRange& out) override;
  void reset(i64 count) override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] SchedulerStats stats() const override;
  [[nodiscard]] i64 pool_removals_of(int tid) const override {
    return pool_.removals_of(tid);
  }
  [[nodiscard]] int home_shard_of(int tid) const override {
    return pool_.home_of(tid);
  }
  [[nodiscard]] i64 remaining() const override { return pool_.remaining(); }

  /// The per-thread AID target for a core type (SF_t·k, rounded), exposed
  /// for tests of the distribution math.
  [[nodiscard]] i64 target_of_type(int core_type) const;

  /// True once SF/k have been published (sampling finished or offline SF).
  [[nodiscard]] bool aid_ready() const {
    return aid_ready_.load(std::memory_order_acquire);
  }

 private:
  enum class State : u8 {
    kSampling,       // first call: take the sampling chunk
    kAfterSampling,  // second call: record timing, maybe finalize
    kWait,           // stealing chunks until SF/k are published
    kAid,            // take the final uneven block
    kDrain,          // hybrid tail / rounding leftovers: dynamic stealing
  };

  /// Mutated only by its owning thread; stored as Padded<PerThread> so
  /// neighbors never false-share a cache line.
  struct PerThread {
    State state = State::kSampling;
    Nanos sample_start = 0;
    i64 sampled = 0;  ///< iterations in the sampling chunk
    i64 delta = 0;    ///< δᵢ: iterations executed before entering AID
  };

  void finalize(ThreadContext& tc);
  bool take_aid_block(ThreadContext& tc, PerThread& pt, IterRange& out);
  bool drain(IterRange& out, int tid, int shard);
  /// Per-shard progress rates under the published SF vector (feeds the
  /// bulk rebalance that pre-positions shards for the AID blocks).
  [[nodiscard]] std::vector<double> shard_rates() const;

  ShardedWorkShare pool_;
  SfEstimator estimator_;
  std::atomic<bool> aid_ready_{false};

  // Written by the finalizing thread before the aid_ready_ release store;
  // read by everyone else after an acquire load. Pre-sized in the ctor so
  // finalize() performs no allocation (hot path).
  std::vector<double> sf_;
  double k_ = 0.0;
  double reported_sf_ = 0.0;

  i64 count_;
  const i64 chunk_;
  const double aid_fraction_;
  const std::optional<double> offline_sf_;
  const std::string name_;
  const int nthreads_;
  std::vector<int> threads_per_type_;
  std::vector<double> nominal_speed_;
  std::vector<int> type_of_tid_;  ///< feeds per-shard rates into rebalance
  std::vector<Padded<PerThread>> per_thread_;
};

}  // namespace aid::sched
