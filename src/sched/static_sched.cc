#include "sched/static_sched.h"

#include "common/check.h"

namespace aid::sched {

StaticScheduler::StaticScheduler(i64 count, const platform::TeamLayout& layout,
                                 i64 chunk)
    : count_(count),
      chunk_(chunk),
      nthreads_(layout.nthreads()),
      per_thread_(static_cast<usize>(layout.nthreads())) {
  AID_CHECK(count >= 0);
  AID_CHECK(chunk >= 0);
}

IterRange StaticScheduler::even_block(i64 count, int nthreads, int tid) {
  AID_CHECK(nthreads >= 1 && tid >= 0 && tid < nthreads);
  const i64 q = count / nthreads;
  const i64 r = count % nthreads;
  const i64 begin = tid * q + (tid < r ? tid : r);
  const i64 size = q + (tid < r ? 1 : 0);
  return {begin, begin + size};
}

bool StaticScheduler::next(ThreadContext& tc, IterRange& out) {
  // No pool to poison: a static allotment is per-thread state, so each
  // thread simply stops taking its own blocks on the first sighting.
  if (tc.cancelled()) [[unlikely]] {
    out = {count_, count_};
    return false;
  }
  AID_DCHECK(tc.tid >= 0 && tc.tid < nthreads_);
  PerThread& pt = per_thread_[static_cast<usize>(tc.tid)];

  if (chunk_ == 0) {
    if (pt.next_block != 0) return false;
    pt.next_block = 1;
    out = even_block(count_, nthreads_, tc.tid);
    return !out.empty();
  }

  // Round-robin chunks: thread t owns chunks t, t+T, t+2T, ...
  const i64 begin = (tc.tid + pt.next_block * nthreads_) * chunk_;
  if (begin >= count_) return false;
  ++pt.next_block;
  out = {begin, begin + chunk_ < count_ ? begin + chunk_ : count_};
  return true;
}

void StaticScheduler::reset(i64 count) {
  AID_CHECK(count >= 0);
  count_ = count;
  for (auto& pt : per_thread_) pt.next_block = 0;
}

}  // namespace aid::sched
