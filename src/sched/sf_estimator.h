// Online speedup-factor estimation shared by all AID schedulers.
//
// Paper Sec. 4.2, footnote 2: "we maintain two shared counters to keep track
// of the summation of execution times for sampling-phases in big-core and
// small-core threads ... as soon as a thread completes the sampling phase it
// increments the associated counter atomically".
//
// We generalize both axes the paper sketches:
//  * N core types (the Sec. 4.2 extension): one accumulator pair per type;
//    SF_j is measured relative to the slowest *populated* type.
//  * Unequal per-thread sample sizes (needed by AID-dynamic, whose phase
//    allotments are delta-adjusted): we accumulate (time, iterations) pairs
//    and compare per-type progress *rates* (iters/time). For the initial
//    sampling phase, where every thread runs exactly `chunk` iterations,
//    the rate ratio reduces exactly to the paper's average-time ratio.
#pragma once

#include <atomic>
#include <vector>

#include "common/types.h"

namespace aid::sched {

inline constexpr int kMaxCoreTypes = 8;

/// Lock-free per-core-type (time, iteration) accumulator plus a completion
/// counter. One instance per sampling phase (reset between AID-dynamic
/// phases by the single thread that closes the phase).
class SfEstimator {
 public:
  explicit SfEstimator(int num_core_types);

  /// Re-arm for a new phase expecting `expected_threads` contributions.
  /// Must not race with record() — callers guarantee phase separation.
  void reset(int expected_threads);

  /// Record one thread's completed sample. `iterations` may be zero (thread
  /// found the pool empty); such samples count toward completion but do not
  /// pollute the rate estimate. Returns true iff this call was the last
  /// expected contribution — the caller then owns finalization (the paper's
  /// "last thread computes SF and k").
  bool record(int core_type, Nanos elapsed, i64 iterations);

  /// True once all expected threads recorded (acquire-loads the counter).
  [[nodiscard]] bool complete() const;

  /// Progress rate (iterations per nanosecond) of a core type; 0 when the
  /// type has no valid samples. Only meaningful after complete().
  [[nodiscard]] double rate(int core_type) const;

  /// SF_j: rate(j) / rate(slowest populated type with valid samples).
  /// Falls back to `fallback_speed[j]` (nominal platform speeds) for types
  /// without valid samples. Result is clamped to >= kMinSf.
  [[nodiscard]] std::vector<double> speedup_factors(
      const std::vector<double>& fallback_speed) const;

  [[nodiscard]] int num_core_types() const {
    return static_cast<int>(types_.size());
  }

  /// Lower clamp for estimated SF values; guards against degenerate samples
  /// (e.g. timer granularity) producing SF < a small positive value.
  static constexpr double kMinSf = 1e-3;

 private:
  struct alignas(kCacheLineBytes) TypeAccum {
    std::atomic<i64> time_sum{0};
    std::atomic<i64> iter_sum{0};
  };

  std::vector<TypeAccum> types_;
  std::atomic<int> completed_{0};
  /// Atomic (relaxed): a phase-closing reset() may overlap the tail of a
  /// straggler's record() — after its completed_ increment, before its
  /// expected_ comparison. The value written is the same team size, so
  /// the comparison is unaffected; atomicity only removes the formal
  /// data race (caught by the CI tsan leg).
  std::atomic<int> expected_{0};
};

/// k in the paper's notation: the per-small-core-thread allotment such that
/// sum_t N_t * SF_t * k == NI (Sec. 4.2: k = NI / (NB*SF + NS), generalized
/// to k = NI / sum_t N_t*SF_t). Returns 0 when the denominator is 0.
[[nodiscard]] double aid_k(double num_iterations,
                           const std::vector<int>& threads_per_type,
                           const std::vector<double>& sf_per_type);

}  // namespace aid::sched
