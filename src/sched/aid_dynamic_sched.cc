#include "sched/aid_dynamic_sched.h"

#include <cmath>

#include "common/check.h"

namespace aid::sched {

AidDynamicScheduler::AidDynamicScheduler(i64 count,
                                         const platform::TeamLayout& layout,
                                         i64 minor_chunk, i64 major_chunk,
                                         bool endgame_enabled,
                                         ShardTopology topo)
    : pool_(std::move(topo), layout.nthreads()),
      estimator_(layout.num_core_types()),
      count_(count),
      minor_chunk_(minor_chunk > 0 ? minor_chunk : 1),
      major_chunk_(major_chunk > 0 ? major_chunk : 5),
      endgame_enabled_(endgame_enabled),
      nthreads_(layout.nthreads()),
      per_thread_(static_cast<usize>(layout.nthreads())) {
  AID_CHECK(count >= 0);
  AID_CHECK_MSG(major_chunk_ >= minor_chunk_,
                "AID-dynamic requires M >= m (paper Sec. 4.2)");
  threads_per_type_.resize(static_cast<usize>(layout.num_core_types()));
  for (int t = 0; t < layout.num_core_types(); ++t)
    threads_per_type_[static_cast<usize>(t)] = layout.threads_of_type(t);
  nominal_speed_.assign(static_cast<usize>(layout.num_core_types()), 1.0);
  type_of_tid_.resize(static_cast<usize>(layout.nthreads()));
  for (int tid = 0; tid < layout.nthreads(); ++tid) {
    nominal_speed_[static_cast<usize>(layout.core_type_of(tid))] =
        layout.speed_of(tid);
    type_of_tid_[static_cast<usize>(tid)] = layout.core_type_of(tid);
  }
  ratio_.assign(static_cast<usize>(layout.num_core_types()), 1.0);
  reset(count);
}

void AidDynamicScheduler::reset(i64 count) {
  AID_CHECK(count >= 0);
  count_ = count;
  pool_.reset(count);
  estimator_.reset(nthreads_);
  for (auto& pt : per_thread_) *pt = PerThread{};
  for (auto& r : ratio_) r = 1.0;
  reported_sf_ = 0.0;
  phases_completed_.store(0, std::memory_order_relaxed);
  epoch_.store(0, std::memory_order_relaxed);
  endgame_.store(false, std::memory_order_release);
}

void AidDynamicScheduler::close_phase(int tid) {
  // Exactly one thread executes this per phase (the one whose record() call
  // returned true). All other threads are stealing m-chunks and cannot touch
  // the estimator until the next epoch is visible.
  ratio_ = estimator_.speedup_factors(ratio_);
  for (usize t = ratio_.size(); t-- > 0;) {
    if (threads_per_type_[t] > 0) {
      if (reported_sf_ == 0.0) reported_sf_ = ratio_[t];  // initial SF
      break;
    }
  }
  if (pool_.nshards() > 1 && !endgame_.load(std::memory_order_relaxed)) {
    // Imbalance estimator feeding the bulk-rebalance path: a shard's rate
    // is the sum of its member threads' measured progress ratios, so the
    // cluster the SF says will finish early receives a contiguous block
    // now instead of chunk-stealing it remotely later.
    std::vector<double> rate(static_cast<usize>(pool_.nshards()), 0.0);
    for (int t = 0; t < nthreads_; ++t)
      rate[static_cast<usize>(pool_.home_of(t))] +=
          ratio_[static_cast<usize>(type_of_tid_[static_cast<usize>(t)])];
    pool_.rebalance(rate, /*min_block=*/major_chunk_, tid);
  }
  phases_completed_.fetch_add(1, std::memory_order_relaxed);
  estimator_.reset(nthreads_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

bool AidDynamicScheduler::steal_minor(PerThread& pt, const ThreadContext& tc,
                                      IterRange& out, bool count_delta) {
  const IterRange r = pool_.take(minor_chunk_, tc.tid, tc.shard);
  if (r.empty()) return false;
  if (count_delta) pt.delta += r.size();
  out = r;
  return true;
}

bool AidDynamicScheduler::enter_phase(ThreadContext& tc, PerThread& pt,
                                      IterRange& out) {
  // Fig. 5 caption optimization: with only M·(NB+NS) iterations left, a full
  // AID allotment could strand the tail on one thread; finish with
  // dynamic(m) instead.
  if (should_endgame()) {
    endgame_.store(true, std::memory_order_release);
    pt.state = State::kWait;
    return steal_minor(pt, tc, out, /*count_delta=*/false);
  }

  const double r_t = ratio_[static_cast<usize>(tc.core_type)];
  const i64 target =
      std::llround(r_t * static_cast<double>(major_chunk_));
  const i64 want = target - pt.delta;
  if (want < 1) {
    // The wait-window steals already covered this phase's share: report an
    // immediate (zero-iteration) completion, carry the excess δᵢ into the
    // next phase and keep stealing.
    pt.delta = -want;
    if (estimator_.record(tc.core_type, 0, 0)) close_phase(tc.tid);
    pt.state = State::kWait;
    return steal_minor(pt, tc, out, /*count_delta=*/true);
  }
  pt.delta = 0;
  const IterRange r = pool_.take(want, tc.tid, tc.shard);
  if (r.empty()) {
    // Pool drained under us; still count the phase contribution so peers
    // are not stalled, then end this worker's loop.
    if (estimator_.record(tc.core_type, 0, 0)) close_phase(tc.tid);
    pt.state = State::kWait;
    return false;
  }
  pt.block_start = tc.now();
  pt.block_iters = r.size();
  pt.state = State::kHaveBlock;
  out = r;
  return true;
}

bool AidDynamicScheduler::next(ThreadContext& tc, IterRange& out) {
  // Cancellation: poison and bail before any state transition. A thread
  // cancelled mid-phase leaves its in-flight block unrecorded — harmless,
  // the estimator is rebuilt by reset() before the instance is reused.
  if (tc.cancelled()) [[unlikely]] {
    pool_.poison();
    out = {pool_.end(), pool_.end()};
    return false;
  }
  AID_DCHECK(tc.tid >= 0 && tc.tid < nthreads_);
  PerThread& pt = *per_thread_[static_cast<usize>(tc.tid)];

  if (endgame_.load(std::memory_order_acquire)) {
    // Terminal mode: conventional dynamic(m) to the end of the loop.
    if (pt.state == State::kHaveBlock) {
      // Account the in-flight block first so the estimator never waits on a
      // thread that slipped into the endgame mid-phase.
      if (estimator_.record(tc.core_type, tc.now() - pt.block_start,
                            pt.block_iters))
        close_phase(tc.tid);
      pt.state = State::kWait;
    }
    return steal_minor(pt, tc, out, /*count_delta=*/false);
  }

  switch (pt.state) {
    case State::kSampling: {
      pt.block_start = tc.now();
      const IterRange r = pool_.take(minor_chunk_, tc.tid, tc.shard);
      if (r.empty()) {
        if (estimator_.record(tc.core_type, 0, 0)) close_phase(tc.tid);
        pt.state = State::kWait;
        return false;
      }
      pt.block_iters = r.size();
      pt.state = State::kHaveBlock;
      out = r;
      return true;
    }

    case State::kHaveBlock: {
      const Nanos elapsed = tc.now() - pt.block_start;
      if (estimator_.record(tc.core_type, elapsed, pt.block_iters))
        close_phase(tc.tid);
      pt.state = State::kWait;
      [[fallthrough]];
    }

    case State::kWait: {
      const i64 cur_epoch = epoch_.load(std::memory_order_acquire);
      if (cur_epoch != pt.epoch_seen) {
        pt.epoch_seen = cur_epoch;
        return enter_phase(tc, pt, out);
      }
      // Phase still in flight elsewhere: keep the core busy with m-steals.
      return steal_minor(pt, tc, out, /*count_delta=*/true);
    }
  }
  AID_CHECK(false);
  return false;
}

SchedulerStats AidDynamicScheduler::stats() const {
  return {.pool_removals = pool_.removals(),
          .estimated_sf = reported_sf_,
          .aid_phases = phases_completed_.load(std::memory_order_relaxed),
          .local_removals = pool_.local_removals(),
          .steal_removals = pool_.remote_removals(),
          .shard_rebalances = pool_.rebalances()};
}

std::vector<double> AidDynamicScheduler::progress_ratios() const {
  return ratio_;
}

}  // namespace aid::sched
