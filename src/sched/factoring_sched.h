// Weighted Factoring (Hummel, Schmidt, Uma & Wein, SPAA 1996) — the classic
// *static-weight* asymmetry-aware loop schedule the paper cites ([21]).
//
// Factoring dispenses work in batches of half the remaining iterations;
// within a batch every thread receives one chunk. The *weighted* variant
// scales each thread's chunk by a fixed per-thread weight (here: the
// platform's nominal core speed), so big cores get proportionally more —
// the same goal as AID, but with weights fixed a priori instead of measured
// per loop at runtime.
//
// This is the most interesting ablation against AID-static: it isolates
// the value of ONLINE per-loop SF estimation (paper Sec. 2: "the speedup
// factor may vary substantially across parallel loops") from the value of
// mere proportional distribution. Where the nominal ratio matches the
// loop's true SF, weighted factoring ties AID; where the loop's SF departs
// from nominal (Fig. 2!), it misallocates.
//
// Implementation: a thread's removal takes remaining * w_t / (2 * sum w)
// (at least 1), the practical self-scheduled form of weighted factoring.
#pragma once

#include <vector>

#include "sched/loop_scheduler.h"
#include "sched/sharded_work_share.h"

namespace aid::sched {

class WeightedFactoringScheduler final : public LoopScheduler {
 public:
  /// Weights default to the layout's nominal per-thread speeds; a custom
  /// vector (one entry per thread) may be supplied for experimentation.
  WeightedFactoringScheduler(i64 count, const platform::TeamLayout& layout,
                             std::vector<double> weights = {},
                             ShardTopology topo = {});

  bool next(ThreadContext& tc, IterRange& out) override;
  void reset(i64 count) override;
  [[nodiscard]] std::string_view name() const override {
    return "weighted-factoring";
  }
  [[nodiscard]] SchedulerStats stats() const override;
  [[nodiscard]] i64 pool_removals_of(int tid) const override {
    return pool_.removals_of(tid);
  }
  [[nodiscard]] int home_shard_of(int tid) const override {
    return pool_.home_of(tid);
  }
  [[nodiscard]] i64 remaining() const override { return pool_.remaining(); }

  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

 private:
  ShardedWorkShare pool_;
  std::vector<double> weights_;
  double weight_sum_ = 0.0;
};

}  // namespace aid::sched
