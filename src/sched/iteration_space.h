// Canonical iteration spaces.
//
// Schedulers operate on the canonical space [0, NI): a half-open range of
// logical iteration numbers. User-facing loops (arbitrary start/end/step,
// both directions) are normalized here, mirroring how libgomp scales the
// chunk by the loop increment (paper Sec. 4.2, footnote 1).
#pragma once

#include <string>

#include "common/check.h"
#include "common/types.h"

namespace aid::sched {

/// Half-open range of canonical iteration numbers [begin, end).
struct IterRange {
  i64 begin = 0;
  i64 end = 0;

  [[nodiscard]] i64 size() const { return end > begin ? end - begin : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  friend bool operator==(const IterRange&, const IterRange&) = default;
};

/// A user loop `for (i = start; i cmp end; i += step)` mapped to the
/// canonical space. step may be negative; step == 0 is rejected.
class IterationSpace {
 public:
  IterationSpace(i64 start, i64 end, i64 step) : start_(start), step_(step) {
    AID_CHECK_MSG(step != 0, "loop step must be nonzero");
    if (step > 0) {
      count_ = end > start ? (end - start + step - 1) / step : 0;
    } else {
      count_ = start > end ? (start - end + (-step) - 1) / (-step) : 0;
    }
  }

  /// Total canonical iterations (NI in the paper's notation).
  [[nodiscard]] i64 count() const { return count_; }

  /// Map a canonical iteration number to the user loop variable value.
  [[nodiscard]] i64 value_of(i64 canonical) const {
    AID_DCHECK(canonical >= 0 && canonical < count_);
    return start_ + canonical * step_;
  }

  [[nodiscard]] i64 start() const { return start_; }
  [[nodiscard]] i64 step() const { return step_; }

 private:
  i64 start_;
  i64 step_;
  i64 count_;
};

}  // namespace aid::sched
