// Per-shape scheduler cache: amortizing per-construct scheduler
// construction across loop executions.
//
// Every work-sharing construct needs a LoopScheduler armed for its trip
// count; building one from scratch costs ~5 small allocations (scheduler +
// per-thread records + sharded pool segments), ~0.3-0.5 µs visible in the
// fork/join bench's dispatch_first_ns on sharded configs. Data-parallel
// applications execute the same loops thousands of times, and schedulers
// are documented reusable via reset() (loop_scheduler.h) — so the runtime
// layers (rt::Team, pool::PoolManager app leases, the GOMP work-share
// ring) keep a small cache of instances keyed by *ScheduleSpec shape* and
// re-arm a cached instance instead of calling make_scheduler per
// construct. reset() re-arms everything per-execution, including the
// sharded pool's proportional split and the per-thread removal counters
// (sharded_work_share.h), so a reused instance is observably fresh.
//
// Shape key: the full ScheduleSpec (kind + chunk + AID parameters — its
// defaulted operator==). The trip count is NOT part of the key; it is
// passed to reset(). The executing layout is not part of the key either:
// a cache belongs to exactly one layout generation, and the owner calls
// invalidate() whenever that layout changes (a pool repartition) — cached
// instances bake in the old layout's thread count and shard topology, so
// they must never survive it.
//
// Up to kInstancesPerShape (= the runtime's chain-ring depth) *idle*
// instances are retained per shape: a pipelined chain can hold that many
// constructs of one shape in flight at once, and each needs its own
// instance. Busy instances are not bounded here — the generation rings
// bound them structurally.
//
// Thread safety: acquire/release/invalidate take an internal mutex (the
// GOMP surface's work-share publication races run-ahead threads against
// each other), but the critical sections are pointer shuffles — the
// actual reset()/construction runs outside the lock on the instance the
// caller now owns.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "sched/loop_scheduler.h"

namespace aid::sched {

class SchedulerCache {
 public:
  /// Idle instances retained per ScheduleSpec shape. Matches the runtime
  /// chain rings (rt::Team::kChainRing / pool::PoolJob::kChainRing): a
  /// chain can keep that many same-shape constructs in flight, each
  /// needing a live instance.
  static constexpr usize kInstancesPerShape = 8;

  SchedulerCache() = default;
  SchedulerCache(const SchedulerCache&) = delete;
  SchedulerCache& operator=(const SchedulerCache&) = delete;

  /// A scheduler for `count` iterations under `spec` on `layout`: a cached
  /// idle instance of the same shape re-armed via reset(count), or a fresh
  /// make_scheduler(spec, count, layout, topo) on miss. The instance stays
  /// owned by the cache; the caller must release() it after the construct
  /// fully completed and its stats were read. The caller's layout/topo
  /// must be the ones this cache was (in)validated for.
  [[nodiscard]] LoopScheduler* acquire(const ScheduleSpec& spec, i64 count,
                                       const platform::TeamLayout& layout,
                                       const ShardTopology& topo);

  /// Return an acquired instance. It becomes reusable immediately —
  /// callers release only after the construct's completion gate closed and
  /// stats() was consumed. Instances acquired before an invalidate() are
  /// destroyed here instead of re-entering the pool.
  void release(LoopScheduler* sched);

  /// Drop every idle instance and doom the busy ones (destroyed on their
  /// release). Owners call this when the executing layout changes — a
  /// pool repartition — because cached instances bake in the old layout's
  /// thread count and shard topology.
  void invalidate();

  /// Observability (tests, bench commentary): constructs served by a
  /// re-armed instance vs. fresh constructions.
  [[nodiscard]] u64 hits() const;
  [[nodiscard]] u64 misses() const;

 private:
  struct Entry {
    ScheduleSpec spec;
    std::unique_ptr<LoopScheduler> sched;
    bool busy = false;
    u64 epoch = 0;  ///< invalidation generation the instance was built in
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  u64 epoch_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace aid::sched
