// Per-core-type sharded iteration pool.
//
// The single fetch-add WorkShare (work_share.h) makes every removal an RMW
// on one cache line shared by all clusters of an asymmetric CPU; at high
// thread counts the runtime overhead the paper measures (Sec. 4.2) is
// dominated by that cross-cluster coherence traffic, not by useful
// removals. ShardedWorkShare splits the canonical space into one shard per
// core type (generalized to N clusters via ShardTopology): each shard's
// hot {next, end} state lives alone in its own cache line and is written
// only by its home cluster on the fast path, so the common-case removal is
// a *cluster-local* RMW. Cross-cluster traffic happens per *steal* or per
// *bulk rebalance* — not per chunk.
//
// Mechanics (full design note + memory-ordering argument in
// src/sched/README.md):
//
//  * Each shard owns a small ring of SEGMENTS. A segment is ONE atomic
//    64-bit word packing {next:32 | end:32}. A removal is a fetch_add of
//    `want` on the low half — the same instruction count as WorkShare —
//    and because the returned word carries both cursor and bound, the
//    clamp is computed from an atomic snapshot: no torn {next, end} pair
//    can ever be observed. Takes larger than kFetchAddWantMax go through a
//    CAS so the low half cannot carry into the end bits.
//  * take(want, tid, home): fetch_add on the home shard; when home drains,
//    scan the other shards — migrating HALF of a fat victim's remainder
//    into the home shard in one CAS (bulk rebalance) or, for thin
//    victims, removing a single chunk remotely (steal).
//  * rebalance(weights): the estimator-driven path — the AID schedulers
//    feed their measured speedup factors in after each phase, and one
//    contiguous block moves from the shard that would finish late to the
//    shard that would finish early.
//  * Exactly-once: every ownership transfer (take, cut, install) is a
//    single CAS/fetch_add on one segment word, so transfers linearize per
//    segment; a cut [e-b, e) can only succeed when the same atomic
//    snapshot shows next <= e-b, and takers advance next only — the cut
//    block can never overlap a claim (README has the full argument).
//
// Fallback: with one shard (AID_SHARDS=1, a uniform layout, a
// default-constructed topology, or a loop too large for the 32-bit
// packing) the pool delegates to a plain WorkShare — bit-for-bit the
// classic single-pool behavior, so symmetric layouts cannot regress.
#pragma once

#include <atomic>
#include <vector>

#include "common/check.h"
#include "common/padded.h"
#include "common/types.h"
#include "sched/iteration_space.h"
#include "sched/shard_topology.h"
#include "sched/work_share.h"

namespace aid::sched {

class ShardedWorkShare {
 public:
  /// Segment slots per shard: slot 0 holds the shard's initial split;
  /// the rest accept migrated blocks. Bounds concurrent in-flight
  /// migrations per shard, scan cost stays a few relaxed loads.
  static constexpr int kSegsPerShard = 4;
  /// Loops with count >= this fall back to the single-pool path (the
  /// packed halves are 32-bit).
  static constexpr i64 kPackedCountLimit = i64{1} << 31;
  /// Takes larger than this use CAS instead of fetch_add so worst-case
  /// overshoot (one want per thread between probe and drain) can never
  /// carry into the end bits: count + threads * kFetchAddWantMax < 2^32.
  static constexpr i64 kFetchAddWantMax = i64{1} << 24;
  /// Minimum remainder a foreign shard must hold before the steal path
  /// bulk-migrates instead of removing one chunk remotely.
  static constexpr i64 kBulkStealMin = 64;

  /// `topo` assigns every tid a home shard (empty topology = one shard:
  /// the classic pool, with zero extra allocation); `nthreads` sizes the
  /// per-thread counter slots, as in WorkShare.
  explicit ShardedWorkShare(ShardTopology topo = {}, int nthreads = 1);

  /// Arm for a loop of `count` canonical iterations, split across shards
  /// proportional to the topology's nominal capacities.
  void reset(i64 count);
  /// Arm with explicit per-shard weights (one per shard; the AID
  /// schedulers pass measured speedup-factor aggregates).
  void reset(i64 count, const std::vector<double>& weights);

  /// Remove up to `want` iterations, preferring the caller's home shard.
  /// `home` is the ThreadContext's home-shard id (clamped defensively).
  /// Returns an empty range only after every shard looked drained.
  IterRange take(i64 want, int tid, int home) {
    AID_DCHECK(want >= 1);
    if (single_mode_) {
      return single_.take(want, tid);
    }
    if (poisoned_.load(std::memory_order_relaxed)) return {count_, count_};
    AID_CHECK(tid >= 0 && tid < nthreads_);
    if (home < 0 || home >= nshards_) home = 0;
    IterRange r = take_from_shard(home, want);
    if (!r.empty()) {
      note_removal(tid, /*local=*/true);
      return r;
    }
    return take_stealing(want, tid, home);
  }

  /// Remove with a size recomputed from the *segment's* remaining count
  /// (guided semantics become per-cluster under sharding; with one shard
  /// this is exactly WorkShare::take_adaptive). Pure CAS — never
  /// overshoots, so it needs no fetch_add want cap.
  template <typename WantFn>
  IterRange take_adaptive(WantFn&& want_of, int tid, int home) {
    if (single_mode_) {
      return single_.take_adaptive(static_cast<WantFn&&>(want_of), tid);
    }
    if (poisoned_.load(std::memory_order_relaxed)) return {count_, count_};
    AID_CHECK(tid >= 0 && tid < nthreads_);
    if (home < 0 || home >= nshards_) home = 0;
    for (int k = 0; k < nshards_; ++k) {
      const int s = (home + k) % nshards_;
      const int hint = hint_of(s).load(std::memory_order_relaxed);
      for (int j = 0; j < kSegsPerShard; ++j) {
        int i = hint + j;
        if (i >= kSegsPerShard) i -= kSegsPerShard;
        std::atomic<u64>& word = seg(s, i);
        u64 w = word.load(std::memory_order_acquire);
        for (;;) {
          const i64 n = unpack_next(w);
          const i64 e = unpack_end(w);
          if (n >= e) break;
          i64 want = want_of(e - n);
          AID_DCHECK(want >= 1);
          const i64 stop = n + want < e ? n + want : e;
          if (word.compare_exchange_weak(w, pack(stop, e),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
            if (j != 0) hint_of(s).store(i, std::memory_order_relaxed);
            note_removal(tid, /*local=*/k == 0);
            return {n, stop};
          }
        }
      }
    }
    return {count_, count_};
  }

  /// Cancellation poison. Sharded mode uses a FLAG rather than draining
  /// the segment words: segment stores would race the migrate/install
  /// protocol (whose merge-back path asserts an end it believes only the
  /// migration token holder can move). One relaxed flag load per take is
  /// the whole fast-path cost; cancel latency stays one chunk.
  void poison() {
    if (single_mode_) {
      single_.poison();
      return;
    }
    poisoned_.store(true, std::memory_order_release);
  }

  /// Estimator-driven bulk rebalance: `weights[s]` is shard s's measured
  /// progress rate (e.g. sum over member threads of their speedup
  /// factors). Moves one contiguous block of at least `min_block`
  /// iterations from the most over-provisioned shard (vs. a
  /// weight-proportional split of the global remainder) to the most
  /// under-provisioned one. Returns true when a block actually moved.
  /// Safe to call concurrently with takes/steals from any thread.
  bool rebalance(const std::vector<double>& weights, i64 min_block, int tid);

  /// Iterations not yet handed out (may be stale under concurrency).
  [[nodiscard]] i64 remaining() const {
    if (single_mode_) return single_.remaining();
    i64 sum = 0;
    for (int s = 0; s < nshards_; ++s) sum += remaining_of_shard(s);
    return sum;
  }

  [[nodiscard]] i64 remaining_of_shard(int s) const {
    if (single_mode_) return single_.remaining();
    i64 sum = 0;
    for (int i = 0; i < kSegsPerShard; ++i) {
      const u64 w = seg(s, i).load(std::memory_order_acquire);
      const i64 n = unpack_next(w);
      const i64 e = unpack_end(w);
      if (n < e) sum += e - n;
    }
    return sum;
  }

  [[nodiscard]] i64 end() const { return count_; }
  [[nodiscard]] int nshards() const { return single_mode_ ? 1 : nshards_; }
  [[nodiscard]] int home_of(int tid) const {
    return single_mode_ ? 0 : topo_.home_of(tid);
  }

  /// Successful removals (all shards; parity with WorkShare::removals()).
  [[nodiscard]] i64 removals() const {
    if (single_mode_) return single_.removals();
    i64 sum = 0;
    for (const auto& c : counters_)
      sum += c.local.load(std::memory_order_relaxed) +
             c.remote.load(std::memory_order_relaxed);
    return sum;
  }

  [[nodiscard]] i64 removals_of(int tid) const {
    if (single_mode_) return single_.removals_of(tid);
    AID_CHECK(tid >= 0 && tid < nthreads_);
    const Counters& c = counters_[static_cast<usize>(tid)];
    return c.local.load(std::memory_order_relaxed) +
           c.remote.load(std::memory_order_relaxed);
  }

  /// Removals served by the taker's home shard. In single-shard mode every
  /// removal is "home" by definition (there is no cross-cluster line).
  [[nodiscard]] i64 local_removals() const {
    if (single_mode_) return single_.removals();
    return sum_counter(&Counters::local);
  }
  /// Removals served by a foreign shard (chunk steals).
  [[nodiscard]] i64 remote_removals() const {
    return single_mode_ ? 0 : sum_counter(&Counters::remote);
  }
  /// Contiguous blocks migrated between shards (steal-path bulk moves +
  /// estimator-driven rebalances).
  [[nodiscard]] i64 rebalances() const {
    return single_mode_ ? 0 : sum_counter(&Counters::rebalances);
  }
  /// Total iterations carried by those blocks.
  [[nodiscard]] i64 rebalanced_iters() const {
    return single_mode_ ? 0 : sum_counter(&Counters::rebalanced_iters);
  }

 private:
  /// Per-thread stat slots, one cache line each: the hot path touches only
  /// the caller's own line (relaxed adds), mirroring WorkShare's removal
  /// counters.
  struct alignas(kCacheLineBytes) Counters {
    std::atomic<i64> local{0};
    std::atomic<i64> remote{0};
    std::atomic<i64> rebalances{0};
    std::atomic<i64> rebalanced_iters{0};
  };

  static constexpr u64 kNextMask = 0xffffffffULL;
  [[nodiscard]] static u64 pack(i64 next, i64 end) {
    return (static_cast<u64>(end) << 32) |
           (static_cast<u64>(next) & kNextMask);
  }
  [[nodiscard]] static i64 unpack_next(u64 w) {
    return static_cast<i64>(w & kNextMask);
  }
  [[nodiscard]] static i64 unpack_end(u64 w) {
    return static_cast<i64>(w >> 32);
  }

  [[nodiscard]] std::atomic<u64>& seg(int shard, int i) {
    return segs_[static_cast<usize>(shard * kSegsPerShard + i)].value;
  }
  [[nodiscard]] const std::atomic<u64>& seg(int shard, int i) const {
    return segs_[static_cast<usize>(shard * kSegsPerShard + i)].value;
  }
  [[nodiscard]] std::atomic<int>& hint_of(int shard) {
    return hints_[static_cast<usize>(shard)].value;
  }

  void note_removal(int tid, bool local) {
    Counters& c = counters_[static_cast<usize>(tid)];
    (local ? c.local : c.remote).fetch_add(1, std::memory_order_relaxed);
  }

  /// One shard's take: read-only drain probe per segment, then one
  /// fetch_add (or CAS for oversized wants). Empty when the whole shard
  /// looked drained. The per-shard hint remembers the likely-live segment
  /// so the common case probes exactly one word even after migrations
  /// populated higher slots (it is advisory: stale hints cost scan steps,
  /// never correctness).
  IterRange take_from_shard(int s, i64 want) {
    const int hint = hint_of(s).load(std::memory_order_relaxed);
    for (int j = 0; j < kSegsPerShard; ++j) {
      int i = hint + j;
      if (i >= kSegsPerShard) i -= kSegsPerShard;
      std::atomic<u64>& word = seg(s, i);
      u64 w = word.load(std::memory_order_acquire);
      i64 n = unpack_next(w);
      i64 e = unpack_end(w);
      if (n >= e) continue;  // drained segment: stay read-only
      if (want <= kFetchAddWantMax) {
        const u64 prev =
            word.fetch_add(static_cast<u64>(want), std::memory_order_acq_rel);
        n = unpack_next(prev);
        e = unpack_end(prev);
        if (n >= e) continue;  // lost the drain race: bounded overshoot
        if (j != 0) hint_of(s).store(i, std::memory_order_relaxed);
        return {n, n + want < e ? n + want : e};
      }
      // Oversized want (AID block takes): CAS so the low half can never
      // carry into the end bits.
      for (;;) {
        n = unpack_next(w);
        e = unpack_end(w);
        if (n >= e) break;
        const i64 stop = n + want < e ? n + want : e;
        if (word.compare_exchange_weak(w, pack(stop, e),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
          if (j != 0) hint_of(s).store(i, std::memory_order_relaxed);
          return {n, stop};
        }
      }
    }
    return {count_, count_};
  }

  /// Cold path of take(): home drained — bulk-migrate from a fat foreign
  /// shard or chunk-steal from a thin one.
  IterRange take_stealing(i64 want, int tid, int home);

  /// Cut up to `want_block` iterations (at least `min_block`, leaving the
  /// donor at least `min_block`) off the top of shard `from` and install
  /// them as a fresh segment of shard `to`. Serialized by migrating_ so a
  /// cut block can always be merged back if `to` has no free segment.
  bool migrate(int from, int to, i64 want_block, i64 min_block, int tid);

  /// Install [begin, end) into a drained segment slot of shard `to`.
  /// Caller holds migrating_. Returns false when all slots are live.
  bool install(int to, i64 begin, i64 end);

  [[nodiscard]] i64 sum_counter(std::atomic<i64> Counters::* member) const {
    i64 sum = 0;
    for (const auto& c : counters_)
      sum += (c.*member).load(std::memory_order_relaxed);
    return sum;
  }

  ShardTopology topo_;
  int nshards_ = 1;
  int nthreads_ = 1;
  bool config_single_ = true;  ///< topology has one shard: always delegate
  bool single_mode_ = true;    ///< set per reset(): 1 shard or oversized loop
  i64 count_ = 0;
  WorkShare single_;  ///< the classic pool, used whenever single_mode_
  std::vector<Padded<std::atomic<u64>>> segs_;  // shard-major segment words
  std::vector<Padded<std::atomic<int>>> hints_;  // per shard: live-seg hint
  std::vector<Counters> counters_;              // one per thread
  /// Migration mutual exclusion (try-acquire only — contenders fall back
  /// to plain chunk steals, so no take ever blocks on it). Single-writer
  /// migration is what makes the merge-back path of a failed install
  /// always applicable: nobody else can have moved the donor's end.
  std::atomic<int> migrating_{0};
  /// Cancellation poison flag (sharded mode only; see poison()).
  std::atomic<bool> poisoned_{false};
};

}  // namespace aid::sched
