#include "sched/aid_block_sched.h"

#include <cmath>

#include "common/check.h"

namespace aid::sched {

AidBlockScheduler::AidBlockScheduler(i64 count,
                                     const platform::TeamLayout& layout,
                                     i64 chunk, double aid_fraction,
                                     std::optional<double> offline_sf,
                                     std::string name, ShardTopology topo)
    : pool_(std::move(topo), layout.nthreads()),
      estimator_(layout.num_core_types()),
      count_(count),
      chunk_(chunk > 0 ? chunk : 1),
      aid_fraction_(aid_fraction),
      offline_sf_(offline_sf),
      name_(std::move(name)),
      nthreads_(layout.nthreads()),
      per_thread_(static_cast<usize>(layout.nthreads())) {
  AID_CHECK(count >= 0);
  AID_CHECK_MSG(aid_fraction > 0.0 && aid_fraction <= 1.0,
                "AID fraction must be in (0, 1]");
  threads_per_type_.resize(static_cast<usize>(layout.num_core_types()));
  for (int t = 0; t < layout.num_core_types(); ++t)
    threads_per_type_[static_cast<usize>(t)] = layout.threads_of_type(t);
  // Nominal speeds (sampling fallback) come from the platform via the
  // layout's per-thread view; unpopulated types default to 1.0.
  nominal_speed_.assign(static_cast<usize>(layout.num_core_types()), 1.0);
  type_of_tid_.resize(static_cast<usize>(layout.nthreads()));
  for (int tid = 0; tid < layout.nthreads(); ++tid) {
    nominal_speed_[static_cast<usize>(layout.core_type_of(tid))] =
        layout.speed_of(tid);
    type_of_tid_[static_cast<usize>(tid)] = layout.core_type_of(tid);
  }

  sf_.resize(static_cast<usize>(layout.num_core_types()), 1.0);
  reset(count);
}

void AidBlockScheduler::reset(i64 count) {
  AID_CHECK(count >= 0);
  count_ = count;
  estimator_.reset(nthreads_);
  for (auto& pt : per_thread_) *pt = PerThread{};
  k_ = 0.0;
  reported_sf_ = 0.0;
  aid_ready_.store(false, std::memory_order_release);

  if (offline_sf_) {
    // Fig. 9 variant: no sampling. SF vector = nominal shape with the
    // fastest type pinned to the supplied value.
    for (usize t = 0; t < sf_.size(); ++t) sf_[t] = nominal_speed_[t];
    sf_.back() = *offline_sf_;
    sf_.front() = 1.0;
    k_ = aid_k(aid_fraction_ * static_cast<double>(count_), threads_per_type_,
               sf_);
    reported_sf_ = sf_.back();
    // No sampling phase will rebalance later: arm the shards directly
    // proportional to the offline SF so the single AID block per thread is
    // served by its home shard. One arm, with the right weights (reset is
    // single-threaded, so computing them first is safe).
    if (pool_.nshards() > 1) {
      pool_.reset(count, shard_rates());
    } else {
      pool_.reset(count);
    }
    for (auto& pt : per_thread_) pt->state = State::kAid;
    aid_ready_.store(true, std::memory_order_release);
  } else {
    pool_.reset(count);
  }
}

std::vector<double> AidBlockScheduler::shard_rates() const {
  std::vector<double> rate(static_cast<usize>(pool_.nshards()), 0.0);
  for (int t = 0; t < nthreads_; ++t)
    rate[static_cast<usize>(pool_.home_of(t))] +=
        sf_[static_cast<usize>(type_of_tid_[static_cast<usize>(t)])];
  return rate;
}

void AidBlockScheduler::finalize(ThreadContext& tc) {
  // Called by exactly one thread (the last to record a sample) before any
  // other thread can observe aid_ready_ == true.
  sf_ = estimator_.speedup_factors(nominal_speed_);
  k_ = aid_k(aid_fraction_ * static_cast<double>(count_), threads_per_type_,
             sf_);
  // Report the SF of the fastest populated type (the paper's big-to-small
  // speedup factor for the loop).
  for (usize t = sf_.size(); t-- > 0;) {
    if (threads_per_type_[t] > 0) {
      reported_sf_ = sf_[t];
      break;
    }
  }
  if (pool_.nshards() > 1) {
    // Pre-position the shards for the uneven AID blocks: one bulk
    // migration toward the measured per-cluster rates, instead of every
    // thread clamping short at home and draining the tail remotely.
    pool_.rebalance(shard_rates(), /*min_block=*/chunk_, tc.tid);
  }
  aid_ready_.store(true, std::memory_order_release);
}

i64 AidBlockScheduler::target_of_type(int core_type) const {
  AID_CHECK(core_type >= 0 &&
            core_type < static_cast<int>(threads_per_type_.size()));
  return std::llround(sf_[static_cast<usize>(core_type)] * k_);
}

bool AidBlockScheduler::take_aid_block(ThreadContext& tc, PerThread& pt,
                                       IterRange& out) {
  pt.state = State::kDrain;
  const i64 want = target_of_type(tc.core_type) - pt.delta;
  if (want >= 1) {
    const IterRange r = pool_.take(want, tc.tid, tc.shard);
    if (!r.empty()) {
      out = r;
      return true;
    }
    return false;  // pool exhausted: loop over for this thread
  }
  // Thread already covered its share while waiting; fall through to drain.
  return drain(out, tc.tid, tc.shard);
}

bool AidBlockScheduler::drain(IterRange& out, int tid, int shard) {
  const IterRange r = pool_.take(chunk_, tid, shard);
  if (r.empty()) return false;
  out = r;
  return true;
}

bool AidBlockScheduler::next(ThreadContext& tc, IterRange& out) {
  // Cancellation: poison the pool so every state of every thread's machine
  // funnels to its drained-pool exit (each state takes, sees empty, and
  // returns false — including kWait, which never spins inside next()).
  if (tc.cancelled()) [[unlikely]] {
    pool_.poison();
    out = {pool_.end(), pool_.end()};
    return false;
  }
  AID_DCHECK(tc.tid >= 0 && tc.tid < nthreads_);
  PerThread& pt = *per_thread_[static_cast<usize>(tc.tid)];

  switch (pt.state) {
    case State::kSampling: {
      pt.sample_start = tc.now();
      const IterRange r = pool_.take(chunk_, tc.tid, tc.shard);
      if (r.empty()) {
        // Loop smaller than the team's sampling demand: this thread has
        // nothing to sample. Still contribute to the completion count so
        // the SF computation is not stalled for the others.
        if (estimator_.record(tc.core_type, 0, 0)) finalize(tc);
        pt.state = State::kDrain;
        return false;
      }
      pt.sampled = r.size();
      pt.delta += r.size();
      pt.state = State::kAfterSampling;
      out = r;
      return true;
    }

    case State::kAfterSampling: {
      const Nanos elapsed = tc.now() - pt.sample_start;
      if (estimator_.record(tc.core_type, elapsed, pt.sampled)) finalize(tc);
      pt.state = State::kWait;
      [[fallthrough]];
    }

    case State::kWait: {
      if (!aid_ready_.load(std::memory_order_acquire)) {
        // SAMPLING_WAIT: keep the core busy with dynamic chunk steals.
        const IterRange r = pool_.take(chunk_, tc.tid, tc.shard);
        if (r.empty()) return false;
        pt.delta += r.size();
        out = r;
        return true;
      }
      pt.state = State::kAid;
      [[fallthrough]];
    }

    case State::kAid:
      return take_aid_block(tc, pt, out);

    case State::kDrain:
      return drain(out, tc.tid, tc.shard);
  }
  AID_CHECK(false);
  return false;
}

SchedulerStats AidBlockScheduler::stats() const {
  return {.pool_removals = pool_.removals(),
          .estimated_sf = reported_sf_,
          .aid_phases = aid_ready() ? 1 : 0,
          .local_removals = pool_.local_removals(),
          .steal_removals = pool_.remote_removals(),
          .shard_rebalances = pool_.rebalances()};
}

}  // namespace aid::sched
