// Shard layout for per-core-type iteration pools.
//
// A ShardTopology maps every team thread to a *home shard* — the pool
// partition whose hot {next, end} line only same-cluster threads write on
// the fast path (see sched/sharded_work_share.h and src/sched/README.md).
// Shards correspond to the populated core types of a TeamLayout: on a
// big.LITTLE team there is one big-core shard and one small-core shard, so
// the self-scheduling fetch-and-add traffic of each cluster stays
// cluster-local (the Catalán et al. / Krishna & Balachandran partitioning
// argument, PAPERS.md).
//
// The topology is *mechanism description*, not policy: it is computed once
// per construct from the layout that will execute it, which is what keeps
// shard membership coherent across pool repartitions — a partition change
// commits between ring entries (pool/pool_manager.cc), and every entry's
// scheduler is built from the layout current at publish time.
//
// AID_SHARDS environment override (read by from_layout()):
//   unset / 0  — auto: one shard per populated core type;
//   1          — single-shard fallback: bit-for-bit the classic WorkShare
//                path (the symmetric-layout / regression-proof mode);
//   N > 1      — at most N shards (excess core types merge into the last).
#pragma once

#include <vector>

#include "common/types.h"
#include "platform/team_layout.h"

namespace aid::sched {

struct ShardTopology {
  /// tid -> home shard id. Empty means "single shard" (the default for
  /// every caller that does not opt into sharding, e.g. the simulator).
  std::vector<int> home_of_tid;
  /// shard -> nominal capacity (sum of member threads' nominal speeds);
  /// the initial iteration split is proportional to this.
  std::vector<double> capacity;

  [[nodiscard]] int nshards() const {
    return capacity.empty() ? 1 : static_cast<int>(capacity.size());
  }

  [[nodiscard]] int home_of(int tid) const {
    if (home_of_tid.empty()) return 0;
    return tid >= 0 && static_cast<usize>(tid) < home_of_tid.size()
               ? home_of_tid[static_cast<usize>(tid)]
               : 0;
  }

  /// One shard holding every thread — the classic single-pool behavior.
  [[nodiscard]] static ShardTopology single(int nthreads);

  /// One shard per populated core type of `layout`, honoring the
  /// AID_SHARDS environment override (see file comment).
  [[nodiscard]] static ShardTopology from_layout(
      const platform::TeamLayout& layout);

  /// Explicit shard count (<= populated core types; <=0 means auto).
  [[nodiscard]] static ShardTopology from_layout(
      const platform::TeamLayout& layout, int requested_shards);
};

}  // namespace aid::sched
