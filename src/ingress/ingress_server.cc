#include "ingress/ingress_server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "common/check.h"
#include "common/env.h"
#include "ingress/shm_ring.h"
#include "workloads/serve_kernel.h"

namespace aid::ingress {

namespace {

/// Truncate an exception's what() for the wire (ERROR frames carry a
/// diagnostic, not a payload).
std::string truncated_what(const std::exception_ptr& e) {
  if (e == nullptr) return "unknown error";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    std::string what = ex.what();
    if (what.size() > wire::kWireMaxString)
      what.resize(wire::kWireMaxString);
    return what;
  } catch (...) {
    return "non-std::exception thrown by workload body";
  }
}

void append_bytes(std::vector<u8>& dst, const std::vector<u8>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Ring-backed data plane of one connection. Loop-thread owned: created
/// at SHM_REQ, drained and written only on the loop thread, torn down in
/// close_conn (which runs on the loop thread, or on the destructor's
/// thread after the loop has joined) — so no lock guards ring access.
struct ShmConn {
  shm::Segment seg;
  int event_fd = -1;        ///< doorbell the client rings when we're parked
  shm::RingRx submit_rx;    ///< client→server SUBMIT slots
  shm::RingTx comp_tx;      ///< server→client terminal(+CREDIT) slots
};

// ---------------------------------------------------------------- plumbing

/// One in-flight wire job: the ticket plus the checksum closure harvested
/// at delivery. Lives in Conn::jobs keyed by req_id.
struct PendingJob {
  serve::JobTicket ticket;
  std::function<double()> checksum;
};

struct IngressServer::Conn {
  int fd = -1;
  bool hello_done = false;
  std::string tenant = "?";
  FrameBuffer rx;  ///< loop-thread only

  // Everything below is shared between the loop thread and completion
  // hooks firing on dispatcher threads.
  std::mutex mu;
  bool closed = false;
  std::vector<u8> tx;
  std::unordered_map<u64, PendingJob> jobs;

  std::unique_ptr<ShmConn> ring;  ///< loop-thread only (see ShmConn)
};

/// State shared with completion hooks. Hooks capture shared_ptr<Core> and
/// shared_ptr<Conn> — never the IngressServer itself — so a hook firing
/// after ~IngressServer (the node resolving a cancelled straggler) only
/// touches memory that lives until the last hook releases it.
struct IngressServer::Core {
  struct Completion {
    std::shared_ptr<Conn> conn;
    u64 req_id = 0;
    serve::JobTicket ticket;
    std::function<double()> checksum;
  };

  std::mutex mu;  ///< guards completions + stats + tenants
  std::vector<Completion> completions;
  Stats stats;
  std::map<std::string, TenantStats> tenants;
  int wake_wr = -1;  ///< write end of the wake pipe; owned by Core
  bool loop_alive = true;

  ~Core() {
    if (wake_wr >= 0) ::close(wake_wr);
  }

  void wake() {
    const std::scoped_lock lock(mu);
    if (!loop_alive) return;  // nobody to wake; completions drain in dtor
    const u8 byte = 1;
    // Non-blocking pipe: EAGAIN (already signalled) is success here.
    (void)::write(wake_wr, &byte, 1);
  }

  void push_completion(Completion c) {
    {
      const std::scoped_lock lock(mu);
      completions.push_back(std::move(c));
    }
    wake();
  }
};

// ------------------------------------------------------------------ setup

IngressServer::Config IngressServer::Config::from_env() {
  Config c;
  c.socket_path = env::get_string("AID_INGRESS_SOCKET", "");
  c.credit_window = static_cast<u32>(
      env::get_int_at_least("AID_INGRESS_CREDITS", c.credit_window, 1));
  c.shm_submit_slots = static_cast<u32>(env::get_int_at_least(
      "AID_INGRESS_SHM_SLOTS", c.shm_submit_slots, 0));
  c.shm_hot_ns =
      env::get_int_at_least("AID_INGRESS_SHM_HOT_US", c.shm_hot_ns / 1000, 0) *
      1000;
  return c;
}

IngressServer::IngressServer(serve::ServeNode& node, Config config)
    : node_(node), config_(std::move(config)), core_(std::make_shared<Core>()) {
  config_.credit_window = std::max<u32>(config_.credit_window, 1);
  if (config_.socket_path.empty())
    throw std::runtime_error("ingress: empty socket path");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("ingress: socket path too long: " +
                             config_.socket_path);
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0)
    throw std::runtime_error("ingress: socket(): " +
                             std::string(std::strerror(errno)));
  // The server owns its path: a stale socket file from a crashed
  // predecessor is removed, a live one is replaced (single-owner model).
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("ingress: bind/listen " + config_.socket_path +
                             ": " + err);
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("ingress: pipe2(): " +
                             std::string(std::strerror(errno)));
  }
  wake_rd_ = pipe_fds[0];
  core_->wake_wr = pipe_fds[1];

  thread_ = std::thread([this] { loop(); });
}

IngressServer::~IngressServer() {
  {
    const std::scoped_lock lock(core_->mu);
    core_->loop_alive = false;
  }
  // loop_alive is checked under core_->mu inside the loop as its stop
  // flag; one direct write wakes a loop parked in poll().
  const u8 byte = 1;
  (void)::write(core_->wake_wr, &byte, 1);
  thread_.join();

  // Cancel whatever is still in flight and close every socket. The jobs
  // resolve inside the node (possibly after this destructor returns);
  // their hooks only touch Core/Conn, both kept alive by the hooks'
  // own shared_ptrs.
  for (const auto& conn : conns_) close_conn(conn);
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_rd_);
  ::unlink(config_.socket_path.c_str());
}

IngressServer::Stats IngressServer::stats() const {
  const std::scoped_lock lock(core_->mu);
  return core_->stats;
}

TenantStats IngressServer::tenant_stats(const std::string& tenant) const {
  const std::scoped_lock lock(core_->mu);
  const auto it = core_->tenants.find(tenant);
  return it != core_->tenants.end() ? it->second : TenantStats{};
}

// ------------------------------------------------------------- event loop

void IngressServer::loop() {
  std::vector<pollfd> fds;
  // fds[i] for i >= 2 pairs with refs[i - 2]: the connection plus whether
  // the entry is its doorbell eventfd — ring-backed connections contribute
  // two pollfds, so index math on conns_ alone can't name them.
  std::vector<std::pair<std::shared_ptr<Conn>, bool>> refs;
  i64 hot_until = 0;
  while (true) {
    {
      const std::scoped_lock lock(core_->mu);
      if (!core_->loop_alive) return;
    }

    fds.clear();
    refs.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    bool any_ring = false;
    for (const auto& conn : conns_) {
      short events = POLLIN;
      {
        const std::scoped_lock lock(conn->mu);
        if (!conn->tx.empty()) events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
      refs.push_back({conn, false});
      if (conn->ring != nullptr) {
        any_ring = true;
        fds.push_back({conn->ring->event_fd, POLLIN, 0});
        refs.push_back({conn, true});
      }
    }

    // Hot vs parked. After recent ring activity the loop polls with zero
    // timeout and yields when idle, so a ring handoff costs a scheduler
    // donation instead of an eventfd wake out of a sleeping poll (which
    // alone would blow the sub-µs budget). Outside the hot window it
    // announces kServerParked — the client's cue that publishing now
    // needs a doorbell — then re-checks the rings for a publish that
    // raced the announcement, and only then blocks. The finite timeout
    // stays as the belt-and-braces backstop for any lost wake.
    int timeout = 250;
    const bool hot = any_ring && now_ns() < hot_until;
    if (hot) {
      timeout = 0;
    } else if (any_ring) {
      for (const auto& conn : conns_)
        if (conn->ring != nullptr)
          conn->ring->seg.hdr()->server_state.store(shm::kServerParked,
                                                    std::memory_order_seq_cst);
      for (const auto& conn : conns_)
        if (conn->ring != nullptr && shm_drain_ready(conn)) timeout = 0;
    }

    if (::poll(fds.data(), fds.size(), timeout) < 0 && errno != EINTR) return;

    if (any_ring) {
      for (const auto& conn : conns_)
        if (conn->ring != nullptr)
          conn->ring->seg.hdr()->server_state.store(shm::kServerHot,
                                                    std::memory_order_release);
    }

    if ((fds[1].revents & POLLIN) != 0) {
      u8 drain[64];
      while (::read(wake_rd_, drain, sizeof drain) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_ready();

    // Snapshot: close_conn during iteration mutates conns_ only at the
    // reap step below, never inside these handlers. A handler may close
    // the connection (resetting conn->ring), so the doorbell entry for
    // the same connection re-checks it.
    for (usize i = 2; i < fds.size(); ++i) {
      const auto& [conn, is_doorbell] = refs[i - 2];
      if (is_doorbell) {
        if (conn->ring != nullptr && (fds[i].revents & POLLIN) != 0) {
          u64 v = 0;
          (void)::read(conn->ring->event_fd, &v, sizeof v);
        }
        continue;
      }
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        conn_readable(conn);
      if ((fds[i].revents & POLLOUT) != 0) flush(conn);
    }

    // Rings are drained every round, doorbell or not: a hot-window round
    // has no doorbell (the whole point), and the peek is a single
    // acquire load per idle ring.
    usize ring_activity = 0;
    for (const auto& conn : conns_)
      if (conn->ring != nullptr) ring_activity += drain_shm(conn);
    ring_activity += drain_completions();
    if (ring_activity > 0) {
      hot_until = now_ns() + config_.shm_hot_ns;
    } else if (hot) {
      // Idle hot round: donate the CPU — the client or dispatcher this
      // loop is waiting on may need this very core.
      std::this_thread::yield();
    }

    // Reap connections closed this iteration.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::shared_ptr<Conn>& c) {
                                  const std::scoped_lock lock(c->mu);
                                  return c->closed;
                                }),
                 conns_.end());
  }
}

void IngressServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_.push_back(conn);
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.connections_accepted;
  }
}

void IngressServer::conn_readable(const std::shared_ptr<Conn>& conn) {
  // Bounded read per poll round: a client streaming bytes continuously
  // must not pin the single loop thread here (or grow conn->rx without
  // bound) while every other connection starves. Leftover kernel-buffer
  // data re-arms POLLIN on the next round (level-triggered), after the
  // frames below have been processed and other connections served.
  u8 buf[4096];
  usize budget = 2 * sizeof buf;
  while (budget > 0) {
    const ssize_t n =
        ::read(conn->fd, buf, std::min<usize>(budget, sizeof buf));
    if (n > 0) {
      conn->rx.append(buf, static_cast<usize>(n));
      budget -= static_cast<usize>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn);  // EOF or hard error: the client is gone
    return;
  }

  while (true) {
    Decoded d = conn->rx.next();
    if (d.status == DecodeStatus::kNeedMore) break;
    if (d.status == DecodeStatus::kBad) {
      protocol_error(conn, std::move(d.error));
      return;
    }
    {
      const std::scoped_lock lock(core_->mu);
      ++core_->stats.frames_decoded;
    }
    if (!handle_frame(conn, std::move(d.frame))) return;
  }
}

bool IngressServer::handle_frame(const std::shared_ptr<Conn>& conn,
                                 Frame&& frame) {
  switch (type_of(frame)) {
    case FrameType::kHello: {
      auto& m = std::get<HelloFrame>(frame);
      if (conn->hello_done) {
        protocol_error(conn, "duplicate HELLO");
        return false;
      }
      if (m.version != kProtocolVersion) {
        protocol_error(conn, "unsupported protocol version " +
                                 std::to_string(m.version) +
                                 " (server speaks " +
                                 std::to_string(kProtocolVersion) + ")");
        return false;
      }
      conn->hello_done = true;
      conn->tenant = m.client_name.empty() ? "anonymous" : m.client_name;
      {
        const std::scoped_lock lock(core_->mu);
        core_->tenants.try_emplace(conn->tenant);
      }
      const std::vector<u8> ack = encode(
          HelloAckFrame{kProtocolVersion, config_.credit_window});
      if (!append_tx(conn, ack)) {
        overflow_close(conn);
        return false;
      }
      flush(conn);
      return true;
    }
    case FrameType::kSubmit: {
      if (!conn->hello_done) {
        protocol_error(conn, "SUBMIT before HELLO");
        return false;
      }
      if (conn->ring != nullptr) {
        // One submission path per connection keeps the credit accounting
        // single-sourced; mixing transports would let a client race its
        // own window.
        protocol_error(conn, "socket SUBMIT on a ring-backed connection");
        return false;
      }
      return handle_submit(conn, std::move(std::get<SubmitFrame>(frame)));
    }
    case FrameType::kShmReq:
      return handle_shm_req(conn, std::get<ShmReqFrame>(frame).submit_slots);
    case FrameType::kCancel: {
      if (!conn->hello_done) {
        protocol_error(conn, "CANCEL before HELLO");
        return false;
      }
      const u64 req_id = std::get<CancelFrame>(frame).req_id;
      serve::JobTicket ticket;
      {
        const std::scoped_lock lock(conn->mu);
        const auto it = conn->jobs.find(req_id);
        if (it != conn->jobs.end()) ticket = it->second.ticket;
      }
      // Unknown req_id: legal race with the terminal frame — ignore.
      if (ticket.valid()) ticket.cancel(CancelReason::kUser);
      return true;
    }
    default:
      // Server->client frame types arriving at the server.
      protocol_error(conn, std::string("unexpected frame type ") +
                               to_string(type_of(frame)) + " from client");
      return false;
  }
}

bool IngressServer::handle_submit(const std::shared_ptr<Conn>& conn,
                                  SubmitFrame&& m) {
  // Terminal-without-admission paths: the reject frame plus the folded
  // CREDIT{1} that balances the credit this SUBMIT consumed. False: the
  // connection was dropped (tx backlog cap / ring violation — the peer
  // is not harvesting its responses).
  const auto reject = [&](std::string reason, bool no_credit) {
    {
      const std::scoped_lock lock(core_->mu);
      ++(no_credit ? core_->stats.no_credit_rejects
                   : core_->stats.invalid_rejects);
      ++core_->tenants[conn->tenant].rejected;
    }
    return respond(conn, encode_response(
                             conn, RejectedFrame{m.req_id, std::move(reason)}));
  };

  bool duplicate = false;
  bool over_window = false;
  {
    const std::scoped_lock lock(conn->mu);
    duplicate = conn->jobs.count(m.req_id) != 0;
    over_window = !duplicate && conn->jobs.size() >= config_.credit_window;
  }
  if (duplicate) {
    // Ambiguous accounting — unlike an unknown CANCEL this cannot be a
    // benign race, so it is connection-fatal.
    protocol_error(conn,
                   "duplicate in-flight req_id " + std::to_string(m.req_id));
    return false;
  }
  if (over_window) {
    // Enforced window: this SUBMIT never reaches the ServeNode, so a
    // client ignoring its credits cannot hold more than `window` jobs of
    // server memory. Surfaced as a frame, not a stall.
    return reject("credit window exceeded (" +
                      std::to_string(config_.credit_window) + " in flight)",
                  /*no_credit=*/true);
  }

  std::string error;
  auto kernel = workloads::make_serve_kernel(m.workload, m.count, &error);
  if (!kernel.has_value()) return reject(std::move(error), /*no_credit=*/false);

  serve::JobSpec spec;
  spec.qos = static_cast<serve::QosClass>(m.qos);
  spec.count = kernel->count;
  spec.sched = sched::ScheduleSpec::make(
      to_schedule_kind(static_cast<WireSched>(m.sched_kind)), m.chunk);
  spec.deadline_ns = m.deadline_ns;
  spec.body = std::move(kernel->body);

  // The socket never blocks a dispatcher: admission overload resolves the
  // ticket kRejected immediately (no queue wait, no lease) and surfaces
  // below as a REJECTED frame.
  serve::SubmitOptions opts;
  opts.on_full = serve::SubmitOptions::OnFull::kReject;
  serve::JobTicket ticket = node_.submit(std::move(spec), opts);

  {
    const std::scoped_lock lock(conn->mu);
    conn->jobs.emplace(m.req_id,
                       PendingJob{ticket, kernel->checksum});
    const std::scoped_lock core_lock(core_->mu);
    ++core_->stats.submits;
    ++core_->tenants[conn->tenant].submits;
    core_->stats.max_inflight =
        std::max<u64>(core_->stats.max_inflight, conn->jobs.size());
  }

  // Registered AFTER the jobs-map insert so a hook firing immediately
  // (inline reject) finds consistent state. The hook may run under the
  // admission mutex: push + one pipe write, nothing else.
  ticket.on_resolve(
      [core = core_, conn, req_id = m.req_id, ticket,
       checksum = kernel->checksum]() mutable {
        core->push_completion(
            {conn, req_id, std::move(ticket), std::move(checksum)});
      });
  return true;
}

usize IngressServer::drain_completions() {
  std::vector<Core::Completion> batch;
  {
    const std::scoped_lock lock(core_->mu);
    batch.swap(core_->completions);
  }
  usize ring_deliveries = 0;
  for (Core::Completion& c : batch) {
    // Harvest on the loop thread, no locks held: result, checksum (an
    // O(count) reduction) and frame encode all happen here.
    const serve::JobResult* r = c.ticket.poll();
    if (r == nullptr) continue;  // unreachable: hooks fire at resolve

    Frame terminal;
    u64 TenantStats::* bucket;
    switch (r->status) {
      case serve::JobStatus::kDone:
        terminal = CompletedFrame{c.req_id, static_cast<u8>(r->status),
                                  c.checksum(), r->queue_wait_ns,
                                  r->service_ns};
        bucket = &TenantStats::completed;
        break;
      case serve::JobStatus::kExpired:
      case serve::JobStatus::kCancelled:
        terminal = CompletedFrame{c.req_id, static_cast<u8>(r->status), 0.0,
                                  r->queue_wait_ns, r->service_ns};
        bucket = &TenantStats::cancelled;
        break;
      case serve::JobStatus::kRejected:
        terminal = RejectedFrame{c.req_id, r->reject_reason};
        bucket = &TenantStats::rejected;
        break;
      case serve::JobStatus::kFailed:
        terminal = ErrorFrame{c.req_id, truncated_what(r->error)};
        bucket = &TenantStats::failed;
        break;
      case serve::JobStatus::kPending:
      default:
        continue;  // resolve() never leaves kPending
    }

    {
      const std::scoped_lock lock(c.conn->mu);
      c.conn->jobs.erase(c.req_id);
    }
    {
      const std::scoped_lock lock(core_->mu);
      ++(core_->tenants[c.conn->tenant].*bucket);
    }
    if (!respond(c.conn, encode_response(c.conn, std::move(terminal))))
      continue;
    if (c.conn->ring != nullptr) ++ring_deliveries;
  }
  return ring_deliveries;
}

// ------------------------------------------------------- shm data plane

bool IngressServer::handle_shm_req(const std::shared_ptr<Conn>& conn,
                                   u32 want_slots) {
  if (!conn->hello_done) {
    protocol_error(conn, "SHM_REQ before HELLO");
    return false;
  }
  if (conn->ring != nullptr) {
    protocol_error(conn, "duplicate SHM_REQ");
    return false;
  }
  if (config_.shm_submit_slots == 0) {
    protocol_error(conn, "shm transport disabled on this server");
    return false;
  }
  // The ack and its descriptors must be the next bytes the client reads;
  // anything still buffered goes out first. Only HELLO_ACK can precede a
  // SHM_REQ, so a backlog here means the peer is not reading its socket.
  flush(conn);
  bool backlogged = false;
  {
    const std::scoped_lock lock(conn->mu);
    if (conn->closed) return false;
    backlogged = !conn->tx.empty();
  }
  if (backlogged) {
    overflow_close(conn);
    return false;
  }

  const u32 submit_slots = shm::clamp_ring_slots(
      want_slots == 0 ? config_.shm_submit_slots : want_slots);
  // A completion slot is reserved per in-flight job before a submit slot
  // is consumed (see drain_shm), and immediate rejects of a full submit
  // ring need room too — so the completion ring covers both plus slack.
  const u32 completion_slots =
      shm::clamp_ring_slots(submit_slots + config_.credit_window + 1);

  std::string err;
  auto seg = shm::Segment::create(submit_slots, completion_slots, &err);
  if (!seg.has_value()) {
    protocol_error(conn, "shm segment setup failed: " + err);
    return false;
  }
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd < 0) {
    protocol_error(conn, std::string("shm doorbell setup failed: ") +
                             std::strerror(errno));
    return false;
  }

  const shm::Geometry& geo = seg->geometry();
  const std::vector<u8> ack = encode(ShmAckFrame{
      geo.submit_slots, geo.completion_slots, geo.bytes()});
  const int fds[2] = {seg->fd(), efd};
  if (!shm::send_with_fds(conn->fd, ack.data(), ack.size(), fds, 2, &err)) {
    ::close(efd);
    // The peer vanished (or wedged its socket) mid-negotiation.
    close_conn(conn);
    return false;
  }

  auto ring = std::make_unique<ShmConn>();
  ring->seg = std::move(*seg);
  ring->seg.close_fd();  // the client holds its own copy now
  ring->event_fd = efd;
  ring->submit_rx = shm::RingRx(ring->seg.submit_hdr(),
                                ring->seg.submit_slots(), geo.submit_slots);
  ring->comp_tx =
      shm::RingTx(ring->seg.completion_hdr(), ring->seg.completion_slots(),
                  geo.completion_slots);
  conn->ring = std::move(ring);
  {
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.shm_connections;
  }
  return true;
}

bool IngressServer::shm_drain_ready(const std::shared_ptr<Conn>& conn) {
  ShmConn* ring = conn->ring.get();
  if (ring == nullptr) return false;
  usize inflight;
  {
    const std::scoped_lock lock(conn->mu);
    if (conn->closed) return false;
    inflight = conn->jobs.size();
  }
  if (ring->comp_tx.free_slots() < inflight + 1) return false;
  return ring->submit_rx.ready();
}

usize IngressServer::drain_shm(const std::shared_ptr<Conn>& conn) {
  ShmConn* ring = conn->ring.get();
  if (ring == nullptr) return 0;
  usize drained = 0;
  // One lap per round: a client publishing continuously must not pin the
  // loop thread here while other connections starve (the bounded-read
  // rule of conn_readable, applied to slots).
  const usize batch_cap = ring->submit_rx.capacity();
  while (drained < batch_cap) {
    {
      const std::scoped_lock lock(conn->mu);
      if (conn->closed) return drained;
    }
    if (!shm_drain_ready(conn)) break;
    const shm::Slot* slot = ring->submit_rx.try_begin();
    if (slot == nullptr) {
      if (ring->submit_rx.corrupt()) {
        {
          const std::scoped_lock lock(core_->mu);
          ++core_->stats.ring_corrupt_closes;
        }
        protocol_error(conn, "shm submit ring stamp corruption");
      }
      return drained;
    }
    if (slot->len > shm::kSlotFrameBytes) {
      {
        const std::scoped_lock lock(core_->mu);
        ++core_->stats.ring_corrupt_closes;
      }
      protocol_error(conn, "shm slot length out of range");
      return drained;
    }
    // Same strict codec as the socket: a slot must hold EXACTLY one
    // complete frame (kNeedMore = truncated, under-consumed = trailing
    // garbage), and that frame must be a SUBMIT — everything else stays
    // on the control plane.
    Decoded d = decode_frame(slot->frames, slot->len);
    ring->submit_rx.commit();  // frame is copied out; free the slot early
    shm::bump_progress(ring->submit_rx.hdr());
    ++drained;
    if (d.status != DecodeStatus::kOk || d.consumed != slot->len) {
      protocol_error(conn, "malformed shm slot: " +
                               (d.status == DecodeStatus::kBad
                                    ? d.error
                                    : std::string("truncated or padded")));
      return drained;
    }
    {
      const std::scoped_lock lock(core_->mu);
      ++core_->stats.frames_decoded;
    }
    if (type_of(d.frame) != FrameType::kSubmit) {
      protocol_error(conn, std::string("non-SUBMIT frame in shm slot: ") +
                               to_string(type_of(d.frame)));
      return drained;
    }
    {
      const std::scoped_lock lock(core_->mu);
      ++core_->stats.ring_submits;
    }
    if (!handle_submit(conn, std::move(std::get<SubmitFrame>(d.frame))))
      return drained;
  }
  return drained;
}

std::vector<u8> IngressServer::encode_response(
    const std::shared_ptr<Conn>& conn, Frame&& terminal) {
  if (conn->ring != nullptr) {
    // Slot strings are shorter than socket strings: truncated so any
    // terminal frame plus its folded CREDIT fits one slot exactly.
    if (auto* rej = std::get_if<RejectedFrame>(&terminal)) {
      if (rej->reason.size() > shm::kShmMaxString)
        rej->reason.resize(shm::kShmMaxString);
    } else if (auto* err = std::get_if<ErrorFrame>(&terminal)) {
      if (err->message.size() > shm::kShmMaxString)
        err->message.resize(shm::kShmMaxString);
    }
  }
  std::vector<u8> out = encode(terminal);
  append_bytes(out, encode(CreditFrame{1}));
  return out;
}

bool IngressServer::respond(const std::shared_ptr<Conn>& conn,
                            const std::vector<u8>& bytes) {
  if (conn->ring == nullptr) {
    if (!append_tx(conn, bytes)) {
      overflow_close(conn);
      return false;
    }
    flush(conn);
    return true;
  }
  {
    const std::scoped_lock lock(conn->mu);
    if (conn->closed) return true;  // late completion for a gone peer
  }
  AID_CHECK_MSG(bytes.size() <= shm::kSlotFrameBytes,
                "ring response exceeds slot capacity");
  shm::Slot* slot = conn->ring->comp_tx.try_begin();
  if (slot == nullptr) {
    // Reservation-gated draining guarantees a completion slot for every
    // terminal response; no slot means the client broke the protocol
    // (scribbled stamps or lied in its harvest mirror).
    {
      const std::scoped_lock lock(core_->mu);
      ++core_->stats.ring_corrupt_closes;
    }
    close_conn(conn);
    return false;
  }
  conn->ring->comp_tx.commit(slot, bytes.data(),
                             static_cast<u16>(bytes.size()));
  shm::bump_progress(conn->ring->comp_tx.hdr());
  return true;
}

usize IngressServer::tx_cap() const {
  // Room for the window's worth of terminal-frame+CREDIT pairs (the
  // largest response is a REJECTED/ERROR with a kWireMaxString reason)
  // plus generous slack. A well-behaved flow never comes near this: tx
  // only backs up once the kernel socket buffer is full, and the window
  // bounds pending completions. Only a client that provokes responses
  // (e.g. streams over-window SUBMITs) while never reading accumulates a
  // backlog — and it is dropped at the cap instead of growing server
  // memory without bound.
  return (config_.credit_window + 16) * (wire::kWireMaxString + 96);
}

bool IngressServer::append_tx(const std::shared_ptr<Conn>& conn,
                              const std::vector<u8>& bytes) {
  const std::scoped_lock lock(conn->mu);
  if (conn->closed) return true;  // late completion: nothing to deliver
  if (conn->tx.size() + bytes.size() > tx_cap()) return false;
  append_bytes(conn->tx, bytes);
  return true;
}

void IngressServer::overflow_close(const std::shared_ptr<Conn>& conn) {
  {
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.tx_overflow_closes;
  }
  close_conn(conn);
}

void IngressServer::flush(const std::shared_ptr<Conn>& conn) {
  const std::scoped_lock lock(conn->mu);
  if (conn->closed) return;
  while (!conn->tx.empty()) {
    // MSG_NOSIGNAL: a peer that hung up before its frames were written
    // must surface as EPIPE on the hard-error path below, not as a
    // process-killing SIGPIPE.
    const ssize_t n =
        ::send(conn->fd, conn->tx.data(), conn->tx.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->tx.erase(conn->tx.begin(), conn->tx.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    return;  // hard write error (EPIPE, ...): the read side closes the conn
  }
}

void IngressServer::protocol_error(const std::shared_ptr<Conn>& conn,
                                   std::string why) {
  {
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.protocol_errors;
  }
  // Best-effort structured goodbye (req_id 0 = connection-level), then
  // close. The flush is one non-blocking write attempt; a client that
  // already vanished simply misses its diagnostic.
  const std::vector<u8> err = encode(ErrorFrame{0, std::move(why)});
  {
    const std::scoped_lock lock(conn->mu);
    if (!conn->closed) append_bytes(conn->tx, err);
  }
  flush(conn);
  close_conn(conn);
}

void IngressServer::close_conn(const std::shared_ptr<Conn>& conn) {
  std::vector<serve::JobTicket> orphans;
  std::unique_ptr<ShmConn> ring;
  {
    const std::scoped_lock lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    orphans.reserve(conn->jobs.size());
    for (auto& [id, job] : conn->jobs) orphans.push_back(job.ticket);
    conn->jobs.clear();
    conn->tx.clear();
    ring = std::move(conn->ring);
    ::close(conn->fd);
    conn->fd = -1;
  }
  if (ring != nullptr) {
    // Teardown handshake: mark the segment dead and wake any parked
    // client BEFORE unmapping our view — a client blocked in a futex
    // wait re-checks server_state on wake and reports transport death
    // instead of sleeping its timeout out. Unmapping here only drops the
    // server's view; the client's own mapping stays valid until it
    // unmaps. Stamped-but-unharvested submit slots are forfeit, like
    // undecoded socket bytes at FIN.
    ring->seg.hdr()->server_state.store(shm::kServerGone,
                                        std::memory_order_seq_cst);
    shm::bump_progress(ring->seg.submit_hdr());
    shm::bump_progress(ring->seg.completion_hdr());
    ::close(ring->event_fd);
  }  // ~ShmConn unmaps the segment
  {
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.connections_closed;
    core_->stats.disconnect_cancels += orphans.size();
  }
  // Tenant-scoped cleanup through the existing CancelToken path: nobody
  // is waiting for these results anymore. kDependency (not kUser) — the
  // peer this work was for is gone, the client didn't ask.
  for (serve::JobTicket& t : orphans) t.cancel(CancelReason::kDependency);
}

}  // namespace aid::ingress
