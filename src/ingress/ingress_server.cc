#include "ingress/ingress_server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "common/env.h"
#include "workloads/serve_kernel.h"

namespace aid::ingress {

namespace {

/// Truncate an exception's what() for the wire (ERROR frames carry a
/// diagnostic, not a payload).
std::string truncated_what(const std::exception_ptr& e) {
  if (e == nullptr) return "unknown error";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    std::string what = ex.what();
    if (what.size() > wire::kWireMaxString)
      what.resize(wire::kWireMaxString);
    return what;
  } catch (...) {
    return "non-std::exception thrown by workload body";
  }
}

void append_bytes(std::vector<u8>& dst, const std::vector<u8>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace

// ---------------------------------------------------------------- plumbing

/// One in-flight wire job: the ticket plus the checksum closure harvested
/// at delivery. Lives in Conn::jobs keyed by req_id.
struct PendingJob {
  serve::JobTicket ticket;
  std::function<double()> checksum;
};

struct IngressServer::Conn {
  int fd = -1;
  bool hello_done = false;
  std::string tenant = "?";
  FrameBuffer rx;  ///< loop-thread only

  // Everything below is shared between the loop thread and completion
  // hooks firing on dispatcher threads.
  std::mutex mu;
  bool closed = false;
  std::vector<u8> tx;
  std::unordered_map<u64, PendingJob> jobs;
};

/// State shared with completion hooks. Hooks capture shared_ptr<Core> and
/// shared_ptr<Conn> — never the IngressServer itself — so a hook firing
/// after ~IngressServer (the node resolving a cancelled straggler) only
/// touches memory that lives until the last hook releases it.
struct IngressServer::Core {
  struct Completion {
    std::shared_ptr<Conn> conn;
    u64 req_id = 0;
    serve::JobTicket ticket;
    std::function<double()> checksum;
  };

  std::mutex mu;  ///< guards completions + stats + tenants
  std::vector<Completion> completions;
  Stats stats;
  std::map<std::string, TenantStats> tenants;
  int wake_wr = -1;  ///< write end of the wake pipe; owned by Core
  bool loop_alive = true;

  ~Core() {
    if (wake_wr >= 0) ::close(wake_wr);
  }

  void wake() {
    const std::scoped_lock lock(mu);
    if (!loop_alive) return;  // nobody to wake; completions drain in dtor
    const u8 byte = 1;
    // Non-blocking pipe: EAGAIN (already signalled) is success here.
    (void)::write(wake_wr, &byte, 1);
  }

  void push_completion(Completion c) {
    {
      const std::scoped_lock lock(mu);
      completions.push_back(std::move(c));
    }
    wake();
  }
};

// ------------------------------------------------------------------ setup

IngressServer::Config IngressServer::Config::from_env() {
  Config c;
  c.socket_path = env::get_string("AID_INGRESS_SOCKET", "");
  c.credit_window = static_cast<u32>(
      env::get_int_at_least("AID_INGRESS_CREDITS", c.credit_window, 1));
  return c;
}

IngressServer::IngressServer(serve::ServeNode& node, Config config)
    : node_(node), config_(std::move(config)), core_(std::make_shared<Core>()) {
  config_.credit_window = std::max<u32>(config_.credit_window, 1);
  if (config_.socket_path.empty())
    throw std::runtime_error("ingress: empty socket path");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("ingress: socket path too long: " +
                             config_.socket_path);
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0)
    throw std::runtime_error("ingress: socket(): " +
                             std::string(std::strerror(errno)));
  // The server owns its path: a stale socket file from a crashed
  // predecessor is removed, a live one is replaced (single-owner model).
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("ingress: bind/listen " + config_.socket_path +
                             ": " + err);
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("ingress: pipe2(): " +
                             std::string(std::strerror(errno)));
  }
  wake_rd_ = pipe_fds[0];
  core_->wake_wr = pipe_fds[1];

  thread_ = std::thread([this] { loop(); });
}

IngressServer::~IngressServer() {
  {
    const std::scoped_lock lock(core_->mu);
    core_->loop_alive = false;
  }
  // loop_alive is checked under core_->mu inside the loop as its stop
  // flag; one direct write wakes a loop parked in poll().
  const u8 byte = 1;
  (void)::write(core_->wake_wr, &byte, 1);
  thread_.join();

  // Cancel whatever is still in flight and close every socket. The jobs
  // resolve inside the node (possibly after this destructor returns);
  // their hooks only touch Core/Conn, both kept alive by the hooks'
  // own shared_ptrs.
  for (const auto& conn : conns_) close_conn(conn);
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_rd_);
  ::unlink(config_.socket_path.c_str());
}

IngressServer::Stats IngressServer::stats() const {
  const std::scoped_lock lock(core_->mu);
  return core_->stats;
}

TenantStats IngressServer::tenant_stats(const std::string& tenant) const {
  const std::scoped_lock lock(core_->mu);
  const auto it = core_->tenants.find(tenant);
  return it != core_->tenants.end() ? it->second : TenantStats{};
}

// ------------------------------------------------------------- event loop

void IngressServer::loop() {
  std::vector<pollfd> fds;
  while (true) {
    {
      const std::scoped_lock lock(core_->mu);
      if (!core_->loop_alive) return;
    }

    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      {
        const std::scoped_lock lock(conn->mu);
        if (!conn->tx.empty()) events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
    }

    // Finite timeout as a belt-and-braces backstop for a lost wake.
    if (::poll(fds.data(), fds.size(), 250) < 0 && errno != EINTR) return;

    if ((fds[1].revents & POLLIN) != 0) {
      u8 drain[64];
      while (::read(wake_rd_, drain, sizeof drain) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_ready();

    // Snapshot: close_conn during iteration mutates conns_ only at the
    // reap step below, never inside these handlers.
    for (usize i = 2; i < fds.size(); ++i) {
      const auto& conn = conns_[i - 2];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        conn_readable(conn);
      if ((fds[i].revents & POLLOUT) != 0) flush(conn);
    }

    drain_completions();

    // Reap connections closed this iteration.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::shared_ptr<Conn>& c) {
                                  const std::scoped_lock lock(c->mu);
                                  return c->closed;
                                }),
                 conns_.end());
  }
}

void IngressServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_.push_back(conn);
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.connections_accepted;
  }
}

void IngressServer::conn_readable(const std::shared_ptr<Conn>& conn) {
  // Bounded read per poll round: a client streaming bytes continuously
  // must not pin the single loop thread here (or grow conn->rx without
  // bound) while every other connection starves. Leftover kernel-buffer
  // data re-arms POLLIN on the next round (level-triggered), after the
  // frames below have been processed and other connections served.
  u8 buf[4096];
  usize budget = 2 * sizeof buf;
  while (budget > 0) {
    const ssize_t n =
        ::read(conn->fd, buf, std::min<usize>(budget, sizeof buf));
    if (n > 0) {
      conn->rx.append(buf, static_cast<usize>(n));
      budget -= static_cast<usize>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn);  // EOF or hard error: the client is gone
    return;
  }

  while (true) {
    Decoded d = conn->rx.next();
    if (d.status == DecodeStatus::kNeedMore) break;
    if (d.status == DecodeStatus::kBad) {
      protocol_error(conn, std::move(d.error));
      return;
    }
    {
      const std::scoped_lock lock(core_->mu);
      ++core_->stats.frames_decoded;
    }
    if (!handle_frame(conn, std::move(d.frame))) return;
  }
}

bool IngressServer::handle_frame(const std::shared_ptr<Conn>& conn,
                                 Frame&& frame) {
  switch (type_of(frame)) {
    case FrameType::kHello: {
      auto& m = std::get<HelloFrame>(frame);
      if (conn->hello_done) {
        protocol_error(conn, "duplicate HELLO");
        return false;
      }
      if (m.version != kProtocolVersion) {
        protocol_error(conn, "unsupported protocol version " +
                                 std::to_string(m.version) +
                                 " (server speaks " +
                                 std::to_string(kProtocolVersion) + ")");
        return false;
      }
      conn->hello_done = true;
      conn->tenant = m.client_name.empty() ? "anonymous" : m.client_name;
      {
        const std::scoped_lock lock(core_->mu);
        core_->tenants.try_emplace(conn->tenant);
      }
      const std::vector<u8> ack = encode(
          HelloAckFrame{kProtocolVersion, config_.credit_window});
      if (!append_tx(conn, ack)) {
        overflow_close(conn);
        return false;
      }
      flush(conn);
      return true;
    }
    case FrameType::kSubmit: {
      if (!conn->hello_done) {
        protocol_error(conn, "SUBMIT before HELLO");
        return false;
      }
      return handle_submit(conn, std::move(std::get<SubmitFrame>(frame)));
    }
    case FrameType::kCancel: {
      if (!conn->hello_done) {
        protocol_error(conn, "CANCEL before HELLO");
        return false;
      }
      const u64 req_id = std::get<CancelFrame>(frame).req_id;
      serve::JobTicket ticket;
      {
        const std::scoped_lock lock(conn->mu);
        const auto it = conn->jobs.find(req_id);
        if (it != conn->jobs.end()) ticket = it->second.ticket;
      }
      // Unknown req_id: legal race with the terminal frame — ignore.
      if (ticket.valid()) ticket.cancel(CancelReason::kUser);
      return true;
    }
    default:
      // Server->client frame types arriving at the server.
      protocol_error(conn, std::string("unexpected frame type ") +
                               to_string(type_of(frame)) + " from client");
      return false;
  }
}

bool IngressServer::handle_submit(const std::shared_ptr<Conn>& conn,
                                  SubmitFrame&& m) {
  // Terminal-without-admission paths: the reject frame plus the explicit
  // CREDIT{1} that balances the credit this SUBMIT consumed. False: the
  // connection was dropped (tx backlog cap — the peer is not reading).
  const auto reject = [&](std::string reason, bool no_credit) {
    std::vector<u8> out = encode(RejectedFrame{m.req_id, std::move(reason)});
    append_bytes(out, encode(CreditFrame{1}));
    {
      const std::scoped_lock lock(core_->mu);
      ++(no_credit ? core_->stats.no_credit_rejects
                   : core_->stats.invalid_rejects);
      ++core_->tenants[conn->tenant].rejected;
    }
    if (!append_tx(conn, out)) {
      overflow_close(conn);
      return false;
    }
    flush(conn);
    return true;
  };

  bool duplicate = false;
  bool over_window = false;
  {
    const std::scoped_lock lock(conn->mu);
    duplicate = conn->jobs.count(m.req_id) != 0;
    over_window = !duplicate && conn->jobs.size() >= config_.credit_window;
  }
  if (duplicate) {
    // Ambiguous accounting — unlike an unknown CANCEL this cannot be a
    // benign race, so it is connection-fatal.
    protocol_error(conn,
                   "duplicate in-flight req_id " + std::to_string(m.req_id));
    return false;
  }
  if (over_window) {
    // Enforced window: this SUBMIT never reaches the ServeNode, so a
    // client ignoring its credits cannot hold more than `window` jobs of
    // server memory. Surfaced as a frame, not a stall.
    return reject("credit window exceeded (" +
                      std::to_string(config_.credit_window) + " in flight)",
                  /*no_credit=*/true);
  }

  std::string error;
  auto kernel = workloads::make_serve_kernel(m.workload, m.count, &error);
  if (!kernel.has_value()) return reject(std::move(error), /*no_credit=*/false);

  serve::JobSpec spec;
  spec.qos = static_cast<serve::QosClass>(m.qos);
  spec.count = kernel->count;
  spec.sched = sched::ScheduleSpec::make(
      to_schedule_kind(static_cast<WireSched>(m.sched_kind)), m.chunk);
  spec.deadline_ns = m.deadline_ns;
  spec.body = std::move(kernel->body);

  // The socket never blocks a dispatcher: admission overload resolves the
  // ticket kRejected immediately (no queue wait, no lease) and surfaces
  // below as a REJECTED frame.
  serve::SubmitOptions opts;
  opts.on_full = serve::SubmitOptions::OnFull::kReject;
  serve::JobTicket ticket = node_.submit(std::move(spec), opts);

  {
    const std::scoped_lock lock(conn->mu);
    conn->jobs.emplace(m.req_id,
                       PendingJob{ticket, kernel->checksum});
    const std::scoped_lock core_lock(core_->mu);
    ++core_->stats.submits;
    ++core_->tenants[conn->tenant].submits;
    core_->stats.max_inflight =
        std::max<u64>(core_->stats.max_inflight, conn->jobs.size());
  }

  // Registered AFTER the jobs-map insert so a hook firing immediately
  // (inline reject) finds consistent state. The hook may run under the
  // admission mutex: push + one pipe write, nothing else.
  ticket.on_resolve(
      [core = core_, conn, req_id = m.req_id, ticket,
       checksum = kernel->checksum]() mutable {
        core->push_completion(
            {conn, req_id, std::move(ticket), std::move(checksum)});
      });
  return true;
}

void IngressServer::drain_completions() {
  std::vector<Core::Completion> batch;
  {
    const std::scoped_lock lock(core_->mu);
    batch.swap(core_->completions);
  }
  for (Core::Completion& c : batch) {
    // Harvest on the loop thread, no locks held: result, checksum (an
    // O(count) reduction) and frame encode all happen here.
    const serve::JobResult* r = c.ticket.poll();
    if (r == nullptr) continue;  // unreachable: hooks fire at resolve

    std::vector<u8> out;
    u64 TenantStats::* bucket;
    switch (r->status) {
      case serve::JobStatus::kDone:
        out = encode(CompletedFrame{c.req_id, static_cast<u8>(r->status),
                                    c.checksum(), r->queue_wait_ns,
                                    r->service_ns});
        bucket = &TenantStats::completed;
        break;
      case serve::JobStatus::kExpired:
      case serve::JobStatus::kCancelled:
        out = encode(CompletedFrame{c.req_id, static_cast<u8>(r->status),
                                    0.0, r->queue_wait_ns, r->service_ns});
        bucket = &TenantStats::cancelled;
        break;
      case serve::JobStatus::kRejected:
        out = encode(RejectedFrame{c.req_id, r->reject_reason});
        bucket = &TenantStats::rejected;
        break;
      case serve::JobStatus::kFailed:
        out = encode(ErrorFrame{c.req_id, truncated_what(r->error)});
        bucket = &TenantStats::failed;
        break;
      case serve::JobStatus::kPending:
      default:
        continue;  // resolve() never leaves kPending
    }
    append_bytes(out, encode(CreditFrame{1}));

    {
      const std::scoped_lock lock(c.conn->mu);
      c.conn->jobs.erase(c.req_id);
    }
    {
      const std::scoped_lock lock(core_->mu);
      ++(core_->tenants[c.conn->tenant].*bucket);
    }
    if (!append_tx(c.conn, out)) {
      overflow_close(c.conn);
      continue;
    }
    flush(c.conn);
  }
}

usize IngressServer::tx_cap() const {
  // Room for the window's worth of terminal-frame+CREDIT pairs (the
  // largest response is a REJECTED/ERROR with a kWireMaxString reason)
  // plus generous slack. A well-behaved flow never comes near this: tx
  // only backs up once the kernel socket buffer is full, and the window
  // bounds pending completions. Only a client that provokes responses
  // (e.g. streams over-window SUBMITs) while never reading accumulates a
  // backlog — and it is dropped at the cap instead of growing server
  // memory without bound.
  return (config_.credit_window + 16) * (wire::kWireMaxString + 96);
}

bool IngressServer::append_tx(const std::shared_ptr<Conn>& conn,
                              const std::vector<u8>& bytes) {
  const std::scoped_lock lock(conn->mu);
  if (conn->closed) return true;  // late completion: nothing to deliver
  if (conn->tx.size() + bytes.size() > tx_cap()) return false;
  append_bytes(conn->tx, bytes);
  return true;
}

void IngressServer::overflow_close(const std::shared_ptr<Conn>& conn) {
  {
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.tx_overflow_closes;
  }
  close_conn(conn);
}

void IngressServer::flush(const std::shared_ptr<Conn>& conn) {
  const std::scoped_lock lock(conn->mu);
  if (conn->closed) return;
  while (!conn->tx.empty()) {
    // MSG_NOSIGNAL: a peer that hung up before its frames were written
    // must surface as EPIPE on the hard-error path below, not as a
    // process-killing SIGPIPE.
    const ssize_t n =
        ::send(conn->fd, conn->tx.data(), conn->tx.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->tx.erase(conn->tx.begin(), conn->tx.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    return;  // hard write error (EPIPE, ...): the read side closes the conn
  }
}

void IngressServer::protocol_error(const std::shared_ptr<Conn>& conn,
                                   std::string why) {
  {
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.protocol_errors;
  }
  // Best-effort structured goodbye (req_id 0 = connection-level), then
  // close. The flush is one non-blocking write attempt; a client that
  // already vanished simply misses its diagnostic.
  const std::vector<u8> err = encode(ErrorFrame{0, std::move(why)});
  {
    const std::scoped_lock lock(conn->mu);
    if (!conn->closed) append_bytes(conn->tx, err);
  }
  flush(conn);
  close_conn(conn);
}

void IngressServer::close_conn(const std::shared_ptr<Conn>& conn) {
  std::vector<serve::JobTicket> orphans;
  {
    const std::scoped_lock lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    orphans.reserve(conn->jobs.size());
    for (auto& [id, job] : conn->jobs) orphans.push_back(job.ticket);
    conn->jobs.clear();
    conn->tx.clear();
    ::close(conn->fd);
    conn->fd = -1;
  }
  {
    const std::scoped_lock lock(core_->mu);
    ++core_->stats.connections_closed;
    core_->stats.disconnect_cancels += orphans.size();
  }
  // Tenant-scoped cleanup through the existing CancelToken path: nobody
  // is waiting for these results anymore. kDependency (not kUser) — the
  // peer this work was for is gone, the client didn't ask.
  for (serve::JobTicket& t : orphans) t.cancel(CancelReason::kDependency);
}

}  // namespace aid::ingress
