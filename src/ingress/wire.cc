#include "ingress/wire.h"

#include "common/check.h"

namespace aid::ingress {

namespace {

using wire::WireReader;
using wire::WireWriter;

/// Wrap a fully-written payload in the frame header.
std::vector<u8> finish(FrameType type, WireWriter&& payload) {
  WireWriter out;
  const std::vector<u8>& body = payload.bytes();
  AID_CHECK_MSG(body.size() <= kMaxFramePayload, "oversized frame payload");
  out.put_u32(static_cast<u32>(body.size()));
  out.put_u8(static_cast<u8>(type));
  std::vector<u8> frame = out.take();
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Decoded bad(std::string why) {
  Decoded d;
  d.status = DecodeStatus::kBad;
  d.error = std::move(why);
  return d;
}

/// Shared epilogue of every payload decoder: the reader must have
/// succeeded AND consumed the payload exactly.
bool strict_end(const WireReader& r, Decoded& d, const char* what) {
  if (!r.ok()) {
    d = bad(std::string(what) + ": truncated payload");
    return false;
  }
  if (r.remaining() != 0) {
    d = bad(std::string(what) + ": trailing payload bytes");
    return false;
  }
  return true;
}

}  // namespace

sched::ScheduleKind to_schedule_kind(WireSched s) {
  switch (s) {
    case WireSched::kStatic: return sched::ScheduleKind::kStatic;
    case WireSched::kDynamic: return sched::ScheduleKind::kDynamic;
    case WireSched::kGuided: return sched::ScheduleKind::kGuided;
    case WireSched::kAidStatic: return sched::ScheduleKind::kAidStatic;
    case WireSched::kAidHybrid: return sched::ScheduleKind::kAidHybrid;
    case WireSched::kAidDynamic: return sched::ScheduleKind::kAidDynamic;
  }
  return sched::ScheduleKind::kDynamic;
}

WireSched to_wire_sched(sched::ScheduleKind k) {
  switch (k) {
    case sched::ScheduleKind::kStatic: return WireSched::kStatic;
    case sched::ScheduleKind::kDynamic: return WireSched::kDynamic;
    case sched::ScheduleKind::kGuided: return WireSched::kGuided;
    case sched::ScheduleKind::kAidStatic: return WireSched::kAidStatic;
    case sched::ScheduleKind::kAidHybrid: return WireSched::kAidHybrid;
    case sched::ScheduleKind::kAidDynamic: return WireSched::kAidDynamic;
    default: return WireSched::kDynamic;  // related-work kinds: not wire-able
  }
}

FrameType type_of(const Frame& f) {
  struct Visitor {
    FrameType operator()(const HelloFrame&) { return FrameType::kHello; }
    FrameType operator()(const HelloAckFrame&) { return FrameType::kHelloAck; }
    FrameType operator()(const SubmitFrame&) { return FrameType::kSubmit; }
    FrameType operator()(const CancelFrame&) { return FrameType::kCancel; }
    FrameType operator()(const CompletedFrame&) { return FrameType::kCompleted; }
    FrameType operator()(const RejectedFrame&) { return FrameType::kRejected; }
    FrameType operator()(const ErrorFrame&) { return FrameType::kError; }
    FrameType operator()(const CreditFrame&) { return FrameType::kCredit; }
    FrameType operator()(const ShmReqFrame&) { return FrameType::kShmReq; }
    FrameType operator()(const ShmAckFrame&) { return FrameType::kShmAck; }
  };
  return std::visit(Visitor{}, f);
}

std::vector<u8> encode(const Frame& f) {
  struct Visitor {
    std::vector<u8> operator()(const HelloFrame& m) {
      WireWriter w;
      w.put_u32(m.version);
      w.put_str(m.client_name);
      return finish(FrameType::kHello, std::move(w));
    }
    std::vector<u8> operator()(const HelloAckFrame& m) {
      WireWriter w;
      w.put_u32(m.version);
      w.put_u32(m.credits);
      return finish(FrameType::kHelloAck, std::move(w));
    }
    std::vector<u8> operator()(const SubmitFrame& m) {
      WireWriter w;
      w.put_u64(m.req_id);
      w.put_u8(m.qos);
      w.put_i64(m.deadline_ns);
      w.put_i64(m.count);
      w.put_u8(m.sched_kind);
      w.put_i64(m.chunk);
      w.put_str(m.workload);
      return finish(FrameType::kSubmit, std::move(w));
    }
    std::vector<u8> operator()(const CancelFrame& m) {
      WireWriter w;
      w.put_u64(m.req_id);
      return finish(FrameType::kCancel, std::move(w));
    }
    std::vector<u8> operator()(const CompletedFrame& m) {
      WireWriter w;
      w.put_u64(m.req_id);
      w.put_u8(m.status);
      w.put_f64(m.checksum);
      w.put_i64(m.queue_wait_ns);
      w.put_i64(m.service_ns);
      return finish(FrameType::kCompleted, std::move(w));
    }
    std::vector<u8> operator()(const RejectedFrame& m) {
      WireWriter w;
      w.put_u64(m.req_id);
      w.put_str(m.reason);
      return finish(FrameType::kRejected, std::move(w));
    }
    std::vector<u8> operator()(const ErrorFrame& m) {
      WireWriter w;
      w.put_u64(m.req_id);
      w.put_str(m.message);
      return finish(FrameType::kError, std::move(w));
    }
    std::vector<u8> operator()(const CreditFrame& m) {
      WireWriter w;
      w.put_u32(m.credits);
      return finish(FrameType::kCredit, std::move(w));
    }
    std::vector<u8> operator()(const ShmReqFrame& m) {
      WireWriter w;
      w.put_u32(m.submit_slots);
      return finish(FrameType::kShmReq, std::move(w));
    }
    std::vector<u8> operator()(const ShmAckFrame& m) {
      WireWriter w;
      w.put_u32(m.submit_slots);
      w.put_u32(m.completion_slots);
      w.put_u64(m.segment_bytes);
      return finish(FrameType::kShmAck, std::move(w));
    }
  };
  return std::visit(Visitor{}, f);
}

Decoded decode_frame(const u8* data, usize size) {
  Decoded d;
  if (size < kFrameHeaderBytes) return d;  // kNeedMore

  WireReader header(data, kFrameHeaderBytes);
  const u32 len = header.get_u32();
  const u8 type = header.get_u8();
  // The length field is validated BEFORE waiting for the payload: a
  // hostile length can therefore never make the server buffer more than
  // one frame's worth of bytes.
  if (len > kMaxFramePayload)
    return bad("frame payload length " + std::to_string(len) +
               " exceeds cap " + std::to_string(kMaxFramePayload));
  if (size < kFrameHeaderBytes + len) return d;  // kNeedMore

  WireReader r(data + kFrameHeaderBytes, len);
  d.consumed = kFrameHeaderBytes + len;

  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello: {
      HelloFrame m;
      m.version = r.get_u32();
      m.client_name = r.get_str();
      if (!strict_end(r, d, "HELLO")) return d;
      d.frame = std::move(m);
      break;
    }
    case FrameType::kHelloAck: {
      HelloAckFrame m;
      m.version = r.get_u32();
      m.credits = r.get_u32();
      if (!strict_end(r, d, "HELLO_ACK")) return d;
      d.frame = m;
      break;
    }
    case FrameType::kSubmit: {
      SubmitFrame m;
      m.req_id = r.get_u64();
      m.qos = r.get_u8();
      m.deadline_ns = r.get_i64();
      m.count = r.get_i64();
      m.sched_kind = r.get_u8();
      m.chunk = r.get_i64();
      m.workload = r.get_str();
      if (!strict_end(r, d, "SUBMIT")) return d;
      if (m.qos >= static_cast<u8>(serve::kNumQosClasses))
        return bad("SUBMIT: QoS class byte " + std::to_string(m.qos) +
                   " out of range");
      if (m.sched_kind > kMaxWireSched)
        return bad("SUBMIT: schedule kind byte " +
                   std::to_string(m.sched_kind) + " out of range");
      if (m.deadline_ns < 0) return bad("SUBMIT: negative deadline");
      if (m.count < 0) return bad("SUBMIT: negative trip count");
      if (m.chunk < 0) return bad("SUBMIT: negative chunk");
      d.frame = std::move(m);
      break;
    }
    case FrameType::kCancel: {
      CancelFrame m;
      m.req_id = r.get_u64();
      if (!strict_end(r, d, "CANCEL")) return d;
      d.frame = m;
      break;
    }
    case FrameType::kCompleted: {
      CompletedFrame m;
      m.req_id = r.get_u64();
      m.status = r.get_u8();
      m.checksum = r.get_f64();
      m.queue_wait_ns = r.get_i64();
      m.service_ns = r.get_i64();
      if (!strict_end(r, d, "COMPLETED")) return d;
      if (m.status > static_cast<u8>(serve::JobStatus::kFailed))
        return bad("COMPLETED: status byte out of range");
      d.frame = m;
      break;
    }
    case FrameType::kRejected: {
      RejectedFrame m;
      m.req_id = r.get_u64();
      m.reason = r.get_str();
      if (!strict_end(r, d, "REJECTED")) return d;
      d.frame = std::move(m);
      break;
    }
    case FrameType::kError: {
      ErrorFrame m;
      m.req_id = r.get_u64();
      m.message = r.get_str();
      if (!strict_end(r, d, "ERROR")) return d;
      d.frame = std::move(m);
      break;
    }
    case FrameType::kCredit: {
      CreditFrame m;
      m.credits = r.get_u32();
      if (!strict_end(r, d, "CREDIT")) return d;
      if (m.credits == 0) return bad("CREDIT: zero-credit grant");
      d.frame = m;
      break;
    }
    case FrameType::kShmReq: {
      ShmReqFrame m;
      m.submit_slots = r.get_u32();
      if (!strict_end(r, d, "SHM_REQ")) return d;
      d.frame = m;
      break;
    }
    case FrameType::kShmAck: {
      ShmAckFrame m;
      m.submit_slots = r.get_u32();
      m.completion_slots = r.get_u32();
      m.segment_bytes = r.get_u64();
      if (!strict_end(r, d, "SHM_ACK")) return d;
      if (m.submit_slots == 0 || m.completion_slots == 0)
        return bad("SHM_ACK: zero-slot ring");
      d.frame = m;
      break;
    }
    default:
      return bad("unknown frame type " + std::to_string(type));
  }
  d.status = DecodeStatus::kOk;
  return d;
}

}  // namespace aid::ingress
