#include "ingress/shm_ring.h"

#include <errno.h>
#include <linux/futex.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <new>
#include <utility>

#include "common/spin_wait.h"

namespace aid::ingress::shm {
namespace {

// Plain (cross-process) futex ops. FUTEX_PRIVATE_FLAG is deliberately
// absent: the waiter (client) and waker (server) share the word through
// two distinct mmaps of one memfd, which private futexes — keyed by
// (mm, address) — would treat as unrelated words, so the wake would
// never find the sleeper.
long futex_wait(const std::atomic<u32>* word, u32 expected,
                const struct timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<const u32*>(word), FUTEX_WAIT,
                 expected, timeout, nullptr, 0);
}

long futex_wake_all(const std::atomic<u32>* word) {
  return syscall(SYS_futex, reinterpret_cast<const u32*>(word), FUTEX_WAKE,
                 INT32_MAX, nullptr, nullptr, 0);
}

void set_error(std::string* error, const char* what) {
  if (error == nullptr) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %s", what, strerror(errno));
  *error = buf;
}

}  // namespace

u32 clamp_ring_slots(u32 want) {
  if (want < kMinRingSlots) want = kMinRingSlots;
  if (want > kMaxRingSlots) want = kMaxRingSlots;
  u32 pow2 = kMinRingSlots;
  while (pow2 < want) pow2 <<= 1;
  return pow2;
}

// ------------------------------------------------------------- endpoints

Slot* RingTx::try_begin() {
  if (corrupt_ || cap_ == 0) return nullptr;
  Slot& slot = slots_[pos_ & (cap_ - 1)];
  const u64 seq = slot.seq.load(std::memory_order_acquire);
  const i64 d = static_cast<i64>(seq - pos_);
  if (d == 0) return &slot;
  // The only legal non-free stamp here is "published one lap ago and not
  // yet consumed" (ring full). Anything else means the peer scribbled on
  // stamps or desynchronized — stop trusting the ring entirely.
  if (d != 1 - static_cast<i64>(cap_)) corrupt_ = true;
  return nullptr;
}

void RingTx::commit(Slot* slot, const u8* frames, u16 len) {
  slot->len = len;
  if (len != 0) memcpy(slot->frames, frames, len);
  slot->seq.store(pos_ + 1, std::memory_order_release);
  ++pos_;
  hdr_->tail.store(pos_, std::memory_order_release);
}

u32 RingTx::free_slots() const {
  if (corrupt_ || cap_ == 0) return 0;
  const u64 head = hdr_->head.load(std::memory_order_acquire);
  // Clamp the peer's mirror into the only coherent range: it can never
  // legitimately exceed what we pushed, nor trail by more than one lap.
  u64 consumed = head;
  if (consumed > pos_) consumed = pos_;
  const u64 floor = pos_ >= cap_ ? pos_ - cap_ : 0;
  if (consumed < floor) consumed = floor;
  return cap_ - static_cast<u32>(pos_ - consumed);
}

const Slot* RingRx::try_begin() {
  if (corrupt_ || cap_ == 0) return nullptr;
  Slot& slot = slots_[pos_ & (cap_ - 1)];
  const u64 seq = slot.seq.load(std::memory_order_acquire);
  const i64 d = static_cast<i64>(seq - pos_);
  if (d == 1) return &slot;
  if (d != 0) corrupt_ = true;  // neither "ready" nor "not yet written"
  return nullptr;
}

void RingRx::commit() {
  Slot& slot = slots_[pos_ & (cap_ - 1)];
  slot.seq.store(pos_ + cap_, std::memory_order_release);
  ++pos_;
  hdr_->head.store(pos_, std::memory_order_release);
}

// ---------------------------------------------------------- wait / wake

void bump_progress(RingHdr* hdr) {
  // seq_cst RMW + seq_cst load instead of the classic fence-based Dekker
  // pairing: ThreadSanitizer cannot model std::atomic_thread_fence (GCC's
  // -Wtsan diagnostic plus the library's -Werror breaks the CI tsan leg —
  // same constraint rt/os_bridge.cc documents). All four racing accesses
  // (this bump + parked load, the waiter's parked store + progress
  // re-check) are seq_cst, so they sit in one total order: either we
  // observe parked and wake, or the waiter's pre-sleep re-check observes
  // the bump. (The futex timeout makes a miss merely slow; the ordering
  // makes it not happen.)
  hdr->progress.fetch_add(1, std::memory_order_seq_cst);
  if (hdr->parked.load(std::memory_order_seq_cst) != 0) {
    futex_wake_all(&hdr->progress);
  }
}

bool wait_progress(RingHdr* hdr, u32 seen, i64 timeout_ns) {
  // seq_cst (not acquire) so the post-park re-check participates in the
  // total order bump_progress relies on; on x86 a seq_cst load is a
  // plain MOV, so the spin loop pays nothing for it.
  auto moved = [&] {
    return hdr->progress.load(std::memory_order_seq_cst) != seen;
  };
  // Two-party rendezvous: spin/yield budgets for "2 threads" so the
  // ladder collapses to yields on an oversubscribed host.
  if (spin_then_yield(moved, default_spin_budget(2), default_yield_budget(2)))
    return true;
  hdr->parked.store(1, std::memory_order_seq_cst);
  if (moved()) {  // re-check after publishing the parked flag
    hdr->parked.store(0, std::memory_order_release);
    return true;
  }
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000);
  futex_wait(&hdr->progress, seen, &ts);
  hdr->parked.store(0, std::memory_order_release);
  return moved();
}

// ------------------------------------------------------------- segment

namespace {

/// Placement-init every header and slot stamp of a fresh zero mapping.
void init_segment(void* base, const Geometry& geo) {
  auto* hdr = new (base) SegmentHdr{};
  hdr->magic = kShmMagic;
  hdr->version = kShmVersion;
  hdr->submit_slots = geo.submit_slots;
  hdr->completion_slots = geo.completion_slots;
  hdr->segment_bytes = geo.bytes();
  hdr->server_state.store(kServerHot, std::memory_order_relaxed);

  auto* bytes = static_cast<u8*>(base);
  auto init_ring = [&](usize hdr_off, usize slots_off, u32 n) {
    new (bytes + hdr_off) RingHdr{};
    auto* slots = reinterpret_cast<Slot*>(bytes + slots_off);
    for (u32 i = 0; i < n; ++i) {
      auto* slot = new (&slots[i]) Slot{};
      slot->seq.store(i, std::memory_order_relaxed);
    }
  };
  init_ring(geo.submit_hdr_off(), geo.submit_slots_off(), geo.submit_slots);
  init_ring(geo.completion_hdr_off(), geo.completion_slots_off(),
            geo.completion_slots);
  // No trailing release fence (TSan cannot model fences — see
  // bump_progress): the segment reaches the peer through the SHM_ACK
  // sendmsg, a syscall these escaped stores cannot be reordered past,
  // and the client's first loads happen after its own mmap returns.
}

}  // namespace

Segment& Segment::operator=(Segment&& other) noexcept {
  if (this == &other) return *this;
  if (base_ != nullptr) munmap(base_, bytes_);
  if (fd_ >= 0) close(fd_);
  base_ = std::exchange(other.base_, nullptr);
  bytes_ = std::exchange(other.bytes_, 0);
  fd_ = std::exchange(other.fd_, -1);
  geo_ = other.geo_;
  return *this;
}

Segment::~Segment() {
  if (base_ != nullptr) munmap(base_, bytes_);
  if (fd_ >= 0) close(fd_);
}

void Segment::close_fd() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

RingHdr* Segment::submit_hdr() const {
  return reinterpret_cast<RingHdr*>(static_cast<u8*>(base_) +
                                    geo_.submit_hdr_off());
}
Slot* Segment::submit_slots() const {
  return reinterpret_cast<Slot*>(static_cast<u8*>(base_) +
                                 geo_.submit_slots_off());
}
RingHdr* Segment::completion_hdr() const {
  return reinterpret_cast<RingHdr*>(static_cast<u8*>(base_) +
                                    geo_.completion_hdr_off());
}
Slot* Segment::completion_slots() const {
  return reinterpret_cast<Slot*>(static_cast<u8*>(base_) +
                                 geo_.completion_slots_off());
}

std::optional<Segment> Segment::create(u32 submit_slots, u32 completion_slots,
                                       std::string* error) {
  Geometry geo{clamp_ring_slots(submit_slots),
               clamp_ring_slots(completion_slots)};
  const int fd = static_cast<int>(
      syscall(SYS_memfd_create, "aid-ingress-ring", MFD_CLOEXEC));
  if (fd < 0) {
    set_error(error, "memfd_create");
    return std::nullopt;
  }
  Segment seg;
  seg.fd_ = fd;
  seg.bytes_ = geo.bytes();
  seg.geo_ = geo;
  if (ftruncate(fd, static_cast<off_t>(seg.bytes_)) != 0) {
    set_error(error, "ftruncate(ring segment)");
    return std::nullopt;
  }
  void* base = mmap(nullptr, seg.bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                    fd, 0);
  if (base == MAP_FAILED) {
    set_error(error, "mmap(ring segment)");
    return std::nullopt;
  }
  seg.base_ = base;
  init_segment(base, geo);
  return seg;
}

std::optional<Segment> Segment::attach(int fd, u32 submit_slots,
                                       u32 completion_slots, u64 segment_bytes,
                                       std::string* error) {
  Geometry geo{submit_slots, completion_slots};
  auto fail = [&](const char* why) -> std::optional<Segment> {
    if (error != nullptr) *error = why;
    close(fd);
    return std::nullopt;
  };
  if (submit_slots < kMinRingSlots || submit_slots > kMaxRingSlots ||
      (submit_slots & (submit_slots - 1)) != 0 ||
      completion_slots < kMinRingSlots || completion_slots > kMaxRingSlots ||
      (completion_slots & (completion_slots - 1)) != 0) {
    return fail("shm attach: slot counts out of range");
  }
  if (segment_bytes != geo.bytes()) {
    return fail("shm attach: segment size does not match geometry");
  }
  // fstat, not the header's own claim: a short fd would turn in-bounds
  // loads into SIGBUS, which no amount of header validation survives.
  struct stat st;
  if (fstat(fd, &st) != 0 || static_cast<u64>(st.st_size) < segment_bytes) {
    return fail("shm attach: segment fd smaller than advertised");
  }
  Segment seg;
  seg.fd_ = -1;  // fail() above owns the close on the error paths
  seg.bytes_ = segment_bytes;
  seg.geo_ = geo;
  void* base =
      mmap(nullptr, seg.bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    set_error(error, "mmap(ring segment)");
    close(fd);
    return std::nullopt;
  }
  close(fd);
  seg.base_ = base;
  const SegmentHdr* hdr = seg.hdr();
  if (hdr->magic != kShmMagic || hdr->version != kShmVersion ||
      hdr->submit_slots != submit_slots ||
      hdr->completion_slots != completion_slots ||
      hdr->segment_bytes != segment_bytes) {
    if (error != nullptr) *error = "shm attach: segment header mismatch";
    return std::nullopt;  // ~Segment unmaps
  }
  return seg;
}

// ------------------------------------------------- fd passing (control)

bool send_with_fds(int sock_fd, const u8* bytes, usize len, const int* fds,
                   usize nfds, std::string* error) {
  struct iovec iov;
  iov.iov_base = const_cast<u8*>(bytes);
  iov.iov_len = len;
  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(8 * sizeof(int))];
  if (nfds > 8) {
    if (error != nullptr) *error = "send_with_fds: too many descriptors";
    return false;
  }
  struct msghdr msg {};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = CMSG_SPACE(nfds * sizeof(int));
  struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(nfds * sizeof(int));
  memcpy(CMSG_DATA(cmsg), fds, nfds * sizeof(int));
  ssize_t n;
  do {
    n = sendmsg(sock_fd, &msg, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    set_error(error, "sendmsg(SCM_RIGHTS)");
    return false;
  }
  // The descriptors rode with byte 0; any unsent tail is plain bytes.
  usize sent = static_cast<usize>(n);
  while (sent < len) {
    ssize_t m = send(sock_fd, bytes + sent, len - sent, MSG_NOSIGNAL);
    if (m < 0 && errno == EINTR) continue;
    if (m <= 0) {
      set_error(error, "send(SCM_RIGHTS tail)");
      return false;
    }
    sent += static_cast<usize>(m);
  }
  return true;
}

ssize_t recv_with_fds(int sock_fd, u8* buf, usize cap, std::vector<int>* fds) {
  struct iovec iov;
  iov.iov_base = buf;
  iov.iov_len = cap;
  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(8 * sizeof(int))];
  struct msghdr msg {};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);
  ssize_t n;
  do {
    n = recvmsg(sock_fd, &msg, MSG_CMSG_CLOEXEC);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  for (struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS)
      continue;
    const usize nbytes = cmsg->cmsg_len - CMSG_LEN(0);
    const usize count = nbytes / sizeof(int);
    int received[8];
    memcpy(received, CMSG_DATA(cmsg), count * sizeof(int));
    for (usize i = 0; i < count; ++i) fds->push_back(received[i]);
  }
  return n;
}

}  // namespace aid::ingress::shm
