// IngressServer — the Unix-domain-socket front end of a ServeNode.
//
// One listener + event-loop thread (poll(2)) owns every connection: it
// accepts clients, decodes length-prefixed wire frames (src/ingress/wire.h),
// maps each SUBMIT onto ServeNode::submit with OnFull::kReject — the
// socket NEVER blocks a dispatcher or parks a thread per job — and writes
// terminal frames back. Completions flow through the non-blocking
// JobTicket hook: the resolving thread (a dispatcher, possibly under the
// admission mutex) only pushes {conn, req_id, ticket} onto a completion
// queue and writes one byte to the loop's wake pipe; the LOOP thread
// harvests the result, computes the workload checksum and encodes the
// frame — so delivery holds neither the admission mutex nor the
// connection lock while doing real work.
//
// Credit flow control (per connection): HELLO_ACK grants a window of N
// credits; every SUBMIT consumes one; every terminal frame (COMPLETED /
// REJECTED / per-request ERROR) is followed by an explicit CREDIT{1}
// grant returning it. The server enforces the window — at most N of a
// connection's jobs exist server-side at once; a SUBMIT beyond the window
// never reaches the ServeNode and comes back REJECTED("credit window
// exceeded"), so a flooding client bounds its own memory and overload
// surfaces as frames, not socket stalls. Response bytes are bounded too:
// a connection's pending tx backlog is capped (the credit window's worth
// of terminal frames plus slack) and a peer that provokes responses while
// never reading its socket is dropped when the cap is exceeded — the
// kernel socket buffer, not server heap, is the only queue a non-reading
// client gets. A disconnect cancels the
// connection's in-flight jobs through the jobs' CancelTokens with
// CancelReason::kDependency (the client this work depended on is gone).
//
// Trust boundary: every byte a client sends is untrusted. Malformed or
// unknown-version input is answered with a structured connection-level
// ERROR frame and a close — never a crash, never an assert (see
// src/ingress/README.md).
//
// Shared-memory data plane (src/ingress/shm_ring.h): after HELLO, a
// same-host client may send SHM_REQ; the server stands up a per-client
// SPSC ring pair in a memfd segment, passes it (plus a doorbell eventfd)
// back with SHM_ACK via SCM_RIGHTS, and from then on SUBMIT and the
// terminal frames (+ folded CREDIT{1}) move through ring slots — the
// socket remains the control plane (CANCEL, connection-level ERROR,
// teardown). A ring-backed connection runs the SAME state machine:
// slots carry ordinary wire frames, decoded by the same strict codec,
// hitting the same credit window, workload validation, QoS routing and
// tenant stats. The loop drains rings in batches; a submit slot is
// consumed only while a completion slot is reserved for every in-flight
// job plus this one, so every terminal response is guaranteed ring
// space and submit-ring fullness backpressures only the client. After
// ring activity the loop stays "hot" (zero-timeout poll rounds with
// yields) for a short window so steady-state handoffs skip the
// eventfd/poll syscall pair entirely; parking is announced through the
// segment header so clients only ring the doorbell when it matters.
//
// Lifetime: construct AFTER the ServeNode and destroy BEFORE it (the
// server borrows the node). The destructor stops the loop, cancels every
// in-flight job and closes all sockets; late completion hooks for jobs
// the node is still winding down only touch state owned by a shared core
// block, so they stay safe even after the server object itself is gone.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingress/wire.h"
#include "serve/serve_node.h"

namespace aid::ingress {

/// Default shm hot-window length: busy-polling the rings only pays when
/// the event loop can burn a core nobody else needs — loop + client +
/// at least a worker apiece. Below that, parking in poll(2) is strictly
/// faster end to end.
[[nodiscard]] inline i64 default_shm_hot_ns() {
  return std::thread::hardware_concurrency() >= 4 ? 200'000 : 0;
}

/// Per-tenant (per-HELLO-name) terminal-frame accounting. Two concurrent
/// clients submitting under different names observe disjoint counters.
struct TenantStats {
  u64 submits = 0;    ///< SUBMIT frames accepted into the ServeNode
  u64 completed = 0;  ///< COMPLETED(done) frames
  u64 rejected = 0;   ///< REJECTED frames (admission, credit, validation)
  u64 cancelled = 0;  ///< COMPLETED(cancelled/expired) frames
  u64 failed = 0;     ///< per-request ERROR frames (body threw)
};

class IngressServer {
 public:
  struct Config {
    std::string socket_path;  ///< AF_UNIX path (unlinked + rebound)
    u32 credit_window = 8;    ///< per-connection in-flight job grant (>= 1)
    int listen_backlog = 16;
    /// Default submit-ring depth granted to SHM_REQ (clamped to a power
    /// of two in [shm::kMinRingSlots, shm::kMaxRingSlots]); 0 disables
    /// the shm data plane (SHM_REQ is refused with a REJECT-style
    /// connection error).
    u32 shm_submit_slots = 64;
    /// How long the loop keeps polling with zero timeout after ring
    /// activity before parking back into blocking poll(2). Hot rounds
    /// cost yields, not sleeps — this is the knob that buys sub-µs
    /// handoff at the price of burning idle cycles for at most this
    /// long per burst. Defaults to 0 (always park) on hosts too small
    /// for the loop, the client and the workers to hold distinct cores:
    /// there a hot loop steals the very CPU the job needs, and measured
    /// round trips get WORSE, not better.
    i64 shm_hot_ns = default_shm_hot_ns();
    /// AID_INGRESS_SOCKET / AID_INGRESS_CREDITS / AID_INGRESS_SHM_SLOTS /
    /// AID_INGRESS_SHM_HOT_US (warn-once fallbacks).
    [[nodiscard]] static Config from_env();
  };

  struct Stats {
    u64 connections_accepted = 0;
    u64 connections_closed = 0;
    u64 frames_decoded = 0;
    u64 protocol_errors = 0;     ///< bad frames / version mismatches
    u64 submits = 0;             ///< SUBMITs forwarded to the ServeNode
    u64 no_credit_rejects = 0;   ///< SUBMITs beyond the credit window
    u64 invalid_rejects = 0;     ///< unknown workload / bad params
    u64 disconnect_cancels = 0;  ///< jobs cancelled by a client vanishing
    u64 tx_overflow_closes = 0;  ///< conns dropped for not reading responses
    u64 max_inflight = 0;        ///< high-water in-flight jobs of any conn
    u64 shm_connections = 0;     ///< SHM_REQs granted (ring pairs stood up)
    u64 ring_submits = 0;        ///< SUBMITs that arrived via ring slots
    u64 ring_corrupt_closes = 0;  ///< conns dropped for ring stamp corruption
  };

  /// Binds and starts serving immediately. Throws std::runtime_error when
  /// the socket cannot be bound (the path is unlinked first — the server
  /// owns its socket path).
  IngressServer(serve::ServeNode& node, Config config);
  ~IngressServer();

  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] TenantStats tenant_stats(const std::string& tenant) const;

 private:
  struct Conn;
  struct Core;

  void loop();
  void accept_ready();
  void conn_readable(const std::shared_ptr<Conn>& conn);
  /// False => the connection was closed (protocol error / tx overflow).
  bool handle_frame(const std::shared_ptr<Conn>& conn, Frame&& frame);
  bool handle_submit(const std::shared_ptr<Conn>& conn, SubmitFrame&& m);
  bool handle_shm_req(const std::shared_ptr<Conn>& conn, u32 want_slots);
  /// Drain the connection's submit ring (bounded batch, reservation-
  /// gated). Returns the number of slots consumed; closes the connection
  /// on corrupt stamps or non-SUBMIT ring traffic.
  usize drain_shm(const std::shared_ptr<Conn>& conn);
  /// True when drain_shm would make progress right now (used by the
  /// park/hot decision; never mutates ring state).
  [[nodiscard]] bool shm_drain_ready(const std::shared_ptr<Conn>& conn);
  /// Encode a terminal frame + folded CREDIT{1} for this connection's
  /// transport (ring responses get their strings truncated to fit a slot).
  [[nodiscard]] std::vector<u8> encode_response(
      const std::shared_ptr<Conn>& conn, Frame&& terminal);
  /// Deliver response bytes via the connection's transport (completion
  /// slot or tx buffer). False => the connection was closed.
  bool respond(const std::shared_ptr<Conn>& conn,
               const std::vector<u8>& bytes);
  /// Returns the number of responses delivered via ring slots (feeds the
  /// loop's hot-window decision; socket deliveries don't keep it hot).
  usize drain_completions();
  /// Max bytes of undelivered server->client frames one connection may
  /// buffer before it counts as not reading (see append_tx).
  [[nodiscard]] usize tx_cap() const;
  /// Queue bytes for delivery, honouring tx_cap(). False: the backlog cap
  /// would be exceeded — the caller must drop the connection
  /// (overflow_close); nothing was queued.
  [[nodiscard]] bool append_tx(const std::shared_ptr<Conn>& conn,
                               const std::vector<u8>& bytes);
  void overflow_close(const std::shared_ptr<Conn>& conn);
  void flush(const std::shared_ptr<Conn>& conn);
  void protocol_error(const std::shared_ptr<Conn>& conn, std::string why);
  void close_conn(const std::shared_ptr<Conn>& conn);

  serve::ServeNode& node_;
  Config config_;
  std::shared_ptr<Core> core_;  ///< outlives late completion hooks
  int listen_fd_ = -1;
  int wake_rd_ = -1;  ///< read end of the wake pipe (write end in Core)
  std::vector<std::shared_ptr<Conn>> conns_;  ///< loop-thread owned
  std::thread thread_;
};

}  // namespace aid::ingress
