// Ingress wire protocol: length-prefixed, versioned binary frames.
//
// Everything that crosses the Unix-domain socket between an out-of-process
// client and an IngressServer is one of the frames below, serialized with
// the explicit little-endian codec in common/wire_codec.h:
//
//   [u32 payload_len][u8 frame_type][payload bytes ...]
//
// payload_len covers the payload only (not the 5-byte header) and is
// capped at kMaxFramePayload — a length field beyond the cap is a
// protocol error the moment the header arrives, so a hostile client
// cannot make the server buffer unbounded input. Frame grammar, the
// credit-flow state machine and the trust boundary are documented in
// src/ingress/README.md.
//
// DECODING IS THE TRUST BOUNDARY. Frames arrive from another process and
// are treated as untrusted input end to end: decode_frame() never throws
// and never aborts — every malformed input (truncated payload, over-long
// string, unknown frame type, out-of-range enum byte, trailing garbage)
// comes back as DecodeStatus::kBad with a reason, which the server turns
// into a structured ERROR frame and a connection close.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/types.h"
#include "common/wire_codec.h"
#include "sched/schedule_spec.h"
#include "serve/job.h"
#include "serve/qos.h"

namespace aid::ingress {

/// Bumped on any incompatible frame change. HELLO carries the client's
/// version; a mismatch is answered with ERROR and a close (never a crash,
/// never a silently misdecoded frame).
inline constexpr u32 kProtocolVersion = 1;

/// Frame header: u32 little-endian payload length + u8 frame type.
inline constexpr usize kFrameHeaderBytes = 5;

/// Hard cap on one frame's payload. Wire job specs are names plus a few
/// scalars; nothing legitimate comes close.
inline constexpr u32 kMaxFramePayload = 64 * 1024;

enum class FrameType : u8 {
  // client -> server
  kHello = 1,    ///< version + client/tenant name; must be the first frame
  kSubmit = 3,   ///< one wire job spec (consumes one credit)
  kCancel = 4,   ///< cooperative cancel of an in-flight req_id
  // server -> client
  kHelloAck = 2,   ///< negotiated version + initial credit grant
  kCompleted = 5,  ///< terminal: ran (done) or stopped (expired/cancelled)
  kRejected = 6,   ///< terminal: refused before running, with a reason
  kError = 7,      ///< terminal (req_id != 0) or connection-fatal (req_id 0)
  kCredit = 8,     ///< flow-control grant: add N credits to the window
  // shm ring negotiation (control plane; data moves to the ring)
  kShmReq = 9,   ///< c→s: request a shared-memory ring pair for this conn
  kShmAck = 10,  ///< s→c: granted geometry; memfd + eventfd ride SCM_RIGHTS
};

[[nodiscard]] constexpr const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kSubmit: return "SUBMIT";
    case FrameType::kCancel: return "CANCEL";
    case FrameType::kCompleted: return "COMPLETED";
    case FrameType::kRejected: return "REJECTED";
    case FrameType::kError: return "ERROR";
    case FrameType::kCredit: return "CREDIT";
    case FrameType::kShmReq: return "SHM_REQ";
    case FrameType::kShmAck: return "SHM_ACK";
  }
  return "?";
}

/// Schedule kinds with STABLE wire values (independent of the in-process
/// sched::ScheduleKind enum order, which may be refactored freely).
enum class WireSched : u8 {
  kStatic = 0,
  kDynamic = 1,
  kGuided = 2,
  kAidStatic = 3,
  kAidHybrid = 4,
  kAidDynamic = 5,
};
inline constexpr u8 kMaxWireSched = 5;

[[nodiscard]] sched::ScheduleKind to_schedule_kind(WireSched s);
[[nodiscard]] WireSched to_wire_sched(sched::ScheduleKind k);

// ------------------------------------------------------------------ frames

struct HelloFrame {
  u32 version = kProtocolVersion;
  std::string client_name;  ///< the connection's tenant id (stats keying)
};

struct HelloAckFrame {
  u32 version = kProtocolVersion;
  u32 credits = 0;  ///< initial credit window (max in-flight jobs)
};

/// The wire-format job spec: a NAMED workload from the registry plus
/// parameters — function pointers don't cross a socket (ROADMAP ingress
/// item), so remote jobs are named computations, validated server-side by
/// workloads::make_serve_kernel().
struct SubmitFrame {
  u64 req_id = 0;  ///< client-chosen, unique per connection while in flight
  u8 qos = 0;      ///< serve::QosClass value (validated <= kBatch)
  i64 deadline_ns = 0;  ///< whole-life relative deadline (0 = none)
  i64 count = 0;        ///< workload trip count (validated server-side)
  u8 sched_kind = static_cast<u8>(WireSched::kDynamic);
  i64 chunk = 0;  ///< schedule chunk parameter (0 = schedule default)
  std::string workload;  ///< registry name, e.g. "EP", "blackscholes"
};

struct CancelFrame {
  u64 req_id = 0;
};

struct CompletedFrame {
  u64 req_id = 0;
  u8 status = 0;  ///< serve::JobStatus: kDone, kExpired or kCancelled
  double checksum = 0.0;  ///< workload checksum (kDone only)
  i64 queue_wait_ns = 0;
  i64 service_ns = 0;
};

struct RejectedFrame {
  u64 req_id = 0;
  std::string reason;  ///< admission backpressure, credit violation, ...
};

struct ErrorFrame {
  u64 req_id = 0;  ///< 0 = connection-level (the server closes after it)
  std::string message;  ///< truncated what() / protocol-error description
};

struct CreditFrame {
  u32 credits = 0;  ///< grant: add this many credits to the window
};

/// Ask the server to stand up a shared-memory ring pair for this
/// connection (after HELLO_ACK). On grant, SUBMIT and the terminal
/// frames + folded CREDITs move to the ring; the socket remains the
/// control plane (CANCEL, connection-level ERROR, teardown via close).
struct ShmReqFrame {
  u32 submit_slots = 0;  ///< requested submit-ring depth hint (0 = default)
};

/// Grant. The SAME sendmsg that carries this frame's first byte carries
/// two descriptors via SCM_RIGHTS, in order: [0] the ring segment memfd,
/// [1] the server's doorbell eventfd. Geometry is echoed so the client
/// can validate the mapped segment before trusting a byte of it.
struct ShmAckFrame {
  u32 submit_slots = 0;
  u32 completion_slots = 0;
  u64 segment_bytes = 0;
};

using Frame = std::variant<HelloFrame, HelloAckFrame, SubmitFrame,
                           CancelFrame, CompletedFrame, RejectedFrame,
                           ErrorFrame, CreditFrame, ShmReqFrame, ShmAckFrame>;

[[nodiscard]] FrameType type_of(const Frame& f);

// ------------------------------------------------------------------- codec

/// Serialize one frame, header included.
[[nodiscard]] std::vector<u8> encode(const Frame& f);

enum class DecodeStatus : u8 {
  kOk = 0,    ///< one frame decoded; `consumed` bytes were eaten
  kNeedMore,  ///< the buffer holds a frame prefix; read more bytes
  kBad,       ///< malformed input; `error` says why — close the connection
};

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  usize consumed = 0;
  Frame frame;
  std::string error;
};

/// Decode the first complete frame of `data`. Strict: the payload must be
/// exactly the fields of the declared type (trailing bytes = kBad), every
/// enum byte must be in range, lengths must be internally consistent.
[[nodiscard]] Decoded decode_frame(const u8* data, usize size);

/// Accumulates raw socket bytes and yields complete frames. kBad leaves
/// the buffer untouched — the caller is expected to close the connection.
class FrameBuffer {
 public:
  void append(const u8* data, usize n) { buf_.insert(buf_.end(), data, data + n); }

  [[nodiscard]] Decoded next() {
    Decoded d = decode_frame(buf_.data(), buf_.size());
    if (d.status == DecodeStatus::kOk)
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(d.consumed));
    return d;
  }

  [[nodiscard]] usize buffered() const { return buf_.size(); }

 private:
  std::vector<u8> buf_;
};

}  // namespace aid::ingress
