// Shared-memory ring ingress: the same-host data plane of the ingress.
//
// The socket path (ingress_server.h) pays two syscalls, two copies and a
// poll(2) wakeup per job — a measured ~17µs median wire tax that swamps
// small data-parallel loops. This header is the data-plane/control-plane
// split that removes it: per client, a pair of cache-line-padded SPSC
// rings (submit ring: client→server, completion ring: server→client) in
// a shared memory segment created by the server (memfd) and passed over
// the existing Unix socket with SCM_RIGHTS. The socket stays as the
// control plane — HELLO/HELLO_ACK, SHM_REQ/SHM_ACK segment setup,
// CANCEL, connection-level ERROR, teardown — while SUBMIT and the
// terminal COMPLETED/REJECTED/ERROR (+ folded CREDIT) frames move into
// ring slots. Steady-state submission is a slot write + a seq stamp +
// a *conditional* doorbell: no syscall in either direction while both
// sides are hot.
//
// SLOTS CARRY WIRE FRAMES. A slot's payload is `[u16 len][len bytes of
// length-prefixed wire frames]` — the exact bytes the socket would have
// carried, minus the socket. Both sides therefore reuse the strict
// wire.h codec end to end: the server validates a ring SUBMIT with the
// same decode_frame() trust boundary as a socket SUBMIT (garbage slot
// words are a structured protocol error, never a crash), and the client
// processes completion slots through the same frame handler as socket
// frames. The ring is a frame source/sink, not a second protocol.
//
// Publish protocol (Vyukov-style bounded SPSC with per-slot stamps):
// every slot has a u64 `seq` word; slot i starts at seq == i. The
// producer at position `pos` may write iff seq == pos (stores payload,
// then seq = pos + 1, release — the seqlock-style publish stamp); the
// consumer at `pos` may read iff seq == pos + 1 (reads payload, then
// seq = pos + capacity, release). Each side trusts ONLY its own local
// cursor — the shared head/tail mirrors exist for the peer's
// backpressure math and for diagnostics, and a stamp that is neither
// "empty" nor "ready" relative to the local cursor is ring corruption
// (a scribbling or desynchronized peer), reported, never followed.
//
// Waiting: the client parks with a spin→yield→futex ladder
// (common/spin_wait.h budgets) on the ring's 32-bit `progress` word —
// a plain (non-PRIVATE) futex, because the waiter and waker are in
// different processes; std::atomic::wait would use process-private
// futexes and never wake. All futex waits carry a short timeout so any
// lost-wake race heals instead of hanging. The server parks in its
// poll(2) event loop; the segment header's server_state word tells the
// client whether a doorbell (one eventfd write) is needed — while the
// server is hot, publishing is syscall-free.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace aid::ingress::shm {

inline constexpr u32 kShmMagic = 0x52444941;  // "AIDR", little-endian
inline constexpr u32 kShmVersion = 1;

/// One ring slot: a u64 publish stamp plus one slot's worth of wire
/// frames. Two cache lines, so the stamp the peer spins on and the
/// payload the owner writes never share a line boundary mid-slot.
inline constexpr usize kSlotBytes = 2 * kCacheLineBytes;
/// Frame bytes one slot can carry: kSlotBytes minus the stamp and the
/// u16 length. A terminal frame + folded CREDIT with a reason string
/// truncated to kShmMaxString fits exactly.
inline constexpr usize kSlotFrameBytes = kSlotBytes - 8 - 2;  // 118
/// Strings in ring-borne frames (reject reasons, error messages) are
/// truncated to this so any terminal frame + CREDIT pair fits one slot.
inline constexpr usize kShmMaxString = 94;

/// Ring depth limits. Depths are powers of two (cursor masking); the
/// server clamps a client's requested depth into this range.
inline constexpr u32 kMinRingSlots = 2;
inline constexpr u32 kMaxRingSlots = 4096;

/// Round up to a power of two within [kMinRingSlots, kMaxRingSlots].
[[nodiscard]] u32 clamp_ring_slots(u32 want);

struct alignas(kCacheLineBytes) Slot {
  std::atomic<u64> seq;  ///< publish stamp (see protocol above)
  u16 len = 0;           ///< valid bytes in frames[] (≤ kSlotFrameBytes)
  u8 frames[kSlotFrameBytes];
};
static_assert(sizeof(Slot) == kSlotBytes);

/// Per-ring shared header. One line per writer so the producer's cursor
/// mirror, the consumer's cursor mirror and the wait words never false-
/// share. In BOTH rings the client is the (only) futex waiter and the
/// server is the (only) progress bumper: the client waits for submit
/// space (server pops) or completion data (server pushes).
struct alignas(kCacheLineBytes) RingHdr {
  std::atomic<u64> tail;  ///< producer cursor mirror (slots pushed)
  u8 pad0[kCacheLineBytes - sizeof(std::atomic<u64>)];
  std::atomic<u64> head;  ///< consumer cursor mirror (slots popped)
  u8 pad1[kCacheLineBytes - sizeof(std::atomic<u64>)];
  std::atomic<u32> progress;  ///< bumped by the server side; futex word
  std::atomic<u32> parked;    ///< 1 while the client is futex-parked
  u8 pad2[kCacheLineBytes - 2 * sizeof(std::atomic<u32>)];
};
static_assert(sizeof(RingHdr) == 3 * kCacheLineBytes);

/// Segment-wide header: geometry (validated by the client at attach) and
/// the server's park state (the client's doorbell condition).
struct alignas(kCacheLineBytes) SegmentHdr {
  u32 magic;
  u32 version;
  u32 submit_slots;
  u32 completion_slots;
  u64 segment_bytes;
  /// kServerHot / kServerParked / kServerGone (below). Written by the
  /// server only; the client reads it after every publish to decide
  /// whether to ring the eventfd doorbell, and inside wait loops to
  /// detect teardown.
  std::atomic<u32> server_state;
  u8 pad[kCacheLineBytes - 4 * sizeof(u32) - sizeof(u64) -
         sizeof(std::atomic<u32>)];
};
static_assert(sizeof(SegmentHdr) == kCacheLineBytes);

inline constexpr u32 kServerHot = 0;     ///< draining; no doorbell needed
inline constexpr u32 kServerParked = 1;  ///< blocked in poll(2); ring eventfd
inline constexpr u32 kServerGone = 2;    ///< torn down; transport is dead

/// Segment layout: [SegmentHdr][submit RingHdr][submit slots...]
/// [completion RingHdr][completion slots...].
struct Geometry {
  u32 submit_slots = 0;
  u32 completion_slots = 0;

  [[nodiscard]] usize submit_hdr_off() const { return sizeof(SegmentHdr); }
  [[nodiscard]] usize submit_slots_off() const {
    return submit_hdr_off() + sizeof(RingHdr);
  }
  [[nodiscard]] usize completion_hdr_off() const {
    return submit_slots_off() + usize{submit_slots} * sizeof(Slot);
  }
  [[nodiscard]] usize completion_slots_off() const {
    return completion_hdr_off() + sizeof(RingHdr);
  }
  [[nodiscard]] usize bytes() const {
    return completion_slots_off() + usize{completion_slots} * sizeof(Slot);
  }
};

// ------------------------------------------------------------- endpoints

/// Single-producer endpoint of one ring. The cursor lives HERE, process-
/// local — the shared tail is a mirror the peer may read but the
/// producer never trusts. Not thread-safe (one producer thread).
class RingTx {
 public:
  RingTx() = default;
  RingTx(RingHdr* hdr, Slot* slots, u32 capacity)
      : hdr_(hdr), slots_(slots), cap_(capacity) {}

  /// The slot to write, or nullptr when the ring is full (or corrupt —
  /// check corrupt() to distinguish; a corrupt ring never recovers).
  [[nodiscard]] Slot* try_begin();

  /// Publish the slot returned by try_begin: payload first, stamp last.
  void commit(Slot* slot, const u8* frames, u16 len);

  [[nodiscard]] bool corrupt() const { return corrupt_; }
  [[nodiscard]] u64 pushed() const { return pos_; }
  [[nodiscard]] u32 capacity() const { return cap_; }
  [[nodiscard]] RingHdr* hdr() const { return hdr_; }

  /// Free slots from this producer's view, using the peer's head mirror
  /// clamped into [pos - capacity, pos] (an out-of-range mirror — a
  /// lying peer — can only make this conservative, never unsafe: the
  /// slot stamp check in try_begin stays authoritative).
  [[nodiscard]] u32 free_slots() const;

 private:
  RingHdr* hdr_ = nullptr;
  Slot* slots_ = nullptr;
  u32 cap_ = 0;
  u64 pos_ = 0;
  bool corrupt_ = false;
};

/// Single-consumer endpoint of one ring. Same local-cursor discipline.
class RingRx {
 public:
  RingRx() = default;
  RingRx(RingHdr* hdr, Slot* slots, u32 capacity)
      : hdr_(hdr), slots_(slots), cap_(capacity) {}

  /// The slot to read, or nullptr when the ring is empty (or corrupt).
  [[nodiscard]] const Slot* try_begin();

  /// Release the slot returned by try_begin back to the producer.
  void commit();

  /// Non-mutating peek: true when the cursor's stamp is anything but
  /// "not yet written" — ready data, or corruption the next try_begin
  /// will flag. One acquire load; safe to call every poll round.
  [[nodiscard]] bool ready() const {
    if (cap_ == 0) return false;
    return slots_[pos_ & (cap_ - 1)].seq.load(std::memory_order_acquire) !=
           pos_;
  }

  [[nodiscard]] bool corrupt() const { return corrupt_; }
  [[nodiscard]] u64 popped() const { return pos_; }
  [[nodiscard]] u32 capacity() const { return cap_; }
  [[nodiscard]] RingHdr* hdr() const { return hdr_; }

 private:
  RingHdr* hdr_ = nullptr;
  Slot* slots_ = nullptr;
  u32 cap_ = 0;
  u64 pos_ = 0;
  bool corrupt_ = false;
};

// ---------------------------------------------------------- wait / wake

/// Server side: announce progress on a ring (a pop freed submit space /
/// a push published a completion) and wake the client iff it is parked.
/// The common case — client spinning or busy — is one uncontended RMW,
/// no syscall.
void bump_progress(RingHdr* hdr);

/// Client side: park on `hdr->progress` until it moves past `seen` or
/// `timeout_ns` elapses. Spin→yield first (spin_wait.h budgets for a
/// 2-thread rendezvous), then a plain-futex sleep. Returns true when
/// progress moved (false: timeout — re-check state and come back; every
/// caller loops, so a lost wake costs one timeout, never a hang).
bool wait_progress(RingHdr* hdr, u32 seen, i64 timeout_ns);

/// Snapshot for wait_progress: load BEFORE re-checking the condition so
/// a bump between check and park turns the park into an immediate return.
[[nodiscard]] inline u32 progress_snapshot(const RingHdr* hdr) {
  return hdr->progress.load(std::memory_order_acquire);
}

// ------------------------------------------------------------- segment

/// An owning mapping of one ring segment (server creator or client
/// attacher). Movable; unmaps (and closes the fd, if still held) on
/// destruction.
class Segment {
 public:
  Segment() = default;
  Segment(Segment&& other) noexcept { *this = std::move(other); }
  Segment& operator=(Segment&& other) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  ~Segment();

  /// Server: memfd_create + ftruncate + mmap + placement-init all
  /// headers and slot stamps. The fd stays owned (fd()) until the
  /// caller passes it (SCM_RIGHTS) — it may be closed any time after;
  /// the mapping keeps the memory alive.
  [[nodiscard]] static std::optional<Segment> create(u32 submit_slots,
                                                     u32 completion_slots,
                                                     std::string* error);

  /// Client: mmap a received memfd and VALIDATE the header against the
  /// SHM_ACK geometry (magic, version, slot counts, byte size, actual
  /// fd size). The segment came from the semi-trusted server, but a
  /// truncated fd would turn loads into SIGBUS — so size is checked
  /// against fstat, not the header's own claim.
  [[nodiscard]] static std::optional<Segment> attach(int fd, u32 submit_slots,
                                                     u32 completion_slots,
                                                     u64 segment_bytes,
                                                     std::string* error);

  [[nodiscard]] bool valid() const { return base_ != nullptr; }
  [[nodiscard]] int fd() const { return fd_; }
  void close_fd();  ///< after passing it; mapping stays valid

  [[nodiscard]] SegmentHdr* hdr() const {
    return reinterpret_cast<SegmentHdr*>(base_);
  }
  [[nodiscard]] RingHdr* submit_hdr() const;
  [[nodiscard]] Slot* submit_slots() const;
  [[nodiscard]] RingHdr* completion_hdr() const;
  [[nodiscard]] Slot* completion_slots() const;
  [[nodiscard]] const Geometry& geometry() const { return geo_; }

 private:
  void* base_ = nullptr;
  usize bytes_ = 0;
  int fd_ = -1;
  Geometry geo_;
};

// ------------------------------------------------- fd passing (control)

/// sendmsg `bytes` with `nfds` descriptors in one SCM_RIGHTS cmsg. The
/// descriptors ride with the FIRST byte of `bytes`; callers send the
/// whole SHM_ACK frame in this one call so the receiver can bind the
/// fds to that frame. Retries EINTR; false on any other error.
[[nodiscard]] bool send_with_fds(int sock_fd, const u8* bytes, usize len,
                                 const int* fds, usize nfds,
                                 std::string* error);

/// recvmsg up to `cap` bytes, appending any SCM_RIGHTS descriptors to
/// `fds` (received fds are set CLOEXEC). Returns bytes read; 0 = EOF,
/// -1 = error (EINTR retried internally; EAGAIN returns -1 with errno
/// preserved for the caller's poll loop).
[[nodiscard]] ssize_t recv_with_fds(int sock_fd, u8* buf, usize cap,
                                    std::vector<int>* fds);

}  // namespace aid::ingress::shm
