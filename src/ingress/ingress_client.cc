#include "ingress/ingress_client.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace aid::ingress {

namespace {
/// Futex park timeout for ring waits. Short on purpose: a lost doorbell
/// or a died-without-goodbye server costs one timeout, never a hang, and
/// every wake re-checks transport state (the poll-backstop idiom).
constexpr i64 kRingParkNs = 1'000'000;
}  // namespace

/// The client's half of the ring data plane. Owns the segment mapping
/// and the doorbell eventfd.
struct IngressClient::ShmEndpoint {
  shm::Segment seg;
  int event_fd = -1;
  shm::RingTx submit_tx;  ///< producer side of the submit ring
  shm::RingRx comp_rx;    ///< consumer side of the completion ring
  FrameBuffer slot_rx;    ///< reassembles frames carried by slots

  ~ShmEndpoint() {
    if (event_fd >= 0) ::close(event_fd);
  }
};

std::optional<IngressClient> IngressClient::connect(
    const std::string& socket_path, const std::string& client_name,
    std::string* error, Transport transport) {
  const auto fail = [&](std::string why) -> std::optional<IngressClient> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path)
    return fail("socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why =
        "connect " + socket_path + ": " + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }

  IngressClient c;
  c.fd_ = fd;
  c.alive_ = true;
  if (!c.send_bytes(encode(HelloFrame{kProtocolVersion, client_name})))
    return fail("handshake send: " + c.error_);
  // Pump until HELLO_ACK lands (the server may interleave nothing else
  // before it; ERROR means version rejection). The ack is tracked with an
  // explicit flag — a zero-credit grant is a handshake failure inside
  // process(), not a sentinel value this loop could spin on forever.
  while (!c.saw_hello_ack_ && c.alive_)
    if (!c.pump(/*block=*/true)) break;
  if (!c.saw_hello_ack_ || !c.alive_)
    return fail(c.error_.empty() ? "handshake failed" : c.error_);

  if (transport == Transport::kShm) {
    // Ring negotiation: SHM_REQ, then pump until the SHM_ACK (whose
    // sendmsg carries the memfd + doorbell eventfd) has been processed
    // and the segment validated/mapped inside process().
    c.want_shm_ = true;
    if (!c.send_bytes(encode(ShmReqFrame{0})))
      return fail("shm negotiation send: " + c.error_);
    while (c.ring_ == nullptr && c.alive_)
      if (!c.pump(/*block=*/true)) break;
    if (c.ring_ == nullptr || !c.alive_)
      return fail(c.error_.empty() ? "shm negotiation failed" : c.error_);
  }
  return c;
}

IngressClient::IngressClient(IngressClient&& other) noexcept {
  *this = std::move(other);
}

IngressClient& IngressClient::operator=(IngressClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    for (const int fd : pending_fds_) ::close(fd);
    fd_ = std::exchange(other.fd_, -1);
    alive_ = std::exchange(other.alive_, false);
    saw_hello_ack_ = other.saw_hello_ack_;
    want_shm_ = other.want_shm_;
    window_ = other.window_;
    credits_ = other.credits_;
    next_req_ = other.next_req_;
    rx_ = std::move(other.rx_);
    done_ = std::move(other.done_);
    error_ = std::move(other.error_);
    pending_fds_ = std::exchange(other.pending_fds_, {});
    ring_ = std::move(other.ring_);
  }
  return *this;
}

IngressClient::~IngressClient() {
  if (fd_ >= 0) ::close(fd_);
  for (const int fd : pending_fds_) ::close(fd);
}

u64 IngressClient::submit(const Request& req) {
  // Backpressure lands HERE — no credit, or (shm) a full submit ring —
  // never on the server's event loop. Socket: pump terminal frames until
  // a credit frees. Ring: harvest completions, then park on the progress
  // word of whichever resource we're blocked on until the server moves it.
  while (alive_) {
    u64 id = 0;
    if (try_submit(req, &id)) return id;
    if (!alive_) return 0;
    if (ring_ == nullptr) {
      if (!pump(/*block=*/true)) return 0;
      continue;
    }
    shm::RingHdr* wait_hdr =
        credits_ == 0 ? ring_->comp_rx.hdr() : ring_->submit_tx.hdr();
    const u32 seen = shm::progress_snapshot(wait_hdr);
    if (harvest_ring() > 0) continue;
    if (!pump(/*block=*/false)) continue;  // control plane: ERROR / close
    if (!shm::wait_progress(wait_hdr, seen, kRingParkNs))
      doorbell();  // timed out: re-ring in case the doorbell was lost
  }
  return 0;
}

bool IngressClient::try_submit(const Request& req, u64* req_id) {
  if (!ok() || credits_ == 0) return false;
  SubmitFrame m;
  m.req_id = next_req_;
  m.qos = static_cast<u8>(req.qos);
  m.deadline_ns = req.deadline_ns;
  m.count = req.count;
  m.sched_kind = static_cast<u8>(to_wire_sched(req.sched));
  m.chunk = req.chunk;
  m.workload = req.workload;
  const std::vector<u8> bytes = encode(m);
  if (ring_ != nullptr) {
    if (bytes.size() > shm::kSlotFrameBytes) {
      // Registry names are short; only misuse gets here — and silently
      // falling back to the socket would split the credit accounting.
      die("encoded SUBMIT does not fit a shm slot");
      return false;
    }
    shm::Slot* slot = ring_->submit_tx.try_begin();
    if (slot == nullptr) {
      if (ring_->submit_tx.corrupt()) die("shm submit ring corrupt");
      return false;  // ring full: same try-again contract as no credit
    }
    ring_->submit_tx.commit(slot, bytes.data(), static_cast<u16>(bytes.size()));
    doorbell();
    if (!alive_) return false;  // doorbell found the server gone
  } else {
    if (!send_bytes(bytes)) return false;
  }
  ++next_req_;
  --credits_;
  *req_id = m.req_id;
  return true;
}

IngressClient::Result IngressClient::wait(u64 req_id) {
  while (true) {
    const auto it = done_.find(req_id);
    if (it != done_.end()) {
      Result r = std::move(it->second);
      done_.erase(it);
      return r;
    }
    if (!alive_) {
      Result r;
      r.transport_ok = false;
      r.message = error_.empty() ? "connection closed" : error_;
      return r;
    }
    if (ring_ == nullptr) {
      if (!pump(/*block=*/true)) continue;  // death surfaces above
      continue;
    }
    // Ring wait ladder: snapshot the progress word BEFORE the harvest so
    // a completion published in between turns the park into an immediate
    // return instead of a lost wake.
    const u32 seen = shm::progress_snapshot(ring_->comp_rx.hdr());
    if (harvest_ring() > 0) continue;
    if (!pump(/*block=*/false)) continue;  // control plane: ERROR / close
    // The publish-time doorbell already rang; ring again only after a
    // timeout (a lost doorbell heals in one park period, and the common
    // path never wakes the server loop spuriously).
    if (!shm::wait_progress(ring_->comp_rx.hdr(), seen, kRingParkNs))
      doorbell();
  }
}

std::optional<IngressClient::Result> IngressClient::try_take(u64 req_id) {
  if (alive_) {
    (void)harvest_ring();
    (void)pump(/*block=*/false);
  }
  const auto it = done_.find(req_id);
  if (it == done_.end()) return std::nullopt;
  Result r = std::move(it->second);
  done_.erase(it);
  return r;
}

void IngressClient::cancel(u64 req_id) {
  if (ok()) (void)send_bytes(encode(CancelFrame{req_id}));
}

bool IngressClient::send_bytes(const std::vector<u8>& bytes) {
  usize off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed on us must surface as EPIPE on
    // the die() path below, not kill the client process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<usize>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    die(std::string("write: ") + std::strerror(errno));
    return false;
  }
  return true;
}

bool IngressClient::pump(bool block) {
  // Drain already-buffered frames first; only hit the socket when the
  // buffer holds no complete frame.
  while (true) {
    Decoded d = rx_.next();
    if (d.status == DecodeStatus::kOk) {
      process(std::move(d.frame));
      if (!alive_) return false;
      continue;
    }
    if (d.status == DecodeStatus::kBad) {
      die("malformed frame from server: " + d.error);
      return false;
    }
    break;  // kNeedMore
  }

  pollfd p{fd_, POLLIN, 0};
  const int rc = ::poll(&p, 1, block ? -1 : 0);
  if (rc < 0 && errno != EINTR) {
    die(std::string("poll: ") + std::strerror(errno));
    return false;
  }
  if (rc <= 0) return true;  // timeout (non-blocking probe) or EINTR

  u8 buf[4096];
  // recvmsg wrapper instead of plain read: SCM_RIGHTS descriptors (the
  // SHM_ACK's memfd + eventfd) land in pending_fds_ alongside the bytes
  // they rode with. On a pure socket connection it degrades to read().
  const ssize_t n = shm::recv_with_fds(fd_, buf, sizeof buf, &pending_fds_);
  if (n == 0) {
    die("server closed the connection");
    return false;
  }
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return true;
    die(std::string("read: ") + std::strerror(errno));
    return false;
  }
  rx_.append(buf, static_cast<usize>(n));

  while (true) {
    Decoded d = rx_.next();
    if (d.status == DecodeStatus::kNeedMore) return true;
    if (d.status == DecodeStatus::kBad) {
      die("malformed frame from server: " + d.error);
      return false;
    }
    process(std::move(d.frame));
    if (!alive_) return false;
  }
}

void IngressClient::process(Frame&& frame) {
  switch (type_of(frame)) {
    case FrameType::kHelloAck: {
      const auto& m = std::get<HelloAckFrame>(frame);
      if (saw_hello_ack_) {
        die("duplicate HELLO_ACK from server");
        return;
      }
      if (m.credits == 0) {
        // A zero-credit window could never submit anything; treat it as
        // the handshake failure it is instead of hanging in connect().
        die("server granted zero credits");
        return;
      }
      saw_hello_ack_ = true;
      window_ = m.credits;
      credits_ = m.credits;
      return;
    }
    case FrameType::kCredit:
      credits_ += std::get<CreditFrame>(frame).credits;
      return;
    case FrameType::kShmAck: {
      const auto& m = std::get<ShmAckFrame>(frame);
      if (!want_shm_ || ring_ != nullptr) {
        die("unexpected SHM_ACK");
        return;
      }
      if (pending_fds_.size() < 2) {
        die("SHM_ACK arrived without its descriptors");
        return;
      }
      const int memfd = pending_fds_[0];
      const int efd = pending_fds_[1];
      for (usize i = 2; i < pending_fds_.size(); ++i)
        ::close(pending_fds_[i]);
      pending_fds_.clear();
      std::string err;
      auto seg = shm::Segment::attach(memfd, m.submit_slots,
                                      m.completion_slots, m.segment_bytes,
                                      &err);  // owns/validates/maps memfd
      if (!seg.has_value()) {
        ::close(efd);
        die("shm attach: " + err);
        return;
      }
      auto ep = std::make_unique<ShmEndpoint>();
      ep->seg = std::move(*seg);
      ep->event_fd = efd;
      ep->submit_tx = shm::RingTx(ep->seg.submit_hdr(),
                                  ep->seg.submit_slots(), m.submit_slots);
      ep->comp_rx =
          shm::RingRx(ep->seg.completion_hdr(), ep->seg.completion_slots(),
                      m.completion_slots);
      ring_ = std::move(ep);
      return;
    }
    case FrameType::kCompleted: {
      const auto& m = std::get<CompletedFrame>(frame);
      Result r;
      r.status = static_cast<serve::JobStatus>(m.status);
      r.checksum = m.checksum;
      r.queue_wait_ns = m.queue_wait_ns;
      r.service_ns = m.service_ns;
      done_[m.req_id] = std::move(r);
      return;
    }
    case FrameType::kRejected: {
      auto& m = std::get<RejectedFrame>(frame);
      Result r;
      r.status = serve::JobStatus::kRejected;
      r.message = std::move(m.reason);
      done_[m.req_id] = std::move(r);
      return;
    }
    case FrameType::kError: {
      auto& m = std::get<ErrorFrame>(frame);
      if (m.req_id == 0) {
        // Connection-level: the server is about to close on us.
        die("server error: " + m.message);
        return;
      }
      Result r;
      r.status = serve::JobStatus::kFailed;
      r.message = std::move(m.message);
      done_[m.req_id] = std::move(r);
      return;
    }
    default:
      die(std::string("unexpected frame type ") + to_string(type_of(frame)) +
          " from server");
      return;
  }
}

usize IngressClient::harvest_ring() {
  if (ring_ == nullptr) return 0;
  usize harvested = 0;
  while (true) {
    const shm::Slot* slot = ring_->comp_rx.try_begin();
    if (slot == nullptr) {
      if (ring_->comp_rx.corrupt()) die("shm completion ring corrupt");
      break;
    }
    if (slot->len > shm::kSlotFrameBytes) {
      die("shm completion slot length out of range");
      break;
    }
    ring_->slot_rx.append(slot->frames, slot->len);
    ring_->comp_rx.commit();  // frees the slot (the server's reservation)
    ++harvested;
  }
  // Slots carry ordinary wire frames (terminal + folded CREDIT); they
  // flow through the exact same process() as socket frames.
  while (ring_ != nullptr) {
    Decoded d = ring_->slot_rx.next();
    if (d.status == DecodeStatus::kNeedMore) break;
    if (d.status == DecodeStatus::kBad) {
      die("malformed frame in shm slot: " + d.error);
      break;
    }
    process(std::move(d.frame));
    if (!alive_) break;
  }
  return harvested;
}

void IngressClient::doorbell() {
  if (ring_ == nullptr) return;
  // seq_cst load, no fence (ThreadSanitizer cannot model
  // std::atomic_thread_fence — GCC's -Wtsan plus -Werror breaks the CI
  // tsan leg, as rt/os_bridge.cc documents). The publish (release store
  // of the slot stamp) can still reorder against the server's seq_cst
  // park-then-recheck by the classic store/load window; the wait loops'
  // futex timeouts close it — a missed doorbell costs one re-ring after
  // kRingParkNs, never a hang.
  const u32 state =
      ring_->seg.hdr()->server_state.load(std::memory_order_seq_cst);
  if (state == shm::kServerGone) {
    die("server tore down the shm transport");
    return;
  }
  if (state != shm::kServerParked) return;  // hot server: no syscall
  const u64 one = 1;
  (void)::write(ring_->event_fd, &one, sizeof one);
}

void IngressClient::die(std::string why) {
  alive_ = false;
  if (error_.empty()) error_ = std::move(why);
}

}  // namespace aid::ingress
