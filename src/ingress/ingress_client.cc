#include "ingress/ingress_client.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace aid::ingress {

std::optional<IngressClient> IngressClient::connect(
    const std::string& socket_path, const std::string& client_name,
    std::string* error) {
  const auto fail = [&](std::string why) -> std::optional<IngressClient> {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path)
    return fail("socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string why =
        "connect " + socket_path + ": " + std::strerror(errno);
    ::close(fd);
    return fail(why);
  }

  IngressClient c;
  c.fd_ = fd;
  c.alive_ = true;
  if (!c.send_bytes(encode(HelloFrame{kProtocolVersion, client_name})))
    return fail("handshake send: " + c.error_);
  // Pump until HELLO_ACK lands (the server may interleave nothing else
  // before it; ERROR means version rejection). The ack is tracked with an
  // explicit flag — a zero-credit grant is a handshake failure inside
  // process(), not a sentinel value this loop could spin on forever.
  while (!c.saw_hello_ack_ && c.alive_)
    if (!c.pump(/*block=*/true)) break;
  if (!c.saw_hello_ack_ || !c.alive_)
    return fail(c.error_.empty() ? "handshake failed" : c.error_);
  return c;
}

IngressClient::IngressClient(IngressClient&& other) noexcept {
  *this = std::move(other);
}

IngressClient& IngressClient::operator=(IngressClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    alive_ = std::exchange(other.alive_, false);
    saw_hello_ack_ = other.saw_hello_ack_;
    window_ = other.window_;
    credits_ = other.credits_;
    next_req_ = other.next_req_;
    rx_ = std::move(other.rx_);
    done_ = std::move(other.done_);
    error_ = std::move(other.error_);
  }
  return *this;
}

IngressClient::~IngressClient() {
  if (fd_ >= 0) ::close(fd_);
}

u64 IngressClient::submit(const Request& req) {
  // Credit backpressure lands HERE: pump terminal frames (each returns a
  // CREDIT) until a credit frees. The server's loop is never stalled by
  // this client being over its window.
  while (alive_ && credits_ == 0)
    if (!pump(/*block=*/true)) return 0;
  u64 id = 0;
  return try_submit(req, &id) ? id : 0;
}

bool IngressClient::try_submit(const Request& req, u64* req_id) {
  if (!ok() || credits_ == 0) return false;
  SubmitFrame m;
  m.req_id = next_req_++;
  m.qos = static_cast<u8>(req.qos);
  m.deadline_ns = req.deadline_ns;
  m.count = req.count;
  m.sched_kind = static_cast<u8>(to_wire_sched(req.sched));
  m.chunk = req.chunk;
  m.workload = req.workload;
  if (!send_bytes(encode(m))) return false;
  --credits_;
  *req_id = m.req_id;
  return true;
}

IngressClient::Result IngressClient::wait(u64 req_id) {
  while (true) {
    const auto it = done_.find(req_id);
    if (it != done_.end()) {
      Result r = std::move(it->second);
      done_.erase(it);
      return r;
    }
    if (!alive_ || !pump(/*block=*/true)) {
      Result r;
      r.transport_ok = false;
      r.message = error_.empty() ? "connection closed" : error_;
      return r;
    }
  }
}

std::optional<IngressClient::Result> IngressClient::try_take(u64 req_id) {
  if (alive_) (void)pump(/*block=*/false);
  const auto it = done_.find(req_id);
  if (it == done_.end()) return std::nullopt;
  Result r = std::move(it->second);
  done_.erase(it);
  return r;
}

void IngressClient::cancel(u64 req_id) {
  if (ok()) (void)send_bytes(encode(CancelFrame{req_id}));
}

bool IngressClient::send_bytes(const std::vector<u8>& bytes) {
  usize off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed on us must surface as EPIPE on
    // the die() path below, not kill the client process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<usize>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    die(std::string("write: ") + std::strerror(errno));
    return false;
  }
  return true;
}

bool IngressClient::pump(bool block) {
  // Drain already-buffered frames first; only hit the socket when the
  // buffer holds no complete frame.
  while (true) {
    Decoded d = rx_.next();
    if (d.status == DecodeStatus::kOk) {
      process(std::move(d.frame));
      if (!alive_) return false;
      continue;
    }
    if (d.status == DecodeStatus::kBad) {
      die("malformed frame from server: " + d.error);
      return false;
    }
    break;  // kNeedMore
  }

  pollfd p{fd_, POLLIN, 0};
  const int rc = ::poll(&p, 1, block ? -1 : 0);
  if (rc < 0 && errno != EINTR) {
    die(std::string("poll: ") + std::strerror(errno));
    return false;
  }
  if (rc <= 0) return true;  // timeout (non-blocking probe) or EINTR

  u8 buf[4096];
  const ssize_t n = ::read(fd_, buf, sizeof buf);
  if (n == 0) {
    die("server closed the connection");
    return false;
  }
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return true;
    die(std::string("read: ") + std::strerror(errno));
    return false;
  }
  rx_.append(buf, static_cast<usize>(n));

  while (true) {
    Decoded d = rx_.next();
    if (d.status == DecodeStatus::kNeedMore) return true;
    if (d.status == DecodeStatus::kBad) {
      die("malformed frame from server: " + d.error);
      return false;
    }
    process(std::move(d.frame));
    if (!alive_) return false;
  }
}

void IngressClient::process(Frame&& frame) {
  switch (type_of(frame)) {
    case FrameType::kHelloAck: {
      const auto& m = std::get<HelloAckFrame>(frame);
      if (saw_hello_ack_) {
        die("duplicate HELLO_ACK from server");
        return;
      }
      if (m.credits == 0) {
        // A zero-credit window could never submit anything; treat it as
        // the handshake failure it is instead of hanging in connect().
        die("server granted zero credits");
        return;
      }
      saw_hello_ack_ = true;
      window_ = m.credits;
      credits_ = m.credits;
      return;
    }
    case FrameType::kCredit:
      credits_ += std::get<CreditFrame>(frame).credits;
      return;
    case FrameType::kCompleted: {
      const auto& m = std::get<CompletedFrame>(frame);
      Result r;
      r.status = static_cast<serve::JobStatus>(m.status);
      r.checksum = m.checksum;
      r.queue_wait_ns = m.queue_wait_ns;
      r.service_ns = m.service_ns;
      done_[m.req_id] = std::move(r);
      return;
    }
    case FrameType::kRejected: {
      auto& m = std::get<RejectedFrame>(frame);
      Result r;
      r.status = serve::JobStatus::kRejected;
      r.message = std::move(m.reason);
      done_[m.req_id] = std::move(r);
      return;
    }
    case FrameType::kError: {
      auto& m = std::get<ErrorFrame>(frame);
      if (m.req_id == 0) {
        // Connection-level: the server is about to close on us.
        die("server error: " + m.message);
        return;
      }
      Result r;
      r.status = serve::JobStatus::kFailed;
      r.message = std::move(m.message);
      done_[m.req_id] = std::move(r);
      return;
    }
    default:
      die(std::string("unexpected frame type ") + to_string(type_of(frame)) +
          " from server");
      return;
  }
}

void IngressClient::die(std::string why) {
  alive_ = false;
  if (error_.empty()) error_ = std::move(why);
}

}  // namespace aid::ingress
