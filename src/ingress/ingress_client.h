// IngressClient — blocking client library for the socket ingress.
//
// The well-behaved counterpart of IngressServer's credit discipline: the
// client tracks its credit balance (HELLO_ACK grant + CREDIT returns) and
// submit() BLOCKS THE CLIENT — pumping the socket for terminal frames —
// when the window is exhausted, so backpressure lands here, never on the
// server's event loop. try_submit() is the non-blocking probe tests use
// to show exactly that ("credit-window exhaustion blocks the client, not
// the server").
//
// Concurrency model: one connection, one pumping thread. All methods must
// be called from a single thread (or externally serialized); results for
// OTHER requests arriving while wait()ing for one are parked and handed
// out when their wait() is called. Ticket-style: submit() returns a
// req_id handle, wait(req_id) blocks until that request's terminal frame.
//
// Transports: kSocket moves every frame over the socket. kShm negotiates
// a shared-memory ring pair (SHM_REQ/SHM_ACK + SCM_RIGHTS, see
// src/ingress/shm_ring.h) during connect(); SUBMIT then becomes a slot
// write + publish stamp + conditional doorbell, and terminal frames
// (+ folded credits) are harvested from the completion ring — the same
// frames, the same process() path, no syscalls while the server is hot.
// Blocking waits use the spin→yield→futex ladder on the ring's progress
// words with short timeouts (transport death and lost doorbells surface
// within a timeout, never as a hang). The socket stays connected as the
// control plane: CANCEL, connection-level ERROR and teardown.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ingress/shm_ring.h"
#include "ingress/wire.h"
#include "sched/schedule_spec.h"
#include "serve/job.h"
#include "serve/qos.h"

namespace aid::ingress {

class IngressClient {
 public:
  enum class Transport : u8 {
    kSocket,  ///< every frame over the AF_UNIX socket (works cross-mount)
    kShm,     ///< same-host ring data plane; socket kept as control plane
  };

  struct Request {
    std::string workload;  ///< registry name (see aid_submit --list)
    i64 count = 1;
    serve::QosClass qos = serve::QosClass::kNormal;
    i64 deadline_ns = 0;  ///< whole-life relative deadline (0 = none)
    sched::ScheduleKind sched = sched::ScheduleKind::kDynamic;
    i64 chunk = 0;
  };

  /// Terminal outcome of one request. `transport_ok` false means the
  /// CONNECTION died before the terminal frame arrived (status stays
  /// kPending and `message` holds the transport error); everything else
  /// mirrors the server's terminal frame.
  struct Result {
    bool transport_ok = true;
    serve::JobStatus status = serve::JobStatus::kPending;
    double checksum = 0.0;
    std::string message;  ///< reject reason / error text
    i64 queue_wait_ns = 0;
    i64 service_ns = 0;
  };

  /// Connect + HELLO/HELLO_ACK handshake (blocking); with kShm, also the
  /// SHM_REQ/SHM_ACK ring negotiation — a server that refuses the ring
  /// is a connect failure, not a silent fallback. Returns nullopt and
  /// sets `error` on failure. `client_name` is the connection's tenant id
  /// in the server's per-tenant stats.
  [[nodiscard]] static std::optional<IngressClient> connect(
      const std::string& socket_path, const std::string& client_name,
      std::string* error, Transport transport = Transport::kSocket);

  IngressClient(IngressClient&& other) noexcept;
  IngressClient& operator=(IngressClient&& other) noexcept;
  IngressClient(const IngressClient&) = delete;
  IngressClient& operator=(const IngressClient&) = delete;
  ~IngressClient();

  [[nodiscard]] bool ok() const { return fd_ >= 0 && alive_; }
  [[nodiscard]] const std::string& last_error() const { return error_; }

  /// The window granted at HELLO_ACK and the credits currently held.
  [[nodiscard]] u32 credit_window() const { return window_; }
  [[nodiscard]] u32 credits() const { return credits_; }

  /// True when the shm ring data plane is active on this connection.
  [[nodiscard]] bool shm_active() const { return ring_ != nullptr; }

  /// Submit, blocking (pumping frames) while no credit is available.
  /// Returns the req_id handle, or 0 when the connection died.
  [[nodiscard]] u64 submit(const Request& req);

  /// Non-blocking submit: false (no frame sent) when no credit is held
  /// or the connection is dead.
  [[nodiscard]] bool try_submit(const Request& req, u64* req_id);

  /// Block until `req_id`'s terminal frame (pumping other completions
  /// into the parked set as they arrive).
  [[nodiscard]] Result wait(u64 req_id);

  /// Non-blocking: take req_id's result if its terminal frame already
  /// arrived (reads whatever is buffered on the socket first).
  [[nodiscard]] std::optional<Result> try_take(u64 req_id);

  /// Fire a CANCEL frame (cooperative; the terminal frame still arrives).
  void cancel(u64 req_id);

 private:
  struct ShmEndpoint;

  IngressClient() = default;

  [[nodiscard]] bool send_bytes(const std::vector<u8>& bytes);
  /// Read + process frames until `block` would; false on transport death.
  [[nodiscard]] bool pump(bool block);
  void process(Frame&& frame);
  void die(std::string why);

  /// Drain the completion ring through the ordinary frame path. Returns
  /// slots harvested (0 = nothing pending); may die() on ring corruption.
  usize harvest_ring();
  /// Ring the server's doorbell iff it announced itself parked; detects
  /// a torn-down transport (server_state == kServerGone) as death.
  void doorbell();

  int fd_ = -1;
  bool alive_ = false;
  bool saw_hello_ack_ = false;  ///< HELLO_ACK received (window_ is valid)
  bool want_shm_ = false;       ///< SHM_REQ sent; SHM_ACK is legal
  u32 window_ = 0;
  u32 credits_ = 0;
  u64 next_req_ = 1;
  FrameBuffer rx_;
  std::map<u64, Result> done_;  ///< parked terminal results
  std::string error_;
  std::vector<int> pending_fds_;        ///< SCM_RIGHTS fds awaiting SHM_ACK
  std::unique_ptr<ShmEndpoint> ring_;  ///< active shm data plane (or null)
};

}  // namespace aid::ingress
