#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace aid {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  AID_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  AID_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TextTable& TextTable::cell(i64 value) { return cell(std::to_string(value)); }

void TextTable::print(std::ostream& os) const {
  std::vector<usize> width(header_.size());
  for (usize c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (usize c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (usize c = 0; c < width.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << text << std::string(width[c] - text.size(), ' ');
      os << (c + 1 < width.size() ? "  " : "");
    }
    os << '\n';
  };

  emit(header_);
  usize total = 0;
  for (usize w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (usize c = 0; c < cells.size(); ++c) {
      AID_CHECK_MSG(cells[c].find(',') == std::string::npos,
                    "CSV cells must not contain commas");
      os << cells[c] << (c + 1 < cells.size() ? "," : "");
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string ascii_bar(double value, double max_value, int max_width) {
  if (max_value <= 0.0 || value <= 0.0 || max_width <= 0) return "";
  const double frac = std::min(1.0, value / max_value);
  const int n = static_cast<int>(frac * max_width + 0.5);
  return std::string(static_cast<usize>(n), '#');
}

}  // namespace aid
