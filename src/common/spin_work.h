// Calibrated CPU-bound busy work.
//
// The real-thread engine needs two things the paper got from hardware:
//  (1) iterations that consume a controllable amount of CPU time, and
//  (2) "small" cores that run the same iteration slower than "big" ones.
// spin_work provides (1): a side-effect-resistant arithmetic kernel whose
// cost scales linearly with the requested unit count, plus a calibration
// routine that maps units/second on the host. (2) lives in rt/throttle.
#pragma once

#include "common/types.h"

namespace aid {

/// Execute `units` abstract work units of pure arithmetic. Returns a value
/// derived from the computation so the optimizer cannot delete the loop.
/// One unit is a handful of dependent FLOPs (~a few ns on current hardware).
u64 spin_work(u64 units) noexcept;

/// Measured host throughput in work units per second. First call calibrates
/// (takes a few milliseconds), subsequent calls return the cached value.
[[nodiscard]] double spin_units_per_second();

/// Busy-wait for approximately `ns` nanoseconds of spinning (not sleeping),
/// using the calibration above. Used by the duty-cycle throttler.
void spin_for_nanos(Nanos ns) noexcept;

}  // namespace aid
