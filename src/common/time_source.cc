#include "common/time_source.h"

#include <ctime>

namespace aid {

Nanos ThreadCpuTimeSource::now() const {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<Nanos>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
#endif
  // Fallback: wall clock (no worse than the paper's baseline behavior).
  return SteadyTimeSource().now();
}

}  // namespace aid
