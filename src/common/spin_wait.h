// Spin-then-block building blocks for the fork/join fast path.
//
// The runtime's dispatch and completion waits (rt/team.cc) first spin with
// CPU-relax hints — a handful of cache-coherency round-trips is orders of
// magnitude cheaper than a futex sleep/wake when the awaited store lands
// within microseconds — and only then fall back to a blocking
// std::atomic::wait (a futex on Linux). The spin must be *bounded and
// small*: on an oversubscribed host the awaited thread needs the very CPU
// the spinner is burning, so spinning past a few hundred pauses only delays
// the wake-up it is waiting for.
#pragma once

#include <atomic>
#include <thread>

#include "common/types.h"

namespace aid {

/// Polite busy-wait hint (x86 `pause` / arm `yield`): reduces speculative
/// re-execution of the spin loop and yields pipeline resources to the
/// sibling hyperthread.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded exponential backoff: pause() executes a burst of cpu_relax that
/// doubles per round (capped), drawing down a fixed total budget. Once
/// exhausted() the caller should block instead of continuing to spin.
class SpinBackoff {
 public:
  explicit SpinBackoff(i32 total_pauses) : left_(total_pauses) {}

  [[nodiscard]] bool exhausted() const noexcept { return left_ <= 0; }

  void pause() noexcept {
    const i32 burst = burst_ < left_ ? burst_ : left_;
    for (i32 i = 0; i < burst; ++i) cpu_relax();
    left_ -= burst;
    if (burst_ < kMaxBurst) burst_ <<= 1;
  }

 private:
  static constexpr i32 kMaxBurst = 64;
  i32 burst_ = 1;
  i32 left_;
};

/// Spin budget (total cpu_relax count) matched to how the team fits the
/// host: when the team oversubscribes the CPUs, long spins steal cycles
/// from the thread being awaited, so the budget collapses to a token spin
/// that still catches already-satisfied waits without a syscall.
[[nodiscard]] inline i32 default_spin_budget(int nthreads) noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  const bool oversubscribed =
      hw != 0 && static_cast<unsigned>(nthreads) > hw;
  return oversubscribed ? 32 : 256;
}

/// Spin-then-yield wait ladder: poll() until it returns true or both
/// budgets are exhausted (the caller then blocks — futex). Keeps the
/// backoff policy in one place for every runtime wait site.
template <typename Poll>
[[nodiscard]] inline bool spin_then_yield(Poll&& poll, i32 spin_budget,
                                          i32 yield_budget) {
  SpinBackoff backoff(spin_budget);
  while (!backoff.exhausted()) {
    backoff.pause();
    if (poll()) return true;
  }
  for (i32 y = 0; y < yield_budget; ++y) {
    std::this_thread::yield();
    if (poll()) return true;
  }
  return false;
}

/// Yield budget for the phase between spinning and the futex sleep. On an
/// oversubscribed host the awaited thread is usually *runnable, not
/// running*: sched_yield donates the CPU to it directly, which replaces a
/// futex sleep + peer wake syscall pair per handoff with a single context
/// switch. When the team fits the host there is nobody to yield to — the
/// awaited thread runs on its own CPU — so the phase is skipped entirely.
[[nodiscard]] inline i32 default_yield_budget(int nthreads) noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  const bool oversubscribed =
      hw != 0 && static_cast<unsigned>(nthreads) > hw;
  return oversubscribed ? 64 : 0;
}

}  // namespace aid
