#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aid::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double gmean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    AID_CHECK_MSG(x > 0.0, "gmean requires strictly positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const usize n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double cov(std::span<const double> xs) {
  const double m = mean(xs);
  return m == 0.0 ? 0.0 : stdev(xs) / m;
}

std::vector<double> normalize(std::span<const double> xs, double base) {
  AID_CHECK_MSG(base != 0.0, "normalize: zero baseline");
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(x / base);
  return out;
}

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Welford::stdev() const { return std::sqrt(variance()); }

double paper_protocol_time(std::span<const double> run_times) {
  AID_CHECK_MSG(run_times.size() >= 2,
                "paper protocol needs a warm-up run plus measured runs");
  return gmean(run_times.subspan(1));
}

}  // namespace aid::stats
