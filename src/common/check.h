// Lightweight precondition/invariant checking.
//
// AID_CHECK is always on (used for API misuse that would otherwise corrupt
// scheduler state); AID_DCHECK compiles out in release builds and guards
// internal invariants on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace aid::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "libaid: CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace aid::detail

#define AID_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) [[unlikely]]                                        \
      ::aid::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define AID_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) [[unlikely]]                                        \
      ::aid::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define AID_DCHECK(cond) ((void)0)
#else
#define AID_DCHECK(cond) AID_CHECK(cond)
#endif
