#include "common/fault_hook.h"

namespace aid::fault_hook {

std::atomic<bool (*)()> drop_wake{nullptr};

}  // namespace aid::fault_hook
