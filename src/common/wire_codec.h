// Byte-level wire encode/decode helpers (explicit little-endian).
//
// The ingress wire protocol (src/ingress/wire.h) serializes every scalar
// little-endian regardless of host order, so a frame written on one
// machine decodes identically on any other. Two tiny classes:
//
//   WireWriter — append-only encoder into a std::vector<u8>.
//   WireReader — bounds-checked decoder over a borrowed byte span. A
//       read past the end (or an over-long string) does NOT throw or
//       crash: it latches ok() = false and returns zero values, so a
//       decoder can run every field read unconditionally and check ok()
//       once at the end. This is the property the ingress fuzz tests
//       lean on: arbitrary garbage bytes must never crash the server.
//
// Strings are length-prefixed (u16 byte count, no NUL), capped at
// kWireMaxString — wire strings are names/reasons, not payloads.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace aid::wire {

/// Longest string the codec will encode or decode (tenant names, workload
/// ids, reject reasons, truncated error messages).
inline constexpr usize kWireMaxString = 256;

class WireWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }

  void put_u16(u16 v) {
    buf_.push_back(static_cast<u8>(v));
    buf_.push_back(static_cast<u8>(v >> 8));
  }

  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }

  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }

  void put_i64(i64 v) { put_u64(static_cast<u64>(v)); }

  /// IEEE-754 bits, little-endian (both ends of the wire are IEEE-754;
  /// the bit pattern is the portable representation).
  void put_f64(double v) {
    u64 bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }

  /// u16 length prefix + raw bytes. Over-long strings are truncated to
  /// kWireMaxString (encode never fails; the cap is a protocol constant).
  void put_str(std::string_view s) {
    if (s.size() > kWireMaxString) s = s.substr(0, kWireMaxString);
    put_u16(static_cast<u16>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<u8>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<u8> take() { return std::move(buf_); }
  [[nodiscard]] usize size() const { return buf_.size(); }

 private:
  std::vector<u8> buf_;
};

class WireReader {
 public:
  WireReader(const u8* data, usize size) : data_(data), size_(size) {}

  [[nodiscard]] u8 get_u8() {
    if (!take(1)) return 0;
    return data_[off_++];
  }

  [[nodiscard]] u16 get_u16() {
    if (!take(2)) return 0;
    u16 v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<u16>(data_[off_++]) << (8 * i);
    return v;
  }

  [[nodiscard]] u32 get_u32() {
    if (!take(4)) return 0;
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data_[off_++]) << (8 * i);
    return v;
  }

  [[nodiscard]] u64 get_u64() {
    if (!take(8)) return 0;
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data_[off_++]) << (8 * i);
    return v;
  }

  [[nodiscard]] i64 get_i64() { return static_cast<i64>(get_u64()); }

  [[nodiscard]] double get_f64() {
    const u64 bits = get_u64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    return v;
  }

  [[nodiscard]] std::string get_str() {
    const u16 len = get_u16();
    if (len > kWireMaxString || !take(len)) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + off_), len);
    off_ += len;
    return s;
  }

  /// False once any read overran the span (all reads after that return
  /// zero values). Decoders check this once, after reading every field.
  [[nodiscard]] bool ok() const { return ok_; }

  /// Bytes not yet consumed; a strict decoder requires 0 at the end.
  [[nodiscard]] usize remaining() const { return ok_ ? size_ - off_ : 0; }

 private:
  [[nodiscard]] bool take(usize n) {
    if (!ok_ || size_ - off_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const u8* data_;
  usize size_;
  usize off_ = 0;
  bool ok_ = true;
};

}  // namespace aid::wire
