// Deterministic pseudo-random number generation.
//
// All workload cost profiles and synthetic inputs are seeded so that every
// figure bench reproduces bit-for-bit. xoshiro256** is used instead of
// std::mt19937 because its state is 4 words (cheap to embed per-thread) and
// its output is identical across standard library implementations.
#pragma once

#include <cmath>

#include "common/check.h"
#include "common/types.h"

namespace aid {

/// SplitMix64; used to seed Xoshiro and as a cheap hash.
[[nodiscard]] constexpr u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), public domain reference algorithm.
class Rng {
 public:
  explicit Rng(u64 seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  [[nodiscard]] u64 next_u64() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] i64 uniform_int(i64 lo, i64 hi) {
    AID_CHECK(lo <= hi);
    const u64 span = static_cast<u64>(hi - lo) + 1;
    return lo + static_cast<i64>(next_u64() % span);
  }

  /// Standard normal via Box–Muller (no cached second value: determinism over
  /// micro-efficiency; profiles draw few samples).
  [[nodiscard]] double normal(double mu = 0.0, double sigma = 1.0) {
    double u1 = next_double();
    while (u1 <= 1e-12) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mu + sigma * r * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

 private:
  [[nodiscard]] static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  u64 s_[4]{};
};

}  // namespace aid
