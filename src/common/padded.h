// Cache-line isolation for per-thread records.
//
// The scheduler hot paths index contiguous arrays by thread id (per-thread
// scheduler state, per-worker throttles, per-worker dispatch docks, per-slot
// removal counters). Without padding, neighboring elements share a cache
// line and every write by one thread invalidates the line under its
// neighbors — false sharing that scales with the very thread counts the
// paper's Figs. 6-8 sweep. Padded<T> pads and aligns each element to
// kCacheLineBytes so element i is the only resident of its line(s).
#pragma once

#include <type_traits>
#include <utility>

#include "common/types.h"

namespace aid {

/// A T in its own cache line(s). Use as the element type of per-thread
/// arrays: std::vector<Padded<PerThread>>. Access via * / -> / value.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  Padded() = default;

  /// Forwarding constructor so vectors can emplace_back(args-of-T...).
  /// Constrained so a single Padded argument still picks the copy/move
  /// constructor instead of trying T(Padded&).
  template <typename... Args>
    requires(!(sizeof...(Args) == 1 &&
               (std::is_same_v<std::remove_cvref_t<Args>, Padded> && ...)))
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T value{};

  [[nodiscard]] T& operator*() noexcept { return value; }
  [[nodiscard]] const T& operator*() const noexcept { return value; }
  [[nodiscard]] T* operator->() noexcept { return &value; }
  [[nodiscard]] const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(Padded<char>) == kCacheLineBytes);
static_assert(alignof(Padded<char>) == kCacheLineBytes);

}  // namespace aid
