#include "common/env.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace aid::env {

namespace {

std::mutex& warn_mutex() {
  static std::mutex mu;
  return mu;
}

std::set<std::string, std::less<>>& warned_set() {
  static std::set<std::string, std::less<>> warned;
  return warned;
}

}  // namespace

void warn_once_ignored(std::string_view name, std::string_view value,
                       std::string_view expected) {
  // Warn once per variable. Guarded: runtimes read the environment from
  // multiple threads (lazy per-construct config), and a flood of identical
  // warnings would bury the one line the user needs.
  {
    const std::scoped_lock lock(warn_mutex());
    if (!warned_set().emplace(name).second) return;
  }
  std::fprintf(stderr, "libaid: ignoring %.*s=\"%.*s\" (expected %.*s)\n",
               static_cast<int>(name.size()), name.data(),
               static_cast<int>(value.size()), value.data(),
               static_cast<int>(expected.size()), expected.data());
}

void reset_warnings() {
  const std::scoped_lock lock(warn_mutex());
  warned_set().clear();
}

std::optional<std::string> get(std::string_view name) {
  const std::string key(name);
  const char* v = std::getenv(key.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::string_view trim(std::string_view text) {
  usize b = 0;
  usize e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0)
    --e;
  return text.substr(b, e - b);
}

std::optional<i64> parse_int(std::string_view text) {
  const std::string_view t = trim(text);
  i64 value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string t(trim(text));
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  std::string t(trim(text));
  for (char& c : t) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (t == "1" || t == "true" || t == "yes" || t == "on") return true;
  if (t == "0" || t == "false" || t == "no" || t == "off") return false;
  return std::nullopt;
}

std::string get_string(std::string_view name, std::string_view fallback) {
  const auto v = get(name);
  return v ? *v : std::string(fallback);
}

i64 get_int(std::string_view name, i64 fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  const auto parsed = parse_int(*v);
  if (!parsed) {
    warn_once_ignored(name, *v, "an integer");
    return fallback;
  }
  return *parsed;
}

i64 get_int_at_least(std::string_view name, i64 fallback, i64 min) {
  const auto v = get(name);
  if (!v) return fallback;
  char expected[64];
  std::snprintf(expected, sizeof expected, "an integer >= %lld",
                static_cast<long long>(min));
  const auto parsed = parse_int(*v);
  if (!parsed || *parsed < min) {
    warn_once_ignored(name, *v, expected);
    return fallback;
  }
  return *parsed;
}

double get_double(std::string_view name, double fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  const auto parsed = parse_double(*v);
  if (!parsed) {
    warn_once_ignored(name, *v, "a real number");
    return fallback;
  }
  return *parsed;
}

bool get_bool(std::string_view name, bool fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  const auto parsed = parse_bool(*v);
  if (!parsed) {
    warn_once_ignored(name, *v, "one of 1|0|true|false|yes|no|on|off");
    return fallback;
  }
  return *parsed;
}

std::vector<std::string> split_list(std::string_view text, char delim) {
  std::vector<std::string> out;
  usize start = 0;
  while (start <= text.size()) {
    usize pos = text.find(delim, start);
    if (pos == std::string_view::npos) pos = text.size();
    const std::string_view piece = trim(text.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

ScopedSet::ScopedSet(std::string name, std::string value)
    : name_(std::move(name)), saved_(get(name_)) {
  ::setenv(name_.c_str(), value.c_str(), /*overwrite=*/1);
}

ScopedSet::~ScopedSet() {
  if (saved_) {
    ::setenv(name_.c_str(), saved_->c_str(), 1);
  } else {
    ::unsetenv(name_.c_str());
  }
}

}  // namespace aid::env
