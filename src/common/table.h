// Plain-text table and CSV emission for the figure/table harnesses.
//
// Every bench binary prints the same rows/series the paper reports; this
// module keeps the formatting uniform (fixed-width aligned columns, optional
// CSV mirror for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace aid {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision so diffs between runs stay readable.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row; subsequent add_* calls append cells to it.
  TextTable& row();
  TextTable& cell(std::string text);
  TextTable& cell(double value, int precision = 3);
  TextTable& cell(i64 value);

  [[nodiscard]] usize num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Render with columns padded to their widest cell.
  void print(std::ostream& os) const;

  /// CSV rendering (no quoting needed: cells never contain commas here,
  /// enforced with a check).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with TextTable).
[[nodiscard]] std::string format_double(double value, int precision = 3);

/// Render a horizontal bar of width proportional to `value`, capped at
/// `max_width` characters when value == `max_value`. Used by the ASCII
/// figure printers to sketch bar charts next to the numbers.
[[nodiscard]] std::string ascii_bar(double value, double max_value,
                                    int max_width = 40);

}  // namespace aid
