// Environment-variable parsing.
//
// The paper activates AID without touching application code: the schedule and
// its parameters are read from the environment at startup (the analog of
// OMP_SCHEDULE / GOMP_AMP_AFFINITY). This module centralizes the parsing so
// runtime configuration has one implementation and one set of tests.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace aid::env {

/// Raw lookup; nullopt when the variable is unset.
[[nodiscard]] std::optional<std::string> get(std::string_view name);

/// Typed lookups: return `fallback` when unset; when set but unparsable
/// they warn ONCE per variable to stderr and return `fallback` (not an
/// error), so a bad environment never aborts a user application — matching
/// libgomp's forgiving behavior while still telling the user their knob
/// silently did nothing (AID_SHARDS=abc used to vanish without a trace).
[[nodiscard]] std::string get_string(std::string_view name,
                                     std::string_view fallback);
[[nodiscard]] i64 get_int(std::string_view name, i64 fallback);
[[nodiscard]] double get_double(std::string_view name, double fallback);
[[nodiscard]] bool get_bool(std::string_view name, bool fallback);

/// get_int with a domain floor: values that parse but fall below `min`
/// (e.g. a negative chunk size or AID_NUM_THREADS=-4) get the same
/// warn-once + fallback treatment as unparsable text.
[[nodiscard]] i64 get_int_at_least(std::string_view name, i64 fallback,
                                   i64 min);

/// The warn-once channel behind the typed lookups, exposed for knobs whose
/// grammar lives outside this module (enum-valued variables like
/// AID_POLICY / AID_SERVE_POLICY). Prints
///   libaid: ignoring NAME="VALUE" (expected GRAMMAR)
/// to stderr, at most once per variable name per process.
void warn_once_ignored(std::string_view name, std::string_view value,
                       std::string_view expected);

/// Test hook: forget which variables have already warned (the warn-once
/// set is process-global; tests reuse variable names).
void reset_warnings();

/// Parse helpers exposed for tests and for OMP_SCHEDULE-style strings.
[[nodiscard]] std::optional<i64> parse_int(std::string_view text);
[[nodiscard]] std::optional<double> parse_double(std::string_view text);
[[nodiscard]] std::optional<bool> parse_bool(std::string_view text);

/// Split on a delimiter, trimming ASCII whitespace from each piece; empty
/// pieces are dropped ("a, b,,c" -> {"a","b","c"}).
[[nodiscard]] std::vector<std::string> split_list(std::string_view text,
                                                  char delim = ',');

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Scoped environment override for tests (set on construction, restore on
/// destruction). Not thread-safe: setenv never is; tests use it serially.
class ScopedSet {
 public:
  ScopedSet(std::string name, std::string value);
  ~ScopedSet();
  ScopedSet(const ScopedSet&) = delete;
  ScopedSet& operator=(const ScopedSet&) = delete;

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

}  // namespace aid::env
