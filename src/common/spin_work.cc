#include "common/spin_work.h"

#include <atomic>
#include <chrono>

namespace aid {
namespace {

// Dependent multiply-add chain: the result of each step feeds the next, so
// neither the compiler nor an out-of-order core can collapse the loop.
u64 chain(u64 x, u64 rounds) noexcept {
  u64 acc = x | 1;
  for (u64 i = 0; i < rounds; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    acc ^= acc >> 29;
  }
  return acc;
}

std::atomic<u64> g_sink{0};

double calibrate() {
  using clock = std::chrono::steady_clock;
  // Warm up, then time a block large enough to dwarf clock granularity.
  g_sink.fetch_add(chain(1, 10'000), std::memory_order_relaxed);
  constexpr u64 kUnits = 2'000'000;
  const auto t0 = clock::now();
  const u64 r = chain(42, kUnits);
  const auto t1 = clock::now();
  g_sink.fetch_add(r, std::memory_order_relaxed);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? static_cast<double>(kUnits) / secs : 1e9;
}

}  // namespace

u64 spin_work(u64 units) noexcept {
  const u64 r = chain(units + 7, units);
  g_sink.fetch_add(r, std::memory_order_relaxed);
  return r;
}

double spin_units_per_second() {
  static const double rate = calibrate();
  return rate;
}

void spin_for_nanos(Nanos ns) noexcept {
  if (ns <= 0) return;
  const double units = spin_units_per_second() * static_cast<double>(ns) * 1e-9;
  spin_work(units < 1.0 ? 1 : static_cast<u64>(units));
}

}  // namespace aid
