// Time abstraction that lets the identical scheduler code run against the
// real clock (threaded runtime) or a per-worker virtual clock (simulator).
//
// The paper's SF-sampling needs exactly two timestamps per thread per loop
// (libgomp uses the Linux vsyscall clock), so a virtual call here is far off
// the critical path.
#pragma once

#include <chrono>

#include "common/types.h"

namespace aid {

/// Source of the current time in nanoseconds. Implementations: the real
/// steady clock, a manually-advanced clock (tests) and the simulator's
/// per-worker virtual clock.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  [[nodiscard]] virtual Nanos now() const = 0;
};

/// Wall-clock time source backed by std::chrono::steady_clock.
class SteadyTimeSource final : public TimeSource {
 public:
  [[nodiscard]] Nanos now() const override {
    const auto tp = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp).count();
  }
};

/// Manually advanced clock for deterministic unit tests.
class ManualTimeSource final : public TimeSource {
 public:
  [[nodiscard]] Nanos now() const override { return t_; }
  void set(Nanos t) { t_ = t; }
  void advance(Nanos dt) { t_ += dt; }

 private:
  Nanos t_ = 0;
};

/// Per-thread CPU time (CLOCK_THREAD_CPUTIME_ID). The paper's footnote 3
/// (Sec. 4.3): under oversubscription, wall-clock sampling conflates "my
/// core is slow" with "I was descheduled" — SF estimation should use CPU
/// time instead. Each worker must query it from its own thread (the clock
/// is per-calling-thread), which is exactly how schedulers use their
/// ThreadContext's time source. Enable in the runtime via AID_SF_CPU_TIME.
class ThreadCpuTimeSource final : public TimeSource {
 public:
  [[nodiscard]] Nanos now() const override;
};

}  // namespace aid
