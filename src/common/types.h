// Fundamental type aliases shared across libaid.
#pragma once

#include <cstddef>
#include <cstdint>

namespace aid {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using usize = std::size_t;

/// Time is accounted in integer nanoseconds everywhere (virtual or real).
using Nanos = i64;

/// Destructive-interference size used to pad per-thread state and avoid
/// false sharing on the scheduler hot path (Per.16/CP.free guidance).
inline constexpr usize kCacheLineBytes = 64;

}  // namespace aid
