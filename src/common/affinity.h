// Best-effort thread-to-core pinning, shared by the private-team runtime
// (rt/team.cc) and the pool workers (pool/worker_pool.cc).
//
// On the development host the platform's core ids may exceed the real CPU
// count; failures are silently ignored (the Throttle provides the
// asymmetry in that case, see rt/throttle.h).
#pragma once

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace aid {

inline void try_bind_to_core(int core_id) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core_id), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)core_id;
#endif
}

}  // namespace aid
