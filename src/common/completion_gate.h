// Completion gate for one in-flight construct slot.
//
// The loop-pipeline ring (rt/team.h ChainSlot, pool/worker_pool.h
// PoolJob::Entry) tracks per-construct completion with the same three-word
// protocol in both runtimes; this header is its single home so the subtle
// parts — the monotone watermark and the Dekker-paired wake — cannot
// drift apart between copies.
//
//  * `unfinished` — countdown over all participants of the construct
//    (master included). arm() loads it, check_in() decrements.
//  * `completed`  — monotone watermark: the tag (dispatch generation /
//    entry sequence) of the slot's last fully completed occupant, stored
//    by the final check_in. Monotonicity is what makes a wait on an
//    already-reused ring slot return immediately instead of latching
//    onto the new occupant's countdown (the classic ring-ABA deadlock);
//    callers must therefore hand out strictly increasing tags.
//  * `waiters`    — Dekker registration: wait() registers, then
//    re-checks, then sleeps; the finisher stores the watermark, then
//    checks registration, so either the waiter sees the new watermark or
//    the finisher sees the waiter and pays the notify_all.
//
// Each word is cache-line padded: check_in traffic (every participant,
// every construct) must not false-share with the spin loops of waiters.
#pragma once

#include <atomic>

#include "common/padded.h"
#include "common/spin_wait.h"
#include "common/types.h"

namespace aid {

class CompletionGate {
 public:
  /// Arm for a construct with `participants` members. Only valid while no
  /// participant of the previous occupant is outstanding (ring reuse
  /// guard — the caller checks `complete(previous tag)` first).
  void arm(int participants) {
    unfinished_->store(participants, std::memory_order_relaxed);
  }

  /// One participant's completion of the construct tagged `tag`. The last
  /// arrival publishes the watermark and wakes registered waiters.
  void check_in(u64 tag) {
    if (unfinished_->fetch_sub(1, std::memory_order_seq_cst) == 1)
      publish(tag);
  }

  /// Single-producer form: store the watermark for `tag` directly, no
  /// countdown. The GOMP work-share ring uses a gate this way as its
  /// *publication* channel — the one staging thread publishes, every team
  /// member waits — keeping the monotone-watermark + Dekker-wake protocol
  /// in one place. The seq_cst store orders all plain staging stores
  /// before it against a waiter's watermark read.
  void publish(u64 tag) {
    completed_->store(tag, std::memory_order_seq_cst);
    if (waiters_->load(std::memory_order_seq_cst) != 0)
      completed_->notify_all();
  }

  /// Has the construct tagged `tag` fully completed? (>= because the
  /// watermark is monotone: a successor tag implies our completion.)
  [[nodiscard]] bool complete(u64 tag) const {
    return completed_->load(std::memory_order_acquire) >= tag;
  }

  /// Spin-then-yield-then-block until `complete(tag)` (budgets per
  /// common/spin_wait.h).
  void wait(u64 tag, i32 spin_budget, i32 yield_budget) {
    std::atomic<u64>& completed = *completed_;
    if (completed.load(std::memory_order_acquire) >= tag) return;

    if (spin_then_yield(
            [&] { return completed.load(std::memory_order_acquire) >= tag; },
            spin_budget, yield_budget))
      return;

    waiters_->fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      const u64 c = completed.load(std::memory_order_seq_cst);
      if (c >= tag) break;
      completed.wait(c, std::memory_order_seq_cst);
    }
    waiters_->fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  Padded<std::atomic<int>> unfinished_;
  Padded<std::atomic<u64>> completed_;
  Padded<std::atomic<int>> waiters_;
};

}  // namespace aid
