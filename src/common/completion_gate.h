// Completion gate for one in-flight construct slot.
//
// The loop-pipeline ring (rt/team.h ChainSlot, pool/worker_pool.h
// PoolJob::Entry) tracks per-construct completion with the same three-word
// protocol in both runtimes; this header is its single home so the subtle
// parts — the monotone watermark and the Dekker-paired wake — cannot
// drift apart between copies.
//
//  * `unfinished` — countdown over all participants of the construct
//    (master included). arm() loads it, check_in() decrements.
//  * `completed`  — monotone watermark: the tag (dispatch generation /
//    entry sequence) of the slot's last fully completed occupant, stored
//    by the final check_in. Monotonicity is what makes a wait on an
//    already-reused ring slot return immediately instead of latching
//    onto the new occupant's countdown (the classic ring-ABA deadlock);
//    callers must therefore hand out strictly increasing tags.
//  * `waiters`    — Dekker registration: wait() registers, then
//    re-checks, then sleeps; the finisher stores the watermark, then
//    checks registration, so either the waiter sees the new watermark or
//    the finisher sees the waiter and pays the notify_all.
//  * `cancelled`  — a second monotone watermark: the highest tag whose
//    occupant was cancelled (user/deadline/exception). Ring dependents
//    read it through was_cancelled(tag) AFTER waiting on `completed` —
//    per-slot token state cannot be trusted across ring reuse, but a
//    monotone watermark keyed by the same tags can, by the same ABA
//    argument as `completed`.
//
// Each word is cache-line padded: check_in traffic (every participant,
// every construct) must not false-share with the spin loops of waiters.
#pragma once

#include <atomic>

#include "common/check.h"
#include "common/fault_hook.h"
#include "common/padded.h"
#include "common/spin_wait.h"
#include "common/types.h"

namespace aid {

class CompletionGate {
 public:
  CompletionGate() = default;
  CompletionGate(const CompletionGate&) = delete;
  CompletionGate& operator=(const CompletionGate&) = delete;

  /// Destruction-ordering guard (debug builds): an armed gate must have
  /// fully closed before its owner destructs — a wedged construct must
  /// fail loudly here instead of letting a worker check into freed memory.
  ~CompletionGate() { AID_DCHECK(armed_tag_ == 0 || complete(armed_tag_)); }

  /// Arm for the construct tagged `tag` with `participants` members. Only
  /// valid while no participant of the previous occupant is outstanding
  /// (ring reuse guard — the caller checks `complete(previous tag)`
  /// first; debug builds re-assert it here so a missed flush fails loudly
  /// at the reuse site instead of hanging).
  void arm(int participants, u64 tag) {
    AID_DCHECK(armed_tag_ == 0 || complete(armed_tag_));
    armed_tag_ = tag;
    unfinished_->store(participants, std::memory_order_relaxed);
  }

  /// One participant's completion of the construct tagged `tag`. The last
  /// arrival publishes the watermark and wakes registered waiters.
  void check_in(u64 tag) {
    if (unfinished_->fetch_sub(1, std::memory_order_seq_cst) == 1)
      publish(tag);
  }

  /// Completion that also records construct cancellation. The cancelled
  /// mark precedes this participant's countdown decrement in seq_cst
  /// order, so any dependent that waited on `completed` for `tag` is
  /// guaranteed to observe it.
  void check_in(u64 tag, bool cancelled) {
    if (cancelled) mark_cancelled(tag);
    check_in(tag);
  }

  /// Record that `tag`'s occupant was cancelled (monotone CAS-max; any
  /// participant may call it, before its check_in).
  void mark_cancelled(u64 tag) {
    u64 cur = cancelled_->load(std::memory_order_relaxed);
    while (cur < tag &&
           !cancelled_->compare_exchange_weak(cur, tag,
                                              std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
    }
  }

  /// Was the occupant tagged `tag` cancelled? Only meaningful after
  /// complete(tag) — dependents call it after their dependency wait.
  /// EXACT match, deliberately: tags are unique per slot, so equality can
  /// never misread a reused slot (no false positives), and a stale read
  /// (the watermark already advanced to a cancelled successor before a
  /// straggler asked) is collectively harmless — successors of tag can
  /// only be marked by a participant that already performed THIS
  /// dependency check while the watermark still read `tag`, folded the
  /// cancellation into the dependent's shared token, and thereby reaches
  /// the straggler through the token instead.
  [[nodiscard]] bool was_cancelled(u64 tag) const {
    return cancelled_->load(std::memory_order_seq_cst) == tag;
  }

  /// Single-producer form: store the watermark for `tag` directly, no
  /// countdown. The GOMP work-share ring uses a gate this way as its
  /// *publication* channel — the one staging thread publishes, every team
  /// member waits — keeping the monotone-watermark + Dekker-wake protocol
  /// in one place. The seq_cst store orders all plain staging stores
  /// before it against a waiter's watermark read.
  void publish(u64 tag) {
    completed_->store(tag, std::memory_order_seq_cst);
    if (waiters_->load(std::memory_order_seq_cst) != 0) {
      // Fault seam (common/fault_hook.h): a drop-wake clause suppresses
      // this one notify, modeling a lost futex wake. The watermark store
      // above always happens — only the wake is lost, which is exactly
      // what the watchdog's kick() recovery must survive.
      if (fault_hook::consume_drop_wake()) [[unlikely]]
        return;
      completed_->notify_all();
    }
  }

  /// Has the construct tagged `tag` fully completed? (>= because the
  /// watermark is monotone: a successor tag implies our completion.)
  [[nodiscard]] bool complete(u64 tag) const {
    return completed_->load(std::memory_order_acquire) >= tag;
  }

  /// Spin-then-yield-then-block until `complete(tag)` (budgets per
  /// common/spin_wait.h).
  void wait(u64 tag, i32 spin_budget, i32 yield_budget) {
    std::atomic<u64>& completed = *completed_;
    if (completed.load(std::memory_order_acquire) >= tag) return;

    if (spin_then_yield(
            [&] { return completed.load(std::memory_order_acquire) >= tag; },
            spin_budget, yield_budget))
      return;

    waiters_->fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      const u64 c = completed.load(std::memory_order_seq_cst);
      if (c >= tag) break;
      completed.wait(c, std::memory_order_seq_cst);
    }
    waiters_->fetch_sub(1, std::memory_order_relaxed);
  }

  /// Wake every blocked waiter so it re-checks the watermark. Recovery
  /// valve for a lost wake (the watchdog calls it after its grace period);
  /// correctness never depends on it — a spurious kick is a re-check.
  void kick() { completed_->notify_all(); }

  // Diagnostic snapshot reads (watchdog dump): racy by design, relaxed.
  [[nodiscard]] int unfinished() const {
    return unfinished_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 watermark() const {
    return completed_->load(std::memory_order_relaxed);
  }

 private:
  Padded<std::atomic<int>> unfinished_;
  Padded<std::atomic<u64>> completed_;
  Padded<std::atomic<int>> waiters_;
  Padded<std::atomic<u64>> cancelled_;
  /// Tag of the last arm() (0 = never armed). Master-only plain field,
  /// ordered by the same publish stores that order the other slot fields;
  /// exists purely for the debug flush assertions above.
  u64 armed_tag_ = 0;
};

}  // namespace aid
