// Fault-injection seam for common/ primitives.
//
// The fault subsystem (src/fault/) injects failures into the runtimes'
// body shims directly, but the completion gate's wake path lives in
// common/ — which must not depend on fault/. This header is the one-way
// valve: fault/ installs a function pointer here, and the gate consults it
// with a single relaxed load on the (already cold) notify branch. In
// production the pointer is null and the probe folds to one predictable
// branch.
#pragma once

#include <atomic>

namespace aid::fault_hook {

/// Installed by fault/ when the active FaultPlan carries a drop-wake
/// clause; null otherwise. Returns true to suppress ONE notify (modeling a
/// lost futex wake — the watermark store itself always happens).
extern std::atomic<bool (*)()> drop_wake;

[[nodiscard]] inline bool consume_drop_wake() {
  auto* fn = drop_wake.load(std::memory_order_relaxed);
  return fn != nullptr && fn();
}

}  // namespace aid::fault_hook
