// Cooperative cancellation tokens — the failure channel of one construct.
//
// A CancelToken is a latch: once cancelled it stays cancelled (until its
// owner reset()s it between constructs), and the FIRST reason to arrive
// wins — later cancels are no-ops, so "user cancel raced the deadline"
// reports deterministically whichever actually landed first. The runtimes
// embed one token per in-flight ring slot (rt::Team::ChainSlot,
// pool::PoolJob::Entry) and point every worker's ThreadContext at it; the
// schedulers observe it at each chunk-take boundary and poison their
// iteration pool on the first sighting, so cancel latency is one chunk.
//
// Tokens compose through up to two read-only parents (bind()): the slot
// token of a pool construct chains to the user's ScheduleSpec token and to
// the app lease's token, so AppHandle::cancel() reaches a loop that never
// named a token. cancelled() is the hot-path read: one relaxed load of own
// state plus one per bound parent, all on read-mostly lines.
//
// The token also carries the construct's first exception (capture(): an
// atomic claim over a std::exception_ptr). Workers never rethrow; the
// master harvests take_error() after the construct's gate closes — the
// gate's seq_cst completion protocol is what orders the worker's stash
// before the master's read.
#pragma once

#include <atomic>
#include <exception>

#include "common/types.h"

namespace aid {

enum class CancelReason : u32 {
  kNone = 0,
  kUser,        ///< CancelToken::cancel() / AppHandle::cancel()
  kDeadline,    ///< deadline watchdog expiry (rt/watchdog.h)
  kException,   ///< a loop body threw; the token holds the exception
  kDependency,  ///< a chain predecessor was cancelled (gate watermark)
};

[[nodiscard]] constexpr const char* to_string(CancelReason r) {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "user";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kException: return "exception";
    case CancelReason::kDependency: return "dependency";
  }
  return "?";
}

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. Idempotent; the first reason wins. Thread-safe
  /// from any thread (including the watchdog's monitor thread).
  void cancel(CancelReason reason = CancelReason::kUser) {
    u32 expected = 0;
    state_.compare_exchange_strong(expected, static_cast<u32>(reason),
                                   std::memory_order_seq_cst,
                                   std::memory_order_relaxed);
  }

  /// Hot-path probe (every chunk-take boundary): own state, then bound
  /// parents. Relaxed loads — a cancel may be observed one chunk late,
  /// which is the documented cancel latency.
  [[nodiscard]] bool cancelled() const {
    if (state_.load(std::memory_order_relaxed) != 0) return true;
    if (parent_a_ != nullptr && parent_a_->cancelled()) return true;
    return parent_b_ != nullptr && parent_b_->cancelled();
  }

  /// First reason that landed (own state wins over parents, parent_a over
  /// parent_b). kNone while not cancelled.
  [[nodiscard]] CancelReason reason() const {
    const u32 s = state_.load(std::memory_order_acquire);
    if (s != 0) return static_cast<CancelReason>(s);
    if (parent_a_ != nullptr) {
      const CancelReason r = parent_a_->reason();
      if (r != CancelReason::kNone) return r;
    }
    if (parent_b_ != nullptr) return parent_b_->reason();
    return CancelReason::kNone;
  }

  /// Stash the construct's FIRST exception (atomic claim) and cancel with
  /// kException. Returns false when another participant already claimed
  /// the slot (that exception is the one reported; ours is dropped, the
  /// usual parallel-loop contract). The stash is published to the master
  /// by the construct gate's completion protocol, never read mid-flight.
  bool capture(std::exception_ptr e) {
    if (ex_claimed_.exchange(true, std::memory_order_acq_rel)) return false;
    ex_ = std::move(e);
    ex_ready_.store(true, std::memory_order_release);
    cancel(CancelReason::kException);
    return true;
  }

  /// Master-side harvest after the gate closed: the stashed exception, or
  /// nullptr. Does not clear — reset() re-arms the token for reuse.
  [[nodiscard]] std::exception_ptr error() const {
    if (!ex_ready_.load(std::memory_order_acquire)) return nullptr;
    return ex_;
  }

  /// Chain up to two read-only parents whose cancellation this token
  /// inherits. Owner-only, between constructs (ordered by the publish).
  void bind(const CancelToken* a, const CancelToken* b = nullptr) {
    parent_a_ = a;
    parent_b_ = b;
  }

  /// Re-arm for the next construct occupying this slot. Owner-only, while
  /// no participant can observe the token (ring-slot staging, pre-publish).
  void reset() {
    state_.store(0, std::memory_order_relaxed);
    ex_claimed_.store(false, std::memory_order_relaxed);
    ex_ready_.store(false, std::memory_order_relaxed);
    ex_ = nullptr;
    parent_a_ = nullptr;
    parent_b_ = nullptr;
  }

 private:
  std::atomic<u32> state_{0};  // CancelReason; 0 = live
  std::atomic<bool> ex_claimed_{false};
  std::atomic<bool> ex_ready_{false};
  std::exception_ptr ex_;
  const CancelToken* parent_a_ = nullptr;
  const CancelToken* parent_b_ = nullptr;
};

}  // namespace aid
