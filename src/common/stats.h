// Descriptive statistics used by the experiment harness.
//
// The paper's protocol (Sec. 5): run each program five times, discard the
// first run, report the geometric mean of the remaining four. Table 2 reports
// arithmetic mean and geometric mean of relative gains.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace aid::stats {

/// Arithmetic mean; 0 for an empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Geometric mean; requires all elements > 0. 0 for an empty input.
[[nodiscard]] double gmean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 when n < 2.
[[nodiscard]] double stdev(std::span<const double> xs);

/// Median (averages the two central elements for even n); 0 when empty.
[[nodiscard]] double median(std::span<const double> xs);

[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Coefficient of variation (stdev/mean); 0 when mean == 0.
[[nodiscard]] double cov(std::span<const double> xs);

/// Element-wise xs[i]/base. Requires base != 0.
[[nodiscard]] std::vector<double> normalize(std::span<const double> xs,
                                            double base);

/// Streaming mean/variance accumulator (Welford). Numerically stable and
/// allocation-free, suitable for per-thread accounting on the hot path.
class Welford {
 public:
  void add(double x);
  [[nodiscard]] i64 count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  ///< sample variance; 0 when n < 2
  [[nodiscard]] double stdev() const;

 private:
  i64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// The paper's repetition protocol: drop the first element (warm-up run that
/// pages in input data), return the geometric mean of the rest. Requires at
/// least two elements.
[[nodiscard]] double paper_protocol_time(std::span<const double> run_times);

}  // namespace aid::stats
