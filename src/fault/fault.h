// Fault-injection harness for the fork/join runtimes.
//
// Failure-domain hardening is only testable if failures can be provoked on
// demand, deterministically, inside the runtime's own hot paths. This
// subsystem injects four failure shapes at the two seams the runtimes
// expose for it:
//
//   * the worker body shim (rt/team.cc, pool/worker_pool.cc participate):
//     `before_chunk(tid, begin, end)` runs before each chunk's body and can
//     throw (exception-propagation tests) or sleep (deadline/watchdog
//     tests);
//   * the completion gate's wake path (common/fault_hook.h): a drop-wake
//     clause suppresses gate notifies, modeling lost futex wakes.
//
// The active plan comes from the AID_FAULT environment variable (grammar
// below and in src/fault/README.md) or from install() in tests. Production
// cost: ONE acquire load per participate() — `enabled()` — and one
// predictable branch per chunk; no out-of-line call unless a plan is
// installed.
//
// AID_FAULT grammar — `;`-separated clauses:
//   throw@I        throw std::runtime_error from the chunk containing
//                  canonical iteration I (one-shot per install)
//   stall@I:MS     sleep MS milliseconds before the chunk containing
//                  iteration I (one-shot per install)
//   delay@T:US     sleep US microseconds before EVERY chunk worker tid T
//                  executes (persistent)
//   drop-wake      suppress the next gate notify (lost-wake model);
//   drop-wake@N    suppress the next N notifies
// Example: AID_FAULT="delay@2:50;throw@1000"
#pragma once

#include <atomic>
#include <optional>
#include <string_view>

#include "common/types.h"

namespace aid::fault {

/// A parsed AID_FAULT plan. Unset clauses keep their sentinel defaults.
struct FaultPlan {
  i64 throw_at = -1;   ///< canonical iteration to throw at (-1 = none)
  i64 stall_at = -1;   ///< canonical iteration to stall at (-1 = none)
  i64 stall_ms = 0;    ///< stall duration
  int delay_tid = -1;  ///< team-local tid to slow down (-1 = none)
  i64 delay_us = 0;    ///< per-chunk delay for that tid
  int drop_wakes = 0;  ///< number of gate notifies to suppress

  [[nodiscard]] bool any() const {
    return throw_at >= 0 || stall_at >= 0 || delay_tid >= 0 ||
           drop_wakes > 0;
  }
};

/// Parse the AID_FAULT grammar. Returns nullopt (and the caller warns) on
/// any malformed clause — a fault plan half-applied is worse than none.
[[nodiscard]] std::optional<FaultPlan> parse(std::string_view text);

/// Opaque active-plan pointer; null when no plan is installed. The one
/// production-path read. (Type-erased so this header stays dependency-free;
/// only fault.cc dereferences it.)
extern std::atomic<const void*> g_active;

/// Is any fault plan installed? The runtimes latch this once per
/// participate() and only then pay the per-chunk shim call.
[[nodiscard]] inline bool enabled() {
  return g_active.load(std::memory_order_acquire) != nullptr;
}

/// Install `plan` as the process-global active plan (replacing any previous
/// one) and arm its one-shot clauses. Only valid while no construct is in
/// flight — tests install between loops.
void install(const FaultPlan& plan);

/// Remove the active plan and the drop-wake hook.
void clear();

/// Parse AID_FAULT and install the result, once per process (subsequent
/// calls are a no-op, including after clear()). The runtimes call this at
/// team/pool construction; malformed values warn to stderr and install
/// nothing.
void init_from_env();

/// The body-shim hook: called before each chunk [begin, end) that worker
/// `tid` is about to execute. Sleeps for delay/stall clauses; throws
/// std::runtime_error for an armed throw clause. Out-of-line — callers
/// gate it behind enabled().
void before_chunk(int tid, i64 begin, i64 end);

}  // namespace aid::fault
