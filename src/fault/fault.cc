#include "fault/fault.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/fault_hook.h"

namespace aid::fault {
namespace {

/// The installed plan plus the mutable one-shot state its clauses arm.
/// Static storage, swapped atomically via g_active: install() fills the
/// inactive fields first, then publishes the pointer, so a reader either
/// sees no plan or a fully armed one. Reinstalling while a construct is in
/// flight is the caller's bug (documented in fault.h).
struct Active {
  FaultPlan plan;
  std::atomic<bool> throw_armed{false};
  std::atomic<bool> stall_armed{false};
  std::atomic<int> wakes_left{0};
};

Active g_storage;

bool consume_wake() {
  int left = g_storage.wakes_left.load(std::memory_order_relaxed);
  while (left > 0) {
    if (g_storage.wakes_left.compare_exchange_weak(
            left, left - 1, std::memory_order_acq_rel,
            std::memory_order_relaxed))
      return true;
  }
  return false;
}

[[nodiscard]] bool parse_i64(std::string_view text, i64& out) {
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::atomic<const void*> g_active{nullptr};

std::optional<FaultPlan> parse(std::string_view text) {
  FaultPlan plan;
  while (!text.empty()) {
    const usize sep = text.find(';');
    std::string_view clause = text.substr(0, sep);
    text = sep == std::string_view::npos ? std::string_view{}
                                         : text.substr(sep + 1);
    if (clause.empty()) continue;

    const usize at = clause.find('@');
    const std::string_view head = clause.substr(0, at);
    const std::string_view args =
        at == std::string_view::npos ? std::string_view{}
                                     : clause.substr(at + 1);
    const usize colon = args.find(':');
    const std::string_view a0 = args.substr(0, colon);
    const std::string_view a1 = colon == std::string_view::npos
                                    ? std::string_view{}
                                    : args.substr(colon + 1);

    if (head == "throw") {
      if (!parse_i64(a0, plan.throw_at) || plan.throw_at < 0 || !a1.empty())
        return std::nullopt;
    } else if (head == "stall") {
      if (!parse_i64(a0, plan.stall_at) || plan.stall_at < 0 ||
          !parse_i64(a1, plan.stall_ms) || plan.stall_ms < 0)
        return std::nullopt;
    } else if (head == "delay") {
      i64 tid = 0;
      if (!parse_i64(a0, tid) || tid < 0 || !parse_i64(a1, plan.delay_us) ||
          plan.delay_us < 0)
        return std::nullopt;
      plan.delay_tid = static_cast<int>(tid);
    } else if (head == "drop-wake") {
      if (args.empty()) {
        plan.drop_wakes = 1;
      } else {
        i64 n = 0;
        if (!parse_i64(a0, n) || n < 1 || !a1.empty()) return std::nullopt;
        plan.drop_wakes = static_cast<int>(n);
      }
    } else {
      return std::nullopt;
    }
  }
  return plan;
}

void install(const FaultPlan& plan) {
  g_active.store(nullptr, std::memory_order_release);
  g_storage.plan = plan;
  g_storage.throw_armed.store(plan.throw_at >= 0,
                              std::memory_order_relaxed);
  g_storage.stall_armed.store(plan.stall_at >= 0,
                              std::memory_order_relaxed);
  g_storage.wakes_left.store(plan.drop_wakes, std::memory_order_relaxed);
  fault_hook::drop_wake.store(plan.drop_wakes > 0 ? &consume_wake : nullptr,
                              std::memory_order_release);
  g_active.store(&g_storage, std::memory_order_release);
}

void clear() {
  g_active.store(nullptr, std::memory_order_release);
  fault_hook::drop_wake.store(nullptr, std::memory_order_release);
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* value = std::getenv("AID_FAULT");
    if (value == nullptr || value[0] == '\0') return;
    const std::optional<FaultPlan> plan = parse(value);
    if (!plan.has_value()) {
      std::fprintf(stderr,
                   "libaid: ignoring malformed AID_FAULT=\"%s\" "
                   "(see src/fault/README.md for the grammar)\n",
                   value);
      return;
    }
    if (plan->any()) install(*plan);
  });
}

void before_chunk(int tid, i64 begin, i64 end) {
  const auto* active =
      static_cast<const Active*>(g_active.load(std::memory_order_acquire));
  if (active == nullptr) return;
  const FaultPlan& plan = active->plan;

  if (plan.delay_tid == tid && plan.delay_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));

  if (plan.stall_at >= begin && plan.stall_at < end &&
      g_storage.stall_armed.load(std::memory_order_relaxed) &&
      g_storage.stall_armed.exchange(false, std::memory_order_acq_rel))
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));

  if (plan.throw_at >= begin && plan.throw_at < end &&
      g_storage.throw_armed.load(std::memory_order_relaxed) &&
      g_storage.throw_armed.exchange(false, std::memory_order_acq_rel))
    throw std::runtime_error("aid::fault injected throw at iteration " +
                             std::to_string(plan.throw_at));
}

}  // namespace aid::fault
