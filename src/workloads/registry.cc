#include "workloads/workload.h"

namespace aid::workloads {

const std::vector<Workload>& all_workloads() {
  // Fig. 6/7 display order (NPB, PARSEC, Rodinia), then the data-parallel
  // suite appended so the paper figures keep their indices.
  static const std::vector<Workload> all = [] {
    std::vector<Workload> v;
    for (auto& w : make_npb_workloads()) v.push_back(std::move(w));
    for (auto& w : make_parsec_workloads()) v.push_back(std::move(w));
    for (auto& w : make_rodinia_workloads()) v.push_back(std::move(w));
    for (auto& w : make_datapar_workloads()) v.push_back(std::move(w));
    return v;
  }();
  return all;
}

const Workload* find_workload(std::string_view name) {
  for (const auto& w : all_workloads())
    if (w.name() == name) return &w;
  return nullptr;
}

const Workload* find_workload_or_error(std::string_view name,
                                       std::string* error) {
  if (const Workload* w = find_workload(name)) return w;
  if (error != nullptr) {
    std::string msg = "unknown workload '";
    msg += name;
    msg += "' (known:";
    for (const auto& n : workload_names()) {
      msg += ' ';
      msg += n;
    }
    msg += ')';
    *error = std::move(msg);
  }
  return nullptr;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& w : all_workloads()) names.push_back(w.name());
  return names;
}

std::vector<const Workload*> workloads_of_suite(std::string_view suite) {
  std::vector<const Workload*> out;
  for (const auto& w : all_workloads())
    if (w.suite() == suite) out.push_back(&w);
  return out;
}

}  // namespace aid::workloads
