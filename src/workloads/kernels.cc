#include "workloads/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aid::workloads::kernels {
namespace {

/// Counter-based uniform double in [0,1): hash(seed, index) — gives every
/// iteration an independent, order-free random stream (essential for
/// schedule-invariance: results cannot depend on execution order).
double counter_uniform(u64 seed, u64 index) {
  u64 s = seed ^ (index * 0x9e3779b97f4a7c15ULL);
  const u64 z = splitmix64(s);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

double std_normal_cdf(double x) {
  return 0.5 * std::erfc(-x / 1.4142135623730951);
}

}  // namespace

// ---------------------------------------------------------------- finance

double black_scholes(double spot, double strike, double rate,
                     double volatility, double expiry, bool call) {
  AID_DCHECK(spot > 0 && strike > 0 && volatility > 0 && expiry > 0);
  const double sig_sqrt_t = volatility * std::sqrt(expiry);
  const double d1 =
      (std::log(spot / strike) + (rate + 0.5 * volatility * volatility) * expiry) /
      sig_sqrt_t;
  const double d2 = d1 - sig_sqrt_t;
  const double discounted = strike * std::exp(-rate * expiry);
  if (call) return spot * std_normal_cdf(d1) - discounted * std_normal_cdf(d2);
  return discounted * std_normal_cdf(-d2) - spot * std_normal_cdf(-d1);
}

OptionBatch OptionBatch::generate(i64 n, u64 seed) {
  AID_CHECK(n >= 0);
  OptionBatch b;
  Rng rng(seed);
  b.spot.reserve(static_cast<usize>(n));
  for (i64 i = 0; i < n; ++i) {
    b.spot.push_back(rng.uniform(10.0, 200.0));
    b.strike.push_back(rng.uniform(10.0, 200.0));
    b.rate.push_back(rng.uniform(0.005, 0.08));
    b.vol.push_back(rng.uniform(0.05, 0.9));
    b.expiry.push_back(rng.uniform(0.1, 3.0));
    b.call.push_back(rng.next_u64() & 1u ? 1 : 0);
  }
  return b;
}

// ---------------------------------------------------------------- stencils

Grid2D Grid2D::generate(i64 width, i64 height, u64 seed) {
  AID_CHECK(width >= 1 && height >= 1);
  Grid2D g;
  g.width = width;
  g.height = height;
  g.cells.resize(static_cast<usize>(width * height));
  for (usize i = 0; i < g.cells.size(); ++i)
    g.cells[i] = counter_uniform(seed, i) * 100.0;
  return g;
}

void stencil2d_row(const Grid2D& in, Grid2D& out, i64 row, double k) {
  AID_DCHECK(row >= 0 && row < in.height);
  AID_DCHECK(in.width == out.width && in.height == out.height);
  for (i64 x = 0; x < in.width; ++x) {
    const double c = in.at(x, row);
    const double n = row > 0 ? in.at(x, row - 1) : c;
    const double s = row + 1 < in.height ? in.at(x, row + 1) : c;
    const double w = x > 0 ? in.at(x - 1, row) : c;
    const double e = x + 1 < in.width ? in.at(x + 1, row) : c;
    out.at(x, row) = c + k * (n + s + e + w - 4.0 * c);
  }
}

Grid3D Grid3D::generate(i64 width, i64 height, i64 depth, u64 seed) {
  AID_CHECK(width >= 1 && height >= 1 && depth >= 1);
  Grid3D g;
  g.width = width;
  g.height = height;
  g.depth = depth;
  g.cells.resize(static_cast<usize>(width * height * depth));
  for (usize i = 0; i < g.cells.size(); ++i)
    g.cells[i] = counter_uniform(seed, i) * 50.0;
  return g;
}

void stencil3d_plane(const Grid3D& in, Grid3D& out, i64 plane, double k) {
  AID_DCHECK(plane >= 0 && plane < in.depth);
  for (i64 y = 0; y < in.height; ++y) {
    for (i64 x = 0; x < in.width; ++x) {
      const double c = in.cells[in.idx(x, y, plane)];
      const auto nb = [&](i64 dx, i64 dy, i64 dz) {
        const i64 nx = x + dx;
        const i64 ny = y + dy;
        const i64 nz = plane + dz;
        if (nx < 0 || nx >= in.width || ny < 0 || ny >= in.height || nz < 0 ||
            nz >= in.depth)
          return c;
        return in.cells[in.idx(nx, ny, nz)];
      };
      out.cells[in.idx(x, y, plane)] =
          c + k * (nb(-1, 0, 0) + nb(1, 0, 0) + nb(0, -1, 0) + nb(0, 1, 0) +
                   nb(0, 0, -1) + nb(0, 0, 1) - 6.0 * c);
    }
  }
}

// ------------------------------------------------------------ sparse/linear

CsrMatrix CsrMatrix::laplacian_2d(i64 grid_side) {
  AID_CHECK(grid_side >= 2);
  CsrMatrix m;
  m.rows = grid_side * grid_side;
  m.row_ptr.reserve(static_cast<usize>(m.rows) + 1);
  m.row_ptr.push_back(0);
  for (i64 y = 0; y < grid_side; ++y) {
    for (i64 x = 0; x < grid_side; ++x) {
      const i64 row = y * grid_side + x;
      const auto push = [&](i64 c, double v) {
        m.cols.push_back(c);
        m.vals.push_back(v);
      };
      if (y > 0) push(row - grid_side, -1.0);
      if (x > 0) push(row - 1, -1.0);
      push(row, 4.0);
      if (x + 1 < grid_side) push(row + 1, -1.0);
      if (y + 1 < grid_side) push(row + grid_side, -1.0);
      m.row_ptr.push_back(static_cast<i64>(m.cols.size()));
    }
  }
  return m;
}

CsrMatrix CsrMatrix::random_irregular(i64 rows, i64 avg_nnz, u64 seed) {
  AID_CHECK(rows >= 1 && avg_nnz >= 1);
  CsrMatrix m;
  m.rows = rows;
  m.row_ptr.reserve(static_cast<usize>(rows) + 1);
  m.row_ptr.push_back(0);
  for (i64 r = 0; r < rows; ++r) {
    // Cubed uniform draw: E[4u^3] = 1, so the mean row stays ~avg_nnz while
    // most rows are short and the heavy tail reaches ~4x the average.
    const double u = counter_uniform(seed, static_cast<u64>(r));
    const i64 nnz = std::min<i64>(
        rows,
        1 + static_cast<i64>(u * u * u * 4.0 * static_cast<double>(avg_nnz)));
    for (i64 k = 0; k < nnz; ++k) {
      const u64 ctr = static_cast<u64>(r) * 0x1f123bb5ULL + static_cast<u64>(k);
      const i64 col = std::min<i64>(
          rows - 1,
          static_cast<i64>(counter_uniform(seed ^ 0xc01defULL, ctr) *
                           static_cast<double>(rows)));
      m.cols.push_back(col);
      m.vals.push_back(counter_uniform(seed ^ 0x7a1ULL, ctr) * 2.0 - 1.0);
    }
    m.row_ptr.push_back(static_cast<i64>(m.cols.size()));
  }
  return m;
}

double spmv_row(const CsrMatrix& a, const std::vector<double>& x, i64 row) {
  AID_DCHECK(row >= 0 && row < a.rows);
  AID_DCHECK(x.size() == static_cast<usize>(a.rows));
  double acc = 0.0;
  for (i64 k = a.row_ptr[static_cast<usize>(row)];
       k < a.row_ptr[static_cast<usize>(row) + 1]; ++k)
    acc += a.vals[static_cast<usize>(k)] *
           x[static_cast<usize>(a.cols[static_cast<usize>(k)])];
  return acc;
}

double gauss_seidel_cell(Grid2D& g, i64 x, i64 y, double rhs) {
  AID_DCHECK(x >= 0 && x < g.width && y >= 0 && y < g.height);
  const double c = g.at(x, y);
  const double n = y > 0 ? g.at(x, y - 1) : 0.0;
  const double s = y + 1 < g.height ? g.at(x, y + 1) : 0.0;
  const double w = x > 0 ? g.at(x - 1, y) : 0.0;
  const double e = x + 1 < g.width ? g.at(x + 1, y) : 0.0;
  const double updated = 0.25 * (n + s + e + w + rhs);
  g.at(x, y) = updated;
  return updated - c;
}

double tridiag_line_solve(i64 line_id, i64 n, u64 seed) {
  AID_CHECK(n >= 2);
  // Diagonally dominant system generated from (seed, line_id): stable Thomas
  // algorithm, O(n) flops per line like BT's x/y/z solves.
  std::vector<double> a(static_cast<usize>(n)), b(static_cast<usize>(n)),
      c(static_cast<usize>(n)), d(static_cast<usize>(n));
  const u64 s = seed ^ static_cast<u64>(line_id) * 0x2545f4914f6cdd1dULL;
  for (i64 i = 0; i < n; ++i) {
    const usize ui = static_cast<usize>(i);
    a[ui] = -1.0 - counter_uniform(s, static_cast<u64>(4 * i));
    c[ui] = -1.0 - counter_uniform(s, static_cast<u64>(4 * i + 1));
    b[ui] = 4.5 + counter_uniform(s, static_cast<u64>(4 * i + 2));
    d[ui] = counter_uniform(s, static_cast<u64>(4 * i + 3)) * 10.0;
  }
  // Forward sweep.
  for (i64 i = 1; i < n; ++i) {
    const usize ui = static_cast<usize>(i);
    const double w = a[ui] / b[ui - 1];
    b[ui] -= w * c[ui - 1];
    d[ui] -= w * d[ui - 1];
  }
  // Back substitution; checksum of the solution vector.
  double x = d[static_cast<usize>(n - 1)] / b[static_cast<usize>(n - 1)];
  double checksum = x;
  for (i64 i = n - 2; i >= 0; --i) {
    const usize ui = static_cast<usize>(i);
    x = (d[ui] - c[ui] * x) / b[ui];
    checksum += x;
  }
  return checksum;
}

// ----------------------------------------------------------------- NPB bits

int ep_pair_accept(u64 seed, i64 index, double* sx, double* sy) {
  const double u1 =
      2.0 * counter_uniform(seed, static_cast<u64>(2 * index)) - 1.0;
  const double u2 =
      2.0 * counter_uniform(seed, static_cast<u64>(2 * index + 1)) - 1.0;
  const double t = u1 * u1 + u2 * u2;
  if (t > 1.0 || t == 0.0) return 0;
  const double f = std::sqrt(-2.0 * std::log(t) / t);
  *sx = u1 * f;
  *sy = u2 * f;
  return 1;
}

double dft_bin(i64 k, i64 n, u64 seed) {
  AID_CHECK(n >= 1);
  double re = 0.0;
  double im = 0.0;
  const double w = -6.283185307179586 * static_cast<double>(k) /
                   static_cast<double>(n);
  for (i64 t = 0; t < n; ++t) {
    const double sample = counter_uniform(seed, static_cast<u64>(t)) - 0.5;
    re += sample * std::cos(w * static_cast<double>(t));
    im += sample * std::sin(w * static_cast<double>(t));
  }
  return std::sqrt(re * re + im * im);
}

KeyBatch KeyBatch::generate(i64 n, i32 max_key, u64 seed) {
  AID_CHECK(n >= 0 && max_key >= 1);
  KeyBatch b;
  b.max_key = max_key;
  b.keys.resize(static_cast<usize>(n));
  for (i64 i = 0; i < n; ++i)
    b.keys[static_cast<usize>(i)] = static_cast<i32>(
        counter_uniform(seed, static_cast<u64>(i)) * max_key);
  return b;
}

void is_histogram_slice(const KeyBatch& batch, std::vector<i64>& counts,
                        i64 begin, i64 end) {
  AID_DCHECK(counts.size() >= static_cast<usize>(batch.max_key));
  for (i64 i = begin; i < end; ++i)
    ++counts[static_cast<usize>(batch.keys[static_cast<usize>(i)])];
}

KeyBatch KeyBatch::generate_skewed(i64 n, i32 max_key, double skew,
                                   u64 seed) {
  AID_CHECK(n >= 0 && max_key >= 1 && skew >= 0.0);
  KeyBatch b;
  b.max_key = max_key;
  b.keys.resize(static_cast<usize>(n));
  for (i64 i = 0; i < n; ++i) {
    const double u = counter_uniform(seed, static_cast<u64>(i));
    // u^(1+skew) concentrates mass near 0: with skew 2 roughly half of all
    // keys land in the bottom ~12% of bins (the hot-bin contention case).
    const double v = std::pow(u, 1.0 + skew);
    b.keys[static_cast<usize>(i)] =
        std::min<i32>(static_cast<i32>(v * max_key), max_key - 1);
  }
  return b;
}

void atomic_histogram_slice(const KeyBatch& batch,
                            std::vector<std::atomic<i64>>& bins, i64 begin,
                            i64 end) {
  AID_DCHECK(bins.size() >= static_cast<usize>(batch.max_key));
  for (i64 i = begin; i < end; ++i)
    bins[static_cast<usize>(batch.keys[static_cast<usize>(i)])].fetch_add(
        1, std::memory_order_relaxed);
}

// ------------------------------------------------------- data-parallel suite

std::vector<double> signal_vector(i64 n, u64 seed) {
  AID_CHECK(n >= 0);
  std::vector<double> x(static_cast<usize>(n));
  for (usize i = 0; i < x.size(); ++i) x[i] = counter_uniform(seed, i) - 0.5;
  return x;
}

double range_sum(const std::vector<double>& x, i64 begin, i64 end) {
  AID_DCHECK(begin >= 0 && end <= static_cast<i64>(x.size()));
  double acc = 0.0;
  for (i64 i = begin; i < end; ++i) acc += x[static_cast<usize>(i)];
  return acc;
}

void inclusive_scan_apply(const std::vector<double>& x, double offset,
                          std::vector<double>& out, i64 begin, i64 end) {
  AID_DCHECK(begin >= 0 && end <= static_cast<i64>(x.size()));
  AID_DCHECK(out.size() == x.size());
  double acc = offset;
  for (i64 i = begin; i < end; ++i) {
    acc += x[static_cast<usize>(i)];
    out[static_cast<usize>(i)] = acc;
  }
}

void transpose_rows(const std::vector<double>& in, std::vector<double>& out,
                    i64 rows, i64 cols, i64 row_begin, i64 row_end) {
  AID_DCHECK(in.size() == static_cast<usize>(rows * cols));
  AID_DCHECK(out.size() == in.size());
  AID_DCHECK(row_begin >= 0 && row_end <= rows);
  for (i64 r = row_begin; r < row_end; ++r)
    for (i64 c = 0; c < cols; ++c)
      out[static_cast<usize>(c * rows + r)] =
          in[static_cast<usize>(r * cols + c)];
}

// ------------------------------------------------------------------ graphs

Graph Graph::random(i64 nodes, i64 avg_degree, u64 seed) {
  AID_CHECK(nodes >= 1 && avg_degree >= 1);
  Graph g;
  g.nodes = nodes;
  g.row_ptr.reserve(static_cast<usize>(nodes) + 1);
  g.row_ptr.push_back(0);
  for (i64 v = 0; v < nodes; ++v) {
    // Degree in [1, 2*avg): deterministic per node.
    const i64 degree =
        1 + static_cast<i64>(counter_uniform(seed, static_cast<u64>(v)) *
                             static_cast<double>(2 * avg_degree - 1));
    for (i64 e = 0; e < degree; ++e) {
      const i64 to = static_cast<i64>(
          counter_uniform(seed ^ 0xabcdef12ULL,
                          static_cast<u64>(v * 131071 + e)) *
          static_cast<double>(nodes));
      g.adj.push_back(std::min(to, nodes - 1));
    }
    g.row_ptr.push_back(static_cast<i64>(g.adj.size()));
  }
  return g;
}

i64 bfs_relax_node(const Graph& g, const std::vector<i64>& dist,
                   std::vector<std::atomic<i64>>& next_dist, i64 node) {
  AID_DCHECK(node >= 0 && node < g.nodes);
  const i64 d = dist[static_cast<usize>(node)];
  if (d < 0) return 0;  // not reached yet
  i64 improved = 0;
  for (i64 k = g.row_ptr[static_cast<usize>(node)];
       k < g.row_ptr[static_cast<usize>(node) + 1]; ++k) {
    const i64 to = g.adj[static_cast<usize>(k)];
    auto& nd = next_dist[static_cast<usize>(to)];
    i64 cur = nd.load(std::memory_order_relaxed);
    while ((cur < 0 || cur > d + 1) &&
           !nd.compare_exchange_weak(cur, d + 1, std::memory_order_relaxed)) {
    }
    if (cur < 0 || cur > d + 1) ++improved;
  }
  return improved;
}

i64 sorted_search(const std::vector<i64>& keys, i64 key) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it != keys.end() && *it == key)
    return static_cast<i64>(it - keys.begin());
  return -1;
}

// ------------------------------------------------------------ particles/MD

double lj_force(i64 particle, i64 neighbours, u64 seed) {
  double fx = 0.0;
  const u64 s = seed ^ static_cast<u64>(particle) * 0x9e3779b97f4a7c15ULL;
  for (i64 j = 0; j < neighbours; ++j) {
    const double r2 =
        0.8 + counter_uniform(s, static_cast<u64>(j)) * 2.0;  // in [0.8, 2.8)
    const double inv6 = 1.0 / (r2 * r2 * r2);
    fx += 24.0 * inv6 * (2.0 * inv6 - 1.0) / r2;
  }
  return fx;
}

double particle_weight(i64 particle, i64 frame, u64 seed) {
  const u64 s = seed ^ static_cast<u64>(frame) * 0x100000001b3ULL;
  const double dx = counter_uniform(s, static_cast<u64>(2 * particle)) - 0.5;
  const double dy =
      counter_uniform(s, static_cast<u64>(2 * particle + 1)) - 0.5;
  return std::exp(-8.0 * (dx * dx + dy * dy));
}

PointSet PointSet::generate(i64 n, i64 dims, u64 seed) {
  AID_CHECK(n >= 0 && dims >= 1);
  PointSet p;
  p.dims = dims;
  p.coords.resize(static_cast<usize>(n * dims));
  for (usize i = 0; i < p.coords.size(); ++i)
    p.coords[i] = counter_uniform(seed, i) * 10.0;
  return p;
}

double kmedian_assign(const PointSet& points, const PointSet& centers,
                      i64 i) {
  AID_DCHECK(points.dims == centers.dims);
  AID_DCHECK(i >= 0 && i < points.size());
  double best = 1e300;
  for (i64 c = 0; c < centers.size(); ++c) {
    double d2 = 0.0;
    for (i64 k = 0; k < points.dims; ++k) {
      const double diff =
          points.coords[static_cast<usize>(i * points.dims + k)] -
          centers.coords[static_cast<usize>(c * centers.dims + k)];
      d2 += diff * diff;
    }
    best = std::min(best, d2);
  }
  return best;
}

double window_correlation(const Grid2D& image, const Grid2D& tmpl, i64 pos) {
  // Slide the template over the image at a deterministic offset derived
  // from `pos`; plain dot-product correlation.
  const i64 max_x = image.width - tmpl.width;
  const i64 max_y = image.height - tmpl.height;
  AID_DCHECK(max_x >= 0 && max_y >= 0);
  const i64 off_x = max_x > 0 ? pos % (max_x + 1) : 0;
  const i64 off_y = max_y > 0 ? (pos * 31) % (max_y + 1) : 0;
  double acc = 0.0;
  for (i64 y = 0; y < tmpl.height; ++y)
    for (i64 x = 0; x < tmpl.width; ++x)
      acc += image.at(off_x + x, off_y + y) * tmpl.at(x, y);
  return acc;
}

double pose_error(i64 particle, i64 joints, u64 seed) {
  double err = 0.0;
  const u64 s = seed ^ static_cast<u64>(particle) * 0xc2b2ae3d27d4eb4fULL;
  for (i64 j = 0; j < joints; ++j) {
    const double guess = counter_uniform(s, static_cast<u64>(j));
    const double truth = counter_uniform(seed, static_cast<u64>(j));
    err += (guess - truth) * (guess - truth);
  }
  return std::sqrt(err);
}

double euler_flux(i64 cell, u64 seed) {
  // Four synthetic neighbour fluxes with an upwind-style switch; mimics the
  // arithmetic profile of CFD Euler3D's per-cell update.
  const u64 s = seed ^ static_cast<u64>(cell) * 0xd6e8feb86659fd93ULL;
  double density_res = 0.0;
  for (int f = 0; f < 4; ++f) {
    const double vel = counter_uniform(s, static_cast<u64>(3 * f)) - 0.5;
    const double rho = 0.5 + counter_uniform(s, static_cast<u64>(3 * f + 1));
    const double pressure = counter_uniform(s, static_cast<u64>(3 * f + 2));
    const double c = std::sqrt(1.4 * pressure / rho + 1e-9);
    const double upwind = vel > 0.0 ? rho * vel : rho * vel * 0.5;
    density_res += upwind + 0.1 * c;
  }
  return density_res;
}

}  // namespace aid::workloads::kernels
