// Declarative workload profiles.
//
// A profile describes a benchmark the way the schedulers experience it
// (paper Sec. 2): a sequence of serial phases and parallel loops, each loop
// with a trip count, an iteration-cost shape, and a *compute fraction* that
// determines its platform-specific speedup factor through the platform's
// two-component speed model (platform/platform.h). Calibration sources for
// each concrete profile are documented in npb.cc / parsec.cc / rodinia.cc.
//
// The same profile therefore yields:
//   * wildly loop-dependent SF on Platform A (Fig. 2a/2c),
//   * compressed SF around 2x on Platform B (Fig. 2b/2d),
//   * a gap between single-threaded ("offline") and full-team SF when the
//     loop is contention-sensitive (Fig. 9c),
// with no per-platform tables.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "platform/platform.h"
#include "sim/app_model.h"

namespace aid::workloads {

enum class CostShape {
  kUniform,    ///< every iteration costs the same
  kRamp,       ///< linear drift: cost(i) = base * (1 + p * i/(n-1))
  kLognormal,  ///< i.i.d. lognormal with sigma = p (irregular work)
};

struct LoopSpec {
  std::string name;
  i64 trip = 0;
  int invocations = 1;
  double cost_small_ns = 1000.0;  ///< mean per-iteration cost, slowest core
  CostShape shape = CostShape::kUniform;
  double shape_param = 0.0;  ///< ramp rise p (kRamp) or sigma (kLognormal)

  /// Systematic within-loop cost drift composable with any shape: iteration
  /// i's cost is additionally scaled by (1 + drift * i/(n-1)), then
  /// re-normalized so the mean stays cost_small_ns. Real loops almost always
  /// have such structure (boundary rows, structure-ordered sparse data,
  /// convergence-dependent work); it is invisible to AID's one-shot
  /// sampling, and recovering it is precisely what separates AID-hybrid
  /// from AID-static in the paper (Fig. 4, Table 2's hybrid margin).
  double drift = 0.0;

  /// Fraction of the iteration spent compute-bound, in [0,1]; drives SF via
  /// platform::speedup_mix (the loop-specific asymmetry of Fig. 2).
  double compute_fraction = 0.5;

  /// How much full-team cache pressure erodes the compute fraction, in
  /// [0,1]; scaled by the platform's contention sensitivity. Nonzero values
  /// reproduce the offline-vs-online SF gap of Fig. 9c.
  double contention = 0.0;

  /// Master-executed glue code between invocations (slowest-core ns).
  double serial_between_ns = 0.0;

  u64 seed = 0;  ///< kLognormal draw seed (combined with the loop name)
};

struct SerialSpec {
  std::string name;
  double cost_small_ns = 0.0;
  /// Compute fraction of the serial code (master-side speedup when the
  /// master sits on a big core — the static(BS) vs static(SB) effect).
  double compute_fraction = 0.7;
};

using PhaseSpec = std::variant<SerialSpec, LoopSpec>;

struct AppSpec {
  std::string name;
  std::string suite;
  std::string description;
  std::vector<PhaseSpec> phases;
  double serial_compute_fraction = 0.7;  ///< default for loop glue code

  [[nodiscard]] i64 total_iterations() const;
};

/// Per-type speedup factors for a loop on a platform: sf[t] =
/// speedup_mix(cluster t, c), with c optionally eroded by contention.
/// sf[0] is always 1 by platform construction.
[[nodiscard]] std::vector<double> loop_sf(const platform::Platform& platform,
                                          double compute_fraction,
                                          double contention,
                                          bool full_team);

/// Materialize a simulator model for a platform. `scale` multiplies trip
/// counts (and divides nothing else): use small scales in unit tests.
[[nodiscard]] sim::AppModel build_model(const AppSpec& spec,
                                        const platform::Platform& platform,
                                        double scale = 1.0);

}  // namespace aid::workloads
