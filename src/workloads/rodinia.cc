// Rodinia profiles and kernels (bfs, bptree, CFD/Euler3D, heartwall,
// hotspot, hotspot3D, lavamd, leukocyte, particlefilter, sradv1, sradv2).
//
// Profile calibration notes:
//  * bfs — level-synchronized frontier expansion: cheap memory-bound
//    iterations (dynamic overhead hurts) and a large serial graph-build
//    phase (static(BS) ~2x gain list, Sec. 5A).
//  * bptree — "the initialization phase (inherently sequential) takes the
//    vast majority of the execution time" (Sec. 5A): serial dominates, all
//    loop schedules nearly tie, static(BS) wins big over static(SB).
//  * heartwall — trip count of only 51 (one iteration per sample point):
//    a stress case for AID's sampling when NI is close to the team size.
//  * hotspot3D — moderate-cost memory-lean iterations over many time steps;
//    the paper reports AID-dynamic's largest win over dynamic(BS) on the
//    ARM board here (+16.8%).
//  * leukocyte — few very heavy, very uneven iterations: the strongest
//    dynamic-friendly case (paper Sec. 5A).
//  * particlefilter — the famous inversion: "the final iterations in a
//    long-running loop are more heavyweight computationally than the first"
//    so static under the BS mapping assigns MORE work to small cores and
//    static(BS) < static(SB) (Sec. 5A). Encoded as a kRamp cost shape.
//  * sradv1/sradv2 — uniform diffusion sweeps whose imbalance comes purely
//    from core asymmetry; dynamic partially fixes it, AID-static fully.
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace aid::workloads {
namespace {

using kernels::Graph;
using kernels::Grid2D;
using kernels::Grid3D;

AppSpec bfs_spec() {
  AppSpec s;
  s.name = "bfs";
  s.suite = "Rodinia";
  s.description = "level-synchronized BFS; frontier-sized loops";
  s.phases.push_back(SerialSpec{"graph-build", 20e6, 0.70});
  const i64 frontier[10] = {100,   600,   3000,  12000, 30000,
                            30000, 12000, 3000,  600,   100};
  for (int level = 0; level < 10; ++level) {
    LoopSpec loop;
    loop.name = "level" + std::to_string(level);
    loop.trip = frontier[level];
    loop.invocations = 4;  // four BFS source restarts
    loop.cost_small_ns = 240.0;
    loop.compute_fraction = 0.20;  // pointer chasing: memory bound
    loop.contention = 0.5;
    loop.serial_between_ns = 30e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec bptree_spec() {
  AppSpec s;
  s.name = "bptree";
  s.suite = "Rodinia";
  s.description = "B+tree queries; serial tree construction dominates";
  s.phases.push_back(SerialSpec{"tree-build", 120e6, 0.55});
  const char* names[2] = {"range-queries", "point-queries"};
  for (int l = 0; l < 2; ++l) {
    LoopSpec loop;
    loop.name = names[l];
    loop.trip = 10000;
    loop.invocations = 6;
    loop.cost_small_ns = 500.0;
    loop.compute_fraction = 0.50;
    loop.contention = 0.5;
    loop.shape = CostShape::kLognormal;
    loop.shape_param = 0.15;
    loop.seed = 0xBB + static_cast<u64>(l);
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec cfd_spec() {
  AppSpec s;
  s.name = "CFDEuler3D";
  s.suite = "Rodinia";
  s.description = "unstructured-grid Euler solver";
  s.phases.push_back(SerialSpec{"mesh-load", 4e6, 0.6});
  const double fractions[4] = {0.52, 0.57, 0.46, 0.50};
  for (int l = 0; l < 4; ++l) {
    LoopSpec loop;
    loop.name = "flux" + std::to_string(l);
    loop.trip = 10000;
    loop.invocations = 5;
    loop.cost_small_ns = 2000.0;
    loop.compute_fraction = fractions[l];
    loop.contention = 0.55;
    loop.shape = CostShape::kLognormal;
    loop.shape_param = 0.25;
    loop.drift = 0.25;  // mesh-ordered cell degree structure
    loop.seed = 0xCF + static_cast<u64>(l);
    loop.serial_between_ns = 60e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec heartwall_spec() {
  AppSpec s;
  s.name = "heartwall";
  s.suite = "Rodinia";
  s.description = "heart-wall tracking; 51 heavy iterations per frame";
  s.phases.push_back(SerialSpec{"frame-load", 10e6, 0.65});
  LoopSpec loop;
  loop.name = "track-points";
  loop.trip = 51;  // one iteration per tracked sample point, as in Rodinia
  loop.invocations = 60;
  loop.cost_small_ns = 1.2e6;
  loop.compute_fraction = 0.80;
  loop.contention = 0.60;
  loop.shape = CostShape::kLognormal;
  loop.shape_param = 0.20;
  loop.seed = 0x88;
  loop.serial_between_ns = 300e3;
  s.phases.push_back(loop);
  return s;
}

AppSpec hotspot_spec() {
  AppSpec s;
  s.name = "hotspot";
  s.suite = "Rodinia";
  s.description = "2D thermal stencil, one loop per row block";
  s.phases.push_back(SerialSpec{"init", 3e6, 0.6});
  const double fractions[2] = {0.50, 0.45};
  const char* names[2] = {"temperature", "power"};
  for (int l = 0; l < 2; ++l) {
    LoopSpec loop;
    loop.name = names[l];
    loop.trip = 8192;
    loop.invocations = 20;
    loop.cost_small_ns = 500.0;
    loop.compute_fraction = fractions[l];
    loop.contention = 0.6;
    loop.drift = 0.20;
    loop.serial_between_ns = 25e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec hotspot3d_spec() {
  AppSpec s;
  s.name = "hotspot3D";
  s.suite = "Rodinia";
  s.description = "3D thermal stencil over many time steps";
  s.phases.push_back(SerialSpec{"init", 25e6, 0.75});
  LoopSpec loop;
  loop.name = "stencil3d";
  // Iteration cost comparable to one pool removal: dynamic pays ~2x
  // bookkeeping per iteration while AID-dynamic amortizes it over R*M-sized
  // blocks — the paper's +16.8% AID-dynamic win on the ARM board.
  loop.trip = 16384;
  loop.invocations = 18;
  loop.cost_small_ns = 560.0;
  loop.compute_fraction = 0.42;
  loop.contention = 0.5;
  loop.drift = 0.20;
  loop.serial_between_ns = 50e3;
  s.phases.push_back(loop);
  return s;
}

AppSpec lavamd_spec() {
  AppSpec s;
  s.name = "lavamd";
  s.suite = "Rodinia";
  s.description = "molecular dynamics; heavy per-box force loops";
  s.phases.push_back(SerialSpec{"box-setup", 5e6, 0.6});
  LoopSpec loop;
  loop.name = "lj-forces";
  loop.trip = 4096;
  loop.invocations = 10;
  loop.cost_small_ns = 4800.0;
  loop.compute_fraction = 0.90;
  loop.contention = 0.55;
  loop.shape = CostShape::kLognormal;
  loop.shape_param = 0.15;
  loop.drift = 0.30;  // box density ordering
  loop.seed = 0x1A;
  loop.serial_between_ns = 80e3;
  s.phases.push_back(loop);
  return s;
}

AppSpec leukocyte_spec() {
  AppSpec s;
  s.name = "leukocyte";
  s.suite = "Rodinia";
  s.description = "cell detection+tracking; few, heavy, uneven iterations";
  s.phases.push_back(SerialSpec{"video-load", 8e6, 0.6});
  LoopSpec detect;
  detect.name = "detect-cells";
  detect.trip = 600;
  detect.invocations = 1;
  detect.cost_small_ns = 150e3;
  detect.compute_fraction = 0.85;
  detect.contention = 0.5;
  detect.shape = CostShape::kLognormal;
  detect.shape_param = 0.50;
  detect.seed = 0x1E;
  s.phases.push_back(detect);
  LoopSpec track;
  track.name = "track-cells";
  track.trip = 400;
  track.invocations = 20;
  track.cost_small_ns = 90e3;
  track.compute_fraction = 0.80;
  track.contention = 0.5;
  track.shape = CostShape::kLognormal;
  track.shape_param = 0.40;
  track.seed = 0x1F;
  track.serial_between_ns = 200e3;
  s.phases.push_back(track);
  return s;
}

AppSpec particlefilter_spec() {
  AppSpec s;
  s.name = "particlefilter";
  s.suite = "Rodinia";
  s.description = "ramp-shaped weights loop: later iterations heavier";
  s.phases.push_back(SerialSpec{"init", 4e6, 0.6});
  LoopSpec weights;
  weights.name = "weights";
  weights.trip = 20000;
  weights.invocations = 6;
  weights.cost_small_ns = 4000.0;
  weights.compute_fraction = 0.70;
  weights.contention = 0.55;
  weights.shape = CostShape::kRamp;
  weights.shape_param = 0.6;  // last iterations ~1.6x the first (Sec. 5A)
  weights.serial_between_ns = 100e3;
  s.phases.push_back(weights);
  LoopSpec resample;
  resample.name = "resample";
  resample.trip = 10000;
  resample.invocations = 6;
  resample.cost_small_ns = 2000.0;
  resample.compute_fraction = 0.45;
  resample.contention = 0.55;
  resample.serial_between_ns = 60e3;
  s.phases.push_back(resample);
  return s;
}

AppSpec sradv1_spec() {
  AppSpec s;
  s.name = "sradv1";
  s.suite = "Rodinia";
  s.description = "speckle-reducing anisotropic diffusion, v1";
  s.phases.push_back(SerialSpec{"image-load", 2e6, 0.6});
  const char* names[2] = {"diff-coeff", "update"};
  const double fractions[2] = {0.56, 0.50};
  for (int l = 0; l < 2; ++l) {
    LoopSpec loop;
    loop.name = names[l];
    loop.trip = 6000;
    loop.invocations = 20;
    loop.cost_small_ns = 1400.0;
    loop.compute_fraction = fractions[l];
    loop.contention = 0.55;
    loop.drift = 0.25;
    loop.serial_between_ns = 30e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec sradv2_spec() {
  AppSpec s;
  s.name = "sradv2";
  s.suite = "Rodinia";
  s.description = "speckle-reducing anisotropic diffusion, v2";
  s.phases.push_back(SerialSpec{"image-load", 2e6, 0.6});
  const char* names[2] = {"diff-coeff", "update"};
  const double fractions[2] = {0.52, 0.46};
  for (int l = 0; l < 2; ++l) {
    LoopSpec loop;
    loop.name = names[l];
    loop.trip = 9000;
    loop.invocations = 12;
    loop.cost_small_ns = 1300.0;
    loop.compute_fraction = fractions[l];
    loop.contention = 0.55;
    loop.drift = 0.25;
    loop.serial_between_ns = 30e3;
    s.phases.push_back(loop);
  }
  return s;
}

// ---------------------------------------------------------------- kernels

double bfs_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                  double scale) {
  const i64 nodes = std::max<i64>(64, static_cast<i64>(20000 * scale));
  const Graph g = Graph::random(nodes, 6, 0xBF5);
  std::vector<i64> dist(static_cast<usize>(nodes), -1);
  std::vector<std::atomic<i64>> next_dist(static_cast<usize>(nodes));
  dist[0] = 0;
  for (usize i = 0; i < next_dist.size(); ++i)
    next_dist[i].store(dist[i], std::memory_order_relaxed);
  for (int level = 0; level < 12; ++level) {
    team.parallel_for(0, nodes, 1, spec, [&](i64 v, const rt::WorkerInfo&) {
      (void)kernels::bfs_relax_node(g, dist, next_dist, v);
    });
    for (usize i = 0; i < next_dist.size(); ++i)
      dist[i] = next_dist[i].load(std::memory_order_relaxed);
  }
  double checksum = 0.0;
  for (i64 d : dist) checksum += static_cast<double>(d);
  return checksum;
}

double bptree_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                     double scale) {
  const i64 n = std::max<i64>(256, static_cast<i64>(50000 * scale));
  std::vector<i64> keys(static_cast<usize>(n));
  for (i64 i = 0; i < n; ++i) keys[static_cast<usize>(i)] = 3 * i;  // sorted
  const i64 queries = n;
  std::vector<i64> found(static_cast<usize>(queries));
  team.parallel_for(0, queries, 1, spec, [&](i64 q, const rt::WorkerInfo&) {
    found[static_cast<usize>(q)] = kernels::sorted_search(keys, 2 * q);
  });
  double checksum = 0.0;
  for (i64 f : found) checksum += static_cast<double>(f);
  return checksum;
}

double cfd_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                  double scale) {
  const i64 cells = std::max<i64>(64, static_cast<i64>(30000 * scale));
  std::vector<double> residual(static_cast<usize>(cells));
  team.parallel_for(0, cells, 1, spec, [&](i64 c, const rt::WorkerInfo&) {
    residual[static_cast<usize>(c)] = kernels::euler_flux(c, 0xCFD);
  });
  double checksum = 0.0;
  for (double r : residual) checksum += r;
  return checksum;
}

double heartwall_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale) {
  const i64 side = std::max<i64>(64, static_cast<i64>(256 * std::sqrt(scale)));
  const Grid2D image = Grid2D::generate(side, side, 0x881);
  const Grid2D tmpl = Grid2D::generate(16, 16, 0x882);
  const i64 points = 51;
  std::vector<double> corr(static_cast<usize>(points));
  team.parallel_for(0, points, 1, spec, [&](i64 p, const rt::WorkerInfo&) {
    corr[static_cast<usize>(p)] = kernels::window_correlation(image, tmpl, p);
  });
  double checksum = 0.0;
  for (double c : corr) checksum += c;
  return checksum;
}

double hotspot_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                      double scale) {
  const i64 side = std::max<i64>(32, static_cast<i64>(256 * std::sqrt(scale)));
  Grid2D a = Grid2D::generate(side, side, 0x407);
  Grid2D b = a;
  for (int step = 0; step < 4; ++step) {
    const Grid2D& in = (step % 2 == 0) ? a : b;
    Grid2D& out = (step % 2 == 0) ? b : a;
    team.parallel_for(0, side, 1, spec, [&](i64 row, const rt::WorkerInfo&) {
      kernels::stencil2d_row(in, out, row, 0.18);
    });
  }
  double checksum = 0.0;
  for (double v : a.cells) checksum += v;
  return checksum;
}

double hotspot3d_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale) {
  const i64 side = std::max<i64>(16, static_cast<i64>(64 * std::cbrt(scale)));
  Grid3D a = Grid3D::generate(side, side, side, 0x3D);
  Grid3D b = a;
  for (int step = 0; step < 3; ++step) {
    const Grid3D& in = (step % 2 == 0) ? a : b;
    Grid3D& out = (step % 2 == 0) ? b : a;
    team.parallel_for(0, side, 1, spec, [&](i64 z, const rt::WorkerInfo&) {
      kernels::stencil3d_plane(in, out, z, 0.12);
    });
  }
  double checksum = 0.0;
  for (double v : a.cells) checksum += v;
  return checksum;
}

double lavamd_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                     double scale) {
  const i64 particles = std::max<i64>(64, static_cast<i64>(8000 * scale));
  std::vector<double> force(static_cast<usize>(particles));
  team.parallel_for(0, particles, 1, spec, [&](i64 p, const rt::WorkerInfo&) {
    force[static_cast<usize>(p)] = kernels::lj_force(p, 48, 0x1A7A);
  });
  double checksum = 0.0;
  for (double f : force) checksum += f;
  return checksum;
}

double leukocyte_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale) {
  const i64 side = std::max<i64>(96, static_cast<i64>(384 * std::sqrt(scale)));
  const Grid2D frame = Grid2D::generate(side, side, 0x1EU);
  const Grid2D cell_tmpl = Grid2D::generate(24, 24, 0x1F);
  const i64 candidates = 300;
  std::vector<double> score(static_cast<usize>(candidates));
  team.parallel_for(0, candidates, 1, spec, [&](i64 c, const rt::WorkerInfo&) {
    score[static_cast<usize>(c)] =
        kernels::window_correlation(frame, cell_tmpl, c * 7);
  });
  double checksum = 0.0;
  for (double v : score) checksum += v;
  return checksum;
}

double particlefilter_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                             double scale) {
  const i64 particles = std::max<i64>(128, static_cast<i64>(60000 * scale));
  std::vector<double> weights(static_cast<usize>(particles));
  double checksum = 0.0;
  for (i64 frame = 0; frame < 3; ++frame) {
    team.parallel_for(0, particles, 1, spec,
                      [&](i64 p, const rt::WorkerInfo&) {
                        weights[static_cast<usize>(p)] =
                            kernels::particle_weight(p, frame, 0x9F);
                      });
    double norm = 0.0;
    for (double w : weights) norm += w;
    checksum += norm;
  }
  return checksum;
}

double srad_kernel_impl(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale, double k, u64 seed) {
  const i64 side = std::max<i64>(32, static_cast<i64>(256 * std::sqrt(scale)));
  Grid2D a = Grid2D::generate(side, side, seed);
  Grid2D b = a;
  for (int step = 0; step < 4; ++step) {
    const Grid2D& in = (step % 2 == 0) ? a : b;
    Grid2D& out = (step % 2 == 0) ? b : a;
    team.parallel_for(0, side, 1, spec, [&](i64 row, const rt::WorkerInfo&) {
      kernels::stencil2d_row(in, out, row, k);
    });
  }
  double checksum = 0.0;
  for (double v : a.cells) checksum += v;
  return checksum;
}

double sradv1_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                     double scale) {
  return srad_kernel_impl(team, spec, scale, 0.10, 0x51);
}

double sradv2_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                     double scale) {
  return srad_kernel_impl(team, spec, scale, 0.15, 0x52);
}

}  // namespace

std::vector<Workload> make_rodinia_workloads() {
  std::vector<Workload> v;
  v.emplace_back(bfs_spec(), bfs_kernel);
  v.emplace_back(bptree_spec(), bptree_kernel);
  v.emplace_back(cfd_spec(), cfd_kernel);
  v.emplace_back(heartwall_spec(), heartwall_kernel);
  v.emplace_back(hotspot_spec(), hotspot_kernel);
  v.emplace_back(hotspot3d_spec(), hotspot3d_kernel);
  v.emplace_back(lavamd_spec(), lavamd_kernel);
  v.emplace_back(leukocyte_spec(), leukocyte_kernel);
  v.emplace_back(particlefilter_spec(), particlefilter_kernel);
  v.emplace_back(sradv1_spec(), sradv1_kernel);
  v.emplace_back(sradv2_spec(), sradv2_kernel);
  return v;
}

}  // namespace aid::workloads
