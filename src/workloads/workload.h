// A benchmark = simulator profile + real kernel.
//
// The profile (AppSpec) drives the virtual-time engine that regenerates the
// paper's figures; the kernel is a genuine computation executed through the
// real thread team, used by integration tests (schedule-invariance: every
// schedule must produce the serial result) and by the examples.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "rt/team.h"
#include "sched/schedule_spec.h"
#include "sim/app_model.h"
#include "workloads/profile.h"

namespace aid::workloads {

class Workload {
 public:
  /// Runs the real computation on the team under the given schedule and
  /// returns a checksum. `scale` in (0, 1] shrinks the problem for tests.
  using KernelFn = std::function<double(rt::Team& team,
                                        const sched::ScheduleSpec& spec,
                                        double scale)>;

  Workload(AppSpec spec, KernelFn kernel)
      : spec_(std::move(spec)), kernel_(std::move(kernel)) {}

  [[nodiscard]] const AppSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const std::string& suite() const { return spec_.suite; }

  /// Simulator model for a platform (see workloads/profile.h).
  [[nodiscard]] sim::AppModel model(const platform::Platform& platform,
                                    double scale = 1.0) const {
    return build_model(spec_, platform, scale);
  }

  [[nodiscard]] bool has_kernel() const { return kernel_ != nullptr; }
  double run_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                    double scale = 1.0) const {
    return kernel_(team, spec, scale);
  }

 private:
  AppSpec spec_;
  KernelFn kernel_;
};

/// The three suites evaluated in the paper (Sec. 5).
[[nodiscard]] std::vector<Workload> make_npb_workloads();
[[nodiscard]] std::vector<Workload> make_parsec_workloads();
[[nodiscard]] std::vector<Workload> make_rodinia_workloads();

/// The data-parallel kernel suite (histogram, spmv, scan, transpose,
/// stencil2d — datapar.cc): SIMTight-shaped workloads that stress atomics
/// contention, irregular rows, dependent loops, and strided memory in ways
/// the paper's loop profiles do not.
[[nodiscard]] std::vector<Workload> make_datapar_workloads();

/// Every registered benchmark: the paper's 21 (Fig. 6/7 display order)
/// followed by the DataPar suite. The figure/table benches iterate only
/// the paper suites (bench_util.h all_apps); tests and the serving tier
/// see the full registry.
[[nodiscard]] const std::vector<Workload>& all_workloads();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const Workload* find_workload(std::string_view name);

/// Lookup that reports: on a miss returns nullptr AND (when `error` is
/// non-null) formats an explicit "unknown workload" message naming the
/// registry. This is the lookup the serving boundary uses — wire input
/// must produce a structured error, never an assert/abort.
[[nodiscard]] const Workload* find_workload_or_error(std::string_view name,
                                                     std::string* error);

/// Every registry name in the stable Fig. 6/7 display order (the listing
/// behind `aid_submit --list`).
[[nodiscard]] std::vector<std::string> workload_names();

/// All workloads of one suite ("NPB", "PARSEC", "Rodinia").
[[nodiscard]] std::vector<const Workload*> workloads_of_suite(
    std::string_view suite);

}  // namespace aid::workloads
