// Data-parallel kernel suite (SIMTight-shaped apps; ROADMAP "kernel suite").
//
// The paper's three suites are NPB/PARSEC/Rodinia loop *profiles*; this
// suite adds the data-parallel shapes those profiles do not exercise, as
// real kernels over the runtime:
//
//   histogram  — shared atomic bins under a skewed key distribution: every
//                iteration is a relaxed fetch_add, hot bins collide across
//                shards (the contention regime sharded pools must survive).
//   spmv       — CSR matvec with power-law row lengths: per-row work spans
//                ~1..4x the mean, the irregularity AID/dynamic exist for.
//   scan       — two-phase inclusive prefix sum through a LoopChain with a
//                real cross-loop dependency (block sums -> serial combine
//                -> downsweep): the dependent-loop pipeline path.
//   transpose  — strided writes (out stride = rows doubles): memory-bound,
//                near-zero compute fraction.
//   stencil2d  — 5-point damped diffusion sweeps with double buffering:
//                the classic BSP stencil round-trip.
//
// Every kernel is schedule-invariant by construction (slot writes, integer
// atomics, or fixed-order per-block accumulation) so the suite plugs into
// the same serial-reference contract kernel_invariance_test enforces for
// the paper suites, and each has a wire-servable twin in serve_kernel.cc.
//
// Profile calibration: the AppSpec parameters mirror how the schedulers
// would experience each shape (tiny iterations for histogram, lognormal
// cost spread for spmv, low compute fraction for transpose) so the
// simulator path remains meaningful for the new suite too.
#include <atomic>
#include <cmath>

#include "pipeline/loop_chain.h"
#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace aid::workloads {
namespace {

using kernels::CsrMatrix;
using kernels::Grid2D;
using kernels::KeyBatch;

// --------------------------------------------------------------- profiles

AppSpec histogram_spec() {
  AppSpec s;
  s.name = "histogram";
  s.suite = "DataPar";
  s.description = "shared atomic bins, skewed keys; tiny hot iterations";
  s.phases.push_back(SerialSpec{"keygen", 6e6, 0.6});
  LoopSpec loop;
  loop.name = "bin-increments";
  loop.trip = 24576;
  loop.invocations = 8;
  loop.cost_small_ns = 130.0;  // an increment + the cache-line ping
  loop.compute_fraction = 0.22;
  loop.contention = 0.7;  // hot bins collide hardest under the full team
  loop.seed = 0x41;
  loop.serial_between_ns = 40e3;
  s.phases.push_back(loop);
  return s;
}

AppSpec spmv_spec() {
  AppSpec s;
  s.name = "spmv";
  s.suite = "DataPar";
  s.description = "CSR matvec, power-law row lengths";
  s.phases.push_back(SerialSpec{"assemble", 8e6, 0.65});
  LoopSpec loop;
  loop.name = "rows";
  loop.trip = 16384;
  loop.invocations = 6;
  loop.cost_small_ns = 950.0;
  // Row length spread: heavy lognormal tail, plus structure-ordered drift
  // (long rows cluster where the generator's tail landed).
  loop.shape = CostShape::kLognormal;
  loop.shape_param = 0.85;
  loop.drift = 0.25;
  loop.compute_fraction = 0.45;
  loop.contention = 0.5;
  loop.seed = 0x5B;
  loop.serial_between_ns = 30e3;
  s.phases.push_back(loop);
  return s;
}

AppSpec scan_spec() {
  AppSpec s;
  s.name = "scan";
  s.suite = "DataPar";
  s.description = "two-phase prefix sum; dependent loops, serial combine";
  s.phases.push_back(SerialSpec{"init", 3e6, 0.6});
  const struct {
    const char* name;
    double cost;
    double cf;
  } phases[2] = {
      {"block-sums", 620.0, 0.34},
      {"downsweep", 700.0, 0.30},
  };
  for (const auto& d : phases) {
    LoopSpec loop;
    loop.name = d.name;
    loop.trip = 4096;
    loop.invocations = 6;
    loop.cost_small_ns = d.cost;
    loop.compute_fraction = d.cf;
    loop.contention = 0.45;
    loop.seed = 0x5C;
    // The serial combine between the phases (scan of the block sums).
    loop.serial_between_ns = 90e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec transpose_spec() {
  AppSpec s;
  s.name = "transpose";
  s.suite = "DataPar";
  s.description = "strided writes; memory-bound, uniform rows";
  s.phases.push_back(SerialSpec{"alloc", 2e6, 0.6});
  LoopSpec loop;
  loop.name = "rows";
  loop.trip = 8192;
  loop.invocations = 8;
  loop.cost_small_ns = 320.0;
  loop.compute_fraction = 0.06;  // pure memory movement
  loop.contention = 0.55;        // shared-bandwidth erosion
  loop.seed = 0x72;
  loop.serial_between_ns = 25e3;
  s.phases.push_back(loop);
  return s;
}

AppSpec stencil2d_spec() {
  AppSpec s;
  s.name = "stencil2d";
  s.suite = "DataPar";
  s.description = "5-point diffusion sweeps, double-buffered rows";
  s.phases.push_back(SerialSpec{"init", 4e6, 0.6});
  LoopSpec loop;
  loop.name = "rows";
  loop.trip = 2048;
  loop.invocations = 8;
  loop.cost_small_ns = 2200.0;
  loop.compute_fraction = 0.48;
  loop.contention = 0.5;
  loop.drift = 0.15;  // boundary rows are cheaper than interior rows
  loop.seed = 0x5D;
  loop.serial_between_ns = 35e3;  // buffer swap + convergence bookkeeping
  s.phases.push_back(loop);
  return s;
}

// ---------------------------------------------------------------- kernels

double histogram_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale) {
  const i64 n = std::max<i64>(512, static_cast<i64>(300000 * scale));
  constexpr i32 kBins = 256;
  const KeyBatch batch = KeyBatch::generate_skewed(n, kBins, 2.0, 0x41);
  std::vector<std::atomic<i64>> bins(kBins);
  for (auto& b : bins) b.store(0, std::memory_order_relaxed);
  team.run_loop(n, spec, [&](i64 b, i64 e, const rt::WorkerInfo&) {
    kernels::atomic_histogram_slice(batch, bins, b, e);
  });
  // Position-weighted integer checksum: exact under any schedule (integer
  // increments commute), and a count landing in the wrong bin changes it.
  double checksum = 0.0;
  for (usize k = 0; k < bins.size(); ++k)
    checksum += static_cast<double>(bins[k].load(std::memory_order_relaxed)) *
                static_cast<double>(k + 1);
  return checksum;
}

double spmv_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                   double scale) {
  const i64 rows = std::max<i64>(256, static_cast<i64>(20000 * scale));
  const CsrMatrix a = CsrMatrix::random_irregular(rows, 16, 0x5B);
  std::vector<double> x(static_cast<usize>(rows));
  for (i64 i = 0; i < rows; ++i)
    x[static_cast<usize>(i)] = 1.0 + 0.25 * static_cast<double>(i % 11);
  std::vector<double> y(static_cast<usize>(rows), 0.0);
  for (int it = 0; it < 2; ++it) {
    team.parallel_for(0, rows, 1, spec, [&](i64 row, const rt::WorkerInfo&) {
      y[static_cast<usize>(row)] = kernels::spmv_row(a, x, row);
    });
    // Serial damped feedback between matvecs keeps the second pass honest
    // (different x) without any cross-iteration parallel dependency.
    for (i64 i = 0; i < rows; ++i)
      x[static_cast<usize>(i)] += 0.01 * y[static_cast<usize>(i)];
  }
  double checksum = 0.0;
  for (double v : y) checksum += v;
  return checksum;
}

double scan_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                   double scale) {
  const i64 n = std::max<i64>(4096, static_cast<i64>(250000 * scale));
  constexpr i64 kBlock = 512;
  const i64 nblocks = (n + kBlock - 1) / kBlock;
  const std::vector<double> x = kernels::signal_vector(n, 0x5C);
  std::vector<double> block_sums(static_cast<usize>(nblocks), 0.0);
  std::vector<double> offsets(static_cast<usize>(nblocks), 0.0);
  std::vector<double> out(static_cast<usize>(n), 0.0);

  const auto block_range = [&](i64 b, i64* begin, i64* end) {
    *begin = b * kBlock;
    *end = std::min(n, *begin + kBlock);
  };

  // Two-phase scan as a dependent chain: the downsweep may not start until
  // the serial combine has every block sum, and the combine needs the whole
  // upsweep — real cross-loop dependencies through the pipeline subsystem.
  pipeline::LoopChain chain;
  const int upsweep =
      chain.add(nblocks, spec, [&](i64 b, i64 e, const rt::WorkerInfo&) {
        for (i64 blk = b; blk < e; ++blk) {
          i64 begin = 0;
          i64 end = 0;
          block_range(blk, &begin, &end);
          block_sums[static_cast<usize>(blk)] =
              kernels::range_sum(x, begin, end);
        }
      });
  const int combine =
      chain.add_after(upsweep, 1, sched::ScheduleSpec::static_even(),
                      [&](i64, i64, const rt::WorkerInfo&) {
                        double acc = 0.0;
                        for (i64 b = 0; b < nblocks; ++b) {
                          offsets[static_cast<usize>(b)] = acc;
                          acc += block_sums[static_cast<usize>(b)];
                        }
                      });
  chain.add_after(combine, nblocks, spec,
                  [&](i64 b, i64 e, const rt::WorkerInfo&) {
                    for (i64 blk = b; blk < e; ++blk) {
                      i64 begin = 0;
                      i64 end = 0;
                      block_range(blk, &begin, &end);
                      kernels::inclusive_scan_apply(
                          x, offsets[static_cast<usize>(blk)], out, begin,
                          end);
                    }
                  });
  team.run_chain(chain);

  // Sampled fixed-order checksum (full sum of prefix sums would dwarf the
  // signal): every 97th prefix plus the total.
  double checksum = out[static_cast<usize>(n - 1)];
  for (i64 i = 0; i < n; i += 97) checksum += out[static_cast<usize>(i)];
  return checksum;
}

double transpose_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale) {
  const i64 rows = std::max<i64>(64, static_cast<i64>(768 * std::sqrt(scale)));
  const i64 cols = std::max<i64>(32, rows / 2);
  const std::vector<double> in =
      kernels::signal_vector(rows * cols, 0x72);
  std::vector<double> out(in.size(), 0.0);
  team.run_loop(rows, spec, [&](i64 b, i64 e, const rt::WorkerInfo&) {
    kernels::transpose_rows(in, out, rows, cols, b, e);
  });
  // Position-weighted checksum: a value landing anywhere but its transposed
  // slot changes the sum (a plain sum would not notice a misplaced write).
  double checksum = 0.0;
  for (usize k = 0; k < out.size(); ++k)
    checksum += out[k] * static_cast<double>(k % 13 + 1);
  return checksum;
}

double stencil2d_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale) {
  const i64 side = std::max<i64>(48, static_cast<i64>(512 * std::sqrt(scale)));
  Grid2D a = Grid2D::generate(side, side, 0x5D);
  Grid2D b = a;
  for (int sweep = 0; sweep < 4; ++sweep) {
    const Grid2D& in = (sweep % 2 == 0) ? a : b;
    Grid2D& out = (sweep % 2 == 0) ? b : a;
    team.parallel_for(0, side, 1, spec, [&](i64 row, const rt::WorkerInfo&) {
      kernels::stencil2d_row(in, out, row, 0.18);
    });
  }
  double checksum = 0.0;
  for (double v : a.cells) checksum += v;
  return checksum;
}

}  // namespace

std::vector<Workload> make_datapar_workloads() {
  std::vector<Workload> v;
  v.emplace_back(histogram_spec(), histogram_kernel);
  v.emplace_back(spmv_spec(), spmv_kernel);
  v.emplace_back(scan_spec(), scan_kernel);
  v.emplace_back(transpose_spec(), transpose_kernel);
  v.emplace_back(stencil2d_spec(), stencil2d_kernel);
  return v;
}

}  // namespace aid::workloads
