// NAS Parallel Benchmarks profiles and kernels (BT, CG, EP, FT, IS, LU, MG).
//
// Profile calibration notes (what pins each parameter):
//  * BT/CG get exactly 30 loop phases so bench_fig02 can reproduce Fig. 2's
//    "first 30 loops" plots. compute_fraction patterns give the sawtooth SF
//    spread of Fig. 2a/2c on Platform A (1x..~8x) that collapses to
//    1.5x..2.25x on Platform B through the two-component speed model.
//  * EP is a single loop spanning the whole execution with near-uniform
//    iterations (paper Sec. 2 / Fig. 1) plus a gentle cost drift that makes
//    the sampled SF slightly unrepresentative — the Fig. 4 effect that lets
//    AID-hybrid beat AID-static by ~10%.
//  * IS has very short iterations and a significant sequential ranking
//    phase: dynamic's per-chunk overhead makes it 1.93x slower than
//    static(SB) on Platform A (Sec. 5A), while static(BS) gains ~2x from
//    running the serial phase on a big core.
//  * FT's iterations are markedly uneven (lognormal): "the dynamic method
//    is clearly beneficial" (Sec. 5A).
//  * MG sweeps a grid hierarchy: tiny coarse-grid loops (chunk sensitivity,
//    Fig. 8) and memory-bound fine-grid loops (low SF).
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace aid::workloads {
namespace {

using kernels::CsrMatrix;
using kernels::Grid2D;

// --------------------------------------------------------------- profiles

AppSpec bt_spec() {
  AppSpec s;
  s.name = "BT";
  s.suite = "NPB";
  s.description = "block tridiagonal solver; 30 loops with sawtooth SF";
  s.phases.push_back(SerialSpec{"init", 10e6, 0.7});
  for (int l = 0; l < 30; ++l) {
    LoopSpec loop;
    loop.name = "loop" + std::to_string(l);
    // Trip counts vary widely across BT's loops (solve lines vs cell
    // updates); the small-trip loops are where large chunks hurt (Fig. 8).
    loop.trip = 400 + (static_cast<i64>(l) * 7919) % 1200;
    loop.invocations = 8;
    loop.cost_small_ns = 2500.0;
    // Sawtooth compute fraction: solver sweeps (compute-bound, high solo
    // SF) alternate with rhs/memory passes (low SF) as in Fig. 2a. Under
    // the full team the shared LPDDR3 erodes the gap (see profile.h).
    loop.compute_fraction =
        0.12 + 0.85 * std::fabs(std::sin(0.9 * static_cast<double>(l) + 0.4));
    loop.contention = 0.55;
    loop.shape = CostShape::kLognormal;
    loop.shape_param = 0.10;
    loop.drift = 0.25;  // sweep-direction boundary structure
    loop.seed = 0xB7 + static_cast<u64>(l);
    loop.serial_between_ns = 60e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec cg_spec() {
  AppSpec s;
  s.name = "CG";
  s.suite = "NPB";
  s.description = "conjugate gradient; matvecs plus many short vector loops";
  s.phases.push_back(SerialSpec{"init", 8e6, 0.6});
  for (int l = 0; l < 30; ++l) {
    LoopSpec loop;
    loop.name = "loop" + std::to_string(l);
    const bool matvec = (l % 5) == 0;  // 6 of 30 loops are the SpMV
    loop.trip = matvec ? 5000 : 6000;
    loop.invocations = 5;
    // The short vector loops are the reason dynamic hurts CG: per-iteration
    // cost in the same ballpark as one pool removal (catastrophic on the
    // Xeon, whose cores finish the iteration 3.5x sooner: 2.86x slowdown,
    // paper Sec. 5A).
    loop.cost_small_ns = matvec ? 1400.0 : 210.0;
    // SpMV rows span compute-bound (dense blocks) to memory-bound; the
    // dot/axpy loops stream memory. Matches Fig. 2c's spikes to ~8x.
    loop.compute_fraction =
        matvec ? 0.72 + 0.25 * std::fabs(std::sin(1.7 * static_cast<double>(l)))
               : 0.06 + 0.05 * static_cast<double>(l % 7);
    loop.contention = 0.5;
    loop.shape = CostShape::kLognormal;
    loop.shape_param = matvec ? 0.15 : 0.05;
    loop.drift = matvec ? 0.30 : 0.10;  // structure-ordered row lengths
    loop.seed = 0xC6 + static_cast<u64>(l);
    loop.serial_between_ns = 25e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec ep_spec() {
  AppSpec s;
  s.name = "EP";
  s.suite = "NPB";
  s.description = "embarrassingly parallel; one loop spans the execution";
  s.phases.push_back(SerialSpec{"init", 2e6, 0.7});
  LoopSpec loop;
  loop.name = "gaussian-pairs";
  loop.trip = 8000;
  loop.invocations = 1;
  loop.cost_small_ns = 22000.0;  // heavy batches: runtime overhead invisible
  loop.compute_fraction = 0.93;  // solo SF ~6 (Fig. 1/4 regime)
  loop.contention = 0.62;        // big-cluster DVFS under 8-thread load
  // Mild drift: the early-sampled SF under-represents the tail, leaving
  // AID-static ~10% imbalanced (Fig. 4a) which AID-hybrid recovers (4b).
  loop.shape = CostShape::kRamp;
  loop.shape_param = 0.14;
  s.phases.push_back(loop);
  return s;
}

AppSpec ft_spec() {
  AppSpec s;
  s.name = "FT";
  s.suite = "NPB";
  s.description = "3D FFT; uneven per-pencil cost favors dynamic";
  s.phases.push_back(SerialSpec{"init", 9e6, 0.7});
  const double fractions[4] = {0.55, 0.62, 0.50, 0.66};
  for (int l = 0; l < 4; ++l) {
    LoopSpec loop;
    loop.name = "fft-dim" + std::to_string(l);
    loop.trip = l == 3 ? 800 : 1200;
    loop.invocations = 6;
    loop.cost_small_ns = 13000.0;  // heavy pencils: dynamic affordable
    loop.compute_fraction = fractions[l];
    loop.contention = 0.5;
    loop.shape = CostShape::kLognormal;
    loop.shape_param = 0.45;  // markedly uneven pencils
    loop.drift = 0.20;
    loop.seed = 0xF7 + static_cast<u64>(l);
    loop.serial_between_ns = 120e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec is_spec() {
  AppSpec s;
  s.name = "IS";
  s.suite = "NPB";
  s.description = "integer sort; tiny iterations, heavy serial ranking";
  s.phases.push_back(SerialSpec{"key-generation", 30e6, 0.75});
  const struct {
    const char* name;
    i64 trip;
    double cost;
    double cf;
  } loops[3] = {
      // Iterations cost less than one pool removal: the paper's 1.93x
      // dynamic slowdown on Platform A comes from exactly this regime.
      {"histogram", 24576, 110.0, 0.30},
      {"rank", 24576, 95.0, 0.25},
      {"verify", 12288, 90.0, 0.20},
  };
  for (const auto& d : loops) {
    LoopSpec loop;
    loop.name = d.name;
    loop.trip = d.trip;
    loop.invocations = 10;
    loop.cost_small_ns = d.cost;
    loop.compute_fraction = d.cf;
    loop.contention = 0.4;
    loop.serial_between_ns = 200e3;  // sequential rank merge between passes
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec lu_spec() {
  AppSpec s;
  s.name = "LU";
  s.suite = "NPB";
  s.description = "SSOR solver; alternating sweep/rhs loops";
  s.phases.push_back(SerialSpec{"init", 7e6, 0.7});
  const double fractions[8] = {0.50, 0.66, 0.34, 0.72, 0.44, 0.60, 0.28, 0.56};
  for (int l = 0; l < 8; ++l) {
    LoopSpec loop;
    loop.name = "ssor" + std::to_string(l);
    loop.trip = 3000;
    loop.invocations = 8;
    loop.cost_small_ns = 2400.0;
    loop.compute_fraction = fractions[l];
    loop.contention = 0.55;
    loop.shape = CostShape::kLognormal;
    loop.shape_param = 0.20;
    loop.drift = 0.30;  // wavefront position structure
    loop.seed = 0x14 + static_cast<u64>(l);
    loop.serial_between_ns = 40e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec mg_spec() {
  AppSpec s;
  s.name = "MG";
  s.suite = "NPB";
  s.description = "multigrid V-cycle; trip counts span the grid hierarchy";
  s.phases.push_back(SerialSpec{"init", 5e6, 0.6});
  const struct {
    i64 trip;
    double cf;
  } levels[6] = {{512, 0.35}, {2048, 0.42}, {8192, 0.47},
                 {24576, 0.50}, {8192, 0.40}, {512, 0.30}};
  int l = 0;
  for (const auto& d : levels) {
    LoopSpec loop;
    loop.name = "grid-level" + std::to_string(l++);
    loop.trip = d.trip;
    loop.invocations = 6;
    loop.cost_small_ns = 1000.0;
    loop.compute_fraction = d.cf;
    loop.contention = 0.55;
    loop.drift = 0.25;  // boundary vs interior rows
    loop.serial_between_ns = 30e3;
    s.phases.push_back(loop);
  }
  return s;
}

// ---------------------------------------------------------------- kernels

double bt_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                 double scale) {
  const i64 lines = std::max<i64>(8, static_cast<i64>(600 * scale));
  std::atomic<double> sum{0.0};
  for (int sweep = 0; sweep < 3; ++sweep) {
    team.parallel_for(0, lines, 1, spec,
                      [&](i64 line, const rt::WorkerInfo&) {
                        const double v = kernels::tridiag_line_solve(
                            line, 64, 0xB70000 + static_cast<u64>(sweep));
                        double cur = sum.load(std::memory_order_relaxed);
                        while (!sum.compare_exchange_weak(
                            cur, cur + v, std::memory_order_relaxed)) {
                        }
                      });
  }
  return sum.load();
}

double cg_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                 double scale) {
  const i64 side = std::max<i64>(8, static_cast<i64>(48 * std::sqrt(scale)));
  const CsrMatrix a = CsrMatrix::laplacian_2d(side);
  const i64 n = a.rows;
  std::vector<double> x(static_cast<usize>(n), 1.0);
  std::vector<double> y(static_cast<usize>(n), 0.0);
  // Three Richardson iterations x <- x + w (b - A x) with b = 0 vector
  // replaced by ones: exercises SpMV + axpy through the team.
  for (int it = 0; it < 3; ++it) {
    team.parallel_for(0, n, 1, spec, [&](i64 row, const rt::WorkerInfo&) {
      y[static_cast<usize>(row)] = kernels::spmv_row(a, x, row);
    });
    team.parallel_for(0, n, 1, spec, [&](i64 row, const rt::WorkerInfo&) {
      x[static_cast<usize>(row)] +=
          0.1 * (1.0 - y[static_cast<usize>(row)]);
    });
  }
  double checksum = 0.0;
  for (double v : x) checksum += v;
  return checksum;
}

double ep_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                 double scale) {
  const i64 pairs = std::max<i64>(64, static_cast<i64>(200000 * scale));
  const int nthreads = team.nthreads();
  struct alignas(kCacheLineBytes) Partial {
    double sx = 0.0, sy = 0.0;
    i64 accepted = 0;
  };
  std::vector<Partial> partial(static_cast<usize>(nthreads));
  team.parallel_for(0, pairs, 1, spec, [&](i64 i, const rt::WorkerInfo& w) {
    double sx = 0.0;
    double sy = 0.0;
    auto& p = partial[static_cast<usize>(w.tid)];
    p.accepted += kernels::ep_pair_accept(0xE9, i, &sx, &sy);
    p.sx += sx;
    p.sy += sy;
  });
  double sx = 0.0;
  double sy = 0.0;
  i64 accepted = 0;
  for (const auto& p : partial) {
    sx += p.sx;
    sy += p.sy;
    accepted += p.accepted;
  }
  return sx + sy + static_cast<double>(accepted);
}

double ft_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                 double scale) {
  const i64 bins = std::max<i64>(16, static_cast<i64>(256 * scale));
  const i64 signal = 256;
  std::vector<double> mag(static_cast<usize>(bins));
  team.parallel_for(0, bins, 1, spec, [&](i64 k, const rt::WorkerInfo&) {
    mag[static_cast<usize>(k)] = kernels::dft_bin(k, signal, 0xF7);
  });
  double checksum = 0.0;
  for (double v : mag) checksum += v;
  return checksum;
}

double is_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                 double scale) {
  const i64 n = std::max<i64>(256, static_cast<i64>(200000 * scale));
  const i32 max_key = 1024;
  const auto batch = kernels::KeyBatch::generate(n, max_key, 0x15);
  const int nthreads = team.nthreads();
  std::vector<std::vector<i64>> local(
      static_cast<usize>(nthreads),
      std::vector<i64>(static_cast<usize>(max_key), 0));
  team.run_loop(n, spec, [&](i64 b, i64 e, const rt::WorkerInfo& w) {
    kernels::is_histogram_slice(batch, local[static_cast<usize>(w.tid)], b, e);
  });
  double checksum = 0.0;
  std::vector<i64> counts(static_cast<usize>(max_key), 0);
  for (const auto& l : local)
    for (usize k = 0; k < l.size(); ++k) counts[k] += l[k];
  for (usize k = 0; k < counts.size(); ++k)
    checksum += static_cast<double>(counts[k]) * static_cast<double>(k + 1);
  return checksum;
}

double lu_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                 double scale) {
  const i64 side = std::max<i64>(16, static_cast<i64>(128 * std::sqrt(scale)));
  Grid2D g = Grid2D::generate(side, side, 0x1D);
  // Red-black Gauss-Seidel: cells of one color update independently.
  for (int sweep = 0; sweep < 4; ++sweep) {
    const int color = sweep % 2;
    team.parallel_for(0, side, 1, spec, [&](i64 y, const rt::WorkerInfo&) {
      for (i64 x = (y + color) % 2; x < side; x += 2)
        (void)kernels::gauss_seidel_cell(g, x, y, 1.0);
    });
  }
  double checksum = 0.0;
  for (double v : g.cells) checksum += v;
  return checksum;
}

double mg_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                 double scale) {
  const i64 side = std::max<i64>(32, static_cast<i64>(256 * std::sqrt(scale)));
  double checksum = 0.0;
  // Sweep three grid levels, halving resolution each time.
  for (i64 level_side = side; level_side >= side / 4 && level_side >= 8;
       level_side /= 2) {
    Grid2D in = Grid2D::generate(level_side, level_side,
                                 0x36 + static_cast<u64>(level_side));
    Grid2D out = in;
    team.parallel_for(0, level_side, 1, spec,
                      [&](i64 row, const rt::WorkerInfo&) {
                        kernels::stencil2d_row(in, out, row, 0.20);
                      });
    for (double v : out.cells) checksum += v;
  }
  return checksum;
}

}  // namespace

std::vector<Workload> make_npb_workloads() {
  std::vector<Workload> v;
  v.emplace_back(bt_spec(), bt_kernel);
  v.emplace_back(cg_spec(), cg_kernel);
  v.emplace_back(ep_spec(), ep_kernel);
  v.emplace_back(ft_spec(), ft_kernel);
  v.emplace_back(is_spec(), is_kernel);
  v.emplace_back(lu_spec(), lu_kernel);
  v.emplace_back(mg_spec(), mg_kernel);
  return v;
}

}  // namespace aid::workloads
