// Real computational mini-kernels backing the workload suite.
//
// Each of the 21 benchmarks pairs its simulator profile with a real kernel
// built from these primitives and executed through the actual thread team.
// The kernels are small but genuine (floating-point stencils, CSR SpMV,
// closed-form Black–Scholes, BFS, ...) and every one has a serial reference
// path, so tests can assert the bit-level schedule-invariance contract: any
// loop schedule must produce the same result as serial execution.
//
// All state builders are deterministic (seeded Rng), no global state.
#pragma once

#include <atomic>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace aid::workloads::kernels {

// ---------------------------------------------------------------- finance
/// Closed-form Black–Scholes European option price (PARSEC blackscholes).
[[nodiscard]] double black_scholes(double spot, double strike, double rate,
                                   double volatility, double expiry,
                                   bool call);

/// A batch of option parameters generated deterministically from `seed`.
struct OptionBatch {
  std::vector<double> spot, strike, rate, vol, expiry;
  std::vector<u8> call;
  [[nodiscard]] i64 size() const { return static_cast<i64>(spot.size()); }
  static OptionBatch generate(i64 n, u64 seed);
};

// ---------------------------------------------------------------- stencils
/// Dense row-major W x H grid with a deterministic initial condition.
struct Grid2D {
  i64 width = 0, height = 0;
  std::vector<double> cells;
  static Grid2D generate(i64 width, i64 height, u64 seed);
  [[nodiscard]] double& at(i64 x, i64 y) { return cells[static_cast<usize>(y * width + x)]; }
  [[nodiscard]] double at(i64 x, i64 y) const { return cells[static_cast<usize>(y * width + x)]; }
};

/// 5-point damped-diffusion update of one interior row (hotspot/srad-like):
/// out[x,y] = in[x,y] + k * (N + S + E + W - 4 * in[x,y]).
void stencil2d_row(const Grid2D& in, Grid2D& out, i64 row, double k);

/// 7-point update of one z-plane of a W x H x D grid (hotspot3D-like).
struct Grid3D {
  i64 width = 0, height = 0, depth = 0;
  std::vector<double> cells;
  static Grid3D generate(i64 width, i64 height, i64 depth, u64 seed);
  [[nodiscard]] usize idx(i64 x, i64 y, i64 z) const {
    return static_cast<usize>((z * height + y) * width + x);
  }
};
void stencil3d_plane(const Grid3D& in, Grid3D& out, i64 plane, double k);

// ------------------------------------------------------------ sparse/linear
/// CSR sparse matrix; generate() builds a 2D 5-point Laplacian (SPD), the
/// classic CG test operator.
struct CsrMatrix {
  i64 rows = 0;
  std::vector<i64> row_ptr;
  std::vector<i64> cols;
  std::vector<double> vals;
  static CsrMatrix laplacian_2d(i64 grid_side);
  /// Deterministic square matrix with power-law row lengths (row nnz spans
  /// 1 .. ~8*avg_nnz): the irregular per-row work that separates dynamic/AID
  /// schedules from static on SpMV, where the Laplacian's near-constant
  /// 5-point rows cannot.
  static CsrMatrix random_irregular(i64 rows, i64 avg_nnz, u64 seed);
  [[nodiscard]] i64 nnz() const { return static_cast<i64>(cols.size()); }
  [[nodiscard]] i64 row_nnz(i64 row) const {
    return row_ptr[static_cast<usize>(row) + 1] -
           row_ptr[static_cast<usize>(row)];
  }
};
/// y[row] = A[row,:] * x (one CG matvec iteration unit).
[[nodiscard]] double spmv_row(const CsrMatrix& a,
                              const std::vector<double>& x, i64 row);

/// One red/black Gauss–Seidel sweep cell update (LU-like smoother step)
/// on a Grid2D; returns the update applied (for residual accounting).
[[nodiscard]] double gauss_seidel_cell(Grid2D& g, i64 x, i64 y, double rhs);

/// Thomas-algorithm solve of a small tridiagonal system (BT's line solves);
/// diagonals generated per line id; returns the solution checksum.
[[nodiscard]] double tridiag_line_solve(i64 line_id, i64 n, u64 seed);

// ----------------------------------------------------------------- NPB bits
/// EP-style Marsaglia polar pair: returns 1 when the pair (from a counter-
/// based generator, so iterations are independent) lands in the unit disk.
[[nodiscard]] int ep_pair_accept(u64 seed, i64 index, double* sx, double* sy);

/// Naive DFT bin magnitude over a deterministic signal (FT-ish heavy math).
[[nodiscard]] double dft_bin(i64 k, i64 n, u64 seed);

/// IS-style key ranking: count keys in `keys` smaller than keys[i].
struct KeyBatch {
  std::vector<i32> keys;
  i32 max_key = 0;
  static KeyBatch generate(i64 n, i32 max_key, u64 seed);
  /// Skewed key distribution (key = max_key * u^(1+skew)): hot bins that
  /// many iterations hit at once — the atomics-contention regime the
  /// shared-bin histogram kernel exists to stress. skew = 0 is uniform.
  static KeyBatch generate_skewed(i64 n, i32 max_key, double skew, u64 seed);
};
void is_histogram_slice(const KeyBatch& batch, std::vector<i64>& counts,
                        i64 begin, i64 end);

/// Shared-bin histogram slice: every iteration lands a relaxed fetch_add on
/// its key's bin. Integer increments commute, so the final bin contents are
/// schedule-invariant bit for bit — unlike a float accumulation would be.
void atomic_histogram_slice(const KeyBatch& batch,
                            std::vector<std::atomic<i64>>& bins, i64 begin,
                            i64 end);

// ------------------------------------------------------- data-parallel suite
/// Deterministic input vector for the scan/transpose kernels: x[i] in
/// [-0.5, 0.5), independent per index (counter-based).
[[nodiscard]] std::vector<double> signal_vector(i64 n, u64 seed);

/// Serial sum of x[begin, end) in ascending index order (the block-sum
/// phase of the two-phase scan; fixed order keeps it bit-deterministic).
[[nodiscard]] double range_sum(const std::vector<double>& x, i64 begin,
                               i64 end);

/// Inclusive prefix sums of x[begin, end) shifted by `offset`:
/// out[i] = offset + x[begin] + ... + x[i]. The downsweep phase of the
/// two-phase scan; each block's serial accumulation order is fixed, so the
/// result is independent of which thread ran the block.
void inclusive_scan_apply(const std::vector<double>& x, double offset,
                          std::vector<double>& out, i64 begin, i64 end);

/// Transpose rows [row_begin, row_end) of a rows x cols row-major matrix
/// into the cols x rows output: out[c * rows + r] = in[r * cols + c].
/// Reads stream, writes stride by `rows` doubles — the classic bad-locality
/// access pattern a scheduler cannot see from trip counts alone.
void transpose_rows(const std::vector<double>& in, std::vector<double>& out,
                    i64 rows, i64 cols, i64 row_begin, i64 row_end);

// ------------------------------------------------------------------ graphs
/// CSR adjacency for a deterministic random graph (Rodinia bfs).
struct Graph {
  i64 nodes = 0;
  std::vector<i64> row_ptr;
  std::vector<i64> adj;
  static Graph random(i64 nodes, i64 avg_degree, u64 seed);
};
/// Relax all edges of `node` given current distances; returns the number of
/// improved neighbours. Concurrent relaxations are safe: next_dist is
/// updated with an atomic compare-and-min.
i64 bfs_relax_node(const Graph& g, const std::vector<i64>& dist,
                   std::vector<std::atomic<i64>>& next_dist, i64 node);

/// Sorted-array binary search (bptree lookups); returns found index or -1.
[[nodiscard]] i64 sorted_search(const std::vector<i64>& keys, i64 key);

// ------------------------------------------------------------ particles/MD
/// Lennard-Jones force magnitude accumulated from `m` deterministic
/// neighbour positions of particle `i` (lavamd-like box interaction).
[[nodiscard]] double lj_force(i64 particle, i64 neighbours, u64 seed);

/// Particle-filter likelihood weight for one particle given a synthetic
/// observation (Rodinia particlefilter).
[[nodiscard]] double particle_weight(i64 particle, i64 frame, u64 seed);

/// k-median assignment cost: distance of point i to its closest center
/// (streamcluster's assign step).
struct PointSet {
  i64 dims = 0;
  std::vector<double> coords;  // n x dims row-major
  [[nodiscard]] i64 size() const {
    return dims == 0 ? 0 : static_cast<i64>(coords.size()) / dims;
  }
  static PointSet generate(i64 n, i64 dims, u64 seed);
};
[[nodiscard]] double kmedian_assign(const PointSet& points,
                                    const PointSet& centers, i64 i);

/// Normalized cross-correlation of a template window at image offset `pos`
/// (heartwall/leukocyte-like detection step).
[[nodiscard]] double window_correlation(const Grid2D& image,
                                        const Grid2D& tmpl, i64 pos);

/// Body-pose error metric for bodytrack-like particle evaluation.
[[nodiscard]] double pose_error(i64 particle, i64 joints, u64 seed);

/// CFD Euler3D-like flux update for one cell of a synthetic unstructured
/// mesh; returns the density residual contribution.
[[nodiscard]] double euler_flux(i64 cell, u64 seed);

}  // namespace aid::workloads::kernels
