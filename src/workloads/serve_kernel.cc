#include "workloads/serve_kernel.h"

#include <atomic>
#include <cmath>
#include <memory>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace aid::workloads {

namespace {

/// Shared output-vector state: iteration i writes out[i]; the checksum is
/// the fixed-order serial sum. One shared_ptr is captured by both the
/// body and the checksum closure, so the kernel owns its state for as
/// long as either closure lives (the ingress holds them until the
/// terminal frame is sent).
struct Slots {
  std::vector<double> out;
  explicit Slots(i64 n) : out(static_cast<usize>(n), 0.0) {}
  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (const double v : out) s += v;
    return s;
  }
};

ServeKernel from_fn(i64 count, std::function<double(i64)> fn) {
  auto slots = std::make_shared<Slots>(count);
  ServeKernel k;
  k.count = count;
  k.body = [slots, fn = std::move(fn)](i64 begin, i64 end,
                                       const rt::WorkerInfo&) {
    for (i64 i = begin; i < end; ++i)
      slots->out[static_cast<usize>(i)] = fn(i);
  };
  k.checksum = [slots] { return slots->sum(); };
  return k;
}

// ---------------------------------------------------------------- kernels

ServeKernel make_ep(i64 count) {
  // NPB EP: counter-based Marsaglia pairs — iterations are independent by
  // construction (the paper's Fig. 1 uniform loop).
  return from_fn(count, [](i64 i) {
    double sx = 0.0;
    double sy = 0.0;
    const int accepted = kernels::ep_pair_accept(0xE9, i, &sx, &sy);
    return accepted != 0 ? 1.0 + 0.25 * (sx + sy) : 0.0;
  });
}

ServeKernel make_ft(i64 count) {
  // NPB FT: one DFT bin per iteration over a fixed-size signal. The
  // signal length is capped so per-iteration cost stays bounded
  // (count * signal ops total) for arbitrary wire counts.
  const i64 signal = std::min<i64>(count, 2048);
  return from_fn(count, [signal](i64 k) {
    return kernels::dft_bin(k % signal, signal, 0xF7);
  });
}

ServeKernel make_cg(i64 count) {
  // NPB CG: CSR SpMV rows of a 2D 5-point Laplacian. The matrix has at
  // least `count` rows (side^2 >= count); iteration i computes row i.
  const i64 side =
      static_cast<i64>(std::ceil(std::sqrt(static_cast<double>(count))));
  auto a = std::make_shared<kernels::CsrMatrix>(
      kernels::CsrMatrix::laplacian_2d(std::max<i64>(side, 1)));
  auto x = std::make_shared<std::vector<double>>();
  x->resize(static_cast<usize>(a->rows));
  for (usize j = 0; j < x->size(); ++j)
    x->at(j) = 1.0 + 0.1 * static_cast<double>(j % 7);
  return from_fn(count,
                 [a, x](i64 row) { return kernels::spmv_row(*a, *x, row); });
}

ServeKernel make_blackscholes(i64 count) {
  auto batch = std::make_shared<kernels::OptionBatch>(
      kernels::OptionBatch::generate(count, 0xB5));
  return from_fn(count, [batch](i64 i) {
    const usize u = static_cast<usize>(i);
    return kernels::black_scholes(batch->spot[u], batch->strike[u],
                                  batch->rate[u], batch->vol[u],
                                  batch->expiry[u], batch->call[u] != 0);
  });
}

ServeKernel make_streamcluster(i64 count) {
  auto points =
      std::make_shared<kernels::PointSet>(kernels::PointSet::generate(
          count, /*dims=*/8, 0x5C));
  auto centers =
      std::make_shared<kernels::PointSet>(kernels::PointSet::generate(
          /*n=*/16, /*dims=*/8, 0xC5));
  return from_fn(count, [points, centers](i64 i) {
    return kernels::kmedian_assign(*points, *centers, i);
  });
}

ServeKernel make_particlefilter(i64 count) {
  return from_fn(count, [](i64 particle) {
    return kernels::particle_weight(particle, /*frame=*/3, 0x9F);
  });
}

// ----------------------------------------------------- data-parallel suite
//
// The DataPar twins. All but histogram follow the slot pattern; shared
// read-only inputs are capped so a max-count wire job stays within a few
// MB of server-side state per job.

ServeKernel make_histogram(i64 count) {
  // The one servable kernel with cross-iteration state: shared atomic bins.
  // Integer increments commute, so the bins — and the fixed-order weighted
  // checksum over them — are bit-identical under any schedule, which is all
  // the cross-transport verification needs.
  constexpr i32 kBins = 256;
  auto batch = std::make_shared<kernels::KeyBatch>(
      kernels::KeyBatch::generate_skewed(count, kBins, 2.0, 0x41));
  auto bins = std::make_shared<std::vector<std::atomic<i64>>>(kBins);
  for (auto& b : *bins) b.store(0, std::memory_order_relaxed);
  ServeKernel k;
  k.count = count;
  k.body = [batch, bins](i64 begin, i64 end, const rt::WorkerInfo&) {
    kernels::atomic_histogram_slice(*batch, *bins, begin, end);
  };
  k.checksum = [bins] {
    double s = 0.0;
    for (usize i = 0; i < bins->size(); ++i)
      s += static_cast<double>((*bins)[i].load(std::memory_order_relaxed)) *
           static_cast<double>(i + 1);
    return s;
  };
  return k;
}

ServeKernel make_spmv(i64 count) {
  // Matrix rows are capped (a max-count job would otherwise assemble a
  // ~16M-entry matrix per request); iteration i computes row i mod rows.
  const i64 rows = std::min<i64>(count, i64{1} << 14);
  auto a = std::make_shared<kernels::CsrMatrix>(
      kernels::CsrMatrix::random_irregular(rows, 16, 0x5B));
  auto x = std::make_shared<std::vector<double>>();
  x->resize(static_cast<usize>(rows));
  for (usize j = 0; j < x->size(); ++j)
    x->at(j) = 1.0 + 0.25 * static_cast<double>(j % 11);
  return from_fn(count, [a, x, rows](i64 i) {
    return kernels::spmv_row(*a, *x, i % rows);
  });
}

ServeKernel make_scan(i64 count) {
  // Tiled inclusive scan: slot i holds the prefix sum within its 256-wide
  // tile. Bounded per-iteration cost (<= one tile) for arbitrary counts,
  // still a genuine dependent-accumulation access pattern.
  constexpr i64 kTile = 256;
  auto x = std::make_shared<std::vector<double>>(
      kernels::signal_vector(count, 0x5C));
  return from_fn(count, [x, kTile](i64 i) {
    const i64 tile_start = (i / kTile) * kTile;
    return kernels::range_sum(*x, tile_start, i + 1);
  });
}

ServeKernel make_transpose(i64 count) {
  // Strided reads against a capped square matrix: slot i reads the
  // transposed position of i mod size.
  const i64 side = std::min<i64>(
      512, std::max<i64>(
               8, static_cast<i64>(std::sqrt(static_cast<double>(count)))));
  auto in = std::make_shared<std::vector<double>>(
      kernels::signal_vector(side * side, 0x72));
  return from_fn(count, [in, side](i64 i) {
    const i64 cell = i % (side * side);
    const i64 r = cell / side;
    const i64 c = cell % side;
    return (*in)[static_cast<usize>(c * side + r)];
  });
}

ServeKernel make_stencil2d(i64 count) {
  // One 5-point damped-diffusion update per slot against a capped grid.
  const i64 side = std::min<i64>(
      512, std::max<i64>(
               8, static_cast<i64>(std::sqrt(static_cast<double>(count)))));
  auto g = std::make_shared<kernels::Grid2D>(
      kernels::Grid2D::generate(side, side, 0x5D));
  return from_fn(count, [g, side](i64 i) {
    const i64 cell = i % (side * side);
    const i64 x = cell % side;
    const i64 y = cell / side;
    const double c = g->at(x, y);
    const double n = y > 0 ? g->at(x, y - 1) : c;
    const double s = y + 1 < side ? g->at(x, y + 1) : c;
    const double w = x > 0 ? g->at(x - 1, y) : c;
    const double e = x + 1 < side ? g->at(x + 1, y) : c;
    return c + 0.18 * (n + s + e + w - 4.0 * c);
  });
}

using Maker = ServeKernel (*)(i64 count);

struct Entry {
  const char* name;
  Maker make;
};

/// Registry subset with wire-servable kernels, in registry display order
/// (NPB, then PARSEC, then Rodinia, then DataPar — matching
/// workload_names()).
constexpr Entry kServable[] = {
    {"CG", make_cg},
    {"EP", make_ep},
    {"FT", make_ft},
    {"blackscholes", make_blackscholes},
    {"streamcluster", make_streamcluster},
    {"particlefilter", make_particlefilter},
    {"histogram", make_histogram},
    {"spmv", make_spmv},
    {"scan", make_scan},
    {"transpose", make_transpose},
    {"stencil2d", make_stencil2d},
};

void set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}

}  // namespace

std::optional<ServeKernel> make_serve_kernel(std::string_view workload,
                                             i64 count, std::string* error) {
  // Registry membership first: an unknown name gets the registry's own
  // explicit error (satellite: no assert/abort on miss).
  std::string lookup_error;
  if (find_workload_or_error(workload, &lookup_error) == nullptr) {
    set_error(error, std::move(lookup_error));
    return std::nullopt;
  }
  const Entry* entry = nullptr;
  for (const Entry& e : kServable)
    if (workload == e.name) {
      entry = &e;
      break;
    }
  if (entry == nullptr) {
    std::string msg = "workload '";
    msg += workload;
    msg += "' has no wire-servable kernel (servable:";
    for (const auto& n : serve_kernel_names()) {
      msg += ' ';
      msg += n;
    }
    msg += ')';
    set_error(error, std::move(msg));
    return std::nullopt;
  }
  if (count < 1 || count > kMaxServeCount) {
    set_error(error, "count " + std::to_string(count) +
                         " outside [1, " + std::to_string(kMaxServeCount) +
                         "]");
    return std::nullopt;
  }
  return entry->make(count);
}

const std::vector<std::string>& serve_kernel_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Entry& e : kServable) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

}  // namespace aid::workloads
