#include "workloads/profile.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/rng.h"

namespace aid::workloads {
namespace {

u64 hash_name(const std::string& text) {
  u64 h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::shared_ptr<const sim::CostModel> make_cost_model(
    const LoopSpec& loop, i64 trip, std::vector<double> sf) {
  const double drift = loop.shape == CostShape::kRamp
                           ? loop.shape_param + loop.drift
                           : loop.drift;
  AID_CHECK_MSG(drift > -2.0, "drift would produce non-positive costs");

  switch (loop.shape) {
    case CostShape::kUniform:
    case CostShape::kRamp: {
      if (drift == 0.0)
        return std::make_shared<sim::UniformCostModel>(loop.cost_small_ns,
                                                       std::move(sf));
      // Mean preserved: base * (1 + drift/2) == cost_small_ns.
      const double base = loop.cost_small_ns / (1.0 + drift / 2.0);
      const double slope =
          trip > 1 ? base * drift / static_cast<double>(trip - 1) : 0.0;
      return std::make_shared<sim::AffineCostModel>(base, slope, trip,
                                                    std::move(sf));
    }
    case CostShape::kLognormal: {
      const double sigma = loop.shape_param;
      AID_CHECK_MSG(sigma >= 0.0, "lognormal sigma must be >= 0");
      // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) == cost_small_ns.
      const double mu = std::log(loop.cost_small_ns) - 0.5 * sigma * sigma;
      Rng rng(loop.seed ^ hash_name(loop.name));
      std::vector<double> costs(static_cast<usize>(trip));
      const double denom = trip > 1 ? static_cast<double>(trip - 1) : 1.0;
      const double norm = 1.0 + drift / 2.0;
      for (i64 i = 0; i < trip; ++i) {
        const double ramp =
            (1.0 + drift * static_cast<double>(i) / denom) / norm;
        costs[static_cast<usize>(i)] = rng.lognormal(mu, sigma) * ramp;
      }
      return std::make_shared<sim::TableCostModel>(std::move(costs),
                                                   std::move(sf));
    }
  }
  AID_CHECK(false);
  return nullptr;
}

}  // namespace

i64 AppSpec::total_iterations() const {
  i64 n = 0;
  for (const auto& phase : phases)
    if (const auto* lp = std::get_if<LoopSpec>(&phase))
      n += lp->trip * lp->invocations;
  return n;
}

std::vector<double> loop_sf(const platform::Platform& platform,
                            double compute_fraction, double contention,
                            bool full_team) {
  AID_CHECK(compute_fraction >= 0.0 && compute_fraction <= 1.0);
  AID_CHECK(contention >= 0.0 && contention <= 1.0);
  double c = compute_fraction;
  if (full_team) {
    c *= 1.0 - contention * platform.contention_sensitivity();
    c = std::clamp(c, 0.0, 1.0);
  }
  std::vector<double> sf;
  sf.reserve(platform.clusters().size());
  for (const auto& cluster : platform.clusters())
    sf.push_back(platform::speedup_mix(cluster, c));
  return sf;
}

sim::AppModel build_model(const AppSpec& spec,
                          const platform::Platform& platform, double scale) {
  AID_CHECK_MSG(scale > 0.0, "scale must be positive");
  sim::AppModel model;
  model.name = spec.name;
  model.suite = spec.suite;
  model.serial_sf =
      loop_sf(platform, spec.serial_compute_fraction, 0.0, false);

  // Profiles express costs in Cortex-A7 nanoseconds; rescale to this
  // platform's slowest core. Serial costs also scale with the trip-count
  // scale so the serial/parallel balance is preserved at any scale.
  const double time_scale = 1.0 / platform.reference_throughput();
  for (const auto& phase : spec.phases) {
    if (const auto* sp = std::get_if<SerialSpec>(&phase)) {
      sim::SerialPhase out;
      out.name = sp->name;
      out.cost_small_ns = sp->cost_small_ns * scale * time_scale;
      out.sf = loop_sf(platform, sp->compute_fraction, 0.0, false);
      model.phases.emplace_back(std::move(out));
      continue;
    }
    const auto& lp = std::get<LoopSpec>(phase);
    AID_CHECK_MSG(lp.trip >= 1, "loop phase needs at least one iteration");
    const i64 trip = std::max<i64>(
        1, static_cast<i64>(static_cast<double>(lp.trip) * scale));

    sim::LoopPhase out;
    out.name = lp.name;
    out.trip_count = trip;
    out.invocations = lp.invocations;
    out.serial_between_ns = lp.serial_between_ns * scale * time_scale;
    LoopSpec scaled = lp;
    scaled.cost_small_ns *= time_scale;
    out.cost = make_cost_model(
        scaled, trip,
        loop_sf(platform, lp.compute_fraction, lp.contention, true));
    if (lp.contention > 0.0) {
      out.cost_solo = make_cost_model(
          scaled, trip,
          loop_sf(platform, lp.compute_fraction, lp.contention, false));
    }
    model.phases.emplace_back(std::move(out));
  }
  return model;
}

}  // namespace aid::workloads
