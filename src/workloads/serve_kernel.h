// Wire-runnable instantiations of registry workloads.
//
// Function pointers don't cross a socket: an out-of-process client names a
// workload from the registry and the SERVER builds the computation — a
// canonical-range body over [0, count) plus a deterministic checksum
// harvested after the loop. make_serve_kernel() is the boundary where
// untrusted wire parameters meet the registry, so it validates everything
// explicitly (unknown name, non-servable workload, out-of-range count)
// and reports errors as strings — never an assert, never an abort.
//
// Every serve kernel is built from the schedule-invariant primitives in
// workloads/kernels.h: iteration i writes slot i of a preallocated output
// vector (no cross-iteration state, no atomics needed) and the checksum
// is a fixed-order serial reduction over that vector — so the checksum is
// bit-identical for ANY schedule, thread count, or chunking, which is
// what lets a client verify a COMPLETED frame against a local serial run.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "rt/team.h"

namespace aid::workloads {

/// Upper bound on a wire job's trip count: bounds the per-job state the
/// server allocates on behalf of a remote client (the credit window bounds
/// how many such jobs one connection can have in flight).
inline constexpr i64 kMaxServeCount = i64{1} << 20;

struct ServeKernel {
  i64 count = 0;            ///< canonical trip count (equals the request's)
  rt::RangeBody body;       ///< iteration body; owns its state via captures
  std::function<double()> checksum;  ///< fixed-order reduction; call AFTER
                                     ///< every iteration completed
};

/// Build the named workload's serve kernel for `count` iterations.
/// Returns nullopt and sets `error` (when non-null) for unknown names,
/// registry workloads with no wire-servable kernel, or count outside
/// [1, kMaxServeCount].
[[nodiscard]] std::optional<ServeKernel> make_serve_kernel(
    std::string_view workload, i64 count, std::string* error);

/// The registry names accepted by make_serve_kernel, in registry order.
[[nodiscard]] const std::vector<std::string>& serve_kernel_names();

}  // namespace aid::workloads
