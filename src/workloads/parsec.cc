// PARSEC profiles and kernels (blackscholes, bodytrack, streamcluster).
//
// Profile calibration notes:
//  * blackscholes — single uniform pricing loop, strongly compute-bound in
//    isolation (offline SF ~6 on Platform A) but highly LLC-contention
//    sensitive: with 8 threads its per-thread misses grow 3.6x and the
//    effective SF collapses to ~1.5-2.5 (paper Sec. 5C, Fig. 9c). The
//    `contention` knob encodes exactly this. A heavy serial initialization
//    gives static(BS) its ~2x win over static(SB) (Sec. 5A).
//  * bodytrack — uneven particle-likelihood loops on moderately compute-
//    bound code; the paper reports +29.7% for AID-static over static(BS).
//  * streamcluster — a medium-size uniform loop executed hundreds of times
//    with serial glue in between: the highest AID-hybrid gain in the paper
//    (+56% over static(BS)) and +11% for AID-dynamic over dynamic(BS).
#include <cmath>

#include "workloads/kernels.h"
#include "workloads/workload.h"

namespace aid::workloads {
namespace {

AppSpec blackscholes_spec() {
  AppSpec s;
  s.name = "blackscholes";
  s.suite = "PARSEC";
  s.description = "option pricing; contention collapses the offline SF";
  s.phases.push_back(SerialSpec{"parse-options", 26e6, 0.80});
  LoopSpec loop;
  loop.name = "price";
  loop.trip = 20000;
  loop.invocations = 12;
  // Cheap per-option iterations: one pool removal costs almost as much as
  // pricing an option, so dynamic is poor here (paper Sec. 5A lists
  // blackscholes among CG/IS/bfs).
  loop.cost_small_ns = 750.0;
  loop.compute_fraction = 0.95;  // offline SF ~6.7 on Platform A
  loop.contention = 0.75;        // loaded SF ~1.5 on A, ~2.1 on B (Fig. 9c)
  loop.shape = CostShape::kLognormal;
  loop.shape_param = 0.08;  // slight per-option spread (d1/d2 branches)
  loop.drift = 0.18;  // in-the-money tail options price slower
  loop.seed = 0xB5;
  loop.serial_between_ns = 150e3;
  s.phases.push_back(loop);
  return s;
}

AppSpec bodytrack_spec() {
  AppSpec s;
  s.name = "bodytrack";
  s.suite = "PARSEC";
  s.description = "particle-filter body tracking; uneven likelihoods";
  s.phases.push_back(SerialSpec{"load-frames", 7e6, 0.7});
  const struct {
    const char* name;
    i64 trip;
    double cost;
    double cf;
    double sigma;
  } loops[3] = {
      {"likelihood", 6000, 2600.0, 0.80, 0.30},
      {"resample", 6000, 1100.0, 0.50, 0.10},
      {"pose-update", 3000, 1800.0, 0.62, 0.20},
  };
  u64 seed = 0xB0;
  for (const auto& d : loops) {
    LoopSpec loop;
    loop.name = d.name;
    loop.trip = d.trip;
    loop.invocations = 10;
    loop.cost_small_ns = d.cost;
    loop.compute_fraction = d.cf;
    loop.contention = 0.5;
    loop.shape = CostShape::kLognormal;
    loop.shape_param = d.sigma;
    loop.drift = 0.25;  // per-particle depth ordering
    loop.seed = seed++;
    loop.serial_between_ns = 80e3;
    s.phases.push_back(loop);
  }
  return s;
}

AppSpec streamcluster_spec() {
  AppSpec s;
  s.name = "streamcluster";
  s.suite = "PARSEC";
  s.description = "online clustering; one hot loop invoked ~150 times";
  s.phases.push_back(SerialSpec{"read-stream", 5e6, 0.6});
  LoopSpec loop;
  loop.name = "assign-cost";
  loop.trip = 1500;
  loop.invocations = 100;
  loop.cost_small_ns = 2200.0;
  loop.compute_fraction = 0.93;  // the highest loaded SF in the suite:
  loop.contention = 0.42;        // ~2.1x on Platform A -> the paper's +56%
  // Smooth per-center cost drift within the loop: AID-static's one-shot
  // proportional split leaves the expensive tail on the small cores (the
  // Fig. 4 effect, strongest here) and the hybrid tail heals it — this is
  // what separates AID-hybrid (+56%) from AID-static (+30.7%) in the paper.
  loop.shape = CostShape::kRamp;
  loop.shape_param = 0.45;
  loop.serial_between_ns = 70e3;  // center re-evaluation glue
  s.phases.push_back(loop);
  return s;
}

// ---------------------------------------------------------------- kernels

double blackscholes_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                           double scale) {
  const i64 n = std::max<i64>(64, static_cast<i64>(100000 * scale));
  const auto batch = kernels::OptionBatch::generate(n, 0xB5C);
  std::vector<double> price(static_cast<usize>(n));
  team.parallel_for(0, n, 1, spec, [&](i64 i, const rt::WorkerInfo&) {
    const usize ui = static_cast<usize>(i);
    price[ui] = kernels::black_scholes(batch.spot[ui], batch.strike[ui],
                                       batch.rate[ui], batch.vol[ui],
                                       batch.expiry[ui], batch.call[ui] != 0);
  });
  double checksum = 0.0;
  for (double p : price) checksum += p;
  return checksum;
}

double bodytrack_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                        double scale) {
  const i64 particles = std::max<i64>(32, static_cast<i64>(4000 * scale));
  std::vector<double> weights(static_cast<usize>(particles));
  double checksum = 0.0;
  for (i64 frame = 0; frame < 3; ++frame) {
    team.parallel_for(0, particles, 1, spec,
                      [&](i64 p, const rt::WorkerInfo&) {
                        weights[static_cast<usize>(p)] = kernels::pose_error(
                            p, 24, 0xB0D ^ static_cast<u64>(frame));
                      });
    for (double w : weights) checksum += w;
  }
  return checksum;
}

double streamcluster_kernel(rt::Team& team, const sched::ScheduleSpec& spec,
                            double scale) {
  const i64 n = std::max<i64>(64, static_cast<i64>(20000 * scale));
  const auto points = kernels::PointSet::generate(n, 8, 0x5C1);
  const auto centers = kernels::PointSet::generate(24, 8, 0x5C2);
  const int nthreads = team.nthreads();
  struct alignas(kCacheLineBytes) Partial {
    double cost = 0.0;
  };
  std::vector<Partial> partial(static_cast<usize>(nthreads));
  team.parallel_for(0, n, 1, spec, [&](i64 i, const rt::WorkerInfo& w) {
    partial[static_cast<usize>(w.tid)].cost +=
        kernels::kmedian_assign(points, centers, i);
  });
  double checksum = 0.0;
  for (const auto& p : partial) checksum += p.cost;
  return checksum;
}

}  // namespace

std::vector<Workload> make_parsec_workloads() {
  std::vector<Workload> v;
  v.emplace_back(blackscholes_spec(), blackscholes_kernel);
  v.emplace_back(bodytrack_spec(), bodytrack_kernel);
  v.emplace_back(streamcluster_spec(), streamcluster_kernel);
  return v;
}

}  // namespace aid::workloads
