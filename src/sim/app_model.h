// Application model: what the simulator executes.
//
// A data-parallel OpenMP application, as the schedulers see it, is a
// sequence of phases:
//   * serial phases executed by the master thread (initialization, code
//     between parallel loops — the paper's first scalability limiter,
//     Sec. 2), and
//   * parallel loop phases, possibly invoked many times (time steps), each
//     with its own iteration-cost shape and per-loop speedup factors.
//
// Workload profiles (src/workloads) build these models from the paper's
// measurements; the simulator executes them under any schedule.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sim/cost_model.h"

namespace aid::sim {

struct SerialPhase {
  std::string name;
  double cost_small_ns = 0.0;  ///< execution time on the slowest core type
  /// Per-type speedup of this serial code (sf[0] = 1). Empty: use the
  /// app-level default (AppModel::serial_sf).
  std::vector<double> sf;
};

struct LoopPhase {
  std::string name;
  i64 trip_count = 0;
  int invocations = 1;  ///< consecutive executions of this loop

  /// Iteration costs under full team occupancy (the normal case).
  std::shared_ptr<const CostModel> cost;
  /// Costs observed by a single-threaded run (no shared-cache contention);
  /// nullptr means identical to `cost`. This is how the Fig. 9c gap between
  /// offline-collected and online-estimated SF is modelled.
  std::shared_ptr<const CostModel> cost_solo;

  /// Master-executed serial work between consecutive invocations, on the
  /// slowest core type (time-step glue code).
  double serial_between_ns = 0.0;
};

using AppPhase = std::variant<SerialPhase, LoopPhase>;

struct AppModel {
  std::string name;
  std::string suite;  ///< "NPB", "PARSEC", "Rodinia", "synthetic"
  std::vector<AppPhase> phases;
  /// Default per-type speedup for serial code (empty: nominal platform
  /// asymmetry is applied by the simulator).
  std::vector<double> serial_sf;

  [[nodiscard]] int num_loop_phases() const {
    int n = 0;
    for (const auto& p : phases) n += std::holds_alternative<LoopPhase>(p);
    return n;
  }

  /// Total canonical iterations across all loop phases and invocations.
  [[nodiscard]] i64 total_iterations() const {
    i64 n = 0;
    for (const auto& p : phases)
      if (const auto* lp = std::get_if<LoopPhase>(&p))
        n += lp->trip_count * lp->invocations;
    return n;
  }
};

}  // namespace aid::sim
