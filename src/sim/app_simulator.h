// Whole-application execution under the virtual-time engine.
//
// Applies one ScheduleSpec to every loop phase — exactly the paper's setup,
// where the modified compiler routes all schedule-less loops through the
// runtime and OMP_SCHEDULE picks the method for the whole program (Sec. 4.1:
// ">95% of the loops in the programs we used" have no schedule clause).
//
// Each loop phase gets one scheduler instance, reset() between invocations,
// mirroring libgomp's per-work-share state reuse.
#pragma once

#include <string>
#include <vector>

#include "platform/team_layout.h"
#include "sched/schedule_spec.h"
#include "sim/app_model.h"
#include "sim/loop_simulator.h"
#include "sim/overhead_model.h"
#include "trace/trace.h"

namespace aid::sim {

struct PhaseResult {
  std::string name;
  bool is_loop = false;
  Nanos total_ns = 0;       ///< wall time spent in this phase (all invocations)
  int invocations = 0;      ///< loop phases only
  i64 pool_removals = 0;    ///< loop phases only, summed over invocations
  double estimated_sf = 0.0;  ///< AID: SF estimate from the last invocation
  i64 aid_phases = 0;         ///< AID-dynamic: phases in the last invocation
};

struct AppResult {
  std::string app;
  Nanos total_ns = 0;
  Nanos serial_ns = 0;   ///< time in serial phases (master-executed)
  Nanos parallel_ns = 0; ///< time in loop phases
  i64 pool_removals = 0;
  std::vector<PhaseResult> phases;
};

class AppSimulator {
 public:
  /// `layout` must outlive the simulator. `spec` is applied to every loop.
  AppSimulator(const platform::Platform& platform,
               const platform::TeamLayout& layout, sched::ScheduleSpec spec,
               OverheadModel overhead);

  /// Fig. 9's AID-static(offline-SF) variant: per-loop-phase SF values (in
  /// loop-phase order) that replace the sampling phase. Only honoured when
  /// the schedule kind is kAidStatic.
  void set_offline_sf_per_loop(std::vector<double> sf) {
    offline_sf_per_loop_ = std::move(sf);
  }

  /// Execute the application once; optionally record a trace.
  AppResult run(const AppModel& app, trace::Trace* trace = nullptr);

 private:
  [[nodiscard]] double serial_speedup(const AppModel& app,
                                      const SerialPhase* phase) const;

  const platform::Platform& platform_;
  const platform::TeamLayout& layout_;
  sched::ScheduleSpec spec_;
  LoopSimulator loop_sim_;
  std::vector<double> offline_sf_per_loop_;
};

}  // namespace aid::sim
