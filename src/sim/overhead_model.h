// Runtime-overhead model for the virtual-time engine.
//
// The paper's key negative results come from scheduling overhead: dynamic's
// per-chunk pool removals slow IS down 1.93x on Platform A and CG 2.86x on
// Platform B (Sec. 5A). The simulator charges each runtime interaction to
// the calling worker's virtual clock:
//
//   next_call_ns   — every GOMP_loop_*_next()-style call (user/runtime
//                    boundary crossing, bookkeeping);
//   pool_removal_ns— additionally for calls that touched the shared pool
//                    (the fetch-add cache-line transfer);
//   contention_ns  — additionally per *other* team thread, modelling the
//                    coherence traffic of a hot shared line (paper Sec. 2:
//                    "the overhead of assigning iterations dynamically can
//                    be substantial");
//   fork_join_ns   — charged to every thread once per loop invocation
//                    (parallel region entry + implicit barrier exit).
//
// Values are calibrated per platform: the in-order A7 cluster pays more per
// crossing than the Xeon, but the Xeon's *relative* overhead is higher
// because its big-to-small speedup is only ~2x (paper Sec. 5A observation
// that dynamic is "potentially dangerous" on low-asymmetry AMPs).
#pragma once

#include "common/types.h"

namespace aid::sim {

struct OverheadModel {
  Nanos next_call_ns = 60;
  Nanos pool_removal_ns = 180;
  Nanos contention_ns = 25;
  Nanos fork_join_ns = 1200;

  /// Locality degradation (paper Sec. 2: dynamic's "non-predictive behavior
  /// tends to degrade data locality"): an iteration executed from a small
  /// scattered chunk loses cache reuse. The per-iteration penalty decays
  /// linearly with the chunk size — adjacent iterations in a bigger chunk
  /// amortize the cold misses — and vanishes at `locality_chunk_iters`.
  /// This is the component of dynamic's damage that AID-dynamic can only
  /// partially recover (its blocks are still modest), which is why the
  /// paper's AID-dynamic gains over dynamic average only ~3% on Platform A
  /// (where tiny caches make locality the dominant cost) but ~22% on
  /// Platform B, where the fetch-add bookkeeping — which AID-dynamic fully
  /// amortizes — dominates instead.
  Nanos locality_penalty_ns = 0;
  i64 locality_chunk_iters = 32;

  /// Worker wake-up raggedness at loop entry: each worker starts up to this
  /// many ns late, deterministically hashed from (loop start time, tid) so
  /// the arrival ORDER varies across invocations. This is what makes guided
  /// dangerous on AMPs (a small core that wakes first grabs the huge first
  /// chunk — Sec. 5: guided +44%/+65% vs static/dynamic) and what exposes
  /// dynamic's large-chunk tail imbalance (Fig. 8: "some threads may
  /// suddenly remove all remaining iterations ... leaving other threads
  /// with no work").
  Nanos wakeup_jitter_ns = 0;

  /// Multiplicative execution-time noise per handed-out range (lognormal
  /// sigma at the reference duration), deterministically hashed from
  /// (worker clock, tid). Models OS interference and cache-state variation.
  /// Without it, chunk-count quantization never lands badly and dynamic's
  /// large-chunk sensitivity (Fig. 8) disappears; it also gives AID's
  /// sampling phase the realistic estimation error that AID-hybrid's tail
  /// exists to absorb. The effective sigma decays with range duration
  /// (interference averages out): sigma_eff = sigma / sqrt(1 + T/T_ref)
  /// with T_ref = noise_ref_ns.
  double exec_noise_sigma = 0.0;
  Nanos noise_ref_ns = 20'000;

  [[nodiscard]] Nanos call_cost(bool touched_pool, int nthreads) const {
    Nanos c = next_call_ns;
    if (touched_pool)
      c += pool_removal_ns + contention_ns * (nthreads > 1 ? nthreads - 1 : 0);
    return c;
  }

  /// Reference iteration cost for the cheapness scaling of the locality
  /// penalty: an iteration much heavier than this carries its own working
  /// set (one BT line-solve does not care how its neighbours were
  /// scheduled), while iterations much cheaper than this share cache lines
  /// with their neighbours and bleed when scattered (IS's histogram
  /// updates). Paper Fig. 8 shows exactly this split: chunk size barely
  /// matters for heavy-iteration loops but dynamic-1 devastates IS/CG.
  Nanos locality_ref_iter_ns = 400;

  [[nodiscard]] Nanos locality_cost(i64 range_size,
                                    Nanos range_exec_ns) const {
    if (locality_penalty_ns <= 0 || range_size >= locality_chunk_iters ||
        range_size <= 0)
      return 0;
    const double decay = 1.0 - static_cast<double>(range_size) /
                                   static_cast<double>(locality_chunk_iters);
    const double iter_ns = static_cast<double>(range_exec_ns) /
                           static_cast<double>(range_size);
    const double cheapness =
        static_cast<double>(locality_ref_iter_ns) /
        (static_cast<double>(locality_ref_iter_ns) + iter_ns);
    return static_cast<Nanos>(static_cast<double>(locality_penalty_ns) *
                              decay * cheapness *
                              static_cast<double>(range_size));
  }

  /// Odroid-XU4-like: cheap fetch-add, but tiny caches and a slow LPDDR3
  /// path make scattered execution expensive.
  static OverheadModel platform_a() {
    return {80, 60, 6, 2000, 420, 32, 4000, 0.10, 20000, 400};
  }
  /// Xeon-like: big caches and aggressive prefetch soften locality loss,
  /// but iterations finish ~3.5x sooner, so the (unshrunk) bookkeeping cost
  /// weighs relatively more.
  static OverheadModel platform_b() {
    return {45, 80, 12, 900, 80, 32, 1800, 0.06, 20000, 400};
  }
  /// Free runtime (for isolating algorithmic load balance in tests).
  static OverheadModel zero() { return {0, 0, 0, 0, 0, 32, 0, 0.0, 20000, 400}; }
};

}  // namespace aid::sim
