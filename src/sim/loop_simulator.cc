#include "sim/loop_simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace aid::sim {
namespace {

// Deterministic lognormal execution-noise factor hashed from (clock, tid):
// replays exactly, varies across chunks and invocations. Longer ranges
// average interference out: sigma decays with sqrt of the duration.
double exec_noise(Nanos now_ns, int tid, double sigma_ref, Nanos duration,
                  Nanos ref_duration) {
  if (sigma_ref <= 0.0) return 1.0;
  const double sigma =
      sigma_ref / std::sqrt(1.0 + static_cast<double>(duration) /
                                      static_cast<double>(
                                          ref_duration > 0 ? ref_duration
                                                           : 1));
  u64 state = static_cast<u64>(now_ns) * 0xd6e8feb86659fd93ULL +
              static_cast<u64>(tid) * 0xa0761d6478bd642fULL + 0x9e37;
  const double u1 =
      (static_cast<double>(splitmix64(state) >> 11) + 0.5) * 0x1.0p-53;
  const double u2 =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(6.283185307179586 * u2);
  // Mean-preserving lognormal: E[exp(sigma Z - sigma^2/2)] = 1.
  return std::exp(sigma * z - 0.5 * sigma * sigma);
}

// Deterministic wake-up delay in [0, bound) hashed from (loop start, tid):
// the arrival order differs between invocations but replays exactly. The
// master (tid 0) is exempt — it is already running when it opens the
// work-share, so it reliably grabs the first chunk (which is what makes
// guided's huge first chunk dangerous when the master sits on a small
// core, i.e. under the SB mapping).
Nanos wakeup_delay(Nanos start_ns, int tid, Nanos bound) {
  if (bound <= 0 || tid == 0) return 0;
  u64 state = static_cast<u64>(start_ns) * 0x9e3779b97f4a7c15ULL +
              static_cast<u64>(tid) * 0xc2b2ae3d27d4eb4fULL;
  return static_cast<Nanos>(splitmix64(state) % static_cast<u64>(bound));
}

}  // namespace

LoopSimulator::LoopSimulator(const platform::TeamLayout& layout,
                             OverheadModel overhead)
    : layout_(layout), overhead_(overhead) {}

LoopResult LoopSimulator::run(sched::LoopScheduler& sched, i64 count,
                              const CostModel& cost, Nanos start_ns,
                              trace::Trace* trace) {
  const int n = layout_.nthreads();
  const usize un = static_cast<usize>(n);

  std::vector<WorkerClock> clocks(un);
  std::vector<sched::ThreadContext> ctx(un);
  std::vector<bool> done(un, false);
  LoopResult res;
  res.finish_ns.assign(un, 0);
  res.busy_ns.assign(un, 0);
  res.overhead_ns.assign(un, 0);
  res.iterations.assign(un, 0);

  for (int t = 0; t < n; ++t) {
    const Nanos entry = overhead_.fork_join_ns +
                        wakeup_delay(start_ns, t, overhead_.wakeup_jitter_ns);
    clocks[static_cast<usize>(t)].t = start_ns + entry;
    res.overhead_ns[static_cast<usize>(t)] = entry;
    if (trace != nullptr && entry > 0)
      trace->record(t, trace::State::kScheduling, start_ns, start_ns + entry);
    ctx[static_cast<usize>(t)] = {
        .tid = t,
        .core_type = layout_.core_type_of(t),
        .speed = layout_.speed_of(t),
        // 0 for the simulator's single-pool model; set properly in case a
        // caller hands a shard-armed scheduler to the simulator.
        .shard = sched.home_shard_of(t),
        .time = &clocks[static_cast<usize>(t)],
    };
  }

  // Per-tid last-seen removal counts: the scheduler call below can only
  // add removals to the invoked tid's slot, so polling that one slot
  // (O(1)) detects pool touches without summing every per-thread counter.
  std::vector<i64> removals_seen(static_cast<usize>(n));
  for (int t = 0; t < n; ++t)
    removals_seen[static_cast<usize>(t)] = sched.pool_removals_of(t);
  int remaining_workers = n;

  while (remaining_workers > 0) {
    // Wake the worker with the smallest virtual clock (ties: lowest tid).
    int tid = -1;
    for (int t = 0; t < n; ++t) {
      if (done[static_cast<usize>(t)]) continue;
      if (tid < 0 ||
          clocks[static_cast<usize>(t)].t < clocks[static_cast<usize>(tid)].t)
        tid = t;
    }
    AID_DCHECK(tid >= 0);
    const usize ut = static_cast<usize>(tid);
    WorkerClock& clk = clocks[ut];

    const Nanos call_begin = clk.t;
    sched::IterRange r;
    const bool got = sched.next(ctx[ut], r);
    const i64 removals_now = sched.pool_removals_of(tid);
    const bool touched_pool = removals_now != removals_seen[ut];
    removals_seen[ut] = removals_now;

    const Nanos call_cost = overhead_.call_cost(touched_pool, n);
    clk.t += call_cost;
    res.overhead_ns[ut] += call_cost;
    if (trace != nullptr && call_cost > 0)
      trace->record(tid, trace::State::kScheduling, call_begin,
                    call_begin + call_cost);

    if (!got) {
      done[ut] = true;
      res.finish_ns[ut] = clk.t;
      --remaining_workers;
      continue;
    }

    AID_DCHECK(!r.empty());
    const Nanos exec_begin = clk.t;
    const Nanos base_exec = cost.range_cost(r, ctx[ut].core_type);
    const Nanos pure_exec = static_cast<Nanos>(
        static_cast<double>(base_exec) *
        exec_noise(clk.t, tid, overhead_.exec_noise_sigma, base_exec,
                   overhead_.noise_ref_ns));
    const Nanos exec =
        pure_exec + overhead_.locality_cost(r.size(), pure_exec);
    AID_DCHECK(exec >= 0);
    clk.t += exec;
    res.busy_ns[ut] += exec;
    res.iterations[ut] += r.size();
    if (trace != nullptr)
      trace->record(tid, trace::State::kRunning, exec_begin, exec_begin + exec);
  }

  res.completion_ns =
      *std::max_element(res.finish_ns.begin(), res.finish_ns.end());
  if (trace != nullptr) {
    // Workers that finished early wait at the implicit barrier.
    for (int t = 0; t < n; ++t)
      if (res.finish_ns[static_cast<usize>(t)] < res.completion_ns)
        trace->record(t, trace::State::kSync,
                      res.finish_ns[static_cast<usize>(t)],
                      res.completion_ns);
  }

  const auto st = sched.stats();
  res.pool_removals = st.pool_removals;
  res.estimated_sf = st.estimated_sf;
  res.aid_phases = st.aid_phases;

  i64 executed = res.total_iterations();
  AID_CHECK_MSG(executed == count,
                "simulator lost or duplicated iterations — scheduler bug");
  return res;
}

}  // namespace aid::sim
