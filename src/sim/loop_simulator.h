// Deterministic discrete-event execution of one parallel loop.
//
// This is the substitution for the paper's AMP hardware (see DESIGN.md §3):
// the *actual* scheduler implementations from src/sched run unmodified, but
// each worker is a simulated entity with its own virtual clock. The engine
// repeatedly wakes the worker with the smallest clock (ties by thread id),
// lets it perform one next() call — charged per the OverheadModel — and, if
// it received iterations, advances its clock by the modelled execution time
// of those iterations on the worker's core type.
//
// Smallest-clock-first dispatch yields a valid linearization of the real
// concurrent execution: every pool operation happens at a virtual instant no
// earlier than any operation it observes. Because the engine is single-
// threaded, results are bit-for-bit reproducible.
#pragma once

#include <vector>

#include "common/time_source.h"
#include "platform/team_layout.h"
#include "sched/loop_scheduler.h"
#include "sim/cost_model.h"
#include "sim/overhead_model.h"
#include "trace/trace.h"

namespace aid::sim {

struct LoopResult {
  Nanos completion_ns = 0;  ///< barrier time: max worker finish time
  std::vector<Nanos> finish_ns;      ///< per-thread last-activity time
  std::vector<Nanos> busy_ns;        ///< per-thread iteration-execution time
  std::vector<Nanos> overhead_ns;    ///< per-thread runtime-interaction time
  std::vector<i64> iterations;       ///< per-thread executed iteration count
  i64 pool_removals = 0;
  double estimated_sf = 0.0;  ///< AID's sampled SF (0 for non-AID)
  i64 aid_phases = 0;

  [[nodiscard]] i64 total_iterations() const {
    i64 n = 0;
    for (i64 i : iterations) n += i;
    return n;
  }
};

class LoopSimulator {
 public:
  LoopSimulator(const platform::TeamLayout& layout, OverheadModel overhead);

  /// Execute one loop of `count` iterations through `sched`. The scheduler
  /// must already be armed for `count` iterations (freshly built or reset).
  /// `start_ns` is the virtual time at which the team enters the loop; the
  /// optional trace receives Running/Scheduling/Sync intervals.
  LoopResult run(sched::LoopScheduler& sched, i64 count,
                 const CostModel& cost, Nanos start_ns = 0,
                 trace::Trace* trace = nullptr);

 private:
  // TimeSource view over a worker's virtual clock.
  class WorkerClock final : public TimeSource {
   public:
    [[nodiscard]] Nanos now() const override { return t; }
    Nanos t = 0;
  };

  const platform::TeamLayout& layout_;
  OverheadModel overhead_;
};

}  // namespace aid::sim
