#include "sim/app_simulator.h"

#include "common/check.h"
#include "sched/loop_scheduler.h"

namespace aid::sim {

AppSimulator::AppSimulator(const platform::Platform& platform,
                           const platform::TeamLayout& layout,
                           sched::ScheduleSpec spec, OverheadModel overhead)
    : platform_(platform),
      layout_(layout),
      spec_(spec),
      loop_sim_(layout, overhead) {}

double AppSimulator::serial_speedup(const AppModel& app,
                                    const SerialPhase* phase) const {
  const int master_type = layout_.core_type_of(0);
  const std::vector<double>& sf =
      (phase != nullptr && !phase->sf.empty()) ? phase->sf : app.serial_sf;
  if (!sf.empty()) {
    const usize t = static_cast<usize>(master_type) < sf.size()
                        ? static_cast<usize>(master_type)
                        : sf.size() - 1;
    return sf[t] > 0.0 ? sf[t] : 1.0;
  }
  return platform_.speed_of_type(master_type);
}

AppResult AppSimulator::run(const AppModel& app, trace::Trace* trace) {
  AppResult res;
  res.app = app.name;
  Nanos t = 0;
  usize loop_index = 0;
  const bool solo = layout_.nthreads() == 1;

  // Advance virtual time through master-executed serial code; worker
  // threads sit at the fork/join barrier meanwhile.
  const auto run_serial = [&](double cost_small_ns, const SerialPhase* phase) {
    const double sf = serial_speedup(app, phase);
    const Nanos dt = static_cast<Nanos>(cost_small_ns / sf);
    if (trace != nullptr && dt > 0) {
      trace->record(0, trace::State::kRunning, t, t + dt);
      for (int tid = 1; tid < layout_.nthreads(); ++tid)
        trace->record(tid, trace::State::kSync, t, t + dt);
    }
    t += dt;
    res.serial_ns += dt;
    return dt;
  };

  for (const auto& phase : app.phases) {
    if (const auto* sp = std::get_if<SerialPhase>(&phase)) {
      const Nanos dt = run_serial(sp->cost_small_ns, sp);
      res.phases.push_back({sp->name, /*is_loop=*/false, dt, 0, 0, 0.0, 0});
      continue;
    }
    const auto& lp = std::get<LoopPhase>(phase);
    AID_CHECK_MSG(lp.cost != nullptr, "loop phase without a cost model");
    const CostModel& cost =
        (solo && lp.cost_solo != nullptr) ? *lp.cost_solo : *lp.cost;

    sched::ScheduleSpec loop_spec = spec_;
    if (!offline_sf_per_loop_.empty() &&
        spec_.kind == sched::ScheduleKind::kAidStatic) {
      AID_CHECK_MSG(loop_index < offline_sf_per_loop_.size(),
                    "offline SF list shorter than the app's loop count");
      loop_spec.offline_sf = offline_sf_per_loop_[loop_index];
    }
    ++loop_index;

    auto sched = sched::make_scheduler(loop_spec, lp.trip_count, layout_);
    PhaseResult pr;
    pr.name = lp.name;
    pr.is_loop = true;
    pr.invocations = lp.invocations;

    for (int inv = 0; inv < lp.invocations; ++inv) {
      if (inv > 0) {
        if (lp.serial_between_ns > 0.0)
          run_serial(lp.serial_between_ns, nullptr);
        sched->reset(lp.trip_count);
      }
      const Nanos loop_start = t;
      const LoopResult lr = loop_sim_.run(*sched, lp.trip_count, cost, t, trace);
      t = lr.completion_ns;
      pr.total_ns += t - loop_start;
      pr.pool_removals += lr.pool_removals;
      pr.estimated_sf = lr.estimated_sf;
      pr.aid_phases = lr.aid_phases;
    }
    res.parallel_ns += pr.total_ns;
    res.pool_removals += pr.pool_removals;
    res.phases.push_back(std::move(pr));
  }

  res.total_ns = t;
  return res;
}

}  // namespace aid::sim
