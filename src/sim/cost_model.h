// Iteration-cost models for the virtual-time engine.
//
// A CostModel answers: "how long does canonical iteration i take on a core
// of type t?" — the only property of a workload loop the schedulers can
// observe. Costs are expressed on the slowest core type and divided by the
// loop's per-type speedup factor SF_t (the paper's central quantity, Fig. 2).
//
// range_cost() exists so the engine charges a whole removed chunk in O(1)
// (closed forms for uniform/affine shapes, prefix sums for arbitrary ones):
// the simulation then scales with scheduler interactions, not iterations.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sched/iteration_space.h"

namespace aid::sim {

class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of one iteration on a core of the given type, in virtual ns.
  [[nodiscard]] virtual Nanos iter_cost(i64 iter, int core_type) const = 0;

  /// Cost of a contiguous range; default accumulates iter_cost.
  [[nodiscard]] virtual Nanos range_cost(sched::IterRange r,
                                         int core_type) const {
    Nanos total = 0;
    for (i64 i = r.begin; i < r.end; ++i) total += iter_cost(i, core_type);
    return total;
  }
};

namespace detail {
/// Per-type divisor lookup with SF[0] == 1 convention.
inline double sf_of(const std::vector<double>& sf, int core_type) {
  AID_DCHECK(core_type >= 0);
  if (sf.empty()) return 1.0;
  const usize t = static_cast<usize>(core_type) < sf.size()
                      ? static_cast<usize>(core_type)
                      : sf.size() - 1;
  return sf[t] > 0.0 ? sf[t] : 1.0;
}
}  // namespace detail

/// Every iteration costs the same on a given core type.
class UniformCostModel final : public CostModel {
 public:
  /// `cost_small_ns`: per-iteration cost on the slowest type; `sf[t]`: the
  /// loop's speedup factor of type t relative to type 0 (sf[0] must be 1).
  UniformCostModel(double cost_small_ns, std::vector<double> sf)
      : cost_(cost_small_ns), sf_(std::move(sf)) {
    AID_CHECK(cost_small_ns >= 0.0);
  }

  [[nodiscard]] Nanos iter_cost(i64, int core_type) const override {
    return static_cast<Nanos>(cost_ / detail::sf_of(sf_, core_type));
  }
  [[nodiscard]] Nanos range_cost(sched::IterRange r,
                                 int core_type) const override {
    const double per = cost_ / detail::sf_of(sf_, core_type);
    return static_cast<Nanos>(per * static_cast<double>(r.size()));
  }

 private:
  double cost_;
  std::vector<double> sf_;
};

/// cost_small(i) = base + slope * i  (the particlefilter-style ramp where
/// final iterations are heavier, paper Sec. 5A). slope may be negative as
/// long as every iteration stays positive.
class AffineCostModel final : public CostModel {
 public:
  AffineCostModel(double base_ns, double slope_ns, i64 count,
                  std::vector<double> sf)
      : base_(base_ns), slope_(slope_ns), sf_(std::move(sf)) {
    AID_CHECK(count >= 0);
    AID_CHECK_MSG(base_ns > 0.0 && base_ns + slope_ns * static_cast<double>(
                                                count > 0 ? count - 1 : 0) >
                                       0.0,
                  "affine cost must stay positive over the loop");
  }

  [[nodiscard]] Nanos iter_cost(i64 iter, int core_type) const override {
    const double c = base_ + slope_ * static_cast<double>(iter);
    return static_cast<Nanos>(c / detail::sf_of(sf_, core_type));
  }
  [[nodiscard]] Nanos range_cost(sched::IterRange r,
                                 int core_type) const override {
    // Sum of an arithmetic series over [begin, end).
    const double n = static_cast<double>(r.size());
    const double first = base_ + slope_ * static_cast<double>(r.begin);
    const double last = base_ + slope_ * static_cast<double>(r.end - 1);
    return static_cast<Nanos>(0.5 * n * (first + last) /
                              detail::sf_of(sf_, core_type));
  }

 private:
  double base_;
  double slope_;
  std::vector<double> sf_;
};

/// Arbitrary per-iteration costs with O(1) range queries via prefix sums
/// (irregular workloads: FT transpose strides, leukocyte cell detection...).
class TableCostModel final : public CostModel {
 public:
  TableCostModel(std::vector<double> cost_small_ns, std::vector<double> sf)
      : sf_(std::move(sf)) {
    prefix_.resize(cost_small_ns.size() + 1, 0.0);
    for (usize i = 0; i < cost_small_ns.size(); ++i) {
      AID_CHECK(cost_small_ns[i] >= 0.0);
      prefix_[i + 1] = prefix_[i] + cost_small_ns[i];
    }
  }

  [[nodiscard]] i64 count() const {
    return static_cast<i64>(prefix_.size()) - 1;
  }

  [[nodiscard]] Nanos iter_cost(i64 iter, int core_type) const override {
    AID_DCHECK(iter >= 0 && iter < count());
    const double c = prefix_[static_cast<usize>(iter) + 1] -
                     prefix_[static_cast<usize>(iter)];
    return static_cast<Nanos>(c / detail::sf_of(sf_, core_type));
  }
  [[nodiscard]] Nanos range_cost(sched::IterRange r,
                                 int core_type) const override {
    AID_DCHECK(r.begin >= 0 && r.end <= count());
    const double c = prefix_[static_cast<usize>(r.end)] -
                     prefix_[static_cast<usize>(r.begin)];
    return static_cast<Nanos>(c / detail::sf_of(sf_, core_type));
  }

 private:
  std::vector<double> prefix_;
  std::vector<double> sf_;
};

/// Adapter for tests: wrap an arbitrary callable (O(n) range cost).
class FnCostModel final : public CostModel {
 public:
  using Fn = std::function<Nanos(i64 iter, int core_type)>;
  explicit FnCostModel(Fn fn) : fn_(std::move(fn)) {}

  [[nodiscard]] Nanos iter_cost(i64 iter, int core_type) const override {
    return fn_(iter, core_type);
  }

 private:
  Fn fn_;
};

}  // namespace aid::sim
