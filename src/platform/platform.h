// Asymmetric multicore platform model.
//
// A Platform is an ordered list of core clusters (core types). Following the
// paper's convention (Sec. 5: "big cores have CPU numbers ranging between 4
// and 7; CPUs 0-3 are small cores"), clusters are stored slowest-first and
// core ids are assigned cluster by cluster, so small cores always occupy the
// low core numbers.
//
// Cluster `speed` is the *nominal* per-core throughput relative to the
// slowest cluster (= 1.0). Per-loop speedup factors (SF) in workload profiles
// override it — the paper's central observation (Fig. 2) is precisely that SF
// is loop-specific, not a platform constant.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace aid::platform {

/// One homogeneous group of cores (e.g. the Cortex-A15 cluster).
struct CoreCluster {
  std::string name;       ///< e.g. "Cortex-A15"
  int count = 0;          ///< number of cores in the cluster
  double speed = 1.0;     ///< nominal throughput relative to slowest cluster
  double freq_ghz = 0.0;  ///< informational (Table 1)
  std::string microarch;  ///< informational: "out-of-order", "in-order", ...

  /// Two-component speed model: compute-bound code speeds up by
  /// `compute_speed`, memory-bound code only by `mem_speed` (uncore/DRAM do
  /// not scale with core capability). A loop with compute fraction c then
  /// has SF = 1 / (c/compute_speed + (1-c)/mem_speed) — this is why SF is
  /// loop-specific and platform-specific (paper Fig. 2): the out-of-order
  /// A15 gives compute-bound loops up to ~9x, while the duty-cycle-throttled
  /// Xeon compresses every loop into ~1.5–2.25x. Values <= 0 default to
  /// `speed` (pure uniform scaling).
  double compute_speed = 0.0;
  double mem_speed = 0.0;

  [[nodiscard]] double effective_compute_speed() const {
    return compute_speed > 0.0 ? compute_speed : speed;
  }
  [[nodiscard]] double effective_mem_speed() const {
    return mem_speed > 0.0 ? mem_speed : speed;
  }
};

/// Speedup of a cluster for a loop with the given compute fraction in [0,1]
/// (harmonic mix of the two speed components).
[[nodiscard]] double speedup_mix(const CoreCluster& cluster,
                                 double compute_fraction);

class Platform {
 public:
  /// Clusters must be ordered slowest-first with cluster[0].speed == 1.0 and
  /// speeds non-decreasing; every cluster must have count >= 1.
  Platform(std::string name, std::vector<CoreCluster> clusters);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<CoreCluster>& clusters() const {
    return clusters_;
  }

  [[nodiscard]] int num_cores() const { return num_cores_; }
  [[nodiscard]] int num_core_types() const {
    return static_cast<int>(clusters_.size());
  }

  /// Core type (cluster index; 0 = slowest) of a core id.
  [[nodiscard]] int core_type_of(int core_id) const;

  /// First core id belonging to the given cluster.
  [[nodiscard]] int first_core_of_type(int type) const;

  [[nodiscard]] double speed_of_type(int type) const;
  [[nodiscard]] double speed_of_core(int core_id) const {
    return speed_of_type(core_type_of(core_id));
  }

  /// Count of cores of the given type.
  [[nodiscard]] int cores_of_type(int type) const;

  /// Nominal big-to-small speed ratio: fastest cluster speed / slowest.
  [[nodiscard]] double nominal_asymmetry() const;

  [[nodiscard]] bool is_symmetric() const { return clusters_.size() == 1; }

  /// A derived platform keeping `count_per_type[t]` cores of each type
  /// (e.g. the paper's 2B-2S configuration of the Odroid). Types whose count
  /// drops to zero are removed; speeds are re-normalized to the new slowest.
  [[nodiscard]] Platform subset(const std::vector<int>& count_per_type,
                                std::string new_name) const;

  /// Human-readable summary (Table 1-style), one line per cluster.
  [[nodiscard]] std::string describe() const;

  /// How strongly shared-resource pressure under full team occupancy (LLC
  /// thrashing, LPDDR3 bandwidth, big-cluster thermal DVFS) erodes a loop's
  /// compute fraction (see workloads/profile.h). The Odroid is highly
  /// sensitive — paper Sec. 5C: blackscholes' per-thread misses grow 3.6x
  /// with 8 threads and its effective SF collapses from ~6x to ~1.5-2.5x;
  /// the Xeon with its 20MB LLC much less so.
  [[nodiscard]] double contention_sensitivity() const {
    return contention_sensitivity_;
  }
  void set_contention_sensitivity(double s) { contention_sensitivity_ = s; }

  /// Absolute single-thread throughput of the slowest core type, relative
  /// to Platform A's Cortex-A7 (= 1.0). Workload profiles express iteration
  /// costs in Cortex-A7 nanoseconds; on a platform whose *small* cores are
  /// already fast (the throttled Xeon is still a wide OoO core), the same
  /// iteration completes sooner while the runtime's bookkeeping cost does
  /// not shrink with it — which is exactly why the paper finds dynamic's
  /// overhead more dangerous on Platform B (Sec. 5A: CG slows down 2.86x).
  [[nodiscard]] double reference_throughput() const {
    return reference_throughput_;
  }
  void set_reference_throughput(double t) { reference_throughput_ = t; }

 private:
  std::string name_;
  std::vector<CoreCluster> clusters_;
  std::vector<int> first_core_;  // first core id per cluster, plus sentinel
  int num_cores_ = 0;
  double contention_sensitivity_ = 0.3;
  double reference_throughput_ = 1.0;
};

/// The paper's Platform A: Odroid-XU4, ARM big.LITTLE (4x Cortex-A7 small +
/// 4x Cortex-A15 big). The nominal speed ratio reflects clock (1.5 vs 2.0
/// GHz) plus in-order/out-of-order gap; per-loop SF on this board spans
/// 1x..8.9x (paper Sec. 5), which workload profiles encode per loop.
[[nodiscard]] Platform odroid_xu4();

/// The paper's Platform B: Xeon E5-2620 v4 with 4 cores duty-cycle+frequency
/// throttled to emulate small cores (1.2 GHz @ 87.5% duty vs 2.1 GHz full).
/// Nominal ratio = (2.1 / (1.2 * 0.875)) = 2.0; observed per-loop SF spans
/// 1.7x..2.3x.
[[nodiscard]] Platform xeon_emulated_amp();

/// Symmetric n-core platform (baseline configurations like Fig. 1b's 4S).
[[nodiscard]] Platform symmetric(int cores, std::string name = "symmetric",
                                 double freq_ghz = 2.0);

/// Generic two-type AMP with the given counts and big/small speed ratio.
[[nodiscard]] Platform generic_amp(int small_cores, int big_cores,
                                   double big_speed,
                                   std::string name = "generic-amp");

/// Parse a platform description (the AID_PLATFORM environment variable):
///   "odroid-xu4" | "platform-a"      — the paper's Platform A
///   "xeon-amp"   | "platform-b"      — the paper's Platform B
///   "symmetric:N"                    — N identical cores
///   "generic:NS,NB,SPEED"            — NS small + NB big cores, big SPEEDx
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<Platform> parse_platform(std::string_view text);

}  // namespace aid::platform
