#include "platform/platform.h"

#include <cctype>
#include <sstream>

#include "common/check.h"
#include "common/env.h"

namespace aid::platform {

Platform::Platform(std::string name, std::vector<CoreCluster> clusters)
    : name_(std::move(name)), clusters_(std::move(clusters)) {
  AID_CHECK_MSG(!clusters_.empty(), "platform needs at least one cluster");
  AID_CHECK_MSG(clusters_.front().speed == 1.0,
                "slowest cluster must have speed 1.0");
  double prev = 0.0;
  first_core_.reserve(clusters_.size() + 1);
  for (const auto& c : clusters_) {
    AID_CHECK_MSG(c.count >= 1, "empty cluster");
    AID_CHECK_MSG(c.speed >= prev, "clusters must be ordered slowest-first");
    prev = c.speed;
    first_core_.push_back(num_cores_);
    num_cores_ += c.count;
  }
  first_core_.push_back(num_cores_);
}

int Platform::core_type_of(int core_id) const {
  AID_CHECK(core_id >= 0 && core_id < num_cores_);
  for (usize t = 0; t + 1 < first_core_.size(); ++t)
    if (core_id < first_core_[t + 1]) return static_cast<int>(t);
  AID_CHECK(false);
  return -1;
}

int Platform::first_core_of_type(int type) const {
  AID_CHECK(type >= 0 && type < num_core_types());
  return first_core_[static_cast<usize>(type)];
}

double Platform::speed_of_type(int type) const {
  AID_CHECK(type >= 0 && type < num_core_types());
  return clusters_[static_cast<usize>(type)].speed;
}

int Platform::cores_of_type(int type) const {
  AID_CHECK(type >= 0 && type < num_core_types());
  return clusters_[static_cast<usize>(type)].count;
}

double Platform::nominal_asymmetry() const {
  return clusters_.back().speed / clusters_.front().speed;
}

Platform Platform::subset(const std::vector<int>& count_per_type,
                          std::string new_name) const {
  AID_CHECK_MSG(count_per_type.size() == clusters_.size(),
                "subset needs one count per core type");
  std::vector<CoreCluster> kept;
  for (usize t = 0; t < clusters_.size(); ++t) {
    // Same diagnostic style as TeamLayout's explicit allotment: say which
    // per-type count is infeasible and against what bound.
    AID_CHECK_MSG(count_per_type[t] >= 0 && count_per_type[t] <= clusters_[t].count,
                  ("subset: count " + std::to_string(count_per_type[t]) +
                   " for type " + std::to_string(t) + " (" + clusters_[t].name +
                   ") outside [0, " + std::to_string(clusters_[t].count) + "]")
                      .c_str());
    if (count_per_type[t] == 0) continue;
    CoreCluster c = clusters_[t];
    c.count = count_per_type[t];
    kept.push_back(std::move(c));
  }
  AID_CHECK_MSG(!kept.empty(), "subset removed every core");
  const double base = kept.front().speed;
  for (auto& c : kept) c.speed /= base;
  Platform sub(std::move(new_name), std::move(kept));
  // Shared-resource characteristics are properties of the chip, not of the
  // partition (the LLC/DRAM/thermal story does not change because the OS
  // granted fewer cores).
  sub.set_contention_sensitivity(contention_sensitivity_);
  sub.set_reference_throughput(reference_throughput_);
  return sub;
}

std::string Platform::describe() const {
  std::ostringstream os;
  os << name_ << " (" << num_cores_ << " cores, " << num_core_types()
     << " core type" << (num_core_types() > 1 ? "s" : "") << ")\n";
  for (usize t = 0; t < clusters_.size(); ++t) {
    const auto& c = clusters_[t];
    os << "  type " << t << ": " << c.count << "x " << c.name << " @ "
       << c.freq_ghz << " GHz, relative speed " << c.speed;
    if (!c.microarch.empty()) os << " (" << c.microarch << ")";
    os << ", core ids [" << first_core_[t] << ".." << first_core_[t + 1] - 1
       << "]\n";
  }
  return os.str();
}

double speedup_mix(const CoreCluster& cluster, double compute_fraction) {
  AID_CHECK_MSG(compute_fraction >= 0.0 && compute_fraction <= 1.0,
                "compute fraction must be in [0, 1]");
  const double cs = cluster.effective_compute_speed();
  const double ms = cluster.effective_mem_speed();
  return 1.0 / (compute_fraction / cs + (1.0 - compute_fraction) / ms);
}

Platform odroid_xu4() {
  // Nominal speed 2.4x: 2.0/1.5 GHz clock ratio x ~1.8 average IPC gap.
  // Compute-bound code sees up to 9x (A15 3-wide OoO + NEON vs 2-wide
  // in-order A7 — the paper observes per-loop SF up to 8.9x, Sec. 5A);
  // memory-bound code barely benefits (shared LPDDR3, SF -> ~1.15).
  Platform p("Platform A (Odroid-XU4, ARM big.LITTLE)",
             {{"Cortex-A7", 4, 1.0, 1.5, "in-order", 1.0, 1.0},
              {"Cortex-A15", 4, 2.4, 2.0, "out-of-order", 9.0, 1.15}});
  p.set_contention_sensitivity(1.0);  // small 2MB per-cluster LLC
  return p;
}

Platform xeon_emulated_amp() {
  // 2.1 GHz full duty vs 1.2 GHz at 87.5% duty: 2.1/(1.2*0.875) = 2.0.
  // Frequency/duty scaling compresses the per-loop SF spread: compute-bound
  // code scales with the clock (up to ~2.25x with turbo-less boost effects),
  // memory-bound code still gains ~1.5x because DRAM latency is unchanged
  // while the duty cycle throttles everything — matching the paper's
  // observed SF range of 1.7x..2.3x on this platform (Fig. 2b/2d).
  Platform p("Platform B (Xeon E5-2620 v4, duty-cycle emulated AMP)",
             {{"Xeon-slow", 4, 1.0, 1.2, "throttled, 87.5% duty", 1.0, 1.0},
              {"Xeon-fast", 4, 2.0, 2.1, "full duty", 2.25, 1.5}});
  p.set_contention_sensitivity(0.15);  // large 20MB shared LLC
  // A throttled Broadwell core still retires far more work per ns than an
  // in-order Cortex-A7: same loop, ~3.5x shorter iterations.
  p.set_reference_throughput(3.5);
  return p;
}

Platform symmetric(int cores, std::string name, double freq_ghz) {
  AID_CHECK(cores >= 1);
  return Platform(std::move(name),
                  {{"core", cores, 1.0, freq_ghz, "symmetric"}});
}

Platform generic_amp(int small_cores, int big_cores, double big_speed,
                     std::string name) {
  AID_CHECK(small_cores >= 1 && big_cores >= 1);
  AID_CHECK_MSG(big_speed >= 1.0, "big cores must not be slower than small");
  return Platform(std::move(name), {{"small", small_cores, 1.0, 1.0, ""},
                                    {"big", big_cores, big_speed, 2.0, ""}});
}

std::optional<Platform> parse_platform(std::string_view text) {
  std::string head;
  std::string args;
  const usize colon = text.find(':');
  if (colon == std::string_view::npos) {
    head = std::string(env::trim(text));
  } else {
    head = std::string(env::trim(text.substr(0, colon)));
    args = std::string(env::trim(text.substr(colon + 1)));
  }
  for (char& c : head)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

  if (head == "odroid-xu4" || head == "platform-a") return odroid_xu4();
  if (head == "xeon-amp" || head == "platform-b") return xeon_emulated_amp();
  if (head == "symmetric") {
    const auto n = env::parse_int(args);
    if (!n || *n < 1 || *n > 4096) return std::nullopt;
    return symmetric(static_cast<int>(*n));
  }
  if (head == "generic") {
    const auto parts = env::split_list(args, ',');
    if (parts.size() != 3) return std::nullopt;
    const auto ns = env::parse_int(parts[0]);
    const auto nb = env::parse_int(parts[1]);
    const auto speed = env::parse_double(parts[2]);
    if (!ns || !nb || !speed || *ns < 1 || *nb < 1 || *speed < 1.0)
      return std::nullopt;
    return generic_amp(static_cast<int>(*ns), static_cast<int>(*nb), *speed);
  }
  return std::nullopt;
}

}  // namespace aid::platform
