#include "platform/team_layout.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/check.h"

namespace aid::platform {

const char* to_string(Mapping m) {
  return m == Mapping::kSmallFirst ? "SB" : "BS";
}

TeamLayout::TeamLayout(const Platform& platform, int nthreads, Mapping mapping)
    : mapping_(mapping) {
  AID_CHECK_MSG(nthreads >= 1, "team needs at least one thread");
  AID_CHECK_MSG(nthreads <= platform.num_cores(),
                "oversubscription is outside the paper's scope (Sec. 4.2)");
  core_of_.resize(static_cast<usize>(nthreads));
  core_type_of_.resize(static_cast<usize>(nthreads));
  speed_of_.resize(static_cast<usize>(nthreads));
  threads_of_type_.assign(static_cast<usize>(platform.num_core_types()), 0);
  for (const auto& c : platform.clusters()) type_names_.push_back(c.name);

  for (int tid = 0; tid < nthreads; ++tid) {
    const int core = mapping == Mapping::kSmallFirst
                         ? tid
                         : platform.num_cores() - 1 - tid;
    const int type = platform.core_type_of(core);
    core_of_[static_cast<usize>(tid)] = core;
    core_type_of_[static_cast<usize>(tid)] = type;
    speed_of_[static_cast<usize>(tid)] = platform.speed_of_type(type);
    ++threads_of_type_[static_cast<usize>(type)];
  }
}

TeamLayout::TeamLayout(const Platform& platform, int nthreads,
                       int threads_on_big)
    : mapping_(Mapping::kBigFirst) {
  AID_CHECK_MSG(nthreads >= 1, "team needs at least one thread");
  AID_CHECK_MSG(nthreads <= platform.num_cores(), "oversubscription");
  const int big_type = platform.num_core_types() - 1;
  AID_CHECK_MSG(threads_on_big >= 0 &&
                    threads_on_big <= platform.cores_of_type(big_type),
                "allotment exceeds the big cluster");
  AID_CHECK_MSG(nthreads - threads_on_big <=
                    platform.num_cores() - platform.cores_of_type(big_type),
                "leftover threads do not fit outside the big cluster");

  core_of_.resize(static_cast<usize>(nthreads));
  core_type_of_.resize(static_cast<usize>(nthreads));
  speed_of_.resize(static_cast<usize>(nthreads));
  threads_of_type_.assign(static_cast<usize>(platform.num_core_types()), 0);
  for (const auto& c : platform.clusters()) type_names_.push_back(c.name);

  for (int tid = 0; tid < nthreads; ++tid) {
    // Sec. 4.3 convention: low tids descend from the top core id (big);
    // the rest ascend from core 0 (small).
    const int core = tid < threads_on_big ? platform.num_cores() - 1 - tid
                                          : tid - threads_on_big;
    const int type = platform.core_type_of(core);
    core_of_[static_cast<usize>(tid)] = core;
    core_type_of_[static_cast<usize>(tid)] = type;
    speed_of_[static_cast<usize>(tid)] = platform.speed_of_type(type);
    ++threads_of_type_[static_cast<usize>(type)];
  }
}

int TeamLayout::core_of(int tid) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  return core_of_[static_cast<usize>(tid)];
}

int TeamLayout::core_type_of(int tid) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  return core_type_of_[static_cast<usize>(tid)];
}

double TeamLayout::speed_of(int tid) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  return speed_of_[static_cast<usize>(tid)];
}

int TeamLayout::threads_of_type(int type) const {
  AID_CHECK(type >= 0 && type < num_core_types());
  return threads_of_type_[static_cast<usize>(type)];
}

int TeamLayout::nb() const {
  return threads_of_type_[threads_of_type_.size() - 1];
}

int TeamLayout::ns() const { return nthreads() - nb(); }

bool TeamLayout::is_uniform() const {
  int populated = 0;
  for (int n : threads_of_type_) populated += (n > 0) ? 1 : 0;
  return populated <= 1;
}

std::string TeamLayout::describe() const {
  std::ostringstream os;
  os << "mapping " << to_string(mapping_) << ", " << nthreads()
     << " threads\n";
  for (int tid = 0; tid < nthreads(); ++tid) {
    const int type = core_type_of_[static_cast<usize>(tid)];
    os << "  tid " << tid << " -> core " << core_of_[static_cast<usize>(tid)]
       << " (type " << type << ", " << type_names_[static_cast<usize>(type)]
       << ")\n";
  }
  return os.str();
}

bool parse_mapping(const std::string& text, Mapping& out) {
  std::string t;
  t.reserve(text.size());
  for (char c : text)
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (t == "sb" || t == "small-first" || t == "smallfirst") {
    out = Mapping::kSmallFirst;
    return true;
  }
  if (t == "bs" || t == "big-first" || t == "bigfirst") {
    out = Mapping::kBigFirst;
    return true;
  }
  return false;
}

}  // namespace aid::platform
