#include "platform/team_layout.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/check.h"

namespace aid::platform {

const char* to_string(Mapping m) {
  return m == Mapping::kSmallFirst ? "SB" : "BS";
}

TeamLayout::TeamLayout(const Platform& platform, int nthreads, Mapping mapping)
    : mapping_(mapping) {
  AID_CHECK_MSG(nthreads >= 1, "team needs at least one thread");
  AID_CHECK_MSG(nthreads <= platform.num_cores(),
                "oversubscription is outside the paper's scope (Sec. 4.2)");
  core_of_.resize(static_cast<usize>(nthreads));
  core_type_of_.resize(static_cast<usize>(nthreads));
  speed_of_.resize(static_cast<usize>(nthreads));
  threads_of_type_.assign(static_cast<usize>(platform.num_core_types()), 0);
  for (const auto& c : platform.clusters()) type_names_.push_back(c.name);

  for (int tid = 0; tid < nthreads; ++tid) {
    const int core = mapping == Mapping::kSmallFirst
                         ? tid
                         : platform.num_cores() - 1 - tid;
    const int type = platform.core_type_of(core);
    core_of_[static_cast<usize>(tid)] = core;
    core_type_of_[static_cast<usize>(tid)] = type;
    speed_of_[static_cast<usize>(tid)] = platform.speed_of_type(type);
    ++threads_of_type_[static_cast<usize>(type)];
  }
}

TeamLayout::TeamLayout(const Platform& platform, int nthreads,
                       int threads_on_big)
    : mapping_(Mapping::kBigFirst) {
  AID_CHECK_MSG(nthreads >= 1, "team needs at least one thread");
  AID_CHECK_MSG(nthreads <= platform.num_cores(), "oversubscription");
  const int big_type = platform.num_core_types() - 1;
  const int big_cores = platform.cores_of_type(big_type);
  // Two distinct ways an explicit allotment can be infeasible; report which
  // constraint failed and with what values, not a bare check.
  AID_CHECK_MSG(threads_on_big >= 0 && threads_on_big <= big_cores,
                ("explicit allotment: threads_on_big=" +
                 std::to_string(threads_on_big) +
                 " outside [0, big-cluster size " +
                 std::to_string(big_cores) + "]")
                    .c_str());
  const int leftover = nthreads - threads_on_big;
  const int non_big_cores = platform.num_cores() - big_cores;
  AID_CHECK_MSG(leftover <= non_big_cores,
                ("explicit allotment: " + std::to_string(leftover) +
                 " leftover thread(s) (nthreads=" + std::to_string(nthreads) +
                 " - threads_on_big=" + std::to_string(threads_on_big) +
                 ") do not fit on the " + std::to_string(non_big_cores) +
                 " core(s) outside the big cluster")
                    .c_str());

  core_of_.resize(static_cast<usize>(nthreads));
  core_type_of_.resize(static_cast<usize>(nthreads));
  speed_of_.resize(static_cast<usize>(nthreads));
  threads_of_type_.assign(static_cast<usize>(platform.num_core_types()), 0);
  for (const auto& c : platform.clusters()) type_names_.push_back(c.name);

  for (int tid = 0; tid < nthreads; ++tid) {
    // Sec. 4.3 convention: low tids descend from the top core id (big);
    // the rest ascend from core 0 (small).
    const int core = tid < threads_on_big ? platform.num_cores() - 1 - tid
                                          : tid - threads_on_big;
    const int type = platform.core_type_of(core);
    core_of_[static_cast<usize>(tid)] = core;
    core_type_of_[static_cast<usize>(tid)] = type;
    speed_of_[static_cast<usize>(tid)] = platform.speed_of_type(type);
    ++threads_of_type_[static_cast<usize>(type)];
  }
}

TeamLayout::TeamLayout(const Platform& platform, std::vector<int> cores,
                       Mapping mapping)
    : mapping_(mapping) {
  AID_CHECK_MSG(!cores.empty(), "partition layout needs at least one core");
  // Core ids ascend with speed (Platform stores clusters slowest-first), so
  // mapping reduces to a sort direction on the id: SB ascending (tid 0 on
  // the slowest granted core), BS descending (tid 0 on the fastest).
  std::sort(cores.begin(), cores.end());
  for (usize i = 0; i < cores.size(); ++i) {
    AID_CHECK_MSG(cores[i] >= 0 && cores[i] < platform.num_cores(),
                  ("partition layout: core id " + std::to_string(cores[i]) +
                   " outside platform [0, " +
                   std::to_string(platform.num_cores()) + ")")
                      .c_str());
    AID_CHECK_MSG(i == 0 || cores[i] != cores[i - 1],
                  ("partition layout: duplicate core id " +
                   std::to_string(cores[i]))
                      .c_str());
  }
  if (mapping == Mapping::kBigFirst)
    std::reverse(cores.begin(), cores.end());

  const int nthreads = static_cast<int>(cores.size());
  core_of_.resize(static_cast<usize>(nthreads));
  core_type_of_.resize(static_cast<usize>(nthreads));
  speed_of_.resize(static_cast<usize>(nthreads));
  threads_of_type_.assign(static_cast<usize>(platform.num_core_types()), 0);
  for (const auto& c : platform.clusters()) type_names_.push_back(c.name);

  for (int tid = 0; tid < nthreads; ++tid) {
    const int core = cores[static_cast<usize>(tid)];
    const int type = platform.core_type_of(core);
    core_of_[static_cast<usize>(tid)] = core;
    core_type_of_[static_cast<usize>(tid)] = type;
    speed_of_[static_cast<usize>(tid)] = platform.speed_of_type(type);
    ++threads_of_type_[static_cast<usize>(type)];
  }
}

int TeamLayout::core_of(int tid) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  return core_of_[static_cast<usize>(tid)];
}

int TeamLayout::core_type_of(int tid) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  return core_type_of_[static_cast<usize>(tid)];
}

double TeamLayout::speed_of(int tid) const {
  AID_CHECK(tid >= 0 && tid < nthreads());
  return speed_of_[static_cast<usize>(tid)];
}

int TeamLayout::threads_of_type(int type) const {
  AID_CHECK(type >= 0 && type < num_core_types());
  return threads_of_type_[static_cast<usize>(type)];
}

int TeamLayout::nb() const {
  return threads_of_type_[threads_of_type_.size() - 1];
}

int TeamLayout::ns() const { return nthreads() - nb(); }

bool TeamLayout::is_uniform() const {
  int populated = 0;
  for (int n : threads_of_type_) populated += (n > 0) ? 1 : 0;
  return populated <= 1;
}

std::string TeamLayout::describe() const {
  std::ostringstream os;
  os << "mapping " << to_string(mapping_) << ", " << nthreads()
     << " threads\n";
  for (int tid = 0; tid < nthreads(); ++tid) {
    const int type = core_type_of_[static_cast<usize>(tid)];
    os << "  tid " << tid << " -> core " << core_of_[static_cast<usize>(tid)]
       << " (type " << type << ", " << type_names_[static_cast<usize>(type)]
       << ")\n";
  }
  return os.str();
}

bool parse_mapping(const std::string& text, Mapping& out) {
  std::string t;
  t.reserve(text.size());
  for (char c : text)
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (t == "sb" || t == "small-first" || t == "smallfirst") {
    out = Mapping::kSmallFirst;
    return true;
  }
  if (t == "bs" || t == "big-first" || t == "bigfirst") {
    out = Mapping::kBigFirst;
    return true;
  }
  return false;
}

}  // namespace aid::platform
