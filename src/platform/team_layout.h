// Thread-to-core mapping conventions.
//
// The paper evaluates two bindings (Sec. 5):
//   SB — cores populated in ascending order by thread id, so low-tid threads
//        land on small cores (thread 0, the master, runs serial phases on a
//        small core);
//   BS — descending order, so threads 0..NB-1 get the big cores. All AID
//        variants assume BS (Sec. 4.3 mapping convention), enforced via the
//        GOMP_AMP_AFFINITY-style environment variable.
//
// TeamLayout is the frozen result of applying a mapping to a platform for a
// given thread count; the schedulers consume it (NB, NS, per-tid core type).
#pragma once

#include <string>
#include <vector>

#include "platform/platform.h"

namespace aid::platform {

enum class Mapping {
  kSmallFirst,  ///< "SB": thread 0 on core 0 (small), ascending
  kBigFirst,    ///< "BS": thread 0 on the fastest core, descending
};

[[nodiscard]] const char* to_string(Mapping m);

class TeamLayout {
 public:
  /// Bind `nthreads` threads (1..platform.num_cores(); no oversubscription,
  /// matching the paper's assumption (ii) in Sec. 4.2) to cores.
  TeamLayout(const Platform& platform, int nthreads, Mapping mapping);

  /// Explicit allotment (the OS-coordination protocol of Sec. 4.3): thread
  /// ids [0, threads_on_big) occupy the fastest cores in descending core-id
  /// order; the remaining threads occupy the slowest cores ascending.
  /// `threads_on_big` must not exceed the fastest cluster's size, and the
  /// leftover threads must fit on the remaining cores.
  TeamLayout(const Platform& platform, int nthreads, int threads_on_big);

  /// Re-layout over an explicit set of platform core ids — the pool
  /// manager's partition view (src/pool/): an app leases an arbitrary
  /// subset of the machine's cores and threads are assigned to exactly
  /// those. `cores` must be non-empty, in range, and duplicate-free.
  /// BS assigns tid 0 the fastest (highest-id) core, descending; SB the
  /// slowest (lowest-id) core, ascending — consistent with the whole-
  /// machine constructors, so AID's "low tids on big cores" convention
  /// holds on any partition.
  TeamLayout(const Platform& platform, std::vector<int> cores,
             Mapping mapping);

  [[nodiscard]] int nthreads() const { return static_cast<int>(core_of_.size()); }
  [[nodiscard]] int num_core_types() const {
    return static_cast<int>(threads_of_type_.size());
  }

  /// Core id the thread is bound to.
  [[nodiscard]] int core_of(int tid) const;
  /// Core type (0 = slowest) of the thread's core.
  [[nodiscard]] int core_type_of(int tid) const;
  /// Nominal speed of the thread's core (relative to slowest type).
  [[nodiscard]] double speed_of(int tid) const;

  /// Number of team threads bound to cores of the given type.
  [[nodiscard]] int threads_of_type(int type) const;

  /// Convenience for the common two-type case (and the AID notation):
  /// NB = threads on the fastest type, NS = all remaining threads.
  [[nodiscard]] int nb() const;
  [[nodiscard]] int ns() const;

  [[nodiscard]] Mapping mapping() const { return mapping_; }

  /// True when every thread runs on the same core type (no asymmetry visible
  /// to the team — AID degenerates to even distribution).
  [[nodiscard]] bool is_uniform() const;

  /// One line per thread: "tid 3 -> core 5 (type 1, Cortex-A15)".
  [[nodiscard]] std::string describe() const;

 private:
  Mapping mapping_;
  std::vector<int> core_of_;        // tid -> core id
  std::vector<int> core_type_of_;   // tid -> core type
  std::vector<double> speed_of_;    // tid -> nominal speed
  std::vector<int> threads_of_type_;
  std::vector<std::string> type_names_;
};

/// Parse a mapping name ("SB"/"sb"/"small-first" or "BS"/"bs"/"big-first").
/// Returns true and writes `out` on success.
[[nodiscard]] bool parse_mapping(const std::string& text, Mapping& out);

}  // namespace aid::platform
