// Process-wide worker pool: one lazily-spawned persistent worker per
// platform core, dispatchable per *partition*.
//
// Team (rt/team.h) owns a private set of workers sized to one app; the
// WorkerPool instead owns at most one worker per platform core and lets a
// caller run a loop on any subset of cores (a TeamLayout built over an
// explicit core list). Two apps holding disjoint partitions dispatch
// concurrently without sharing any synchronization beyond the sleep epoch.
//
// The dispatch mechanism is PR 1's generation dock, per core instead of per
// team thread, extended (PR 3) with a per-job ring of in-flight chain
// entries: each PoolJob carries kChainRing entry slots `{scheduler, body,
// dependency, completion countdown}` keyed by a monotone entry sequence
// number, and each core dock maps its generations onto those sequences
// through a *window* base pair {base_gen, base_seq}. Publishing entry seq
// to a partition bumps every member dock by one generation; a worker that
// observes its dock at generation g executes every entry in (last-seen, g]
// in order. That is what lets a chain of loops flow with nowait semantics:
// the app's master publishes loop k+1 while stragglers still drain loop k,
// and only explicit dependency edges (entry.dep_seq) gate entry.
//
// Repartitioning therefore still needs no thread teardown — a revoked core
// simply stops having windows opened on its dock and its worker parks on
// the shared epoch futex. A window never spans a repartition: the owning
// master flushes every published entry before it rewrites dock window
// fields or changes the partition (see PoolManager::run_chain).
//
// The calling thread (the app's master) participates as partition tid 0 on
// layout.core_of(0), exactly like Team's master: single-core partitions
// run fully serial with zero dispatches, and serial phases run inside the
// partition's core budget.
//
// Ownership contract (enforced by PoolManager, assumed here): at any
// moment each core is published to by at most one master, and ownership of
// a core moves between masters only while no job is in flight on it. The
// pool itself is mechanism, not policy.
#pragma once

#include <array>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/completion_gate.h"
#include "common/padded.h"
#include "common/time_source.h"
#include "platform/platform.h"
#include "platform/team_layout.h"
#include "rt/team.h"
#include "rt/throttle.h"
#include "rt/watchdog.h"
#include "sched/loop_scheduler.h"

namespace aid::pool {

/// One app's in-flight dispatch state: a ring of chain entries keyed by a
/// monotone sequence number (a plain run_loop is a chain of one). The
/// caller owns the object and must keep it alive until the pool shuts down
/// (workers touch an entry's completion words briefly after the master's
/// final wait returns; the PoolManager parks retired jobs instead of
/// freeing them).
struct PoolJob {
  /// In-flight constructs the entry ring can hold before the publisher
  /// must wait for the oldest to drain. Matches rt::Team::kChainRing.
  static constexpr u64 kChainRing = 8;

  /// One in-flight construct. `sched`/`body`/`dep_seq` are plain fields,
  /// ordered by the owning dock generations' release-stores; completion
  /// is the shared gate protocol (common/completion_gate.h, same as
  /// rt::Team::ChainSlot) keyed by the monotone entry sequence.
  struct Entry {
    sched::LoopScheduler* sched = nullptr;
    const rt::RangeBody* body = nullptr;
    u64 dep_seq = 0;  ///< entry sequence that must complete first (0 = none)
    CompletionGate gate;
    /// The occupant's cancellation token: reset + re-bound by the staging
    /// master (ring reuse guard already held), read at every chunk take,
    /// harvested before the slot is reused or the construct returns.
    CancelToken token;
  };

  /// The partition the current window runs on. Stable for a window's whole
  /// lifetime (the master flushes before changing it).
  const platform::TeamLayout* layout = nullptr;
  /// Next entry sequence to publish (master-only; monotone for the job's
  /// lifetime, so `completed` never goes backwards across apps recycling
  /// the job). Sequence 0 is reserved as "no dependency".
  u64 next_seq = 1;
  std::array<Entry, kChainRing> ring;

  [[nodiscard]] Entry& entry_of(u64 seq) { return ring[seq % kChainRing]; }
  [[nodiscard]] const Entry& entry_of(u64 seq) const {
    return ring[seq % kChainRing];
  }
};

class WorkerPool {
 public:
  struct Options {
    bool emulate_amp = true;   ///< throttle small cores on symmetric hosts
    bool bind_threads = false; ///< best-effort per-core affinity
    bool sf_cpu_time = false;  ///< schedulers sample per-thread CPU time
  };

  WorkerPool(const platform::Platform& platform, Options options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Execute `count` canonical iterations of `sched`/`body` on the
  /// partition described by `layout` (core ids are platform core ids).
  /// The calling thread participates as tid 0; tids 1.. are dispatched to
  /// the workers owning those cores (spawned on first use). Blocks until
  /// the partition's implicit barrier completes. Equivalent to a
  /// one-entry window: open_window + publish_entry + run_entry_master +
  /// wait_entry.
  ///
  /// Failure domain: the construct's token is bound to the two optional
  /// parent tokens (the caller's spec token and the app-lease token); a
  /// throwing body is captured and RETURNED (never thrown) so the caller
  /// — who owns the lease — can release it before rethrowing. When
  /// `watchdog` is non-null and deadline_ns > 0, a deadline is armed for
  /// the construct and disarmed before returning.
  [[nodiscard]] std::exception_ptr run_loop(
      const platform::TeamLayout& layout, i64 count,
      sched::LoopScheduler& sched, const rt::RangeBody& body, PoolJob& job,
      const CancelToken* parent_a = nullptr,
      const CancelToken* parent_b = nullptr,
      rt::Watchdog* watchdog = nullptr, i64 deadline_ns = 0);

  // --- chain windows (the loop-pipeline dispatch path) ---------------------
  //
  // A *window* is a run of consecutively published entries executed on one
  // fixed partition. PoolManager::run_chain drives these primitives so it
  // can interleave repartition commits between ring entries: flush, close
  // the window, adopt the new partition, open a new window.

  /// Associate every worker core of `layout` with `job` and map the next
  /// published generations onto entry sequences seq0, seq0+1, ... Workers
  /// are spawned lazily; nothing is dispatched yet. The previous window on
  /// these cores must be fully complete.
  void open_window(const platform::TeamLayout& layout, PoolJob& job,
                   u64 seq0);

  /// Publish the next staged entry of the open window (the caller has
  /// filled the ring entry's fields and countdown): bump every worker dock
  /// of `layout` by one generation and wake sleepers.
  void publish_entry(const platform::TeamLayout& layout);

  /// The master's turn on entry `seq`: honor its dependency edge,
  /// participate as partition tid 0, and check into the countdown.
  void run_entry_master(const platform::TeamLayout& layout, PoolJob& job,
                        u64 seq);

  /// Spin-then-block until entry `seq` has fully completed.
  void wait_entry(PoolJob& job, u64 seq) {
    job.entry_of(seq).gate.wait(seq, spin_budget_, yield_budget_);
  }

  /// Non-blocking completion probe (ring reuse guard for publishers).
  [[nodiscard]] bool entry_complete(const PoolJob& job, u64 seq) const {
    return job.entry_of(seq).gate.complete(seq);
  }

  /// Watchdog dump section for an in-flight entry on `layout`: the
  /// scheduler's pool remainder plus the partition's dock generations
  /// (atomic / racy-by-design reads only — the construct is live when it
  /// runs). Both referents must outlive the armed watchdog entry; disarm
  /// before the flush that invalidates them.
  [[nodiscard]] rt::Watchdog::DumpFn make_watchdog_dump(
      const platform::TeamLayout& layout,
      const sched::LoopScheduler& sched, u64 seq) const;

  [[nodiscard]] const platform::Platform& platform() const {
    return platform_;
  }

  /// Worker threads spawned so far (monotonic; never exceeds num_cores).
  [[nodiscard]] int spawned_workers() const {
    return spawned_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-core dispatch mailbox. The non-atomic fields are the current
  /// *window*: the owning job, this core's partition-local tid, and the
  /// {generation, sequence} base pair mapping dock generations onto the
  /// job's entry ring. All are plain fields ordered by the release-store
  /// of `gen` (single publisher per dock — the owning master), and stable
  /// until the window is flushed.
  struct Dock {
    std::atomic<u64> gen{0};
    PoolJob* job = nullptr;
    int tid = 0;
    u64 base_gen = 0;  ///< dock generation of the window's first entry
    u64 base_seq = 0;  ///< job entry sequence of the window's first entry
  };

  struct CoreSlot {
    Padded<Dock> dock;
    rt::Throttle throttle;   // fixed per core, set at pool construction
    bool spawned = false;    // written only by the core's current owner
    std::thread worker;
  };

  void spawn(CoreSlot& slot, int core_id);
  void worker_main(CoreSlot& slot);
  void participate(const platform::TeamLayout& layout,
                   sched::LoopScheduler& sched, const rt::RangeBody& body,
                   int tid, const rt::Throttle& throttle,
                   CancelToken* token);
  u64 wait_for_dispatch(Dock& dock, u64 seen);

  platform::Platform platform_;
  Options options_;
  SteadyTimeSource clock_;
  ThreadCpuTimeSource cpu_clock_;
  const TimeSource* sf_clock_;
  std::vector<CoreSlot> slots_;  // index = platform core id
  std::atomic<bool> shutting_down_{false};
  Padded<std::atomic<u64>> epoch_;     // shared sleep channel (all workers)
  Padded<std::atomic<int>> sleepers_;  // workers blocked in epoch_.wait
  std::atomic<int> spawned_{0};
  i32 spin_budget_ = 0;
  i32 yield_budget_ = 0;
};

}  // namespace aid::pool
