// Process-wide worker pool: one lazily-spawned persistent worker per
// platform core, dispatchable per *partition*.
//
// Team (rt/team.h) owns a private set of workers sized to one app; the
// WorkerPool instead owns at most one worker per platform core and lets a
// caller run a loop on any subset of cores (a TeamLayout built over an
// explicit core list). Two apps holding disjoint partitions dispatch
// concurrently without sharing any synchronization beyond the sleep epoch.
//
// The dispatch mechanism is PR 1's generation dock, per core instead of per
// team thread: each core slot has a cache-line-padded {generation, job,
// local tid} mailbox. Publishing a job to a partition writes the job
// pointer and the worker's partition-local tid into each member dock, then
// release-stores the bumped generation. Repartitioning therefore needs no
// thread teardown — a revoked core simply stops having jobs published to
// its dock and its worker parks on the shared epoch futex.
//
// The calling thread (the app's master) participates as partition tid 0 on
// layout.core_of(0), exactly like Team's master: single-core partitions
// run fully serial with zero dispatches, and serial phases run inside the
// partition's core budget.
//
// Ownership contract (enforced by PoolManager, assumed here): at any
// moment each core is published to by at most one master, and ownership of
// a core moves between masters only while no job is in flight on it. The
// pool itself is mechanism, not policy.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "common/padded.h"
#include "common/time_source.h"
#include "platform/platform.h"
#include "platform/team_layout.h"
#include "rt/team.h"
#include "rt/throttle.h"
#include "sched/loop_scheduler.h"

namespace aid::pool {

/// One in-flight loop of one app. The caller owns the object and must keep
/// it alive until the pool shuts down (workers touch `unfinished` /
/// `master_parked` briefly after the master's run_loop returns; the
/// PoolManager parks retired jobs instead of freeing them).
struct PoolJob {
  sched::LoopScheduler* sched = nullptr;
  const rt::RangeBody* body = nullptr;
  const platform::TeamLayout* layout = nullptr;
  Padded<std::atomic<int>> unfinished;
  Padded<std::atomic<bool>> master_parked;
};

class WorkerPool {
 public:
  struct Options {
    bool emulate_amp = true;   ///< throttle small cores on symmetric hosts
    bool bind_threads = false; ///< best-effort per-core affinity
    bool sf_cpu_time = false;  ///< schedulers sample per-thread CPU time
  };

  WorkerPool(const platform::Platform& platform, Options options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Execute `count` canonical iterations of `sched`/`body` on the
  /// partition described by `layout` (core ids are platform core ids).
  /// The calling thread participates as tid 0; tids 1.. are dispatched to
  /// the workers owning those cores (spawned on first use). Blocks until
  /// the partition's implicit barrier completes.
  void run_loop(const platform::TeamLayout& layout, i64 count,
                sched::LoopScheduler& sched, const rt::RangeBody& body,
                PoolJob& job);

  [[nodiscard]] const platform::Platform& platform() const {
    return platform_;
  }

  /// Worker threads spawned so far (monotonic; never exceeds num_cores).
  [[nodiscard]] int spawned_workers() const {
    return spawned_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-core dispatch mailbox. `job`/`tid` are plain fields ordered by the
  /// release-store of `gen` (single publisher per dock — the owning
  /// master).
  struct Dock {
    std::atomic<u64> gen{0};
    PoolJob* job = nullptr;
    int tid = 0;
  };

  struct CoreSlot {
    Padded<Dock> dock;
    rt::Throttle throttle;   // fixed per core, set at pool construction
    bool spawned = false;    // written only by the core's current owner
    std::thread worker;
  };

  void spawn(CoreSlot& slot, int core_id);
  void worker_main(CoreSlot& slot);
  void participate(PoolJob& job, int tid, const rt::Throttle& throttle);
  u64 wait_for_dispatch(Dock& dock, u64 seen);
  void join(PoolJob& job);

  platform::Platform platform_;
  Options options_;
  SteadyTimeSource clock_;
  ThreadCpuTimeSource cpu_clock_;
  const TimeSource* sf_clock_;
  std::vector<CoreSlot> slots_;  // index = platform core id
  std::atomic<bool> shutting_down_{false};
  Padded<std::atomic<u64>> epoch_;     // shared sleep channel (all workers)
  Padded<std::atomic<int>> sleepers_;  // workers blocked in epoch_.wait
  std::atomic<int> spawned_{0};
  i32 spin_budget_ = 0;
  i32 yield_budget_ = 0;
};

}  // namespace aid::pool
