// Core-arbitration policies for the process-wide pool manager.
//
// When several applications share one AMP (paper Sec. 5C / the Sec. 4.3
// OS-coordination scenario), somebody must decide how many big and small
// cores each app holds. In the paper that somebody is the OS; in this repo
// the PoolManager plays that role, and this module is its policy head: a
// pure function from (cores per type, app weights) to a per-app, per-type
// core count. Keeping it side-effect free makes the arbitration directly
// unit-testable, independent of threads or the worker pool.
//
// Policies:
//   kEqualShare       — every type's cores split evenly across apps,
//                       weights ignored (the default; the "fair OS").
//   kBigCorePriority  — every app gets an equal *total* core count, but
//                       the fastest cores are packed onto the
//                       highest-weight apps first (a latency-critical app
//                       co-running with batch work).
//   kProportional     — every type's cores split proportionally to the
//                       app weights (largest-remainder rounding).
//
// All policies distribute the whole machine (the pool never leaves a core
// idle by policy) and guarantee every app at least one core whenever
// apps <= total cores.
#pragma once

#include <string>
#include <vector>

namespace aid::pool {

enum class Policy {
  kEqualShare,
  kBigCorePriority,
  kProportional,
};

[[nodiscard]] const char* to_string(Policy p);

/// Parse a policy name ("equal"/"equal-share", "big-priority"/
/// "big-core-priority", "proportional"). Returns true and writes `out` on
/// success.
[[nodiscard]] bool parse_policy(const std::string& text, Policy& out);

/// Arbitrate `cores_per_type[t]` cores of each type (slowest-first, the
/// Platform convention) across `weights.size()` apps. Returns
/// counts[app][type]; column sums equal `cores_per_type` exactly.
/// Weights must be positive; apps must number at least 1 and at most the
/// total core count.
[[nodiscard]] std::vector<std::vector<int>> arbitrate(
    const std::vector<int>& cores_per_type, const std::vector<double>& weights,
    Policy policy);

}  // namespace aid::pool
