#include "pool/policy.h"

#include <algorithm>
#include <cctype>
#include <numeric>

#include "common/check.h"
#include "common/types.h"

namespace aid::pool {
namespace {

/// Split `total` items across apps proportionally to `share` (largest-
/// remainder rounding; ties go to the lower app index, keeping the result
/// deterministic in registration order).
std::vector<int> split_proportional(int total, const std::vector<double>& share) {
  const usize n = share.size();
  const double sum = std::accumulate(share.begin(), share.end(), 0.0);
  std::vector<int> out(n, 0);
  std::vector<std::pair<double, usize>> frac;  // (-remainder, app)
  int assigned = 0;
  for (usize a = 0; a < n; ++a) {
    const double ideal = static_cast<double>(total) * share[a] / sum;
    out[a] = static_cast<int>(ideal);
    assigned += out[a];
    frac.emplace_back(-(ideal - static_cast<double>(out[a])), a);
  }
  std::sort(frac.begin(), frac.end());
  for (usize i = 0; assigned < total; ++i, ++assigned) ++out[frac[i].second];
  return out;
}

/// Move one core (of the donor's most-populated type) from the app holding
/// the most cores to any app holding none — the "at least one core each"
/// floor all policies guarantee.
void enforce_min_one(std::vector<std::vector<int>>& counts) {
  const usize napps = counts.size();
  const auto total_of = [&](usize a) {
    return std::accumulate(counts[a].begin(), counts[a].end(), 0);
  };
  for (usize a = 0; a < napps; ++a) {
    if (total_of(a) > 0) continue;
    usize donor = a;
    for (usize b = 0; b < napps; ++b)
      if (total_of(b) > total_of(donor)) donor = b;
    AID_CHECK_MSG(total_of(donor) > 1, "more apps than cores");
    const usize t = static_cast<usize>(
        std::max_element(counts[donor].begin(), counts[donor].end()) -
        counts[donor].begin());
    --counts[donor][t];
    ++counts[a][t];
  }
}

}  // namespace

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kEqualShare:
      return "equal-share";
    case Policy::kBigCorePriority:
      return "big-core-priority";
    case Policy::kProportional:
      return "proportional";
  }
  return "?";
}

bool parse_policy(const std::string& text, Policy& out) {
  std::string t;
  t.reserve(text.size());
  for (char c : text)
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (t == "equal" || t == "equal-share" || t == "equalshare") {
    out = Policy::kEqualShare;
    return true;
  }
  if (t == "big-priority" || t == "big-core-priority" || t == "bigpriority") {
    out = Policy::kBigCorePriority;
    return true;
  }
  if (t == "proportional" || t == "prop") {
    out = Policy::kProportional;
    return true;
  }
  return false;
}

std::vector<std::vector<int>> arbitrate(const std::vector<int>& cores_per_type,
                                        const std::vector<double>& weights,
                                        Policy policy) {
  const usize napps = weights.size();
  const usize ntypes = cores_per_type.size();
  AID_CHECK_MSG(napps >= 1, "arbitrate needs at least one app");
  AID_CHECK_MSG(ntypes >= 1, "arbitrate needs at least one core type");
  int total_cores = 0;
  for (int c : cores_per_type) {
    AID_CHECK(c >= 0);
    total_cores += c;
  }
  AID_CHECK_MSG(static_cast<int>(napps) <= total_cores,
                "more apps than cores in the pool");
  for (double w : weights) AID_CHECK_MSG(w > 0.0, "weights must be positive");

  std::vector<std::vector<int>> counts(napps, std::vector<int>(ntypes, 0));

  switch (policy) {
    case Policy::kEqualShare: {
      // Per type, even split; the remainder start index rotates with the
      // type so one app does not collect every type's leftover core.
      for (usize t = 0; t < ntypes; ++t) {
        const int base = cores_per_type[t] / static_cast<int>(napps);
        const int rem = cores_per_type[t] % static_cast<int>(napps);
        for (usize a = 0; a < napps; ++a) counts[a][t] = base;
        for (int r = 0; r < rem; ++r)
          ++counts[(t + static_cast<usize>(r)) % napps][t];
      }
      break;
    }
    case Policy::kProportional: {
      for (usize t = 0; t < ntypes; ++t) {
        const auto split = split_proportional(cores_per_type[t], weights);
        for (usize a = 0; a < napps; ++a) counts[a][t] = split[a];
      }
      break;
    }
    case Policy::kBigCorePriority: {
      // Equal totals, but fill fastest-type-first in descending weight
      // order: the heavy app's allotment is big-core-rich, the light app's
      // small-core-rich, while nobody's core *count* differs by more
      // than one.
      const std::vector<double> even(napps, 1.0);
      const auto totals = split_proportional(total_cores, even);
      std::vector<usize> order(napps);
      std::iota(order.begin(), order.end(), usize{0});
      std::stable_sort(order.begin(), order.end(), [&](usize a, usize b) {
        return weights[a] > weights[b];
      });
      std::vector<int> left = cores_per_type;
      for (const usize a : order) {
        int need = totals[a];
        for (usize t = ntypes; t-- > 0 && need > 0;) {
          const int take = std::min(need, left[t]);
          counts[a][t] = take;
          left[t] -= take;
          need -= take;
        }
      }
      break;
    }
  }

  enforce_min_one(counts);
  return counts;
}

}  // namespace aid::pool
