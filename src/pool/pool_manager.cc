#include "pool/pool_manager.h"

#include <algorithm>
#include <exception>

#include "common/check.h"
#include "common/time_source.h"
#include "pipeline/loop_chain.h"
#include "rt/runtime.h"
#include "sched/loop_scheduler.h"

namespace aid::pool {
namespace {

/// Cores of `type` on the platform, ascending id.
std::vector<int> cores_of_type(const platform::Platform& p, int type) {
  std::vector<int> out;
  const int first = p.first_core_of_type(type);
  for (int c = first; c < first + p.cores_of_type(type); ++c)
    out.push_back(c);
  return out;
}

}  // namespace

// --- AppHandle -------------------------------------------------------------

AppHandle::~AppHandle() { release(); }

AppHandle::AppHandle(AppHandle&& other) noexcept
    : mgr_(other.mgr_), id_(other.id_) {
  other.mgr_ = nullptr;
}

AppHandle& AppHandle::operator=(AppHandle&& other) noexcept {
  if (this != &other) {
    release();
    mgr_ = other.mgr_;
    id_ = other.id_;
    other.mgr_ = nullptr;
  }
  return *this;
}

void AppHandle::release() {
  if (mgr_ == nullptr) return;
  mgr_->unregister(id_);
  mgr_ = nullptr;
}

void AppHandle::run_loop(i64 count, const sched::ScheduleSpec& spec,
                         const rt::RangeBody& body) {
  AID_CHECK_MSG(mgr_ != nullptr, "run_loop on a released app lease");
  mgr_->run_loop(id_, count, spec, body);
}

void AppHandle::run_chain(const pipeline::LoopChain& chain) {
  AID_CHECK_MSG(mgr_ != nullptr, "run_chain on a released app lease");
  mgr_->run_chain(id_, chain);
}

void AppHandle::cancel() {
  AID_CHECK_MSG(mgr_ != nullptr, "cancel on a released app lease");
  // The mutex only guards the map lookup; the token itself is atomic and
  // is read lock-free by every participant of the in-flight construct.
  std::scoped_lock lk(mgr_->mutex_);
  mgr_->app_of(id_).cancel_token.cancel(CancelReason::kUser);
}

const platform::TeamLayout& AppHandle::begin_region() {
  AID_CHECK_MSG(mgr_ != nullptr, "begin_region on a released app lease");
  std::unique_lock lk(mgr_->mutex_);
  PoolManager::App& a = mgr_->app_of(id_);
  if (a.region_depth == 0) {
    // wait() evaluates the predicate (which adopts) before blocking.
    mgr_->granted_.wait(lk, [&] {
      mgr_->commit_idle();
      return !a.current.empty();
    });
  }
  ++a.region_depth;
  return *a.layout;
}

void AppHandle::end_region() {
  AID_CHECK_MSG(mgr_ != nullptr, "end_region on a released app lease");
  std::scoped_lock lk(mgr_->mutex_);
  PoolManager::App& a = mgr_->app_of(id_);
  AID_CHECK_MSG(a.region_depth > 0, "end_region without begin_region");
  if (--a.region_depth == 0) {
    mgr_->commit_idle();
    mgr_->granted_.notify_all();
  }
}

platform::TeamLayout AppHandle::layout() const {
  AID_CHECK_MSG(mgr_ != nullptr, "layout() on a released app lease");
  std::scoped_lock lk(mgr_->mutex_);
  const PoolManager::App& a = mgr_->app_of(id_);
  if (a.layout != nullptr) return *a.layout;
  // Grant not yet materialized (a draining neighbour still holds the
  // cores): describe the pending target instead — arbitrate() guarantees
  // it is non-empty, so nthreads()/allotment() never report a bogus 0
  // partition in the registration window.
  return platform::TeamLayout(mgr_->platform_, a.pending,
                              platform::Mapping::kBigFirst);
}

AppAllotment AppHandle::allotment() const {
  const platform::TeamLayout snapshot = layout();
  return {snapshot.nb(), snapshot.ns()};
}

const rt::SharedAllotment& AppHandle::shared() const {
  AID_CHECK_MSG(mgr_ != nullptr, "shared() on a released app lease");
  std::scoped_lock lk(mgr_->mutex_);
  return *mgr_->app_of(id_).shared;
}

sched::SchedulerStats AppHandle::last_loop_stats() const {
  AID_CHECK_MSG(mgr_ != nullptr, "stats on a released app lease");
  std::scoped_lock lk(mgr_->mutex_);
  return mgr_->app_of(id_).last_stats;
}

LeaseStats AppHandle::lease_stats() const {
  AID_CHECK_MSG(mgr_ != nullptr, "lease_stats on a released app lease");
  std::scoped_lock lk(mgr_->mutex_);
  return mgr_->app_of(id_).lease_stats;
}

sched::SchedulerCache& AppHandle::scheduler_cache() {
  AID_CHECK_MSG(mgr_ != nullptr, "scheduler_cache on a released app lease");
  std::scoped_lock lk(mgr_->mutex_);
  return *mgr_->app_of(id_).cache;
}

const sched::ShardTopology& AppHandle::shard_topology() const {
  AID_CHECK_MSG(mgr_ != nullptr, "shard_topology on a released app lease");
  std::scoped_lock lk(mgr_->mutex_);
  const PoolManager::App& a = mgr_->app_of(id_);
  AID_CHECK_MSG(a.topo != nullptr,
                "shard_topology before the first partition adoption — pin "
                "the partition (begin_region / a loop boundary) first");
  return *a.topo;
}

// --- PoolManager -----------------------------------------------------------

PoolManager& PoolManager::instance() {
  static PoolManager manager(rt::platform_from_env(), [] {
    const rt::RuntimeConfig rc = rt::RuntimeConfig::from_env();
    Config c;
    // The policy travels through RuntimeConfig as an opaque name (rt/ does
    // not depend on pool/); unparsable values fall back to the default,
    // libgomp-style.
    (void)parse_policy(rc.pool_policy, c.policy);
    c.emulate_amp = rc.emulate_amp;
    c.bind_threads = rc.bind_threads;
    c.sf_cpu_time = rc.sf_cpu_time;
    return c;
  }());
  return manager;
}

PoolManager::PoolManager(platform::Platform platform, Config config)
    : platform_(std::move(platform)),
      config_(config),
      pool_(platform_, WorkerPool::Options{config.emulate_amp,
                                           config.bind_threads,
                                           config.sf_cpu_time}) {}

PoolManager::~PoolManager() {
  std::scoped_lock lk(mutex_);
  AID_CHECK_MSG(apps_.empty(),
                "PoolManager destroyed with live app leases");
}

PoolManager::App& PoolManager::app_of(u64 id) {
  const auto it = apps_.find(id);
  AID_CHECK_MSG(it != apps_.end(), "unknown app lease");
  return *it->second;
}

const PoolManager::App& PoolManager::app_of(u64 id) const {
  const auto it = apps_.find(id);
  AID_CHECK_MSG(it != apps_.end(), "unknown app lease");
  return *it->second;
}

AppHandle PoolManager::register_app(std::string name, double weight) {
  std::scoped_lock lk(mutex_);
  AID_CHECK_MSG(static_cast<int>(apps_.size()) < platform_.num_cores(),
                "more apps than cores in the pool");
  const u64 id = next_id_++;
  auto app = std::make_unique<App>();
  app->id = id;
  app->name = std::move(name);
  app->weight = weight;
  app->cache = std::make_unique<sched::SchedulerCache>();
  if (retired_.empty()) {
    app->shared = std::make_unique<rt::SharedAllotment>();
    app->job = std::make_unique<PoolJob>();
  } else {
    // Recycle a retired app's externally-referenced state (quiescent by
    // now: its unregister required no loop in flight).
    app->shared = std::move(retired_.back().shared);
    app->job = std::move(retired_.back().job);
    retired_.pop_back();
  }
  apps_.emplace(id, std::move(app));
  compute_targets();
  commit_idle();
  granted_.notify_all();
  return AppHandle(this, id);
}

void PoolManager::unregister(u64 id) {
  std::scoped_lock lk(mutex_);
  App& a = app_of(id);
  AID_CHECK_MSG(!a.in_loop && a.region_depth == 0,
                "app lease released with a loop or region in flight");
  // Workers may still touch the job's completion words briefly after the
  // app's last join, and observers may hold a shared() reference past
  // release; park both for recycling instead of freeing.
  retired_.push_back({std::move(a.shared), std::move(a.job)});
  apps_.erase(id);
  if (!apps_.empty()) compute_targets();
  commit_idle();
  granted_.notify_all();
}

void PoolManager::set_policy(Policy policy) {
  std::scoped_lock lk(mutex_);
  config_.policy = policy;
  if (!apps_.empty()) compute_targets();
  commit_idle();
  granted_.notify_all();
}

Policy PoolManager::policy() const {
  std::scoped_lock lk(mutex_);
  return config_.policy;
}

void PoolManager::repartition() {
  std::scoped_lock lk(mutex_);
  if (!apps_.empty()) compute_targets();
  commit_idle();
  granted_.notify_all();
}

int PoolManager::registered_apps() const {
  std::scoped_lock lk(mutex_);
  return static_cast<int>(apps_.size());
}

int PoolManager::total_threads() const {
  std::scoped_lock lk(mutex_);
  return pool_.spawned_workers() + static_cast<int>(apps_.size());
}

void PoolManager::compute_targets() {
  std::vector<App*> apps;  // registration order (map is keyed by id)
  std::vector<double> weights;
  for (auto& [id, app] : apps_) {
    apps.push_back(app.get());
    weights.push_back(app->weight);
  }
  std::vector<int> per_type(static_cast<usize>(platform_.num_core_types()));
  for (int t = 0; t < platform_.num_core_types(); ++t)
    per_type[static_cast<usize>(t)] = platform_.cores_of_type(t);

  const auto counts = arbitrate(per_type, weights, config_.policy);
  targets_epoch_.fetch_add(1, std::memory_order_release);

  // Counts -> concrete core ids, sticky: an app first keeps cores it
  // already holds of each type (fastest-held first, so partition masters
  // stay put), then free cores fill the remainder in app order.
  std::vector<bool> taken(static_cast<usize>(platform_.num_cores()), false);
  std::vector<std::vector<int>> kept(apps.size());
  for (usize a = 0; a < apps.size(); ++a) {
    std::vector<int> want = counts[a];
    std::vector<int> cur = apps[a]->current;  // sorted ascending
    for (auto it = cur.rbegin(); it != cur.rend(); ++it) {
      const int type = platform_.core_type_of(*it);
      if (want[static_cast<usize>(type)] > 0) {
        --want[static_cast<usize>(type)];
        kept[a].push_back(*it);
        taken[static_cast<usize>(*it)] = true;
      }
    }
  }
  for (usize a = 0; a < apps.size(); ++a) {
    std::vector<int> want = counts[a];
    for (const int c : kept[a])
      --want[static_cast<usize>(platform_.core_type_of(c))];
    std::vector<int> target = kept[a];
    for (int t = 0; t < platform_.num_core_types(); ++t) {
      for (const int c : cores_of_type(platform_, t)) {
        if (want[static_cast<usize>(t)] == 0) break;
        if (taken[static_cast<usize>(c)]) continue;
        taken[static_cast<usize>(c)] = true;
        target.push_back(c);
        --want[static_cast<usize>(t)];
      }
      AID_CHECK(want[static_cast<usize>(t)] == 0);
    }
    std::sort(target.begin(), target.end());
    apps[a]->pending = std::move(target);
  }
}

std::vector<int> PoolManager::achievable_of(const App& app) const {
  // Achievable now = pending minus cores other apps still hold (an in-loop
  // neighbour releases its revoked cores at its own loop boundary).
  std::vector<bool> held(static_cast<usize>(platform_.num_cores()), false);
  for (const auto& [id, other] : apps_) {
    if (other.get() == &app) continue;
    for (const int c : other->current) held[static_cast<usize>(c)] = true;
  }
  std::vector<int> achievable;
  for (const int c : app.pending)
    if (!held[static_cast<usize>(c)]) achievable.push_back(c);
  return achievable;
}

bool PoolManager::can_adopt_now(const App& app) const {
  const std::vector<int> achievable = achievable_of(app);
  return !achievable.empty() && achievable != app.current;
}

void PoolManager::adopt(App& app) {
  std::vector<int> achievable = achievable_of(app);
  // Never adopt an empty partition while waiting for a neighbour to drain;
  // keep what we have until the grant materializes.
  if (achievable.empty()) return;
  if (achievable == app.current) return;

  app.current = std::move(achievable);
  app.layout = std::make_unique<platform::TeamLayout>(
      platform_, app.current, platform::Mapping::kBigFirst);
  app.topo = std::make_unique<sched::ShardTopology>(
      sched::ShardTopology::from_layout(*app.layout));
  // The partition moved: every cached scheduler bakes in the old layout's
  // thread count and shard topology. Idle instances die now; in-flight
  // ones (a chain committing between ring entries) die on their release.
  app.cache->invalidate();
  ++allotment_epoch_;
  targets_epoch_.fetch_add(1, std::memory_order_release);
  app.shared->publish({app.layout->nb(), allotment_epoch_});
}

void PoolManager::commit_idle() {
  // Fixpoint: adopting a shrink frees cores that let a later grow succeed,
  // so iterate until nothing moves. Bounded by total core transfers.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [id, app] : apps_) {
      if (app->in_loop || app->region_depth > 0) continue;
      const std::vector<int> before = app->current;
      adopt(*app);
      if (app->current != before) changed = true;
    }
  }
}

void PoolManager::run_chain(u64 id, const pipeline::LoopChain& chain) {
  const auto& loops = chain.loops();
  if (loops.empty()) return;
  const usize total = loops.size();
  const SteadyTimeSource clock;
  const Nanos construct_t0 = clock.now();

  // Acquire the partition exactly like run_loop: the chain's entry is a
  // loop boundary, so pending grants/revokes are adopted first.
  const platform::TeamLayout* layout = nullptr;
  const sched::ShardTopology* topo = nullptr;
  PoolJob* job = nullptr;
  sched::SchedulerCache* cache = nullptr;
  CancelToken* lease_cancel = nullptr;
  {
    std::unique_lock lk(mutex_);
    App& a = app_of(id);
    AID_CHECK_MSG(!a.in_loop,
                  "nested/concurrent run_loop/run_chain on one app lease");
    if (a.region_depth == 0) {
      granted_.wait(lk, [&] {
        commit_idle();
        return !a.current.empty();
      });
    }
    AID_CHECK_MSG(!a.current.empty(), "app lease holds no cores");
    a.in_loop = true;
    // Re-arm the lease-wide cancel parent: one AppHandle::cancel() kills
    // every in-flight entry of this chain (they all bind to it).
    a.cancel_token.reset();
    lease_cancel = &a.cancel_token;
    layout = a.layout.get();
    topo = a.topo.get();
    job = a.job.get();
    cache = a.cache.get();
  }

  // Scheduler leases live for the whole chain (stats are read at the end,
  // and a published entry's scheduler must outlive its completion). A
  // mid-chain repartition invalidates the cache, so leases acquired before
  // the commit are destroyed — not repooled — when released below.
  std::vector<sched::LoopScheduler*> scheds(total, nullptr);
  std::vector<u64> seqs(total, 0);
  std::vector<u64> wd_ids(total, 0);
  usize pub = 0;      // chain entries published so far
  usize run = 0;      // chain entries the master has participated in
  usize flushed = 0;  // chain entries known complete (window boundary)
  bool window_open = false;

  // First error anywhere in the chain, rethrown after the lease's loop
  // state is released. An entry's token MUST be disarmed + harvested
  // before its ring slot is reused (the staging below resets the token)
  // and before a repartition commit swaps the layout its watchdog dump
  // references — so harvesting happens in entry order, at the ring-reuse
  // point and after every flush. Entries below `harvested` are proven
  // complete (each was either flushed or ring-reuse-guarded).
  std::exception_ptr chain_error;
  usize harvested = 0;
  const auto harvest_through = [&](usize limit) {
    for (; harvested < limit; ++harvested) {
      if (wd_ids[harvested] != 0) {
        watchdog_.disarm(wd_ids[harvested]);
        wd_ids[harvested] = 0;
      }
      if (!chain_error)
        chain_error = job->entry_of(seqs[harvested]).token.error();
    }
  };

  const auto flush_published = [&] {
    for (; flushed < pub; ++flushed) pool_.wait_entry(*job, seqs[flushed]);
    harvest_through(pub);
    window_open = false;
  };

  // Repartition probe, at ring-entry granularity: true when the arbiter
  // has a new target for this app that is *adoptable right now* (and no
  // region pins the layout). Publishing stops the moment it flips; the
  // commit happens once the published work drains — a flowing boundary
  // instead of a stop-the-world one between whole constructs. The
  // adoptability check matters: a pending target whose cores a neighbour
  // still holds must not stall the chain (the commit would be a no-op and
  // the probe would spin), so the chain keeps flowing on its current
  // partition until the grant materializes. The probe is lock-free in
  // steady state: it takes the manager mutex only when the targets epoch
  // moved since it last looked, so a chain publishing K entries does not
  // contend K times with co-running apps' loop boundaries.
  u64 probe_seen = targets_epoch_.load(std::memory_order_acquire) - 1;
  bool probe_result = false;
  const auto commit_pending = [&] {
    if (targets_epoch_.load(std::memory_order_acquire) != probe_seen) {
      std::scoped_lock lk(mutex_);
      probe_seen = targets_epoch_.load(std::memory_order_relaxed);
      App& a = app_of(id);
      probe_result = a.region_depth == 0 && can_adopt_now(a);
    }
    return probe_result;
  };

  while (run < total) {
    const bool want_commit = commit_pending();

    if (!want_commit) {
      while (pub < total) {
        // Re-probe before every publish so a repartition posted mid-batch
        // stops dispatch at the next entry, not after a ring-full batch.
        if (pub != run && commit_pending()) break;
        const u64 seq = job->next_seq;
        // Ring reuse guard: the slot's previous occupant must be complete.
        if (seq > PoolJob::kChainRing &&
            !pool_.entry_complete(*job, seq - PoolJob::kChainRing))
          break;
        // Proven complete: disarm + harvest entry pub - kChainRing before
        // its slot fields are rewritten below, then hand its lease back
        // now (only the final entry's stats are read), so a long
        // same-shape chain re-arms at most kChainRing instances.
        if (pub >= PoolJob::kChainRing) {
          harvest_through(pub - PoolJob::kChainRing + 1);
          cache->release(scheds[pub - PoolJob::kChainRing]);
          scheds[pub - PoolJob::kChainRing] = nullptr;
        }
        const pipeline::ChainedLoop& loop = loops[pub];
        scheds[pub] = cache->acquire(loop.spec, loop.count, *layout, *topo);
        PoolJob::Entry& entry = job->entry_of(seq);
        entry.sched = scheds[pub];
        entry.body = &loop.body;
        // Dependency edges point at earlier entries; `completed` is
        // monotone, so an edge into an already-drained window is a no-op
        // wait rather than a stale one.
        entry.dep_seq =
            loop.depends_on >= 0 ? seqs[static_cast<usize>(loop.depends_on)]
                                 : 0;
        // Re-own the slot token for the new occupant (harvested above or
        // never used) and chain it to the entry's spec token plus the
        // lease-wide cancel parent.
        entry.token.reset();
        entry.token.bind(loop.spec.cancel, lease_cancel);
        entry.gate.arm(layout->nthreads(), seq);
        if (loop.spec.deadline_ns > 0)
          wd_ids[pub] = watchdog_.arm(
              &entry.token, &entry.gate, seq, loop.spec.deadline_ns,
              "pool chain entry",
              pool_.make_watchdog_dump(*layout, *scheds[pub], seq));
        if (!window_open) {
          pool_.open_window(*layout, *job, seq);
          window_open = true;
        }
        job->next_seq = seq + 1;
        seqs[pub] = seq;
        pool_.publish_entry(*layout);
        ++pub;
      }
    }

    if (run < pub) {
      // The master works through its own shares in chain order; workers
      // flow ahead through everything already published.
      pool_.run_entry_master(*layout, *job, seqs[run]);
      ++run;
    } else if (want_commit) {
      // Every published entry has the master's participation; drain them,
      // then adopt the pending partition at this ring-entry boundary and
      // continue the chain on the new cores.
      flush_published();
      std::unique_lock lk(mutex_);
      App& a = app_of(id);
      a.in_loop = false;
      granted_.notify_all();
      granted_.wait(lk, [&] {
        commit_idle();
        return !a.current.empty();
      });
      a.in_loop = true;
      layout = a.layout.get();
      topo = a.topo.get();
    } else {
      // Ring full and nothing left for the master to run: wait for the
      // oldest in-flight entry (the workers are draining it).
      pool_.wait_entry(*job, job->next_seq - PoolJob::kChainRing);
    }
  }

  // Chain-end flush: the only full join of the chain (pub == total here,
  // so it also disarms + harvests every remaining entry).
  flush_published();

  const sched::SchedulerStats stats = scheds[total - 1]->stats();
  for (sched::LoopScheduler* s : scheds)
    if (s != nullptr) cache->release(s);

  {
    std::scoped_lock lk(mutex_);
    App& a = app_of(id);
    a.last_stats = stats;
    a.lease_stats.chains += 1;
    a.lease_stats.busy_ns += clock.now() - construct_t0;
    a.in_loop = false;
    if (a.region_depth == 0) commit_idle();
    granted_.notify_all();
  }
  // Lease state released FIRST, rethrow LAST (same contract as run_loop).
  if (chain_error) std::rethrow_exception(chain_error);
}

void PoolManager::run_loop(u64 id, i64 count, const sched::ScheduleSpec& spec,
                           const rt::RangeBody& body) {
  const SteadyTimeSource clock;
  const Nanos construct_t0 = clock.now();
  const platform::TeamLayout* layout = nullptr;
  const sched::ShardTopology* topo = nullptr;
  PoolJob* job = nullptr;
  sched::SchedulerCache* cache = nullptr;
  CancelToken* lease_cancel = nullptr;
  {
    std::unique_lock lk(mutex_);
    App& a = app_of(id);
    AID_CHECK_MSG(!a.in_loop,
                  "nested/concurrent run_loop on one app lease");
    if (a.region_depth == 0) {
      // The loop boundary: adopt pending grants/revokes (the wait's
      // predicate runs before blocking), and if every one of our granted
      // cores is still held by a draining neighbour, wait for its
      // boundary.
      granted_.wait(lk, [&] {
        commit_idle();
        return !a.current.empty();
      });
    }
    AID_CHECK_MSG(!a.current.empty(), "app lease holds no cores");
    a.in_loop = true;
    // Re-arm the lease-wide cancel parent for this construct (no loop was
    // in flight, so nobody reads it concurrently with the reset).
    a.cancel_token.reset();
    lease_cancel = &a.cancel_token;
    layout = a.layout.get();
    topo = a.topo.get();
    job = a.job.get();
    cache = a.cache.get();
  }

  // Shard membership follows the partition: the topology (rebuilt in
  // adopt() alongside the layout) matches whatever partition this loop
  // boundary committed, and the cache was invalidated if it moved — so a
  // cache hit always re-arms an instance built for the current layout.
  sched::LoopScheduler* scheduler = cache->acquire(spec, count, *layout,
                                                   *topo);
  const std::exception_ptr error =
      pool_.run_loop(*layout, count, *scheduler, body, *job, spec.cancel,
                     lease_cancel, &watchdog_, spec.deadline_ns);

  const sched::SchedulerStats stats = scheduler->stats();
  cache->release(scheduler);

  {
    std::scoped_lock lk(mutex_);
    App& a = app_of(id);
    a.last_stats = stats;
    a.lease_stats.loops += 1;
    a.lease_stats.busy_ns += clock.now() - construct_t0;
    a.in_loop = false;
    if (a.region_depth == 0) commit_idle();
    granted_.notify_all();
  }
  // Lease state released FIRST, rethrow LAST: a thrown body leaves the
  // lease reusable (subsequent loops work) and co-tenants unaffected.
  if (error) std::rethrow_exception(error);
}

}  // namespace aid::pool
