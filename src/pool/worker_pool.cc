#include "pool/worker_pool.h"

#include "common/affinity.h"
#include "common/check.h"
#include "common/env.h"
#include "common/spin_wait.h"
#include "fault/fault.h"

namespace aid::pool {

WorkerPool::WorkerPool(const platform::Platform& platform, Options options)
    : platform_(platform),
      options_(options),
      sf_clock_(options.sf_cpu_time
                    ? static_cast<const TimeSource*>(&cpu_clock_)
                    : static_cast<const TimeSource*>(&clock_)),
      slots_(static_cast<usize>(platform_.num_cores())),
      spin_budget_(static_cast<i32>(env::get_int_at_least(
          "AID_FORKJOIN_SPIN", default_spin_budget(platform_.num_cores()),
          0))),
      yield_budget_(static_cast<i32>(env::get_int_at_least(
          "AID_FORKJOIN_YIELD", default_yield_budget(platform_.num_cores()),
          0))) {
  const double max_speed =
      platform_.speed_of_type(platform_.num_core_types() - 1);
  for (int core = 0; core < platform_.num_cores(); ++core)
    slots_[static_cast<usize>(core)].throttle = rt::Throttle(
        max_speed / platform_.speed_of_core(core), options_.emulate_amp);
  // Arm the fault-injection plan (if AID_FAULT is set) before any worker
  // can run a body shim; once-per-process, no-op thereafter.
  fault::init_from_env();
}

WorkerPool::~WorkerPool() {
  // Cold path, mirroring Team's shutdown: bump every spawned dock and
  // broadcast on the shared epoch. Workers check shutting_down_ before
  // touching the window/entry fields. The PoolManager guarantees no loop
  // is in flight.
  shutting_down_.store(true, std::memory_order_seq_cst);
  for (auto& slot : slots_) {
    if (!slot.spawned) continue;
    Dock& dock = *slot.dock;
    dock.gen.store(dock.gen.load(std::memory_order_relaxed) + 1,
                   std::memory_order_seq_cst);
  }
  epoch_->fetch_add(1, std::memory_order_seq_cst);
  epoch_->notify_all();
  for (auto& slot : slots_)
    if (slot.worker.joinable()) slot.worker.join();
}

void WorkerPool::spawn(CoreSlot& slot, int core_id) {
  slot.spawned = true;
  spawned_.fetch_add(1, std::memory_order_relaxed);
  const bool bind = options_.bind_threads;
  slot.worker = std::thread([this, &slot, core_id, bind] {
    if (bind) try_bind_to_core(core_id);
    worker_main(slot);
  });
}

u64 WorkerPool::wait_for_dispatch(Dock& dock, u64 seen) {
  u64 g = dock.gen.load(std::memory_order_acquire);
  if (g != seen) return g;

  if (spin_then_yield(
          [&] {
            g = dock.gen.load(std::memory_order_acquire);
            return g != seen;
          },
          spin_budget_, yield_budget_))
    return g;

  // Same Dekker pairing as Team::wait_for_dispatch — register as sleeper,
  // re-check the dock, then sleep on the shared epoch. With several
  // masters the epoch advances on every dispatch by anybody, so a worker
  // may wake for a job that is not its own; it simply re-checks its dock
  // and sleeps again (spurious wakes are correctness-neutral).
  for (;;) {
    const u64 e = epoch_->load(std::memory_order_seq_cst);
    sleepers_->fetch_add(1, std::memory_order_seq_cst);
    g = dock.gen.load(std::memory_order_seq_cst);
    if (g != seen) {
      sleepers_->fetch_sub(1, std::memory_order_relaxed);
      return g;
    }
    epoch_->wait(e, std::memory_order_seq_cst);
    sleepers_->fetch_sub(1, std::memory_order_relaxed);
  }
}

void WorkerPool::worker_main(CoreSlot& slot) {
  Dock& dock = *slot.dock;
  u64 seen = 0;
  for (;;) {
    const u64 g = wait_for_dispatch(dock, seen);
    if (shutting_down_.load(std::memory_order_acquire)) return;
    // Window fields were written before the generation's release-store; the
    // acquire read in wait_for_dispatch makes them visible. Every
    // generation in (seen, g] belongs to the same window: a new window is
    // opened only after the previous one fully completed, which requires
    // this worker to have drained all of its generations first.
    PoolJob& job = *dock.job;
    const int tid = dock.tid;
    const u64 base_gen = dock.base_gen;
    const u64 base_seq = dock.base_seq;
    for (u64 gen = seen + 1; gen <= g; ++gen) {
      const u64 seq = base_seq + (gen - base_gen);
      PoolJob::Entry& entry = job.entry_of(seq);
      if (entry.dep_seq != 0) {
        wait_entry(job, entry.dep_seq);
        // A cancelled predecessor cancels its dependents (see
        // rt/team.cc worker_main for the full argument).
        if (job.entry_of(entry.dep_seq).gate.was_cancelled(entry.dep_seq))
          entry.token.cancel(CancelReason::kDependency);
      }
      participate(*job.layout, *entry.sched, *entry.body, tid,
                  slot.throttle, &entry.token);
      entry.gate.check_in(seq, entry.token.cancelled());
    }
    seen = g;
  }
}

void WorkerPool::participate(const platform::TeamLayout& layout,
                             sched::LoopScheduler& sched,
                             const rt::RangeBody& body, int tid,
                             const rt::Throttle& throttle,
                             CancelToken* token) {
  sched::ThreadContext tc{
      .tid = tid,
      .core_type = layout.core_type_of(tid),
      .speed = layout.speed_of(tid),
      .shard = sched.home_shard_of(tid),
      .time = sf_clock_,
      .cancel = token,
  };
  const rt::WorkerInfo info{tid, tc.core_type, tc.speed};
  const bool fault_on = fault::enabled();

  sched::IterRange r;
  while (sched.next(tc, r)) {
    const Nanos t0 = clock_.now();
    // Capture shim, identical to Team::participate: the first exception
    // per construct is stashed in the token (atomic claim), cancels the
    // construct, and never unwinds past the dock loop.
    try {
      if (fault_on) [[unlikely]]
        fault::before_chunk(tid, r.begin, r.end);
      body(r.begin, r.end, info);
    } catch (...) {
      if (token != nullptr) token->capture(std::current_exception());
    }
    throttle.pay(clock_.now() - t0);
  }
}

void WorkerPool::open_window(const platform::TeamLayout& layout, PoolJob& job,
                             u64 seq0) {
  if (options_.bind_threads) try_bind_to_core(layout.core_of(0));
  job.layout = &layout;
  for (int tid = 1; tid < layout.nthreads(); ++tid) {
    CoreSlot& slot = slots_[static_cast<usize>(layout.core_of(tid))];
    Dock& dock = *slot.dock;
    dock.job = &job;
    dock.tid = tid;
    dock.base_gen = dock.gen.load(std::memory_order_relaxed) + 1;
    dock.base_seq = seq0;
  }
}

void WorkerPool::publish_entry(const platform::TeamLayout& layout) {
  const int n = layout.nthreads();
  if (n <= 1) return;  // single-core partition: the master runs alone
  for (int tid = 1; tid < n; ++tid) {
    CoreSlot& slot = slots_[static_cast<usize>(layout.core_of(tid))];
    Dock& dock = *slot.dock;
    dock.gen.store(dock.gen.load(std::memory_order_relaxed) + 1,
                   std::memory_order_seq_cst);
    // Lazy spawn: the thread starts after the dock is published, so its
    // first acquire read already sees the window (thread creation orders
    // the prior stores).
    if (!slot.spawned) spawn(slot, layout.core_of(tid));
  }
  epoch_->fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_->load(std::memory_order_seq_cst) != 0) epoch_->notify_all();
}

void WorkerPool::run_entry_master(const platform::TeamLayout& layout,
                                  PoolJob& job, u64 seq) {
  PoolJob::Entry& entry = job.entry_of(seq);
  if (entry.dep_seq != 0) {
    wait_entry(job, entry.dep_seq);
    if (job.entry_of(entry.dep_seq).gate.was_cancelled(entry.dep_seq))
      entry.token.cancel(CancelReason::kDependency);
  }
  participate(layout, *entry.sched, *entry.body, /*tid=*/0,
              slots_[static_cast<usize>(layout.core_of(0))].throttle,
              &entry.token);
  entry.gate.check_in(seq, entry.token.cancelled());
}

std::exception_ptr WorkerPool::run_loop(
    const platform::TeamLayout& layout, i64 count,
    sched::LoopScheduler& sched, const rt::RangeBody& body, PoolJob& job,
    const CancelToken* parent_a, const CancelToken* parent_b,
    rt::Watchdog* watchdog, i64 deadline_ns) {
  AID_CHECK(count >= 0);
  const int n = layout.nthreads();
  AID_CHECK_MSG(n >= 1, "empty partition");

  if (n == 1 || count == 0) {
    // Serial fast path: a single-core partition (or an empty loop) has
    // nothing to dispatch — the master participates alone, with no entry
    // ring traffic at all. (The dispatching path binds the master in
    // open_window instead.)
    if (options_.bind_threads) try_bind_to_core(layout.core_of(0));
    CancelToken token;
    token.bind(parent_a, parent_b);
    u64 wd = 0;
    if (watchdog != nullptr && deadline_ns > 0)
      wd = watchdog->arm(&token, nullptr, 0, deadline_ns,
                         "pool construct (serial)");
    participate(layout, sched, body, /*tid=*/0,
                slots_[static_cast<usize>(layout.core_of(0))].throttle,
                &token);
    if (wd != 0) watchdog->disarm(wd);
    return token.error();
  }

  // A one-entry window. The ring reuse guard holds because every previous
  // construct on this job was flushed before its run returned.
  const u64 seq = job.next_seq++;
  PoolJob::Entry& entry = job.entry_of(seq);
  AID_DCHECK(seq <= PoolJob::kChainRing ||
             entry.gate.complete(seq - PoolJob::kChainRing));
  entry.sched = &sched;
  entry.body = &body;
  entry.dep_seq = 0;
  entry.token.reset();
  entry.token.bind(parent_a, parent_b);
  entry.gate.arm(n, seq);
  open_window(layout, job, seq);
  u64 wd = 0;
  if (watchdog != nullptr && deadline_ns > 0)
    wd = watchdog->arm(&entry.token, &entry.gate, seq, deadline_ns,
                       "pool construct",
                       make_watchdog_dump(layout, sched, seq));
  publish_entry(layout);
  run_entry_master(layout, job, seq);
  wait_entry(job, seq);
  if (wd != 0) watchdog->disarm(wd);
  return entry.token.error();
}

rt::Watchdog::DumpFn WorkerPool::make_watchdog_dump(
    const platform::TeamLayout& layout, const sched::LoopScheduler& sched,
    u64 seq) const {
  return [this, &layout, &sched, seq](std::FILE* f) {
    std::fprintf(f, "  scheduler: %.*s remaining=%lld\n",
                 static_cast<int>(sched.name().size()), sched.name().data(),
                 static_cast<long long>(sched.remaining()));
    for (int tid = 1; tid < layout.nthreads(); ++tid) {
      const Dock& dock =
          *slots_[static_cast<usize>(layout.core_of(tid))].dock;
      std::fprintf(
          f, "  core %d (tid %d): dock generation %llu (entry %llu)\n",
          layout.core_of(tid), tid,
          static_cast<unsigned long long>(
              dock.gen.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(seq));
    }
  };
}

}  // namespace aid::pool
