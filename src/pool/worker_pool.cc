#include "pool/worker_pool.h"

#include "common/affinity.h"
#include "common/check.h"
#include "common/env.h"
#include "common/spin_wait.h"

namespace aid::pool {

WorkerPool::WorkerPool(const platform::Platform& platform, Options options)
    : platform_(platform),
      options_(options),
      sf_clock_(options.sf_cpu_time
                    ? static_cast<const TimeSource*>(&cpu_clock_)
                    : static_cast<const TimeSource*>(&clock_)),
      slots_(static_cast<usize>(platform_.num_cores())),
      spin_budget_(static_cast<i32>(env::get_int(
          "AID_FORKJOIN_SPIN", default_spin_budget(platform_.num_cores())))),
      yield_budget_(static_cast<i32>(env::get_int(
          "AID_FORKJOIN_YIELD",
          default_yield_budget(platform_.num_cores())))) {
  const double max_speed =
      platform_.speed_of_type(platform_.num_core_types() - 1);
  for (int core = 0; core < platform_.num_cores(); ++core)
    slots_[static_cast<usize>(core)].throttle = rt::Throttle(
        max_speed / platform_.speed_of_core(core), options_.emulate_amp);
}

WorkerPool::~WorkerPool() {
  // Cold path, mirroring Team's shutdown: bump every spawned dock and
  // broadcast on the shared epoch. Workers check shutting_down_ before
  // touching job fields. The PoolManager guarantees no loop is in flight.
  shutting_down_.store(true, std::memory_order_seq_cst);
  for (auto& slot : slots_) {
    if (!slot.spawned) continue;
    Dock& dock = *slot.dock;
    dock.gen.store(dock.gen.load(std::memory_order_relaxed) + 1,
                   std::memory_order_seq_cst);
  }
  epoch_->fetch_add(1, std::memory_order_seq_cst);
  epoch_->notify_all();
  for (auto& slot : slots_)
    if (slot.worker.joinable()) slot.worker.join();
}

void WorkerPool::spawn(CoreSlot& slot, int core_id) {
  slot.spawned = true;
  spawned_.fetch_add(1, std::memory_order_relaxed);
  const bool bind = options_.bind_threads;
  slot.worker = std::thread([this, &slot, core_id, bind] {
    if (bind) try_bind_to_core(core_id);
    worker_main(slot);
  });
}

u64 WorkerPool::wait_for_dispatch(Dock& dock, u64 seen) {
  u64 g = dock.gen.load(std::memory_order_acquire);
  if (g != seen) return g;

  if (spin_then_yield(
          [&] {
            g = dock.gen.load(std::memory_order_acquire);
            return g != seen;
          },
          spin_budget_, yield_budget_))
    return g;

  // Same Dekker pairing as Team::wait_for_dispatch — register as sleeper,
  // re-check the dock, then sleep on the shared epoch. With several
  // masters the epoch advances on every dispatch by anybody, so a worker
  // may wake for a job that is not its own; it simply re-checks its dock
  // and sleeps again (spurious wakes are correctness-neutral).
  for (;;) {
    const u64 e = epoch_->load(std::memory_order_seq_cst);
    sleepers_->fetch_add(1, std::memory_order_seq_cst);
    g = dock.gen.load(std::memory_order_seq_cst);
    if (g != seen) {
      sleepers_->fetch_sub(1, std::memory_order_relaxed);
      return g;
    }
    epoch_->wait(e, std::memory_order_seq_cst);
    sleepers_->fetch_sub(1, std::memory_order_relaxed);
  }
}

void WorkerPool::worker_main(CoreSlot& slot) {
  Dock& dock = *slot.dock;
  u64 seen = 0;
  for (;;) {
    seen = wait_for_dispatch(dock, seen);
    if (shutting_down_.load(std::memory_order_acquire)) return;
    // job/tid were written before the generation's release-store; the
    // acquire read in wait_for_dispatch makes them visible.
    PoolJob& job = *dock.job;
    participate(job, dock.tid, slot.throttle);
    if (job.unfinished->fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        job.master_parked->load(std::memory_order_seq_cst))
      job.unfinished->notify_one();
  }
}

void WorkerPool::participate(PoolJob& job, int tid,
                             const rt::Throttle& throttle) {
  const platform::TeamLayout& layout = *job.layout;
  sched::ThreadContext tc{
      .tid = tid,
      .core_type = layout.core_type_of(tid),
      .speed = layout.speed_of(tid),
      .time = sf_clock_,
  };
  const rt::WorkerInfo info{tid, tc.core_type, tc.speed};

  sched::IterRange r;
  while (job.sched->next(tc, r)) {
    const Nanos t0 = clock_.now();
    (*job.body)(r.begin, r.end, info);
    throttle.pay(clock_.now() - t0);
  }
}

void WorkerPool::join(PoolJob& job) {
  std::atomic<int>& unfinished = *job.unfinished;
  int n = unfinished.load(std::memory_order_acquire);
  if (n == 0) return;

  if (spin_then_yield(
          [&] { return unfinished.load(std::memory_order_acquire) == 0; },
          spin_budget_, yield_budget_))
    return;

  job.master_parked->store(true, std::memory_order_seq_cst);
  for (;;) {
    n = unfinished.load(std::memory_order_seq_cst);
    if (n == 0) break;
    unfinished.wait(n, std::memory_order_seq_cst);
  }
  job.master_parked->store(false, std::memory_order_relaxed);
}

void WorkerPool::run_loop(const platform::TeamLayout& layout, i64 count,
                          sched::LoopScheduler& sched,
                          const rt::RangeBody& body, PoolJob& job) {
  AID_CHECK(count >= 0);
  const int n = layout.nthreads();
  AID_CHECK_MSG(n >= 1, "empty partition");

  job.sched = &sched;
  job.body = &body;
  job.layout = &layout;

  CoreSlot& master_slot = slots_[static_cast<usize>(layout.core_of(0))];
  if (options_.bind_threads) try_bind_to_core(layout.core_of(0));

  if (n == 1 || count == 0) {
    // Serial fast path: a single-core partition (or an empty loop) has
    // nothing to dispatch — the master participates alone.
    participate(job, /*tid=*/0, master_slot.throttle);
  } else {
    job.unfinished->store(n - 1, std::memory_order_relaxed);
    for (int tid = 1; tid < n; ++tid) {
      CoreSlot& slot = slots_[static_cast<usize>(layout.core_of(tid))];
      Dock& dock = *slot.dock;
      dock.job = &job;
      dock.tid = tid;
      dock.gen.store(dock.gen.load(std::memory_order_relaxed) + 1,
                     std::memory_order_seq_cst);
      // Lazy spawn: the thread starts after the dock is published, so its
      // first acquire read already sees the job (thread creation orders
      // the prior stores).
      if (!slot.spawned) spawn(slot, layout.core_of(tid));
    }
    epoch_->fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_->load(std::memory_order_seq_cst) != 0) epoch_->notify_all();

    participate(job, /*tid=*/0, master_slot.throttle);
    join(job);
  }

  job.sched = nullptr;
  job.body = nullptr;
  job.layout = nullptr;
}

}  // namespace aid::pool
