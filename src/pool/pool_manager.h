// Process-wide pool manager: apps lease core partitions from one shared
// worker pool (the paper's Sec. 4.3 / Sec. 5C multi-application scenario,
// with the PoolManager playing the OS's arbitration role).
//
// Each registered application holds an AppHandle — a lease on a subset of
// the machine's cores, expressed as a TeamLayout so the AID schedulers
// consume it unchanged. The manager arbitrates cores across apps with a
// pool::Policy and *repartitions dynamically*: targets are recomputed on
// every registration/unregistration/policy change, and each app adopts its
// new allotment at a loop boundary (or immediately while idle). Thanks to
// the worker pool's generation-dock dispatch, a revoked core involves no
// thread teardown — its worker just stops receiving that app's jobs.
//
// The Sec. 4.3 shared-region view is exposed per app: a SharedAllotment
// (rt/os_bridge.h seqlock) that the manager publishes {threads_on_big}
// into on every adoption, so external observers poll placement lock-free
// exactly as they would poll a kernel shared page.
//
// See src/pool/README.md for the design note (arbitration policies and
// the revoke-at-loop-boundary invariant).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "platform/platform.h"
#include "platform/team_layout.h"
#include "pool/policy.h"
#include "pool/worker_pool.h"
#include "rt/os_bridge.h"
#include "rt/team.h"
#include "rt/watchdog.h"
#include "sched/schedule_spec.h"
#include "sched/scheduler_cache.h"
#include "sched/shard_topology.h"

namespace aid::pipeline {
class LoopChain;
}  // namespace aid::pipeline

namespace aid::pool {

class PoolManager;

/// Per-app {big, small} thread counts — the Sec. 4.3 shared-region view.
struct AppAllotment {
  int threads_on_big = 0;
  int threads_on_small = 0;
  [[nodiscard]] int total() const { return threads_on_big + threads_on_small; }
};

/// Cumulative usage of one lease since registration: constructs executed
/// and wall time spent inside them (including any loop-boundary wait for a
/// pending grant — that wait is part of what the tenant experienced). A
/// multi-tenant layer above the pool (src/serve/) reads this to account
/// usage per tenant without instrumenting every body.
struct LeaseStats {
  u64 loops = 0;    ///< run_loop constructs completed
  u64 chains = 0;   ///< run_chain constructs completed
  Nanos busy_ns = 0;  ///< wall time spent inside those constructs
};

/// An application's lease on a pool partition. Move-only; releasing (or
/// destroying) the handle returns the cores to the pool and triggers a
/// repartition among the remaining apps. All methods are thread-safe
/// against the manager, but one handle must not run concurrent loops.
class AppHandle {
 public:
  AppHandle() = default;
  ~AppHandle();

  AppHandle(AppHandle&& other) noexcept;
  AppHandle& operator=(AppHandle&& other) noexcept;
  AppHandle(const AppHandle&) = delete;
  AppHandle& operator=(const AppHandle&) = delete;

  /// Execute `count` canonical iterations on the current partition.
  /// Adopts any pending repartition first (the loop boundary), then blocks
  /// until the partition's implicit barrier completes.
  ///
  /// Failure domain (src/rt/README.md "Failure model"): spec.cancel /
  /// spec.deadline_ns / cancel() cancel cooperatively at chunk-take
  /// boundaries; a throwing body rethrows HERE after the barrier closed
  /// and the lease's loop state was released, so the lease (and its
  /// co-tenants) stay fully usable afterwards.
  void run_loop(i64 count, const sched::ScheduleSpec& spec,
                const rt::RangeBody& body);

  /// Execute a chain of loops with nowait semantics on the leased
  /// partition (see rt::Team::run_chain): partition members flow from loop
  /// k to loop k+1 without an inter-construct barrier, and pending
  /// repartitions are committed *between ring entries* — the chain drains
  /// its published loops, adopts the new partition, and continues — rather
  /// than only between whole chains. Blocks until every loop completes.
  void run_chain(const pipeline::LoopChain& chain);

  /// Per-iteration convenience over a user iteration space.
  template <typename F>
  void parallel_for(i64 start, i64 end, i64 step,
                    const sched::ScheduleSpec& spec, F&& f) {
    const sched::IterationSpace space(start, end, step);
    run_loop(space.count(), spec,
             [&space, &f](i64 b, i64 e, const rt::WorkerInfo& w) {
               for (i64 c = b; c < e; ++c) f(space.value_of(c), w);
             });
  }

  /// Pin the current partition until end_region(): pending grants/revokes
  /// are adopted now and then deferred until the region closes, so a
  /// multi-loop construct (e.g. a GOMP parallel region) sees one stable
  /// layout. Returns that layout; the reference stays valid for the
  /// region's duration.
  const platform::TeamLayout& begin_region();
  void end_region();

  /// Snapshot of the current partition layout.
  [[nodiscard]] platform::TeamLayout layout() const;
  /// {threads_on_big, threads_on_small} of the current partition.
  [[nodiscard]] AppAllotment allotment() const;
  /// Lock-free Sec. 4.3 shared-region view (epoch bumps on repartition).
  [[nodiscard]] const rt::SharedAllotment& shared() const;
  [[nodiscard]] sched::SchedulerStats last_loop_stats() const;
  /// Cumulative constructs + wall time this lease has executed (see
  /// LeaseStats). Monotonic; survives repartitions and policy changes.
  [[nodiscard]] LeaseStats lease_stats() const;
  [[nodiscard]] int nthreads() const { return allotment().total(); }

  /// The lease's per-shape scheduler cache (sched/scheduler_cache.h):
  /// every construct on this partition — run_loop, chain entries, GOMP
  /// work shares — re-arms a cached instance instead of building one. The
  /// manager invalidates it whenever the partition moves (cached
  /// instances bake in the old layout's thread count and shard topology),
  /// so hold the reference only while a loop or region pins the layout.
  [[nodiscard]] sched::SchedulerCache& scheduler_cache();

  /// Shard topology of the current partition (rebuilt with the layout on
  /// every adoption). Same validity contract as the layout reference from
  /// begin_region(): hold it only while a loop or region pins the
  /// partition.
  [[nodiscard]] const sched::ShardTopology& shard_topology() const;

  /// Cancel the construct currently in flight on this lease (run_loop or
  /// every in-flight entry of a run_chain), cooperatively: participants
  /// observe it at their next chunk-take boundary and the construct
  /// returns normally with the remaining iterations dropped. Callable
  /// from any thread. The lease's token is re-armed at the next
  /// construct's entry, so a cancel that loses the race with that entry
  /// is a no-op (cooperative semantics — there is nothing to cancel yet).
  void cancel();

  [[nodiscard]] bool valid() const { return mgr_ != nullptr; }
  /// Early unregister (idempotent; the destructor calls it too).
  void release();

 private:
  friend class PoolManager;
  AppHandle(PoolManager* mgr, u64 id) : mgr_(mgr), id_(id) {}

  PoolManager* mgr_ = nullptr;
  u64 id_ = 0;
};

class PoolManager {
 public:
  struct Config {
    Policy policy = Policy::kEqualShare;
    bool emulate_amp = true;
    bool bind_threads = false;
    bool sf_cpu_time = false;
  };

  /// The lazily-initialized process-wide manager, configured from the
  /// environment (AID_PLATFORM, AID_POOL_POLICY, AID_EMULATE_AMP, ...).
  static PoolManager& instance();

  /// Construct an isolated manager (tests, multi-pool experiments).
  PoolManager(platform::Platform platform, Config config);
  explicit PoolManager(platform::Platform platform)
      : PoolManager(std::move(platform), Config()) {}
  ~PoolManager();

  PoolManager(const PoolManager&) = delete;
  PoolManager& operator=(const PoolManager&) = delete;

  /// Register an application; returns its lease. `weight` feeds the
  /// proportional / big-core-priority policies. Registration triggers a
  /// repartition; the new app's cores materialize as co-running apps reach
  /// loop boundaries (immediately when they are idle).
  [[nodiscard]] AppHandle register_app(std::string name, double weight = 1.0);

  /// Switch arbitration policy and repartition.
  void set_policy(Policy policy);
  [[nodiscard]] Policy policy() const;

  /// Recompute every app's target allotment and commit for idle apps.
  void repartition();

  [[nodiscard]] const platform::Platform& platform() const {
    return platform_;
  }
  [[nodiscard]] int registered_apps() const;
  /// Worker threads spawned so far (monotonic: workers persist across
  /// repartitions). With stable partitions this is num_cores - apps
  /// (masters participate); under master-core migration it can grow up to
  /// num_cores - 1 — the globally fastest core is always some partition's
  /// master, so it never spawns. Versus apps * (num_cores - 1) workers
  /// for private per-app teams.
  [[nodiscard]] int spawned_workers() const {
    return pool_.spawned_workers();
  }
  /// spawned workers + registered app threads: the pool's total footprint.
  [[nodiscard]] int total_threads() const;

 private:
  friend class AppHandle;

  struct App {
    u64 id = 0;
    std::string name;
    double weight = 1.0;
    std::vector<int> current;  ///< owned core ids (sorted)
    std::vector<int> pending;  ///< target core ids (sorted)
    bool in_loop = false;
    int region_depth = 0;  ///< begin_region nesting; >0 defers adoption
    std::unique_ptr<platform::TeamLayout> layout;  // built over `current`
    /// Shard topology of `layout`, rebuilt with it in adopt() so the
    /// per-construct path does not re-derive it (env read + allocation)
    /// on every loop.
    std::unique_ptr<sched::ShardTopology> topo;
    /// Per-shape scheduler cache for this lease; invalidated in adopt()
    /// whenever the partition actually moves.
    std::unique_ptr<sched::SchedulerCache> cache;
    // Externally-referenced state (workers touch the job's completion
    // words briefly after the app's last join; observers may hold a
    // shared() reference past release). Recycled through retired_ on
    // unregister, never freed before the manager — so a stale shared()
    // reference reads a recycled seqlock (possibly a later app's
    // allotment, epochs still monotonic), not freed memory.
    std::unique_ptr<rt::SharedAllotment> shared;
    std::unique_ptr<PoolJob> job;
    sched::SchedulerStats last_stats;
    LeaseStats lease_stats;  ///< accumulated at every construct's exit
    /// The lease-wide cancellation parent (AppHandle::cancel): every
    /// construct on this lease binds its per-entry token to it. Reset at
    /// each construct's entry (under mutex_, before anything is
    /// published), so one cancel kills at most one construct.
    CancelToken cancel_token;
  };

  /// Recycled externally-referenced state (see App); bounds allocation at
  /// the peak concurrent app count under register/release churn.
  struct Retired {
    std::unique_ptr<rt::SharedAllotment> shared;
    std::unique_ptr<PoolJob> job;
  };

  App& app_of(u64 id);
  const App& app_of(u64 id) const;
  /// Recompute `pending` for every app from the policy (mutex held).
  void compute_targets();
  /// `pending` minus cores other apps still hold (mutex held).
  [[nodiscard]] std::vector<int> achievable_of(const App& app) const;
  /// Would adopt() change this app's partition right now? (mutex held;
  /// the chain executor's mid-chain commit probe).
  [[nodiscard]] bool can_adopt_now(const App& app) const;
  /// current := pending minus cores held by others; rebuild layout and
  /// publish the shared allotment when it changed (mutex held).
  void adopt(App& app);
  /// Fixpoint adoption over all idle, region-free apps (mutex held):
  /// shrinks free cores, which lets subsequent grows succeed.
  void commit_idle();

  void run_loop(u64 id, i64 count, const sched::ScheduleSpec& spec,
                const rt::RangeBody& body);
  void run_chain(u64 id, const pipeline::LoopChain& chain);
  void unregister(u64 id);

  platform::Platform platform_;
  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable granted_;  ///< signaled when cores are released
  // apps_/retired_ are declared BEFORE pool_ deliberately: destruction
  // runs in reverse, so ~WorkerPool joins every worker before any PoolJob
  // is freed. A worker's last act on an entry is the completion gate's
  // check_in (an atomic read of the waiters word can still be in flight
  // when the master's wait returns) — freeing the job before the join is
  // a use-after-free the CI tsan leg catches.
  std::map<u64, std::unique_ptr<App>> apps_;  // keyed by registration order
  std::vector<Retired> retired_;
  WorkerPool pool_;
  /// Deadline watchdog shared by every lease (lazy thread; armed only for
  /// deadline'd specs). Declared after pool_ so it is destroyed FIRST:
  /// its monitor thread may read entry gates/tokens inside PoolJobs,
  /// which outlive it (apps_/retired_ are destroyed after pool_).
  rt::Watchdog watchdog_;
  u64 next_id_ = 1;
  u64 allotment_epoch_ = 0;  ///< bumps on every adoption that changed cores
  /// Bumps (under mutex_) whenever targets are recomputed or any app's
  /// partition moves — everything that can change can_adopt_now() for
  /// anybody. Lets run_chain's per-entry commit probe stay lock-free
  /// until something actually happened.
  std::atomic<u64> targets_epoch_{0};
};

}  // namespace aid::pool
