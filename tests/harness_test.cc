// harness/: configs, measurement protocol, figure assembly, gain summaries.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/experiment.h"
#include "harness/figure_printer.h"

namespace aid::harness {
namespace {

ExperimentParams tiny_params(const platform::Platform& p) {
  ExperimentParams params;
  params.overhead = overhead_for(p);
  params.scale = 0.05;
  params.runs = 5;
  return params;
}

TEST(StandardConfigs, MatchPaperLegend) {
  const auto configs = standard_configs();
  ASSERT_EQ(configs.size(), 7u);
  EXPECT_EQ(configs[0].label, "static(SB)");
  EXPECT_EQ(configs[0].mapping, platform::Mapping::kSmallFirst);
  EXPECT_EQ(configs[1].label, "static(BS)");
  EXPECT_EQ(configs[6].label, "AID-dynamic");
  // All AID variants use the BS mapping (paper Sec. 4.3).
  for (usize i = 4; i < 7; ++i)
    EXPECT_EQ(configs[i].mapping, platform::Mapping::kBigFirst)
        << configs[i].label;
  // Paper defaults: AID-hybrid 80%, AID-dynamic (m=1, M=5).
  EXPECT_DOUBLE_EQ(configs[5].spec.hybrid_percent, 80.0);
  EXPECT_EQ(configs[6].spec.major_chunk, 5);
}

TEST(OverheadFor, SelectsPresetByPlatform) {
  const auto a = overhead_for(platform::odroid_xu4());
  const auto b = overhead_for(platform::xeon_emulated_amp());
  // The Odroid's dominant dynamic-scheduling cost is locality loss (tiny
  // caches, slow LPDDR3); the Xeon pays relatively more bookkeeping.
  EXPECT_GT(a.locality_penalty_ns, b.locality_penalty_ns);
  EXPECT_GT(b.pool_removal_ns, a.pool_removal_ns);
}

TEST(Measure, ProtocolIsDeterministic) {
  const auto p = platform::odroid_xu4();
  const auto* ep = workloads::find_workload("EP");
  ASSERT_NE(ep, nullptr);
  const auto params = tiny_params(p);
  const auto config = standard_configs()[0];
  const auto m1 = measure(*ep, p, config, params);
  const auto m2 = measure(*ep, p, config, params);
  EXPECT_DOUBLE_EQ(m1.time_ns, m2.time_ns);
  EXPECT_GT(m1.time_ns, 0.0);
}

TEST(Measure, NoiseStaysSmall) {
  const auto p = platform::odroid_xu4();
  const auto* ep = workloads::find_workload("EP");
  auto params = tiny_params(p);
  const auto config = standard_configs()[0];
  const auto with_noise = measure(*ep, p, config, params);
  params.noise_sigma = 0.0;
  const auto without = measure(*ep, p, config, params);
  EXPECT_NEAR(with_noise.time_ns / without.time_ns, 1.0, 0.05);
}

TEST(RunFigure, NormalizedBaselineIsOne) {
  const auto p = platform::odroid_xu4();
  const std::vector<const workloads::Workload*> apps{
      workloads::find_workload("EP"), workloads::find_workload("IS")};
  const auto data =
      run_figure(apps, p, standard_configs(), tiny_params(p));
  ASSERT_EQ(data.app_names.size(), 2u);
  for (const auto& row : data.normalized)
    EXPECT_DOUBLE_EQ(row[0], 1.0) << "baseline column must be 1.0";
}

TEST(RunFigure, AidStaticBeatsStaticBsOnEp) {
  // The paper's headline qualitative result on a uniform high-SF loop.
  const auto p = platform::odroid_xu4();
  const std::vector<const workloads::Workload*> apps{
      workloads::find_workload("EP")};
  const auto data = run_figure(apps, p, standard_configs(), tiny_params(p));
  const usize aid = config_index(data, "AID-static");
  const usize bs = config_index(data, "static(BS)");
  EXPECT_GT(data.normalized[0][aid], data.normalized[0][bs]);
}

TEST(SummarizeGain, ComputesMeanAndGmean) {
  FigureData data;
  data.config_labels = {"a", "b"};
  data.time_ns = {{100.0, 50.0}, {100.0, 100.0}};  // +100% and 0% gains
  data.normalized = {{1.0, 2.0}, {1.0, 1.0}};
  data.app_names = {"x", "y"};
  data.app_suites = {"s", "s"};
  const auto g = summarize_gain(data, 1, 0, "b vs a");
  EXPECT_DOUBLE_EQ(g.mean_percent, 50.0);
  EXPECT_NEAR(g.gmean_percent, (std::sqrt(2.0) - 1.0) * 100.0, 1e-9);
}

TEST(OfflineSf, MatchesProfileSoloSf) {
  // The offline protocol measures the profile's solo SF (plus overhead
  // effects): for EP's single loop on Platform A, compute_fraction 0.93
  // gives SF ~ 1/(0.93/9 + 0.07/1.15).
  const auto p = platform::odroid_xu4();
  const auto* ep = workloads::find_workload("EP");
  const auto sf = measure_offline_sf(*ep, p, tiny_params(p));
  ASSERT_EQ(sf.size(), 1u);
  // Execution noise and runtime overhead perturb the measured ratio; the
  // solo-model prediction is 1/(0.93/9 + 0.07/1.15) ~ 6.1.
  EXPECT_NEAR(sf[0], 1.0 / (0.93 / 9.0 + 0.07 / 1.15), 1.2);
}

TEST(OnlineSf, ContendedLoopEstimatesLowerThanOffline) {
  // Fig. 9c: blackscholes' online (full-team) SF is far below the offline
  // (single-thread) SF on Platform A.
  const auto p = platform::odroid_xu4();
  const auto* bs = workloads::find_workload("blackscholes");
  auto params = tiny_params(p);
  const auto offline = measure_offline_sf(*bs, p, params);
  const auto online = measure_online_sf(*bs, p, params);
  ASSERT_EQ(offline.size(), online.size());
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_GT(offline[0], 4.0);
  EXPECT_LT(online[0], 2.6);
}

TEST(FigurePrinter, RendersSuitesAndGeomean) {
  const auto p = platform::odroid_xu4();
  const std::vector<const workloads::Workload*> apps{
      workloads::find_workload("EP"), workloads::find_workload("bfs")};
  const auto data = run_figure(apps, p, standard_configs(), tiny_params(p));
  std::ostringstream os;
  print_figure(os, data, "test title");
  const std::string out = os.str();
  EXPECT_NE(out.find("test title"), std::string::npos);
  EXPECT_NE(out.find("(NPB)"), std::string::npos);
  EXPECT_NE(out.find("(Rodinia)"), std::string::npos);
  EXPECT_NE(out.find("geomean"), std::string::npos);
}

}  // namespace
}  // namespace aid::harness
