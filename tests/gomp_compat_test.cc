// The libgomp-shaped ABI (rt/gomp_compat.h): code structured exactly like
// GCC's OpenMP expansion must run correctly with the environment-selected
// schedule — the paper's "recompile, don't rewrite" integration story.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/env.h"
#include "rt/gomp_compat.h"
#include "rt/runtime.h"

namespace aid::rt::gomp {
namespace {

// The global runtime reads the environment once; configure it before any
// test forks a team. A 4-thread emulation-free team keeps CI stable.
struct GlobalRuntimeConfigurator {
  GlobalRuntimeConfigurator() {
    ::setenv("AID_PLATFORM", "generic:2,2,3.0", 0);
    ::setenv("AID_NUM_THREADS", "4", 0);
    ::setenv("AID_SCHEDULE", "aid-static", 0);
    ::setenv("AID_EMULATE_AMP", "0", 0);
  }
};
const GlobalRuntimeConfigurator g_configure;

struct LoopCtx {
  std::vector<std::atomic<int>> hits;
  std::atomic<long> sum{0};
  explicit LoopCtx(usize n) : hits(n) {
    for (auto& h : hits) h.store(0);
  }
};

void gcc_style_loop_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, static_cast<long>(ctx->hits.size()), 1,
                                  &start, &end)) {
    do {
      for (long i = start; i < end; ++i)
        ctx->hits[static_cast<usize>(i)].fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, RuntimeScheduledLoopCoversEverythingOnce) {
  LoopCtx ctx(10000);
  aid_gomp_parallel(gcc_style_loop_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 1);
}

void strided_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  // for (i = 10; i < 100; i += 7): 13 iterations.
  if (aid_gomp_loop_runtime_start(10, 100, 7, &start, &end)) {
    do {
      for (long i = start; i != end; i += 7) ctx->sum.fetch_add(i);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, StridedLoopMapsUserCoordinates) {
  LoopCtx ctx(1);
  aid_gomp_parallel(strided_body, &ctx);
  long expected = 0;
  for (long i = 10; i < 100; i += 7) expected += i;
  EXPECT_EQ(ctx.sum.load(), expected);
}

void two_loops_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  for (int rep = 0; rep < 2; ++rep) {
    long start = 0;
    long end = 0;
    if (aid_gomp_loop_runtime_start(0, static_cast<long>(ctx->hits.size()), 1,
                                    &start, &end)) {
      do {
        for (long i = start; i < end; ++i)
          ctx->hits[static_cast<usize>(i)].fetch_add(1);
      } while (aid_gomp_loop_runtime_next(&start, &end));
    }
    aid_gomp_loop_end();
  }
}

TEST(GompCompat, ConsecutiveWorkSharesChainCorrectly) {
  LoopCtx ctx(2048);
  aid_gomp_parallel(two_loops_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 2);
}

void nowait_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, 512, 1, &start, &end)) {
    do {
      for (long i = start; i < end; ++i)
        ctx->hits[static_cast<usize>(i)].fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end_nowait();  // no barrier: threads proceed immediately
  aid_gomp_barrier();          // explicit barrier instead
}

TEST(GompCompat, NowaitPlusExplicitBarrier) {
  LoopCtx ctx(512);
  aid_gomp_parallel(nowait_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 1);
}

void team_query_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  ctx->hits[static_cast<usize>(aid_gomp_thread_num())].fetch_add(1);
  ctx->sum.store(aid_gomp_num_threads());
}

TEST(GompCompat, ThreadAndTeamQueries) {
  const int team_size = Runtime::instance().nthreads();
  LoopCtx ctx(static_cast<usize>(team_size));
  aid_gomp_parallel(team_query_body, &ctx);
  EXPECT_EQ(ctx.sum.load(), team_size);
  for (const auto& h : ctx.hits)
    EXPECT_EQ(h.load(), 1) << "every member runs fn exactly once";
}

TEST(GompCompat, SerialQueriesOutsideParallel) {
  EXPECT_EQ(aid_gomp_thread_num(), 0);
  EXPECT_EQ(aid_gomp_num_threads(), 1);
}

}  // namespace
}  // namespace aid::rt::gomp
