// The libgomp-shaped ABI (rt/gomp_compat.h): code structured exactly like
// GCC's OpenMP expansion must run correctly with the environment-selected
// schedule — the paper's "recompile, don't rewrite" integration story.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/env.h"
#include "rt/gomp_compat.h"
#include "rt/runtime.h"

namespace aid::rt::gomp {
namespace {

// The global runtime reads the environment once; configure it before any
// test forks a team. A 4-thread emulation-free team keeps CI stable.
struct GlobalRuntimeConfigurator {
  GlobalRuntimeConfigurator() {
    ::setenv("AID_PLATFORM", "generic:2,2,3.0", 0);
    ::setenv("AID_NUM_THREADS", "4", 0);
    ::setenv("AID_SCHEDULE", "aid-static", 0);
    ::setenv("AID_EMULATE_AMP", "0", 0);
  }
};
const GlobalRuntimeConfigurator g_configure;

struct LoopCtx {
  std::vector<std::atomic<int>> hits;
  std::atomic<long> sum{0};
  explicit LoopCtx(usize n) : hits(n) {
    for (auto& h : hits) h.store(0);
  }
};

void gcc_style_loop_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, static_cast<long>(ctx->hits.size()), 1,
                                  &start, &end)) {
    do {
      for (long i = start; i < end; ++i)
        ctx->hits[static_cast<usize>(i)].fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, RuntimeScheduledLoopCoversEverythingOnce) {
  LoopCtx ctx(10000);
  aid_gomp_parallel(gcc_style_loop_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 1);
}

void strided_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  // for (i = 10; i < 100; i += 7): 13 iterations.
  if (aid_gomp_loop_runtime_start(10, 100, 7, &start, &end)) {
    do {
      for (long i = start; i != end; i += 7) ctx->sum.fetch_add(i);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, StridedLoopMapsUserCoordinates) {
  LoopCtx ctx(1);
  aid_gomp_parallel(strided_body, &ctx);
  long expected = 0;
  for (long i = 10; i < 100; i += 7) expected += i;
  EXPECT_EQ(ctx.sum.load(), expected);
}

void two_loops_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  for (int rep = 0; rep < 2; ++rep) {
    long start = 0;
    long end = 0;
    if (aid_gomp_loop_runtime_start(0, static_cast<long>(ctx->hits.size()), 1,
                                    &start, &end)) {
      do {
        for (long i = start; i < end; ++i)
          ctx->hits[static_cast<usize>(i)].fetch_add(1);
      } while (aid_gomp_loop_runtime_next(&start, &end));
    }
    aid_gomp_loop_end();
  }
}

TEST(GompCompat, ConsecutiveWorkSharesChainCorrectly) {
  LoopCtx ctx(2048);
  aid_gomp_parallel(two_loops_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 2);
}

void nowait_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, 512, 1, &start, &end)) {
    do {
      for (long i = start; i < end; ++i)
        ctx->hits[static_cast<usize>(i)].fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end_nowait();  // no barrier: threads proceed immediately
  aid_gomp_barrier();          // explicit barrier instead
}

TEST(GompCompat, NowaitPlusExplicitBarrier) {
  LoopCtx ctx(512);
  aid_gomp_parallel(nowait_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 1);
}

// The nowait contract itself: a slow thread still inside work share k must
// not block a finished thread from entering (and completing its part of)
// work share k+1. Thread 0 finishes its chunks of loop k but then stalls
// *before its aid_gomp_loop_end_nowait* until some other thread has
// executed an iteration of loop k+1 — which is only possible if that
// thread's exit from loop k did not wait for thread 0. A barrier-flavored
// end_nowait would deadlock here; the bounded wait turns that into a
// test failure instead of a hang.
struct OverlapCtx {
  std::atomic<int> hits0{0};
  std::atomic<int> hits1{0};
  std::atomic<bool> peer_reached_next{false};
  std::atomic<bool> timed_out{false};
};

void nowait_overlap_body(void* data) {
  auto* ctx = static_cast<OverlapCtx*>(data);
  const int tid = aid_gomp_thread_num();
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, 64, 1, &start, &end)) {
    do {
      for (long i = start; i < end; ++i) ctx->hits0.fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  if (tid == 0) {
    // Straggle in loop k (chunks done, exit not yet signalled) until a
    // peer proves it ran loop k+1.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ctx->peer_reached_next.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() > deadline) {
        ctx->timed_out.store(true);
        break;
      }
      std::this_thread::yield();
    }
  }
  aid_gomp_loop_end_nowait();
  if (aid_gomp_loop_runtime_start(0, 64, 1, &start, &end)) {
    do {
      for (long i = start; i < end; ++i) {
        ctx->hits1.fetch_add(1);
        if (tid != 0)
          ctx->peer_reached_next.store(true, std::memory_order_release);
      }
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, NowaitDoesNotBlockRunAheadThreads) {
  OverlapCtx ctx;
  aid_gomp_parallel(nowait_overlap_body, &ctx);
  EXPECT_FALSE(ctx.timed_out.load())
      << "no peer entered loop k+1 while thread 0 straggled in loop k — "
         "nowait is blocking";
  EXPECT_EQ(ctx.hits0.load(), 64);
  EXPECT_EQ(ctx.hits1.load(), 64);
}

void team_query_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  ctx->hits[static_cast<usize>(aid_gomp_thread_num())].fetch_add(1);
  ctx->sum.store(aid_gomp_num_threads());
}

TEST(GompCompat, ThreadAndTeamQueries) {
  const int team_size = Runtime::instance().nthreads();
  LoopCtx ctx(static_cast<usize>(team_size));
  aid_gomp_parallel(team_query_body, &ctx);
  EXPECT_EQ(ctx.sum.load(), team_size);
  for (const auto& h : ctx.hits)
    EXPECT_EQ(h.load(), 1) << "every member runs fn exactly once";
}

TEST(GompCompat, SerialQueriesOutsideParallel) {
  EXPECT_EQ(aid_gomp_thread_num(), 0);
  EXPECT_EQ(aid_gomp_num_threads(), 1);
}

}  // namespace
}  // namespace aid::rt::gomp
