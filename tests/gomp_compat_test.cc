// The libgomp-shaped ABI (rt/gomp_compat.h): code structured exactly like
// GCC's OpenMP expansion must run correctly with the environment-selected
// schedule — the paper's "recompile, don't rewrite" integration story.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/env.h"
#include "platform/platform.h"
#include "rt/gomp_compat.h"
#include "rt/runtime.h"
#include "sched/scheduler_cache.h"
#include "sched/shard_topology.h"

namespace aid::rt::gomp {
namespace {

// The global runtime reads the environment once; configure it before any
// test forks a team. A 4-thread emulation-free team keeps CI stable.
struct GlobalRuntimeConfigurator {
  GlobalRuntimeConfigurator() {
    ::setenv("AID_PLATFORM", "generic:2,2,3.0", 0);
    ::setenv("AID_NUM_THREADS", "4", 0);
    ::setenv("AID_SCHEDULE", "aid-static", 0);
    ::setenv("AID_EMULATE_AMP", "0", 0);
  }
};
const GlobalRuntimeConfigurator g_configure;

struct LoopCtx {
  std::vector<std::atomic<int>> hits;
  std::atomic<long> sum{0};
  explicit LoopCtx(usize n) : hits(n) {
    for (auto& h : hits) h.store(0);
  }
};

void gcc_style_loop_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, static_cast<long>(ctx->hits.size()), 1,
                                  &start, &end)) {
    do {
      for (long i = start; i < end; ++i)
        ctx->hits[static_cast<usize>(i)].fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, RuntimeScheduledLoopCoversEverythingOnce) {
  LoopCtx ctx(10000);
  aid_gomp_parallel(gcc_style_loop_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 1);
}

void strided_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  // for (i = 10; i < 100; i += 7): 13 iterations.
  if (aid_gomp_loop_runtime_start(10, 100, 7, &start, &end)) {
    do {
      for (long i = start; i != end; i += 7) ctx->sum.fetch_add(i);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, StridedLoopMapsUserCoordinates) {
  LoopCtx ctx(1);
  aid_gomp_parallel(strided_body, &ctx);
  long expected = 0;
  for (long i = 10; i < 100; i += 7) expected += i;
  EXPECT_EQ(ctx.sum.load(), expected);
}

void two_loops_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  for (int rep = 0; rep < 2; ++rep) {
    long start = 0;
    long end = 0;
    if (aid_gomp_loop_runtime_start(0, static_cast<long>(ctx->hits.size()), 1,
                                    &start, &end)) {
      do {
        for (long i = start; i < end; ++i)
          ctx->hits[static_cast<usize>(i)].fetch_add(1);
      } while (aid_gomp_loop_runtime_next(&start, &end));
    }
    aid_gomp_loop_end();
  }
}

TEST(GompCompat, ConsecutiveWorkSharesChainCorrectly) {
  LoopCtx ctx(2048);
  aid_gomp_parallel(two_loops_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 2);
}

void nowait_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, 512, 1, &start, &end)) {
    do {
      for (long i = start; i < end; ++i)
        ctx->hits[static_cast<usize>(i)].fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end_nowait();  // no barrier: threads proceed immediately
  aid_gomp_barrier();          // explicit barrier instead
}

TEST(GompCompat, NowaitPlusExplicitBarrier) {
  LoopCtx ctx(512);
  aid_gomp_parallel(nowait_body, &ctx);
  for (const auto& h : ctx.hits) ASSERT_EQ(h.load(), 1);
}

// The nowait contract itself: a slow thread still inside work share k must
// not block a finished thread from entering (and completing its part of)
// work share k+1. Thread 0 finishes its chunks of loop k but then stalls
// *before its aid_gomp_loop_end_nowait* until some other thread has
// executed an iteration of loop k+1 — which is only possible if that
// thread's exit from loop k did not wait for thread 0. A barrier-flavored
// end_nowait would deadlock here; the bounded wait turns that into a
// test failure instead of a hang.
struct OverlapCtx {
  std::atomic<int> hits0{0};
  std::atomic<int> hits1{0};
  std::atomic<bool> peer_reached_next{false};
  std::atomic<bool> timed_out{false};
};

void nowait_overlap_body(void* data) {
  auto* ctx = static_cast<OverlapCtx*>(data);
  const int tid = aid_gomp_thread_num();
  long start = 0;
  long end = 0;
  if (aid_gomp_loop_runtime_start(0, 64, 1, &start, &end)) {
    do {
      for (long i = start; i < end; ++i) ctx->hits0.fetch_add(1);
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  if (tid == 0) {
    // Straggle in loop k (chunks done, exit not yet signalled) until a
    // peer proves it ran loop k+1.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ctx->peer_reached_next.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() > deadline) {
        ctx->timed_out.store(true);
        break;
      }
      std::this_thread::yield();
    }
  }
  aid_gomp_loop_end_nowait();
  if (aid_gomp_loop_runtime_start(0, 64, 1, &start, &end)) {
    do {
      for (long i = start; i < end; ++i) {
        ctx->hits1.fetch_add(1);
        if (tid != 0)
          ctx->peer_reached_next.store(true, std::memory_order_release);
      }
    } while (aid_gomp_loop_runtime_next(&start, &end));
  }
  aid_gomp_loop_end();
}

TEST(GompCompat, NowaitDoesNotBlockRunAheadThreads) {
  OverlapCtx ctx;
  aid_gomp_parallel(nowait_overlap_body, &ctx);
  EXPECT_FALSE(ctx.timed_out.load())
      << "no peer entered loop k+1 while thread 0 straggled in loop k — "
         "nowait is blocking";
  EXPECT_EQ(ctx.hits0.load(), 64);
  EXPECT_EQ(ctx.hits1.load(), 64);
}

// --- chain semantics: GOMP work shares on the generation ring --------------
//
// Consecutive nowait work shares now flow through a ring of kChainRing
// in-flight constructs (see src/rt/README.md "GOMP nowait chains"): these
// tests pin the ring's contract — exactly-once delivery across many more
// shares than the ring holds, run-ahead across several generations, the
// non-nowait barrier, and the per-shape scheduler cache behind it.

struct ChainCtx {
  static constexpr int kLoops = 20;  // > kChainRing: slots are reused
  static constexpr long kIters = 4096;
  std::vector<std::vector<std::atomic<int>>> hits;
  ChainCtx() : hits(kLoops) {
    for (auto& loop : hits) {
      std::vector<std::atomic<int>> fresh(kIters);
      for (auto& h : fresh) h.store(0);
      loop.swap(fresh);
    }
  }
};

void chained_nowait_body(void* data) {
  auto* ctx = static_cast<ChainCtx*>(data);
  for (int k = 0; k < ChainCtx::kLoops; ++k) {
    long start = 0;
    long end = 0;
    if (aid_gomp_loop_runtime_start(0, ChainCtx::kIters, 1, &start, &end)) {
      do {
        for (long i = start; i < end; ++i)
          ctx->hits[static_cast<usize>(k)][static_cast<usize>(i)].fetch_add(1);
      } while (aid_gomp_loop_runtime_next(&start, &end));
    }
    aid_gomp_loop_end_nowait();
  }
}

TEST(GompCompatChain, ManyNowaitLoopsDeliverExactlyOnce) {
  ChainCtx ctx;
  aid_gomp_parallel(chained_nowait_body, &ctx);
  for (int k = 0; k < ChainCtx::kLoops; ++k)
    for (long i = 0; i < ChainCtx::kIters; ++i)
      ASSERT_EQ(ctx.hits[static_cast<usize>(k)][static_cast<usize>(i)].load(),
                1)
          << "loop " << k << " iteration " << i;
}

// Run-ahead across *multiple* generations: thread 0 straggles inside work
// share 0 (chunks done, nowait exit withheld) until a peer proves it has
// executed an iteration of work share 2 — two ring generations ahead.
// Under the old single-live-work-share bookkeeping a peer could enter
// share 1 but the ring is what lets the whole team flow loop-to-loop; a
// blocking regression turns this into a bounded-wait failure, not a hang.
struct DeepOverlapCtx {
  std::atomic<int> hits[3] = {{0}, {0}, {0}};
  std::atomic<bool> peer_reached_third{false};
  std::atomic<bool> timed_out{false};
};

void deep_overlap_body(void* data) {
  auto* ctx = static_cast<DeepOverlapCtx*>(data);
  const int tid = aid_gomp_thread_num();
  for (int k = 0; k < 3; ++k) {
    long start = 0;
    long end = 0;
    if (aid_gomp_loop_runtime_start(0, 64, 1, &start, &end)) {
      do {
        for (long i = start; i < end; ++i) {
          ctx->hits[k].fetch_add(1);
          if (k == 2 && tid != 0)
            ctx->peer_reached_third.store(true, std::memory_order_release);
        }
      } while (aid_gomp_loop_runtime_next(&start, &end));
    }
    if (k == 0 && tid == 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (!ctx->peer_reached_third.load(std::memory_order_acquire)) {
        if (std::chrono::steady_clock::now() > deadline) {
          ctx->timed_out.store(true);
          break;
        }
        std::this_thread::yield();
      }
    }
    aid_gomp_loop_end_nowait();
  }
}

TEST(GompCompatChain, RunAheadThreadsOverlapMultipleGenerations) {
  if (Runtime::instance().nthreads() < 2)
    GTEST_SKIP() << "overlap needs a peer thread";
  DeepOverlapCtx ctx;
  aid_gomp_parallel(deep_overlap_body, &ctx);
  EXPECT_FALSE(ctx.timed_out.load())
      << "no peer executed work share 2 while thread 0 straggled in work "
         "share 0 — the ring is not letting threads run ahead";
  for (int k = 0; k < 3; ++k) EXPECT_EQ(ctx.hits[k].load(), 64);
}

// The non-nowait end is the construct's barrier: when aid_gomp_loop_end
// returns, *every* iteration of that work share — including other
// threads' — must have executed. A nowait-flavored end would let a
// fast thread observe a partially executed share here.
struct BarrierCtx {
  static constexpr long kIters = 2048;
  std::atomic<long> done_iters{0};
  std::atomic<int> short_counts{0};
};

void barriered_body(void* data) {
  auto* ctx = static_cast<BarrierCtx*>(data);
  for (int rep = 0; rep < 4; ++rep) {
    long start = 0;
    long end = 0;
    if (aid_gomp_loop_runtime_start(0, BarrierCtx::kIters, 1, &start, &end)) {
      do {
        for (long i = start; i < end; ++i) ctx->done_iters.fetch_add(1);
      } while (aid_gomp_loop_runtime_next(&start, &end));
    }
    aid_gomp_loop_end();
    if (ctx->done_iters.load() < (rep + 1) * BarrierCtx::kIters)
      ctx->short_counts.fetch_add(1);
  }
}

TEST(GompCompatChain, NonNowaitEndStillBarriers) {
  BarrierCtx ctx;
  aid_gomp_parallel(barriered_body, &ctx);
  EXPECT_EQ(ctx.short_counts.load(), 0)
      << "a thread returned from aid_gomp_loop_end before the work share "
         "fully completed";
  EXPECT_EQ(ctx.done_iters.load(), 4 * BarrierCtx::kIters);
}

// The per-shape scheduler cache (sched/scheduler_cache.h): repeated
// identical ScheduleSpecs re-arm the same instance instead of building a
// new one; distinct shapes, busy instances, and invalidation all miss.
TEST(GompCompatChain, SchedulerCacheReusesInstancesPerShape) {
  const auto platform = platform::generic_amp(2, 2, 2.0);
  const platform::TeamLayout layout(platform, 4,
                                    platform::Mapping::kBigFirst);
  const auto topo = sched::ShardTopology::from_layout(layout);
  sched::SchedulerCache cache;
  const auto spec = sched::ScheduleSpec::dynamic(16);

  sched::LoopScheduler* first = cache.acquire(spec, 1024, layout, topo);
  EXPECT_EQ(cache.misses(), 1u);
  // Same shape while the instance is busy: a second live instance.
  sched::LoopScheduler* second = cache.acquire(spec, 512, layout, topo);
  EXPECT_NE(first, second);
  EXPECT_EQ(cache.misses(), 2u);
  cache.release(first);
  cache.release(second);

  // Idle again: the same instance comes back, re-armed for the new count.
  sched::LoopScheduler* reused = cache.acquire(spec, 2048, layout, topo);
  EXPECT_TRUE(reused == first || reused == second);
  EXPECT_EQ(cache.hits(), 1u);
  cache.release(reused);

  // A different shape is a different cache line-age: no reuse.
  sched::LoopScheduler* other =
      cache.acquire(sched::ScheduleSpec::guided(4), 1024, layout, topo);
  EXPECT_NE(other, first);
  EXPECT_NE(other, second);
  cache.release(other);

  // Invalidation (a pool repartition) dooms cached instances.
  cache.invalidate();
  sched::LoopScheduler* fresh = cache.acquire(spec, 1024, layout, topo);
  EXPECT_EQ(cache.hits(), 1u) << "post-invalidate acquire must not hit";
  cache.release(fresh);

  // Invalidation with a lease IN FLIGHT (a repartition committing between
  // chain ring entries): the busy instance bakes in the dead layout, so
  // its release must destroy it — a later same-shape acquire is a miss,
  // never a repool of the doomed instance.
  sched::LoopScheduler* doomed = cache.acquire(spec, 1024, layout, topo);
  cache.invalidate();
  cache.release(doomed);
  const u64 hits_after_doom = cache.hits();
  sched::LoopScheduler* rebuilt = cache.acquire(spec, 1024, layout, topo);
  EXPECT_EQ(cache.hits(), hits_after_doom)
      << "a doomed lease was repooled across invalidate()";
  cache.release(rebuilt);
}

// End-to-end: the global runtime's cache serves repeated GOMP regions —
// the second region's work shares are all re-arms (every shape was seen
// and released by the first region's flush).
TEST(GompCompatChain, RepeatedRegionsHitTheRuntimeSchedulerCache) {
  ChainCtx warm;  // first region: populate the cache
  aid_gomp_parallel(chained_nowait_body, &warm);
  sched::SchedulerCache& cache = Runtime::instance().scheduler_cache();
  const u64 hits_before = cache.hits();
  const u64 misses_before = cache.misses();
  ChainCtx ctx;
  aid_gomp_parallel(chained_nowait_body, &ctx);
  EXPECT_GT(cache.hits(), hits_before)
      << "second identical region produced no cache hits";
  EXPECT_EQ(cache.misses(), misses_before)
      << "second identical region should be fully served from the cache";
}

void team_query_body(void* data) {
  auto* ctx = static_cast<LoopCtx*>(data);
  ctx->hits[static_cast<usize>(aid_gomp_thread_num())].fetch_add(1);
  ctx->sum.store(aid_gomp_num_threads());
}

TEST(GompCompat, ThreadAndTeamQueries) {
  const int team_size = Runtime::instance().nthreads();
  LoopCtx ctx(static_cast<usize>(team_size));
  aid_gomp_parallel(team_query_body, &ctx);
  EXPECT_EQ(ctx.sum.load(), team_size);
  for (const auto& h : ctx.hits)
    EXPECT_EQ(h.load(), 1) << "every member runs fn exactly once";
}

TEST(GompCompat, SerialQueriesOutsideParallel) {
  EXPECT_EQ(aid_gomp_thread_num(), 0);
  EXPECT_EQ(aid_gomp_num_threads(), 1);
}

}  // namespace
}  // namespace aid::rt::gomp
