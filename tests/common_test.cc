// common/: stats, rng, env, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace aid {
namespace {

TEST(Stats, MeanGmeanMedian) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats::gmean(xs), 2.0);
  EXPECT_DOUBLE_EQ(stats::median(xs), 2.0);
  const std::vector<double> even{1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(stats::mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(stats::gmean(xs), 0.0);
  EXPECT_DOUBLE_EQ(stats::median(xs), 0.0);
  EXPECT_DOUBLE_EQ(stats::stdev(xs), 0.0);
}

TEST(Stats, Stdev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stats::stdev(xs), 2.138, 1e-3);
}

TEST(Stats, WelfordMatchesBatch) {
  const std::vector<double> xs{3.1, 4.1, 5.9, 2.6, 5.3};
  stats::Welford w;
  for (double x : xs) w.add(x);
  EXPECT_EQ(w.count(), 5);
  EXPECT_NEAR(w.mean(), stats::mean(xs), 1e-12);
  EXPECT_NEAR(w.stdev(), stats::stdev(xs), 1e-12);
}

TEST(Stats, PaperProtocolDiscardsWarmup) {
  // Warm-up run is 100x slower; protocol must ignore it entirely.
  const std::vector<double> runs{1000.0, 10.0, 10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(stats::paper_protocol_time(runs), 10.0);
}

TEST(Stats, Normalize) {
  const std::vector<double> xs{2.0, 4.0};
  const auto n = stats::normalize(xs, 2.0);
  EXPECT_DOUBLE_EQ(n[0], 1.0);
  EXPECT_DOUBLE_EQ(n[1], 2.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 5.0);
    const i64 k = r.uniform_int(-3, 3);
    ASSERT_GE(k, -3);
    ASSERT_LE(k, 3);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(123);
  stats::Welford w;
  for (int i = 0; i < 20000; ++i) w.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(w.mean(), 5.0, 0.1);
  EXPECT_NEAR(w.stdev(), 2.0, 0.1);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng r(9);
  const double mu = std::log(100.0) - 0.5 * 0.3 * 0.3;
  stats::Welford w;
  for (int i = 0; i < 50000; ++i) w.add(r.lognormal(mu, 0.3));
  EXPECT_NEAR(w.mean(), 100.0, 2.0);
}

TEST(Env, ParseHelpers) {
  EXPECT_EQ(env::parse_int("42").value(), 42);
  EXPECT_EQ(env::parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(env::parse_int("4x"));
  EXPECT_FALSE(env::parse_int(""));
  EXPECT_DOUBLE_EQ(env::parse_double("2.5").value(), 2.5);
  EXPECT_FALSE(env::parse_double("nope"));
  EXPECT_TRUE(env::parse_bool("TRUE").value());
  EXPECT_TRUE(env::parse_bool("1").value());
  EXPECT_FALSE(env::parse_bool("off").value());
  EXPECT_FALSE(env::parse_bool("maybe"));
}

TEST(Env, SplitList) {
  const auto parts = env::split_list("a, b,,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Env, ScopedSetRestores) {
  ASSERT_FALSE(env::get("AID_TEST_VARIABLE"));
  {
    env::ScopedSet guard("AID_TEST_VARIABLE", "inner");
    EXPECT_EQ(env::get("AID_TEST_VARIABLE").value(), "inner");
    EXPECT_EQ(env::get_string("AID_TEST_VARIABLE", "d"), "inner");
  }
  EXPECT_FALSE(env::get("AID_TEST_VARIABLE"));
}

TEST(Env, TypedGettersFallBack) {
  env::ScopedSet guard("AID_TEST_INT", "not-a-number");
  EXPECT_EQ(env::get_int("AID_TEST_INT", 5), 5);
  EXPECT_EQ(env::get_int("AID_TEST_UNSET_INT", 7), 7);
}

TEST(Table, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.row().cell(std::string("alpha")).cell(1.5, 2);
  t.row().cell(std::string("b")).cell(static_cast<i64>(42));
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  TextTable t({"a", "b"});
  t.row().cell(std::string("x")).cell(2.0, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2.0\n");
}

TEST(Table, AsciiBar) {
  EXPECT_EQ(ascii_bar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 1.0, 10), "#####");
  EXPECT_EQ(ascii_bar(0.0, 1.0, 10), "");
  EXPECT_EQ(ascii_bar(2.0, 1.0, 4), "####") << "capped at max width";
}

}  // namespace
}  // namespace aid
