// trace/: interval recording, imbalance metrics, renderers.
#include <gtest/gtest.h>

#include "trace/trace.h"

namespace aid::trace {
namespace {

TEST(Trace, RecordsAndMergesContiguousSameState) {
  Trace t(2);
  t.record(0, State::kRunning, 0, 10);
  t.record(0, State::kRunning, 10, 20);  // merges
  t.record(0, State::kSync, 20, 30);
  ASSERT_EQ(t.timeline(0).size(), 2u);
  EXPECT_EQ(t.timeline(0)[0].duration(), 20);
  EXPECT_EQ(t.time_in(0, State::kRunning), 20);
  EXPECT_EQ(t.time_in(0, State::kSync), 10);
}

TEST(Trace, DropsEmptyIntervals) {
  Trace t(1);
  t.record(0, State::kRunning, 5, 5);
  EXPECT_TRUE(t.timeline(0).empty());
}

TEST(Trace, SpanCoversAllThreads) {
  Trace t(3);
  t.record(1, State::kRunning, 100, 200);
  t.record(2, State::kSync, 50, 400);
  EXPECT_EQ(t.span_begin(), 50);
  EXPECT_EQ(t.span_end(), 400);
}

TEST(Analyze, BalancedTraceHasImbalanceOne) {
  Trace t(2);
  t.record(0, State::kRunning, 0, 100);
  t.record(1, State::kRunning, 0, 100);
  const auto rep = analyze(t);
  EXPECT_DOUBLE_EQ(rep.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(rep.utilization, 1.0);
  EXPECT_DOUBLE_EQ(rep.sync_fraction, 0.0);
}

TEST(Analyze, ImbalancedTrace) {
  // Fig. 1a shape: one thread busy the whole span, one half idle.
  Trace t(2);
  t.record(0, State::kRunning, 0, 50);
  t.record(0, State::kSync, 50, 100);
  t.record(1, State::kRunning, 0, 100);
  const auto rep = analyze(t);
  EXPECT_DOUBLE_EQ(rep.imbalance, 100.0 / 75.0);
  EXPECT_DOUBLE_EQ(rep.utilization, 0.75);
  EXPECT_DOUBLE_EQ(rep.sync_fraction, 0.25);
}

TEST(Analyze, SchedulingFraction) {
  Trace t(1);
  t.record(0, State::kScheduling, 0, 25);
  t.record(0, State::kRunning, 25, 100);
  const auto rep = analyze(t);
  EXPECT_DOUBLE_EQ(rep.sched_fraction, 0.25);
}

TEST(RenderAscii, ShowsDominantStatePerBucket) {
  Trace t(2);
  t.record(0, State::kRunning, 0, 100);
  t.record(1, State::kRunning, 0, 50);
  t.record(1, State::kSync, 50, 100);
  const std::string out = render_ascii(t, 10);
  // Thread 1 all running; thread 2 half running, half sync.
  EXPECT_NE(out.find("Thread 1 |##########|"), std::string::npos) << out;
  EXPECT_NE(out.find("Thread 2 |#####.....|"), std::string::npos) << out;
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(RenderAscii, EmptyTrace) {
  Trace t(1);
  EXPECT_EQ(render_ascii(t, 10), "(empty trace)\n");
}

TEST(ExportPrv, EmitsParaverStateRecords) {
  Trace t(2);
  t.record(0, State::kRunning, 0, 10);
  t.record(1, State::kScheduling, 0, 5);
  t.record(1, State::kSync, 5, 10);
  const std::string prv = export_prv(t);
  EXPECT_NE(prv.find("#Paraver"), std::string::npos);
  EXPECT_NE(prv.find("1:1:1:1:1:0:10:1"), std::string::npos);
  EXPECT_NE(prv.find("1:2:1:1:2:0:5:15"), std::string::npos);
  EXPECT_NE(prv.find("1:2:1:1:2:5:10:7"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace t(1);
  t.record(0, State::kRunning, 0, 10);
  t.clear();
  EXPECT_TRUE(t.timeline(0).empty());
  EXPECT_EQ(t.span_end(), 0);
}

TEST(StateNames, Stable) {
  EXPECT_STREQ(to_string(State::kRunning), "Running");
  EXPECT_STREQ(to_string(State::kSync), "Synchronization");
  EXPECT_STREQ(to_string(State::kScheduling), "Scheduling and Fork/Join");
}

}  // namespace
}  // namespace aid::trace
