// IterationSpace: user-loop normalization (both step signs, empty loops,
// value mapping) and the WorkShare pool under real concurrency.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/time_source.h"
#include "sched/iteration_space.h"
#include "sched/work_share.h"

namespace aid::sched {
namespace {

TEST(IterationSpace, PositiveStep) {
  const IterationSpace s(0, 10, 1);
  EXPECT_EQ(s.count(), 10);
  EXPECT_EQ(s.value_of(0), 0);
  EXPECT_EQ(s.value_of(9), 9);
}

TEST(IterationSpace, PositiveStrided) {
  // for (i = 3; i < 20; i += 4): 3, 7, 11, 15, 19.
  const IterationSpace s(3, 20, 4);
  EXPECT_EQ(s.count(), 5);
  EXPECT_EQ(s.value_of(0), 3);
  EXPECT_EQ(s.value_of(4), 19);
}

TEST(IterationSpace, NegativeStep) {
  // for (i = 10; i > 0; i -= 3): 10, 7, 4, 1.
  const IterationSpace s(10, 0, -3);
  EXPECT_EQ(s.count(), 4);
  EXPECT_EQ(s.value_of(0), 10);
  EXPECT_EQ(s.value_of(3), 1);
}

TEST(IterationSpace, EmptyLoops) {
  EXPECT_EQ(IterationSpace(5, 5, 1).count(), 0);
  EXPECT_EQ(IterationSpace(10, 0, 1).count(), 0);
  EXPECT_EQ(IterationSpace(0, 10, -1).count(), 0);
}

TEST(IterationSpace, ExactBoundary) {
  // for (i = 0; i < 12; i += 4): 0, 4, 8.
  const IterationSpace s(0, 12, 4);
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s.value_of(2), 8);
}

TEST(IterRange, SizeAndEmpty) {
  EXPECT_EQ((IterRange{3, 7}).size(), 4);
  EXPECT_TRUE((IterRange{5, 5}).empty());
  EXPECT_EQ((IterRange{7, 3}).size(), 0) << "inverted ranges are empty";
}

TEST(WorkShare, SequentialTakeClampsAtEnd) {
  WorkShare pool;
  pool.reset(10);
  EXPECT_EQ(pool.take(4), (IterRange{0, 4}));
  EXPECT_EQ(pool.take(4), (IterRange{4, 8}));
  EXPECT_EQ(pool.take(4), (IterRange{8, 10})) << "clamped";
  EXPECT_TRUE(pool.take(4).empty());
  EXPECT_EQ(pool.removals(), 3)
      << "a probe of an exhausted pool is not a removal";
  EXPECT_TRUE(pool.take(4).empty());
  EXPECT_EQ(pool.removals(), 3) << "repeated drained probes stay uncounted";
}

TEST(WorkShare, DrainedPoolStopsAdvancing) {
  // The endgame-stealing fix: once drained, probes must not keep growing
  // next_ (previously it grew by `want` per failed take forever).
  WorkShare pool;
  pool.reset(8);
  (void)pool.take(8);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(pool.take(1'000'000).empty());
  EXPECT_EQ(pool.remaining(), 0);
  EXPECT_EQ(pool.removals(), 1);
}

TEST(WorkShare, PerThreadRemovalSlotsAggregate) {
  WorkShare pool(/*nthreads=*/3);
  pool.reset(9);
  EXPECT_EQ(pool.take(3, /*tid=*/0).size(), 3);
  EXPECT_EQ(pool.take(3, /*tid=*/1).size(), 3);
  EXPECT_EQ(pool.take(3, /*tid=*/2).size(), 3);
  EXPECT_TRUE(pool.take(3, /*tid=*/1).empty());
  EXPECT_EQ(pool.removals(), 3);
}

TEST(WorkShare, RemainingNeverNegative) {
  WorkShare pool;
  pool.reset(5);
  (void)pool.take(100);
  EXPECT_EQ(pool.remaining(), 0);
  (void)pool.take(1);
  EXPECT_EQ(pool.remaining(), 0);
}

TEST(WorkShare, AdaptiveTakeUsesLiveRemaining) {
  WorkShare pool;
  pool.reset(100);
  const auto half = [](i64 remaining) { return remaining / 2 + 1; };
  EXPECT_EQ(pool.take_adaptive(half).size(), 51);
  EXPECT_EQ(pool.take_adaptive(half).size(), 25);
  while (!pool.take_adaptive(half).empty()) {
  }
  EXPECT_EQ(pool.remaining(), 0);
}

TEST(WorkShareStress, ConcurrentTakesPartitionExactly) {
  // 8 real threads hammer one pool; every iteration must be handed out
  // exactly once. This is the lock-free fetch-add contract under genuine
  // contention (paper Sec. 4.2).
  constexpr i64 kCount = 200'000;
  constexpr int kThreads = 8;
  WorkShare pool;
  pool.reset(kCount);
  std::vector<std::vector<IterRange>> taken(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&pool, &mine = taken[static_cast<usize>(t)], t] {
        const i64 chunk = 1 + t % 4;  // mixed chunk sizes
        for (;;) {
          const IterRange r = pool.take(chunk);
          if (r.empty()) return;
          mine.push_back(r);
        }
      });
    }
  }
  std::vector<u8> seen(kCount, 0);
  for (const auto& ranges : taken) {
    for (const auto& r : ranges) {
      for (i64 i = r.begin; i < r.end; ++i) {
        ASSERT_EQ(seen[static_cast<usize>(i)], 0) << "duplicate " << i;
        seen[static_cast<usize>(i)] = 1;
      }
    }
  }
  for (i64 i = 0; i < kCount; ++i) ASSERT_EQ(seen[static_cast<usize>(i)], 1);
}

TEST(WorkShareStress, ConcurrentAdaptiveTakes) {
  constexpr i64 kCount = 100'000;
  WorkShare pool;
  pool.reset(kCount);
  std::atomic<i64> total{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const IterRange r =
              pool.take_adaptive([](i64 rem) { return rem / 16 + 1; });
          if (r.empty()) return;
          total.fetch_add(r.size());
        }
      });
    }
  }
  EXPECT_EQ(total.load(), kCount);
}

TEST(ThreadCpuTime, TicksUnderWork) {
  // The virtualized CI host reports thread CPU time at coarse granularity;
  // burn CPU until the clock visibly advances (bounded by wall time).
  const aid::ThreadCpuTimeSource cpu;
  const aid::SteadyTimeSource wall;
  const Nanos t0 = cpu.now();
  const Nanos wall_deadline = wall.now() + 2'000'000'000;  // 2s cap
  volatile double x = 1.0;
  Nanos t1 = t0;
  while (t1 <= t0 && wall.now() < wall_deadline) {
    for (int i = 0; i < 2'000'000; ++i) x = x * 1.000001 + 0.5;
    t1 = cpu.now();
  }
  EXPECT_GT(t1, t0) << "CPU clock must advance under computation";
}

}  // namespace
}  // namespace aid::sched
