// Repartitioning stress: co-running apps on one shared pool, with the
// arbiter reshaping partitions between their loops (rt_forkjoin_stress_test
// style, lifted to the pool layer).
//
// Properties under stress:
//  * exactly-once execution — every canonical iteration of every loop of
//    every app runs exactly once, while partitions grow and shrink
//    underneath the apps (generation docks are reused across owners);
//  * partition isolation — tids observed by a body always fit inside the
//    machine, and concurrent apps never lose or duplicate iterations;
//  * arbitration convergence — once the churn stops and apps go idle, the
//    final policy's allotment is exactly what every app observes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "platform/platform.h"
#include "pool/pool_manager.h"

namespace aid::pool {
namespace {

using sched::ScheduleSpec;

PoolManager::Config test_config() {
  PoolManager::Config c;
  c.emulate_amp = false;
  return c;
}

std::vector<ScheduleSpec> stress_specs() {
  return {
      ScheduleSpec::static_even(),
      ScheduleSpec::dynamic(1),
      ScheduleSpec::dynamic(7),
      ScheduleSpec::guided(2),
      ScheduleSpec::aid_static(2),
      ScheduleSpec::aid_dynamic(1, 5),
  };
}

/// One app's workload: `loops` back-to-back loops, each verified
/// exactly-once, cycling through the schedulers. `max_threads` bounds the
/// tids any body may observe (the machine size). Returns the sequence of
/// distinct partition sizes observed at loop boundaries.
std::vector<int> app_main(AppHandle& app, int loops, i64 count,
                          int max_threads) {
  const auto specs = stress_specs();
  std::vector<int> sizes;
  std::vector<std::atomic<u16>> hits(static_cast<usize>(count));
  for (int l = 0; l < loops; ++l) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    std::atomic<int> max_tid{0};
    const auto& spec = specs[static_cast<usize>(l) % specs.size()];
    app.run_loop(count, spec, [&](i64 b, i64 e, const rt::WorkerInfo& w) {
      int prev = max_tid.load(std::memory_order_relaxed);
      while (prev < w.tid && !max_tid.compare_exchange_weak(
                                 prev, w.tid, std::memory_order_relaxed)) {
      }
      for (i64 i = b; i < e; ++i)
        hits[static_cast<usize>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (i64 i = 0; i < count; ++i) {
      EXPECT_EQ(hits[static_cast<usize>(i)].load(), 1)
          << spec.display() << " loop=" << l << " iteration=" << i;
    }
    EXPECT_LT(max_tid.load(), max_threads) << "tid outside machine, loop " << l;
    const int nthreads = app.nthreads();
    if (sizes.empty() || sizes.back() != nthreads) sizes.push_back(nthreads);
  }
  return sizes;
}

TEST(PoolRepartitionStress, TwoAppsUnderPolicyChurn) {
  constexpr int kLoops = 48;
  constexpr i64 kCount = 301;  // odd: uneven splits
  PoolManager mgr(platform::generic_amp(4, 4, 3.0), test_config());
  const int ncores = mgr.platform().num_cores();

  AppHandle a = mgr.register_app("a", /*weight=*/1.0);
  AppHandle b = mgr.register_app("b", /*weight=*/3.0);

  std::thread ta([&] { app_main(a, kLoops, kCount, ncores); });
  std::thread tb([&] { app_main(b, kLoops, kCount, ncores); });

  // The arbiter: cycle policies while both apps run, forcing grant/revoke
  // traffic at their loop boundaries.
  const Policy policies[] = {Policy::kProportional, Policy::kBigCorePriority,
                             Policy::kEqualShare};
  for (int round = 0; round < 30; ++round) {
    mgr.set_policy(policies[round % 3]);
    std::this_thread::yield();
    mgr.repartition();
  }

  ta.join();
  tb.join();

  // Both apps idle now: the final policy must commit immediately and be
  // exactly visible. Proportional 1:3 on 4S+4B -> a = 1S+1B, b = 3S+3B.
  mgr.set_policy(Policy::kProportional);
  EXPECT_EQ(a.nthreads(), 2);
  EXPECT_EQ(b.nthreads(), 6);
  EXPECT_EQ(a.allotment().threads_on_big, 1);
  EXPECT_EQ(b.allotment().threads_on_big, 3);

  // And loops after the churn still cover exactly once on the new shapes.
  app_main(a, 3, kCount, ncores);
  app_main(b, 3, kCount, ncores);
}

TEST(PoolRepartitionStress, AppChurnWhileNeighborLoops) {
  // One long-lived app loops continuously while guests register, run a
  // loop on their slice, and release: the main partition shrinks and
  // grows, every loop stays exactly-once, and the pool never spawns more
  // worker threads than the machine has cores.
  constexpr int kLoops = 60;
  constexpr i64 kCount = 257;
  PoolManager mgr(platform::generic_amp(4, 4, 3.0), test_config());
  const int ncores = mgr.platform().num_cores();
  AppHandle main_app = mgr.register_app("main");

  std::thread runner([&] { app_main(main_app, kLoops, kCount, ncores); });

  for (int round = 0; round < 12; ++round) {
    AppHandle guest = mgr.register_app("guest", 1.0 + round % 3);
    std::vector<std::atomic<u16>> hits(64);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    guest.run_loop(64, ScheduleSpec::dynamic(2),
                   [&](i64 gb, i64 ge, const rt::WorkerInfo&) {
                     for (i64 i = gb; i < ge; ++i)
                       hits[static_cast<usize>(i)].fetch_add(
                           1, std::memory_order_relaxed);
                   });
    for (usize i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "guest iteration " << i;
    guest.release();
  }

  runner.join();
  EXPECT_LE(mgr.spawned_workers(), ncores);
  EXPECT_LE(mgr.total_threads(), ncores + 1);  // workers + the main lease
  // All guests gone and the runner idle: the whole machine is main's again.
  EXPECT_EQ(main_app.nthreads(), 8);
}

}  // namespace
}  // namespace aid::pool
