// Fork/join stress: many back-to-back run_loop calls across schedulers and
// thread counts on the lock-free dispatch path (rt/team.cc).
//
// The properties under stress:
//  * exactly-once execution — every canonical iteration of every loop runs
//    exactly once, for every scheduler, across repeated dispatches on the
//    same persistent worker team (generation-counter reuse, barrier reuse);
//  * pool_removals counts only *successful* takes — for plain dynamic the
//    count is exactly ceil(NI / chunk) under the single-pool fallback
//    (AID_SHARDS=1); under the default sharded pool each shard seam (and
//    each bulk-rebalanced block) can add at most one extra clamped
//    removal, and the count can never exceed NI (each success hands out
//    >= 1 iteration), no matter how often drained probes hammer the
//    endgame.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/env.h"
#include "platform/platform.h"
#include "rt/team.h"

namespace aid::rt {
namespace {

using platform::Mapping;
using sched::ScheduleSpec;

struct SpecCase {
  ScheduleSpec spec;
  bool uses_pool = true;  // false: compiled-away static distribution
};

std::vector<SpecCase> stress_specs() {
  return {
      {ScheduleSpec::static_even(), false},
      {ScheduleSpec::static_chunked(3), false},
      {ScheduleSpec::dynamic(1)},
      {ScheduleSpec::dynamic(7)},
      {ScheduleSpec::guided(2)},
      {ScheduleSpec::trapezoid()},
      {ScheduleSpec::weighted_factoring()},
      {ScheduleSpec::aid_static(2)},
      {ScheduleSpec::aid_hybrid(2, 70.0)},
      {ScheduleSpec::aid_dynamic(1, 5)},
      {ScheduleSpec::aid_dynamic_no_endgame(2, 6)},
  };
}

TEST(ForkJoinStress, BackToBackLoopsCoverExactlyOnce) {
  constexpr i64 kCount = 501;  // odd: exercises uneven splits
  constexpr int kLoops = 60;
  for (const int nthreads : {1, 2, 4, 8}) {
    Team team(platform::generic_amp(4, 4, 3.0), nthreads, Mapping::kBigFirst,
              /*emulate_amp=*/false);
    for (const auto& c : stress_specs()) {
      std::vector<std::atomic<u16>> hits(kCount);
      for (int l = 0; l < kLoops; ++l) {
        for (auto& h : hits) h.store(0, std::memory_order_relaxed);
        team.run_loop(kCount, c.spec, [&](i64 b, i64 e, const WorkerInfo&) {
          for (i64 i = b; i < e; ++i)
            hits[static_cast<usize>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
        });
        for (i64 i = 0; i < kCount; ++i)
          ASSERT_EQ(hits[static_cast<usize>(i)].load(), 1)
              << c.spec.display() << " nthreads=" << nthreads << " loop=" << l
              << " iteration=" << i;
      }
    }
  }
}

TEST(ForkJoinStress, DynamicRemovalCountIsExactWithSingleShard) {
  // With removals counted only on success, dynamic(c) on the single-pool
  // fallback performs exactly ceil(NI / c) removals — drained-pool probes
  // by late workers add zero.
  const env::ScopedSet shards("AID_SHARDS", "1");
  Team team(platform::generic_amp(4, 4, 3.0), 8, Mapping::kBigFirst,
            /*emulate_amp=*/false);
  for (const i64 chunk : {i64{1}, i64{4}, i64{13}}) {
    for (const i64 count : {i64{1}, i64{13}, i64{500}, i64{5000}}) {
      for (int l = 0; l < 10; ++l) {
        team.run_loop(count, ScheduleSpec::dynamic(chunk),
                      [](i64, i64, const WorkerInfo&) {});
        EXPECT_EQ(team.last_loop_stats().pool_removals,
                  (count + chunk - 1) / chunk)
            << "chunk=" << chunk << " count=" << count;
      }
    }
  }
}

TEST(ForkJoinStress, DynamicRemovalCountIsTightUnderSharding) {
  // The per-core-type sharded pool keeps the count near-exact: every shard
  // seam and every bulk-migrated block can clamp at most one take short,
  // so removals <= ceil(NI / c) + (shards - 1) + rebalances. All removals
  // are accounted as either home-local or steals.
  Team team(platform::generic_amp(4, 4, 3.0), 8, Mapping::kBigFirst,
            /*emulate_amp=*/false);
  for (const i64 chunk : {i64{1}, i64{4}, i64{13}}) {
    for (const i64 count : {i64{1}, i64{13}, i64{500}, i64{5000}}) {
      for (int l = 0; l < 10; ++l) {
        team.run_loop(count, ScheduleSpec::dynamic(chunk),
                      [](i64, i64, const WorkerInfo&) {});
        const auto st = team.last_loop_stats();
        const i64 exact = (count + chunk - 1) / chunk;
        EXPECT_GE(st.pool_removals, exact)
            << "chunk=" << chunk << " count=" << count;
        EXPECT_LE(st.pool_removals, exact + 1 + st.shard_rebalances)
            << "chunk=" << chunk << " count=" << count;
        EXPECT_EQ(st.local_removals + st.steal_removals, st.pool_removals)
            << "chunk=" << chunk << " count=" << count;
      }
    }
  }
}

TEST(ForkJoinStress, RemovalsNeverExceedIterations) {
  // Every successful removal hands out at least one iteration, so
  // pool_removals <= NI for every pool-based scheduler; pure static
  // distribution performs none at all.
  constexpr i64 kCount = 777;
  Team team(platform::generic_amp(4, 4, 3.0), 8, Mapping::kBigFirst,
            /*emulate_amp=*/false);
  for (const auto& c : stress_specs()) {
    for (int l = 0; l < 10; ++l) {
      team.run_loop(kCount, c.spec, [](i64, i64, const WorkerInfo&) {});
      const i64 removals = team.last_loop_stats().pool_removals;
      if (c.uses_pool) {
        EXPECT_GT(removals, 0) << c.spec.display();
        EXPECT_LE(removals, kCount) << c.spec.display();
      } else {
        EXPECT_EQ(removals, 0) << c.spec.display();
      }
    }
  }
}

TEST(ForkJoinStress, EmptyAndTinyLoopsTerminate) {
  // The serial fast path (count == 0 skips dispatch entirely) and loops
  // smaller than the team must still terminate and cover exactly once.
  Team team(platform::generic_amp(4, 4, 3.0), 8, Mapping::kBigFirst,
            /*emulate_amp=*/false);
  for (const auto& c : stress_specs()) {
    for (const i64 count : {i64{0}, i64{1}, i64{3}, i64{7}}) {
      std::atomic<i64> executed{0};
      team.run_loop(count, c.spec, [&](i64 b, i64 e, const WorkerInfo&) {
        executed.fetch_add(e - b);
      });
      EXPECT_EQ(executed.load(), count) << c.spec.display();
    }
  }
}

TEST(ForkJoinStress, AlternatingThreadCountsViaSeparateTeams) {
  // Two teams over the same platform, dispatched alternately: dispatch
  // generations and completion barriers must not bleed across teams.
  Team big(platform::generic_amp(4, 4, 3.0), 8, Mapping::kBigFirst,
           /*emulate_amp=*/false);
  Team small(platform::generic_amp(4, 4, 3.0), 3, Mapping::kSmallFirst,
             /*emulate_amp=*/false);
  std::atomic<i64> total{0};
  for (int l = 0; l < 50; ++l) {
    Team& team = (l % 2 == 0) ? big : small;
    team.run_loop(64, ScheduleSpec::dynamic(2),
                  [&](i64 b, i64 e, const WorkerInfo&) {
                    total.fetch_add(e - b);
                  });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

}  // namespace
}  // namespace aid::rt
