// rt/: the real-thread runtime. These tests use actual concurrency; they
// assert correctness properties (coverage, invariance, termination), never
// absolute timing — the CI host is small and oversubscribed.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/env.h"
#include "rt/runtime.h"
#include "rt/runtime_config.h"
#include "rt/team.h"
#include "rt/throttle.h"

namespace aid::rt {
namespace {

using platform::Mapping;
using sched::ScheduleSpec;

platform::Platform small_amp() { return platform::generic_amp(2, 2, 3.0); }

std::vector<ScheduleSpec> all_specs() {
  return {ScheduleSpec::static_even(),       ScheduleSpec::static_chunked(3),
          ScheduleSpec::dynamic(1),          ScheduleSpec::dynamic(4),
          ScheduleSpec::guided(1),           ScheduleSpec::aid_static(1),
          ScheduleSpec::aid_hybrid(1, 80.0), ScheduleSpec::aid_dynamic(1, 5)};
}

TEST(Team, EveryScheduleCoversEveryIterationExactlyOnce) {
  Team team(small_amp(), 4, Mapping::kBigFirst, /*emulate_amp=*/false);
  for (const auto& spec : all_specs()) {
    constexpr i64 kCount = 5000;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto& h : hits) h.store(0);
    team.run_loop(kCount, spec, [&](i64 b, i64 e, const WorkerInfo&) {
      for (i64 i = b; i < e; ++i) hits[static_cast<usize>(i)].fetch_add(1);
    });
    for (i64 i = 0; i < kCount; ++i)
      ASSERT_EQ(hits[static_cast<usize>(i)].load(), 1)
          << spec.display() << " iteration " << i;
  }
}

TEST(Team, ParallelForMapsUserSpace) {
  Team team(small_amp(), 3, Mapping::kBigFirst, false);
  std::atomic<i64> sum{0};
  // for (i = 10; i < 30; i += 2): values 10,12,...,28 -> sum 190.
  team.parallel_for(10, 30, 2, ScheduleSpec::dynamic(1),
                    [&](i64 i, const WorkerInfo&) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 190);
}

TEST(Team, NegativeStepLoop) {
  Team team(small_amp(), 2, Mapping::kBigFirst, false);
  std::atomic<i64> sum{0};
  // for (i = 10; i > 0; i -= 3): 10, 7, 4, 1 -> 22.
  team.parallel_for(10, 0, -3, ScheduleSpec::static_even(),
                    [&](i64 i, const WorkerInfo&) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 22);
}

TEST(Team, WorkerInfoReflectsLayout) {
  Team team(small_amp(), 4, Mapping::kBigFirst, false);
  std::vector<std::atomic<int>> seen_type(4);
  for (auto& s : seen_type) s.store(-1);
  team.run_loop(1000, ScheduleSpec::dynamic(1),
                [&](i64, i64, const WorkerInfo& w) {
                  seen_type[static_cast<usize>(w.tid)].store(w.core_type);
                });
  // BS on 2s2b: tids 0,1 big (type 1).
  EXPECT_EQ(seen_type[0].load(), 1);
  // Other threads may or may not win iterations, but if they did, the type
  // must match the layout.
  for (int tid = 0; tid < 4; ++tid) {
    const int t = seen_type[static_cast<usize>(tid)].load();
    if (t >= 0) {
      EXPECT_EQ(t, team.layout().core_type_of(tid)) << tid;
    }
  }
}

TEST(Team, EmptyLoopCompletes) {
  Team team(small_amp(), 4, Mapping::kBigFirst, false);
  bool ran = false;
  team.run_loop(0, ScheduleSpec::aid_static(1),
                [&](i64, i64, const WorkerInfo&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Team, SingleThreadTeam) {
  Team team(small_amp(), 1, Mapping::kBigFirst, false);
  std::atomic<i64> n{0};
  team.run_loop(100, ScheduleSpec::aid_dynamic(1, 5),
                [&](i64 b, i64 e, const WorkerInfo&) { n.fetch_add(e - b); });
  EXPECT_EQ(n.load(), 100);
}

TEST(Team, ManyConsecutiveLoopsReuseWorkers) {
  Team team(small_amp(), 4, Mapping::kBigFirst, false);
  std::atomic<i64> total{0};
  for (int l = 0; l < 200; ++l) {
    team.run_loop(64, ScheduleSpec::dynamic(2),
                  [&](i64 b, i64 e, const WorkerInfo&) {
                    total.fetch_add(e - b);
                  });
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(Team, LastLoopStatsExposed) {
  Team team(small_amp(), 4, Mapping::kBigFirst, false);
  team.run_loop(500, ScheduleSpec::dynamic(1),
                [](i64, i64, const WorkerInfo&) {});
  EXPECT_GE(team.last_loop_stats().pool_removals, 500);
}

TEST(Team, AidSamplingEstimatesThrottledAsymmetry) {
  // With duty-cycle emulation on, AID's sampling should observe SF > 1 for
  // a compute-heavy body. The CI host is tiny and oversubscribed, so a
  // single sample can be inverted by preemption — take the best of several
  // attempts and only require that asymmetry was observable at least once.
  // The loop must be long enough to outlive the host's thread-wakeup
  // latency: on a one-CPU box the master can otherwise drain the whole
  // pool before the small-core workers ever run, leaving them nothing to
  // sample (all-zero samples degenerate to SF == 1).
  Team team(platform::generic_amp(2, 2, 3.0), 4, Mapping::kBigFirst,
            /*emulate_amp=*/true);
  double best_sf = 0.0;
  for (int attempt = 0; attempt < 8 && best_sf <= 1.2; ++attempt) {
    team.run_loop(12000, ScheduleSpec::aid_static(8),
                  [](i64 b, i64 e, const WorkerInfo&) {
                    for (i64 i = b; i < e; ++i) spin_work(400);
                  });
    best_sf = std::max(best_sf, team.last_loop_stats().estimated_sf);
  }
  EXPECT_GT(best_sf, 1.2);
  // No meaningful upper bound: preemption on the oversubscribed CI host can
  // stretch a single small-core sample arbitrarily.
}

TEST(Throttle, DisabledForFastestCores) {
  const Throttle t(1.0, true);
  EXPECT_FALSE(t.enabled());
  const Throttle t2(2.0, false);
  EXPECT_FALSE(t2.enabled());
  const Throttle t3(2.0, true);
  EXPECT_TRUE(t3.enabled());
}

TEST(RuntimeConfig, ReadsEnvironment) {
  env::ScopedSet sched_guard("AID_SCHEDULE", "aid-dynamic,2,10");
  env::ScopedSet threads_guard("AID_NUM_THREADS", "3");
  env::ScopedSet affinity_guard("AID_AMP_AFFINITY", "1");
  const auto cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.schedule.kind, sched::ScheduleKind::kAidDynamic);
  EXPECT_EQ(cfg.schedule.chunk, 2);
  EXPECT_EQ(cfg.schedule.major_chunk, 10);
  EXPECT_EQ(cfg.num_threads, 3);
  EXPECT_EQ(cfg.mapping, Mapping::kBigFirst)
      << "AID_AMP_AFFINITY implies the BS convention (Sec. 4.3)";
}

TEST(RuntimeConfig, BadScheduleFallsBackToStatic) {
  env::ScopedSet guard("AID_SCHEDULE", "wibble,9");
  const auto cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.schedule.kind, sched::ScheduleKind::kStatic);
}

TEST(RuntimeConfig, MappingOverride) {
  env::ScopedSet affinity_guard("AID_AMP_AFFINITY", "1");
  env::ScopedSet mapping_guard("AID_MAPPING", "SB");
  const auto cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.mapping, Mapping::kSmallFirst)
      << "explicit AID_MAPPING wins over AID_AMP_AFFINITY";
}

TEST(RuntimeConfig, DescribeMentionsKeyFields) {
  const RuntimeConfig cfg;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("schedule=static"), std::string::npos);
  EXPECT_NE(d.find("mapping=SB"), std::string::npos);
}

TEST(IsolatedRuntime, RunsLoopsWithEnvSchedule) {
  RuntimeConfig cfg;
  cfg.schedule = ScheduleSpec::aid_static(1);
  cfg.num_threads = 4;
  cfg.mapping = Mapping::kBigFirst;
  cfg.emulate_amp = false;
  Runtime runtime(small_amp(), cfg);
  std::atomic<i64> sum{0};
  runtime.team().parallel_for(0, 100, 1, runtime.default_schedule(),
                              [&](i64 i, const WorkerInfo&) {
                                sum.fetch_add(i);
                              });
  EXPECT_EQ(sum.load(), 4950);
}

}  // namespace
}  // namespace aid::rt
