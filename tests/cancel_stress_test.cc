// Cancellation under stress, both runtimes (rt::Team and pool::PoolManager).
//
// The load-bearing invariant everywhere is exactly-once-OR-cancelled:
// whatever fires (user token, deadline, a thrown body, a dependency),
// every canonical iteration executes 0 or 1 times — never twice — the
// construct always returns, and the runtime stays fully usable afterwards.
//
// Covers the failure-domain satellite checklist: cancel from another
// thread, deadline expiry mid-chain cancelling the entry AND its
// dependents (but not independent entries), chain-wide tokens via
// LoopChain::bind_cancel and the Runtime overloads, AppHandle::cancel,
// cancellation racing repartition commits, and co-tenant survival (one
// app's failures never corrupt or wedge its neighbour's lease).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "pipeline/loop_chain.h"
#include "platform/platform.h"
#include "pool/policy.h"
#include "pool/pool_manager.h"
#include "rt/runtime.h"
#include "rt/runtime_config.h"
#include "rt/team.h"
#include "sched/schedule_spec.h"

namespace aid {
namespace {

using pipeline::LoopChain;
using sched::ScheduleSpec;

rt::Team make_team(int nthreads) {
  return rt::Team(platform::generic_amp(2, 2, 2.0), nthreads,
                  platform::Mapping::kBigFirst, /*emulate_amp=*/false);
}

pool::PoolManager::Config pool_config() {
  pool::PoolManager::Config c;
  c.emulate_amp = false;
  return c;
}

/// Per-iteration hit counters (the at-most-once half is the invariant the
/// cancellation machinery must never break; the exactly-once half is what
/// un-cancelled loops must still deliver).
struct HitCounts {
  explicit HitCounts(i64 count) : hits(static_cast<usize>(count)) {}
  std::vector<std::atomic<int>> hits;

  rt::RangeBody body() {
    return [this](i64 b, i64 e, const rt::WorkerInfo&) {
      for (i64 i = b; i < e; ++i)
        hits[static_cast<usize>(i)].fetch_add(1, std::memory_order_relaxed);
    };
  }
  /// Same accounting with a per-chunk sleep, so a deadline or a racing
  /// cancel provably lands mid-loop instead of after a drained pool.
  rt::RangeBody slow_body(std::chrono::microseconds per_chunk) {
    return [this, per_chunk](i64 b, i64 e, const rt::WorkerInfo&) {
      std::this_thread::sleep_for(per_chunk);
      for (i64 i = b; i < e; ++i)
        hits[static_cast<usize>(i)].fetch_add(1, std::memory_order_relaxed);
    };
  }
  [[nodiscard]] i64 executed() const {
    i64 n = 0;
    for (const auto& h : hits) n += h.load(std::memory_order_relaxed);
    return n;
  }
  void expect_at_most_once() const {
    for (usize i = 0; i < hits.size(); ++i)
      ASSERT_LE(hits[i].load(std::memory_order_relaxed), 1)
          << "iteration " << i << " executed twice";
  }
  void expect_exactly_once() const {
    for (usize i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
          << "iteration " << i;
  }
};

// --- team: token plumbing --------------------------------------------------

TEST(CancelStress, BodyFiredCancelStopsWithinOneChunkPerThread) {
  rt::Team team = make_team(4);
  constexpr i64 kCount = 1 << 16;
  CancelToken token;
  HitCounts counts(kCount);
  const rt::RangeBody inner = counts.body();
  team.run_loop(kCount, ScheduleSpec::dynamic(16).with_cancel(&token),
                [&](i64 b, i64 e, const rt::WorkerInfo& w) {
                  token.cancel();
                  inner(b, e, w);
                });
  EXPECT_EQ(token.reason(), CancelReason::kUser);
  counts.expect_at_most_once();
  // Cancel latency is one chunk per participant: after the first chunk
  // fires the token, each of the 4 threads finishes at most its in-flight
  // chunk and takes nothing more.
  EXPECT_GT(counts.executed(), 0);
  EXPECT_LE(counts.executed(), 16 * 4);

  // Token reuse across constructs: reset re-arms it.
  token.reset();
  EXPECT_FALSE(token.cancelled());
  HitCounts after(kCount);
  team.run_loop(kCount, ScheduleSpec::dynamic(64).with_cancel(&token),
                after.body());
  after.expect_exactly_once();
}

TEST(CancelStress, CancelFromAnotherThreadStopsTheLoop) {
  rt::Team team = make_team(2);
  constexpr i64 kCount = 1 << 12;  // 256 chunks x 1ms: ~128ms/thread
  CancelToken token;
  HitCounts counts(kCount);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel();
  });
  team.run_loop(kCount, ScheduleSpec::dynamic(16).with_cancel(&token),
                counts.slow_body(std::chrono::microseconds(1000)));
  killer.join();
  EXPECT_EQ(token.reason(), CancelReason::kUser);
  counts.expect_at_most_once();
  EXPECT_GT(counts.executed(), 0);
  EXPECT_LT(counts.executed(), kCount);
}

TEST(CancelStress, PreCancelledTokenRunsNothing) {
  rt::Team team = make_team(4);
  CancelToken token;
  token.cancel();
  HitCounts counts(1 << 12);
  team.run_loop(1 << 12, ScheduleSpec::dynamic(8).with_cancel(&token),
                counts.body());
  EXPECT_EQ(counts.executed(), 0);
}

TEST(CancelStress, ThrowingBodySurfacesOnMasterAndCancelsPeers) {
  // No fault harness here: a plain application throw must behave the same
  // way (first exception wins, peers drain cooperatively, master rethrows
  // after the gate closed, team reusable).
  rt::Team team = make_team(4);
  constexpr i64 kCount = 1 << 14;
  HitCounts counts(kCount);
  const rt::RangeBody inner = counts.body();
  EXPECT_THROW(
      team.run_loop(kCount, ScheduleSpec::dynamic(16),
                    [&](i64 b, i64 e, const rt::WorkerInfo& w) {
                      if (b == 0) throw std::runtime_error("app failure");
                      inner(b, e, w);
                    }),
      std::runtime_error);
  counts.expect_at_most_once();
  EXPECT_LT(counts.executed(), kCount);  // iteration 0's chunk never ran
  HitCounts after(kCount);
  team.run_loop(kCount, ScheduleSpec::dynamic(16), after.body());
  after.expect_exactly_once();
}

// --- team: chains ----------------------------------------------------------

TEST(CancelStress, DeadlineExpiryMidChainCancelsEntryAndDependents) {
  rt::Team team = make_team(2);
  constexpr i64 kFast = 3001;
  constexpr i64 kSlow = 1 << 12;  // 256 chunks x 1ms >> the 40ms deadline
  HitCounts a(kFast), b(kSlow), c(kFast), d(kFast);

  LoopChain chain;
  const int ia = chain.add(kFast, ScheduleSpec::dynamic(7), a.body());
  const int ib =
      chain.add(kSlow,
                ScheduleSpec::dynamic(16).with_deadline_ns(40'000'000),
                b.slow_body(std::chrono::microseconds(1000)), ia);
  chain.add(kFast, ScheduleSpec::dynamic(7), c.body(), ib);  // dependent
  chain.add(kFast, ScheduleSpec::static_even(), d.body());   // independent
  team.run_chain(chain);

  a.expect_exactly_once();  // upstream of the failure: untouched
  b.expect_at_most_once();  // deadline landed mid-loop
  EXPECT_GT(b.executed(), 0);
  EXPECT_LT(b.executed(), kSlow);
  EXPECT_EQ(c.executed(), 0);  // dependency cancellation: nothing ran
  d.expect_exactly_once();     // no edge to the failure: full coverage

  // The ring is healthy afterwards: a clean chain covers exactly once.
  HitCounts after(kFast);
  LoopChain clean;
  clean.add(kFast, ScheduleSpec::dynamic(7), after.body());
  team.run_chain(clean);
  after.expect_exactly_once();
}

TEST(CancelStress, ChainWideTokenKillsInFlightAndUnpublishedEntries) {
  rt::Team team = make_team(2);
  constexpr i64 kCount = 1 << 11;  // 128 chunks x 1ms = ~64ms+ per entry
  constexpr usize kLoops = 6;
  std::vector<HitCounts> hits;
  hits.reserve(kLoops);
  for (usize l = 0; l < kLoops; ++l) hits.emplace_back(kCount);

  CancelToken token;
  LoopChain chain;
  for (usize l = 0; l < kLoops; ++l)
    chain.add(kCount, ScheduleSpec::dynamic(16),
              hits[l].slow_body(std::chrono::microseconds(1000)));
  chain.bind_cancel(&token);

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.cancel();
  });
  team.run_chain(chain);
  killer.join();

  i64 total = 0;
  for (auto& h : hits) {
    h.expect_at_most_once();
    total += h.executed();
  }
  EXPECT_LT(total, static_cast<i64>(kLoops) * kCount);
}

TEST(CancelStress, RuntimeOverloadsBindTokenAndDeadline) {
  rt::RuntimeConfig config;
  config.num_threads = 2;
  config.emulate_amp = false;
  rt::Runtime runtime(platform::generic_amp(2, 2, 2.0), config);

  // run_loop overload: deadline lands mid-loop, token reports it.
  constexpr i64 kCount = 1 << 12;
  CancelToken token;
  HitCounts counts(kCount);
  runtime.run_loop(kCount, ScheduleSpec::dynamic(16),
                   counts.slow_body(std::chrono::microseconds(1000)), token,
                   /*deadline_ns=*/30'000'000);
  // The watchdog fires the construct's internal token (the caller's stays
  // un-cancelled and reusable); the observable contract is the early stop.
  counts.expect_at_most_once();
  EXPECT_GT(counts.executed(), 0);
  EXPECT_LT(counts.executed(), kCount);

  // run_chain overload: a pre-cancelled chain token runs nothing; the
  // caller's chain is bound by copy, so it stays reusable afterwards.
  CancelToken dead;
  dead.cancel();
  HitCounts chained(kCount);
  LoopChain chain;
  chain.add(kCount, ScheduleSpec::dynamic(8), chained.body());
  runtime.run_chain(chain, dead);
  EXPECT_EQ(chained.executed(), 0);

  HitCounts clean(kCount);
  CancelToken idle;
  LoopChain chain2;
  chain2.add(kCount, ScheduleSpec::dynamic(8), clean.body());
  runtime.run_chain(chain2, idle);
  clean.expect_exactly_once();
}

// --- pool: leases, repartition races, co-tenancy ---------------------------

TEST(CancelStress, AppHandleCancelStopsThePoolConstruct) {
  pool::PoolManager mgr(platform::generic_amp(2, 2, 2.0), pool_config());
  pool::AppHandle app = mgr.register_app("cancellee");
  constexpr i64 kCount = 1 << 12;
  HitCounts counts(kCount);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    app.cancel();
  });
  app.run_loop(kCount, ScheduleSpec::dynamic(16),
               counts.slow_body(std::chrono::microseconds(1000)));
  killer.join();
  counts.expect_at_most_once();
  EXPECT_LT(counts.executed(), kCount);

  // The lease token re-arms at the next construct: full coverage again.
  HitCounts after(kCount);
  app.run_loop(kCount, ScheduleSpec::dynamic(64), after.body());
  after.expect_exactly_once();
}

TEST(CancelStress, CancellationRacesRepartitionCommits) {
  // App A runs chains (spec tokens cancelled at arbitrary points by the
  // main thread) while the arbiter churns policies, forcing repartition
  // commits between ring entries — the harvest-before-reuse path. Nothing
  // may hang, no iteration may run twice, and after the churn a clean
  // chain must cover exactly once on whatever partition A ended up with.
  pool::PoolManager mgr(platform::generic_amp(4, 4, 3.0), pool_config());
  pool::AppHandle a = mgr.register_app("racer", 1.0);
  pool::AppHandle b = mgr.register_app("ballast", 2.0);

  constexpr int kRounds = 10;
  constexpr i64 kCount = 1 << 10;
  constexpr usize kLoops = 5;
  // One token per round, all outliving both threads: the main thread may
  // cancel the current round's token at any moment without a lifetime
  // race (cancelling a finished or not-yet-started round is a no-op /
  // pre-cancelled chain — both legal outcomes here).
  std::vector<CancelToken> tokens(kRounds);
  std::atomic<int> cur_round{0};
  std::atomic<bool> done{false};

  std::thread racer([&] {
    for (int r = 0; r < kRounds; ++r) {
      cur_round.store(r, std::memory_order_release);
      std::vector<HitCounts> hits;
      hits.reserve(kLoops);
      for (usize l = 0; l < kLoops; ++l) hits.emplace_back(kCount);
      LoopChain chain;
      for (usize l = 0; l < kLoops; ++l)
        chain.add(kCount, ScheduleSpec::dynamic(16),
                  hits[l].slow_body(std::chrono::microseconds(200)),
                  l > 0 ? static_cast<int>(l) - 1 : -1);
      chain.bind_cancel(&tokens[static_cast<usize>(r)]);
      a.run_chain(chain);
      for (auto& h : hits) h.expect_at_most_once();
    }
    done.store(true, std::memory_order_release);
  });

  const pool::Policy policies[] = {pool::Policy::kProportional,
                                   pool::Policy::kBigCorePriority,
                                   pool::Policy::kEqualShare};
  int spin = 0;
  while (!done.load(std::memory_order_acquire)) {
    mgr.set_policy(policies[spin % 3]);
    mgr.repartition();
    if (spin % 2 == 0)
      tokens[static_cast<usize>(cur_round.load(std::memory_order_acquire))]
          .cancel();
    if (spin % 3 == 0) a.cancel();  // lease-level cancel racing everything
    ++spin;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  racer.join();

  HitCounts clean(kCount);
  LoopChain chain;
  chain.add(kCount, ScheduleSpec::dynamic(7), clean.body());
  a.run_chain(chain);
  clean.expect_exactly_once();
}

TEST(CancelStress, CoTenantSurvivesNeighbourFailures) {
  // App A keeps failing (throws, deadline-cancelled stalls); app B's lease
  // must keep delivering exactly-once loops throughout — a failure domain
  // is one lease, never the shared pool.
  pool::PoolManager mgr(platform::generic_amp(4, 4, 3.0), pool_config());
  pool::AppHandle a = mgr.register_app("failing");
  pool::AppHandle b = mgr.register_app("healthy");

  std::atomic<bool> stop{false};
  std::atomic<int> a_exceptions{0};
  std::thread failing([&] {
    constexpr i64 kCount = 1 << 10;
    while (!stop.load(std::memory_order_acquire)) {
      try {
        a.run_loop(kCount, ScheduleSpec::dynamic(16),
                   [](i64 b0, i64, const rt::WorkerInfo&) {
                     if (b0 == 512) throw std::runtime_error("boom");
                   });
      } catch (const std::runtime_error&) {
        a_exceptions.fetch_add(1, std::memory_order_relaxed);
      }
      HitCounts scratch(kCount);
      a.run_loop(kCount,
                 ScheduleSpec::dynamic(16).with_deadline_ns(5'000'000),
                 scratch.slow_body(std::chrono::microseconds(500)));
      scratch.expect_at_most_once();
    }
  });

  constexpr int kHealthyLoops = 40;
  constexpr i64 kCount = 513;
  for (int l = 0; l < kHealthyLoops; ++l) {
    HitCounts counts(kCount);
    b.run_loop(kCount, ScheduleSpec::dynamic(4), counts.body());
    counts.expect_exactly_once();
  }
  stop.store(true, std::memory_order_release);
  failing.join();
  EXPECT_GT(a_exceptions.load(), 0);
}

}  // namespace
}  // namespace aid
