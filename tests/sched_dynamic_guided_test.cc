// DynamicScheduler and GuidedScheduler semantics.
#include <gtest/gtest.h>

#include "sched/dynamic_sched.h"
#include "sched/guided_sched.h"
#include "test_util.h"

namespace aid::sched {
namespace {

using test::amp_2s2b;
using test::drive;
using test::total_of;

TEST(DynamicScheduler, RemovalCountMatchesChunking) {
  const auto p = amp_2s2b();
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::dynamic(5), 100, layout,
                       *test::uniform_cost(100, 3.0));
  // 100/5 = 20 successful removals plus up to nthreads empty probes.
  EXPECT_GE(r.sim.pool_removals, 20);
  EXPECT_LE(r.sim.pool_removals, 20 + 4);
}

TEST(DynamicScheduler, BigCoresTakeMoreIterations) {
  // The paper's core observation about dynamic on AMPs: big-core threads
  // come back for chunks more often, absorbing more work.
  const auto p = amp_2s2b(4.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::dynamic(1), 1000, layout,
                       *test::uniform_cost(1000, 4.0));
  // tids 0,1 are big (BS mapping), 2,3 small.
  const i64 big = total_of(r, 0) + total_of(r, 1);
  const i64 small = total_of(r, 2) + total_of(r, 3);
  EXPECT_GT(big, 3 * small) << "4x cores should take ~4x the iterations";
  EXPECT_EQ(big + small, 1000);
}

TEST(DynamicScheduler, BalancesAmpToNearIdeal) {
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::dynamic(1), 800, layout,
                       *test::uniform_cost(1000, 3.0));
  // Ideal: total work 800us over aggregate speed 2*3+2*1 = 8 small-core
  // equivalents -> 100us. Allow the last-chunk tail.
  EXPECT_LT(r.sim.completion_ns, 110'000);
}

TEST(DynamicScheduler, ChunkLargerThanLoopGoesToOneThread) {
  const auto p = amp_2s2b();
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::dynamic(1000), 64, layout,
                       *test::uniform_cost(10, 3.0));
  int winners = 0;
  for (int tid = 0; tid < 4; ++tid) winners += total_of(r, tid) > 0;
  EXPECT_EQ(winners, 1);
}

TEST(DynamicScheduler, ZeroIterationLoopTerminates) {
  const auto p = amp_2s2b();
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::dynamic(1), 0, layout,
                       *test::uniform_cost(10, 3.0));
  EXPECT_EQ(r.sim.total_iterations(), 0);
}

TEST(GuidedScheduler, ChunksDecrease) {
  const auto p = amp_2s2b();
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::guided(1), 1024, layout,
                       *test::uniform_cost(100, 3.0));
  // First removal on any thread is remaining/nthreads = 256.
  i64 first_size = 0;
  for (int tid = 0; tid < 4; ++tid)
    if (!r.ranges[static_cast<usize>(tid)].empty())
      first_size = std::max(first_size, r.ranges[static_cast<usize>(tid)][0].size());
  EXPECT_EQ(first_size, 256);

  // Guided uses far fewer removals than dynamic,1.
  EXPECT_LT(r.sim.pool_removals, 80);
}

TEST(GuidedScheduler, RespectsMinimumChunk) {
  const auto p = amp_2s2b();
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::guided(7), 1000, layout,
                       *test::uniform_cost(100, 3.0));
  for (int tid = 0; tid < 4; ++tid) {
    const auto& ranges = r.ranges[static_cast<usize>(tid)];
    for (usize i = 0; i + 1 < ranges.size(); ++i)
      EXPECT_GE(ranges[i].size(), 7) << "only the final chunk may be short";
  }
}

TEST(GuidedScheduler, StrandsSmallCoreWithEarlyHugeChunk) {
  // Why guided performs poorly on AMPs (paper Sec. 5): an early ~NI/T chunk
  // can land on a small core and dominate completion time.
  const auto p = amp_2s2b(4.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kSmallFirst);
  const auto guided = drive(ScheduleSpec::guided(1), 4000, layout,
                            *test::uniform_cost(1000, 4.0));
  const auto dyn = drive(ScheduleSpec::dynamic(1), 4000, layout,
                         *test::uniform_cost(1000, 4.0));
  EXPECT_GT(guided.sim.completion_ns, dyn.sim.completion_ns * 3 / 2)
      << "guided should be clearly worse than dynamic on this AMP";
}

}  // namespace
}  // namespace aid::sched
