// SfEstimator: the lock-free sampling accumulator (paper Sec. 4.2, fn. 2).
#include <gtest/gtest.h>

#include <thread>

#include "sched/sf_estimator.h"

namespace aid::sched {
namespace {

TEST(SfEstimator, LastRecorderIsSignalled) {
  SfEstimator e(2);
  e.reset(3);
  EXPECT_FALSE(e.record(0, 100, 1));
  EXPECT_FALSE(e.record(1, 50, 1));
  EXPECT_FALSE(e.complete());
  EXPECT_TRUE(e.record(1, 50, 1));
  EXPECT_TRUE(e.complete());
}

TEST(SfEstimator, EqualChunksReduceToPaperTimeRatio) {
  // 2 small threads at 300ns/iter, 2 big at 100ns/iter, 1 iteration each:
  // SF = avg small time / avg big time = 3.
  SfEstimator e(2);
  e.reset(4);
  e.record(0, 300, 1);
  e.record(0, 300, 1);
  e.record(1, 100, 1);
  e.record(1, 100, 1);
  const auto sf = e.speedup_factors({1.0, 1.0});
  EXPECT_DOUBLE_EQ(sf[0], 1.0);
  EXPECT_DOUBLE_EQ(sf[1], 3.0);
}

TEST(SfEstimator, RateBasedHandlesUnequalChunks) {
  // Big thread did 10 iterations in 500ns (rate 0.02), small did 2 in
  // 400ns (rate 0.005): SF = 4 regardless of the chunk difference.
  SfEstimator e(2);
  e.reset(2);
  e.record(0, 400, 2);
  e.record(1, 500, 10);
  const auto sf = e.speedup_factors({1.0, 1.0});
  EXPECT_DOUBLE_EQ(sf[1], 4.0);
}

TEST(SfEstimator, ZeroIterationSamplesDoNotPollute) {
  SfEstimator e(2);
  e.reset(3);
  e.record(0, 100, 1);
  e.record(1, 0, 0);  // found the pool empty
  e.record(1, 25, 1);
  const auto sf = e.speedup_factors({1.0, 1.0});
  EXPECT_DOUBLE_EQ(sf[1], 4.0);
}

TEST(SfEstimator, MissingTypeFallsBackToNominalSpeed) {
  SfEstimator e(2);
  e.reset(2);
  e.record(0, 100, 1);
  e.record(0, 100, 1);  // nobody sampled type 1
  const auto sf = e.speedup_factors({1.0, 2.4});
  EXPECT_DOUBLE_EQ(sf[0], 1.0);
  EXPECT_DOUBLE_EQ(sf[1], 2.4);
}

TEST(SfEstimator, ZeroElapsedClampedToOneNanosecond) {
  SfEstimator e(2);
  e.reset(2);
  e.record(0, 0, 5);  // coarse timer: 0ns for 5 iterations
  e.record(1, 10, 5);
  const auto sf = e.speedup_factors({1.0, 1.0});
  EXPECT_GT(sf[1], 0.0);
  EXPECT_LT(sf[1], 1.0);  // type1 measured slower here; clamped, not inf/nan
}

TEST(SfEstimator, SfClampedBelow) {
  SfEstimator e(2);
  e.reset(2);
  e.record(0, 1, 1000000);  // absurd rate for the slow type
  e.record(1, 1000000, 1);
  const auto sf = e.speedup_factors({1.0, 1.0});
  EXPECT_GE(sf[1], SfEstimator::kMinSf);
}

TEST(SfEstimator, ThreeTypes) {
  SfEstimator e(3);
  e.reset(3);
  e.record(0, 600, 1);
  e.record(1, 300, 1);
  e.record(2, 100, 1);
  const auto sf = e.speedup_factors({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(sf[0], 1.0);
  EXPECT_DOUBLE_EQ(sf[1], 2.0);
  EXPECT_DOUBLE_EQ(sf[2], 6.0);
}

TEST(SfEstimator, ResetRearmsForNextPhase) {
  SfEstimator e(2);
  e.reset(2);
  e.record(0, 100, 1);
  e.record(1, 50, 1);
  EXPECT_TRUE(e.complete());
  e.reset(2);
  EXPECT_FALSE(e.complete());
  e.record(0, 200, 1);
  e.record(1, 25, 1);
  const auto sf = e.speedup_factors({1.0, 1.0});
  EXPECT_DOUBLE_EQ(sf[1], 8.0) << "old phase data must not leak";
}

TEST(SfEstimator, ConcurrentRecordingCountsExactly) {
  // The completion counter must be exact under true concurrency (this is
  // what makes AID lock-free rather than racy).
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  SfEstimator e(2);
  for (int round = 0; round < kRounds; ++round) {
    e.reset(kThreads);
    std::atomic<int> last_signals{0};
    {
      std::vector<std::jthread> threads;
      threads.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&e, &last_signals, t] {
          if (e.record(t % 2, 100 + t, 1)) last_signals.fetch_add(1);
        });
      }
    }
    ASSERT_EQ(last_signals.load(), 1) << "exactly one thread closes a phase";
    ASSERT_TRUE(e.complete());
  }
}

TEST(AidKFormula, TwoType) {
  EXPECT_DOUBLE_EQ(aid_k(800, {4, 4}, {1.0, 3.0}), 50.0);
}

}  // namespace
}  // namespace aid::sched
