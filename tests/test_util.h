// Shared helpers for libaid tests.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "platform/platform.h"
#include "platform/team_layout.h"
#include "sched/loop_scheduler.h"
#include "sim/cost_model.h"
#include "sim/loop_simulator.h"
#include "sim/overhead_model.h"

namespace aid::test {

/// A 2-small + 2-big AMP with big cores 3x faster (uniformly: compute and
/// memory components equal), handy for exact arithmetic in tests.
inline platform::Platform amp_2s2b(double big_speed = 3.0) {
  return platform::generic_amp(2, 2, big_speed, "test-2s2b");
}

/// 4-small + 4-big like the paper's boards.
inline platform::Platform amp_4s4b(double big_speed = 3.0) {
  return platform::generic_amp(4, 4, big_speed, "test-4s4b");
}

/// Execute a scheduler to completion in the deterministic engine and return
/// the per-thread assignment map {tid -> executed iteration numbers}. Also
/// verifies the exactly-once coverage invariant via LoopSimulator's check.
struct DriveResult {
  sim::LoopResult sim;
  std::vector<std::vector<sched::IterRange>> ranges;  ///< per tid, in order
};

/// Cost model where every iteration takes `small_ns` on type 0 and
/// `small_ns / big_speed` on type 1.
inline std::shared_ptr<const sim::CostModel> uniform_cost(
    double small_ns, double big_speed) {
  return std::make_shared<sim::UniformCostModel>(
      small_ns, std::vector<double>{1.0, big_speed});
}

/// Wraps a scheduler so every handed-out range is recorded per thread.
class RecordingScheduler final : public sched::LoopScheduler {
 public:
  RecordingScheduler(sched::LoopScheduler& inner, int nthreads)
      : inner_(inner), ranges_(static_cast<usize>(nthreads)) {}

  bool next(sched::ThreadContext& tc, sched::IterRange& out) override {
    const bool got = inner_.next(tc, out);
    if (got) ranges_[static_cast<usize>(tc.tid)].push_back(out);
    return got;
  }
  void reset(i64 count) override {
    inner_.reset(count);
    for (auto& r : ranges_) r.clear();
  }
  [[nodiscard]] std::string_view name() const override {
    return inner_.name();
  }
  [[nodiscard]] sched::SchedulerStats stats() const override {
    return inner_.stats();
  }

  [[nodiscard]] const std::vector<std::vector<sched::IterRange>>& ranges()
      const {
    return ranges_;
  }

 private:
  sched::LoopScheduler& inner_;
  std::vector<std::vector<sched::IterRange>> ranges_;
};

/// Run `spec` over `count` iterations on `layout` under the given cost
/// model; returns the LoopResult plus all ranges each thread received.
inline DriveResult drive(const sched::ScheduleSpec& spec, i64 count,
                         const platform::TeamLayout& layout,
                         const sim::CostModel& cost,
                         sim::OverheadModel overhead = sim::OverheadModel::zero()) {
  auto sched = sched::make_scheduler(spec, count, layout);
  RecordingScheduler recorder(*sched, layout.nthreads());
  sim::LoopSimulator simulator(layout, overhead);
  DriveResult r{simulator.run(recorder, count, cost), recorder.ranges()};
  return r;
}

/// Total iterations a thread received.
inline i64 total_of(const DriveResult& r, int tid) {
  i64 n = 0;
  for (const auto& range : r.ranges[static_cast<usize>(tid)]) n += range.size();
  return n;
}

}  // namespace aid::test
