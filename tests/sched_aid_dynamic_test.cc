// AidDynamicScheduler: Fig. 5 state machine — sampling, repeated AID phases
// with the R progress ratio, the smoothing update, and the endgame
// optimization.
#include <gtest/gtest.h>

#include "sched/aid_dynamic_sched.h"
#include "test_util.h"

namespace aid::sched {
namespace {

using test::amp_2s2b;
using test::drive;
using test::total_of;

TEST(AidDynamic, CoversAllIterations) {
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  for (i64 count : {0, 1, 7, 100, 1000, 4096}) {
    const auto r = drive(ScheduleSpec::aid_dynamic(1, 5), count, layout,
                         *test::uniform_cost(500, 3.0));
    EXPECT_EQ(r.sim.total_iterations(), count) << "count=" << count;
  }
}

TEST(AidDynamic, FewerRemovalsThanDynamic) {
  // The design goal (Sec. 4.2): reduce pool removals by letting big-core
  // threads take R*M at once.
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto cost = test::uniform_cost(1000, 3.0);
  const auto aid = drive(ScheduleSpec::aid_dynamic(1, 10), 8000, layout, *cost);
  const auto dyn = drive(ScheduleSpec::dynamic(1), 8000, layout, *cost);
  EXPECT_LT(aid.sim.pool_removals, dyn.sim.pool_removals / 3);
}

TEST(AidDynamic, ProgressRatioConvergesToSpeedRatio) {
  const auto p = amp_2s2b(4.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  auto sched = make_scheduler(ScheduleSpec::aid_dynamic(1, 8), 20000, layout);
  sim::LoopSimulator simulator(layout, sim::OverheadModel::zero());
  (void)simulator.run(*sched, 20000, *test::uniform_cost(1000, 4.0));
  auto* aid = dynamic_cast<AidDynamicScheduler*>(sched.get());
  ASSERT_NE(aid, nullptr);
  const auto ratios = aid->progress_ratios();
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_NEAR(ratios[1], 4.0, 0.5);
}

TEST(AidDynamic, RunsMultiplePhases) {
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::aid_dynamic(1, 5), 4000, layout,
                       *test::uniform_cost(1000, 3.0));
  EXPECT_GT(r.sim.aid_phases, 3);
}

TEST(AidDynamic, EndgameSwitchesToMinorChunks) {
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  auto sched = make_scheduler(ScheduleSpec::aid_dynamic(1, 5), 500, layout);
  sim::LoopSimulator simulator(layout, sim::OverheadModel::zero());
  (void)simulator.run(*sched, 500, *test::uniform_cost(1000, 3.0));
  auto* aid = dynamic_cast<AidDynamicScheduler*>(sched.get());
  ASSERT_NE(aid, nullptr);
  EXPECT_TRUE(aid->in_endgame())
      << "a 500-iteration loop must reach the M*(NB+NS) endgame";
}

TEST(AidDynamic, BalancesUnevenWork) {
  // Lognormal-style unevenness via an affine ramp: AID-dynamic must stay
  // close to dynamic's balance (its raison d'etre is matching dynamic with
  // less overhead).
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  auto cost = std::make_shared<sim::AffineCostModel>(
      400.0, 0.3, 8000, std::vector<double>{1.0, 3.0});
  const auto aid = drive(ScheduleSpec::aid_dynamic(1, 5), 8000, layout, *cost);
  const auto dyn = drive(ScheduleSpec::dynamic(1), 8000, layout, *cost);
  EXPECT_LT(static_cast<double>(aid.sim.completion_ns),
            static_cast<double>(dyn.sim.completion_ns) * 1.10);
}

TEST(AidDynamic, LessChunkSensitiveThanDynamic) {
  // Fig. 8: large chunks wreck dynamic (end-of-loop imbalance) but barely
  // hurt AID-dynamic thanks to the endgame switch.
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  const auto cost = test::uniform_cost(1000, 3.0);
  const i64 count = 4000;

  const auto dyn_small = drive(ScheduleSpec::dynamic(1), count, layout, *cost);
  const auto dyn_big = drive(ScheduleSpec::dynamic(30), count, layout, *cost);
  const auto aid_small =
      drive(ScheduleSpec::aid_dynamic(1, 5), count, layout, *cost);
  const auto aid_big =
      drive(ScheduleSpec::aid_dynamic(1, 30), count, layout, *cost);

  const double dyn_penalty = static_cast<double>(dyn_big.sim.completion_ns) /
                             static_cast<double>(dyn_small.sim.completion_ns);
  const double aid_penalty = static_cast<double>(aid_big.sim.completion_ns) /
                             static_cast<double>(aid_small.sim.completion_ns);
  EXPECT_LT(aid_penalty, dyn_penalty);
  EXPECT_LT(aid_penalty, 1.10) << "AID-dynamic should absorb big M";
}

TEST(AidDynamic, UniformTeamStillWorks) {
  const auto p = platform::symmetric(4);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kSmallFirst);
  const auto r = drive(ScheduleSpec::aid_dynamic(2, 6), 1000, layout,
                       *std::make_shared<sim::UniformCostModel>(
                           500.0, std::vector<double>{1.0}));
  EXPECT_EQ(r.sim.total_iterations(), 1000);
  for (int tid = 0; tid < 4; ++tid)
    EXPECT_NEAR(static_cast<double>(total_of(r, tid)), 250.0, 60.0);
}

TEST(AidDynamic, SingleThread) {
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 1, platform::Mapping::kBigFirst);
  const auto r = drive(ScheduleSpec::aid_dynamic(1, 5), 64, layout,
                       *test::uniform_cost(100, 3.0));
  EXPECT_EQ(total_of(r, 0), 64);
}

TEST(AidDynamic, MajorChunkMustDominateMinor) {
  EXPECT_FALSE(parse_schedule("aid-dynamic,10,5").has_value());
  EXPECT_TRUE(parse_schedule("aid-dynamic,5,10").has_value());
}

TEST(AidDynamic, ResetReplaysIdentically) {
  const auto p = amp_2s2b(3.0);
  const platform::TeamLayout layout(p, 4, platform::Mapping::kBigFirst);
  auto sched = make_scheduler(ScheduleSpec::aid_dynamic(1, 5), 2000, layout);
  sim::LoopSimulator simulator(layout, sim::OverheadModel::zero());
  const auto cost = test::uniform_cost(800, 3.0);
  const auto r1 = simulator.run(*sched, 2000, *cost);
  sched->reset(2000);
  const auto r2 = simulator.run(*sched, 2000, *cost);
  EXPECT_EQ(r1.completion_ns, r2.completion_ns);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

}  // namespace
}  // namespace aid::sched
